// campaign_worker: runs one trial range of a serialized campaign spec
// and writes a partial-report slice — the process the
// campaign::remote::Dispatcher forks per shard.
//
//   campaign_worker --spec spec.json --begin 0 --end 128
//                   --out slice.json [--progress progress.log]
//
// The progress file gains one line per trial started (the dispatcher's
// heartbeat: a file that stops growing past the deadline marks the
// worker hung). The slice is written atomically (tmp + rename), so the
// dispatcher never reads a half-written document. Exit 0 means a slice
// was written; any other exit (or a slice that fails validation) makes
// the dispatcher re-issue the range.
//
// Built-in fault injection, for CI-gating the dispatcher's recovery
// paths against real process failures:
//
//   TMU_WORKER_FAIL=crash|hang|corrupt@<trial>[,...]   fail when
//     reaching the global trial index: crash = _exit mid-range, hang =
//     stop making progress forever (the deadline must reap us), corrupt
//     = exit 0 with garbage instead of a slice. A comma-separated list
//     arms several directives at once; each fires in whichever worker's
//     range covers its trial, so one campaign can lose a crashed, a
//     hung and a corrupt worker simultaneously.
//   TMU_WORKER_FAIL_TOKEN=<base>   directive i fires only if <base>.<i>
//     does not exist yet, creating it first — i.e. each directive fires
//     exactly once across retries, so the re-issued range succeeds and
//     the merged report must come out clean.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/remote.hpp"

namespace {

struct FailPlan {
  enum class Mode { kCrash, kHang, kCorrupt };
  Mode mode = Mode::kCrash;
  std::uint64_t trial = 0;
  std::string token;  ///< fail-once marker path; empty = always fire
};

std::vector<FailPlan> parse_fail_plans() {
  std::vector<FailPlan> plans;
  const char* spec = std::getenv("TMU_WORKER_FAIL");
  if (spec == nullptr || *spec == '\0') return plans;
  const char* token_base = std::getenv("TMU_WORKER_FAIL_TOKEN");
  std::string rest = spec;
  std::size_t idx = 0;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string part = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const std::size_t at = part.find('@');
    const std::string mode = part.substr(0, at);
    FailPlan plan;
    if (mode == "crash") {
      plan.mode = FailPlan::Mode::kCrash;
    } else if (mode == "hang") {
      plan.mode = FailPlan::Mode::kHang;
    } else if (mode == "corrupt") {
      plan.mode = FailPlan::Mode::kCorrupt;
    } else {
      std::fprintf(stderr, "campaign_worker: bad TMU_WORKER_FAIL mode '%s'\n",
                   mode.c_str());
      std::exit(2);
    }
    if (at != std::string::npos) {
      plan.trial = std::strtoull(part.c_str() + at + 1, nullptr, 10);
    }
    if (token_base != nullptr && *token_base != '\0') {
      plan.token = std::string(token_base) + "." + std::to_string(idx);
    }
    plans.push_back(std::move(plan));
    ++idx;
  }
  return plans;
}

/// True if this directive should fire now (consuming its fail-once
/// token). With a token that already exists, a previous attempt took
/// the failure and this attempt runs clean — what lets recovery tests
/// assert a full retry success rather than a retry loop.
bool consume(FailPlan& plan) {
  if (plan.token.empty()) return true;
  if (std::ifstream(plan.token).good()) return false;
  std::ofstream f(plan.token);
  f << "consumed\n";
  f.close();
  return true;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot read " + path);
  std::string text{std::istreambuf_iterator<char>(f),
                   std::istreambuf_iterator<char>()};
  return text;
}

void write_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f || !(f << text) || !f.flush()) {
      throw std::runtime_error("cannot write " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot rename " + tmp + " to " + path);
  }
}

/// Thrown from the progress hook to abort the range for corrupt mode.
struct CorruptAbort {};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: campaign_worker --spec <spec.json> --begin <n> "
               "--end <n> --out <slice.json> [--progress <log>]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, out_path, progress_path;
  std::uint64_t begin = 0, end = 0;
  bool have_begin = false, have_end = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i + 1 >= argc) usage();
    const char* val = argv[++i];
    if (arg == "--spec") {
      spec_path = val;
    } else if (arg == "--begin") {
      begin = std::strtoull(val, nullptr, 10);
      have_begin = true;
    } else if (arg == "--end") {
      end = std::strtoull(val, nullptr, 10);
      have_end = true;
    } else if (arg == "--out") {
      out_path = val;
    } else if (arg == "--progress") {
      progress_path = val;
    } else {
      usage();
    }
  }
  if (spec_path.empty() || out_path.empty() || !have_begin || !have_end) {
    usage();
  }

  try {
    const campaign::remote::CampaignSpec spec =
        campaign::remote::CampaignSpec::from_json(read_file(spec_path));

    std::vector<FailPlan> plans = parse_fail_plans();
    std::ofstream progress;
    if (!progress_path.empty()) {
      progress.open(progress_path, std::ios::app);
    }
    const auto on_progress = [&](std::uint64_t next) {
      if (progress.is_open()) {
        progress << next << "\n";
        progress.flush();
      }
      for (FailPlan& plan : plans) {
        if (next != plan.trial || next >= end || !consume(plan)) continue;
        switch (plan.mode) {
          case FailPlan::Mode::kCrash:
            std::_Exit(3);
          case FailPlan::Mode::kHang:
            // Stop making progress but stay alive: only the
            // dispatcher's deadline can end this worker.
            for (;;) {
              std::this_thread::sleep_for(std::chrono::milliseconds(50));
            }
          case FailPlan::Mode::kCorrupt:
            throw CorruptAbort{};
        }
      }
    };

    try {
      const campaign::remote::ReportSlice slice =
          campaign::remote::run_range(spec, begin, end, on_progress);
      write_file_atomic(out_path, slice.to_json());
    } catch (const CorruptAbort&) {
      // A garbage-emitting worker: claims success, delivers junk. The
      // dispatcher must catch this via slice validation, not trust
      // exit codes.
      write_file_atomic(out_path, "{ this is not a report slice ]\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_worker: %s\n", e.what());
    return 1;
  }
}
