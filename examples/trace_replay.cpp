// Record → replay → export: the cycle-accurate transaction-tracing
// workflow on the Fig. 8/9 IP-level testbench.
//
// 1. A desc-declared trace::Recorder captures the manager link
//    ("gen.out") and the memory-side link ("mem.in") of a random-traffic
//    run into tmu-axi-trace-v1 streams.
// 2. The same topology is rebuilt with the manager swapped for a
//    trace_replay manager; the captured stream drives it, and the
//    memory-side capture + memory contents come out byte-identical.
// 3. The run is exported as Chrome-trace-event JSON (Perfetto /
//    chrome://tracing loadable).
//
// Build & run:  ./build/examples/trace_replay
// With --write <path>, step 1 writes the captured gen.out stream to
// <path> and exits — this is how tests/data/ip_testbench_gen.axitrace
// was produced (fixed seed, fixed cycle count, deterministic).

#include <cstdio>
#include <cstring>
#include <string>

#include "axi/memory.hpp"
#include "soc/builder.hpp"
#include "soc/topologies.hpp"
#include "trace/chrome_export.hpp"
#include "trace/format.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"

namespace {

constexpr std::uint64_t kSeed = 42;
constexpr std::uint64_t kCycles = 2000;

soc::SocDesc capture_desc() {
  soc::SocDesc d = soc::ip_testbench_desc();
  d.managers.front().seed = kSeed;
  d.managers.front().traffic.enabled = true;  // defaults: 25% duty, mixed
  d.traces.push_back(soc::TraceDesc{"cap_gen", "gen.out"});
  d.traces.push_back(soc::TraceDesc{"cap_mem", "mem.in"});
  return d;
}

std::uint64_t memory_fingerprint(const axi::MemorySubordinate& mem) {
  // FNV-1a over the first 64 KiB (the default random addr window).
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (axi::Addr a = 0; a < 0x10000; ++a) {
    h ^= mem.peek(a);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  // ---- 1. Record ----
  const std::unique_ptr<soc::Soc> rec_soc =
      soc::SocBuilder::build(capture_desc());
  rec_soc->sim().run(kCycles);

  auto& cap_gen = rec_soc->get<trace::Recorder>("cap_gen");
  auto& cap_mem = rec_soc->get<trace::Recorder>("cap_mem");
  std::printf("recorded %zu events on gen.out, %zu on mem.in (%llu cycles)\n",
              cap_gen.buffer().records.size(), cap_mem.buffer().records.size(),
              static_cast<unsigned long long>(kCycles));

  if (argc == 3 && std::strcmp(argv[1], "--write") == 0) {
    if (!trace::write_trace_file(argv[2], cap_gen.buffer())) {
      std::printf("FAILED to write %s\n", argv[2]);
      return 1;
    }
    std::printf("wrote %s\n", argv[2]);
    return 0;
  }
  if (argc != 1) {
    std::printf("usage: %s [--write <path>]\n", argv[0]);
    return 1;
  }

  // ---- 2. Replay ----
  soc::SocDesc rd = capture_desc();
  rd.name = "ip_testbench_replay";
  rd.managers.front().kind = soc::ManagerKind::kTraceReplay;
  rd.managers.front().traffic = {};
  const std::unique_ptr<soc::Soc> rep_soc = soc::SocBuilder::build(rd);
  rep_soc->get<trace::TraceTrafficGen>("gen").set_stream(cap_gen.buffer());
  rep_soc->sim().run(kCycles);

  const auto& orig = cap_mem.buffer().records;
  const auto& replayed =
      rep_soc->get<trace::Recorder>("cap_mem").buffer().records;
  const std::uint64_t h_rec =
      memory_fingerprint(rec_soc->get<axi::MemorySubordinate>("mem"));
  const std::uint64_t h_rep =
      memory_fingerprint(rep_soc->get<axi::MemorySubordinate>("mem"));
  const bool traffic_ok = orig == replayed;
  const bool mem_ok = h_rec == h_rep;
  std::printf("replayed: mem.in traffic %s (%zu events), memory state %s\n",
              traffic_ok ? "identical" : "DIVERGED", replayed.size(),
              mem_ok ? "identical" : "DIVERGED");

  // ---- 3. Export ----
  const std::string json = trace::export_chrome_json(*rec_soc);
  std::printf("chrome trace export: %zu bytes "
              "(load in Perfetto / chrome://tracing)\n",
              json.size());

  return traffic_ok && mem_ok ? 0 : 1;
}
