// Simulation-state snapshots: save -> load -> fork -> run.
//
// 1. The Fig. 8/9 IP testbench is warmed up for 2000 cycles and its
//    complete state captured as a snapshot::Snapshot, round-tripped
//    through the tmu-soc-snapshot-v1 on-disk format.
// 2. Three trials fork from the loaded snapshot (fresh netlist each,
//    warmed state restored in) and run on with per-fork seeds; each is
//    compared wire-for-wire and metric-for-metric against a cold run
//    that paid the full warm-up.
// 3. The same contract at campaign scale: a warm-up-heavy campaign runs
//    once with snapshot forking and once cold — the two reports must be
//    byte-identical (the equivalence gate check.sh enforces).
//
// Build & run:  ./build/snapshot_fork
//
// Exits nonzero on any divergence between forked and cold execution.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "campaign/campaign.hpp"
#include "snapshot/snapshot.hpp"
#include "soc/builder.hpp"
#include "soc/topologies.hpp"

namespace {

constexpr std::uint64_t kWarmup = 2000;
constexpr std::uint64_t kRun = 1500;

soc::SocDesc testbench_desc() {
  tmu::TmuConfig cfg;
  cfg.variant = tmu::Variant::kFullCounter;
  cfg.tc_total_budget = 200;
  soc::SocDesc d = soc::ip_testbench_desc(cfg);
  d.managers.front().seed = 0xABCDEF;
  d.managers.front().traffic.enabled = true;
  d.managers.front().traffic.p_new_txn = 0.3;
  d.managers.front().traffic.len_max = 7;
  return d;
}

bool check(bool ok, const char* what) {
  std::printf("  %-58s %s\n", what, ok ? "ok" : "MISMATCH");
  return ok;
}

}  // namespace

int main() {
  bool ok = true;
  const soc::SocDesc d = testbench_desc();

  // --- 1. Warm up and capture -----------------------------------------
  std::printf("warming '%s' for %llu cycles...\n", d.name.c_str(),
              static_cast<unsigned long long>(kWarmup));
  std::unique_ptr<soc::Soc> warm = soc::SocBuilder::build(d);
  warm->sim().run(kWarmup);
  const snapshot::Snapshot snap = snapshot::capture(*warm);
  std::printf("captured cycle %llu: %zu payload bytes, topology %016llx\n",
              static_cast<unsigned long long>(snap.cycle),
              snap.payload.size(),
              static_cast<unsigned long long>(snap.topology_hash));

  // --- 2. Save / load through tmu-soc-snapshot-v1 ---------------------
  const std::string path = "snapshot_fork_example.tmusnap";
  snapshot::write_file(snap, path);
  const snapshot::Snapshot loaded = snapshot::read_file(path);
  std::remove(path.c_str());
  ok &= check(loaded == snap, "on-disk round-trip is exact");

  // --- 3. Fork and compare against cold runs --------------------------
  // The cold reference continues the ORIGINAL warmed netlist; each fork
  // restores the loaded snapshot into a fresh netlist. After kRun more
  // cycles both must agree on every observable.
  warm->sim().run(kRun);
  for (int i = 0; i < 3; ++i) {
    std::unique_ptr<soc::Soc> forked = snapshot::fork(loaded, d);
    ok &= check(forked->sim().cycle() == snap.cycle,
                "fork resumes at the captured cycle");
    forked->sim().run(kRun);
    const bool same_cycle = forked->sim().cycle() == warm->sim().cycle();
    const bool same_evals =
        forked->sim().module_evals() == warm->sim().module_evals();
    const bool same_metrics = forked->metrics().snapshot().to_json() ==
                              warm->metrics().snapshot().to_json();
    ok &= check(same_cycle && same_evals && same_metrics,
                "forked run matches the cold run cycle-for-cycle");
  }

  // --- 4. The campaign-scale contract ---------------------------------
  // A warm-up-heavy campaign (warm-up >= the fault window): forked and
  // cold execution must produce byte-identical reports.
  campaign::TrialSpec proto;
  proto.desc = testbench_desc();
  proto.cfg.variant = tmu::Variant::kFullCounter;
  proto.cfg.tc_total_budget = 200;
  proto.point = fault::FaultPoint::kAwReadyStuck;
  proto.traffic.enabled = true;
  proto.traffic.p_new_txn = 0.3;
  proto.traffic.len_max = 7;
  proto.warmup_cycles = 1500;
  proto.inject_delay_max = 200;
  proto.detect_budget = 800;
  const std::vector<campaign::Scenario> scenarios = {
      campaign::make_scenario("forked-vs-cold", proto, 6)};

  campaign::EngineOptions forked_opts;
  forked_opts.threads = 2;
  forked_opts.snapshot_fork = true;
  campaign::EngineOptions cold_opts = forked_opts;
  cold_opts.snapshot_fork = false;
  const campaign::Report rf = campaign::Engine(forked_opts).run(scenarios);
  const campaign::Report rc = campaign::Engine(cold_opts).run(scenarios);
  ok &= check(rf.to_json() == rc.to_json(),
              "campaign report byte-identical forked vs cold");
  std::printf("  (%llu trials, %llu detected, fork amortized %llu warm-up "
              "cycles per trial)\n",
              static_cast<unsigned long long>(rf.total_trials()),
              static_cast<unsigned long long>(rf.overall.detected),
              static_cast<unsigned long long>(proto.warmup_cycles));

  if (!ok) {
    std::printf("FAILED: forked execution diverged from cold execution\n");
    return 1;
  }
  std::printf("all forked runs byte-identical to cold runs\n");
  return 0;
}
