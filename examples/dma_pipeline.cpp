// Full-system data-pipeline demo: the descriptor-based iDMA engine
// streams frames from DRAM (behind the LLC) through the crossbar and
// the TMU into the Ethernet IP, while a VCD waveform of the monitored
// link is dumped for inspection in GTKWave/Surfer.
//
// Build & run:  ./build/examples/dma_pipeline
// Then open:    /tmp/tmu_ethernet.vcd

#include <cstdio>

#include "sim/vcd.hpp"
#include "soc/cheshire.hpp"

int main() {
  using namespace axi;
  using soc::CheshireMap;

  tmu::TmuConfig cfg;
  cfg.variant = tmu::Variant::kFullCounter;
  cfg.adaptive.enabled = true;
  cfg.adaptive.cycles_per_beat = 3;
  soc::CheshireSystem sys(cfg);

  // Waveform of the monitored (manager-side) Ethernet link.
  sim::VcdWriter vcd("/tmp/tmu_ethernet.vcd");
  // Probing through the public component interfaces:
  vcd.probe("eth_writes_done", 16, [&] { return sys.ethernet().writes_done(); });
  vcd.probe("eth_tx_level", 8, [&] { return sys.ethernet().tx_fifo_level(); });
  vcd.probe("tmu_irq", 1, [&] { return std::uint64_t{sys.tmu().irq.read()}; });
  vcd.probe("tmu_severed", 1, [&] { return std::uint64_t{sys.tmu().severed()}; });
  vcd.probe("dma_beats", 16, [&] { return sys.dma_engine().beats_moved(); });
  sys.sim().on_cycle([&](std::uint64_t c) { vcd.sample(c); });

  // Seed three frames in DRAM.
  for (int f = 0; f < 3; ++f) {
    for (int i = 0; i < 64 * 8; ++i) {
      sys.dram().poke(CheshireMap::kDramBase + f * 0x400 + i,
                      static_cast<std::uint8_t>(f * 31 + i));
    }
  }

  // Program the DMA: three 64-beat frame transfers DRAM -> Ethernet TX.
  for (int f = 0; f < 3; ++f) {
    sys.dma_engine().submit(soc::DmaDescriptor{
        CheshireMap::kDramBase + static_cast<axi::Addr>(f) * 0x400,
        CheshireMap::kEthTxWindow, 64});
  }

  sys.sim().run_until([&] { return sys.dma_engine().descriptors_done() >= 3; },
                      20000);
  std::printf("pipeline done: %llu beats moved, %llu on the wire, "
              "LLC %llu hits / %llu misses, faults=%zu\n",
              static_cast<unsigned long long>(sys.dma_engine().beats_moved()),
              static_cast<unsigned long long>(sys.ethernet().frames_txed()),
              static_cast<unsigned long long>(sys.llc().hits()),
              static_cast<unsigned long long>(sys.llc().misses()),
              sys.tmu().fault_log().size());

  // The Fc perf log doubles as a pipeline profiler.
  const auto& st = sys.tmu().write_guard().stats();
  std::printf("ethernet write phases (mean cycles): entry=%.1f data=%.1f "
              "resp=%.1f  (over %llu writes)\n",
              st.phase[1].mean(), st.phase[3].mean(), st.phase[4].mean(),
              static_cast<unsigned long long>(st.completed));
  vcd.flush();
  std::printf("waveform written to /tmp/tmu_ethernet.vcd\n");
  return 0;
}
