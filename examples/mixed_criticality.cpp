// Mixed-criticality deployment (§IV): the TMU's configurability permits
// mixing Tiny-Counter and Full-Counter monitors within the same SoC,
// tailoring overhead and detection granularity per subordinate. Here a
// safety-critical endpoint gets an Fc monitor, a best-effort endpoint a
// Tc monitor; both catch a stall, at different latency and area cost.
//
// Build & run:  ./build/examples/mixed_criticality

#include <cstdio>

#include "area/area_model.hpp"
#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "sim/kernel.hpp"
#include "soc/reset_unit.hpp"
#include "tmu/tmu.hpp"

namespace {

struct MonitoredEndpoint {
  axi::Link l_gen, l_tmu_sub, l_mem;
  axi::TrafficGenerator gen;
  tmu::Tmu tmu;
  fault::FaultInjector inj;
  axi::MemorySubordinate mem;
  soc::ResetUnit rst;

  MonitoredEndpoint(const std::string& name, const tmu::TmuConfig& cfg,
                    std::uint64_t seed)
      : gen(name + ".gen", l_gen, seed),
        tmu(name + ".tmu", l_gen, l_tmu_sub, cfg),
        inj(name + ".inj", l_tmu_sub, l_mem),
        mem(name + ".mem", l_mem),
        rst(name + ".rst", tmu.reset_req, tmu.reset_ack,
            [this] { mem.hw_reset(); }) {}

  void add_to(sim::Simulator& s) {
    s.add(gen);
    s.add(tmu);
    s.add(inj);
    s.add(mem);
    s.add(rst);
  }
};

}  // namespace

int main() {
  using namespace axi;

  tmu::TmuConfig fc_cfg;  // critical endpoint: phase-level, 16 txns
  fc_cfg.variant = tmu::Variant::kFullCounter;
  fc_cfg.budgets.aw_vld_aw_rdy = 10;
  fc_cfg.budgets.w_last_b_vld = 16;
  fc_cfg.adaptive.enabled = true;

  tmu::TmuConfig tc_cfg;  // best-effort endpoint: txn-level, prescaled
  tc_cfg.variant = tmu::Variant::kTinyCounter;
  tc_cfg.tc_total_budget = 256;
  tc_cfg.prescaler_step = 32;
  tc_cfg.sticky_bit = true;
  tc_cfg.adaptive.enabled = true;

  MonitoredEndpoint critical("critical", fc_cfg, 7);
  MonitoredEndpoint best_effort("best_effort", tc_cfg, 8);

  sim::Simulator s;
  critical.add_to(s);
  best_effort.add_to(s);
  s.reset();

  // Both endpoints hang their response path at the same instant.
  critical.inj.arm(fault::FaultPoint::kBValidStuck);
  best_effort.inj.arm(fault::FaultPoint::kBValidStuck);
  critical.gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  best_effort.gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});

  s.run_until(
      [&] { return critical.tmu.any_fault() && best_effort.tmu.any_fault(); },
      5000);

  const auto& fc_fault = critical.tmu.fault_log().front();
  const auto& tc_fault = best_effort.tmu.fault_log().front();
  std::printf("critical (Fc)    : detected at cycle %llu — %s\n",
              static_cast<unsigned long long>(fc_fault.cycle),
              fc_fault.describe().c_str());
  std::printf("best-effort (Tc) : detected at cycle %llu — %s\n\n",
              static_cast<unsigned long long>(tc_fault.cycle),
              tc_fault.describe().c_str());

  // What each monitor instance costs in GF12 silicon:
  const double fc_area = area::estimate(fc_cfg).total;
  const double tc_area = area::estimate(tc_cfg).total;
  std::printf("area: Fc monitor %.0f um^2, Tc monitor %.0f um^2 "
              "(Tc = %.0f%% of Fc)\n",
              fc_area, tc_area, 100.0 * tc_area / fc_area);
  std::printf("\nthe Fc instance pinpoints the failing phase within its\n"
              "budget; the prescaled Tc instance reports at the (coarser)\n"
              "transaction budget for ~%.0f%% of the area.\n",
              100.0 * tc_area / fc_area);
  return 0;
}
