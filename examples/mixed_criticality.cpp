// Mixed-criticality deployment (§IV): the TMU's configurability permits
// mixing Tiny-Counter and Full-Counter monitors within the same SoC,
// tailoring overhead and detection granularity per subordinate. Here
// ONE SoC desc declares two managers behind a crossbar and two guarded
// endpoints — a safety-critical one under an Fc monitor, a best-effort
// one under a Tc monitor; both catch a simultaneous stall, at different
// latency and area cost.
//
// Build & run:  ./build/examples/mixed_criticality

#include <cstdio>

#include "area/area_model.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "soc/builder.hpp"
#include "tmu/tmu.hpp"

int main() {
  using namespace axi;

  tmu::TmuConfig fc_cfg;  // critical endpoint: phase-level, 16 txns
  fc_cfg.variant = tmu::Variant::kFullCounter;
  fc_cfg.budgets.aw_vld_aw_rdy = 10;
  fc_cfg.budgets.w_last_b_vld = 16;
  fc_cfg.adaptive.enabled = true;

  tmu::TmuConfig tc_cfg;  // best-effort endpoint: txn-level, prescaled
  tc_cfg.variant = tmu::Variant::kTinyCounter;
  tc_cfg.tc_total_budget = 256;
  tc_cfg.prescaler_step = 32;
  tc_cfg.sticky_bit = true;
  tc_cfg.adaptive.enabled = true;

  // The whole deployment is one desc: managers, windows, guards.
  soc::SocDesc d;
  d.name = "mixed_criticality";
  for (const auto& [who, seed] :
       {std::pair{"critical", 7}, std::pair{"best_effort", 8}}) {
    soc::ManagerDesc m;
    m.name = std::string(who) + ".gen";
    m.seed = static_cast<std::uint64_t>(seed);
    d.managers.push_back(m);

    soc::SubordinateDesc s;
    s.name = std::string(who) + ".mem";
    s.base = d.subordinates.size() * 0x1'0000ull;
    s.size = 0x1'0000ull;
    d.subordinates.push_back(s);

    soc::GuardDesc g;
    g.name = std::string(who) + ".tmu";
    g.subordinate = s.name;
    g.cfg = d.guards.empty() ? fc_cfg : tc_cfg;
    g.sub_injector = std::string(who) + ".inj";
    g.reset_unit = std::string(who) + ".rst";
    d.guards.push_back(g);
  }

  const auto soc = soc::SocBuilder::build(d);
  sim::Simulator& s = soc->sim();
  auto& crit_gen = soc->get<TrafficGenerator>("critical.gen");
  auto& be_gen = soc->get<TrafficGenerator>("best_effort.gen");
  auto& crit_tmu = soc->get<tmu::Tmu>("critical.tmu");
  auto& be_tmu = soc->get<tmu::Tmu>("best_effort.tmu");

  // Both endpoints hang their response path at the same instant.
  soc->get<fault::FaultInjector>("critical.inj")
      .arm(fault::FaultPoint::kBValidStuck);
  soc->get<fault::FaultInjector>("best_effort.inj")
      .arm(fault::FaultPoint::kBValidStuck);
  crit_gen.push(TxnDesc{true, 0, 0x0'0100, 3, 3, Burst::kIncr});
  be_gen.push(TxnDesc{true, 0, 0x1'0100, 3, 3, Burst::kIncr});

  s.run_until([&] { return crit_tmu.any_fault() && be_tmu.any_fault(); },
              5000);

  const auto& fc_fault = crit_tmu.fault_log().front();
  const auto& tc_fault = be_tmu.fault_log().front();
  std::printf("critical (Fc)    : detected at cycle %llu — %s\n",
              static_cast<unsigned long long>(fc_fault.cycle),
              fc_fault.describe().c_str());
  std::printf("best-effort (Tc) : detected at cycle %llu — %s\n\n",
              static_cast<unsigned long long>(tc_fault.cycle),
              tc_fault.describe().c_str());

  // What each monitor instance costs in GF12 silicon:
  const double fc_area = area::estimate(fc_cfg).total;
  const double tc_area = area::estimate(tc_cfg).total;
  std::printf("area: Fc monitor %.0f um^2, Tc monitor %.0f um^2 "
              "(Tc = %.0f%% of Fc)\n",
              fc_area, tc_area, 100.0 * tc_area / fc_area);
  std::printf("\nthe Fc instance pinpoints the failing phase within its\n"
              "budget; the prescaled Tc instance reports at the (coarser)\n"
              "transaction budget for ~%.0f%% of the area.\n",
              100.0 * tc_area / fc_area);

  // Topology is data: the same deployment can ship to a campaign worker.
  std::printf("\ndesc '%s': %zu managers, %zu guarded endpoints, "
              "topology hash %016llx\n",
              soc->desc().name.c_str(), soc->desc().managers.size(),
              soc->desc().guards.size(),
              static_cast<unsigned long long>(soc->desc().hash()));
  return 0;
}
