// Distributed fault campaign: the multi-process scale-out workflow.
//
// 1. A Monte-Carlo campaign (two TMU variants x two stuck-channel fault
//    points on the Fig. 8/9 IP testbench) is captured as a
//    tmu-campaign-spec-v1 document — the file a remote worker needs to
//    own any trial range.
// 2. The same campaign runs twice: serially through campaign::Engine
//    (one thread) and through campaign::remote::Dispatcher, which
//    shards it into ranges, executes them, and merges the slices.
// 3. The two reports must be byte-identical — the determinism contract
//    that makes worker crashes recoverable by re-running a range.
//
// Build & run:  ./build/distributed_campaign [trials-per-scenario]
//
// The default 8 trials/scenario keeps the CTest smoke fast; pass e.g.
// 200 (= an 800-trial campaign) to measure real scale-out speedups.
//
// By default the dispatcher executes ranges in-process (no worker
// binary), so the example is self-contained and sanitizer-friendly.
// Point TMU_CAMPAIGN_WORKER at the campaign_worker binary to fork real
// worker processes instead:
//
//   TMU_CAMPAIGN_WORKER=./build/campaign_worker ./build/distributed_campaign
//
// and optionally arm TMU_WORKER_FAIL=crash@3,hang@9 (see
// tools/campaign_worker.cpp) to watch the dispatcher recover — the
// final report is byte-identical either way.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/remote.hpp"
#include "sim/logger.hpp"

namespace {

using fault::FaultPoint;
using tmu::Variant;

constexpr std::uint64_t kBaseSeed = 0xD15Cull;

campaign::TrialSpec trial_proto(Variant v, FaultPoint p) {
  campaign::TrialSpec spec;
  spec.cfg.variant = v;
  spec.cfg.tc_total_budget = 200;
  spec.cfg.adaptive.enabled = true;
  spec.cfg.adaptive.cycles_per_beat = 3;
  spec.cfg.adaptive.cycles_per_ahead = 6;
  spec.point = p;
  spec.traffic.enabled = true;
  spec.traffic.p_new_txn = 0.25;
  spec.traffic.max_outstanding = 6;
  spec.traffic.len_max = 7;
  spec.inject_delay_max = 300;
  spec.detect_budget = 3000;
  spec.exercise_recovery = true;
  return spec;
}

campaign::remote::CampaignSpec make_spec(std::size_t trials_per_scenario) {
  campaign::remote::CampaignSpec spec;
  spec.base_seed = kBaseSeed;
  for (FaultPoint p : {FaultPoint::kAwReadyStuck, FaultPoint::kRValidStuck}) {
    for (Variant v : {Variant::kFullCounter, Variant::kTinyCounter}) {
      const char* vs = v == Variant::kFullCounter ? "fc/" : "tc/";
      spec.scenarios.push_back(campaign::make_scenario(
          vs + std::string(to_string(p)), trial_proto(v, p),
          trials_per_scenario));
    }
  }
  return spec;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  sim::global_log_level() = sim::LogLevel::kOff;
  std::size_t trials_per_scenario = 8;
  if (argc > 1) {
    trials_per_scenario = std::strtoull(argv[1], nullptr, 10);
    if (trials_per_scenario == 0) {
      std::fprintf(stderr, "usage: distributed_campaign [trials-per-scenario]\n");
      return 2;
    }
  }

  // ---- 1. The campaign as data ----
  const campaign::remote::CampaignSpec spec = make_spec(trials_per_scenario);
  const std::string spec_json = spec.to_json();
  // Round-trip sanity: the document reparses to an equal spec.
  if (!(campaign::remote::CampaignSpec::from_json(spec_json) == spec)) {
    std::fprintf(stderr, "FAIL: spec did not round-trip\n");
    return 1;
  }
  std::printf("spec: %llu trials, %zu scenarios, %zu bytes, hash %016llx\n",
              static_cast<unsigned long long>(spec.total_trials()),
              spec.scenarios.size(), spec_json.size(),
              static_cast<unsigned long long>(spec.hash()));

  // ---- 2a. Serial reference: the in-process engine, one thread ----
  auto t0 = std::chrono::steady_clock::now();
  const campaign::Report serial =
      campaign::Engine({1, spec.base_seed}).run(spec.scenarios);
  const double serial_ms = ms_since(t0);
  std::printf("engine (1 thread):     %7.1f ms\n", serial_ms);

  // ---- 2b. The dispatcher: sharded ranges, merged slices ----
  campaign::remote::DispatcherOptions opts;
  if (const char* worker = std::getenv("TMU_CAMPAIGN_WORKER")) {
    opts.worker_binary = worker;
  }
  opts.workers = 4;
  opts.deadline_ms = 10000;
  campaign::remote::Dispatcher dispatcher(opts);
  t0 = std::chrono::steady_clock::now();
  const campaign::Report merged = dispatcher.run(spec);
  const double dispatch_ms = ms_since(t0);
  const campaign::remote::DispatchStats& st = dispatcher.stats();
  std::printf(
      "dispatcher (%s, %u workers): %7.1f ms  (%.2fx)\n",
      opts.worker_binary.empty() ? "in-process" : "forked", dispatcher.workers(),
      dispatch_ms, serial_ms / dispatch_ms);
  std::printf(
      "  spawned %llu  crashed %llu  hung %llu  corrupt %llu  "
      "reissued %llu  fallback %llu\n",
      static_cast<unsigned long long>(st.spawned),
      static_cast<unsigned long long>(st.crashed),
      static_cast<unsigned long long>(st.hung),
      static_cast<unsigned long long>(st.corrupt),
      static_cast<unsigned long long>(st.reissued),
      static_cast<unsigned long long>(st.fallback_ranges));

  // ---- 3. The contract: byte-identical reports ----
  if (merged.to_json() != serial.to_json()) {
    std::fprintf(stderr, "FAIL: merged report differs from serial engine\n");
    return 1;
  }
  std::printf("merged report byte-identical to serial engine (%llu trials, "
              "%llu detected)\n",
              static_cast<unsigned long long>(merged.total_trials()),
              static_cast<unsigned long long>(merged.overall.detected));
  return 0;
}
