// Quickstart: drop a TMU between a manager and a subordinate, run
// healthy traffic, then watch it catch a hung subordinate and recover.
//
//   gen --- [TMU] --- [fault injector] --- memory
//              |
//              +--> irq / reset_req --> reset unit --> memory.hw_reset()
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "sim/kernel.hpp"
#include "soc/reset_unit.hpp"
#include "tmu/tmu.hpp"

int main() {
  using namespace axi;

  // --- 1. configure the TMU (Full-Counter, phase-level monitoring) ---
  tmu::TmuConfig cfg;
  cfg.variant = tmu::Variant::kFullCounter;
  cfg.max_uniq_ids = 4;      // Table I: MaxUniqIDs
  cfg.txn_per_uniq_id = 4;   // Table I: TxnPerUniqID
  cfg.adaptive.enabled = true;

  // --- 2. build the bench ---
  Link l_gen, l_tmu_sub, l_mem;
  TrafficGenerator gen("gen", l_gen);
  tmu::Tmu tmu("tmu", l_gen, l_tmu_sub, cfg);
  fault::FaultInjector inj("inj", l_tmu_sub, l_mem);
  MemorySubordinate mem("mem", l_mem);
  soc::ResetUnit rst("rst", tmu.reset_req, tmu.reset_ack,
                     [&] { mem.hw_reset(); });

  sim::Simulator s;
  s.add(gen);
  s.add(tmu);
  s.add(inj);
  s.add(mem);
  s.add(rst);
  s.reset();

  // --- 3. healthy traffic: the TMU is a transparent observer ---
  for (int i = 0; i < 8; ++i) {
    gen.push(TxnDesc{true, static_cast<Id>(i % 3),
                     static_cast<Addr>(i * 0x100), 7, 3, Burst::kIncr});
    gen.push(TxnDesc{false, static_cast<Id>(i % 3),
                     static_cast<Addr>(i * 0x100), 7, 3, Burst::kIncr});
  }
  s.run_until([&] { return gen.completed() >= 16; }, 5000);
  std::printf("healthy phase : %zu transactions completed, %zu faults, "
              "mean write latency %.1f cycles\n",
              gen.completed(), tmu.fault_log().size(),
              tmu.write_guard().stats().total_latency.mean());

  // --- 4. the subordinate hangs: B response never comes ---
  inj.arm(fault::FaultPoint::kBValidStuck);
  gen.push(TxnDesc{true, 0, 0x4000, 7, 3, Burst::kIncr});
  s.run_until([&] { return tmu.any_fault(); }, 2000);
  const tmu::FaultRecord& f = tmu.fault_log().front();
  std::printf("fault detected: %s\n", f.describe().c_str());

  // --- 5. recovery: abort, reset, resume ---
  s.run_until([&] { return !tmu.severed(); }, 1000);
  std::printf("recovery      : reset unit fired %llu time(s), manager got "
              "SLVERR for the aborted write\n",
              static_cast<unsigned long long>(rst.resets_performed()));

  inj.disarm();
  tmu.clear_irq();
  gen.push(TxnDesc{true, 1, 0x5000, 3, 3, Burst::kIncr});
  s.run_until([&] { return gen.completed() >= 18; }, 2000);
  std::printf("back to normal: %zu transactions total, %llu recovery\n",
              gen.completed(),
              static_cast<unsigned long long>(tmu.recoveries()));
  return 0;
}
