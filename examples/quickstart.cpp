// Quickstart: describe a TMU-guarded endpoint as data, build it with
// SocBuilder, run healthy traffic, then watch the TMU catch a hung
// subordinate and recover.
//
//   gen --- [TMU] --- [fault injector] --- memory
//              |
//              +--> irq / reset_req --> reset unit --> memory.hw_reset()
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "soc/builder.hpp"
#include "soc/reset_unit.hpp"
#include "tmu/tmu.hpp"

int main() {
  using namespace axi;

  // --- 1. describe the topology (data, not wiring) ---
  soc::SocDesc d;
  d.name = "quickstart";
  d.crossbar = false;  // point-to-point: gen straight into the chain

  soc::ManagerDesc gen_d;
  gen_d.name = "gen";
  d.managers = {gen_d};

  soc::SubordinateDesc mem_d;
  mem_d.name = "mem";
  d.subordinates = {mem_d};

  soc::GuardDesc guard;  // Full-Counter TMU, phase-level monitoring
  guard.name = "tmu";
  guard.subordinate = "mem";
  guard.cfg.variant = tmu::Variant::kFullCounter;
  guard.cfg.max_uniq_ids = 4;     // Table I: MaxUniqIDs
  guard.cfg.txn_per_uniq_id = 4;  // Table I: TxnPerUniqID
  guard.cfg.adaptive.enabled = true;
  guard.sub_injector = "inj";  // fault injector behind the TMU
  guard.reset_unit = "rst";
  d.guards = {guard};

  // --- 2. build it: validation, wiring, simulator registration ---
  const auto soc = soc::SocBuilder::build(d);
  sim::Simulator& s = soc->sim();
  auto& gen = soc->get<TrafficGenerator>("gen");
  auto& tmu = soc->get<tmu::Tmu>("tmu");
  auto& inj = soc->get<fault::FaultInjector>("inj");
  auto& rst = soc->get<soc::ResetUnit>("rst");

  // --- 3. healthy traffic: the TMU is a transparent observer ---
  for (int i = 0; i < 8; ++i) {
    gen.push(TxnDesc{true, static_cast<Id>(i % 3),
                     static_cast<Addr>(i * 0x100), 7, 3, Burst::kIncr});
    gen.push(TxnDesc{false, static_cast<Id>(i % 3),
                     static_cast<Addr>(i * 0x100), 7, 3, Burst::kIncr});
  }
  s.run_until([&] { return gen.completed() >= 16; }, 5000);
  std::printf("healthy phase : %zu transactions completed, %zu faults, "
              "mean write latency %.1f cycles\n",
              gen.completed(), tmu.fault_log().size(),
              tmu.write_guard().stats().total_latency.mean());

  // --- 4. the subordinate hangs: B response never comes ---
  inj.arm(fault::FaultPoint::kBValidStuck);
  gen.push(TxnDesc{true, 0, 0x4000, 7, 3, Burst::kIncr});
  s.run_until([&] { return tmu.any_fault(); }, 2000);
  const tmu::FaultRecord& f = tmu.fault_log().front();
  std::printf("fault detected: %s\n", f.describe().c_str());

  // --- 5. recovery: abort, reset, resume ---
  s.run_until([&] { return !tmu.severed(); }, 1000);
  std::printf("recovery      : reset unit fired %llu time(s), manager got "
              "SLVERR for the aborted write\n",
              static_cast<unsigned long long>(rst.resets_performed()));

  inj.disarm();
  tmu.clear_irq();
  gen.push(TxnDesc{true, 1, 0x5000, 3, 3, Burst::kIncr});
  s.run_until([&] { return gen.completed() >= 18; }, 2000);
  std::printf("back to normal: %zu transactions total, %llu recovery\n",
              gen.completed(),
              static_cast<unsigned long long>(tmu.recoveries()));
  return 0;
}
