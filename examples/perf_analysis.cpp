// Bottleneck analysis with the Full-Counter's performance log (§II-H):
// the Fc TMU doubles as a performance monitor, recording per-phase
// latency of every completed transaction. Here a slow write data path
// is planted in the subordinate; the phase statistics point straight at
// the WFIRST_WLAST (burst data transfer) phase.
//
// Build & run:  ./build/examples/perf_analysis

#include <cstdio>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "sim/kernel.hpp"
#include "tmu/tmu.hpp"

int main() {
  using namespace axi;

  tmu::TmuConfig cfg;
  cfg.variant = tmu::Variant::kFullCounter;  // perf logging needs Fc
  cfg.adaptive.enabled = true;
  cfg.adaptive.cycles_per_beat = 6;  // tolerate the slow data path

  Link l_gen, l_sub;
  TrafficGenerator gen("gen", l_gen, 42);
  tmu::Tmu tmu("tmu", l_gen, l_sub, cfg);
  MemoryConfig mc;
  mc.w_ready_every = 4;  // the planted bottleneck: 1 beat per 4 cycles
  mc.b_latency = 2;
  MemorySubordinate mem("mem", l_sub, mc);

  // One transaction in flight at a time, so the per-phase statistics
  // isolate the endpoint itself rather than queueing effects.
  gen.set_max_outstanding(1);

  sim::Simulator s;
  s.add(gen);
  s.add(tmu);
  s.add(mem);
  s.reset();

  for (int i = 0; i < 32; ++i) {
    gen.push(TxnDesc{true, static_cast<Id>(i % 4),
                     static_cast<Addr>(i * 0x100), 15, 3, Burst::kIncr});
  }
  if (!s.run_until([&] { return gen.completed() >= 32; }, 50000)) {
    std::printf("traffic did not complete\n");
    return 1;
  }

  const tmu::GuardStats& st = tmu.write_guard().stats();
  std::printf("completed %llu write transactions, %llu beats, 0 faults=%s\n\n",
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.beats),
              tmu.any_fault() ? "NO" : "yes");

  std::printf("%-14s %10s %10s %10s\n", "write phase", "mean", "min", "max");
  for (unsigned p = 0; p < tmu::kNumWritePhases; ++p) {
    std::printf("%-14s %10.1f %10.0f %10.0f\n",
                to_string(static_cast<tmu::WritePhase>(p)),
                st.phase[p].mean(), st.phase[p].min(), st.phase[p].max());
  }
  std::printf("%-14s %10.1f\n\n", "TOTAL", st.total_latency.mean());

  // Identify the bottleneck phase automatically.
  unsigned worst = 0;
  for (unsigned p = 1; p < tmu::kNumWritePhases; ++p) {
    if (st.phase[p].mean() > st.phase[worst].mean()) worst = p;
  }
  std::printf("bottleneck: %s (%.0f%% of the mean transaction time) — the\n"
              "planted 1-beat-per-4-cycles write data path.\n",
              to_string(static_cast<tmu::WritePhase>(worst)),
              100.0 * st.phase[worst].mean() / st.total_latency.mean());

  // The raw per-transaction log is also available:
  const auto& log = tmu.write_guard().perf_log();
  std::printf("\nfirst three entries of the per-transaction perf log:\n");
  for (std::size_t i = 0; i < 3 && i < log.size(); ++i) {
    std::printf("  id=%u addr=0x%llx len=%u total=%u cycles\n", log[i].id,
                static_cast<unsigned long long>(log[i].addr), log[i].len + 1,
                log[i].total_cycles);
  }

  // Simulator-side cost of the run, courtesy of the event-driven
  // scheduler (src/sim/sched/): how much eval work the wire fan-out
  // dirty-sets actually performed vs. what a full sweep would pay.
  const sim::sched::SchedStats& ss = s.sched_stats();
  std::printf("\nscheduler: %llu module evals over %llu cycles "
              "(%.2f evals/cycle), "
              "%llu wire writes, %llu wakeups, %zu wires / %zu edges, "
              "%llu sensitivity misses\n",
              static_cast<unsigned long long>(ss.module_evals),
              static_cast<unsigned long long>(s.cycle()),
              static_cast<double>(ss.module_evals) /
                  static_cast<double>(s.cycle()),
              static_cast<unsigned long long>(ss.wire_writes),
              static_cast<unsigned long long>(ss.wakeups), ss.wires,
              ss.edges,
              static_cast<unsigned long long>(ss.sensitivity_misses));
  return 0;
}
