// System-level scenario (paper Fig. 10/11): the Cheshire-like SoC with
// the TMU monitoring the Ethernet endpoint. The Ethernet IP hangs in
// the middle of a 250-beat frame write; the TMU severs the endpoint,
// aborts the transaction with SLVERR, the reset unit power-cycles the
// IP, the CVA6 stub services the interrupt, and traffic resumes.
//
// Build & run:  ./build/examples/ethernet_recovery

#include <cstdio>

#include "soc/cheshire.hpp"

int main() {
  using namespace axi;
  using soc::CheshireMap;

  tmu::TmuConfig cfg;
  cfg.variant = tmu::Variant::kFullCounter;
  cfg.budgets.aw_vld_aw_rdy = 10;
  cfg.budgets.aw_rdy_w_vld = 20;
  cfg.budgets.w_vld_w_rdy = 10;
  cfg.budgets.w_first_w_last = 250;
  cfg.budgets.w_last_b_vld = 10;
  cfg.budgets.b_vld_b_rdy = 10;
  cfg.max_txn_cycles = 320;
  cfg.adaptive.enabled = false;

  soc::CheshireSystem sys(cfg);

  // Background traffic on the rest of the SoC.
  RandomTrafficConfig rc;
  rc.enabled = true;
  rc.p_new_txn = 0.1;
  rc.addr_min = CheshireMap::kDramBase;
  rc.addr_max = CheshireMap::kDramBase + 0xFF00;
  sys.cva6_0().set_random(rc);

  // The iDMA streams a 250-beat frame into the Ethernet TX window; the
  // MAC stalls mid-frame (w_ready stuck after 125 beats).
  sys.eth_side_injector().arm(fault::FaultPoint::kMidBurstWStall, 0, 125);
  sys.idma().push(TxnDesc{true, 2, CheshireMap::kEthTxWindow, 249, 3,
                          Burst::kIncr});

  sys.sim().run_until([&] { return sys.tmu().any_fault(); }, 5000);
  const auto& f = sys.tmu().fault_log().front();
  std::printf("t=%-6llu TMU detected: %s\n",
              static_cast<unsigned long long>(f.cycle), f.describe().c_str());

  sys.sim().run_until(
      [&] { return !sys.tmu().severed() && sys.cpu().irqs_handled() >= 1; },
      3000);
  std::printf("t=%-6llu recovered: ethernet hw resets=%llu, CPU handled "
              "%llu irq(s), read %llu fault record(s)\n",
              static_cast<unsigned long long>(sys.sim().cycle()),
              static_cast<unsigned long long>(sys.ethernet().hw_resets()),
              static_cast<unsigned long long>(sys.cpu().irqs_handled()),
              static_cast<unsigned long long>(sys.cpu().faults_read()));

  // Ethernet is functional again; DRAM traffic never stopped.
  sys.eth_side_injector().disarm();
  const auto before = sys.ethernet().frames_txed();
  sys.idma().push(TxnDesc{true, 2, CheshireMap::kEthTxWindow, 63, 3,
                          Burst::kIncr});
  sys.sim().run_until([&] { return sys.ethernet().frames_txed() >= before + 64; },
                      3000);
  std::printf("t=%-6llu ethernet alive again: %llu beats on the wire; "
              "CVA6 completed %zu DRAM transactions throughout\n",
              static_cast<unsigned long long>(sys.sim().cycle()),
              static_cast<unsigned long long>(sys.ethernet().frames_txed()),
              sys.cva6_0().completed());
  return 0;
}
