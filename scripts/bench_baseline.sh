#!/usr/bin/env bash
# Runs bench_sim_throughput, bench_campaign, bench_soc_scaling and
# bench_overhead and records the results as the committed baselines
# under bench/baselines/.
# Usage: scripts/bench_baseline.sh [throughput.json] [campaign.json]
#                                  [scaling.json] [overhead.json]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

out="${1:-bench/baselines/BENCH_sim_throughput.json}"
campaign_out="${2:-bench/baselines/BENCH_campaign.json}"
scaling_out="${3:-bench/baselines/BENCH_soc_scaling.json}"
overhead_out="${4:-bench/baselines/BENCH_overhead.json}"
mkdir -p "$(dirname "$out")" "$(dirname "$campaign_out")" \
  "$(dirname "$scaling_out")" "$(dirname "$overhead_out")"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j --target bench_sim_throughput bench_campaign \
  bench_soc_scaling bench_overhead

# Arg 0 = full-sweep scheduler, arg 1 = event-driven: the baseline
# carries both policies. TMU_SPEEDUP_REPORT=0 skips the chrono preamble
# (run ./build/bench_sim_throughput directly for the speedup table).
TMU_SPEEDUP_REPORT=0 ./build/bench_sim_throughput \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

# Serial-vs-parallel engine throughput (BM_EngineSerial / BM_EngineParallel
# trials_per_s counters record the speedup). TMU_CAMPAIGN_REPORT=0 skips
# the 200-trial report preamble — the registered benchmarks are the
# baseline payload; run ./build/bench_campaign directly for the report.
TMU_CAMPAIGN_REPORT=0 ./build/bench_campaign \
  --benchmark_out="$campaign_out" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

# Grid-SoC scaling trajectory (BM_GridSoc cycles/s counters across
# policies and crossbar implementations). TMU_SCALING_REPORT=0 skips the
# area/recovery/knee preamble — run ./build/bench_soc_scaling directly
# for the printed sweep tables.
TMU_SCALING_REPORT=0 ./build/bench_soc_scaling \
  --benchmark_out="$scaling_out" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

# TMU-vs-bare traversal cost (BM_WithTmu / BM_Bare — the §II-B "no
# added latency" claim as wall-clock numbers). TMU_OVERHEAD_REPORT=0
# skips the comparison tables and the metrics-registry gate — run
# ./build/bench_overhead directly for those, or `--metrics-gate` for
# the CI exit code.
TMU_OVERHEAD_REPORT=0 ./build/bench_overhead \
  --benchmark_out="$overhead_out" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

echo
echo "Baselines recorded at $out, $campaign_out, $scaling_out and" \
  "$overhead_out"
