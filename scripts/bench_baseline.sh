#!/usr/bin/env bash
# Runs bench_sim_throughput and records the result as the committed
# baseline under bench/baselines/. Usage: scripts/bench_baseline.sh [out.json]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

out="${1:-bench/baselines/BENCH_sim_throughput.json}"
mkdir -p "$(dirname "$out")"

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j --target bench_sim_throughput

./build/bench_sim_throughput \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

echo
echo "Baseline recorded at $out"
