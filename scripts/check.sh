#!/usr/bin/env bash
# Tier-1 verify gate: configure + build + ctest + one throughput bench run.
# Usage: scripts/check.sh [--no-bench]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

run_bench=1
if [[ $# -gt 0 ]]; then
  case "$1" in
    --no-bench) run_bench=0 ;;
    *)
      echo "usage: scripts/check.sh [--no-bench]" >&2
      exit 2
      ;;
  esac
fi

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# Scheduler determinism gate: the event-driven dirty-set kernel must be
# cycle-exact against the full sweep on the seeded IP and SoC netlists
# (lockstep fuzz incl. fault campaigns and idle phases).
./build/test_sched_equiv --gtest_brief=1
echo "check.sh: event-driven vs full-sweep equivalence OK"

# Crossbar shard gate: the per-port sharded evaluation must be
# wire-exact against the monolithic reference eval (lockstep fuzz incl.
# injected faults, DECERR traffic and busy->idle->busy transitions).
./build/test_xbar_shard_equiv --gtest_brief=1
echo "check.sh: sharded vs monolithic crossbar equivalence OK"

# Topology gate: the SocBuilder elaboration of cheshire_desc() must be
# cycle-exact against the legacy hand-wired construction (wire-for-wire
# lockstep through fault + recovery) and the builder-based fault trial
# must match the hand-wired IP testbench result-for-result.
./build/test_soc_desc_equiv --gtest_brief=1
echo "check.sh: builder vs hand-wired topology equivalence OK"

# Hierarchy gate: the degenerate 1-level cluster wrap (transparent
# bridges) must be cycle-exact against the flat build under both
# schedulers, and hierarchical campaign reports must be byte-identical
# across thread counts with the v2 topology hash recorded.
./build/test_soc_hier_equiv --gtest_brief=1
echo "check.sh: flat vs hierarchical topology equivalence OK"

# Desc schema gate: nested round-trip fuzz + v1 -> v2 migration smoke.
./build/test_soc_desc_roundtrip --gtest_brief=1
echo "check.sh: SocDesc round-trip + v1 migration OK"

# Observability gate: metrics registry / latency probe / scheduler
# profiler units, then the campaign-telemetry determinism contract (v3
# report with probe histograms + eval profile, byte-identical across
# thread counts).
./build/test_obs_metrics --gtest_brief=1
./build/test_obs_campaign --gtest_brief=1
echo "check.sh: observability layer + campaign telemetry OK"

# Tracing gate: tmu-axi-trace-v1 format units (incl. the committed
# fixture byte-pin), record -> replay equivalence on the IP testbench
# and the full Cheshire SoC under both scheduler policies, the
# deterministic Chrome-trace export, and the end-to-end
# record/replay/export example (exit 0 iff the replay reproduced the
# subordinate-side traffic and memory state byte-identically).
./build/test_trace_format --gtest_brief=1
./build/test_trace_replay --gtest_brief=1
./build/test_trace_export --gtest_brief=1
./build/trace_replay > /dev/null
echo "check.sh: trace record/replay/export equivalence OK"

# Distributed-campaign gate: spec/slice round-trip + hash-sensitivity
# fuzz, byte-identical merge for arbitrary shard splits (incl.
# out-of-order and uneven), and dispatcher recovery from crashed, hung
# and garbage-emitting workers (real forked campaign_worker processes).
./build/test_campaign_remote --gtest_brief=1
# End-to-end recovery drill: fork real workers, crash one mid-range and
# make another emit garbage instead of a slice; the example exits
# nonzero unless the merged report comes out byte-identical to the
# serial in-process run.
TMU_CAMPAIGN_WORKER=./build/campaign_worker \
  TMU_WORKER_FAIL=crash@3,corrupt@9 \
  ./build/distributed_campaign > /dev/null
echo "check.sh: distributed-campaign dispatcher recovery OK"

# Snapshot gate: tmu-soc-snapshot-v1 strict-decode rejection paths +
# committed fixture byte-pin, the hier-grid/Cheshire round-trip fuzz,
# then the cold-vs-fork equivalence contract: a warm-up-heavy campaign
# run via snapshot forking must report byte-identically to the cold run
# (the snapshot_fork example exits nonzero on any divergence).
./build/test_snapshot_format --gtest_brief=1
./build/test_snapshot_roundtrip --gtest_brief=1
./build/test_snapshot_fork --gtest_brief=1
./build/snapshot_fork > /dev/null
echo "check.sh: snapshot fork-vs-cold equivalence OK"

# Scaling-bench smoke: the grid SoC sweep must construct and run at
# small sizes with deterministic cross-implementation traffic counts.
./build/bench_soc_scaling --smoke
echo "check.sh: bench_soc_scaling smoke OK"

# Metrics registry gate: on the 32x24 grid hot path, per-link probes
# writing through registry slots (+ the scheduler profiler) must stay
# within 2% of identical probes writing into local members — the
# registry layer itself adds nothing per increment (override:
# TMU_METRICS_GATE_PCT).
./build/bench_overhead --metrics-gate
echo "check.sh: metrics registry overhead within gate"

if [[ "$run_bench" == 1 ]]; then
  ./build/bench_sim_throughput \
    --benchmark_out=build/sim_throughput.bench.json \
    --benchmark_out_format=json
  echo
  echo "Bench JSON written to build/sim_throughput.bench.json"
  echo "Committed baseline: bench/baselines/BENCH_sim_throughput.json"
fi

echo "check.sh: all green"
