// Remaining-surface coverage: logger levels, wire change-epoch
// semantics, Ethernet MMIO counters read over the bus, multi-frame
// loopback, and TMU behaviour when disabled/re-enabled at runtime.

#include <gtest/gtest.h>

#include <sstream>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "sim/kernel.hpp"
#include "sim/logger.hpp"
#include "sim/wire.hpp"
#include "soc/ethernet.hpp"
#include "soc/reset_unit.hpp"
#include "tmu/regs.hpp"
#include "tmu/tmu.hpp"

namespace {

using namespace axi;

TEST(WireEpoch, OnlyRealChangesBumpEpoch) {
  sim::Wire<int> w;
  const auto e0 = sim::change_epoch();
  w.write(0);  // same value: no bump
  EXPECT_EQ(sim::change_epoch(), e0);
  w.write(5);
  EXPECT_EQ(sim::change_epoch(), e0 + 1);
  w.write(5);
  EXPECT_EQ(sim::change_epoch(), e0 + 1);
  // force() also bumps only on an actual change: reset storms forcing
  // already-default values must not invalidate unrelated simulators.
  w.force(5);
  EXPECT_EQ(sim::change_epoch(), e0 + 1);
  w.force(6);
  EXPECT_EQ(sim::change_epoch(), e0 + 2);
}

TEST(WireEpoch, StructValuesCompareDeep) {
  sim::Wire<AxiReq> w;
  AxiReq q{};
  const auto e0 = sim::change_epoch();
  w.write(q);  // default == default: no change
  EXPECT_EQ(sim::change_epoch(), e0);
  q.aw_valid = true;
  w.write(q);
  EXPECT_EQ(sim::change_epoch(), e0 + 1);
}

TEST(Logger, LevelGateWorks) {
  const sim::LogLevel saved = sim::global_log_level();
  sim::global_log_level() = sim::LogLevel::kError;
  // Below the gate: nothing should be emitted (visually verified by the
  // absence of output; functionally the LogLine is disabled).
  sim::log(sim::LogLevel::kDebug, "test", 0) << "invisible";
  sim::global_log_level() = sim::LogLevel::kOff;
  sim::log(sim::LogLevel::kError, "test", 0) << "also invisible";
  sim::global_log_level() = saved;
  SUCCEED();
}

TEST(EthernetMmio, CountersReadableOverBus) {
  Link link;
  TrafficGenerator gen("gen", link);
  soc::EthernetPeripheral eth("eth", link);
  sim::Simulator s;
  s.add(gen);
  s.add(eth);
  s.reset();
  // Send a frame, wait for drain, then read the beats-transmitted
  // counter at MMIO offset 0x10.
  gen.push(TxnDesc{true, 0, 0x1000, 7, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return eth.frames_txed() >= 8; }, 500));
  gen.push(TxnDesc{false, 0, 0x0010, 0, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 200));
  // The MMIO read returns a counter, not pattern data; pattern checking
  // skipped it because the read landed in completed records:
  EXPECT_EQ(gen.records()[1].resp, Resp::kOkay);
  // Reset-count register at 0x20.
  eth.hw_reset();
  s.run(2);
  gen.push(TxnDesc{false, 0, 0x0020, 0, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 3; }, 200));
  EXPECT_EQ(eth.hw_resets(), 1u);
}

TEST(EthernetLoopback, MultipleFramesRoundTrip) {
  Link link;
  TrafficGenerator gen("gen", link);
  soc::EthernetConfig cfg;
  cfg.drain_every = 2;
  soc::EthernetPeripheral eth("eth", link, cfg);
  sim::Simulator s;
  s.add(gen);
  s.add(eth);
  s.reset();
  for (int f = 0; f < 3; ++f) {
    gen.push(TxnDesc{true, 0, 0x1000, 15, 3, Burst::kIncr});
  }
  ASSERT_TRUE(s.run_until([&] { return eth.frames_txed() >= 48; }, 2000));
  EXPECT_EQ(eth.writes_done(), 3u);
  EXPECT_EQ(eth.rx_fifo_level(), 48u);
}

TEST(TmuRuntime, DisableMidRunStopsMonitoringReEnableResumes) {
  Link l_gen, l_tmu_sub, l_mem;
  TrafficGenerator gen("gen", l_gen);
  tmu::TmuConfig cfg;
  cfg.adaptive.enabled = true;
  tmu::Tmu monitor("tmu", l_gen, l_tmu_sub, cfg);
  fault::FaultInjector inj("inj", l_tmu_sub, l_mem);
  MemorySubordinate mem("mem", l_mem);
  soc::ResetUnit rst("rst", monitor.reset_req, monitor.reset_ack,
                     [&] { mem.hw_reset(); });
  sim::Simulator s;
  s.add(gen);
  s.add(monitor);
  s.add(inj);
  s.add(mem);
  s.add(rst);
  s.reset();

  // Healthy write with monitoring on.
  gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 300));

  // Disable over the register file; a stall now goes unnoticed but the
  // datapath keeps working when the fault clears.
  monitor.write_reg(tmu::regs::kCtrl, 0b1110);  // enable=0
  inj.arm(fault::FaultPoint::kBValidStuck);
  gen.push(TxnDesc{true, 0, 0x200, 0, 3, Burst::kIncr});
  s.run(400);
  EXPECT_FALSE(monitor.any_fault());
  inj.disarm();
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 300));

  // Re-enable: monitoring is live again.
  monitor.write_reg(tmu::regs::kCtrl, 0b1111);
  inj.arm(fault::FaultPoint::kBValidStuck);
  gen.push(TxnDesc{true, 0, 0x300, 0, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return monitor.any_fault(); }, 500));
}

TEST(TmuRuntime, FaultDescribeIsHumanReadable) {
  tmu::FaultRecord f;
  f.cycle = 42;
  f.is_write = false;
  f.kind = tmu::FaultKind::kTimeout;
  f.phase_valid = true;
  f.phase = static_cast<std::uint8_t>(tmu::ReadPhase::kArRdyRVld);
  f.id = 3;
  f.addr = 0xBEEF;
  f.elapsed = 20;
  f.budget = 20;
  const std::string d = f.describe();
  EXPECT_NE(d.find("RD"), std::string::npos);
  EXPECT_NE(d.find("TIMEOUT"), std::string::npos);
  EXPECT_NE(d.find("ARRDY_RVLD"), std::string::npos);
  EXPECT_NE(d.find("beef"), std::string::npos);
  EXPECT_NE(d.find("20/20"), std::string::npos);
}

}  // namespace
