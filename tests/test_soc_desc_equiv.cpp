// Builder-vs-legacy equivalence: the SocBuilder elaboration of
// cheshire_desc() must be cycle-exact against the hand-wired
// CheshireSystem construction it replaced (kept here as the reference),
// wire-for-wire under lockstep stimulus — random traffic, DMA streams,
// injected faults, recovery and idle phases. Likewise the builder-based
// campaign::run_fault_trial must reproduce the legacy hand-wired IP
// trial result-for-result. This is the topology-redesign gate
// scripts/check.sh runs alongside the scheduler and crossbar gates.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "campaign/campaign.hpp"
#include "sim/logger.hpp"
#include "sim/random.hpp"
#include "soc/builder.hpp"
#include "soc/cheshire.hpp"
#include "soc/topologies.hpp"

namespace {

using namespace axi;

// Injected faults legitimately provoke protocol warnings; keep the
// determinism-gate output clean.
const bool g_quiet = [] {
  sim::global_log_level() = sim::LogLevel::kOff;
  return true;
}();

/// The pre-redesign CheshireSystem, verbatim: fixed members, hand-wired
/// links, explicit Simulator::add sequence. The builder must reproduce
/// this netlist exactly (its canonical registration order differs only
/// between wire-coupled chains, which must not be observable).
struct LegacyCheshire {
  axi::Link l_cva6_0_, l_cva6_1_, l_idma_, l_dma_eng_;
  axi::Link l_llc_up_, l_eth_xbar_, l_periph_xbar_;
  axi::Link l_dram_;
  axi::Link l_tmu_mst_, l_tmu_sub_, l_eth_;
  axi::Link l_periph_tmu_sub_, l_periph_;

  axi::TrafficGenerator cva6_0_;
  axi::TrafficGenerator cva6_1_;
  axi::TrafficGenerator idma_;
  soc::IdmaEngine dma_engine_;
  axi::Crossbar xbar_;
  soc::LastLevelCache llc_;
  axi::MemorySubordinate dram_;
  tmu::Tmu periph_tmu_;
  fault::FaultInjector periph_inj_;
  axi::MemorySubordinate periph_;
  fault::FaultInjector inj_m_;
  tmu::Tmu tmu_;
  fault::FaultInjector inj_s_;
  soc::EthernetPeripheral eth_;
  soc::ResetUnit rst_;
  soc::ResetUnit periph_rst_;
  soc::IrqController plic_;
  soc::CpuRecoveryStub cpu_;
  sim::Simulator sim_;

  explicit LegacyCheshire(const tmu::TmuConfig& tmu_cfg,
                          soc::EthernetConfig eth_cfg = {})
      : cva6_0_("cva6_0", l_cva6_0_, 101),
        cva6_1_("cva6_1", l_cva6_1_, 202),
        idma_("idma", l_idma_, 303),
        dma_engine_("dma_engine", l_dma_eng_, 16, 0xD),
        xbar_("xbar", {&l_cva6_0_, &l_cva6_1_, &l_idma_, &l_dma_eng_},
              {&l_llc_up_, &l_eth_xbar_, &l_periph_xbar_},
              {axi::AddrRange{soc::CheshireMap::kDramBase,
                              soc::CheshireMap::kDramSize, 0},
               axi::AddrRange{soc::CheshireMap::kEthBase,
                              soc::CheshireMap::kEthSize, 1},
               axi::AddrRange{soc::CheshireMap::kPeriphBase,
                              soc::CheshireMap::kPeriphSize, 2}}),
        llc_("llc", l_llc_up_, l_dram_),
        dram_("dram", l_dram_),
        periph_tmu_("periph_tmu", l_periph_xbar_, l_periph_tmu_sub_,
                    soc::periph_tc_config()),
        periph_inj_("periph_inj", l_periph_tmu_sub_, l_periph_),
        periph_("periph", l_periph_),
        inj_m_("inj_m", l_eth_xbar_, l_tmu_mst_),
        tmu_("tmu", l_tmu_mst_, l_tmu_sub_, tmu_cfg),
        inj_s_("inj_s", l_tmu_sub_, l_eth_),
        eth_("ethernet", l_eth_, eth_cfg),
        rst_("reset_unit", tmu_.reset_req, tmu_.reset_ack,
             [this] { eth_.hw_reset(); }),
        periph_rst_("periph_reset_unit", periph_tmu_.reset_req,
                    periph_tmu_.reset_ack, [this] { periph_.hw_reset(); }),
        plic_("plic"),
        cpu_("cva6_irq_handler", plic_, {&tmu_, &periph_tmu_}) {
    plic_.add_source(tmu_.irq);
    plic_.add_source(periph_tmu_.irq);
    sim_.add(cva6_0_);
    sim_.add(cva6_1_);
    sim_.add(idma_);
    sim_.add(dma_engine_);
    sim_.add(xbar_);
    sim_.add(llc_);
    sim_.add(dram_);
    sim_.add(periph_tmu_);
    sim_.add(periph_inj_);
    sim_.add(periph_);
    sim_.add(inj_m_);
    sim_.add(tmu_);
    sim_.add(inj_s_);
    sim_.add(eth_);
    sim_.add(rst_);
    sim_.add(periph_rst_);
    sim_.add(plic_);
    sim_.add(cpu_);
    sim_.reset();
  }
};

void expect_links_equal(const Link& legacy, const Link& built,
                        const std::string& which, std::uint64_t cycle) {
  ASSERT_TRUE(legacy.req.read() == built.req.read())
      << which << ".req diverged at cycle " << cycle;
  ASSERT_TRUE(legacy.rsp.read() == built.rsp.read())
      << which << ".rsp diverged at cycle " << cycle;
}

/// Every link of the legacy netlist against its builder-named twin.
void expect_netlists_equal(LegacyCheshire& a, soc::Soc& b,
                           std::uint64_t cycle) {
  const std::pair<Link*, const char*> pairs[] = {
      {&a.l_cva6_0_, "cva6_0.out"},
      {&a.l_cva6_1_, "cva6_1.out"},
      {&a.l_idma_, "idma.out"},
      {&a.l_dma_eng_, "dma_engine.out"},
      {&a.l_llc_up_, "llc.in"},
      {&a.l_dram_, "dram.in"},
      {&a.l_eth_xbar_, "inj_m.in"},
      {&a.l_tmu_mst_, "tmu.in"},
      {&a.l_tmu_sub_, "inj_s.in"},
      {&a.l_eth_, "ethernet.in"},
      {&a.l_periph_xbar_, "periph_tmu.in"},
      {&a.l_periph_tmu_sub_, "periph_inj.in"},
      {&a.l_periph_, "periph.in"},
  };
  for (const auto& [link, name] : pairs) {
    expect_links_equal(*link, b.link(name), name, cycle);
  }
  tmu::Tmu& bt = b.get<tmu::Tmu>("tmu");
  tmu::Tmu& bpt = b.get<tmu::Tmu>("periph_tmu");
  ASSERT_EQ(a.tmu_.irq.read(), bt.irq.read()) << "tmu.irq @ " << cycle;
  ASSERT_EQ(a.tmu_.reset_req.read(), bt.reset_req.read())
      << "tmu.reset_req @ " << cycle;
  ASSERT_EQ(a.periph_tmu_.irq.read(), bpt.irq.read())
      << "periph_tmu.irq @ " << cycle;
}

/// Architectural state beyond the wires (checked at phase boundaries).
void expect_counters_equal(LegacyCheshire& a, soc::Soc& b) {
  EXPECT_EQ(a.cva6_0_.completed(),
            b.get<TrafficGenerator>("cva6_0").completed());
  EXPECT_EQ(a.cva6_1_.completed(),
            b.get<TrafficGenerator>("cva6_1").completed());
  EXPECT_EQ(a.dma_engine_.beats_moved(),
            b.get<soc::IdmaEngine>("dma_engine").beats_moved());
  EXPECT_EQ(a.tmu_.fault_log().size(),
            b.get<tmu::Tmu>("tmu").fault_log().size());
  EXPECT_EQ(a.tmu_.recoveries(), b.get<tmu::Tmu>("tmu").recoveries());
  EXPECT_EQ(a.eth_.hw_resets(),
            b.get<soc::EthernetPeripheral>("ethernet").hw_resets());
  EXPECT_EQ(a.eth_.frames_txed(),
            b.get<soc::EthernetPeripheral>("ethernet").frames_txed());
  EXPECT_EQ(a.llc_.hits(), b.get<soc::LastLevelCache>("llc").hits());
  EXPECT_EQ(a.llc_.misses(), b.get<soc::LastLevelCache>("llc").misses());
  EXPECT_EQ(a.cpu_.irqs_handled(),
            b.get<soc::CpuRecoveryStub>("cva6_irq_handler").irqs_handled());
  EXPECT_EQ(a.rst_.resets_performed(),
            b.get<soc::ResetUnit>("reset_unit").resets_performed());
  EXPECT_EQ(a.xbar_.decode_errors(),
            b.get<axi::Crossbar>("xbar").decode_errors());
}

tmu::TmuConfig lockstep_cfg() {
  tmu::TmuConfig cfg;
  cfg.variant = tmu::Variant::kFullCounter;
  cfg.adaptive.enabled = true;
  return cfg;
}

// The full fault -> sever -> reset -> recover -> resume arc, in
// lockstep: identical stimulus applied to both netlists every cycle,
// every wire compared every cycle.
TEST(SocDescEquiv, CheshireLockstepThroughFaultAndRecovery) {
  LegacyCheshire legacy(lockstep_cfg());
  soc::CheshireSystem built(lockstep_cfg());  // facade over the builder

  RandomTrafficConfig rc;
  rc.enabled = true;
  rc.p_new_txn = 0.15;
  rc.addr_min = soc::CheshireMap::kDramBase;
  rc.addr_max = soc::CheshireMap::kDramBase + 0xFF00;
  legacy.cva6_0_.set_random(rc);
  built.cva6_0().set_random(rc);
  RandomTrafficConfig rc1 = rc;
  rc1.p_new_txn = 0.1;
  rc1.addr_min = soc::CheshireMap::kPeriphBase;
  rc1.addr_max = soc::CheshireMap::kPeriphBase + 0xF000;
  legacy.cva6_1_.set_random(rc1);
  built.cva6_1().set_random(rc1);

  const soc::DmaDescriptor dma{soc::CheshireMap::kDramBase,
                               soc::CheshireMap::kEthTxWindow, 400};

  for (std::uint64_t c = 0; c < 2600; ++c) {
    if (c == 50) {
      legacy.dma_engine_.submit(dma);
      built.dma_engine().submit(dma);
    }
    if (c == 150) {  // the Ethernet MAC hangs while the frame streams
      legacy.inj_s_.arm(fault::FaultPoint::kWReadyStuck, 150);
      built.eth_side_injector().arm(fault::FaultPoint::kWReadyStuck, 150);
    }
    if (c == 1200) {
      legacy.inj_s_.disarm();
      built.eth_side_injector().disarm();
    }
    if (c == 1800) {  // idle the SoC: event-driven settles to zero work
      RandomTrafficConfig off;
      legacy.cva6_0_.set_random(off);
      built.cva6_0().set_random(off);
      legacy.cva6_1_.set_random(off);
      built.cva6_1().set_random(off);
    }
    if (c == 2200) {  // resume
      legacy.cva6_0_.set_random(rc);
      built.cva6_0().set_random(rc);
    }
    legacy.sim_.step();
    built.sim().step();
    expect_netlists_equal(legacy, built.soc(), c);
    if (::testing::Test::HasFailure()) return;
  }
  expect_counters_equal(legacy, built.soc());
  // The scenario actually exercised the recovery loop.
  EXPECT_GT(legacy.tmu_.fault_log().size(), 0u);
  EXPECT_GT(legacy.eth_.hw_resets(), 0u);
  EXPECT_GT(legacy.cpu_.irqs_handled(), 0u);
  EXPECT_GT(legacy.cva6_0_.completed(), 0u);
}

// Same lockstep under the full-sweep kernel (the builder carries the
// policy in the desc).
TEST(SocDescEquiv, CheshireLockstepFullSweep) {
  LegacyCheshire legacy(lockstep_cfg());
  legacy.sim_.set_policy(sim::sched::SchedPolicy::kFullSweep);
  soc::SocDesc d = soc::cheshire_desc(lockstep_cfg());
  d.policy = sim::sched::SchedPolicy::kFullSweep;
  const auto built = soc::SocBuilder::build(d);

  RandomTrafficConfig rc;
  rc.enabled = true;
  rc.p_new_txn = 0.2;
  rc.addr_min = soc::CheshireMap::kDramBase;
  rc.addr_max = soc::CheshireMap::kDramBase + 0xFF00;
  legacy.cva6_0_.set_random(rc);
  built->get<TrafficGenerator>("cva6_0").set_random(rc);

  for (std::uint64_t c = 0; c < 800; ++c) {
    if (c == 100) {
      legacy.periph_inj_.arm(fault::FaultPoint::kBValidStuck, 100);
      built->get<fault::FaultInjector>("periph_inj")
          .arm(fault::FaultPoint::kBValidStuck, 100);
      const TxnDesc poke{true, 1, soc::CheshireMap::kPeriphBase + 0x40, 3, 3,
                         Burst::kIncr};
      legacy.cva6_1_.push(poke);
      built->get<TrafficGenerator>("cva6_1").push(poke);
    }
    legacy.sim_.step();
    built->sim().step();
    expect_netlists_equal(legacy, *built, c);
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_GT(legacy.periph_tmu_.fault_log().size(), 0u);
  EXPECT_EQ(legacy.periph_tmu_.fault_log().size(),
            built->get<tmu::Tmu>("periph_tmu").fault_log().size());
}

// ------------------------------------------------------------------
// Campaign parity: run_fault_trial (builder-based) against the legacy
// hand-wired IP-level trial, result-for-result.
// ------------------------------------------------------------------

/// The pre-redesign run_fault_trial, verbatim.
campaign::TrialResult legacy_fault_trial(const campaign::TrialSpec& spec) {
  axi::Link l_gen, l_tmu_mst, l_tmu_sub, l_mem;
  axi::TrafficGenerator gen("gen", l_gen, spec.seed);
  fault::FaultInjector inj_m("inj_m", l_gen, l_tmu_mst);
  tmu::Tmu t("tmu", l_tmu_mst, l_tmu_sub, spec.cfg);
  fault::FaultInjector inj_s("inj_s", l_tmu_sub, l_mem);
  axi::MemorySubordinate mem("mem", l_mem);
  soc::ResetUnit rst("rst", t.reset_req, t.reset_ack, [&] { mem.hw_reset(); });
  sim::Simulator s;
  s.add(gen);
  s.add(inj_m);
  s.add(t);
  s.add(inj_s);
  s.add(mem);
  s.add(rst);
  s.reset();
  gen.set_random(spec.traffic);

  campaign::TrialResult r;
  if (spec.point == fault::FaultPoint::kNone) {
    s.run(spec.soak_cycles);
    r.detected = t.any_fault();
    if (r.detected) r.detect_cycle = t.fault_log().front().cycle;
  } else {
    sim::Rng rng(spec.seed ^ 0xD1B54A32D192ED03ull);
    r.inject_delay =
        spec.inject_delay_max != 0 ? rng.range(0, spec.inject_delay_max) : 0;
    fault::FaultInjector& inj =
        fault::is_manager_side(spec.point) ? inj_m : inj_s;
    inj.arm(spec.point, r.inject_delay);
    if (s.run_until([&] { return t.any_fault(); },
                    r.inject_delay + spec.detect_budget)) {
      r.detected = true;
      r.detect_cycle = t.fault_log().front().cycle;
      r.latency = r.detect_cycle - inj.fault_start_cycle();
    }
    if (r.detected && spec.exercise_recovery) {
      inj.disarm();
      r.recovered = s.run_until([&] { return t.recoveries() >= 1; }, 2000);
      const auto before = gen.completed();
      r.traffic_resumed =
          s.run_until([&] { return gen.completed() > before; }, 2000);
    }
  }
  r.cycles_run = s.cycle();
  r.eval_passes = s.eval_passes();
  r.completed_txns = gen.completed();
  r.data_mismatches = gen.data_mismatches();
  r.error_responses = gen.error_responses();
  // Mirror run_fault_trial's telemetry bridge: the hand-wired netlist
  // has no probes, so the scheduler profile is the whole snapshot.
  const sim::sched::SchedProfile prof = s.sched_profile();
  for (const auto& mp : prof.modules) {
    if (mp.evals != 0) {
      r.metrics.counters["sched." + mp.name + ".evals"] += mp.evals;
    }
    if (mp.sensitivity_misses != 0) {
      r.metrics.counters["sched." + mp.name + ".sensitivity_misses"] +=
          mp.sensitivity_misses;
    }
  }
  r.metrics.histograms["sched.dirty_depth"].merge(prof.dirty_depth);
  return r;
}

void expect_results_equal(const campaign::TrialResult& a,
                          const campaign::TrialResult& b,
                          const std::string& what) {
  EXPECT_EQ(a.detected, b.detected) << what;
  EXPECT_EQ(a.recovered, b.recovered) << what;
  EXPECT_EQ(a.traffic_resumed, b.traffic_resumed) << what;
  EXPECT_EQ(a.inject_delay, b.inject_delay) << what;
  EXPECT_EQ(a.detect_cycle, b.detect_cycle) << what;
  EXPECT_EQ(a.latency, b.latency) << what;
  EXPECT_EQ(a.cycles_run, b.cycles_run) << what;
  EXPECT_EQ(a.eval_passes, b.eval_passes) << what;
  EXPECT_EQ(a.completed_txns, b.completed_txns) << what;
  EXPECT_EQ(a.data_mismatches, b.data_mismatches) << what;
  EXPECT_EQ(a.error_responses, b.error_responses) << what;
}

TEST(SocDescEquiv, FaultTrialMatchesLegacyHandWiredTestbench) {
  constexpr fault::FaultPoint kPoints[] = {
      fault::FaultPoint::kNone,          fault::FaultPoint::kAwReadyStuck,
      fault::FaultPoint::kBValidStuck,   fault::FaultPoint::kRValidStuck,
      fault::FaultPoint::kWValidStuck,   fault::FaultPoint::kMidBurstWStall,
      fault::FaultPoint::kBReadyStuck,
  };
  for (const tmu::Variant v :
       {tmu::Variant::kFullCounter, tmu::Variant::kTinyCounter}) {
    for (const fault::FaultPoint p : kPoints) {
      campaign::TrialSpec spec;
      spec.cfg.variant = v;
      spec.cfg.adaptive.enabled = true;
      spec.point = p;
      spec.traffic.enabled = true;
      spec.traffic.p_new_txn = 0.3;
      spec.traffic.len_max = 7;
      spec.seed = 0xABCDull + static_cast<std::uint64_t>(p) * 7919;
      spec.inject_delay_max = 200;
      spec.detect_budget = 3000;
      spec.soak_cycles = 2500;
      spec.exercise_recovery = p != fault::FaultPoint::kNone;
      const std::string what = std::string(to_string(v)) + "/" +
                               to_string(p);
      expect_results_equal(legacy_fault_trial(spec),
                           campaign::run_fault_trial(spec), what);
      if (::testing::Test::HasFailure()) return;
    }
  }
}

// Engine-level parity: a whole campaign through the builder-based trial
// aggregates identically to one through the legacy wiring (labels,
// latencies, every floating-point statistic).
TEST(SocDescEquiv, CampaignReportMatchesLegacyTrialFn) {
  campaign::TrialSpec proto;
  proto.cfg.variant = tmu::Variant::kFullCounter;
  proto.point = fault::FaultPoint::kBValidStuck;
  proto.traffic.enabled = true;
  proto.traffic.p_new_txn = 0.25;
  proto.inject_delay_max = 150;
  proto.detect_budget = 2500;
  proto.exercise_recovery = true;
  std::vector<campaign::Scenario> sc;
  sc.push_back(campaign::make_scenario("fc/b_valid_stuck", proto, 8));
  campaign::Engine eng({2, 0xFACEull});
  const campaign::Report via_builder = eng.run(sc);
  const campaign::Report via_legacy = eng.run(sc, legacy_fault_trial);
  EXPECT_EQ(via_builder.to_json(), via_legacy.to_json());
  EXPECT_EQ(via_builder.scenarios[0].topology, "ip_testbench");
  EXPECT_GT(via_builder.scenarios[0].detected, 0u);
}

}  // namespace
