// Table I parameter sweep: every (MaxUniqIDs, TxnPerUniqID, Variant,
// prescaler) combination must (a) run healthy random traffic without
// false faults and without dropping transactions, and (b) still catch
// an injected stall.

#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "sim/kernel.hpp"
#include "soc/reset_unit.hpp"
#include "tmu/tmu.hpp"

namespace {

using namespace axi;
using fault::FaultPoint;
using tmu::Variant;

struct GeomCase {
  std::uint32_t ids;
  std::uint32_t per_id;
  int variant;       // 0 = Tc, 1 = Fc
  std::uint32_t prescaler;
};

class GeometrySweep : public ::testing::TestWithParam<GeomCase> {};

TEST_P(GeometrySweep, HealthySoakThenInjectedStall) {
  const GeomCase g = GetParam();
  tmu::TmuConfig cfg;
  cfg.variant = g.variant ? Variant::kFullCounter : Variant::kTinyCounter;
  cfg.max_uniq_ids = g.ids;
  cfg.txn_per_uniq_id = g.per_id;
  cfg.prescaler_step = g.prescaler;
  cfg.sticky_bit = g.prescaler > 1;
  cfg.tc_total_budget = 300;
  cfg.adaptive.enabled = true;
  cfg.adaptive.cycles_per_beat = 3;
  cfg.adaptive.cycles_per_ahead = 6;

  Link l_gen, l_tmu_sub, l_mem;
  TrafficGenerator gen("gen", l_gen, 7 + g.ids * 13 + g.per_id);
  tmu::Tmu monitor("tmu", l_gen, l_tmu_sub, cfg);
  fault::FaultInjector inj("inj", l_tmu_sub, l_mem);
  MemorySubordinate mem("mem", l_mem);
  soc::ResetUnit rst("rst", monitor.reset_req, monitor.reset_ack,
                     [&] { mem.hw_reset(); });
  sim::Simulator s;
  s.add(gen);
  s.add(monitor);
  s.add(inj);
  s.add(mem);
  s.add(rst);
  s.reset();

  RandomTrafficConfig rc;
  rc.enabled = true;
  rc.p_new_txn = 0.3;
  rc.max_outstanding = std::min<std::uint32_t>(8, cfg.max_outstanding());
  rc.id_max = 2 * g.ids;  // more live IDs than remapper slots
  rc.len_max = 7;
  gen.set_random(rc);

  // (a) healthy soak.
  s.run(6000);
  ASSERT_FALSE(monitor.any_fault())
      << monitor.fault_log().front().describe();
  EXPECT_GT(gen.completed(), 100u);
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(gen.error_responses(), 0u);

  // (b) injected stall is still caught.
  inj.arm(FaultPoint::kBValidStuck);
  EXPECT_TRUE(s.run_until([&] { return monitor.any_fault(); }, 4000));
}

INSTANTIATE_TEST_SUITE_P(
    TableI, GeometrySweep,
    ::testing::Values(GeomCase{1, 1, 1, 1},    // minimal Fc
                      GeomCase{1, 8, 0, 1},    // single-ID deep Tc
                      GeomCase{4, 4, 1, 1},    // paper default Fc
                      GeomCase{4, 4, 0, 1},    // paper default Tc
                      GeomCase{4, 8, 1, 32},   // prescaled Fc
                      GeomCase{4, 32, 0, 32},  // 128-outstanding Tc + pre
                      GeomCase{8, 2, 1, 1},    // wide-ID Fc
                      GeomCase{2, 2, 0, 8}),   // small prescaled Tc
    [](const ::testing::TestParamInfo<GeomCase>& info) {
      const GeomCase& g = info.param;
      return std::string(g.variant ? "Fc" : "Tc") + "_ids" +
             std::to_string(g.ids) + "x" + std::to_string(g.per_id) +
             "_pre" + std::to_string(g.prescaler);
    });

}  // namespace
