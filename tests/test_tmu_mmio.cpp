#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "sim/kernel.hpp"
#include "soc/reset_unit.hpp"
#include "soc/tmu_mmio.hpp"
#include "tmu/regs.hpp"
#include "tmu/tmu.hpp"

namespace {

using namespace axi;

/// A small CPU-like manager that issues single-beat register accesses
/// and captures read data.
class RegAccessor : public sim::Module {
 public:
  RegAccessor(std::string name, Link& link)
      : sim::Module(std::move(name)), link_(link) {}

  void write(Addr a, std::uint64_t v) { ops_.push_back({true, a, v}); }
  void read(Addr a) { ops_.push_back({false, a, 0}); }
  bool idle() const { return ops_.empty() && !aw_sent_ && !ar_sent_; }
  const std::vector<std::uint64_t>& read_data() const { return rdata_; }

  void eval() override {
    AxiReq q{};
    if (!ops_.empty()) {
      const Op& op = ops_.front();
      if (op.is_write) {
        if (!aw_done_) {
          q.aw_valid = true;
          q.aw = AwFlit{0, op.addr, 0, 3, Burst::kIncr};
        }
        if (aw_done_ && !w_done_) {
          q.w_valid = true;
          q.w = WFlit{op.data, 0xFF, true};
        }
      } else if (!ar_done_) {
        q.ar_valid = true;
        q.ar = ArFlit{0, op.addr, 0, 3, Burst::kIncr};
      }
    }
    q.b_ready = true;
    q.r_ready = true;
    link_.req.write(q);
  }

  void tick() override {
    const AxiReq q = link_.req.read();
    const AxiRsp s = link_.rsp.read();
    if (aw_fire(q, s)) aw_done_ = true;
    if (w_fire(q, s)) w_done_ = true;
    if (b_fire(q, s)) {
      ops_.erase(ops_.begin());
      aw_done_ = w_done_ = false;
    }
    if (ar_fire(q, s)) ar_done_ = true;
    if (r_fire(q, s) && s.r.last) {
      rdata_.push_back(s.r.data);
      ops_.erase(ops_.begin());
      ar_done_ = false;
    }
  }

  void reset() override {
    ops_.clear();
    rdata_.clear();
    aw_done_ = w_done_ = ar_done_ = false;
    link_.req.force(AxiReq{});
  }

 private:
  struct Op {
    bool is_write;
    Addr addr;
    std::uint64_t data;
  };
  Link& link_;
  std::vector<Op> ops_;
  std::vector<std::uint64_t> rdata_;
  bool aw_done_ = false, w_done_ = false, ar_done_ = false;
  bool aw_sent_ = false, ar_sent_ = false;
};

struct MmioFixture : ::testing::Test {
  Link l_data, l_tmu_sub, l_mem, l_reg;
  TrafficGenerator gen{"gen", l_data};
  tmu::TmuConfig cfg;
  tmu::Tmu monitor{"tmu", l_data, l_tmu_sub, [] {
                     tmu::TmuConfig c;
                     c.adaptive.enabled = true;
                     return c;
                   }()};
  fault::FaultInjector inj{"inj", l_tmu_sub, l_mem};
  MemorySubordinate mem{"mem", l_mem};
  soc::TmuMmio mmio{"mmio", l_reg, monitor, 0x1000};
  RegAccessor cpu{"cpu", l_reg};
  soc::ResetUnit rst{"rst", monitor.reset_req, monitor.reset_ack,
                     [this] { mem.hw_reset(); }};
  sim::Simulator s;

  void SetUp() override {
    s.add(gen);
    s.add(monitor);
    s.add(inj);
    s.add(mem);
    s.add(mmio);
    s.add(cpu);
    s.add(rst);
    s.reset();
  }

  void run_cpu() {
    ASSERT_TRUE(s.run_until([&] { return cpu.idle(); }, 500));
  }
};

TEST_F(MmioFixture, ReadCapacityRegisterOverBus) {
  cpu.read(0x1000 + tmu::regs::kCapacity);
  run_cpu();
  ASSERT_EQ(cpu.read_data().size(), 1u);
  const auto cap = cpu.read_data()[0];
  EXPECT_EQ(cap & 0xFF, 4u);            // MaxUniqIDs
  EXPECT_EQ((cap >> 8) & 0xFF, 4u);     // TxnPerUniqID
  EXPECT_EQ((cap >> 16) & 0xFFFF, 16u); // MaxOutstdTxns
  EXPECT_EQ(mmio.reg_reads(), 1u);
}

TEST_F(MmioFixture, ConfigureBudgetOverBus) {
  cpu.write(0x1000 + tmu::regs::kBudgetAw, 123);
  run_cpu();
  EXPECT_EQ(monitor.read_reg(tmu::regs::kBudgetAw), 123u);
  cpu.read(0x1000 + tmu::regs::kBudgetAw);
  run_cpu();
  EXPECT_EQ(cpu.read_data().back(), 123u);
}

TEST_F(MmioFixture, FirmwareRecoverySequenceOverBus) {
  // Fault on the data path...
  inj.arm(fault::FaultPoint::kBValidStuck);
  gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return monitor.any_fault(); }, 2000));
  s.run(2);
  // ...firmware reads the status + fault log over the bus, then clears.
  cpu.read(0x1000 + tmu::regs::kStatus);
  cpu.read(0x1000 + tmu::regs::kFaultCount);
  cpu.read(0x1000 + tmu::regs::kFaultInfo);
  cpu.write(0x1000 + tmu::regs::kIrqClear, 1);
  run_cpu();
  ASSERT_EQ(cpu.read_data().size(), 3u);
  EXPECT_EQ(cpu.read_data()[0] & 2u, 2u);  // irq pending was set
  EXPECT_EQ(cpu.read_data()[1], 1u);       // one fault logged
  EXPECT_NE(cpu.read_data()[2], 0u);       // packed fault word
  s.run(2);
  EXPECT_FALSE(monitor.irq.read());
}

TEST_F(MmioFixture, RuntimeReconfigurationTakesEffect) {
  // Shrink the AW budget to 5 over the bus, then stall AW: detection
  // must use the new budget.
  cpu.write(0x1000 + tmu::regs::kBudgetAw, 5);
  cpu.write(0x1000 + tmu::regs::kCtrl, 0b0111);  // adaptive off
  run_cpu();
  inj.arm(fault::FaultPoint::kAwReadyStuck);
  gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return monitor.any_fault(); }, 300));
  EXPECT_EQ(monitor.fault_log().front().budget, 5u);
}

TEST_F(MmioFixture, OccupancyRegisterTracksTraffic) {
  gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 300));
  cpu.read(0x1000 + tmu::regs::kTxnCount);
  run_cpu();
  EXPECT_EQ(cpu.read_data().back(), 1u);
}

}  // namespace
