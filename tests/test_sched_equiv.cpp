// Scheduler-equivalence lockstep fuzz: the event-driven dirty-set
// scheduler must be cycle-exact against the full-sweep kernel. Two
// identically seeded netlists — the paper's IP-level fault testbench
// and the full Cheshire SoC — run in lockstep under
// SchedPolicy::kFullSweep and SchedPolicy::kEventDriven; every cycle,
// every reachable wire and every observable campaign outcome (fault
// detection, recovery, completed traffic) must match exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "soc/cheshire.hpp"
#include "soc/reset_unit.hpp"
#include "tmu/tmu.hpp"

namespace {

using sim::sched::SchedPolicy;

// The Fig. 8/9 IP-level testbench (mirrors campaign::run_fault_trial):
// gen -> [mgr injector] -> TMU -> [sub injector] -> memory, plus the
// external reset unit. Every wire is reachable for exact comparison.
struct IpNetlist {
  axi::Link l_gen, l_tmu_mst, l_tmu_sub, l_mem;
  axi::TrafficGenerator gen;
  fault::FaultInjector inj_m{"inj_m", l_gen, l_tmu_mst};
  tmu::Tmu tmu;
  fault::FaultInjector inj_s{"inj_s", l_tmu_sub, l_mem};
  axi::MemorySubordinate mem{"mem", l_mem};
  soc::ResetUnit rst;
  sim::Simulator s;

  IpNetlist(SchedPolicy policy, std::uint64_t seed,
            const tmu::TmuConfig& cfg)
      : gen("gen", l_gen, seed),
        tmu("tmu", l_tmu_mst, l_tmu_sub, cfg),
        rst("rst", tmu.reset_req, tmu.reset_ack, [this] { mem.hw_reset(); }),
        s(policy) {
    s.add(gen);
    s.add(inj_m);
    s.add(tmu);
    s.add(inj_s);
    s.add(mem);
    s.add(rst);
    s.reset();
  }

  fault::FaultInjector& injector_for(fault::FaultPoint p) {
    return fault::is_manager_side(p) ? inj_m : inj_s;
  }
};

void expect_links_equal(const axi::Link& a, const axi::Link& b,
                        const char* which, std::uint64_t cycle) {
  EXPECT_TRUE(a.req.read() == b.req.read())
      << which << ".req diverged at cycle " << cycle;
  EXPECT_TRUE(a.rsp.read() == b.rsp.read())
      << which << ".rsp diverged at cycle " << cycle;
}

// Compares every wire of the two IP netlists.
void expect_wires_equal(const IpNetlist& a, const IpNetlist& b,
                        std::uint64_t cycle) {
  expect_links_equal(a.l_gen, b.l_gen, "l_gen", cycle);
  expect_links_equal(a.l_tmu_mst, b.l_tmu_mst, "l_tmu_mst", cycle);
  expect_links_equal(a.l_tmu_sub, b.l_tmu_sub, "l_tmu_sub", cycle);
  expect_links_equal(a.l_mem, b.l_mem, "l_mem", cycle);
  EXPECT_EQ(a.tmu.irq.read(), b.tmu.irq.read()) << "irq @" << cycle;
  EXPECT_EQ(a.tmu.reset_req.read(), b.tmu.reset_req.read())
      << "reset_req @" << cycle;
  EXPECT_EQ(a.tmu.reset_ack.read(), b.tmu.reset_ack.read())
      << "reset_ack @" << cycle;
}

// One fuzzed lockstep scenario: random traffic, one random fault
// armed/disarmed at random cycles, compared wire-for-wire every cycle.
void run_ip_lockstep(std::uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  sim::Rng rng(seed);

  tmu::TmuConfig cfg;
  cfg.adaptive.enabled = rng.chance(0.5);
  if (rng.chance(0.3)) {
    cfg.variant = tmu::Variant::kTinyCounter;
    cfg.tc_total_budget = 200;
  }

  IpNetlist full(SchedPolicy::kFullSweep, seed, cfg);
  IpNetlist event(SchedPolicy::kEventDriven, seed, cfg);

  axi::RandomTrafficConfig rc;
  rc.enabled = true;
  rc.p_new_txn = 0.3;
  rc.len_max = 7;
  full.gen.set_random(rc);
  event.gen.set_random(rc);

  // One fault point drawn per scenario, armed mid-run, disarmed later.
  constexpr fault::FaultPoint kPoints[] = {
      fault::FaultPoint::kAwReadyStuck, fault::FaultPoint::kWReadyStuck,
      fault::FaultPoint::kBValidStuck,  fault::FaultPoint::kRValidStuck,
      fault::FaultPoint::kWValidStuck,  fault::FaultPoint::kSpuriousB,
  };
  const fault::FaultPoint point =
      kPoints[rng.range(0, (sizeof(kPoints) / sizeof(kPoints[0])) - 1)];
  const std::uint64_t arm_at = rng.range(50, 300);
  const std::uint64_t disarm_at = arm_at + rng.range(300, 900);
  // After recovery, drop to a fully idle stretch (traffic off, netlist
  // drains) and back: the precise post-edge invalidation (per-module
  // tick_changed_eval_state reports) must stay exact through busy→idle
  // and idle→busy transitions.
  const std::uint64_t quiet_at = disarm_at + 500;
  const std::uint64_t resume_at = quiet_at + 400;
  const std::uint64_t total = resume_at + 500;

  for (std::uint64_t c = 0; c < total; ++c) {
    if (c == arm_at) {
      full.injector_for(point).arm(point, arm_at);
      event.injector_for(point).arm(point, arm_at);
    }
    if (c == disarm_at) {
      full.injector_for(point).disarm();
      event.injector_for(point).disarm();
    }
    if (c == quiet_at) {
      axi::RandomTrafficConfig off;
      off.enabled = false;
      full.gen.set_random(off);
      event.gen.set_random(off);
    }
    if (c == resume_at) {
      full.gen.set_random(rc);
      event.gen.set_random(rc);
    }
    full.s.step();
    event.s.step();
    ASSERT_EQ(full.s.cycle(), event.s.cycle());
    expect_wires_equal(full, event, c);
    ASSERT_EQ(full.tmu.any_fault(), event.tmu.any_fault())
        << "detection diverged at cycle " << c;
    ASSERT_EQ(full.tmu.recoveries(), event.tmu.recoveries())
        << "recovery diverged at cycle " << c;
    ASSERT_EQ(full.gen.completed(), event.gen.completed())
        << "traffic diverged at cycle " << c;
    if (::testing::Test::HasFailure()) return;  // stop at first divergence
  }

  // Campaign outcome: the fault was detected and recovered identically.
  EXPECT_EQ(full.tmu.fault_log().size(), event.tmu.fault_log().size());
  if (!full.tmu.fault_log().empty() && !event.tmu.fault_log().empty()) {
    EXPECT_EQ(full.tmu.fault_log().front().cycle,
              event.tmu.fault_log().front().cycle);
  }
  EXPECT_EQ(full.gen.data_mismatches(), event.gen.data_mismatches());
  EXPECT_EQ(full.gen.error_responses(), event.gen.error_responses());
  // The event-driven run must not have done MORE eval work than the
  // sweep — the whole point of the scheduler.
  EXPECT_LE(event.s.module_evals(), full.s.module_evals());
}

TEST(SchedEquiv, IpLevelLockstepFuzz) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 0xC0FFEEull}) {
    run_ip_lockstep(seed);
    if (::testing::Test::HasFailure()) break;
  }
}

// Full-SoC lockstep: the paper's Cheshire-style system (two CVA6
// stand-ins, iDMA, crossbar, LLC/DRAM, two TMUs, injectors, reset
// units, PLIC, CPU recovery stub) under both policies, including a
// detect/recover campaign on the Ethernet endpoint and the peripheral.
TEST(SchedEquiv, CheshireSocLockstepWithFaultCampaign) {
  tmu::TmuConfig cfg;
  cfg.adaptive.enabled = true;

  soc::CheshireSystem full(cfg);
  soc::CheshireSystem event(cfg);
  full.sim().set_policy(SchedPolicy::kFullSweep);
  event.sim().set_policy(SchedPolicy::kEventDriven);

  axi::RandomTrafficConfig rc;
  rc.enabled = true;
  rc.p_new_txn = 0.25;
  rc.addr_min = soc::CheshireMap::kDramBase;
  rc.addr_max = soc::CheshireMap::kDramBase + 0xFFF8;
  for (soc::CheshireSystem* sys : {&full, &event}) {
    sys->cva6_0().set_random(rc);
    // cva6_1 exercises the peripheral so the second (Tiny-Counter) TMU's
    // campaign is hit too.
    axi::RandomTrafficConfig periph_rc = rc;
    periph_rc.p_new_txn = 0.15;
    periph_rc.addr_min = soc::CheshireMap::kPeriphBase;
    periph_rc.addr_max = soc::CheshireMap::kPeriphBase +
                         soc::CheshireMap::kPeriphSize - 8;
    sys->cva6_1().set_random(periph_rc);
    axi::RandomTrafficConfig eth_rc = rc;
    eth_rc.p_new_txn = 0.1;
    eth_rc.addr_min = soc::CheshireMap::kEthTxWindow;
    eth_rc.addr_max = soc::CheshireMap::kEthBase +
                      soc::CheshireMap::kEthSize - 8;
    sys->idma().set_random(eth_rc);
  }

  constexpr std::uint64_t kArmAt = 400;
  constexpr std::uint64_t kDisarmAt = 1400;
  constexpr std::uint64_t kTotal = 3000;
  for (std::uint64_t c = 0; c < kTotal; ++c) {
    if (c == kArmAt) {
      full.eth_side_injector().arm(fault::FaultPoint::kBValidStuck, kArmAt);
      event.eth_side_injector().arm(fault::FaultPoint::kBValidStuck, kArmAt);
      full.periph_injector().arm(fault::FaultPoint::kArReadyStuck, kArmAt);
      event.periph_injector().arm(fault::FaultPoint::kArReadyStuck, kArmAt);
    }
    if (c == kDisarmAt) {
      full.eth_side_injector().disarm();
      event.eth_side_injector().disarm();
      full.periph_injector().disarm();
      event.periph_injector().disarm();
    }
    full.sim().step();
    event.sim().step();

    // Reachable wires and campaign-visible state, every cycle.
    ASSERT_EQ(full.tmu().irq.read(), event.tmu().irq.read()) << "@" << c;
    ASSERT_EQ(full.tmu().reset_req.read(), event.tmu().reset_req.read())
        << "@" << c;
    ASSERT_EQ(full.periph_tmu().irq.read(), event.periph_tmu().irq.read())
        << "@" << c;
    ASSERT_EQ(full.tmu().any_fault(), event.tmu().any_fault()) << "@" << c;
    ASSERT_EQ(full.tmu().recoveries(), event.tmu().recoveries()) << "@" << c;
    ASSERT_EQ(full.periph_tmu().recoveries(),
              event.periph_tmu().recoveries())
        << "@" << c;
    ASSERT_EQ(full.cva6_0().completed(), event.cva6_0().completed())
        << "@" << c;
    ASSERT_EQ(full.cva6_1().completed(), event.cva6_1().completed())
        << "@" << c;
    ASSERT_EQ(full.idma().completed(), event.idma().completed()) << "@" << c;
    ASSERT_EQ(full.cpu().irqs_handled(), event.cpu().irqs_handled())
        << "@" << c;
  }

  // The campaign must actually have exercised detection and recovery —
  // equivalence over an idle run would prove much less.
  EXPECT_TRUE(full.tmu().any_fault());
  EXPECT_GE(full.tmu().recoveries(), 1u);
  EXPECT_TRUE(full.periph_tmu().any_fault());
  EXPECT_EQ(full.tmu().fault_log().size(), event.tmu().fault_log().size());
  EXPECT_GT(full.cva6_0().completed(), 0u);

  // And the event-driven kernel must have earned its keep on eval work.
  EXPECT_LT(event.sim().module_evals(), full.sim().module_evals());
}

// The headline property of the event-driven scheduler: a fully idle
// netlist (no traffic, nothing armed, everything drained) settles for
// free — zero module evals per cycle — while behaving identically.
TEST(SchedEquiv, IdleNetlistSettlesForFree) {
  tmu::TmuConfig cfg;
  cfg.adaptive.enabled = true;
  IpNetlist idle(SchedPolicy::kEventDriven, 3, cfg);
  idle.s.run(3);  // let any post-reset ripples die out
  const std::uint64_t e0 = idle.s.module_evals();
  idle.s.run(50);
  EXPECT_EQ(idle.s.module_evals() - e0, 0u);

  // The same netlist still reacts instantly: queue one transaction and
  // it completes just as under the full sweep.
  IpNetlist ref(SchedPolicy::kFullSweep, 3, cfg);
  ref.s.run(53);
  axi::TxnDesc d;
  d.is_write = true;
  d.addr = 0x100;
  d.len = 3;
  idle.gen.push(d);
  ref.gen.push(d);
  for (int c = 0; c < 100; ++c) {
    idle.s.step();
    ref.s.step();
    expect_wires_equal(ref, idle, ref.s.cycle());
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_EQ(idle.gen.completed(), 1u);
  EXPECT_EQ(ref.gen.completed(), 1u);
}

// The settled-cache interplay: interleaved settles, notifies and policy
// switches on the same netlist never desynchronise the two worlds.
TEST(SchedEquiv, PolicyTogglingMatchesReference) {
  tmu::TmuConfig cfg;
  IpNetlist ref(SchedPolicy::kFullSweep, 99, cfg);
  IpNetlist tog(SchedPolicy::kEventDriven, 99, cfg);

  axi::RandomTrafficConfig rc;
  rc.enabled = true;
  rc.p_new_txn = 0.4;
  ref.gen.set_random(rc);
  tog.gen.set_random(rc);

  sim::Rng rng(5);
  for (int chunk = 0; chunk < 40; ++chunk) {
    const std::uint64_t n = rng.range(1, 25);
    ref.s.run(n);
    // Toggle the policy mid-run on the device under test.
    tog.s.set_policy(chunk % 2 == 0 ? SchedPolicy::kFullSweep
                                    : SchedPolicy::kEventDriven);
    tog.s.run(n);
    ASSERT_EQ(ref.s.cycle(), tog.s.cycle());
    expect_wires_equal(ref, tog, ref.s.cycle());
    ASSERT_EQ(ref.gen.completed(), tog.gen.completed());
    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace
