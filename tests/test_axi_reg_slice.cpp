#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/reg_slice.hpp"
#include "axi/scoreboard.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "sim/kernel.hpp"
#include "soc/reset_unit.hpp"
#include "tmu/tmu.hpp"

namespace {

using namespace axi;

struct SliceFixture : ::testing::Test {
  Link up, down;
  TrafficGenerator gen{"gen", up};
  RegSlice slice{"slice", up, down};
  MemorySubordinate mem{"mem", down};
  Scoreboard sb_up{"sb_up", up};
  Scoreboard sb_down{"sb_down", down};
  sim::Simulator s;

  void SetUp() override {
    s.add(gen);
    s.add(slice);
    s.add(mem);
    s.add(sb_up);
    s.add(sb_down);
    s.reset();
  }
};

TEST_F(SliceFixture, WriteAndReadThroughSlice) {
  gen.push(TxnDesc{true, 0, 0x100, 7, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 500));
  gen.push(TxnDesc{false, 0, 0x100, 7, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 500));
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(sb_up.violation_count(), 0u);
  EXPECT_EQ(sb_down.violation_count(), 0u);
}

TEST_F(SliceFixture, AddsBoundedLatency) {
  auto baseline = [] {
    Link l;
    TrafficGenerator g("g", l);
    MemorySubordinate m("m", l);
    sim::Simulator sim;
    sim.add(g);
    sim.add(m);
    sim.reset();
    g.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
    sim.run_until([&] { return g.completed() >= 1; }, 300);
    return g.records()[0].complete_cycle;
  }();
  gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 300));
  const auto sliced = gen.records()[0].complete_cycle;
  EXPECT_GE(sliced, baseline);
  EXPECT_LE(sliced, baseline + 4);  // <= 1 cycle per direction + skid
}

TEST_F(SliceFixture, SustainsFullThroughput) {
  // Back-to-back beats: a correct skid buffer never bubbles the stream.
  for (int i = 0; i < 4; ++i) {
    gen.push(TxnDesc{true, 0, static_cast<Addr>(i * 0x100), 15, 3,
                     Burst::kIncr});
  }
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 4; }, 2000));
  // 64 data beats total; with full throughput the whole run is well
  // under 2 cycles/beat.
  EXPECT_LT(s.cycle(), 160u);
}

TEST_F(SliceFixture, RandomTrafficSoak) {
  RandomTrafficConfig rc;
  rc.enabled = true;
  rc.p_new_txn = 0.4;
  rc.len_max = 15;
  gen.set_random(rc);
  s.run(5000);
  EXPECT_GT(gen.completed(), 100u);
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(sb_up.violation_count(), 0u);
  EXPECT_EQ(sb_down.violation_count(), 0u);
}

TEST(SliceChain, TmuWorksAcrossPipelinedPath) {
  // gen -> TMU -> slice -> slice -> injector -> memory: the TMU's
  // budgets measure end-to-end time, so pipelining must not break
  // detection or healthy operation.
  Link l_gen, l_tmu_out, l_s1, l_s2, l_mem;
  TrafficGenerator gen("gen", l_gen);
  tmu::TmuConfig cfg;
  cfg.adaptive.enabled = true;
  tmu::Tmu monitor("tmu", l_gen, l_tmu_out, cfg);
  RegSlice s1("s1", l_tmu_out, l_s1);
  RegSlice s2("s2", l_s1, l_s2);
  fault::FaultInjector inj("inj", l_s2, l_mem);
  MemorySubordinate mem("mem", l_mem);
  soc::ResetUnit rst("rst", monitor.reset_req, monitor.reset_ack,
                     [&] { mem.hw_reset(); });
  sim::Simulator s;
  s.add(gen);
  s.add(monitor);
  s.add(s1);
  s.add(s2);
  s.add(inj);
  s.add(mem);
  s.add(rst);
  s.reset();

  // Healthy burst completes with zero faults.
  gen.push(TxnDesc{true, 0, 0x100, 7, 3, Burst::kIncr});
  gen.push(TxnDesc{false, 0, 0x100, 7, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 1000));
  EXPECT_FALSE(monitor.any_fault());
  EXPECT_EQ(gen.data_mismatches(), 0u);

  // A stall behind two pipeline stages is still caught.
  inj.arm(fault::FaultPoint::kBValidStuck);
  gen.push(TxnDesc{true, 1, 0x200, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return monitor.any_fault(); }, 2000));
  EXPECT_EQ(monitor.fault_log().front().kind, tmu::FaultKind::kTimeout);
}

}  // namespace
