// Campaign telemetry (report schema v3): every trial snapshots its
// netlist's metrics registry and scheduler profile, the engine merges
// them in trial-index order, and the resulting report — per-link
// latency histograms and per-module eval profile included — is
// byte-identical at any thread count.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "sim/logger.hpp"
#include "soc/topologies.hpp"

namespace {

class ObsCampaign : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = sim::global_log_level();
    sim::global_log_level() = sim::LogLevel::kOff;
  }
  void TearDown() override { sim::global_log_level() = saved_; }

 private:
  sim::LogLevel saved_ = sim::LogLevel::kWarn;
};

/// A probed grid topology: every active manager's port link carries a
/// LatencyProbe, and a guarded memory provides the fault site.
soc::SocDesc probed_grid(unsigned n_mgr, unsigned n_sub, unsigned active) {
  soc::SocDesc d = soc::grid_desc(n_mgr, n_sub, active);
  for (unsigned i = 0; i < active; ++i) {
    const std::string mgr = "gen" + std::to_string(i);
    d.probes.push_back({mgr + ".probe", mgr + ".out"});
  }
  soc::GuardDesc g;
  g.name = "tmu0";
  g.subordinate = "mem0";
  g.sub_injector = "inj0";  // kAwReadyStuck is a subordinate-side fault
  d.guards.push_back(g);
  return d;
}

std::vector<campaign::Scenario> probed_campaign(std::size_t trials) {
  campaign::TrialSpec spec;
  spec.desc = probed_grid(4, 3, 2);
  spec.point = fault::FaultPoint::kAwReadyStuck;
  spec.traffic.enabled = true;
  spec.traffic.p_new_txn = 0.25;
  spec.traffic.max_outstanding = 4;
  spec.inject_delay_max = 200;
  spec.detect_budget = 3000;
  std::vector<campaign::Scenario> sc;
  sc.push_back(campaign::make_scenario("grid/aw_ready_stuck", spec, trials));
  return sc;
}

TEST_F(ObsCampaign, ReportCarriesProbeAndProfileMetrics) {
  campaign::Engine eng({1, 0xBEEFull});
  const campaign::Report rep = eng.run(probed_campaign(4));
  const campaign::ScenarioSummary& sc = rep.scenarios.at(0);
  // Per-link probe metrics, merged across the scenario's trials.
  EXPECT_GT(sc.metrics.counters.at("gen0.probe.write_txns"), 0u);
  EXPECT_GT(sc.metrics.stats.at("gen0.probe.write_latency").count(), 0u);
  EXPECT_GT(sc.metrics.histograms.at("gen0.probe.write_latency_hist").total(),
            0u);
  EXPECT_GT(sc.metrics.histograms.at("gen1.probe.occupancy").total(), 0u);
  // Scheduler profile, bridged in under "sched.*" (the sharded
  // crossbar shows up as its per-port shard modules).
  EXPECT_GT(sc.metrics.counters.at("sched.xbar.mgr0.evals"), 0u);
  EXPECT_GT(sc.metrics.counters.at("sched.gen0.evals"), 0u);
  EXPECT_GT(sc.metrics.counters.at("sched.tmu0.evals"), 0u);
  EXPECT_GT(sc.metrics.histograms.at("sched.dirty_depth").total(), 0u);
  // The overall summary pools the scenarios.
  EXPECT_EQ(rep.overall.metrics.counters.at("sched.gen0.evals"),
            sc.metrics.counters.at("sched.gen0.evals"));

  // And everything lands in the JSON document.
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"schema\": \"tmu-campaign-report-v3\""),
            std::string::npos);
  EXPECT_NE(json.find("\"gen0.probe.write_latency_hist\""),
            std::string::npos);
  EXPECT_NE(json.find("\"sched.xbar.mgr0.evals\""), std::string::npos);
  EXPECT_NE(json.find("\"sched.dirty_depth\""), std::string::npos);
}

TEST_F(ObsCampaign, TrialsCaptureRequestedTraceLinks) {
  campaign::TrialSpec spec;
  spec.seed = 7;
  spec.traffic.enabled = true;
  spec.trace_links = {"gen.out", "mem.in"};
  const campaign::TrialResult r = campaign::run_fault_trial(spec);
  // One captured stream per requested link, in order, tagged with the
  // link and the hash of the (trace-augmented) recording topology.
  ASSERT_EQ(r.traces.size(), 2u);
  EXPECT_EQ(r.traces[0].link, "gen.out");
  EXPECT_EQ(r.traces[1].link, "mem.in");
  EXPECT_GT(r.traces[0].records.size(), 0u);
  EXPECT_NE(r.traces[0].topology_hash, spec.desc.hash());

  // Desc-native traces come first; the registry carries the recorders'
  // capture-health counters either way.
  campaign::TrialSpec spec2 = spec;
  spec2.desc.traces.push_back({"native", "tmu.in"});
  const campaign::TrialResult r2 = campaign::run_fault_trial(spec2);
  ASSERT_EQ(r2.traces.size(), 3u);
  EXPECT_EQ(r2.traces[0].link, "tmu.in");
  EXPECT_EQ(r2.traces[1].link, "gen.out");
  EXPECT_GT(r2.metrics.counters.at("native.records"), 0u);
  EXPECT_EQ(r2.metrics.counters.at("native.dropped"), 0u);
}

TEST_F(ObsCampaign, ReportIsByteIdenticalAcrossThreadCounts) {
  const auto scenarios = probed_campaign(8);
  campaign::Engine one({1, 0xF00Dull});
  campaign::Engine two({2, 0xF00Dull});
  campaign::Engine eight({8, 0xF00Dull});
  const std::string j1 = one.run(scenarios).to_json();
  const std::string j2 = two.run(scenarios).to_json();
  const std::string j8 = eight.run(scenarios).to_json();
  EXPECT_EQ(j1, j2);
  EXPECT_EQ(j1, j8);
}

}  // namespace
