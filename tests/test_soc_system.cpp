#include <gtest/gtest.h>

#include "soc/cheshire.hpp"

namespace {

using axi::Addr;
using axi::Burst;
using axi::Id;
using axi::TxnDesc;
using fault::FaultPoint;
using soc::CheshireMap;
using soc::CheshireSystem;
using tmu::TmuConfig;
using tmu::Variant;

/// The paper's system-level configuration: Tc uses a single 320-cycle
/// budget; Fc allocates per-phase budgets (10 AW, 20 AW->W, 250 W, ...).
TmuConfig system_cfg(Variant v) {
  TmuConfig cfg;
  cfg.variant = v;
  cfg.max_uniq_ids = 4;
  cfg.txn_per_uniq_id = 8;
  cfg.tc_total_budget = 320;
  cfg.budgets.aw_vld_aw_rdy = 10;
  cfg.budgets.aw_rdy_w_vld = 20;
  cfg.budgets.w_vld_w_rdy = 10;
  cfg.budgets.w_first_w_last = 250;
  cfg.budgets.w_last_b_vld = 10;
  cfg.budgets.b_vld_b_rdy = 10;
  cfg.budgets.ar_vld_ar_rdy = 10;
  cfg.budgets.ar_rdy_r_vld = 20;
  cfg.budgets.r_vld_r_rdy = 10;
  cfg.budgets.r_vld_r_last = 250;
  cfg.adaptive.enabled = false;
  cfg.max_txn_cycles = 320;
  return cfg;
}

TEST(Cheshire, HealthyMixedTrafficRunsClean) {
  // Several 32-beat writes queue behind each other at the Ethernet
  // endpoint: the queue-waiting phase legitimately exceeds its static
  // budget, so adaptive budgeting (§II-F) must be on.
  TmuConfig cfg = system_cfg(Variant::kFullCounter);
  cfg.adaptive.enabled = true;
  CheshireSystem sys(cfg);
  // CPU0 writes DRAM, CPU1 reads peripheral, iDMA streams to Ethernet.
  for (int i = 0; i < 4; ++i) {
    sys.cva6_0().push(TxnDesc{true, 0,
                              CheshireMap::kDramBase + i * 0x100, 7, 3,
                              Burst::kIncr});
    sys.cva6_1().push(TxnDesc{false, 1,
                              CheshireMap::kPeriphBase + i * 0x100, 7, 3,
                              Burst::kIncr});
    sys.idma().push(TxnDesc{true, 2, CheshireMap::kEthTxWindow, 31, 3,
                            Burst::kIncr});
  }
  ASSERT_TRUE(sys.sim().run_until(
      [&] {
        return sys.cva6_0().completed() >= 4 &&
               sys.cva6_1().completed() >= 4 && sys.idma().completed() >= 4;
      },
      8000));
  EXPECT_FALSE(sys.tmu().any_fault());
  EXPECT_GT(sys.ethernet().frames_txed(), 0u);
}

TEST(Cheshire, EthernetStallDetectedAndRecovered) {
  CheshireSystem sys(system_cfg(Variant::kFullCounter));
  sys.eth_side_injector().arm(FaultPoint::kBValidStuck);
  sys.idma().push(
      TxnDesc{true, 2, CheshireMap::kEthTxWindow, 63, 3, Burst::kIncr});
  ASSERT_TRUE(
      sys.sim().run_until([&] { return sys.tmu().any_fault(); }, 3000));
  // Full recovery loop: reset unit fires, Ethernet resets, CPU services
  // the interrupt, TMU resumes.
  ASSERT_TRUE(sys.sim().run_until(
      [&] {
        return !sys.tmu().severed() && sys.cpu().irqs_handled() >= 1;
      },
      2000));
  EXPECT_EQ(sys.ethernet().hw_resets(), 1u);
  EXPECT_EQ(sys.reset_unit().resets_performed(), 1u);
  EXPECT_GE(sys.cpu().faults_read(), 1u);
  sys.sim().run(2);  // let the handler's IrqClear write take effect
  EXPECT_FALSE(sys.tmu().irq.read());

  // Ethernet is alive again.
  sys.eth_side_injector().disarm();
  const auto before = sys.ethernet().writes_done();
  sys.idma().push(
      TxnDesc{true, 2, CheshireMap::kEthTxWindow, 15, 3, Burst::kIncr});
  ASSERT_TRUE(sys.sim().run_until(
      [&] { return sys.ethernet().writes_done() > before; }, 2000));
}

TEST(Cheshire, DramTrafficUnaffectedByEthernetFault) {
  CheshireSystem sys(system_cfg(Variant::kFullCounter));
  sys.eth_side_injector().arm(FaultPoint::kAwReadyStuck);
  sys.idma().push(
      TxnDesc{true, 2, CheshireMap::kEthTxWindow, 15, 3, Burst::kIncr});
  for (int i = 0; i < 8; ++i) {
    sys.cva6_0().push(TxnDesc{true, 0,
                              CheshireMap::kDramBase + i * 0x80, 3, 3,
                              Burst::kIncr});
  }
  ASSERT_TRUE(sys.sim().run_until(
      [&] { return sys.cva6_0().completed() >= 8; }, 4000));
  EXPECT_EQ(sys.cva6_0().error_responses(), 0u);
  // The Ethernet fault is isolated to the iDMA transaction.
  EXPECT_TRUE(sys.tmu().any_fault());
}

TEST(Cheshire, TcDetectsAt320Cycles) {
  CheshireSystem sys(system_cfg(Variant::kTinyCounter));
  sys.eth_side_injector().arm(FaultPoint::kAwReadyStuck);
  sys.idma().push(
      TxnDesc{true, 2, CheshireMap::kEthTxWindow, 249, 3, Burst::kIncr});
  ASSERT_TRUE(
      sys.sim().run_until([&] { return sys.tmu().any_fault(); }, 3000));
  const auto& f = sys.tmu().fault_log().front();
  EXPECT_EQ(f.budget, 320u);
  EXPECT_GE(f.elapsed, 320u);
}

TEST(Cheshire, FcDetectsAwStallAtTenCycles) {
  CheshireSystem sys(system_cfg(Variant::kFullCounter));
  sys.eth_side_injector().arm(FaultPoint::kAwReadyStuck);
  sys.idma().push(
      TxnDesc{true, 2, CheshireMap::kEthTxWindow, 249, 3, Burst::kIncr});
  ASSERT_TRUE(
      sys.sim().run_until([&] { return sys.tmu().any_fault(); }, 3000));
  const auto& f = sys.tmu().fault_log().front();
  EXPECT_EQ(f.budget, 10u);
  EXPECT_EQ(static_cast<tmu::WritePhase>(f.phase),
            tmu::WritePhase::kAwVldAwRdy);
}

TEST(Cheshire, RepeatedFaultsRepeatedRecoveries) {
  CheshireSystem sys(system_cfg(Variant::kFullCounter));
  for (int round = 1; round <= 3; ++round) {
    sys.eth_side_injector().arm(FaultPoint::kBValidStuck);
    sys.idma().push(
        TxnDesc{true, 2, CheshireMap::kEthTxWindow, 15, 3, Burst::kIncr});
    ASSERT_TRUE(sys.sim().run_until(
        [&] {
          return sys.tmu().recoveries() >= static_cast<std::uint64_t>(round);
        },
        5000))
        << "round " << round;
    sys.eth_side_injector().disarm();
    sys.sim().run(50);
  }
  EXPECT_EQ(sys.ethernet().hw_resets(), 3u);
  EXPECT_EQ(sys.cpu().irqs_handled(), 3u);
}

}  // namespace

namespace {

TEST(Cheshire, DmaEngineMovesDramToEthernetThroughTmu) {
  TmuConfig cfg = system_cfg(Variant::kFullCounter);
  cfg.adaptive.enabled = true;
  CheshireSystem sys(cfg);
  // Seed DRAM with a frame, then DMA it into the Ethernet TX window.
  for (int b = 0; b < 32; ++b) {
    for (int i = 0; i < 8; ++i) {
      sys.dram().poke(CheshireMap::kDramBase + 8 * b + i,
                      static_cast<std::uint8_t>(b + i));
    }
  }
  sys.dma_engine().submit(
      soc::DmaDescriptor{CheshireMap::kDramBase,
                         CheshireMap::kEthTxWindow, 32});
  ASSERT_TRUE(sys.sim().run_until(
      [&] { return sys.dma_engine().descriptors_done() >= 1; }, 5000));
  EXPECT_FALSE(sys.tmu().any_fault());
  ASSERT_TRUE(sys.sim().run_until(
      [&] { return sys.ethernet().frames_txed() >= 32; }, 2000));
  EXPECT_EQ(sys.dma_engine().beats_moved(), 32u);
  EXPECT_EQ(sys.dma_engine().error_responses(), 0u);
}

TEST(Cheshire, LlcAcceleratesRepeatedDramReads) {
  TmuConfig cfg = system_cfg(Variant::kFullCounter);
  cfg.adaptive.enabled = true;
  CheshireSystem sys(cfg);
  // Rounds issued back-to-back but drained between rounds, so the
  // second and third passes find the lines allocated.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      sys.cva6_0().push(TxnDesc{false, 0,
                                CheshireMap::kDramBase + i * 0x40, 7, 3,
                                Burst::kIncr});
    }
    ASSERT_TRUE(sys.sim().run_until(
        [&] {
          return sys.cva6_0().completed() >=
                 static_cast<std::size_t>(4 * (round + 1));
        },
        8000));
  }
  EXPECT_GT(sys.llc().hits(), 0u);
  EXPECT_GT(sys.llc().misses(), 0u);
  EXPECT_EQ(sys.cva6_0().data_mismatches(), 0u);
}

TEST(Cheshire, DmaEngineSurvivesEthernetFaultAndRecovery) {
  TmuConfig cfg = system_cfg(Variant::kFullCounter);
  cfg.adaptive.enabled = true;
  CheshireSystem sys(cfg);
  sys.eth_side_injector().arm(FaultPoint::kBValidStuck);
  sys.dma_engine().submit(
      soc::DmaDescriptor{CheshireMap::kDramBase,
                         CheshireMap::kEthTxWindow, 16});
  ASSERT_TRUE(
      sys.sim().run_until([&] { return sys.tmu().any_fault(); }, 5000));
  sys.eth_side_injector().disarm();
  // The aborted write chunk gets SLVERR; the engine counts it and keeps
  // going after recovery.
  ASSERT_TRUE(sys.sim().run_until(
      [&] { return sys.dma_engine().descriptors_done() >= 1; }, 8000));
  EXPECT_GE(sys.dma_engine().error_responses(), 1u);
  // The recovery handshake may still be draining when the (aborted)
  // descriptor retires; wait for it separately.
  ASSERT_TRUE(sys.sim().run_until(
      [&] { return sys.tmu().recoveries() >= 1; }, 2000));
}

}  // namespace
