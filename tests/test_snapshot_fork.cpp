// Campaign snapshot forking: a warm-up-heavy campaign run with snapshot
// forking must produce a report byte-identical to the cold run that
// pays every warm-up — at 1 and 8 threads, under both scheduler
// policies, and regardless of how trials land on the warm-up cache.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "sim/kernel.hpp"
#include "soc/topologies.hpp"

namespace {

// A warm-up-heavy trial prototype: the warm-up (1000 cycles) is longer
// than the whole fault window (inject <= 150 + detect 600), the regime
// the fork cache is built for.
campaign::TrialSpec warm_proto(sim::sched::SchedPolicy policy) {
  campaign::TrialSpec p;
  p.desc = soc::ip_testbench_desc();
  p.desc.policy = policy;
  p.desc.managers.front().seed = 0xF00D;
  p.cfg.variant = tmu::Variant::kFullCounter;
  p.cfg.tc_total_budget = 200;
  p.point = fault::FaultPoint::kAwReadyStuck;
  p.traffic.enabled = true;
  p.traffic.p_new_txn = 0.3;
  p.traffic.len_max = 7;
  p.warmup_cycles = 1000;
  p.inject_delay_max = 150;
  p.detect_budget = 600;
  return p;
}

std::vector<campaign::Scenario> warm_scenarios(
    sim::sched::SchedPolicy policy) {
  campaign::TrialSpec a = warm_proto(policy);
  campaign::TrialSpec b = warm_proto(policy);
  // Second scenario differs in a warm-up-relevant field, so the cache
  // must keep two groups apart (same desc, different warm-up length).
  b.warmup_cycles = 700;
  b.point = fault::FaultPoint::kBValidStuck;
  return {campaign::make_scenario("warm-a", a, 4),
          campaign::make_scenario("warm-b", b, 3)};
}

campaign::Report run_campaign(const std::vector<campaign::Scenario>& s,
                              unsigned threads, bool fork) {
  campaign::EngineOptions opts;
  opts.threads = threads;
  opts.snapshot_fork = fork;
  return campaign::Engine(opts).run(s);
}

TEST(SnapshotFork, ForkedReportByteIdenticalToCold) {
  for (const sim::sched::SchedPolicy policy :
       {sim::sched::SchedPolicy::kEventDriven,
        sim::sched::SchedPolicy::kFullSweep}) {
    const std::vector<campaign::Scenario> s = warm_scenarios(policy);
    const std::string cold = run_campaign(s, 1, false).to_json();
    EXPECT_EQ(run_campaign(s, 1, true).to_json(), cold);
    EXPECT_EQ(run_campaign(s, 8, true).to_json(), cold);
    // Cold execution is itself thread-count-invariant (pinned
    // elsewhere); re-checked here so the chain fork@8 == cold@1 holds
    // by transitivity through an in-test witness.
    EXPECT_EQ(run_campaign(s, 8, false).to_json(), cold);
  }
}

TEST(SnapshotFork, WarmupZeroPassesThroughToColdPath) {
  // Without a warm-up phase there is nothing to share; the forking
  // runner must behave exactly like run_fault_trial (and byte-preserve
  // the historical seed-in-desc elaboration).
  campaign::TrialSpec p = warm_proto(sim::sched::SchedPolicy::kEventDriven);
  p.warmup_cycles = 0;
  const std::vector<campaign::Scenario> s = {
      campaign::make_scenario("cold-only", p, 3)};
  EXPECT_EQ(run_campaign(s, 2, true).to_json(),
            run_campaign(s, 2, false).to_json());
}

TEST(SnapshotFork, ExplicitTrialFnStaysCold) {
  // An engine handed an explicit TrialFn must run it verbatim — the
  // fork cache only backs the default trial body.
  const std::vector<campaign::Scenario> s =
      warm_scenarios(sim::sched::SchedPolicy::kEventDriven);
  campaign::EngineOptions opts;
  opts.threads = 2;
  const campaign::Report explicit_cold =
      campaign::Engine(opts).run(s, campaign::run_fault_trial);
  EXPECT_EQ(explicit_cold.to_json(), run_campaign(s, 2, false).to_json());
}

TEST(SnapshotFork, WarmupTrialsStillDetectFaults) {
  // Sanity that the equivalence above is not vacuous: the warm-up-heavy
  // scenarios actually inject and detect.
  const campaign::Report r = run_campaign(
      warm_scenarios(sim::sched::SchedPolicy::kEventDriven), 4, true);
  EXPECT_EQ(r.total_trials(), 7u);
  EXPECT_GT(r.overall.detected, 0u);
}

}  // namespace
