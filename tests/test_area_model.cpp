#include <gtest/gtest.h>

#include "area/area_model.hpp"
#include "tmu/config.hpp"

namespace {

using area::counter_width;
using area::estimate;
using area::paper_config_area;
using tmu::Variant;

TEST(AreaModel, CounterWidths) {
  EXPECT_EQ(counter_width(256, 1), 9u);   // count to 256 -> 9 bits
  EXPECT_EQ(counter_width(255, 1), 8u);
  EXPECT_EQ(counter_width(256, 32), 4u);  // limit 8 -> 4 bits
  EXPECT_EQ(counter_width(256, 128), 2u);
  EXPECT_EQ(counter_width(256, 256), 2u);  // conservative minimum limit 2
  EXPECT_EQ(counter_width(1, 1), 1u);
}

// §III-A: Tc monitoring 16-32 outstanding transactions occupies
// 1330-2616 um^2; Fc occupies 3452-6787 um^2. The model is calibrated
// against these four points; they must stay within 10%.
TEST(AreaModel, PaperCalibrationPoints) {
  EXPECT_NEAR(paper_config_area(Variant::kTinyCounter, 16, 1, false), 1330,
              133);
  EXPECT_NEAR(paper_config_area(Variant::kTinyCounter, 32, 1, false), 2616,
              262);
  EXPECT_NEAR(paper_config_area(Variant::kFullCounter, 16, 1, false), 3452,
              345);
  EXPECT_NEAR(paper_config_area(Variant::kFullCounter, 32, 1, false), 6787,
              679);
}

// "On average, Tc requires about 38% of Fc's area."
TEST(AreaModel, TcIsAbout38PercentOfFc) {
  double ratio_sum = 0;
  int n = 0;
  for (std::uint32_t txns : {8u, 16u, 32u, 64u, 128u}) {
    ratio_sum += paper_config_area(Variant::kTinyCounter, txns, 1, false) /
                 paper_config_area(Variant::kFullCounter, txns, 1, false);
    ++n;
  }
  const double avg = ratio_sum / n;
  EXPECT_GT(avg, 0.33);
  EXPECT_LT(avg, 0.45);
}

// "Prescalers reduce area by 18-39% (Tc) and 19-32% (Fc)."
TEST(AreaModel, PrescalerSavingsInPaperRanges) {
  for (std::uint32_t txns : {16u, 32u, 64u, 128u}) {
    const double tc = paper_config_area(Variant::kTinyCounter, txns, 1, false);
    const double tcp = paper_config_area(Variant::kTinyCounter, txns, 32, true);
    const double fc = paper_config_area(Variant::kFullCounter, txns, 1, false);
    const double fcp = paper_config_area(Variant::kFullCounter, txns, 32, true);
    const double tc_save = 1.0 - tcp / tc;
    const double fc_save = 1.0 - fcp / fc;
    EXPECT_GE(tc_save, 0.18) << "txns=" << txns;
    EXPECT_LE(tc_save, 0.39) << "txns=" << txns;
    EXPECT_GE(fc_save, 0.19) << "txns=" << txns;
    EXPECT_LE(fc_save, 0.32) << "txns=" << txns;
  }
}

TEST(AreaModel, AreaMonotoneInOutstanding) {
  for (Variant v : {Variant::kTinyCounter, Variant::kFullCounter}) {
    double prev = 0;
    for (std::uint32_t txns : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
      const double a = paper_config_area(v, txns, 1, false);
      EXPECT_GT(a, prev);
      prev = a;
    }
  }
}

TEST(AreaModel, AreaMonotoneDecreasingInPrescaler) {
  for (Variant v : {Variant::kTinyCounter, Variant::kFullCounter}) {
    double prev = 1e18;
    for (std::uint32_t step : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
      const double a = paper_config_area(v, 128, step, step > 1);
      EXPECT_LE(a, prev) << "step=" << step;
      prev = a;
    }
  }
}

TEST(AreaModel, OrderingTcPreLessThanTcLessThanFcPreLessThanFc) {
  for (std::uint32_t txns : {8u, 32u, 128u}) {
    const double tc = paper_config_area(Variant::kTinyCounter, txns, 1, false);
    const double tcp = paper_config_area(Variant::kTinyCounter, txns, 32, true);
    const double fc = paper_config_area(Variant::kFullCounter, txns, 1, false);
    const double fcp = paper_config_area(Variant::kFullCounter, txns, 32, true);
    EXPECT_LT(tcp, tc);
    EXPECT_LT(tc, fcp);
    EXPECT_LT(fcp, fc);
  }
}

TEST(AreaModel, BreakdownSumsToTotal) {
  const auto cfg = area::paper_ip_config(Variant::kFullCounter, 32, 1, false);
  const auto a = estimate(cfg);
  const double sum = a.ld_table + a.ht_table + a.ei_table + a.remapper +
                     a.comparators + a.control;
  EXPECT_NEAR(a.total, sum * area::Gf12Costs{}.overhead, 1e-6);
  EXPECT_GT(a.ld_table, 0.5 * a.total / area::Gf12Costs{}.overhead)
      << "LD storage should dominate";
}

TEST(AreaModel, FcEntryLargerThanTc) {
  auto fc = area::paper_ip_config(Variant::kFullCounter, 16, 1, false);
  auto tc = area::paper_ip_config(Variant::kTinyCounter, 16, 1, false);
  EXPECT_GT(area::ld_entry_bits(fc, true), 2 * area::ld_entry_bits(tc, true));
  EXPECT_GT(area::ld_entry_bits(fc, true), area::ld_entry_bits(fc, false))
      << "write guard (6 phases) bigger than read guard (4 phases)";
}

// Property sweep: prescaler never increases area; sticky adds at most
// one bit per entry worth of area.
class AreaSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AreaSweep, PrescalerNeverIncreasesArea) {
  const auto [txns, step] = GetParam();
  for (Variant v : {Variant::kTinyCounter, Variant::kFullCounter}) {
    const double base = paper_config_area(v, txns, 1, false);
    const double pre = paper_config_area(v, txns, step, true);
    EXPECT_LE(pre, base);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, AreaSweep,
                         ::testing::Combine(::testing::Values(4, 16, 64, 128),
                                            ::testing::Values(2, 8, 32,
                                                              128)));

}  // namespace
