#include <gtest/gtest.h>

#include "tmu/ott.hpp"

namespace {

using tmu::Ott;

TEST(Ott, EnqueueDequeueSingleId) {
  Ott ott(4, 4);
  const int a = ott.enqueue(0, 10, 0x100, 3, 5);
  const int b = ott.enqueue(0, 10, 0x200, 0, 6);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_EQ(ott.occupancy(), 2u);
  EXPECT_EQ(ott.head_of(0), a);  // FIFO: oldest first
  ott.dequeue(0);
  EXPECT_EQ(ott.head_of(0), b);
  ott.dequeue(0);
  EXPECT_EQ(ott.head_of(0), -1);
  EXPECT_EQ(ott.occupancy(), 0u);
}

TEST(Ott, PerIdFifosAreIndependent) {
  Ott ott(2, 2);
  const int a0 = ott.enqueue(0, 1, 0x0, 0, 0);
  const int b0 = ott.enqueue(1, 2, 0x10, 0, 1);
  const int a1 = ott.enqueue(0, 1, 0x20, 0, 2);
  ASSERT_GE(a0, 0);
  ASSERT_GE(b0, 0);
  ASSERT_GE(a1, 0);
  EXPECT_EQ(ott.head_of(0), a0);
  EXPECT_EQ(ott.head_of(1), b0);
  ott.dequeue(0);
  EXPECT_EQ(ott.head_of(0), a1);
  EXPECT_EQ(ott.head_of(1), b0);
}

TEST(Ott, PerIdCapacityEnforced) {
  Ott ott(2, 2);
  ASSERT_GE(ott.enqueue(0, 1, 0, 0, 0), 0);
  ASSERT_GE(ott.enqueue(0, 1, 0, 0, 0), 0);
  EXPECT_TRUE(ott.id_full(0));
  EXPECT_EQ(ott.enqueue(0, 1, 0, 0, 0), -1);  // per-ID cap
  EXPECT_GE(ott.enqueue(1, 2, 0, 0, 0), 0);   // other ID fine
}

TEST(Ott, TotalCapacityEnforced) {
  Ott ott(2, 2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_GE(ott.enqueue(i % 2, i, 0, 0, 0), 0);
  }
  EXPECT_TRUE(ott.full());
  EXPECT_EQ(ott.capacity(), 4u);
}

TEST(Ott, EiTableKeepsEnqueueOrder) {
  Ott ott(4, 4);
  const int a = ott.enqueue(2, 1, 0, 0, 0);
  const int b = ott.enqueue(0, 2, 0, 0, 1);
  const int c = ott.enqueue(2, 1, 0, 0, 2);
  const auto& order = ott.order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], a);
  EXPECT_EQ(order[1], b);
  EXPECT_EQ(order[2], c);
}

TEST(Ott, AheadOfCountsOlderEntries) {
  Ott ott(4, 4);
  const int a = ott.enqueue(0, 1, 0, 0, 0);
  const int b = ott.enqueue(1, 2, 0, 0, 1);
  const int c = ott.enqueue(2, 3, 0, 0, 2);
  EXPECT_EQ(ott.ahead_of(a), 0u);
  EXPECT_EQ(ott.ahead_of(b), 1u);
  EXPECT_EQ(ott.ahead_of(c), 2u);
}

TEST(Ott, DequeueMiddleIdRemovesFromEi) {
  Ott ott(4, 4);
  ott.enqueue(0, 1, 0, 0, 0);
  const int b = ott.enqueue(1, 2, 0, 0, 1);
  ott.enqueue(0, 1, 0, 0, 2);
  ott.dequeue(1);
  for (int idx : ott.order()) EXPECT_NE(idx, b);
  EXPECT_EQ(ott.occupancy(), 2u);
}

TEST(Ott, FreedSlotsAreReused) {
  Ott ott(1, 2);
  const int a = ott.enqueue(0, 1, 0, 0, 0);
  ott.dequeue(0);
  const int b = ott.enqueue(0, 1, 0, 0, 1);
  EXPECT_EQ(a, b);
}

TEST(Ott, ClearEmptiesEverything) {
  Ott ott(2, 2);
  ott.enqueue(0, 1, 0, 0, 0);
  ott.enqueue(1, 2, 0, 0, 1);
  ott.clear();
  EXPECT_EQ(ott.occupancy(), 0u);
  EXPECT_TRUE(ott.order().empty());
  EXPECT_EQ(ott.head_of(0), -1);
  EXPECT_EQ(ott.head_of(1), -1);
}

TEST(Ott, EntryMetadataStored) {
  Ott ott(2, 2);
  const int a = ott.enqueue(1, 0xBEEF, 0xCAFE, 7, 42);
  const tmu::LdEntry& e = ott.at(a);
  EXPECT_EQ(e.tid, 1);
  EXPECT_EQ(e.orig_id, 0xBEEFu);
  EXPECT_EQ(e.addr, 0xCAFEu);
  EXPECT_EQ(e.len, 7);
  EXPECT_EQ(e.enq_cycle, 42u);
  EXPECT_TRUE(e.valid);
}

// Property: fill/drain loops never leak capacity, any geometry.
class OttGeometry
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OttGeometry, FillDrainPreservesCapacity) {
  const auto [ids, per_id] = GetParam();
  Ott ott(ids, per_id);
  for (int round = 0; round < 3; ++round) {
    int enqueued = 0;
    for (int t = 0; t < ids; ++t) {
      for (int k = 0; k < per_id; ++k) {
        if (ott.enqueue(t, t, 0, 0, 0) >= 0) ++enqueued;
      }
    }
    EXPECT_EQ(enqueued, ids * per_id);
    EXPECT_TRUE(ott.full());
    for (int t = 0; t < ids; ++t) {
      while (ott.head_of(t) >= 0) ott.dequeue(t);
    }
    EXPECT_EQ(ott.occupancy(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, OttGeometry,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(1, 2, 8, 32)));

}  // namespace
