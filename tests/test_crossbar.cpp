// Crossbar unit suite, parameterized over both evaluation
// implementations (sharded / monolithic): address-map validation,
// same-ID ordering stalls across subordinates, DECERR burst responses,
// and round-robin fairness at asymmetric N x M sizes. Before this suite
// the crossbar was only exercised indirectly through system tests.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "axi/crossbar.hpp"
#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/scoreboard.hpp"
#include "axi/traffic_gen.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace axi;

// ------------------------------------------------------------------
// Address-map validation (implementation-independent: the decoder is
// built by the shared XbarState before either eval path exists).
// ------------------------------------------------------------------

TEST(XbarMapValidation, RejectsZeroSizeRange) {
  Link m0, s0, s1;
  EXPECT_THROW(Crossbar("xbar", {&m0}, {&s0, &s1},
                        {AddrRange{0x0, 0x1000, 0}, AddrRange{0x2000, 0, 1}}),
               std::invalid_argument);
}

TEST(XbarMapValidation, RejectsOverlappingRanges) {
  Link m0, s0, s1;
  EXPECT_THROW(Crossbar("xbar", {&m0}, {&s0, &s1},
                        {AddrRange{0x0000, 0x2000, 0},
                         AddrRange{0x1000, 0x2000, 1}}),
               std::invalid_argument);
  // Identical ranges are overlaps too.
  EXPECT_THROW(Crossbar("xbar", {&m0}, {&s0, &s1},
                        {AddrRange{0x0000, 0x1000, 0},
                         AddrRange{0x0000, 0x1000, 1}}),
               std::invalid_argument);
}

TEST(XbarMapValidation, RejectsOutOfRangeSubIndex) {
  Link m0, s0;
  EXPECT_THROW(Crossbar("xbar", {&m0}, {&s0}, {AddrRange{0x0, 0x1000, 1}}),
               std::invalid_argument);
}

TEST(XbarMapValidation, RejectsAddressSpaceWrap) {
  Link m0, s0;
  EXPECT_THROW(Crossbar("xbar", {&m0}, {&s0},
                        {AddrRange{~Addr{0} - 0xFF, 0x1000, 0}}),
               std::invalid_argument);
}

TEST(XbarMapValidation, AcceptsUnsortedDisjointMapAndRoutesCorrectly) {
  Link m0, s0, s1;
  TrafficGenerator g0("g0", m0);
  MemorySubordinate mem0("mem0", s0), mem1("mem1", s1);
  // Ranges given in descending base order: the decoder sorts internally.
  Crossbar xbar("xbar", {&m0}, {&s0, &s1},
                {AddrRange{0x10000, 0x10000, 1}, AddrRange{0x0, 0x10000, 0}});
  sim::Simulator s;
  s.add(g0);
  s.add(xbar);
  s.add(mem0);
  s.add(mem1);
  s.reset();
  g0.push(TxnDesc{true, 0, 0x00100, 0, 3, Burst::kIncr});
  g0.push(TxnDesc{true, 0, 0x10100, 0, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return g0.completed() >= 2; }, 1000));
  EXPECT_EQ(mem0.writes_done(), 1u);
  EXPECT_EQ(mem1.writes_done(), 1u);
}

// ------------------------------------------------------------------
// Behaviour suite, run for both implementations.
// ------------------------------------------------------------------

class XbarImplTest : public ::testing::TestWithParam<XbarImpl> {};

/// Simple n_m x n_s testbench with 64 KiB windows per subordinate.
struct Bench {
  std::vector<std::unique_ptr<Link>> links;
  std::vector<std::unique_ptr<TrafficGenerator>> gens;
  std::vector<std::unique_ptr<MemorySubordinate>> mems;
  std::vector<std::unique_ptr<Scoreboard>> sbs;
  std::unique_ptr<Crossbar> xbar;
  sim::Simulator s;

  Bench(unsigned n_m, unsigned n_s, XbarImpl impl,
        MemoryConfig mem_cfg = {}) {
    std::vector<Link*> mp, sp;
    std::vector<AddrRange> map;
    for (unsigned i = 0; i < n_m; ++i) {
      links.push_back(std::make_unique<Link>());
      mp.push_back(links.back().get());
      gens.push_back(std::make_unique<TrafficGenerator>(
          "gen" + std::to_string(i), *links.back(), 100 + i));
      sbs.push_back(std::make_unique<Scoreboard>("sb" + std::to_string(i),
                                                 *links.back()));
    }
    for (unsigned j = 0; j < n_s; ++j) {
      links.push_back(std::make_unique<Link>());
      sp.push_back(links.back().get());
      mems.push_back(std::make_unique<MemorySubordinate>(
          "mem" + std::to_string(j), *links.back(), mem_cfg));
      map.push_back(AddrRange{j * 0x1'0000ull, 0x1'0000ull, j});
    }
    xbar = std::make_unique<Crossbar>("xbar", mp, sp, map, 8, impl);
    for (auto& g : gens) s.add(*g);
    s.add(*xbar);
    for (auto& m : mems) s.add(*m);
    for (auto& sb : sbs) s.add(*sb);
    s.reset();
  }

  Link& mgr(unsigned i) { return *links[i]; }
  Link& sub(unsigned j) { return *links[gens.size() + j]; }
};

// A manager's second same-ID write towards a *different* subordinate
// must stall until the first drains; a different-ID write must not.
TEST_P(XbarImplTest, SameIdOrderingStallsAcrossSubordinates) {
  MemoryConfig slow;
  slow.b_latency = 20;  // widen the outstanding window
  Bench b(1, 2, GetParam(), slow);
  b.gens[0]->push(TxnDesc{true, 5, 0x00000, 0, 3, Burst::kIncr});  // sub 0
  b.gens[0]->push(TxnDesc{true, 5, 0x10000, 0, 3, Burst::kIncr});  // sub 1

  std::uint64_t first_b_at = 0, sub1_aw_at = 0;
  for (std::uint64_t c = 0; c < 300 && b.gens[0]->completed() < 2; ++c) {
    b.s.step();
    const Link& mgr = b.mgr(0);
    if (first_b_at == 0 && mgr.rsp.read().b_valid &&
        mgr.req.read().b_ready) {
      first_b_at = c + 1;  // +1: cycle 0 must be distinct from "never"
    }
    if (sub1_aw_at == 0 && b.sub(1).req.read().aw_valid) {
      sub1_aw_at = c + 1;
    }
  }
  ASSERT_EQ(b.gens[0]->completed(), 2u);
  ASSERT_GT(first_b_at, 0u);
  ASSERT_GT(sub1_aw_at, 0u);
  // The second AW reached subordinate 1 only after the first write's B.
  EXPECT_GT(sub1_aw_at, first_b_at);

  // Control: distinct IDs overlap freely.
  Bench b2(1, 2, GetParam(), slow);
  b2.gens[0]->push(TxnDesc{true, 5, 0x00000, 0, 3, Burst::kIncr});
  b2.gens[0]->push(TxnDesc{true, 6, 0x10000, 0, 3, Burst::kIncr});
  std::uint64_t overlap_at = 0;
  for (std::uint64_t c = 0; c < 300 && b2.gens[0]->completed() < 2; ++c) {
    b2.s.step();
    if (overlap_at == 0 && b2.sub(1).req.read().aw_valid &&
        b2.gens[0]->completed() == 0) {
      overlap_at = c + 1;  // sub 1 addressed while sub 0's write in flight
    }
  }
  ASSERT_EQ(b2.gens[0]->completed(), 2u);
  EXPECT_GT(overlap_at, 0u);
  for (auto& sb : b2.sbs) EXPECT_EQ(sb->violation_count(), 0u);
}

// Unmapped write and read bursts complete with DECERR: one B per write,
// a full R burst (with correct last positioning) per read.
TEST_P(XbarImplTest, DecErrBurstResponses) {
  Bench b(2, 2, GetParam());
  const Addr unmapped = 0x40'0000;
  b.gens[0]->push(TxnDesc{true, 3, unmapped, 3, 3, Burst::kIncr});
  b.gens[1]->push(TxnDesc{false, 4, unmapped + 0x100, 7, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until(
      [&] {
        return b.gens[0]->completed() >= 1 && b.gens[1]->completed() >= 1;
      },
      1000));
  EXPECT_EQ(b.xbar->decode_errors(), 2u);
  EXPECT_EQ(b.gens[0]->error_responses(), 1u);
  EXPECT_EQ(b.gens[1]->error_responses(), 1u);
  for (const auto& r : b.gens[0]->records()) {
    EXPECT_EQ(r.resp, Resp::kDecErr);
  }
  for (const auto& r : b.gens[1]->records()) {
    EXPECT_EQ(r.resp, Resp::kDecErr);
  }
  // No protocol violations while erroring out (WLAST/RLAST positioning
  // is checked by the scoreboards).
  for (auto& sb : b.sbs) EXPECT_EQ(sb->violation_count(), 0u);

  // Mapped traffic still flows cleanly afterwards.
  b.gens[0]->push(TxnDesc{true, 3, 0x00040, 3, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until([&] { return b.gens[0]->completed() >= 2; },
                            1000));
  EXPECT_EQ(b.gens[0]->error_responses(), 1u);
}

// Round-robin fairness at asymmetric sizes: under saturating contention
// every manager makes comparable progress.
TEST_P(XbarImplTest, RoundRobinFairnessAsymmetricGrids) {
  const struct {
    unsigned n_m, n_s;
    std::uint64_t cycles;
  } kGrids[] = {{1, 4, 4000}, {4, 1, 6000}, {8, 6, 8000}};
  for (const auto& g : kGrids) {
    SCOPED_TRACE(std::to_string(g.n_m) + "x" + std::to_string(g.n_s));
    Bench b(g.n_m, g.n_s, GetParam());
    RandomTrafficConfig rc;
    rc.enabled = true;
    rc.p_new_txn = 0.5;  // saturate
    rc.len_max = 3;
    rc.addr_max = g.n_s * 0x1'0000ull - 8;
    for (auto& gen : b.gens) gen->set_random(rc);
    b.s.run(g.cycles);

    std::size_t min_done = ~std::size_t{0}, max_done = 0;
    for (auto& gen : b.gens) {
      min_done = std::min(min_done, gen->completed());
      max_done = std::max(max_done, gen->completed());
      EXPECT_EQ(gen->data_mismatches(), 0u);
      EXPECT_EQ(gen->error_responses(), 0u);
    }
    EXPECT_GT(min_done, 0u);
    // Round-robin arbitration: no manager starves. The generators'
    // random draws differ, so allow slack around perfect fairness.
    EXPECT_GE(static_cast<double>(min_done),
              0.5 * static_cast<double>(max_done));
    for (auto& sb : b.sbs) {
      ASSERT_EQ(sb->violation_count(), 0u)
          << sb->violations()[0].rule << " " << sb->violations()[0].detail;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothImpls, XbarImplTest,
                         ::testing::Values(XbarImpl::kSharded,
                                           XbarImpl::kMonolithic),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
