// campaign::Engine unit tests: deterministic sharding (a run with 1
// thread equals a run with N threads byte-for-byte), seed derivation,
// aggregation, JSON output, and error propagation from worker threads.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "sim/logger.hpp"
#include "soc/topologies.hpp"
#include "tmu/config.hpp"

namespace {

using fault::FaultPoint;
using tmu::Variant;

campaign::TrialSpec small_spec(Variant v, FaultPoint p) {
  campaign::TrialSpec spec;
  spec.cfg.variant = v;
  spec.cfg.tc_total_budget = 200;
  spec.cfg.adaptive.enabled = true;
  spec.cfg.adaptive.cycles_per_beat = 3;
  spec.cfg.adaptive.cycles_per_ahead = 6;
  spec.point = p;
  spec.traffic.enabled = true;
  spec.traffic.p_new_txn = 0.25;
  spec.traffic.max_outstanding = 6;
  spec.traffic.len_max = 7;
  spec.inject_delay_max = 300;
  spec.detect_budget = 4000;
  return spec;
}

std::vector<campaign::Scenario> small_campaign(std::size_t trials) {
  std::vector<campaign::Scenario> sc;
  sc.push_back(campaign::make_scenario(
      "fc/aw_ready_stuck",
      small_spec(Variant::kFullCounter, FaultPoint::kAwReadyStuck), trials));
  sc.push_back(campaign::make_scenario(
      "tc/r_valid_stuck",
      small_spec(Variant::kTinyCounter, FaultPoint::kRValidStuck), trials));
  return sc;
}

class CampaignEngine : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = sim::global_log_level();
    sim::global_log_level() = sim::LogLevel::kOff;
  }
  void TearDown() override { sim::global_log_level() = saved_; }

 private:
  sim::LogLevel saved_ = sim::LogLevel::kWarn;
};

TEST_F(CampaignEngine, OneThreadEqualsNThreadsByteForByte) {
  const auto scenarios = small_campaign(12);
  campaign::Engine one({1, 0xABCDEFull});
  campaign::Engine four({4, 0xABCDEFull});
  EXPECT_EQ(one.threads(), 1u);
  EXPECT_EQ(four.threads(), 4u);
  const campaign::Report r1 = one.run(scenarios);
  const campaign::Report r4 = four.run(scenarios);
  EXPECT_EQ(r1.to_json(), r4.to_json());
  // Per-trial results agree too, not just the aggregates.
  ASSERT_EQ(r1.results.size(), r4.results.size());
  for (std::size_t i = 0; i < r1.results.size(); ++i) {
    EXPECT_EQ(r1.results[i].detected, r4.results[i].detected);
    EXPECT_EQ(r1.results[i].inject_delay, r4.results[i].inject_delay);
    EXPECT_EQ(r1.results[i].detect_cycle, r4.results[i].detect_cycle);
    EXPECT_EQ(r1.results[i].latency, r4.results[i].latency);
    EXPECT_EQ(r1.results[i].cycles_run, r4.results[i].cycles_run);
    EXPECT_EQ(r1.results[i].eval_passes, r4.results[i].eval_passes);
  }
}

TEST_F(CampaignEngine, DerivedSeedsAreDistinctPerTrial) {
  const auto scenarios = small_campaign(16);
  campaign::Engine eng({2, 0x1234ull});
  const campaign::Report rep = eng.run(scenarios);
  // Distinct seeds show up as distinct injection-delay draws; with 32
  // trials over [0, 300] at least a handful must differ.
  std::set<std::uint64_t> delays;
  for (const auto& r : rep.results) delays.insert(r.inject_delay);
  EXPECT_GT(delays.size(), 8u);
}

TEST_F(CampaignEngine, DifferentBaseSeedsGiveDifferentCampaigns) {
  const auto scenarios = small_campaign(8);
  campaign::Engine a({2, 1ull});
  campaign::Engine b({2, 2ull});
  EXPECT_NE(a.run(scenarios).to_json(), b.run(scenarios).to_json());
}

TEST_F(CampaignEngine, FullCoverageAndAggregation) {
  const auto scenarios = small_campaign(10);
  campaign::Engine eng({0, 0xC0FFEEull});  // hardware concurrency
  const campaign::Report rep = eng.run(scenarios);
  ASSERT_EQ(rep.scenarios.size(), 2u);
  EXPECT_EQ(rep.total_trials(), 20u);
  for (const auto& sc : rep.scenarios) {
    EXPECT_EQ(sc.trials, 10u);
    EXPECT_EQ(sc.detected, 10u) << sc.label;  // P1: always detected
    EXPECT_EQ(sc.latency.count(), 10u);
    EXPECT_GT(sc.latency.mean(), 0.0);
    EXPECT_LE(sc.latency.min(), sc.latency.mean());
    EXPECT_LE(sc.latency.mean(), sc.latency.max());
    EXPECT_EQ(sc.latency_hist.total(), 10u);
    EXPECT_GT(sc.total_cycles, 0u);
    EXPECT_GT(sc.total_eval_passes, 0u);
  }
}

TEST_F(CampaignEngine, HealthySoakHasNoFalsePositives) {
  campaign::TrialSpec spec =
      small_spec(Variant::kFullCounter, FaultPoint::kNone);
  spec.soak_cycles = 3000;
  std::vector<campaign::Scenario> sc;
  sc.push_back(campaign::make_scenario("healthy", spec, 6));
  campaign::Engine eng({3, 0xFEEDull});
  const campaign::Report rep = eng.run(sc);
  EXPECT_EQ(rep.scenarios[0].false_positives, 0u);
  EXPECT_EQ(rep.scenarios[0].detected, 0u);
  for (const auto& r : rep.results) {
    EXPECT_GT(r.completed_txns, 50u);
    EXPECT_EQ(r.data_mismatches, 0u);
    EXPECT_EQ(r.error_responses, 0u);
  }
}

TEST_F(CampaignEngine, CustomTrialFnAndJsonShape) {
  // The engine is generic over the trial body.
  campaign::TrialSpec proto;
  std::vector<campaign::Scenario> sc;
  sc.push_back(campaign::make_scenario("synthetic \"quoted\"", proto, 5));
  campaign::Engine eng({2, 7ull});
  const campaign::Report rep =
      eng.run(sc, [](const campaign::TrialSpec& s) {
        campaign::TrialResult r;
        r.detected = false;  // healthy scenario path (point == kNone)
        r.cycles_run = s.seed % 100;
        return r;
      });
  EXPECT_EQ(rep.total_trials(), 5u);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"schema\": \"tmu-campaign-report-v3\""),
            std::string::npos);
  EXPECT_NE(json.find("synthetic \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"false_positives\": 0"), std::string::npos);
  // v2: every summary names the topology its trials elaborated
  // (default TrialSpec -> the IP-level testbench desc) plus its
  // 64-bit fingerprint as a hex string.
  EXPECT_NE(json.find("\"topology\": \"ip_testbench\""), std::string::npos);
  char hash_field[64];
  std::snprintf(hash_field, sizeof hash_field,
                "\"topology_hash\": \"%016llx\"",
                static_cast<unsigned long long>(
                    soc::ip_testbench_desc().hash()));
  EXPECT_NE(json.find(hash_field), std::string::npos);
}

TEST_F(CampaignEngine, MixedTopologiesAreReportedAsMixed) {
  campaign::TrialSpec a;  // default ip_testbench
  campaign::TrialSpec b;
  b.desc = soc::grid_desc(2, 2, 1);
  campaign::Scenario sc;
  sc.label = "mixed_topo";
  sc.trials = {a, b};
  campaign::Engine eng({1, 3ull});
  const campaign::Report rep =
      eng.run({sc}, [](const campaign::TrialSpec&) {
        return campaign::TrialResult{};
      });
  EXPECT_EQ(rep.scenarios[0].topology, "mixed");
  EXPECT_EQ(rep.scenarios[0].topology_hash, 0u);
  EXPECT_EQ(rep.overall.topology, "mixed");
}

TEST_F(CampaignEngine, ThrowingTrialIsCapturedAndCampaignCompletes) {
  // A throwing trial must not abort the campaign: the failure lands in
  // the trial's own result slot and the scenario summary counts it.
  campaign::TrialSpec proto;
  campaign::TrialSpec bad = proto;
  bad.soak_cycles = 0;  // the trial fn's failure trigger
  std::vector<campaign::Scenario> mixed;
  mixed.push_back(campaign::make_scenario("boom", bad, 8));
  mixed.push_back(campaign::make_scenario("fine", proto, 4));
  campaign::Engine eng({2, 9ull});
  const campaign::Report rep2 =
      eng.run(mixed, [](const campaign::TrialSpec& s) -> campaign::TrialResult {
        if (s.soak_cycles == 0) throw std::runtime_error("trial blew up");
        campaign::TrialResult r;
        r.cycles_run = 10;
        return r;
      });
  ASSERT_EQ(rep2.results.size(), 12u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(rep2.results[i].failed) << i;
    EXPECT_EQ(rep2.results[i].error, "trial blew up") << i;
    EXPECT_EQ(rep2.results[i].cycles_run, 0u) << i;
  }
  for (std::size_t i = 8; i < 12; ++i) {
    EXPECT_FALSE(rep2.results[i].failed) << i;
  }
  EXPECT_EQ(rep2.scenarios[0].failed_trials, 8u);
  EXPECT_EQ(rep2.scenarios[0].false_positives, 0u);
  EXPECT_EQ(rep2.scenarios[1].failed_trials, 0u);
  EXPECT_EQ(rep2.overall.failed_trials, 8u);
  // The counts surface in the JSON report.
  EXPECT_NE(rep2.to_json().find("\"failed_trials\": 8"), std::string::npos);
}

TEST_F(CampaignEngine, WriteJsonRoundTrips) {
  const auto scenarios = small_campaign(3);
  campaign::Engine eng({1, 5ull});
  const campaign::Report rep = eng.run(scenarios);
  const std::string path = ::testing::TempDir() + "campaign_test.json";
  ASSERT_TRUE(rep.write_json(path));
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), rep.to_json());
}

}  // namespace
