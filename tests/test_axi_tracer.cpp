#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/tracer.hpp"
#include "axi/traffic_gen.hpp"
#include "obs/metrics.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace axi;

struct TracerFixture : ::testing::Test {
  Link link;
  TrafficGenerator gen{"gen", link};
  MemorySubordinate mem{"mem", link};
  Tracer tracer{"trace", link};
  sim::Simulator s;

  void SetUp() override {
    s.add(gen);
    s.add(mem);
    s.add(tracer);
    s.reset();
  }
};

TEST_F(TracerFixture, CapturesWriteTransaction) {
  gen.push(TxnDesc{true, 3, 0x1200, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 300));
  const auto aws = tracer.filter(TraceEvent::Kind::kAw);
  const auto ws = tracer.filter(TraceEvent::Kind::kWBeat);
  const auto bs = tracer.filter(TraceEvent::Kind::kB);
  ASSERT_EQ(aws.size(), 1u);
  EXPECT_EQ(aws[0].id, 3u);
  EXPECT_EQ(aws[0].addr, 0x1200u);
  EXPECT_EQ(aws[0].len, 3);
  ASSERT_EQ(ws.size(), 4u);
  EXPECT_FALSE(ws[0].last);
  EXPECT_TRUE(ws[3].last);
  ASSERT_EQ(bs.size(), 1u);
  EXPECT_EQ(bs[0].resp, Resp::kOkay);
}

TEST_F(TracerFixture, CapturesReadTransaction) {
  gen.push(TxnDesc{false, 1, 0x80, 7, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 300));
  const auto ars = tracer.filter(TraceEvent::Kind::kAr);
  const auto rs = tracer.filter(TraceEvent::Kind::kRBeat);
  ASSERT_EQ(ars.size(), 1u);
  ASSERT_EQ(rs.size(), 8u);
  EXPECT_TRUE(rs[7].last);
  for (int i = 0; i < 7; ++i) EXPECT_FALSE(rs[i].last);
}

TEST_F(TracerFixture, EventsAreCycleOrdered) {
  gen.push(TxnDesc{true, 0, 0x0, 7, 3, Burst::kIncr});
  gen.push(TxnDesc{false, 0, 0x0, 7, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 500));
  std::uint64_t prev = 0;
  for (const auto& e : tracer.events()) {
    EXPECT_GE(e.cycle, prev);
    prev = e.cycle;
  }
  EXPECT_GT(tracer.events().size(), 15u);
}

TEST_F(TracerFixture, CapacityBoundsAndDropCount) {
  Link l2;
  TrafficGenerator g2("g2", l2);
  MemorySubordinate m2("m2", l2);
  Tracer small("small", l2, /*capacity=*/4);
  sim::Simulator s2;
  s2.add(g2);
  s2.add(m2);
  s2.add(small);
  s2.reset();
  g2.push(TxnDesc{true, 0, 0x0, 15, 3, Burst::kIncr});
  ASSERT_TRUE(s2.run_until([&] { return g2.completed() >= 1; }, 300));
  EXPECT_EQ(small.events().size(), 4u);
  EXPECT_GT(small.drop_count(), 0u);
}

TEST_F(TracerFixture, PublishesCountersIntoTheRegistry) {
  Link l2;
  TrafficGenerator g2("g2", l2);
  MemorySubordinate m2("m2", l2);
  obs::MetricsRegistry reg;
  Tracer obs_trace("bus", l2, reg);
  sim::Simulator s2;
  s2.add(g2);
  s2.add(m2);
  s2.add(obs_trace);
  s2.reset();
  g2.push(TxnDesc{true, 3, 0x100, 3, 3, Burst::kIncr});
  g2.push(TxnDesc{false, 1, 0x40, 7, 3, Burst::kIncr});
  ASSERT_TRUE(s2.run_until([&] { return g2.completed() >= 2; }, 400));

  // The registry mirrors the in-memory log, per kind.
  EXPECT_EQ(reg.counter("bus.events").value(), obs_trace.events().size());
  EXPECT_EQ(reg.counter("bus.aw").value(), 1u);
  EXPECT_EQ(reg.counter("bus.w").value(), 4u);
  EXPECT_EQ(reg.counter("bus.b").value(), 1u);
  EXPECT_EQ(reg.counter("bus.ar").value(), 1u);
  EXPECT_EQ(reg.counter("bus.r").value(), 8u);
  EXPECT_EQ(reg.counter("bus.dropped").value(), 0u);
}

TEST_F(TracerFixture, RegistryCountsDropsWhenTheLogOverflows) {
  Link l2;
  TrafficGenerator g2("g2", l2);
  MemorySubordinate m2("m2", l2);
  obs::MetricsRegistry reg;
  Tracer small("small", l2, reg, /*capacity=*/4);
  sim::Simulator s2;
  s2.add(g2);
  s2.add(m2);
  s2.add(small);
  s2.reset();
  g2.push(TxnDesc{true, 0, 0x0, 15, 3, Burst::kIncr});
  ASSERT_TRUE(s2.run_until([&] { return g2.completed() >= 1; }, 300));
  EXPECT_EQ(reg.counter("small.dropped").value(), small.drop_count());
  EXPECT_GT(small.drop_count(), 0u);
  // Dropped events are not double-counted as captured.
  EXPECT_EQ(reg.counter("small.events").value(), 4u);
  // reset() clears the capture but not the registry slots (the
  // registry owner picks snapshot boundaries, like LatencyProbe).
  s2.reset();
  EXPECT_TRUE(small.events().empty());
  EXPECT_EQ(reg.counter("small.events").value(), 4u);
}

TEST_F(TracerFixture, DescribeFormats) {
  gen.push(TxnDesc{true, 2, 0xAB00, 0, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 300));
  const auto aws = tracer.filter(TraceEvent::Kind::kAw);
  ASSERT_FALSE(aws.empty());
  const std::string d = aws[0].describe();
  EXPECT_NE(d.find("AW"), std::string::npos);
  EXPECT_NE(d.find("ab00"), std::string::npos);
}

}  // namespace
