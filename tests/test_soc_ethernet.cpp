#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/scoreboard.hpp"
#include "axi/traffic_gen.hpp"
#include "sim/kernel.hpp"
#include "soc/ethernet.hpp"
#include "soc/irq.hpp"
#include "soc/reset_unit.hpp"

namespace {

using namespace axi;
using soc::EthernetConfig;
using soc::EthernetPeripheral;

struct EthFixture : ::testing::Test {
  Link link;
  TrafficGenerator gen{"gen", link};
  EthernetPeripheral eth{"eth", link};
  Scoreboard sb{"sb", link};
  sim::Simulator s;

  void SetUp() override {
    s.add(gen);
    s.add(eth);
    s.add(sb);
    s.reset();
  }
};

TEST_F(EthFixture, TxWriteEntersFifoAndDrains) {
  gen.push(TxnDesc{true, 0, 0x1000, 7, 3, Burst::kIncr});  // TX window
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 500));
  EXPECT_EQ(eth.writes_done(), 1u);
  ASSERT_TRUE(s.run_until([&] { return eth.frames_txed() >= 8; }, 100));
  EXPECT_EQ(eth.tx_fifo_level(), 0u);
  EXPECT_EQ(eth.rx_fifo_level(), 8u);  // loopback
  EXPECT_EQ(sb.violation_count(), 0u);
}

TEST_F(EthFixture, MmioStatusReads) {
  gen.push(TxnDesc{true, 0, 0x1000, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return eth.frames_txed() >= 4; }, 500));
  gen.push(TxnDesc{false, 0, 0x0010, 0, 3, Burst::kIncr});  // beats txed
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 200));
  // The read returned the beats-transmitted counter; the generator's
  // pattern check ignores non-pattern values only if 0... so verify via
  // record count: no SLVERR and completion is enough here.
  EXPECT_EQ(gen.records()[1].resp, Resp::kOkay);
}

TEST_F(EthFixture, FifoBackpressuresLongBurst) {
  // FIFO of 64 beats, drain every 4 cycles: a 250-beat write must be
  // throttled to roughly the line rate, never dropped.
  EthernetConfig cfg;
  cfg.tx_fifo_beats = 64;
  cfg.drain_every = 4;
  Link l2;
  TrafficGenerator g2("g2", l2);
  EthernetPeripheral e2("e2", l2, cfg);
  sim::Simulator s2;
  s2.add(g2);
  s2.add(e2);
  s2.reset();
  g2.push(TxnDesc{true, 0, 0x1000, 249, 3, Burst::kIncr});
  ASSERT_TRUE(s2.run_until([&] { return g2.completed() >= 1; }, 5000));
  // 250 beats at 1 beat / 4 cycles minimum: latency >= ~(250-64)*4.
  EXPECT_GE(g2.records()[0].complete_cycle, (250u - 64u) * 4u);
  ASSERT_TRUE(s2.run_until([&] { return e2.frames_txed() >= 250; }, 2000));
}

TEST_F(EthFixture, HwResetClearsFifosAndInflight) {
  gen.push(TxnDesc{true, 0, 0x1000, 31, 3, Burst::kIncr});
  s.run(10);
  eth.hw_reset();
  s.run(2);
  EXPECT_EQ(eth.tx_fifo_level(), 0u);
  EXPECT_EQ(eth.hw_resets(), 1u);
}

TEST_F(EthFixture, LoopbackReadReturnsTxData) {
  gen.push(TxnDesc{true, 0, 0x1000, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return eth.frames_txed() >= 4; }, 500));
  gen.push(TxnDesc{false, 0, 0x1000, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 500));
  // Loopback returns the very pattern the generator wrote.
  EXPECT_EQ(gen.data_mismatches(), 0u);
}

TEST(IrqController, LatchClaimComplete) {
  sim::Wire<bool> src0, src1;
  soc::IrqController plic("plic");
  plic.add_source(src0);
  plic.add_source(src1);
  EXPECT_FALSE(plic.any_pending());
  src1.force(true);
  plic.tick();
  EXPECT_TRUE(plic.any_pending());
  EXPECT_EQ(plic.claim(), 1);
  EXPECT_FALSE(plic.any_pending());
  // Claimed sources do not re-latch while held.
  plic.tick();
  EXPECT_FALSE(plic.any_pending());
  plic.complete(1);
  src1.force(false);
  plic.tick();
  EXPECT_FALSE(plic.any_pending());
}

TEST(IrqController, PriorityIsLowestIndex) {
  sim::Wire<bool> a, b;
  soc::IrqController plic("plic");
  plic.add_source(a);
  plic.add_source(b);
  a.force(true);
  b.force(true);
  plic.tick();
  EXPECT_EQ(plic.claim(), 0);
  EXPECT_EQ(plic.claim(), 1);
  EXPECT_EQ(plic.claim(), -1);
}

TEST(ResetUnitTest, ReqAckHandshake) {
  sim::Wire<bool> req, ack;
  int resets = 0;
  soc::ResetUnit rst("rst", req, ack, [&] { ++resets; }, 3);
  sim::Simulator s;
  s.add(rst);
  s.reset();
  req.force(true);
  s.run(1);
  EXPECT_EQ(resets, 1);
  EXPECT_FALSE(ack.read());  // still resetting
  s.run(4);
  EXPECT_TRUE(ack.read());
  req.force(false);
  s.run(2);
  EXPECT_FALSE(ack.read());  // back to idle
  EXPECT_EQ(rst.resets_performed(), 1u);
}

TEST(ResetUnitTest, ZeroDurationAcksImmediately) {
  sim::Wire<bool> req, ack;
  soc::ResetUnit rst("rst", req, ack, nullptr, 0);
  sim::Simulator s;
  s.add(rst);
  s.reset();
  req.force(true);
  s.run(2);
  EXPECT_TRUE(ack.read());
}

}  // namespace
