#include <gtest/gtest.h>

#include "axi/burst_splitter.hpp"
#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/scoreboard.hpp"
#include "axi/traffic_gen.hpp"
#include "sim/kernel.hpp"
#include "tmu/tmu.hpp"

namespace {

using namespace axi;

struct SplitFixture : ::testing::Test {
  Link up, down;
  TrafficGenerator gen{"gen", up};
  BurstSplitter split{"split", up, down, /*max_len=*/3};  // 4-beat chunks
  MemorySubordinate mem{"mem", down};
  Scoreboard sb_up{"sb_up", up};
  Scoreboard sb_down{"sb_down", down};
  sim::Simulator s;

  void SetUp() override {
    gen.set_max_outstanding(1);  // splitter handles one txn per direction
    s.add(gen);
    s.add(split);
    s.add(mem);
    s.add(sb_up);
    s.add(sb_down);
    s.reset();
  }
};

TEST_F(SplitFixture, LongWriteSplitIntoChunks) {
  gen.push(TxnDesc{true, 0, 0x100, 15, 3, Burst::kIncr});  // 16 beats
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 1000));
  EXPECT_EQ(gen.records()[0].resp, Resp::kOkay);
  // Downstream saw 4 separate 4-beat writes.
  EXPECT_EQ(sb_down.completed_writes(), 4u);
  EXPECT_EQ(sb_up.completed_writes(), 1u);
  EXPECT_EQ(sb_up.violation_count(), 0u);
  EXPECT_EQ(sb_down.violation_count(), 0u);
  for (int b = 0; b < 16; ++b) {
    const Addr a = 0x100 + 8 * b;
    EXPECT_EQ(mem.peek_beat(a, 3), pattern_data(a)) << "beat " << b;
  }
}

TEST_F(SplitFixture, LongReadSplitAndRethreaded) {
  gen.push(TxnDesc{true, 0, 0x200, 15, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 1000));
  gen.push(TxnDesc{false, 0, 0x200, 15, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 1000));
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(sb_down.completed_reads(), 4u);
  EXPECT_EQ(sb_up.completed_reads(), 1u);  // RLAST only on the final beat
  EXPECT_EQ(sb_up.violation_count(), 0u);
}

TEST_F(SplitFixture, ShortBurstPassesUnsplit) {
  gen.push(TxnDesc{true, 0, 0x300, 2, 3, Burst::kIncr});  // 3 beats <= 4
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 500));
  EXPECT_EQ(sb_down.completed_writes(), 1u);
}

TEST_F(SplitFixture, NonMultipleLengthTailChunk) {
  gen.push(TxnDesc{true, 0, 0x400, 9, 3, Burst::kIncr});  // 10 = 4+4+2
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 1000));
  EXPECT_EQ(sb_down.completed_writes(), 3u);
  for (int b = 0; b < 10; ++b) {
    const Addr a = 0x400 + 8 * b;
    EXPECT_EQ(mem.peek_beat(a, 3), pattern_data(a));
  }
}

TEST_F(SplitFixture, ErrorResponseMerged) {
  Link u2, d2;
  TrafficGenerator g2("g2", u2);
  g2.set_max_outstanding(1);
  BurstSplitter sp2("sp2", u2, d2, 3);
  MemoryConfig cfg;
  cfg.error_base = 0x820;  // second chunk of a 16-beat write at 0x800
  cfg.error_end = 0x840;
  MemorySubordinate m2("m2", d2, cfg);
  sim::Simulator s2;
  s2.add(g2);
  s2.add(sp2);
  s2.add(m2);
  s2.reset();
  g2.push(TxnDesc{true, 0, 0x800, 15, 3, Burst::kIncr});
  ASSERT_TRUE(s2.run_until([&] { return g2.completed() >= 1; }, 1000));
  EXPECT_EQ(g2.records()[0].resp, Resp::kSlvErr);  // worst chunk wins
}

TEST_F(SplitFixture, BackToBackBursts) {
  for (int i = 0; i < 4; ++i) {
    gen.push(TxnDesc{true, 0, static_cast<Addr>(0x1000 + i * 0x100), 7, 3,
                     Burst::kIncr});
  }
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 4; }, 2000));
  EXPECT_EQ(sb_up.violation_count(), 0u);
  EXPECT_EQ(sb_down.completed_writes(), 8u);  // 4 x (8 beats / 4)
}

TEST(SplitWithTmu, TmuUpstreamOfSplitterSeesOriginalBurst) {
  // TMU monitors the original long transaction; the splitter below it
  // feeds a burst-limited endpoint. Healthy case + stall detection.
  Link l_gen, l_tmu_out, l_mem;
  TrafficGenerator gen("gen", l_gen);
  gen.set_max_outstanding(1);
  tmu::TmuConfig cfg;
  cfg.adaptive.enabled = true;
  cfg.adaptive.cycles_per_beat = 4;  // splitter adds per-chunk overhead
  tmu::Tmu monitor("tmu", l_gen, l_tmu_out, cfg);
  BurstSplitter split("split", l_tmu_out, l_mem, 3);
  MemorySubordinate mem("mem", l_mem);
  sim::Simulator s;
  s.add(gen);
  s.add(monitor);
  s.add(split);
  s.add(mem);
  s.reset();
  gen.push(TxnDesc{true, 0, 0x100, 31, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 2000));
  EXPECT_FALSE(monitor.any_fault());
  EXPECT_EQ(monitor.write_guard().stats().beats, 32u);
  // The Fc perf log shows the whole (split) transaction's data phase.
  ASSERT_EQ(monitor.write_guard().perf_log().size(), 1u);
  EXPECT_GE(monitor.write_guard().perf_log()[0].phase_cycles[3], 31u);
}

}  // namespace
