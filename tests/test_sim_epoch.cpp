// Epoch-isolation regressions for the per-simulator change-epoch
// context (sim/context.hpp): independent Simulators must not invalidate
// each other's settled-state caches — the prerequisite for running
// campaigns on a thread pool — while external (ambient) writes still
// conservatively invalidate every simulator on the thread.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/wire.hpp"

namespace {

// Flop -> +1 -> flop counter, as in test_sim_settle.
class DFlop : public sim::Module {
 public:
  DFlop(std::string name, sim::Wire<int>& d, sim::Wire<int>& q)
      : sim::Module(std::move(name)), d_(d), q_(q) {}
  void eval() override { q_.write(state_); }
  void tick() override { state_ = d_.read(); }
  void reset() override { state_ = 0; }

 private:
  sim::Wire<int>& d_;
  sim::Wire<int>& q_;
  int state_ = 0;
};

class Inc : public sim::Module {
 public:
  Inc(std::string name, sim::Wire<int>& in, sim::Wire<int>& out)
      : sim::Module(std::move(name)), in_(in), out_(out) {}
  void eval() override { out_.write(in_.read() + 1); }

 private:
  sim::Wire<int>& in_;
  sim::Wire<int>& out_;
};

// A module with a testbench knob that routes through the precise,
// module-bound notify_state_change().
class Gain : public sim::Module {
 public:
  Gain(std::string name, sim::Wire<int>& in, sim::Wire<int>& out)
      : sim::Module(std::move(name)), in_(in), out_(out) {}
  void eval() override { out_.write(in_.read() * gain_); }
  void set_gain(int g) {
    gain_ = g;
    notify_state_change();
  }

 private:
  sim::Wire<int>& in_;
  sim::Wire<int>& out_;
  int gain_ = 1;
};

struct Counter {
  sim::Wire<int> q, d;
  DFlop flop{"flop", d, q};
  Inc inc{"inc", q, d};
  sim::Simulator s;

  explicit Counter(
      sim::sched::SchedPolicy p = sim::sched::SchedPolicy::kEventDriven)
      : s(p) {
    s.add(inc);
    s.add(flop);
    s.reset();
  }
};

TEST(SimEpoch, SteppingOneSimulatorKeepsTheOtherSettled) {
  Counter a, b;
  const std::uint64_t b_passes = b.s.eval_passes();
  // Drive A hard; every wire write during A's settle is attributed to
  // A's context, so B's cache must stay valid...
  a.s.run(50);
  b.s.settle();
  EXPECT_EQ(b.s.eval_passes(), b_passes);
  // ...and symmetrically.
  const std::uint64_t a_passes = a.s.eval_passes();
  b.s.run(50);
  a.s.settle();
  EXPECT_EQ(a.s.eval_passes(), a_passes);
  EXPECT_EQ(a.q.read(), 50);
  EXPECT_EQ(b.q.read(), 50);
}

TEST(SimEpoch, InterleavedSteppingStaysSingleConvergence) {
  // The regression the global epoch caused: interleaving two simulators
  // forced a full re-settle per step. Per-context tracking keeps both on
  // the pinned per-cycle budget: one worklist drain of 3 module evals
  // under the event-driven default.
  Counter a, b;
  const std::uint64_t a0 = a.s.eval_passes();
  const std::uint64_t b0 = b.s.eval_passes();
  const std::uint64_t ae0 = a.s.module_evals();
  const std::uint64_t be0 = b.s.module_evals();
  for (int i = 0; i < 10; ++i) {
    a.s.step();
    b.s.step();
  }
  EXPECT_EQ(a.s.eval_passes() - a0, 10u);
  EXPECT_EQ(b.s.eval_passes() - b0, 10u);
  EXPECT_EQ(a.s.module_evals() - ae0, 30u);
  EXPECT_EQ(b.s.module_evals() - be0, 30u);
}

TEST(SimEpoch, InterleavedSteppingStaysSingleConvergenceFullSweep) {
  // Same pin under the legacy scheduler: 3 full passes per cycle.
  Counter a(sim::sched::SchedPolicy::kFullSweep);
  Counter b(sim::sched::SchedPolicy::kFullSweep);
  const std::uint64_t a0 = a.s.eval_passes();
  const std::uint64_t b0 = b.s.eval_passes();
  for (int i = 0; i < 10; ++i) {
    a.s.step();
    b.s.step();
  }
  EXPECT_EQ(a.s.eval_passes() - a0, 30u);
  EXPECT_EQ(b.s.eval_passes() - b0, 30u);
}

TEST(SimEpoch, AmbientWireWriteInvalidatesAllSimulatorsOnThread) {
  // A write outside any simulator scope cannot be attributed precisely;
  // it must conservatively invalidate every simulator on the thread.
  Counter a, b;
  a.s.step();
  b.s.step();
  const std::uint64_t a0 = a.s.eval_passes();
  const std::uint64_t b0 = b.s.eval_passes();
  a.q.force(41);  // testbench write, no simulator active
  a.s.settle();
  b.s.settle();
  EXPECT_GT(a.s.eval_passes(), a0);  // directly affected
  EXPECT_GT(b.s.eval_passes(), b0);  // conservatively re-settled
}

TEST(SimEpoch, CycleCallbackWritesInvalidateOtherSimulators) {
  // on_cycle callbacks are testbench code; a callback on sim A that
  // writes a stimulus wire read by sim B must land on the ambient
  // context so B re-settles (co-simulation coupling).
  sim::Wire<int> stim, echo;
  Gain g("g", stim, echo);
  sim::Simulator b;
  b.add(g);
  b.reset();

  Counter a;
  a.s.on_cycle([&](std::uint64_t) { stim.write(a.q.read()); });
  a.s.run(3);  // callback writes stim = 0, 1, 2
  b.settle();
  EXPECT_EQ(echo.read(), 2);
}

TEST(SimEpoch, BoundModuleNotifyInvalidatesOnlyItsSimulator) {
  sim::Wire<int> in_a, out_a, in_b, out_b;
  Gain ga("ga", in_a, out_a);
  Gain gb("gb", in_b, out_b);
  sim::Simulator sa, sb;
  sa.add(ga);
  sb.add(gb);
  sa.reset();
  sb.reset();
  in_a.write(3);
  in_b.write(3);
  sa.settle();
  sb.settle();
  const std::uint64_t a0 = sa.eval_passes();
  const std::uint64_t b0 = sb.eval_passes();
  // set_gain() notifies through the module's bound context: precise.
  ga.set_gain(10);
  sa.settle();
  sb.settle();
  EXPECT_GT(sa.eval_passes(), a0);
  EXPECT_EQ(sb.eval_passes(), b0);
  EXPECT_EQ(out_a.read(), 30);
  EXPECT_EQ(out_b.read(), 3);
}

TEST(SimEpoch, ContextBindingSetByAdd) {
  sim::Wire<int> in, out;
  Gain g("g", in, out);
  EXPECT_EQ(g.context(), nullptr);
  sim::Simulator s;
  s.add(g);
  EXPECT_EQ(g.context(), &s.context());
}

TEST(SimEpoch, ModuleOutlivingSimulatorIsUnbound) {
  sim::Wire<int> in, out;
  Gain g("g", in, out);
  {
    sim::Simulator s;
    s.add(g);
    s.reset();
    EXPECT_EQ(g.context(), &s.context());
  }
  // The weak context binding expired with the simulator; notifications
  // fall back to the ambient context instead of dereferencing freed
  // memory.
  EXPECT_EQ(g.context(), nullptr);
  const std::uint64_t e0 = sim::ambient_epoch();
  g.set_gain(2);
  EXPECT_EQ(sim::ambient_epoch(), e0 + 1);
}

TEST(SimEpoch, TestLocalModuleMayDieBeforeSimulator) {
  // The opposite order (the baselines-fixture pattern): a module
  // registered for one test body dies before the Simulator. Destroying
  // the simulator afterwards must be safe — validated under ASan.
  sim::Simulator s;  // declared first: destroyed last
  sim::Wire<int> in, out;
  {
    Gain g("g", in, out);
    s.add(g);
    s.reset();
    in.write(2);
    s.settle();
    EXPECT_EQ(out.read(), 2);
  }  // g gone; s must not touch it during destruction
}

TEST(SimEpoch, RebindToSecondSimulatorSurvivesFirstsDestruction) {
  sim::Wire<int> in, out;
  Gain g("g", in, out);
  sim::Simulator s2;
  {
    sim::Simulator s1;
    s1.add(g);
    s2.add(g);  // latest wins
    EXPECT_EQ(g.context(), &s2.context());
  }
  // s1's destruction must not disturb the newer binding.
  EXPECT_EQ(g.context(), &s2.context());
}

TEST(SimEpoch, SimulatorsOnSeparateThreadsRunIndependently) {
  // One simulator per thread, stepping concurrently: per-thread ambient
  // contexts and per-simulator contexts mean no shared mutable state.
  // Run under TSan to prove race-freedom; assert behavior here.
  constexpr int kThreads = 4;
  constexpr int kCycles = 200;
  std::vector<int> finals(kThreads, -1);
  std::vector<std::uint64_t> passes(kThreads, 0);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, &finals, &passes] {
      Counter c;
      const std::uint64_t p0 = c.s.module_evals();
      c.s.run(kCycles);
      finals[static_cast<std::size_t>(t)] = c.q.read();
      passes[static_cast<std::size_t>(t)] = c.s.module_evals() - p0;
    });
  }
  for (auto& th : pool) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(finals[static_cast<std::size_t>(t)], kCycles);
    // Single-settle invariant holds on every thread: one 3-eval drain
    // per cycle (event-driven default; the trace hooks are thread_local
    // so concurrent drains share nothing).
    EXPECT_EQ(passes[static_cast<std::size_t>(t)],
              static_cast<std::uint64_t>(3 * kCycles));
  }
}

}  // namespace
