#include <gtest/gtest.h>

#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/wire.hpp"

namespace {

// A register that copies its input wire on every clock edge.
class DFlop : public sim::Module {
 public:
  DFlop(std::string name, sim::Wire<int>& d, sim::Wire<int>& q)
      : sim::Module(std::move(name)), d_(d), q_(q) {}
  void eval() override { q_.write(state_); }
  void tick() override { state_ = d_.read(); }
  void reset() override { state_ = 0; }

 private:
  sim::Wire<int>& d_;
  sim::Wire<int>& q_;
  int state_ = 0;
};

// Combinational +1.
class Inc : public sim::Module {
 public:
  Inc(std::string name, sim::Wire<int>& in, sim::Wire<int>& out)
      : sim::Module(std::move(name)), in_(in), out_(out) {}
  void eval() override { out_.write(in_.read() + 1); }

 private:
  sim::Wire<int>& in_;
  sim::Wire<int>& out_;
};

TEST(SimKernel, CounterFromFlopPlusIncrement) {
  sim::Wire<int> q, d;
  DFlop flop("flop", d, q);
  Inc inc("inc", q, d);
  sim::Simulator s;
  // Register in an order that requires settling (inc depends on flop).
  s.add(inc);
  s.add(flop);
  s.reset();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(q.read(), i);
    s.step();
  }
  EXPECT_EQ(s.cycle(), 10u);
}

TEST(SimKernel, SettleIsIdempotent) {
  sim::Wire<int> q, d;
  DFlop flop("flop", d, q);
  Inc inc("inc", q, d);
  sim::Simulator s;
  s.add(flop);
  s.add(inc);
  s.reset();
  s.settle();
  const int v1 = d.read();
  s.settle();
  EXPECT_EQ(d.read(), v1);
}

class Oscillator : public sim::Module {
 public:
  Oscillator(std::string name, sim::Wire<int>& w)
      : sim::Module(std::move(name)), w_(w) {}
  void eval() override { w_.write(1 - w_.read()); }

 private:
  sim::Wire<int>& w_;
};

TEST(SimKernel, CombinationalLoopDetected) {
  sim::Wire<int> w;
  Oscillator osc("osc", w);
  sim::Simulator s;
  s.add(osc);
  EXPECT_THROW(s.step(), sim::ConvergenceError);
}

TEST(SimKernel, RunUntilPredicate) {
  sim::Wire<int> q, d;
  DFlop flop("flop", d, q);
  Inc inc("inc", q, d);
  sim::Simulator s;
  s.add(flop);
  s.add(inc);
  s.reset();
  EXPECT_TRUE(s.run_until([&] { return q.read() == 7; }, 100));
  EXPECT_EQ(q.read(), 7);
  EXPECT_FALSE(s.run_until([&] { return q.read() == 5; }, 10));
}

TEST(SimKernel, ResetRestoresState) {
  sim::Wire<int> q, d;
  DFlop flop("flop", d, q);
  Inc inc("inc", q, d);
  sim::Simulator s;
  s.add(flop);
  s.add(inc);
  s.reset();
  s.run(5);
  EXPECT_EQ(q.read(), 5);
  s.reset();
  EXPECT_EQ(q.read(), 0);
  EXPECT_EQ(s.cycle(), 0u);
}

TEST(SimKernel, CycleCallbackSeesSettledValues) {
  sim::Wire<int> q, d;
  DFlop flop("flop", d, q);
  Inc inc("inc", q, d);
  sim::Simulator s;
  s.add(flop);
  s.add(inc);
  int sum = 0;
  s.on_cycle([&](std::uint64_t) { sum += d.read(); });
  s.reset();
  s.run(3);  // d = 1, 2, 3 at the three edges
  EXPECT_EQ(sum, 6);
}

TEST(Rng, DeterministicAcrossInstances) {
  sim::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeBounds) {
  sim::Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.range(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, ChanceExtremes) {
  sim::Rng r(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Stats, RunningStatsBasics) {
  sim::RunningStats st;
  for (double x : {1.0, 2.0, 3.0, 4.0}) st.add(x);
  EXPECT_EQ(st.count(), 4u);
  EXPECT_DOUBLE_EQ(st.mean(), 2.5);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 4.0);
  EXPECT_NEAR(st.stddev(), 1.2909944, 1e-6);
}

TEST(Stats, HistogramPercentiles) {
  sim::Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.percentile(0.5), 50u);
  EXPECT_EQ(h.percentile(0.99), 99u);
  EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(Stats, EmptyHistogram) {
  sim::Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
}

}  // namespace
