// Snapshot round-trip fuzz: random nested hier_grid topologies under
// both scheduler policies, captured at random cycles, forked, run on —
// the forked netlist's recaptured state must equal the original's byte
// for byte. Plus full-SoC coverage (Cheshire: TMU + MMIO + PLIC + CPU
// stub + LLC + Ethernet + iDMA) and a mid-replay capture of the
// trace-replay traffic generator.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "snapshot/snapshot.hpp"
#include "soc/builder.hpp"
#include "soc/topologies.hpp"
#include "trace/format.hpp"
#include "trace/recorder.hpp"

namespace {

using snapshot::Snapshot;

// Runs the capture/fork/continue contract on `desc`: capture at
// `at_cycle`, fork, run both sides `extra` more cycles, then the two
// recaptured states must be byte-identical (the strongest equivalence —
// every wire, queue, RNG word and counter agrees).
void expect_fork_equivalent(const soc::SocDesc& desc, std::uint64_t at_cycle,
                            std::uint64_t extra) {
  const std::unique_ptr<soc::Soc> orig = soc::SocBuilder::build(desc);
  orig->sim().run(at_cycle);
  const Snapshot snap = snapshot::capture(*orig);
  EXPECT_EQ(snap.cycle, at_cycle);

  // capture() is read-only: recapturing without stepping is identical.
  EXPECT_EQ(snapshot::capture(*orig), snap);

  const std::unique_ptr<soc::Soc> forked = snapshot::fork(snap, desc);
  EXPECT_EQ(forked->sim().cycle(), at_cycle);

  orig->sim().run(extra);
  forked->sim().run(extra);
  const Snapshot a = snapshot::capture(*orig);
  const Snapshot b = snapshot::capture(*forked);
  EXPECT_EQ(a.cycle, at_cycle + extra);
  EXPECT_EQ(a, b) << desc.name << " diverged after forking at cycle "
                  << at_cycle;
  EXPECT_EQ(orig->metrics().snapshot().to_json(),
            forked->metrics().snapshot().to_json());
}

TEST(SnapshotRoundtrip, FuzzNestedHierGridTopologies) {
  sim::Rng rng(0x5EED5EED);
  for (int it = 0; it < 10; ++it) {
    const unsigned n_mgr = static_cast<unsigned>(rng.range(1, 3));
    const unsigned n_cluster = static_cast<unsigned>(rng.range(1, 3));
    const unsigned per_cluster = static_cast<unsigned>(rng.range(1, 2));
    const unsigned active = static_cast<unsigned>(rng.range(1, n_mgr));
    soc::SocDesc d = soc::hier_grid_desc(n_mgr, n_cluster, per_cluster, active);
    d.policy = (it % 2 == 0) ? sim::sched::SchedPolicy::kEventDriven
                             : sim::sched::SchedPolicy::kFullSweep;
    expect_fork_equivalent(d, rng.range(0, 400), rng.range(1, 300));
  }
}

TEST(SnapshotRoundtrip, CheshireFullSocBothPolicies) {
  tmu::TmuConfig cfg;
  cfg.variant = tmu::Variant::kFullCounter;
  for (const sim::sched::SchedPolicy policy :
       {sim::sched::SchedPolicy::kEventDriven,
        sim::sched::SchedPolicy::kFullSweep}) {
    soc::SocDesc d = soc::cheshire_desc(cfg);
    d.policy = policy;
    expect_fork_equivalent(d, 500, 400);
  }
}

TEST(SnapshotRoundtrip, CaptureAtCycleZero) {
  // Post-reset, pre-run state is a legal capture point.
  expect_fork_equivalent(soc::ip_testbench_desc(), 0, 200);
}

TEST(SnapshotRoundtrip, MidReplayTraceTrafficGen) {
  // Record a stream from the IP testbench, replay it on a second desc,
  // and snapshot in the middle of the replay: the replayer's channel
  // plans and presentation indices must fork exactly.
  soc::SocDesc rec_desc = soc::ip_testbench_desc();
  rec_desc.managers.front().traffic.enabled = true;
  rec_desc.managers.front().traffic.p_new_txn = 0.4;
  rec_desc.traces.push_back(soc::TraceDesc{"trace.gen", "gen.out"});
  const std::unique_ptr<soc::Soc> rec = soc::SocBuilder::build(rec_desc);
  rec->sim().run(600);
  const trace::TraceBuffer buf =
      rec->get<trace::Recorder>("trace.gen").take();
  ASSERT_GT(buf.records.size(), 0u);
  const std::string path = "snapshot_roundtrip_replay.axitrace";
  ASSERT_TRUE(trace::write_trace_file(path, buf));

  soc::SocDesc rep_desc = soc::ip_testbench_desc();
  rep_desc.managers.front().kind = soc::ManagerKind::kTraceReplay;
  rep_desc.managers.front().trace_path = path;
  expect_fork_equivalent(rep_desc, 250, 450);
  std::remove(path.c_str());
}

}  // namespace
