// campaign::remote tests: spec serialization (round-trip + hash
// sensitivity fuzz), partial-report slices (round-trip, checksum and
// corruption rejection), the byte-identical merge guarantee across
// arbitrary shard splits and arrival orders, and the fault-tolerant
// Dispatcher — including real forked campaign_worker processes that
// crash, hang and emit garbage mid-campaign (TMU_WORKER_FAIL).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/remote.hpp"
#include "sim/logger.hpp"
#include "soc/topologies.hpp"
#include "tmu/config.hpp"

namespace {

using campaign::remote::CampaignSpec;
using campaign::remote::Dispatcher;
using campaign::remote::DispatcherOptions;
using campaign::remote::ReportSlice;
using fault::FaultPoint;
using tmu::Variant;

#ifndef TMU_CAMPAIGN_WORKER_BIN
#define TMU_CAMPAIGN_WORKER_BIN ""
#endif

// ---------------------------------------------------------------------------
// Fixtures and helpers
// ---------------------------------------------------------------------------

class CampaignRemote : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = sim::global_log_level();
    sim::global_log_level() = sim::LogLevel::kOff;
    unsetenv("TMU_WORKER_FAIL");
    unsetenv("TMU_WORKER_FAIL_TOKEN");
  }
  void TearDown() override {
    sim::global_log_level() = saved_;
    unsetenv("TMU_WORKER_FAIL");
    unsetenv("TMU_WORKER_FAIL_TOKEN");
  }

 private:
  sim::LogLevel saved_ = sim::LogLevel::kWarn;
};

campaign::TrialSpec proto(Variant v, FaultPoint p) {
  campaign::TrialSpec spec;
  spec.cfg.variant = v;
  spec.cfg.tc_total_budget = 200;
  spec.cfg.adaptive.cycles_per_beat = 3;
  spec.cfg.adaptive.cycles_per_ahead = 6;
  spec.point = p;
  spec.traffic.enabled = true;
  spec.traffic.p_new_txn = 0.25;
  spec.traffic.max_outstanding = 6;
  spec.traffic.len_max = 7;
  spec.inject_delay_max = 300;
  spec.detect_budget = 3000;
  return spec;
}

/// A small mixed campaign: two fault scenarios (both variants), one
/// healthy soak, and one scenario on a second topology — so spec files
/// carry a two-entry topology table and RLE trial runs.
CampaignSpec mixed_spec(std::size_t trials_per_scenario = 4) {
  CampaignSpec spec;
  spec.base_seed = 0xA5A5ull;
  spec.scenarios.push_back(campaign::make_scenario(
      "fc/aw_ready_stuck", proto(Variant::kFullCounter, FaultPoint::kAwReadyStuck),
      trials_per_scenario));
  spec.scenarios.push_back(campaign::make_scenario(
      "tc/r_valid_stuck", proto(Variant::kTinyCounter, FaultPoint::kRValidStuck),
      trials_per_scenario));
  campaign::TrialSpec healthy = proto(Variant::kFullCounter, FaultPoint::kNone);
  healthy.soak_cycles = 2000;
  spec.scenarios.push_back(
      campaign::make_scenario("healthy", healthy, trials_per_scenario));
  campaign::TrialSpec grid = proto(Variant::kFullCounter, FaultPoint::kNone);
  grid.desc = soc::grid_desc(2, 2, 1);  // second topology-table entry
  spec.scenarios.push_back(campaign::make_scenario("grid", grid, 2));
  return spec;
}

/// Fast synthetic trial body for serde/merge tests: no netlist, but
/// rich deterministic results — fractional doubles through the stats
/// path, histograms, failures and timeouts — purely from the seed
/// (which the engine derives from the global trial index).
campaign::TrialResult synthetic_trial(const campaign::TrialSpec& s) {
  if (s.seed % 7 == 0) throw std::runtime_error("synthetic failure");
  campaign::TrialResult r;
  r.detected = s.point != FaultPoint::kNone && s.seed % 3 != 0;
  r.recovered = r.detected && s.exercise_recovery;
  r.timed_out = s.seed % 11 == 0;
  r.inject_delay = s.seed % 97;
  r.detect_cycle = 100 + s.seed % 1000;
  r.latency = 1 + s.seed % 41;
  r.cycles_run = 1000 + s.seed % 255;
  r.eval_passes = 3 * r.cycles_run;
  r.completed_txns = s.seed % 50;
  r.metrics.counters["gen.txns"] = s.seed % 1000;
  auto& lat = r.metrics.stats["probe.lat"];
  for (int i = 0; i < 5; ++i) {
    lat.add(0.1 + static_cast<double>((s.seed >> i) % 100) / 7.0);
  }
  for (int i = 0; i < 8; ++i) {
    r.metrics.histograms["probe.occ"].add((s.seed >> i) % 6);
  }
  return r;
}

campaign::Report engine_report(const CampaignSpec& spec,
                               const campaign::TrialFn& fn) {
  return campaign::Engine({1, spec.base_seed}).run(spec.scenarios, fn);
}

/// Slices the campaign at the given cut points (plus [last, total)),
/// via run_range with the synthetic body.
std::vector<ReportSlice> slice_at(const CampaignSpec& spec,
                                  std::vector<std::uint64_t> cuts,
                                  const campaign::TrialFn& fn) {
  cuts.insert(cuts.begin(), 0);
  cuts.push_back(spec.total_trials());
  std::vector<ReportSlice> slices;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    slices.push_back(
        campaign::remote::run_range(spec, cuts[i], cuts[i + 1], {}, fn));
  }
  return slices;
}

// ---------------------------------------------------------------------------
// Spec serialization
// ---------------------------------------------------------------------------

TEST_F(CampaignRemote, SpecRoundTripsByteIdentical) {
  const CampaignSpec spec = mixed_spec();
  const std::string json = spec.to_json();
  EXPECT_NE(json.find("\"schema\": \"tmu-campaign-spec-v1\""),
            std::string::npos);
  const CampaignSpec back = CampaignSpec::from_json(json);
  EXPECT_TRUE(back == spec);
  EXPECT_EQ(back.to_json(), json);
  EXPECT_EQ(back.hash(), spec.hash());
  EXPECT_EQ(back.topologies_hash(), spec.topologies_hash());
  EXPECT_EQ(spec.total_trials(), 14u);
}

TEST_F(CampaignRemote, SpecRunLengthEncodesIdenticalTrials) {
  // 4 scenarios, 14 trials, but only one run entry per scenario: count
  // appears, and the doc stays small.
  const CampaignSpec spec = mixed_spec();
  const std::string json = spec.to_json();
  EXPECT_NE(json.find("\"count\": 4"), std::string::npos);
  // Two distinct topologies -> a two-entry table, referenced by index.
  EXPECT_NE(json.find("\"topology\": 1"), std::string::npos);

  // An interleaved scenario (A A B A) must preserve order: 3 runs.
  CampaignSpec inter;
  campaign::Scenario sc;
  sc.label = "interleaved";
  campaign::TrialSpec a = proto(Variant::kFullCounter, FaultPoint::kAwReadyStuck);
  campaign::TrialSpec b = a;
  b.detect_budget = 1234;
  sc.trials = {a, a, b, a};
  inter.scenarios = {sc};
  const CampaignSpec back = CampaignSpec::from_json(inter.to_json());
  EXPECT_TRUE(back == inter);
  ASSERT_EQ(back.scenarios[0].trials.size(), 4u);
  EXPECT_EQ(back.scenarios[0].trials[2].detect_budget, 1234u);
}

TEST_F(CampaignRemote, SpecHashIsSensitiveToEveryField) {
  // Fuzz the hash: each single-field mutation must change the campaign
  // fingerprint (otherwise a slice from a drifted spec could merge).
  const CampaignSpec base = mixed_spec();
  const std::uint64_t h0 = base.hash();
  std::vector<std::function<void(CampaignSpec&)>> mutations = {
      [](CampaignSpec& s) { s.base_seed ^= 1; },
      [](CampaignSpec& s) { s.scenarios[0].label += "x"; },
      [](CampaignSpec& s) { s.scenarios[0].trials.pop_back(); },
      [](CampaignSpec& s) { s.scenarios.pop_back(); },
      [](CampaignSpec& s) { s.scenarios[0].trials[1].seed = 77; },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].cfg.tc_total_budget++; },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].cfg.variant = Variant::kTinyCounter; },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].cfg.adaptive.enabled = false; },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].point = FaultPoint::kBValidStuck; },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].traffic.p_new_txn = 0.75; },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].traffic.len_max = 15; },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].inject_delay_max++; },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].detect_budget++; },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].soak_cycles++; },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].max_cycles = 9999; },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].warmup_cycles = 300; },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].exercise_recovery = true; },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].trace_links.push_back("gen.out"); },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].desc = soc::grid_desc(3, 3, 1); },
      [](CampaignSpec& s) { s.scenarios[0].trials[0].desc.name += "x"; },
  };
  std::set<std::uint64_t> seen{h0};
  for (std::size_t i = 0; i < mutations.size(); ++i) {
    CampaignSpec mutated = mixed_spec();
    mutations[i](mutated);
    const std::uint64_t h = mutated.hash();
    EXPECT_NE(h, h0) << "mutation " << i << " did not change the hash";
    // Round-trip stability holds for every mutant too.
    const CampaignSpec back = CampaignSpec::from_json(mutated.to_json());
    EXPECT_EQ(back.hash(), h) << "mutation " << i;
    seen.insert(h);
  }
  // Distinct mutations land on distinct hashes (no trivial collisions).
  EXPECT_EQ(seen.size(), mutations.size() + 1);
}

TEST_F(CampaignRemote, SpecTopologiesHashTracksOnlyTopologies) {
  const CampaignSpec base = mixed_spec();
  CampaignSpec other = mixed_spec();
  other.base_seed ^= 42;  // spec drift, same netlists
  EXPECT_NE(other.hash(), base.hash());
  EXPECT_EQ(other.topologies_hash(), base.topologies_hash());
  CampaignSpec retopo = mixed_spec();
  retopo.scenarios[3].trials[0].desc = soc::grid_desc(4, 4, 2);
  EXPECT_NE(retopo.topologies_hash(), base.topologies_hash());
}

TEST_F(CampaignRemote, SpecRejectsMalformedDocuments) {
  const CampaignSpec spec = mixed_spec();
  const std::string good = spec.to_json();
  // Wrong schema tag.
  {
    std::string bad = good;
    bad.replace(bad.find("tmu-campaign-spec-v1"), 20, "tmu-campaign-spec-v9");
    EXPECT_THROW(CampaignSpec::from_json(bad), std::invalid_argument);
  }
  // Unknown key.
  {
    std::string bad = good;
    bad.insert(bad.find("\"base_seed\""), "\"surprise\": 1,\n  ");
    EXPECT_THROW(CampaignSpec::from_json(bad), std::invalid_argument);
  }
  // Unknown fault point name.
  {
    std::string bad = good;
    const std::size_t at = bad.find("\"point\": \"aw_ready_stuck\"");
    ASSERT_NE(at, std::string::npos);
    bad.replace(at, 25, "\"point\": \"warp_core_breach\"");
    EXPECT_THROW(CampaignSpec::from_json(bad), std::invalid_argument);
  }
  // Topology table hash that does not match its desc document.
  {
    std::string bad = good;
    const std::size_t at = bad.find("\"hash\": \"");
    ASSERT_NE(at, std::string::npos);
    bad[at + 10] = bad[at + 10] == '0' ? '1' : '0';
    EXPECT_THROW(CampaignSpec::from_json(bad), std::invalid_argument);
  }
  // Out-of-range topology reference.
  {
    std::string bad = good;
    const std::size_t at = bad.find("\"topology\": 1");
    ASSERT_NE(at, std::string::npos);
    bad.replace(at, 13, "\"topology\": 7");
    EXPECT_THROW(CampaignSpec::from_json(bad), std::invalid_argument);
  }
  // Zero-count run.
  {
    std::string bad = good;
    const std::size_t at = bad.find("\"count\": 4");
    ASSERT_NE(at, std::string::npos);
    bad.replace(at, 10, "\"count\": 0");
    EXPECT_THROW(CampaignSpec::from_json(bad), std::invalid_argument);
  }
  // Truncation and trailing garbage.
  EXPECT_THROW(CampaignSpec::from_json(good.substr(0, good.size() / 2)),
               std::invalid_argument);
  EXPECT_THROW(CampaignSpec::from_json(good + "x"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Report slices
// ---------------------------------------------------------------------------

TEST_F(CampaignRemote, SliceRoundTripsByteIdentical) {
  const CampaignSpec spec = mixed_spec();
  const ReportSlice slice =
      campaign::remote::run_range(spec, 3, 11, {}, synthetic_trial);
  EXPECT_EQ(slice.begin, 3u);
  EXPECT_EQ(slice.end, 11u);
  EXPECT_EQ(slice.spec_hash, spec.hash());
  EXPECT_EQ(slice.topology_hash, spec.topologies_hash());
  const std::string json = slice.to_json();
  EXPECT_NE(json.find("\"schema\": \"tmu-campaign-slice-v1\""),
            std::string::npos);
  const ReportSlice back = ReportSlice::from_json(json);
  EXPECT_EQ(back.to_json(), json);
  ASSERT_EQ(back.results.size(), 8u);
  for (std::size_t i = 0; i < back.results.size(); ++i) {
    EXPECT_EQ(back.results[i].latency, slice.results[i].latency);
    EXPECT_EQ(back.results[i].failed, slice.results[i].failed);
  }
}

TEST_F(CampaignRemote, SliceRejectsCorruption) {
  const CampaignSpec spec = mixed_spec();
  const ReportSlice slice =
      campaign::remote::run_range(spec, 0, 6, {}, synthetic_trial);
  const std::string good = slice.to_json();
  EXPECT_NO_THROW(ReportSlice::from_json(good));

  // A flipped digit inside a result value: still valid JSON, caught by
  // the checksum.
  {
    std::string bad = good;
    const std::size_t at = bad.find("\"cycles_run\": 1");
    ASSERT_NE(at, std::string::npos);
    bad.replace(at + 14, 1, "2");
    EXPECT_THROW(ReportSlice::from_json(bad), std::invalid_argument);
  }
  // A tampered checksum field itself.
  {
    std::string bad = good;
    const std::size_t at = bad.find("\"checksum\": \"");
    ASSERT_NE(at, std::string::npos);
    bad[at + 13] = bad[at + 13] == 'a' ? 'b' : 'a';
    EXPECT_THROW(ReportSlice::from_json(bad), std::invalid_argument);
  }
  // Result-count / range disagreement.
  {
    std::string bad = good;
    const std::size_t at = bad.find("\"end\": 6");
    ASSERT_NE(at, std::string::npos);
    bad.replace(at, 8, "\"end\": 7");
    EXPECT_THROW(ReportSlice::from_json(bad), std::invalid_argument);
  }
  // Plain garbage (what a corrupt worker emits) and truncation.
  EXPECT_THROW(ReportSlice::from_json("{ this is not a report slice ]\n"),
               std::invalid_argument);
  EXPECT_THROW(ReportSlice::from_json(good.substr(0, good.size() - 40)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Byte-identical merge
// ---------------------------------------------------------------------------

TEST_F(CampaignRemote, MergeIsByteIdenticalForAnyShardSplit) {
  const CampaignSpec spec = mixed_spec();  // 14 trials
  const std::string expected = engine_report(spec, synthetic_trial).to_json();
  ASSERT_NE(expected.find("\"failed_trials\""), std::string::npos);

  const std::vector<std::vector<std::uint64_t>> splits = {
      {},                            // 1 slice: the whole campaign
      {7},                           // 2 even slices
      {5, 9},                        // 3 uneven slices
      {1, 2, 3, 8, 12, 13},          // 7 slices, very uneven
      {4, 4, 10},                    // contains an empty slice
  };
  for (const auto& cuts : splits) {
    std::vector<ReportSlice> slices = slice_at(spec, cuts, synthetic_trial);
    // Out-of-order arrival: reverse + rotate before merging.
    std::reverse(slices.begin(), slices.end());
    if (slices.size() > 2) {
      std::rotate(slices.begin(), slices.begin() + 1, slices.end());
    }
    const campaign::Report merged =
        campaign::remote::merge_slices(spec, slices);
    EXPECT_EQ(merged.to_json(), expected)
        << "split of " << slices.size() << " slices diverged";
  }
}

TEST_F(CampaignRemote, MergeIsByteIdenticalAfterSliceSerialization) {
  // The full remote path: every slice serialized and reparsed (as if it
  // crossed a process/file boundary) before merging.
  const CampaignSpec spec = mixed_spec();
  const std::string expected = engine_report(spec, synthetic_trial).to_json();
  std::vector<ReportSlice> slices = slice_at(spec, {3, 9}, synthetic_trial);
  std::vector<ReportSlice> reparsed;
  for (const ReportSlice& s : slices) {
    reparsed.push_back(ReportSlice::from_json(s.to_json()));
  }
  EXPECT_EQ(campaign::remote::merge_slices(spec, reparsed).to_json(),
            expected);
}

TEST_F(CampaignRemote, MergeMatchesEngineOnRealFaultTrials) {
  // Real run_fault_trial netlists, split across slices: the merged
  // report must equal the in-process engine's byte-for-byte.
  CampaignSpec spec;
  spec.base_seed = 0xD15EA5Eull;
  spec.scenarios.push_back(campaign::make_scenario(
      "fc/b_valid_stuck", proto(Variant::kFullCounter, FaultPoint::kBValidStuck),
      3));
  spec.scenarios.push_back(campaign::make_scenario(
      "tc/aw_ready_stuck", proto(Variant::kTinyCounter, FaultPoint::kAwReadyStuck),
      3));
  const std::string expected =
      campaign::Engine({1, spec.base_seed}).run(spec.scenarios).to_json();
  std::vector<ReportSlice> slices =
      slice_at(spec, {2, 5}, campaign::run_fault_trial);
  std::swap(slices[0], slices[2]);
  EXPECT_EQ(campaign::remote::merge_slices(spec, slices).to_json(), expected);
}

TEST_F(CampaignRemote, MergeRejectsForeignOverlappingOrMissingSlices) {
  const CampaignSpec spec = mixed_spec();
  const std::vector<ReportSlice> slices =
      slice_at(spec, {7}, synthetic_trial);

  // A slice from a different campaign spec.
  {
    std::vector<ReportSlice> bad = slices;
    bad[0].spec_hash ^= 1;
    EXPECT_THROW(campaign::remote::merge_slices(spec, bad),
                 std::invalid_argument);
  }
  // A slice claiming different topologies.
  {
    std::vector<ReportSlice> bad = slices;
    bad[1].topology_hash ^= 1;
    EXPECT_THROW(campaign::remote::merge_slices(spec, bad),
                 std::invalid_argument);
  }
  // Gap: second half missing.
  EXPECT_THROW(campaign::remote::merge_slices(spec, {slices[0]}),
               std::invalid_argument);
  // Overlap: first half twice plus the second half.
  EXPECT_THROW(
      campaign::remote::merge_slices(spec, {slices[0], slices[0], slices[1]}),
      std::invalid_argument);
  // Range/result-count disagreement.
  {
    std::vector<ReportSlice> bad = slices;
    bad[0].results.pop_back();
    EXPECT_THROW(campaign::remote::merge_slices(spec, bad),
                 std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

/// A campaign of real fault trials, sized for multi-process tests.
CampaignSpec dispatcher_spec() {
  CampaignSpec spec;
  spec.base_seed = 0xFA117ull;
  spec.scenarios.push_back(campaign::make_scenario(
      "fc/aw_ready_stuck", proto(Variant::kFullCounter, FaultPoint::kAwReadyStuck),
      8));
  spec.scenarios.push_back(campaign::make_scenario(
      "tc/r_valid_stuck", proto(Variant::kTinyCounter, FaultPoint::kRValidStuck),
      8));
  return spec;
}

std::string worker_bin() { return TMU_CAMPAIGN_WORKER_BIN; }

TEST_F(CampaignRemote, DispatcherInProcessFallbackMatchesEngine) {
  const CampaignSpec spec = dispatcher_spec();
  const std::string expected =
      campaign::Engine({1, spec.base_seed}).run(spec.scenarios).to_json();
  DispatcherOptions opts;
  opts.worker_binary = "";  // no processes: pure in-process slicing
  opts.workers = 3;
  opts.shards = 5;
  Dispatcher d(opts);
  EXPECT_EQ(d.run(spec).to_json(), expected);
  EXPECT_EQ(d.stats().spawned, 0u);
}

TEST_F(CampaignRemote, DispatcherRunsRealWorkersByteIdentical) {
  ASSERT_FALSE(worker_bin().empty());
  const CampaignSpec spec = dispatcher_spec();
  const std::string expected =
      campaign::Engine({1, spec.base_seed}).run(spec.scenarios).to_json();
  DispatcherOptions opts;
  opts.worker_binary = worker_bin();
  opts.workers = 4;
  opts.poll_interval_ms = 5;
  Dispatcher d(opts);
  EXPECT_EQ(d.run(spec).to_json(), expected);
  EXPECT_GE(d.stats().spawned, 4u);
  EXPECT_EQ(d.stats().crashed, 0u);
  EXPECT_EQ(d.stats().hung, 0u);
  EXPECT_EQ(d.stats().corrupt, 0u);
  EXPECT_EQ(d.stats().fallback_ranges, 0u);
}

TEST_F(CampaignRemote, DispatcherSurvivesCrashHangAndCorruptWorkers) {
  // The acceptance gate: one worker crashes, one hangs, one emits
  // garbage — all mid-campaign — and the merged report is still
  // byte-identical to the clean single-process run.
  ASSERT_FALSE(worker_bin().empty());
  const CampaignSpec spec = dispatcher_spec();  // 16 trials
  const std::string expected =
      campaign::Engine({1, spec.base_seed}).run(spec.scenarios).to_json();

  const std::string token =
      ::testing::TempDir() + "remote_fail_token_" +
      std::to_string(::getpid());
  // 4 shards of 4 trials: the directives land in three different
  // workers' ranges; the fourth runs clean.
  setenv("TMU_WORKER_FAIL", "crash@1,hang@5,corrupt@9", 1);
  setenv("TMU_WORKER_FAIL_TOKEN", token.c_str(), 1);

  DispatcherOptions opts;
  opts.worker_binary = worker_bin();
  opts.workers = 4;
  opts.shards = 4;
  opts.poll_interval_ms = 5;
  opts.deadline_ms = 1500;  // reap the hung worker quickly
  opts.retry_backoff_ms = 10;
  Dispatcher d(opts);
  const campaign::Report rep = d.run(spec);
  EXPECT_EQ(rep.to_json(), expected);
  EXPECT_GE(d.stats().crashed, 1u);
  EXPECT_GE(d.stats().hung, 1u);
  EXPECT_GE(d.stats().corrupt, 1u);
  EXPECT_GE(d.stats().reissued, 3u);
  // Fail-once tokens: the re-issued ranges ran clean, no fallback.
  EXPECT_EQ(d.stats().fallback_ranges, 0u);
  for (int i = 0; i < 3; ++i) {
    std::filesystem::remove(token + "." + std::to_string(i));
  }
}

TEST_F(CampaignRemote, DispatcherDegradesToInProcessOnPersistentFailure) {
  // No fail-once token: the crash directive fires on every attempt, so
  // that range must exhaust its retries and degrade to in-process
  // execution — and the report still comes out byte-identical.
  ASSERT_FALSE(worker_bin().empty());
  const CampaignSpec spec = dispatcher_spec();
  const std::string expected =
      campaign::Engine({1, spec.base_seed}).run(spec.scenarios).to_json();
  setenv("TMU_WORKER_FAIL", "crash@2", 1);

  DispatcherOptions opts;
  opts.worker_binary = worker_bin();
  opts.workers = 2;
  opts.shards = 4;
  opts.poll_interval_ms = 5;
  opts.max_retries = 1;
  opts.retry_backoff_ms = 10;
  Dispatcher d(opts);
  EXPECT_EQ(d.run(spec).to_json(), expected);
  EXPECT_GE(d.stats().crashed, 2u);  // initial + one retry
  EXPECT_EQ(d.stats().fallback_ranges, 1u);
}

TEST_F(CampaignRemote, DispatcherSurvivesUnspawnableWorkerBinary) {
  // execv failing (bad path) shows up as instant crashes; every range
  // must degrade to in-process and the campaign still completes.
  const CampaignSpec spec = dispatcher_spec();
  const std::string expected =
      campaign::Engine({1, spec.base_seed}).run(spec.scenarios).to_json();
  DispatcherOptions opts;
  opts.worker_binary = "/nonexistent/campaign_worker";
  opts.workers = 2;
  opts.shards = 2;
  opts.poll_interval_ms = 5;
  opts.max_retries = 1;
  opts.retry_backoff_ms = 1;
  Dispatcher d(opts);
  EXPECT_EQ(d.run(spec).to_json(), expected);
  EXPECT_EQ(d.stats().fallback_ranges, 2u);
}

}  // namespace
