// RunningStats::merge / Histogram::merge: combining worker shards must
// equal the pooled single-stream statistics, so a sharded campaign can
// aggregate exactly (satellite of the parallel campaign engine).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace {

std::vector<double> sample_stream(std::uint64_t seed, int n) {
  sim::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    xs.push_back(static_cast<double>(rng.range(0, 10000)) / 7.0);
  }
  return xs;
}

TEST(RunningStatsMerge, MergedShardsEqualSingleStream) {
  const auto xs = sample_stream(42, 1000);

  sim::RunningStats single;
  for (double x : xs) single.add(x);

  // Split into 4 uneven shards, as a thread pool would.
  sim::RunningStats shards[4];
  const std::size_t cuts[5] = {0, 117, 430, 431, xs.size()};
  for (int s = 0; s < 4; ++s) {
    for (std::size_t i = cuts[s]; i < cuts[s + 1]; ++i) {
      shards[s].add(xs[i]);
    }
  }
  sim::RunningStats merged;
  for (const auto& sh : shards) merged.merge(sh);

  EXPECT_EQ(merged.count(), single.count());
  EXPECT_NEAR(merged.mean(), single.mean(), 1e-9 * single.mean());
  EXPECT_NEAR(merged.variance(), single.variance(),
              1e-9 * single.variance());
  EXPECT_DOUBLE_EQ(merged.min(), single.min());
  EXPECT_DOUBLE_EQ(merged.max(), single.max());
}

TEST(RunningStatsMerge, EmptySidesAreIdentity) {
  sim::RunningStats a;
  a.add(3.0);
  a.add(5.0);

  sim::RunningStats empty;
  sim::RunningStats left = a;
  left.merge(empty);  // rhs empty: unchanged
  EXPECT_EQ(left.count(), 2u);
  EXPECT_DOUBLE_EQ(left.mean(), 4.0);

  sim::RunningStats right;
  right.merge(a);  // lhs empty: becomes rhs
  EXPECT_EQ(right.count(), 2u);
  EXPECT_DOUBLE_EQ(right.mean(), 4.0);
  EXPECT_DOUBLE_EQ(right.min(), 3.0);
  EXPECT_DOUBLE_EQ(right.max(), 5.0);

  sim::RunningStats both;
  both.merge(sim::RunningStats{});  // empty + empty stays empty
  EXPECT_EQ(both.count(), 0u);
  EXPECT_DOUBLE_EQ(both.mean(), 0.0);
}

TEST(RunningStatsMerge, SingleElementShards) {
  const auto xs = sample_stream(7, 64);
  sim::RunningStats single, merged;
  for (double x : xs) {
    single.add(x);
    sim::RunningStats one;
    one.add(x);
    merged.merge(one);
  }
  EXPECT_EQ(merged.count(), single.count());
  EXPECT_NEAR(merged.mean(), single.mean(), 1e-9 * single.mean());
  EXPECT_NEAR(merged.stddev(), single.stddev(), 1e-9 * single.stddev());
}

TEST(HistogramMerge, CountsAddExactly) {
  sim::Histogram a, b, single;
  const auto xs = sample_stream(99, 500);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto v = static_cast<std::uint64_t>(xs[i]);
    single.add(v);
    (i % 2 != 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), single.total());
  EXPECT_EQ(a.bins(), single.bins());
  EXPECT_EQ(a.percentile(0.5), single.percentile(0.5));
  EXPECT_EQ(a.percentile(0.99), single.percentile(0.99));
}

}  // namespace
