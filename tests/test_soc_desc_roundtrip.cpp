// SocDesc serialization fuzz: randomly generated nested trees (clusters
// in clusters, bridges, bank timing, per-level guards) must survive
// to_json -> from_json with full equality and canonical re-emission,
// and the FNV-1a topology hash must react to any nested field change.
// Plus the schema-migration smoke: a committed v1 document (predating
// clusters and bank timing) still parses, equals the desc it was
// generated from, and re-emits upgraded to v2.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "sim/random.hpp"
#include "soc/desc.hpp"
#include "soc/topologies.hpp"

namespace {

using soc::ClusterDesc;
using soc::GuardDesc;
using soc::ManagerDesc;
using soc::SocDesc;
using soc::SubordinateDesc;

std::string name_of(const char* stem, std::uint64_t n) {
  return std::string(stem) + std::to_string(n);
}

GuardDesc random_guard(sim::Rng& rng, const std::string& sub,
                       std::uint64_t uid) {
  GuardDesc g;
  g.name = name_of("g", uid);
  g.subordinate = sub;
  g.cfg.variant = rng.chance(0.5) ? tmu::Variant::kFullCounter
                                  : tmu::Variant::kTinyCounter;
  g.cfg.tc_total_budget = static_cast<std::uint32_t>(rng.range(16, 4096));
  g.cfg.adaptive.enabled = rng.chance(0.5);
  g.cfg.sticky_bit = rng.chance(0.3);
  if (rng.chance(0.6)) g.mgr_injector = name_of("im", uid);
  if (rng.chance(0.6)) g.sub_injector = name_of("is", uid);
  if (rng.chance(0.6)) g.reset_unit = name_of("ru", uid);
  g.reset_duration = static_cast<std::uint32_t>(rng.range(1, 16));
  return g;
}

/// A random subordinate; recurses into a random cluster with probability
/// falling off with depth. `uid` keeps names unique tree-wide.
SubordinateDesc random_sub(sim::Rng& rng, unsigned depth, std::uint64_t& uid) {
  SubordinateDesc s;
  s.name = name_of("s", uid++);
  s.base = rng.range(0, 0xFFFF) << 16;
  s.size = rng.range(1, 0x100) << 12;
  if (depth < 3 && rng.chance(depth == 0 ? 0.5 : 0.3)) {
    s.kind = soc::SubordinateKind::kCluster;
    ClusterDesc c;
    if (rng.chance(0.5)) c.xbar_name = name_of("cx", uid++);
    c.id_shift = static_cast<unsigned>(rng.range(4, 24));
    c.bridge.req_latency = static_cast<std::uint32_t>(rng.range(1, 8));
    c.bridge.rsp_latency = static_cast<std::uint32_t>(rng.range(1, 8));
    c.bridge.id_remap = rng.chance(0.5);
    c.bridge.max_ids = static_cast<std::uint32_t>(rng.range(1, 64));
    c.bridge.fifo_depth = rng.range(1, 16);
    const std::uint64_t n = rng.range(1, 3);
    for (std::uint64_t i = 0; i < n; ++i) {
      c.subordinates.push_back(random_sub(rng, depth + 1, uid));
      if (rng.chance(0.4)) {
        c.guards.push_back(
            random_guard(rng, c.subordinates.back().name, uid++));
      }
    }
    s.cluster = {std::move(c)};
  } else if (rng.chance(0.3)) {
    s.kind = soc::SubordinateKind::kEthernet;
    s.eth.tx_fifo_beats = static_cast<std::uint32_t>(rng.range(8, 256));
    s.eth.drain_every = static_cast<std::uint32_t>(rng.range(1, 4));
  } else {
    s.mem.b_latency = static_cast<std::uint32_t>(rng.range(0, 4));
    s.mem.max_outstanding = static_cast<std::uint32_t>(rng.range(1, 32));
    if (rng.chance(0.5)) {
      s.mem.bank.enabled = true;
      s.mem.bank.num_banks = 1u << rng.range(0, 4);
      s.mem.bank.col_bits = static_cast<std::uint32_t>(rng.range(3, 10));
      s.mem.bank.open_page = rng.chance(0.5);
      s.mem.bank.t_hit = static_cast<std::uint32_t>(rng.range(0, 3));
      s.mem.bank.t_miss = static_cast<std::uint32_t>(rng.range(1, 12));
      s.mem.bank.t_conflict = static_cast<std::uint32_t>(rng.range(2, 24));
    }
    if (rng.chance(0.3)) {
      s.llc = true;
      s.llc_cfg.num_lines = static_cast<std::uint32_t>(rng.range(16, 512));
      if (rng.chance(0.5)) s.llc_name = name_of("llc", uid++);
    }
  }
  return s;
}

SocDesc random_desc(std::uint64_t seed) {
  sim::Rng rng(seed);
  std::uint64_t uid = 0;
  SocDesc d;
  d.name = name_of("fuzz", seed);
  d.id_shift = static_cast<unsigned>(rng.range(4, 16));
  d.xbar_impl = rng.chance(0.5) ? axi::XbarImpl::kSharded
                                : axi::XbarImpl::kMonolithic;
  d.policy = rng.chance(0.5) ? sim::sched::SchedPolicy::kEventDriven
                             : sim::sched::SchedPolicy::kFullSweep;
  const std::uint64_t n_mgr = rng.range(1, 3);
  for (std::uint64_t i = 0; i < n_mgr; ++i) {
    ManagerDesc m;
    m.name = name_of("m", uid++);
    m.seed = rng.next();
    if (rng.chance(0.3)) {
      m.kind = soc::ManagerKind::kDmaEngine;
      m.dma_max_burst = static_cast<std::uint8_t>(rng.range(1, 64));
      m.dma_id = static_cast<axi::Id>(rng.range(0, 15));
    } else if (rng.chance(0.5)) {
      m.traffic.enabled = true;
      m.traffic.p_new_txn = 0.125 * static_cast<double>(rng.range(1, 8));
      m.traffic.addr_max = rng.next();
    }
    d.managers.push_back(std::move(m));
  }
  const std::uint64_t n_sub = rng.range(1, 4);
  for (std::uint64_t i = 0; i < n_sub; ++i) {
    d.subordinates.push_back(random_sub(rng, 0, uid));
    if (rng.chance(0.4)) {
      d.guards.push_back(random_guard(rng, d.subordinates.back().name, uid++));
    }
  }
  // Observability probes on a random subset of manager ports (the
  // serializer round-trips them like any other section).
  for (const ManagerDesc& m : d.managers) {
    if (rng.chance(0.4)) {
      soc::ProbeDesc p;
      p.name = name_of("p", uid++);
      p.link = m.name + ".out";
      d.probes.push_back(std::move(p));
    }
  }
  if (rng.chance(0.5)) {
    d.recovery.enabled = true;
    d.recovery.handler_latency = static_cast<std::uint32_t>(rng.range(1, 64));
  }
  // Capture points (drawn after everything else so the cluster-shape
  // stream above is unperturbed), and sometimes a replay manager with a
  // pinned stream path.
  for (std::size_t i = 0; i < n_mgr; ++i) {
    if (rng.chance(0.3)) {
      d.traces.push_back(
          {name_of("t", uid++), d.managers[i].name + ".out"});
    }
  }
  if (rng.chance(0.3)) {
    ManagerDesc rm;
    rm.name = name_of("rp", uid++);
    rm.kind = soc::ManagerKind::kTraceReplay;
    rm.trace_path = name_of("stream", uid++) + ".axitrace";
    d.managers.push_back(std::move(rm));
  }
  return d;
}

/// Number of cluster nodes in the tree (fuzz-coverage sanity).
std::size_t count_clusters(const std::vector<SubordinateDesc>& subs) {
  std::size_t n = 0;
  for (const SubordinateDesc& s : subs) {
    for (const ClusterDesc& c : s.cluster) {
      n += 1 + count_clusters(c.subordinates);
    }
  }
  return n;
}

TEST(SocDescRoundTrip, RandomNestedTreesSurviveAndReEmitCanonically) {
  std::size_t clusters_seen = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const SocDesc d = random_desc(seed);
    clusters_seen += count_clusters(d.subordinates);
    const std::string json = d.to_json();
    SocDesc back;
    ASSERT_NO_THROW(back = SocDesc::from_json(json)) << "seed " << seed;
    EXPECT_TRUE(back == d) << "seed " << seed;
    EXPECT_EQ(back.to_json(), json) << "seed " << seed;
    EXPECT_EQ(back.hash(), d.hash()) << "seed " << seed;
  }
  // The generator actually produced nested topologies to round-trip.
  EXPECT_GT(clusters_seen, 20u);
}

/// Applies `mutate` to a copy of `d` and expects the hash to move.
template <typename F>
void expect_hash_sensitive(const SocDesc& d, const char* what, F mutate) {
  SocDesc m = d;
  mutate(m);
  ASSERT_FALSE(m == d) << what << " (mutation was a no-op)";
  EXPECT_NE(m.hash(), d.hash()) << what;
}

TEST(SocDescRoundTrip, HashCoversNestedClusterFields) {
  const SocDesc d = soc::hierarchical_desc({});
  ASSERT_EQ(d.subordinates[1].cluster.size(), 1u);
  expect_hash_sensitive(d, "bridge.req_latency", [](SocDesc& m) {
    m.subordinates[1].cluster[0].bridge.req_latency += 1;
  });
  expect_hash_sensitive(d, "bridge.id_remap", [](SocDesc& m) {
    m.subordinates[1].cluster[0].bridge.id_remap = false;
  });
  expect_hash_sensitive(d, "cluster.id_shift", [](SocDesc& m) {
    m.subordinates[1].cluster[0].id_shift += 1;
  });
  expect_hash_sensitive(d, "bank.t_conflict", [](SocDesc& m) {
    m.subordinates[0].mem.bank.t_conflict += 1;
  });
  expect_hash_sensitive(d, "bank.open_page", [](SocDesc& m) {
    m.subordinates[0].mem.bank.open_page = false;
  });
  expect_hash_sensitive(d, "nested subordinate window", [](SocDesc& m) {
    m.subordinates[1].cluster[0].subordinates[0].size += 0x1000;
  });
  expect_hash_sensitive(d, "nested guard budget", [](SocDesc& m) {
    m.subordinates[1].cluster[0].guards[0].cfg.tc_total_budget += 1;
  });
  expect_hash_sensitive(d, "nested guard reset_unit", [](SocDesc& m) {
    m.subordinates[1].cluster[0].guards[1].reset_unit = "other";
  });
  // Probes are part of the canonical document: adding one, renaming one
  // or moving it to another link are all distinct topologies.
  expect_hash_sensitive(d, "probe added", [](SocDesc& m) {
    m.probes.push_back({"probe0", "dram.in"});
  });
  SocDesc with_probe = d;
  with_probe.probes.push_back({"probe0", "dram.in"});
  expect_hash_sensitive(with_probe, "probe name", [](SocDesc& m) {
    m.probes[0].name = "probe1";
  });
  expect_hash_sensitive(with_probe, "probe link", [](SocDesc& m) {
    m.probes[0].link = "cpu0.out";
  });
  // Traces are hash-covered the same way — a replayed stream can tell
  // whether it is being driven into the topology it was recorded on.
  expect_hash_sensitive(d, "trace added", [](SocDesc& m) {
    m.traces.push_back({"cap0", "dram.in"});
  });
  SocDesc with_trace = d;
  with_trace.traces.push_back({"cap0", "dram.in"});
  expect_hash_sensitive(with_trace, "trace name", [](SocDesc& m) {
    m.traces[0].name = "cap1";
  });
  expect_hash_sensitive(with_trace, "trace link", [](SocDesc& m) {
    m.traces[0].link = "cpu0.out";
  });
  SocDesc replayer = d;
  replayer.managers[0].kind = soc::ManagerKind::kTraceReplay;
  expect_hash_sensitive(replayer, "manager trace_path", [](SocDesc& m) {
    m.managers[0].trace_path = "pinned.axitrace";
  });
}

TEST(SocDescRoundTrip, GuardSiteVariantsAreDistinctTopologies) {
  const SocDesc leaf = soc::hierarchical_desc({}, soc::HierGuardSite::kLeaf);
  const SocDesc bridge =
      soc::hierarchical_desc({}, soc::HierGuardSite::kBridge);
  EXPECT_NE(leaf.hash(), bridge.hash());
  EXPECT_NE(leaf.hash(), soc::cheshire_desc({}).hash());
  // Round-trip both hierarchy variants explicitly.
  for (const SocDesc* d : {&leaf, &bridge}) {
    const SocDesc back = SocDesc::from_json(d->to_json());
    EXPECT_TRUE(back == *d);
    EXPECT_EQ(back.hash(), d->hash());
  }
}

// ------------------------------------------------------------------
// v1 -> v2 migration smoke: the committed pre-cluster document.
// ------------------------------------------------------------------

TEST(SocDescRoundTrip, V1FixtureParsesAndUpgradesToV2) {
  std::ifstream in(std::string(TMU_TEST_DATA_DIR) + "/cheshire_v1.json");
  ASSERT_TRUE(in.good()) << "missing tests/data/cheshire_v1.json";
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string v1 = ss.str();
  ASSERT_NE(v1.find(soc::kSocDescSchemaV1), std::string::npos);

  const SocDesc parsed = SocDesc::from_json(v1);
  // The fixture was generated from the flat Cheshire desc; missing v2
  // keys (clusters, bank timing) take the defaults, i.e. exactly it.
  const SocDesc flat = soc::cheshire_desc({});
  EXPECT_TRUE(parsed == flat);
  EXPECT_EQ(parsed.hash(), flat.hash());

  // Re-emission upgrades the document to the v2 schema, canonically.
  const std::string v2 = parsed.to_json();
  EXPECT_NE(v2.find(soc::kSocDescSchema), std::string::npos);
  EXPECT_EQ(v2.find(soc::kSocDescSchemaV1), std::string::npos);
  EXPECT_EQ(v2, flat.to_json());
}

}  // namespace
