// axi::Bridge unit tests: transparent feed-through, per-crossing
// latency, ID compaction/restoration under saturation, in-flight state
// loss on hw_reset, and the DECERR containment contract — a request into
// a hole of a cluster's sub-windows terminates at the cluster crossbar
// with DECERR instead of stalling (or mis-decoding at) the parent level.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "axi/bridge.hpp"
#include "axi/crossbar.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "sim/kernel.hpp"
#include "soc/builder.hpp"

namespace {

using namespace axi;

/// gen -> bridge -> mem, with the downstream link exposed for snooping.
struct BridgeFixture {
  Link up, down;
  TrafficGenerator gen;
  Bridge bridge;
  MemorySubordinate mem;
  sim::Simulator s;

  explicit BridgeFixture(BridgeConfig cfg, std::uint64_t seed = 1)
      : gen("gen", up, seed), bridge("bridge", up, down, cfg), mem("mem", down) {
    s.add(gen);
    s.add(bridge);
    s.add(mem);
    s.reset();
  }

  /// Cycle at which `n` transactions are complete (asserts it happens).
  std::uint64_t completion_cycle(std::size_t n, std::uint64_t budget = 2000) {
    EXPECT_TRUE(s.run_until([&] { return gen.completed() >= n; }, budget))
        << "only " << gen.completed() << "/" << n << " completed";
    return gen.records().empty() ? 0 : gen.records().back().complete_cycle;
  }
};

/// Reference: the same generator wired straight into the memory.
struct DirectFixture {
  Link l;
  TrafficGenerator gen;
  MemorySubordinate mem;
  sim::Simulator s;

  explicit DirectFixture(std::uint64_t seed = 1)
      : gen("gen", l, seed), mem("mem", l) {
    s.add(gen);
    s.add(mem);
    s.reset();
  }
};

TEST(AxiBridge, ConfigValidation) {
  Link up, down;
  BridgeConfig mixed;
  mixed.req_latency = 0;
  mixed.rsp_latency = 1;
  EXPECT_THROW(Bridge("b", up, down, mixed), std::invalid_argument);
  BridgeConfig remap0;
  remap0.req_latency = 0;
  remap0.rsp_latency = 0;
  remap0.id_remap = true;
  EXPECT_THROW(Bridge("b", up, down, remap0), std::invalid_argument);
  BridgeConfig noid;
  noid.id_remap = true;
  noid.max_ids = 0;
  EXPECT_THROW(Bridge("b", up, down, noid), std::invalid_argument);
  BridgeConfig nofifo;
  nofifo.fifo_depth = 0;
  EXPECT_THROW(Bridge("b", up, down, nofifo), std::invalid_argument);
}

// A transparent bridge is a wire pair: identical per-cycle behaviour to
// the direct wiring, and zero registered state (idle costs no evals).
TEST(AxiBridge, TransparentIsCycleExactWire) {
  BridgeConfig cfg;
  cfg.req_latency = 0;
  cfg.rsp_latency = 0;
  BridgeFixture a(cfg, 42);
  DirectFixture b(42);
  EXPECT_TRUE(a.bridge.transparent());

  RandomTrafficConfig rc;
  rc.enabled = true;
  rc.p_new_txn = 0.3;
  rc.len_max = 7;
  a.gen.set_random(rc);
  b.gen.set_random(rc);

  for (std::uint64_t c = 0; c < 600; ++c) {
    a.s.step();
    b.s.step();
    ASSERT_TRUE(a.up.req.read() == b.l.req.read()) << "req @ " << c;
    ASSERT_TRUE(a.up.rsp.read() == b.l.rsp.read()) << "rsp @ " << c;
    ASSERT_TRUE(a.down.req.read() == b.l.req.read()) << "down.req @ " << c;
  }
  EXPECT_EQ(a.gen.completed(), b.gen.completed());
  EXPECT_GT(a.gen.completed(), 0u);
  EXPECT_EQ(a.gen.data_mismatches(), 0u);
  EXPECT_FALSE(a.bridge.tick_changed_eval_state());
}

// Each crossing adds its configured latency: a single transaction's
// completion shifts by exactly req_latency + rsp_latency.
TEST(AxiBridge, LatencyShiftsCompletionByConfiguredCycles) {
  const TxnDesc wr{true, 2, 0x100, 3, 3, Burst::kIncr};
  const TxnDesc rd{false, 3, 0x100, 3, 3, Burst::kIncr};
  DirectFixture ref;
  ref.gen.push(wr);
  ASSERT_TRUE(ref.s.run_until([&] { return ref.gen.completed() >= 1; }, 500));
  const std::uint64_t direct_wr = ref.gen.records()[0].complete_cycle;
  ref.gen.push(rd);
  ASSERT_TRUE(ref.s.run_until([&] { return ref.gen.completed() >= 2; }, 500));
  const std::uint64_t direct_rd =
      ref.gen.records()[1].complete_cycle - ref.gen.records()[1].issue_cycle;

  for (const auto& [req_lat, rsp_lat] : {std::pair<std::uint32_t,
                                                   std::uint32_t>{1, 1},
                                         {2, 3}}) {
    BridgeConfig cfg;
    cfg.req_latency = req_lat;
    cfg.rsp_latency = rsp_lat;
    BridgeFixture f(cfg);
    f.gen.push(wr);
    EXPECT_EQ(f.completion_cycle(1), direct_wr + req_lat + rsp_lat)
        << req_lat << "/" << rsp_lat;
    f.gen.push(rd);
    f.completion_cycle(2);
    EXPECT_EQ(f.gen.records()[1].complete_cycle -
                  f.gen.records()[1].issue_cycle,
              direct_rd + req_lat + rsp_lat)
        << req_lat << "/" << rsp_lat;
  }
}

// ID remap: wide upstream IDs (as left by a parent crossbar's manager
// prefix) are compacted to tIDs < max_ids downstream and restored on the
// way back; the generator's own response matching proves restoration.
TEST(AxiBridge, IdRemapCompactsDownstreamAndRestoresUpstream) {
  BridgeConfig cfg;
  cfg.id_remap = true;
  cfg.max_ids = 4;
  BridgeFixture f(cfg);
  const Id wide_ids[] = {0x137, 0x299, 0x5AB, 0x7FF};
  std::size_t n = 0;
  for (const Id id : wide_ids) {
    f.gen.push(TxnDesc{true, id, 0x1000 + 0x40 * n, 3, 3, Burst::kIncr});
    f.gen.push(TxnDesc{false, id, 0x1000 + 0x40 * n, 3, 3, Burst::kIncr});
    n += 2;
  }

  std::set<Id> seen_down;
  for (std::uint64_t c = 0; c < 600 && f.gen.completed() < n; ++c) {
    f.s.step();
    const AxiReq& q = f.down.req.read();
    if (q.aw_valid) seen_down.insert(q.aw.id);
    if (q.ar_valid) seen_down.insert(q.ar.id);
  }
  ASSERT_EQ(f.gen.completed(), n);
  EXPECT_EQ(f.gen.data_mismatches(), 0u);
  EXPECT_FALSE(seen_down.empty());
  for (const Id id : seen_down) EXPECT_LT(id, cfg.max_ids);
  // All slots drained once quiescent.
  EXPECT_EQ(f.bridge.active_write_ids(), 0u);
  EXPECT_EQ(f.bridge.active_read_ids(), 0u);
  EXPECT_EQ(f.bridge.writes_forwarded(), n / 2);
  EXPECT_EQ(f.bridge.reads_forwarded(), n / 2);
}

// max_ids = 1 serializes distinct upstream IDs (new IDs stall at the
// bridge until the slot frees) but everything still completes, in order.
TEST(AxiBridge, IdPoolSaturationStallsWithoutDeadlock) {
  BridgeConfig cfg;
  cfg.id_remap = true;
  cfg.max_ids = 1;
  BridgeFixture f(cfg);
  for (Id id = 0; id < 6; ++id) {
    f.gen.push(TxnDesc{true, static_cast<Id>(0x40 + id), 0x2000 + 0x40 * id, 1,
                       3, Burst::kIncr});
  }
  for (std::uint64_t c = 0; c < 1200 && f.gen.completed() < 6; ++c) {
    f.s.step();
    ASSERT_LE(f.bridge.active_write_ids(), 1u) << "cycle " << c;
  }
  EXPECT_EQ(f.gen.completed(), 6u);
  EXPECT_EQ(f.gen.error_responses(), 0u);
}

// hw_reset drops staged flits and ID mappings (a domain reset severing
// the cluster). After resetting the downstream endpoint as the same
// domain reset would, fresh traffic flows normally.
TEST(AxiBridge, HwResetDropsInflightStateAndRecovers) {
  BridgeConfig cfg;
  cfg.id_remap = true;
  cfg.max_ids = 8;
  cfg.req_latency = 4;  // wide window: flits are staged when we cut
  cfg.rsp_latency = 4;
  BridgeFixture f(cfg);
  f.gen.push(TxnDesc{true, 5, 0x3000, 7, 3, Burst::kIncr});
  f.gen.push(TxnDesc{false, 6, 0x3000, 7, 3, Burst::kIncr});
  f.s.run(6);  // mid-flight: AW admitted, W beats staged
  EXPECT_GT(f.bridge.active_write_ids() + f.bridge.active_read_ids(), 0u);

  f.bridge.hw_reset();
  f.mem.hw_reset();  // the reset unit resets the whole domain
  f.s.run(2);
  EXPECT_EQ(f.bridge.active_write_ids(), 0u);
  EXPECT_EQ(f.bridge.active_read_ids(), 0u);

  // The generator still waits on the severed transactions; fresh ones
  // must flow through the cleared bridge regardless.
  const std::size_t before = f.gen.completed();
  f.gen.push(TxnDesc{true, 7, 0x4000, 3, 3, Burst::kIncr});
  EXPECT_TRUE(
      f.s.run_until([&] { return f.gen.completed() > before; }, 2000));
  EXPECT_EQ(f.gen.records().back().resp, Resp::kOkay);
}

// Idle bridges cost zero evals: once quiescent, tick() reports no
// eval-state change so the event-driven scheduler drops the module.
TEST(AxiBridge, IdleBridgeGoesQuiet) {
  BridgeFixture f(BridgeConfig{});
  f.gen.push(TxnDesc{true, 1, 0x100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(f.s.run_until([&] { return f.gen.completed() >= 1; }, 500));
  f.s.run(4);  // drain the response-latency tail
  EXPECT_FALSE(f.bridge.tick_changed_eval_state());
}

// ------------------------------------------------------------------
// DECERR containment (builder-level): a request into the hole between a
// cluster's sub-windows dies with DECERR at the cluster crossbar. The
// parent crossbar decoded fine (the cluster window covers the hole), so
// its decode-error counter stays zero and nothing upstream stalls.
// ------------------------------------------------------------------

soc::SocDesc hole_desc() {
  soc::SocDesc d;
  d.name = "hole";
  soc::ManagerDesc gen;
  gen.name = "gen";
  d.managers = {gen};

  soc::SubordinateDesc cl;
  cl.name = "cl";
  cl.kind = soc::SubordinateKind::kCluster;
  cl.base = 0;
  cl.size = 0x2'0000;  // twice the leaf window: upper half is a hole
  soc::ClusterDesc c;
  c.id_shift = 8;
  c.bridge.id_remap = true;
  c.bridge.max_ids = 8;
  soc::SubordinateDesc mem0;
  mem0.name = "mem0";
  mem0.base = 0;
  mem0.size = 0x1'0000;
  c.subordinates = {mem0};
  cl.cluster = {c};
  d.subordinates = {cl};
  return d;
}

TEST(AxiBridge, ClusterHoleTerminatesDecErrAtClusterLevel) {
  const auto soc = soc::SocBuilder::build(hole_desc());
  auto& gen = soc->get<TrafficGenerator>("gen");
  gen.push(TxnDesc{true, 1, 0x0'8000, 3, 3, Burst::kIncr});   // mapped
  gen.push(TxnDesc{true, 2, 0x1'8000, 3, 3, Burst::kIncr});   // hole
  gen.push(TxnDesc{false, 3, 0x1'9000, 3, 3, Burst::kIncr});  // hole
  gen.push(TxnDesc{false, 4, 0x0'9000, 0, 3, Burst::kIncr});  // mapped
  ASSERT_TRUE(
      soc->sim().run_until([&] { return gen.completed() >= 4; }, 2000))
      << "a hole request hung the SoC (completed " << gen.completed() << ")";
  EXPECT_EQ(gen.error_responses(), 2u);
  std::size_t decerr = 0;
  for (const TxnRecord& r : gen.records()) {
    if (r.resp == Resp::kDecErr) ++decerr;
  }
  EXPECT_EQ(decerr, 2u);
  EXPECT_EQ(soc->get<Crossbar>("xbar").decode_errors(), 0u);
  EXPECT_EQ(soc->get<Crossbar>("cl.xbar").decode_errors(), 2u);
  // The bridge itself drained cleanly.
  auto& b = soc->get<Bridge>("cl");
  EXPECT_EQ(b.active_write_ids(), 0u);
  EXPECT_EQ(b.active_read_ids(), 0u);
}

}  // namespace
