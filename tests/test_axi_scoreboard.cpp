// Direct tests of the protocol scoreboard by driving raw wires —
// verifying the checker itself flags (only) genuine violations.

#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/scoreboard.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace axi;

struct SbFixture : ::testing::Test {
  Link link;
  Scoreboard sb{"sb", link};
  sim::Simulator s;

  void SetUp() override {
    s.add(sb);
    s.reset();
  }

  void drive(const AxiReq& q, const AxiRsp& r) {
    link.req.force(q);
    link.rsp.force(r);
    s.step();
  }

  bool flagged(const std::string& rule) const {
    for (const auto& v : sb.violations()) {
      if (v.rule == rule) return true;
    }
    return false;
  }
};

TEST_F(SbFixture, CleanSingleBeatWrite) {
  AxiReq q{};
  AxiRsp r{};
  q.aw_valid = true;
  q.aw = AwFlit{0, 0x100, 0, 3, Burst::kIncr};
  r.aw_ready = true;
  drive(q, r);
  q = {};
  r = {};
  q.w_valid = true;
  q.w = WFlit{0xAB, 0xFF, true};
  r.w_ready = true;
  drive(q, r);
  q = {};
  r = {};
  q.b_ready = true;
  r.b_valid = true;
  r.b = BFlit{0, Resp::kOkay};
  drive(q, r);
  EXPECT_EQ(sb.violation_count(), 0u);
  EXPECT_EQ(sb.completed_writes(), 1u);
}

TEST_F(SbFixture, AwPayloadChangeWhileStalled) {
  AxiReq q{};
  AxiRsp r{};  // not ready
  q.aw_valid = true;
  q.aw = AwFlit{0, 0x100, 0, 3, Burst::kIncr};
  drive(q, r);
  q.aw.addr = 0x200;  // illegal mutation while valid && !ready
  drive(q, r);
  EXPECT_TRUE(flagged("AW_STABLE"));
}

TEST_F(SbFixture, AwValidDropWhileStalled) {
  AxiReq q{};
  AxiRsp r{};
  q.aw_valid = true;
  q.aw = AwFlit{0, 0x100, 0, 3, Burst::kIncr};
  drive(q, r);
  q.aw_valid = false;
  drive(q, r);
  EXPECT_TRUE(flagged("AW_STABLE"));
}

TEST_F(SbFixture, BWithoutOutstandingWrite) {
  AxiReq q{};
  AxiRsp r{};
  q.b_ready = true;
  r.b_valid = true;
  r.b = BFlit{7, Resp::kOkay};
  drive(q, r);
  EXPECT_TRUE(flagged("B_UNREQUESTED"));
}

TEST_F(SbFixture, RWithoutOutstandingRead) {
  AxiReq q{};
  AxiRsp r{};
  q.r_ready = true;
  r.r_valid = true;
  r.r = RFlit{7, 0, Resp::kOkay, true};
  drive(q, r);
  EXPECT_TRUE(flagged("R_UNREQUESTED"));
}

TEST_F(SbFixture, WLastTooEarly) {
  AxiReq q{};
  AxiRsp r{};
  q.aw_valid = true;
  q.aw = AwFlit{0, 0x100, 3, 3, Burst::kIncr};  // 4 beats
  r.aw_ready = true;
  drive(q, r);
  q = {};
  r = {};
  q.w_valid = true;
  q.w = WFlit{0, 0xFF, true};  // last on beat 1 of 4
  r.w_ready = true;
  drive(q, r);
  EXPECT_TRUE(flagged("WLAST_POS"));
}

TEST_F(SbFixture, WBeatWithoutAw) {
  AxiReq q{};
  AxiRsp r{};
  q.w_valid = true;
  q.w = WFlit{0, 0xFF, true};
  r.w_ready = true;
  drive(q, r);
  EXPECT_TRUE(flagged("W_NO_AW"));
}

TEST_F(SbFixture, Incr4KCrossingWrite) {
  AxiReq q{};
  AxiRsp r{};
  q.aw_valid = true;
  q.aw = AwFlit{0, 0x0FF8, 1, 3, Burst::kIncr};  // crosses 0x1000
  r.aw_ready = true;
  drive(q, r);
  EXPECT_TRUE(flagged("AW_4K"));
}

TEST_F(SbFixture, IllegalWrapLenRead) {
  AxiReq q{};
  AxiRsp r{};
  q.ar_valid = true;
  q.ar = ArFlit{0, 0x1000, 2, 3, Burst::kWrap};  // 3 beats: illegal
  r.ar_ready = true;
  drive(q, r);
  EXPECT_TRUE(flagged("AR_WRAP_LEN"));
}

TEST_F(SbFixture, RLastMisplaced) {
  AxiReq q{};
  AxiRsp r{};
  q.ar_valid = true;
  q.ar = ArFlit{2, 0x100, 3, 3, Burst::kIncr};  // 4 beats
  r.ar_ready = true;
  drive(q, r);
  q = {};
  r = {};
  q.r_ready = true;
  r.r_valid = true;
  r.r = RFlit{2, 0, Resp::kOkay, true};  // last on beat 1 of 4
  drive(q, r);
  EXPECT_TRUE(flagged("RLAST_POS"));
}

TEST_F(SbFixture, BStablePayloadChange) {
  // Outstanding write first.
  AxiReq q{};
  AxiRsp r{};
  q.aw_valid = true;
  q.aw = AwFlit{1, 0x100, 0, 3, Burst::kIncr};
  r.aw_ready = true;
  drive(q, r);
  q = {};
  r = {};
  q.w_valid = true;
  q.w = WFlit{0, 0xFF, true};
  r.w_ready = true;
  drive(q, r);
  // B held without ready, then payload changes.
  q = {};
  r = {};
  r.b_valid = true;
  r.b = BFlit{1, Resp::kOkay};
  drive(q, r);
  r.b = BFlit{1, Resp::kSlvErr};
  drive(q, r);
  EXPECT_TRUE(flagged("B_STABLE"));
}

TEST_F(SbFixture, ResetClearsState) {
  AxiReq q{};
  AxiRsp r{};
  q.b_ready = true;
  r.b_valid = true;
  r.b = BFlit{7, Resp::kOkay};
  drive(q, r);
  ASSERT_GT(sb.violation_count(), 0u);
  sb.reset();
  EXPECT_EQ(sb.violation_count(), 0u);
  EXPECT_EQ(sb.completed_writes(), 0u);
}

}  // namespace
