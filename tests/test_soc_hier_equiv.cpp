// Hierarchy equivalence gates. (1) Degenerate hierarchy: wrapping every
// flat Cheshire subordinate in a 1-subordinate cluster behind a
// transparent (latency-0) bridge must be cycle-exact wire-for-wire
// against the flat build — through random traffic, a DMA stream, an
// injected fault and the recovery arc, under both scheduler policies.
// (2) Campaign determinism on the real hierarchical topology: Engine
// reports from hierarchical_desc() trials are byte-identical across
// thread counts and record the v2 topology hash. (3) The guard-placement
// sweep (root xbar vs bridge vs leaf) detects faults at every site.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "fault/injector.hpp"
#include "sim/logger.hpp"
#include "soc/builder.hpp"
#include "soc/cheshire.hpp"
#include "soc/idma.hpp"
#include "soc/topologies.hpp"
#include "tmu/tmu.hpp"

namespace {

using namespace axi;

// Injected faults legitimately provoke protocol warnings; keep the
// determinism-gate output clean.
const bool g_quiet = [] {
  sim::global_log_level() = sim::LogLevel::kOff;
  return true;
}();

/// Wraps every subordinate of a flat desc in its own single-subordinate
/// cluster behind a transparent bridge: the degenerate hierarchy. Root
/// guards move inside the owning cluster (so reset units still reset the
/// real endpoint, and the PLIC's visit_guards order — root-then-DFS —
/// matches the flat guard declaration order).
soc::SocDesc wrap_degenerate(const soc::SocDesc& flat) {
  soc::SocDesc d = flat;
  d.name = flat.name + "_wrapped";
  d.subordinates.clear();
  d.guards.clear();
  for (const soc::SubordinateDesc& s : flat.subordinates) {
    soc::SubordinateDesc outer;
    outer.name = s.name + "_cl";
    outer.kind = soc::SubordinateKind::kCluster;
    outer.base = s.base;
    outer.size = s.size;
    soc::ClusterDesc c;
    c.id_shift = 16;  // clears the root prefix without remapping
    c.bridge.req_latency = 0;
    c.bridge.rsp_latency = 0;
    c.subordinates = {s};
    for (const soc::GuardDesc& g : flat.guards) {
      if (g.subordinate == s.name) c.guards.push_back(g);
    }
    outer.cluster = {std::move(c)};
    d.subordinates.push_back(std::move(outer));
  }
  return d;
}

void expect_links_equal(const Link& flat, const Link& hier,
                        const std::string& which, std::uint64_t cycle) {
  ASSERT_TRUE(flat.req.read() == hier.req.read())
      << which << ".req diverged at cycle " << cycle;
  ASSERT_TRUE(flat.rsp.read() == hier.rsp.read())
      << which << ".rsp diverged at cycle " << cycle;
}

/// Every named link both elaborations share: the manager ports and the
/// full leaf chains (which sit behind bridge + 1x1 crossbar in the
/// wrapped build).
void expect_netlists_equal(soc::Soc& flat, soc::Soc& hier,
                           std::uint64_t cycle) {
  static const char* const kShared[] = {
      "cva6_0.out",     "cva6_1.out",    "idma.out",  "dma_engine.out",
      "inj_m.in",       "tmu.in",        "inj_s.in",  "ethernet.in",
      "llc.in",         "dram.in",       "periph_tmu.in",
      "periph_inj.in",  "periph.in",
  };
  for (const char* name : kShared) {
    expect_links_equal(flat.link(name), hier.link(name), name, cycle);
  }
  for (const char* g : {"tmu", "periph_tmu"}) {
    tmu::Tmu& a = flat.get<tmu::Tmu>(g);
    tmu::Tmu& b = hier.get<tmu::Tmu>(g);
    ASSERT_EQ(a.irq.read(), b.irq.read()) << g << ".irq @ " << cycle;
    ASSERT_EQ(a.reset_req.read(), b.reset_req.read())
        << g << ".reset_req @ " << cycle;
  }
}

void expect_counters_equal(soc::Soc& flat, soc::Soc& hier) {
  for (const char* m : {"cva6_0", "cva6_1", "idma"}) {
    EXPECT_EQ(flat.get<TrafficGenerator>(m).completed(),
              hier.get<TrafficGenerator>(m).completed())
        << m;
  }
  EXPECT_EQ(flat.get<soc::IdmaEngine>("dma_engine").beats_moved(),
            hier.get<soc::IdmaEngine>("dma_engine").beats_moved());
  EXPECT_EQ(flat.get<tmu::Tmu>("tmu").fault_log().size(),
            hier.get<tmu::Tmu>("tmu").fault_log().size());
  EXPECT_EQ(flat.get<tmu::Tmu>("tmu").recoveries(),
            hier.get<tmu::Tmu>("tmu").recoveries());
  EXPECT_EQ(flat.get<soc::EthernetPeripheral>("ethernet").hw_resets(),
            hier.get<soc::EthernetPeripheral>("ethernet").hw_resets());
  EXPECT_EQ(flat.get<soc::LastLevelCache>("llc").hits(),
            hier.get<soc::LastLevelCache>("llc").hits());
  EXPECT_EQ(flat.get<soc::LastLevelCache>("llc").misses(),
            hier.get<soc::LastLevelCache>("llc").misses());
  EXPECT_EQ(
      flat.get<soc::CpuRecoveryStub>("cva6_irq_handler").irqs_handled(),
      hier.get<soc::CpuRecoveryStub>("cva6_irq_handler").irqs_handled());
  EXPECT_EQ(flat.get<soc::ResetUnit>("reset_unit").resets_performed(),
            hier.get<soc::ResetUnit>("reset_unit").resets_performed());
  EXPECT_EQ(flat.get<Crossbar>("xbar").decode_errors(),
            hier.get<Crossbar>("xbar").decode_errors());
}

tmu::TmuConfig lockstep_cfg() {
  tmu::TmuConfig cfg;
  cfg.variant = tmu::Variant::kFullCounter;
  cfg.adaptive.enabled = true;
  return cfg;
}

void run_lockstep(sim::sched::SchedPolicy policy, std::uint64_t cycles) {
  soc::SocDesc flat_d = soc::cheshire_desc(lockstep_cfg());
  flat_d.policy = policy;
  soc::SocDesc hier_d = wrap_degenerate(flat_d);
  const auto flat = soc::SocBuilder::build(flat_d);
  const auto hier = soc::SocBuilder::build(hier_d);

  // The wrapped build really did elaborate bridges + nested crossbars.
  ASSERT_TRUE(hier->get<Bridge>("ethernet_cl").transparent());
  ASSERT_NO_THROW(hier->get<Crossbar>("ethernet_cl.xbar"));

  RandomTrafficConfig rc;
  rc.enabled = true;
  rc.p_new_txn = 0.15;
  rc.addr_min = soc::CheshireMap::kDramBase;
  rc.addr_max = soc::CheshireMap::kDramBase + 0xFF00;
  RandomTrafficConfig rc1 = rc;
  rc1.p_new_txn = 0.1;
  rc1.addr_min = soc::CheshireMap::kPeriphBase;
  rc1.addr_max = soc::CheshireMap::kPeriphBase + 0xF000;
  for (soc::Soc* s : {flat.get(), hier.get()}) {
    s->get<TrafficGenerator>("cva6_0").set_random(rc);
    s->get<TrafficGenerator>("cva6_1").set_random(rc1);
  }

  const soc::DmaDescriptor dma{soc::CheshireMap::kDramBase,
                               soc::CheshireMap::kEthTxWindow, 400};

  for (std::uint64_t c = 0; c < cycles; ++c) {
    if (c == 50) {
      flat->get<soc::IdmaEngine>("dma_engine").submit(dma);
      hier->get<soc::IdmaEngine>("dma_engine").submit(dma);
    }
    if (c == 150) {  // the Ethernet MAC hangs while the frame streams
      flat->get<fault::FaultInjector>("inj_s").arm(
          fault::FaultPoint::kWReadyStuck, 150);
      hier->get<fault::FaultInjector>("inj_s").arm(
          fault::FaultPoint::kWReadyStuck, 150);
    }
    if (c == 1200) {
      flat->get<fault::FaultInjector>("inj_s").disarm();
      hier->get<fault::FaultInjector>("inj_s").disarm();
    }
    if (c == 1800) {  // idle phase: event-driven settles to zero work
      RandomTrafficConfig off;
      for (soc::Soc* s : {flat.get(), hier.get()}) {
        s->get<TrafficGenerator>("cva6_0").set_random(off);
        s->get<TrafficGenerator>("cva6_1").set_random(off);
      }
    }
    if (c == 2200) {  // resume
      flat->get<TrafficGenerator>("cva6_0").set_random(rc);
      hier->get<TrafficGenerator>("cva6_0").set_random(rc);
    }
    flat->sim().step();
    hier->sim().step();
    expect_netlists_equal(*flat, *hier, c);
    if (::testing::Test::HasFailure()) return;
  }
  expect_counters_equal(*flat, *hier);
  // The arc actually exercised fault detection and recovery.
  EXPECT_GT(flat->get<tmu::Tmu>("tmu").fault_log().size(), 0u);
  EXPECT_GT(flat->get<soc::EthernetPeripheral>("ethernet").hw_resets(), 0u);
}

TEST(SocHierEquiv, DegenerateWrapLockstepEventDriven) {
  run_lockstep(sim::sched::SchedPolicy::kEventDriven, 2600);
}

TEST(SocHierEquiv, DegenerateWrapLockstepFullSweep) {
  run_lockstep(sim::sched::SchedPolicy::kFullSweep, 1400);
}

// ------------------------------------------------------------------
// Campaign determinism on the real (latency-1, ID-remapped) hierarchy.
// ------------------------------------------------------------------

campaign::TrialSpec hier_trial_proto(soc::HierGuardSite site) {
  campaign::TrialSpec spec;
  spec.cfg.variant = tmu::Variant::kFullCounter;
  spec.cfg.adaptive.enabled = true;
  spec.desc = soc::hierarchical_desc(spec.cfg, site);
  spec.point = fault::FaultPoint::kWReadyStuck;
  spec.traffic.enabled = true;
  spec.traffic.p_new_txn = 0.3;
  spec.traffic.addr_min = soc::CheshireMap::kEthBase;
  spec.traffic.addr_max = soc::CheshireMap::kEthBase + 0xF000;
  spec.inject_delay_max = 150;
  spec.detect_budget = 3000;
  return spec;
}

TEST(SocHierEquiv, CampaignReportByteIdenticalAcrossThreadCounts) {
  const campaign::TrialSpec proto = hier_trial_proto(soc::HierGuardSite::kLeaf);
  std::vector<campaign::Scenario> sc;
  sc.push_back(campaign::make_scenario("hier/w_ready_stuck", proto, 8));

  const campaign::Report r1 = campaign::Engine({1, 0xFACEull}).run(sc);
  const campaign::Report r3 = campaign::Engine({3, 0xFACEull}).run(sc);
  EXPECT_EQ(r1.to_json(), r3.to_json());
  EXPECT_GT(r1.scenarios[0].detected, 0u);
  // The v2 topology fingerprint is recorded with the scenario.
  EXPECT_EQ(r1.scenarios[0].topology, "cheshire_hier_leaf");
  EXPECT_EQ(r1.scenarios[0].topology_hash, proto.desc.hash());
  EXPECT_NE(r1.to_json().find("cheshire_hier_leaf"), std::string::npos);
}

// Guard-placement sweep: the same W-ready hang into the Ethernet window
// must be detected with the TMU at the root crossbar (flat), in front of
// the cluster bridge, and at the leaf inside the cluster.
TEST(SocHierEquiv, GuardPlacementSweepDetectsAtEverySite) {
  std::vector<campaign::Scenario> sc;
  campaign::TrialSpec flat = hier_trial_proto(soc::HierGuardSite::kLeaf);
  flat.desc = soc::cheshire_desc(flat.cfg);
  sc.push_back(campaign::make_scenario("site/root_xbar", flat, 4));
  sc.push_back(campaign::make_scenario(
      "site/bridge", hier_trial_proto(soc::HierGuardSite::kBridge), 4));
  sc.push_back(campaign::make_scenario(
      "site/leaf", hier_trial_proto(soc::HierGuardSite::kLeaf), 4));

  const campaign::Report r = campaign::Engine({2, 0xBEEFull}).run(sc);
  ASSERT_EQ(r.scenarios.size(), 3u);
  for (const campaign::ScenarioSummary& s : r.scenarios) {
    EXPECT_EQ(s.detected, s.trials) << s.label;
  }
  // Distinct topologies, distinct recorded fingerprints.
  EXPECT_NE(r.scenarios[0].topology_hash, r.scenarios[1].topology_hash);
  EXPECT_NE(r.scenarios[1].topology_hash, r.scenarios[2].topology_hash);
}

}  // namespace
