// Randomized fault-injection campaign (§III-A.3 "injecting random
// failures at key AXI transaction stages"), run through the parallel
// campaign::Engine: for every fault point, many trials with randomized
// injection delay under randomized background traffic. Properties:
//   P1  the TMU always detects the fault within a bound;
//   P2  after recovery, traffic flows again;
//   P3  with no fault armed, long random soaks never flag anything.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "sim/logger.hpp"
#include "soc/cheshire.hpp"
#include "soc/topologies.hpp"
#include "tmu/config.hpp"

namespace {

using fault::FaultPoint;
using tmu::Variant;

tmu::TmuConfig campaign_cfg(Variant v) {
  tmu::TmuConfig cfg;
  cfg.variant = v;
  cfg.max_uniq_ids = 4;
  cfg.txn_per_uniq_id = 4;
  cfg.tc_total_budget = 200;
  cfg.adaptive.enabled = true;
  cfg.adaptive.cycles_per_beat = 3;
  cfg.adaptive.cycles_per_ahead = 6;
  return cfg;
}

/// Worst-case cycles from fault activation to detection: the largest
/// adaptive budget any transaction can get in this setup, plus slack
/// for the fault to actually bite a transaction under random traffic.
constexpr std::uint64_t kDetectionBound = 3000;

campaign::TrialSpec trial_proto(Variant v, FaultPoint p) {
  campaign::TrialSpec spec;
  spec.cfg = campaign_cfg(v);
  spec.point = p;
  spec.traffic.enabled = true;
  spec.traffic.p_new_txn = 0.25;
  spec.traffic.max_outstanding = 6;
  spec.traffic.len_max = 7;
  spec.inject_delay_max = 400;
  spec.detect_budget = kDetectionBound;
  spec.exercise_recovery = true;  // P2 rides along in every trial
  return spec;
}

const std::vector<FaultPoint> kPoints = {
    FaultPoint::kAwReadyStuck, FaultPoint::kWReadyStuck,
    FaultPoint::kBValidStuck,  FaultPoint::kArReadyStuck,
    FaultPoint::kRValidStuck,  FaultPoint::kWValidStuck,
};

class FaultCampaign : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = sim::global_log_level();
    sim::global_log_level() = sim::LogLevel::kOff;
  }
  void TearDown() override { sim::global_log_level() = saved_; }

 private:
  sim::LogLevel saved_ = sim::LogLevel::kWarn;
};

TEST_F(FaultCampaign, AlwaysDetectsAndRecoversAcrossAllPoints) {
  constexpr std::size_t kTrialsPerPair = 6;
  std::vector<campaign::Scenario> scenarios;
  for (FaultPoint p : kPoints) {
    for (Variant v : {Variant::kFullCounter, Variant::kTinyCounter}) {
      const char* vs = v == Variant::kFullCounter ? "fc/" : "tc/";
      scenarios.push_back(campaign::make_scenario(
          vs + std::string(to_string(p)), trial_proto(v, p),
          kTrialsPerPair));
    }
  }
  campaign::Engine eng({0, 0x5EED5ull});  // hardware concurrency
  const campaign::Report rep = eng.run(scenarios);
  ASSERT_EQ(rep.scenarios.size(), kPoints.size() * 2);
  for (const auto& sc : rep.scenarios) {
    // P1: every trial detects within the bound.
    EXPECT_EQ(sc.detected, kTrialsPerPair) << sc.label;
    // P2: every trial recovers and traffic resumes afterwards.
    EXPECT_EQ(sc.recovered, kTrialsPerPair) << sc.label;
    EXPECT_EQ(sc.traffic_resumed, kTrialsPerPair) << sc.label;
    // Detection latency is positive and bounded.
    EXPECT_GT(sc.latency.count(), 0u) << sc.label;
    EXPECT_LE(sc.latency.max(), static_cast<double>(kDetectionBound))
        << sc.label;
  }
}

TEST_F(FaultCampaign, EngineRunMatchesSerialRun) {
  // The campaign itself is the determinism witness: same base seed, one
  // thread vs many, byte-identical report.
  std::vector<campaign::Scenario> scenarios;
  scenarios.push_back(campaign::make_scenario(
      "fc/b_valid_stuck",
      trial_proto(Variant::kFullCounter, FaultPoint::kBValidStuck), 8));
  const campaign::Report serial =
      campaign::Engine({1, 0xD00Dull}).run(scenarios);
  const campaign::Report parallel =
      campaign::Engine({4, 0xD00Dull}).run(scenarios);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
}

TEST_F(FaultCampaign, NoFalsePositivesUnderRandomTraffic) {
  // P3: healthy soaks across several seeds, both variants.
  std::vector<campaign::Scenario> scenarios;
  for (Variant v : {Variant::kFullCounter, Variant::kTinyCounter}) {
    campaign::TrialSpec spec = trial_proto(v, FaultPoint::kNone);
    spec.exercise_recovery = false;
    spec.soak_cycles = 10000;
    const char* vs = v == Variant::kFullCounter ? "fc/healthy" : "tc/healthy";
    scenarios.push_back(campaign::make_scenario(vs, spec, 5));
  }
  campaign::Engine eng({0, 0xBEEFull});
  const campaign::Report rep = eng.run(scenarios);
  for (const auto& sc : rep.scenarios) {
    EXPECT_EQ(sc.false_positives, 0u) << sc.label;
  }
  for (const auto& r : rep.results) {
    EXPECT_GT(r.completed_txns, 200u);
    EXPECT_EQ(r.data_mismatches, 0u);
    EXPECT_EQ(r.error_responses, 0u);
  }
}

TEST_F(FaultCampaign, WatchdogClipsNeverDetectingTrial) {
  // A disabled TMU under an absurd detect budget would previously run
  // for 2^40 cycles; the max_cycles ceiling turns that into a named
  // timed_out result.
  campaign::TrialSpec spec =
      trial_proto(Variant::kFullCounter, FaultPoint::kAwReadyStuck);
  spec.cfg.enabled = false;  // the TMU never flags
  spec.exercise_recovery = false;
  spec.inject_delay_max = 50;
  spec.detect_budget = std::uint64_t{1} << 40;
  spec.max_cycles = 3000;
  std::vector<campaign::Scenario> sc;
  sc.push_back(campaign::make_scenario("wedged", spec, 3));
  const campaign::Report rep = campaign::Engine({2, 0x77ull}).run(sc);
  for (const auto& r : rep.results) {
    EXPECT_FALSE(r.detected);
    EXPECT_TRUE(r.timed_out);
    EXPECT_LE(r.cycles_run, 3000u);
  }
  EXPECT_EQ(rep.scenarios[0].timed_out, 3u);
  EXPECT_EQ(rep.scenarios[0].detected, 0u);
  EXPECT_NE(rep.to_json().find("\"timed_out\": 3"), std::string::npos);
}

TEST_F(FaultCampaign, WatchdogClipsOverlongHealthySoak) {
  campaign::TrialSpec spec = trial_proto(Variant::kFullCounter, FaultPoint::kNone);
  spec.exercise_recovery = false;
  spec.soak_cycles = 100000;
  spec.max_cycles = 1000;
  std::vector<campaign::Scenario> sc;
  sc.push_back(campaign::make_scenario("clipped_soak", spec, 2));
  const campaign::Report rep = campaign::Engine({1, 0x99ull}).run(sc);
  for (const auto& r : rep.results) {
    EXPECT_TRUE(r.timed_out);
    EXPECT_EQ(r.cycles_run, 1000u);
  }
  EXPECT_EQ(rep.scenarios[0].timed_out, 2u);
}

TEST_F(FaultCampaign, WatchdogDefaultNeverClipsBudgetedTrials) {
  // The derived ceiling covers everything the budgeted phases can use:
  // an ordinary campaign must report zero timeouts (and stay
  // byte-identical to pre-watchdog reports).
  std::vector<campaign::Scenario> scenarios;
  scenarios.push_back(campaign::make_scenario(
      "fc/aw_ready_stuck",
      trial_proto(Variant::kFullCounter, FaultPoint::kAwReadyStuck), 4));
  const campaign::Report rep =
      campaign::Engine({2, 0x5EED5ull}).run(scenarios);
  EXPECT_EQ(rep.scenarios[0].timed_out, 0u);
  EXPECT_EQ(rep.scenarios[0].detected, 4u);
}

/// The hierarchical Cheshire with the guard in front of the io-cluster
/// bridge, with the bridge's remap ID pool shrunk to `max_ids`.
soc::SocDesc bridge_desc(std::uint32_t max_ids) {
  soc::SocDesc d = soc::hierarchical_desc(campaign_cfg(Variant::kFullCounter),
                                          soc::HierGuardSite::kBridge);
  d.subordinates[1].cluster[0].bridge.max_ids = max_ids;
  return d;
}

/// Traffic aimed at the cluster's peripheral window, heavy enough to
/// exhaust a 2-entry bridge ID pool (4 distinct IDs, long bursts, many
/// outstanding).
axi::RandomTrafficConfig cluster_traffic() {
  axi::RandomTrafficConfig t;
  t.enabled = true;
  t.p_new_txn = 0.5;
  t.max_outstanding = 8;
  t.id_min = 0;
  t.id_max = 3;
  t.len_min = 3;
  t.len_max = 7;
  t.addr_min = soc::CheshireMap::kPeriphBase;
  t.addr_max = soc::CheshireMap::kPeriphBase + soc::CheshireMap::kPeriphSize - 8;
  return t;
}

TEST_F(FaultCampaign, BridgeBackPressureIsDetectedWithoutDeadlock) {
  // Saturating the io-cluster bridge's remap ID pool stalls the AW/AR
  // handshakes on the guarded link. The non-adaptive address-handshake
  // budget must flag that (under point == kNone it reports as a false
  // positive), the trial must still terminate, and a control with the
  // full-size pool must stay silent under the very same traffic. A
  // third, guard-less hierarchy pins failure capture on nested descs.
  campaign::TrialSpec saturated;
  saturated.desc = bridge_desc(2);
  saturated.cfg = campaign_cfg(Variant::kFullCounter);
  saturated.cfg.reset_on_fault = false;  // keep soaking after the flag
  saturated.point = FaultPoint::kNone;
  saturated.traffic = cluster_traffic();
  saturated.soak_cycles = 4000;

  campaign::TrialSpec control = saturated;
  control.desc = bridge_desc(16);  // stock pool: never saturates

  campaign::TrialSpec guardless = saturated;
  guardless.desc = bridge_desc(16);
  guardless.desc.guards.clear();  // run_fault_trial must throw, captured

  std::vector<campaign::Scenario> scenarios;
  scenarios.push_back(campaign::make_scenario("bridge/saturated", saturated, 4));
  scenarios.push_back(campaign::make_scenario("bridge/control", control, 4));
  scenarios.push_back(campaign::make_scenario("bridge/guardless", guardless, 2));
  const campaign::Report rep = campaign::Engine({0, 0xB1D6Eull}).run(scenarios);

  const campaign::ScenarioSummary& sat = rep.scenarios[0];
  EXPECT_EQ(sat.false_positives, 4u) << "ID-pool exhaustion went undetected";
  EXPECT_EQ(sat.failed_trials, 0u);
  const campaign::ScenarioSummary& ctl = rep.scenarios[1];
  EXPECT_EQ(ctl.false_positives, 0u)
      << "control flagged: detection is not attributable to the pool";
  EXPECT_EQ(ctl.failed_trials, 0u);
  const campaign::ScenarioSummary& gl = rep.scenarios[2];
  EXPECT_EQ(gl.failed_trials, 2u);

  // No deadlock anywhere: every (non-failed) trial ran its soak to the
  // watchdog-free end and kept completing transactions.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(rep.results[i].timed_out) << i;
    EXPECT_EQ(rep.results[i].cycles_run, 4000u) << i;
    EXPECT_GT(rep.results[i].completed_txns, 0u) << i;
  }
}

}  // namespace
