// Randomized fault-injection campaign (§III-A.3 "injecting random
// failures at key AXI transaction stages"), run through the parallel
// campaign::Engine: for every fault point, many trials with randomized
// injection delay under randomized background traffic. Properties:
//   P1  the TMU always detects the fault within a bound;
//   P2  after recovery, traffic flows again;
//   P3  with no fault armed, long random soaks never flag anything.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "sim/logger.hpp"
#include "tmu/config.hpp"

namespace {

using fault::FaultPoint;
using tmu::Variant;

tmu::TmuConfig campaign_cfg(Variant v) {
  tmu::TmuConfig cfg;
  cfg.variant = v;
  cfg.max_uniq_ids = 4;
  cfg.txn_per_uniq_id = 4;
  cfg.tc_total_budget = 200;
  cfg.adaptive.enabled = true;
  cfg.adaptive.cycles_per_beat = 3;
  cfg.adaptive.cycles_per_ahead = 6;
  return cfg;
}

/// Worst-case cycles from fault activation to detection: the largest
/// adaptive budget any transaction can get in this setup, plus slack
/// for the fault to actually bite a transaction under random traffic.
constexpr std::uint64_t kDetectionBound = 3000;

campaign::TrialSpec trial_proto(Variant v, FaultPoint p) {
  campaign::TrialSpec spec;
  spec.cfg = campaign_cfg(v);
  spec.point = p;
  spec.traffic.enabled = true;
  spec.traffic.p_new_txn = 0.25;
  spec.traffic.max_outstanding = 6;
  spec.traffic.len_max = 7;
  spec.inject_delay_max = 400;
  spec.detect_budget = kDetectionBound;
  spec.exercise_recovery = true;  // P2 rides along in every trial
  return spec;
}

const std::vector<FaultPoint> kPoints = {
    FaultPoint::kAwReadyStuck, FaultPoint::kWReadyStuck,
    FaultPoint::kBValidStuck,  FaultPoint::kArReadyStuck,
    FaultPoint::kRValidStuck,  FaultPoint::kWValidStuck,
};

class FaultCampaign : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = sim::global_log_level();
    sim::global_log_level() = sim::LogLevel::kOff;
  }
  void TearDown() override { sim::global_log_level() = saved_; }

 private:
  sim::LogLevel saved_ = sim::LogLevel::kWarn;
};

TEST_F(FaultCampaign, AlwaysDetectsAndRecoversAcrossAllPoints) {
  constexpr std::size_t kTrialsPerPair = 6;
  std::vector<campaign::Scenario> scenarios;
  for (FaultPoint p : kPoints) {
    for (Variant v : {Variant::kFullCounter, Variant::kTinyCounter}) {
      const char* vs = v == Variant::kFullCounter ? "fc/" : "tc/";
      scenarios.push_back(campaign::make_scenario(
          vs + std::string(to_string(p)), trial_proto(v, p),
          kTrialsPerPair));
    }
  }
  campaign::Engine eng({0, 0x5EED5ull});  // hardware concurrency
  const campaign::Report rep = eng.run(scenarios);
  ASSERT_EQ(rep.scenarios.size(), kPoints.size() * 2);
  for (const auto& sc : rep.scenarios) {
    // P1: every trial detects within the bound.
    EXPECT_EQ(sc.detected, kTrialsPerPair) << sc.label;
    // P2: every trial recovers and traffic resumes afterwards.
    EXPECT_EQ(sc.recovered, kTrialsPerPair) << sc.label;
    EXPECT_EQ(sc.traffic_resumed, kTrialsPerPair) << sc.label;
    // Detection latency is positive and bounded.
    EXPECT_GT(sc.latency.count(), 0u) << sc.label;
    EXPECT_LE(sc.latency.max(), static_cast<double>(kDetectionBound))
        << sc.label;
  }
}

TEST_F(FaultCampaign, EngineRunMatchesSerialRun) {
  // The campaign itself is the determinism witness: same base seed, one
  // thread vs many, byte-identical report.
  std::vector<campaign::Scenario> scenarios;
  scenarios.push_back(campaign::make_scenario(
      "fc/b_valid_stuck",
      trial_proto(Variant::kFullCounter, FaultPoint::kBValidStuck), 8));
  const campaign::Report serial =
      campaign::Engine({1, 0xD00Dull}).run(scenarios);
  const campaign::Report parallel =
      campaign::Engine({4, 0xD00Dull}).run(scenarios);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
}

TEST_F(FaultCampaign, NoFalsePositivesUnderRandomTraffic) {
  // P3: healthy soaks across several seeds, both variants.
  std::vector<campaign::Scenario> scenarios;
  for (Variant v : {Variant::kFullCounter, Variant::kTinyCounter}) {
    campaign::TrialSpec spec = trial_proto(v, FaultPoint::kNone);
    spec.exercise_recovery = false;
    spec.soak_cycles = 10000;
    const char* vs = v == Variant::kFullCounter ? "fc/healthy" : "tc/healthy";
    scenarios.push_back(campaign::make_scenario(vs, spec, 5));
  }
  campaign::Engine eng({0, 0xBEEFull});
  const campaign::Report rep = eng.run(scenarios);
  for (const auto& sc : rep.scenarios) {
    EXPECT_EQ(sc.false_positives, 0u) << sc.label;
  }
  for (const auto& r : rep.results) {
    EXPECT_GT(r.completed_txns, 200u);
    EXPECT_EQ(r.data_mismatches, 0u);
    EXPECT_EQ(r.error_responses, 0u);
  }
}

}  // namespace
