// Randomized fault-injection campaign (§III-A.3 "injecting random
// failures at key AXI transaction stages"): for every fault point, many
// trials with randomized injection delay under randomized background
// traffic. Properties:
//   P1  the TMU always detects the fault within a bound;
//   P2  after recovery, traffic flows again;
//   P3  with no fault armed, long random soaks never flag anything.

#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "soc/reset_unit.hpp"
#include "tmu/tmu.hpp"

namespace {

using namespace axi;
using fault::FaultPoint;
using tmu::Variant;

struct CampaignBench {
  Link l_gen, l_tmu_mst, l_tmu_sub, l_mem;
  TrafficGenerator gen;
  fault::FaultInjector inj_m{"inj_m", l_gen, l_tmu_mst};
  tmu::Tmu tmu;
  fault::FaultInjector inj_s{"inj_s", l_tmu_sub, l_mem};
  MemorySubordinate mem{"mem", l_mem};
  soc::ResetUnit rst;
  sim::Simulator s;

  CampaignBench(const tmu::TmuConfig& cfg, std::uint64_t seed)
      : gen("gen", l_gen, seed),
        tmu("tmu", l_tmu_mst, l_tmu_sub, cfg),
        rst("rst", tmu.reset_req, tmu.reset_ack, [this] { mem.hw_reset(); }) {
    s.add(gen);
    s.add(inj_m);
    s.add(tmu);
    s.add(inj_s);
    s.add(mem);
    s.add(rst);
    s.reset();
    RandomTrafficConfig rc;
    rc.enabled = true;
    rc.p_new_txn = 0.25;
    rc.max_outstanding = 6;
    rc.len_max = 7;
    gen.set_random(rc);
  }
};

tmu::TmuConfig campaign_cfg(Variant v) {
  tmu::TmuConfig cfg;
  cfg.variant = v;
  cfg.max_uniq_ids = 4;
  cfg.txn_per_uniq_id = 4;
  cfg.tc_total_budget = 200;
  cfg.adaptive.enabled = true;
  cfg.adaptive.cycles_per_beat = 3;
  cfg.adaptive.cycles_per_ahead = 6;
  return cfg;
}

/// Worst-case cycles from fault activation to detection: the largest
/// adaptive budget any transaction can get in this setup, plus slack
/// for the fault to actually bite a transaction under random traffic.
constexpr std::uint64_t kDetectionBound = 3000;

class CampaignSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CampaignSweep, AlwaysDetectsWithinBound) {
  const auto [point_idx, trial] = GetParam();
  const auto point = static_cast<FaultPoint>(point_idx);
  for (Variant v : {Variant::kFullCounter, Variant::kTinyCounter}) {
    CampaignBench b(campaign_cfg(v), 1000 + trial * 7);
    sim::Rng rng(99 + trial);
    const std::uint64_t delay = rng.range(0, 400);
    auto& inj = fault::is_manager_side(point) ? b.inj_m : b.inj_s;
    inj.arm(point, delay);
    const bool detected =
        b.s.run_until([&] { return b.tmu.any_fault(); },
                      delay + kDetectionBound);
    ASSERT_TRUE(detected) << "variant=" << to_string(v)
                          << " point=" << to_string(point)
                          << " delay=" << delay;
    // P2: recovery completes and traffic resumes.
    inj.disarm();
    ASSERT_TRUE(b.s.run_until([&] { return b.tmu.recoveries() >= 1; }, 2000));
    const auto before = b.gen.completed();
    ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() > before; },
                              2000))
        << "traffic did not resume after recovery, variant=" << to_string(v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PointsXTrials, CampaignSweep,
    ::testing::Combine(
        ::testing::Values(
            static_cast<int>(FaultPoint::kAwReadyStuck),
            static_cast<int>(FaultPoint::kWReadyStuck),
            static_cast<int>(FaultPoint::kBValidStuck),
            static_cast<int>(FaultPoint::kArReadyStuck),
            static_cast<int>(FaultPoint::kRValidStuck),
            static_cast<int>(FaultPoint::kWValidStuck)),
        ::testing::Values(0, 1, 2)));

class HealthySoak : public ::testing::TestWithParam<int> {};

TEST_P(HealthySoak, NoFalsePositivesUnderRandomTraffic) {
  CampaignBench b(campaign_cfg(Variant::kFullCounter),
                  static_cast<std::uint64_t>(GetParam()));
  b.s.run(10000);
  EXPECT_FALSE(b.tmu.any_fault())
      << b.tmu.fault_log().front().describe();
  EXPECT_GT(b.gen.completed(), 200u);
  EXPECT_EQ(b.gen.data_mismatches(), 0u);
  EXPECT_EQ(b.gen.error_responses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HealthySoak,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(Campaign, TcSoakNoFalsePositives) {
  CampaignBench b(campaign_cfg(Variant::kTinyCounter), 77);
  b.s.run(10000);
  EXPECT_FALSE(b.tmu.any_fault());
  EXPECT_GT(b.gen.completed(), 200u);
}

}  // namespace
