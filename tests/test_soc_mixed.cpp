// Mixed-criticality system tests: the Cheshire model carries an Fc-class
// TMU on the Ethernet endpoint and a prescaled Tc TMU on the generic
// peripheral (§IV: "mixing Tiny-Counter and Full-Counter monitors
// within the same SoC").

#include <gtest/gtest.h>

#include "soc/cheshire.hpp"

namespace {

using axi::Addr;
using axi::Burst;
using axi::TxnDesc;
using fault::FaultPoint;
using soc::CheshireMap;
using soc::CheshireSystem;
using tmu::TmuConfig;
using tmu::Variant;

TmuConfig eth_cfg() {
  TmuConfig cfg;
  cfg.variant = Variant::kFullCounter;
  cfg.adaptive.enabled = true;
  return cfg;
}

TEST(MixedCriticality, PeriphTmuIsTinyCounterWithPrescaler) {
  CheshireSystem sys(eth_cfg());
  const TmuConfig& c = sys.periph_tmu().config();
  EXPECT_EQ(c.variant, Variant::kTinyCounter);
  EXPECT_GT(c.prescaler_step, 1u);
  EXPECT_TRUE(c.sticky_bit);
}

TEST(MixedCriticality, HealthyTrafficThroughBothMonitors) {
  CheshireSystem sys(eth_cfg());
  for (int i = 0; i < 4; ++i) {
    sys.cva6_0().push(TxnDesc{true, 0,
                              CheshireMap::kPeriphBase + i * 0x100, 7, 3,
                              Burst::kIncr});
    sys.cva6_1().push(TxnDesc{true, 1, CheshireMap::kEthTxWindow, 15, 3,
                              Burst::kIncr});
  }
  ASSERT_TRUE(sys.sim().run_until(
      [&] {
        return sys.cva6_0().completed() >= 4 && sys.cva6_1().completed() >= 4;
      },
      5000));
  EXPECT_FALSE(sys.tmu().any_fault());
  EXPECT_FALSE(sys.periph_tmu().any_fault());
}

TEST(MixedCriticality, PeripheralStallCaughtByTcMonitor) {
  CheshireSystem sys(eth_cfg());
  sys.periph_injector().arm(FaultPoint::kBValidStuck);
  sys.cva6_0().push(TxnDesc{true, 0, CheshireMap::kPeriphBase + 0x100, 3, 3,
                            Burst::kIncr});
  ASSERT_TRUE(sys.sim().run_until(
      [&] { return sys.periph_tmu().any_fault(); }, 3000));
  const auto& f = sys.periph_tmu().fault_log().front();
  EXPECT_FALSE(f.phase_valid);  // Tc: transaction-level only
  // Recovery via the peripheral's own reset unit.
  ASSERT_TRUE(sys.sim().run_until(
      [&] { return sys.periph_tmu().recoveries() >= 1; }, 2000));
  EXPECT_EQ(sys.periph_reset_unit().resets_performed(), 1u);
  // The Ethernet monitor saw nothing.
  EXPECT_FALSE(sys.tmu().any_fault());
}

TEST(MixedCriticality, ConcurrentFaultsBothRecovered) {
  CheshireSystem sys(eth_cfg());
  sys.periph_injector().arm(FaultPoint::kBValidStuck);
  sys.eth_side_injector().arm(FaultPoint::kAwReadyStuck);
  sys.cva6_0().push(TxnDesc{true, 0, CheshireMap::kPeriphBase + 0x100, 3, 3,
                            Burst::kIncr});
  sys.idma().push(TxnDesc{true, 2, CheshireMap::kEthTxWindow, 15, 3,
                          Burst::kIncr});
  ASSERT_TRUE(sys.sim().run_until(
      [&] {
        return sys.tmu().any_fault() && sys.periph_tmu().any_fault();
      },
      4000));
  // The hardware reset "repairs" both devices (otherwise an unaccepted
  // AW legitimately retries and times out again after every recovery).
  sys.eth_side_injector().disarm();
  sys.periph_injector().disarm();
  ASSERT_TRUE(sys.sim().run_until(
      [&] {
        return sys.tmu().recoveries() >= 1 &&
               sys.periph_tmu().recoveries() >= 1 &&
               sys.cpu().irqs_handled() >= 2;
      },
      4000));
  EXPECT_GE(sys.ethernet().hw_resets(), 1u);
  EXPECT_GE(sys.periph_reset_unit().resets_performed(), 1u);
  // After the repair, the retried iDMA write completes.
  ASSERT_TRUE(sys.sim().run_until(
      [&] { return sys.idma().completed() >= 1; }, 4000));
}

TEST(MixedCriticality, CpuHandlerServicesBothSources) {
  CheshireSystem sys(eth_cfg());
  sys.periph_injector().arm(FaultPoint::kBValidStuck);
  sys.cva6_0().push(TxnDesc{true, 0, CheshireMap::kPeriphBase + 0x100, 0, 3,
                            Burst::kIncr});
  ASSERT_TRUE(sys.sim().run_until(
      [&] { return sys.cpu().irqs_handled() >= 1; }, 4000));
  EXPECT_GE(sys.cpu().faults_read(), 1u);
  sys.sim().run(2);
  EXPECT_FALSE(sys.periph_tmu().irq.read());
}

TEST(MixedCriticality, DetectionGranularityDiffers) {
  // Same stall on both endpoints: Fc pinpoints a phase, Tc reports at
  // the (coarser, prescaled) transaction budget.
  CheshireSystem sys(eth_cfg());
  sys.eth_side_injector().arm(FaultPoint::kBValidStuck);
  sys.periph_injector().arm(FaultPoint::kBValidStuck);
  sys.idma().push(TxnDesc{true, 2, CheshireMap::kEthTxWindow, 3, 3,
                          Burst::kIncr});
  sys.cva6_0().push(TxnDesc{true, 0, CheshireMap::kPeriphBase + 0x100, 3, 3,
                            Burst::kIncr});
  ASSERT_TRUE(sys.sim().run_until(
      [&] {
        return sys.tmu().any_fault() && sys.periph_tmu().any_fault();
      },
      5000));
  EXPECT_TRUE(sys.tmu().fault_log().front().phase_valid);
  EXPECT_FALSE(sys.periph_tmu().fault_log().front().phase_valid);
  EXPECT_LT(sys.tmu().fault_log().front().cycle,
            sys.periph_tmu().fault_log().front().cycle);
}

}  // namespace
