#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/scoreboard.hpp"
#include "axi/traffic_gen.hpp"
#include "sim/kernel.hpp"
#include "soc/llc.hpp"

namespace {

using namespace axi;
using soc::LastLevelCache;
using soc::LlcConfig;

struct LlcFixture : ::testing::Test {
  Link up, down;
  TrafficGenerator gen{"gen", up, 5};
  LastLevelCache llc{"llc", up, down};
  MemoryConfig slow_cfg = [] {
    MemoryConfig c;
    c.r_first_latency = 20;  // make misses clearly slower than hits
    return c;
  }();
  MemorySubordinate mem{"mem", down, slow_cfg};
  Scoreboard sb{"sb", up};
  sim::Simulator s;

  void SetUp() override {
    s.add(gen);
    s.add(llc);
    s.add(mem);
    s.add(sb);
    s.reset();
  }

  void complete(std::size_t n, std::uint64_t budget = 5000) {
    ASSERT_TRUE(s.run_until([&] { return gen.completed() >= n; }, budget))
        << gen.completed() << "/" << n;
  }
};

TEST_F(LlcFixture, WriteThroughReachesMemory) {
  gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  complete(1);
  for (int b = 0; b < 4; ++b) {
    const Addr a = 0x100 + 8 * b;
    EXPECT_EQ(mem.peek_beat(a, 3), pattern_data(a));
  }
  EXPECT_EQ(sb.violation_count(), 0u);
}

TEST_F(LlcFixture, FirstReadMissesSecondHits) {
  gen.push(TxnDesc{false, 0, 0x200, 3, 3, Burst::kIncr});
  complete(1);
  EXPECT_EQ(llc.misses(), 1u);
  EXPECT_EQ(llc.hits(), 0u);
  gen.push(TxnDesc{false, 0, 0x200, 3, 3, Burst::kIncr});
  complete(2);
  EXPECT_EQ(llc.hits(), 1u);
  EXPECT_EQ(gen.data_mismatches(), 0u);
}

TEST_F(LlcFixture, HitIsFasterThanMiss) {
  gen.push(TxnDesc{false, 0, 0x300, 3, 3, Burst::kIncr});
  complete(1);
  gen.push(TxnDesc{false, 0, 0x300, 3, 3, Burst::kIncr});
  complete(2);
  const auto miss_lat =
      gen.records()[0].complete_cycle - gen.records()[0].accept_cycle;
  const auto hit_lat =
      gen.records()[1].complete_cycle - gen.records()[1].accept_cycle;
  EXPECT_LT(hit_lat + 10, miss_lat);
}

TEST_F(LlcFixture, WriteUpdatesCachedLine) {
  // Read (allocate), overwrite, read again: the hit must return the new
  // data, not the stale allocation.
  gen.push(TxnDesc{true, 0, 0x400, 3, 3, Burst::kIncr});
  complete(1);
  gen.push(TxnDesc{false, 0, 0x400, 3, 3, Burst::kIncr});
  complete(2);  // allocates
  gen.push(TxnDesc{true, 0, 0x400, 3, 3, Burst::kIncr});
  complete(3);  // write-through + update
  gen.push(TxnDesc{false, 0, 0x400, 3, 3, Burst::kIncr});
  complete(4);  // hit with fresh data
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_GE(llc.hits(), 1u);
}

TEST_F(LlcFixture, ConflictEvictionStillCorrect) {
  // Two addresses mapping to the same direct-mapped line (256 lines *
  // 64B = 16 KiB apart).
  const Addr a0 = 0x0500, a1 = 0x0500 + 256 * 64;
  gen.push(TxnDesc{true, 0, a0, 0, 3, Burst::kIncr});
  gen.push(TxnDesc{true, 0, a1, 0, 3, Burst::kIncr});
  complete(2);
  gen.push(TxnDesc{false, 0, a0, 0, 3, Burst::kIncr});  // miss + allocate
  complete(3);
  gen.push(TxnDesc{false, 0, a1, 0, 3, Burst::kIncr});  // conflict: evicts
  complete(4);
  gen.push(TxnDesc{false, 0, a0, 0, 3, Burst::kIncr});  // miss again
  complete(5);
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_GE(llc.misses(), 3u);
}

TEST_F(LlcFixture, RandomTrafficSoakCorrectAndMixed) {
  RandomTrafficConfig rc;
  rc.enabled = true;
  rc.p_new_txn = 0.3;
  rc.addr_max = 0x0FFF;  // small footprint: plenty of re-references
  rc.len_max = 7;
  gen.set_random(rc);
  s.run(8000);
  EXPECT_GT(gen.completed(), 100u);
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(sb.violation_count(), 0u)
      << sb.violations()[0].rule << " " << sb.violations()[0].detail;
  EXPECT_GT(llc.hits(), 0u);
  EXPECT_GT(llc.misses(), 0u);
  EXPECT_GT(llc.hit_rate(), 0.1);
}

TEST_F(LlcFixture, SameIdHitNeverOvertakesMiss) {
  // A miss followed by a hit with the SAME id: responses must stay in
  // order (the LLC demotes the hit).
  gen.push(TxnDesc{false, 2, 0x600, 3, 3, Burst::kIncr});
  complete(1);  // allocate 0x600
  // Now: miss (0x10000) then would-be-hit (0x600), same ID, both queued.
  gen.push(TxnDesc{false, 2, 0x10000 & 0xFFF8, 3, 3, Burst::kIncr});
  gen.push(TxnDesc{false, 2, 0x600, 3, 3, Burst::kIncr});
  complete(3);
  EXPECT_EQ(sb.violation_count(), 0u);
  EXPECT_EQ(gen.data_mismatches(), 0u);
  // Completion order preserved.
  EXPECT_LT(gen.records()[1].complete_cycle, gen.records()[2].complete_cycle);
}

}  // namespace
