// Edge-case coverage of the guard FSMs: burst types, interleaved IDs,
// slow-ready managers, configuration corner cases, statistics.

#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "sim/kernel.hpp"
#include "soc/reset_unit.hpp"
#include "tmu/regs.hpp"
#include "tmu/tmu.hpp"

namespace {

using namespace axi;
using fault::FaultPoint;
using tmu::Variant;

struct EdgeBench {
  Link l_gen, l_tmu_sub, l_mem;
  TrafficGenerator gen{"gen", l_gen};
  tmu::Tmu tmu;
  fault::FaultInjector inj{"inj", l_tmu_sub, l_mem};
  MemorySubordinate mem{"mem", l_mem};
  soc::ResetUnit rst;
  sim::Simulator s;

  explicit EdgeBench(const tmu::TmuConfig& cfg)
      : tmu("tmu", l_gen, l_tmu_sub, cfg),
        rst("rst", tmu.reset_req, tmu.reset_ack, [this] { mem.hw_reset(); }) {
    s.add(gen);
    s.add(tmu);
    s.add(inj);
    s.add(mem);
    s.add(rst);
    s.reset();
  }
};

tmu::TmuConfig adaptive_cfg(Variant v = Variant::kFullCounter) {
  tmu::TmuConfig cfg;
  cfg.variant = v;
  cfg.adaptive.enabled = true;
  return cfg;
}

TEST(GuardEdge, WrapBurstMonitoredCleanly) {
  EdgeBench b(adaptive_cfg());
  b.gen.push(TxnDesc{true, 0, 0x1010, 3, 3, Burst::kWrap});
  b.gen.push(TxnDesc{false, 0, 0x1010, 3, 3, Burst::kWrap});
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 2; }, 500));
  EXPECT_FALSE(b.tmu.any_fault());
  EXPECT_EQ(b.gen.data_mismatches(), 0u);
}

TEST(GuardEdge, FixedBurstMonitoredCleanly) {
  EdgeBench b(adaptive_cfg());
  b.gen.push(TxnDesc{true, 1, 0x2000, 7, 3, Burst::kFixed});
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 1; }, 500));
  EXPECT_FALSE(b.tmu.any_fault());
  EXPECT_EQ(b.tmu.write_guard().stats().beats, 8u);
}

TEST(GuardEdge, InterleavedIdsCompleteInOrderPerId) {
  EdgeBench b(adaptive_cfg());
  for (int i = 0; i < 12; ++i) {
    b.gen.push(TxnDesc{true, static_cast<Id>(i % 3),
                       static_cast<Addr>(i * 0x40), 3, 3, Burst::kIncr});
  }
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 12; }, 3000));
  EXPECT_FALSE(b.tmu.any_fault());
  EXPECT_EQ(b.tmu.write_guard().stats().completed, 12u);
  EXPECT_EQ(b.tmu.write_guard().stats().enqueued, 12u);
}

TEST(GuardEdge, SlowManagerReadySidesTolerated) {
  EdgeBench b(adaptive_cfg());
  b.gen.set_b_ready_delay(4);
  b.gen.set_r_ready_delay(4);
  b.gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  b.gen.push(TxnDesc{false, 0, 0x100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 2; }, 1000));
  EXPECT_FALSE(b.tmu.any_fault());
}

TEST(GuardEdge, SlowManagerBeyondBudgetIsCaught) {
  tmu::TmuConfig cfg;
  cfg.budgets.b_vld_b_rdy = 6;
  cfg.adaptive.enabled = false;
  EdgeBench b(cfg);
  b.gen.set_b_ready_delay(50);  // manager dawdles past the budget
  b.gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until([&] { return b.tmu.any_fault(); }, 500));
  EXPECT_EQ(static_cast<tmu::WritePhase>(b.tmu.fault_log().front().phase),
            tmu::WritePhase::kBVldBRdy);
}

TEST(GuardEdge, WGapWithinBudgetTolerated) {
  EdgeBench b(adaptive_cfg());
  b.gen.set_w_gap(3);
  b.gen.push(TxnDesc{true, 0, 0x100, 7, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 1; }, 1000));
  EXPECT_FALSE(b.tmu.any_fault());
}

TEST(GuardEdge, IrqDisabledStillLogsAndResets) {
  tmu::TmuConfig cfg = adaptive_cfg();
  cfg.irq_enabled = false;
  EdgeBench b(cfg);
  b.inj.arm(FaultPoint::kBValidStuck);
  b.gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until([&] { return b.tmu.any_fault(); }, 1000));
  b.s.run(2);
  EXPECT_FALSE(b.tmu.irq.read());          // masked
  EXPECT_EQ(b.tmu.resets_requested(), 1u);  // recovery still runs
}

TEST(GuardEdge, ResetOnFaultDisabledSignalsIrqOnly) {
  tmu::TmuConfig cfg = adaptive_cfg();
  cfg.reset_on_fault = false;
  EdgeBench b(cfg);
  b.inj.arm(FaultPoint::kBValidStuck);
  b.gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until([&] { return b.tmu.any_fault(); }, 1000));
  b.s.run(20);
  EXPECT_TRUE(b.tmu.irq.read());
  EXPECT_EQ(b.rst.resets_performed(), 0u);
  EXPECT_EQ(b.tmu.resets_requested(), 0u);
}

TEST(GuardEdge, TcAdaptiveBudgetScalesWithBurst) {
  tmu::TmuConfig cfg;
  cfg.variant = Variant::kTinyCounter;
  cfg.tc_total_budget = 50;
  cfg.adaptive.enabled = true;
  cfg.adaptive.cycles_per_beat = 2;
  EdgeBench b(cfg);
  b.inj.arm(FaultPoint::kAwReadyStuck);
  b.gen.push(TxnDesc{true, 0, 0x100, 99, 3, Burst::kIncr});  // 100 beats
  ASSERT_TRUE(b.s.run_until([&] { return b.tmu.any_fault(); }, 1000));
  // Budget = 50 + 2*99 = 248.
  EXPECT_EQ(b.tmu.fault_log().front().budget, 50u + 2 * 99);
}

TEST(GuardEdge, ReadGuardStatsAndPerfLog) {
  EdgeBench b(adaptive_cfg());
  for (int i = 0; i < 5; ++i) {
    b.gen.push(TxnDesc{false, 0, static_cast<Addr>(i * 0x40), 7, 3,
                       Burst::kIncr});
  }
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 5; }, 2000));
  const auto& st = b.tmu.read_guard().stats();
  EXPECT_EQ(st.completed, 5u);
  EXPECT_EQ(st.beats, 40u);
  EXPECT_EQ(b.tmu.read_guard().perf_log().size(), 5u);
  EXPECT_GT(st.total_latency.mean(), 0.0);
}

TEST(GuardEdge, LatencyStatRegistersExposed) {
  EdgeBench b(adaptive_cfg());
  b.gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  b.gen.push(TxnDesc{false, 0, 0x100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 2; }, 500));
  using namespace tmu::regs;
  EXPECT_GT(b.tmu.read_reg(kWrLatAvg), 0u);
  EXPECT_GT(b.tmu.read_reg(kRdLatAvg), 0u);
  EXPECT_LE(b.tmu.read_reg(kWrLatMin), b.tmu.read_reg(kWrLatMax));
  EXPECT_EQ(b.tmu.read_reg(kWrBeats), 4u);
  EXPECT_EQ(b.tmu.read_reg(kRdBeats), 4u);
}

TEST(GuardEdge, FaultPackRoundTrip) {
  const auto packed = tmu::regs::pack_fault(
      /*kind=*/2, /*phase=*/4, /*is_write=*/true, /*phase_valid=*/true,
      /*id=*/0x155, /*elapsed=*/300);
  EXPECT_EQ(packed & 0xF, 2u);
  EXPECT_EQ((packed >> 4) & 0xF, 4u);
  EXPECT_EQ((packed >> 8) & 1u, 1u);
  EXPECT_EQ((packed >> 9) & 1u, 1u);
  EXPECT_EQ((packed >> 10) & 0x3FF, 0x155u);
  EXPECT_EQ(packed >> 20, 300u);
}

TEST(GuardEdge, FaultPackSaturatesElapsed) {
  const auto packed =
      tmu::regs::pack_fault(0, 0, false, false, 0, 1'000'000);
  EXPECT_EQ(packed >> 20, 0xFFFu);
}

TEST(GuardEdge, SequentialFaultsBothLogged) {
  EdgeBench b(adaptive_cfg());
  // Fault 1 + recovery.
  b.inj.arm(FaultPoint::kBValidStuck);
  b.gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until([&] { return b.tmu.recoveries() >= 1; }, 1000));
  b.inj.disarm();
  b.tmu.clear_irq();
  b.s.run(10);
  // Fault 2 (different kind) + recovery.
  b.inj.arm(FaultPoint::kSpuriousB);
  ASSERT_TRUE(b.s.run_until([&] { return b.tmu.recoveries() >= 2; }, 1000));
  ASSERT_GE(b.tmu.fault_log().size(), 2u);
  EXPECT_EQ(b.tmu.fault_log()[0].kind, tmu::FaultKind::kTimeout);
  EXPECT_EQ(b.tmu.fault_log()[1].kind, tmu::FaultKind::kUnrequested);
}

TEST(GuardEdge, SingleBeatBurstPhases) {
  EdgeBench b(adaptive_cfg());
  b.gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 1; }, 300));
  const auto& log = b.tmu.write_guard().perf_log();
  ASSERT_EQ(log.size(), 1u);
  // A 1-beat burst never dwells in WFIRST_WLAST.
  EXPECT_EQ(log[0].phase_cycles[static_cast<unsigned>(
                tmu::WritePhase::kWFirstWLast)],
            0u);
}

TEST(GuardEdge, MaxLengthBurstMonitored) {
  tmu::TmuConfig cfg = adaptive_cfg();
  cfg.adaptive.cycles_per_beat = 2;
  EdgeBench b(cfg);
  b.gen.push(TxnDesc{true, 0, 0x2000, 255, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 1; }, 2000));
  EXPECT_FALSE(b.tmu.any_fault());
  EXPECT_EQ(b.tmu.write_guard().stats().beats, 256u);
}

// Detection exactness sweep: for every write phase and several budgets,
// the flagged elapsed equals the configured budget (step 1, no adaptive).
struct PhaseBudgetCase {
  FaultPoint point;
  tmu::WritePhase phase;
  std::uint32_t budget;
};

class PhaseBudgetSweep : public ::testing::TestWithParam<PhaseBudgetCase> {};

TEST_P(PhaseBudgetSweep, ElapsedEqualsBudget) {
  const auto c = GetParam();
  tmu::TmuConfig cfg;
  cfg.adaptive.enabled = false;
  switch (c.phase) {
    case tmu::WritePhase::kAwVldAwRdy: cfg.budgets.aw_vld_aw_rdy = c.budget; break;
    case tmu::WritePhase::kAwRdyWVld: cfg.budgets.aw_rdy_w_vld = c.budget; break;
    case tmu::WritePhase::kWVldWRdy: cfg.budgets.w_vld_w_rdy = c.budget; break;
    case tmu::WritePhase::kWLastBVld: cfg.budgets.w_last_b_vld = c.budget; break;
    default: break;
  }
  EdgeBench b(cfg);
  auto& inj = fault::is_manager_side(c.point) ? b.inj : b.inj;
  // Manager-side faults need the upstream injector; this sweep only
  // uses subordinate-side points plus kWValidStuck handled below.
  if (fault::is_manager_side(c.point)) {
    // Re-wire: use an upstream injector bench instead.
    Link l_gen, l_tmu_mst, l_tmu_sub, l_mem;
    TrafficGenerator gen("gen", l_gen);
    fault::FaultInjector inj_m("inj_m", l_gen, l_tmu_mst);
    tmu::Tmu monitor("tmu", l_tmu_mst, l_tmu_sub, cfg);
    MemorySubordinate mem("mem", l_tmu_sub);
    sim::Simulator s;
    s.add(gen);
    s.add(inj_m);
    s.add(monitor);
    s.add(mem);
    s.reset();
    inj_m.arm(c.point);
    gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
    ASSERT_TRUE(s.run_until([&] { return monitor.any_fault(); },
                            c.budget + 200));
    EXPECT_EQ(monitor.fault_log().front().elapsed, c.budget);
    return;
  }
  inj.arm(c.point);
  b.gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until([&] { return b.tmu.any_fault(); },
                            c.budget + 200));
  const auto& f = b.tmu.fault_log().front();
  EXPECT_EQ(static_cast<tmu::WritePhase>(f.phase), c.phase);
  EXPECT_EQ(f.elapsed, c.budget);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, PhaseBudgetSweep,
    ::testing::Values(
        PhaseBudgetCase{FaultPoint::kAwReadyStuck,
                        tmu::WritePhase::kAwVldAwRdy, 5},
        PhaseBudgetCase{FaultPoint::kAwReadyStuck,
                        tmu::WritePhase::kAwVldAwRdy, 77},
        PhaseBudgetCase{FaultPoint::kWValidStuck,
                        tmu::WritePhase::kAwRdyWVld, 33},
        PhaseBudgetCase{FaultPoint::kWReadyStuck,
                        tmu::WritePhase::kWVldWRdy, 12},
        PhaseBudgetCase{FaultPoint::kBValidStuck,
                        tmu::WritePhase::kWLastBVld, 64}));

}  // namespace

namespace {

using namespace axi;

TEST(LogBounds, FaultLogFifoDropsAndCounts) {
  tmu::TmuConfig cfg;
  cfg.fault_log_depth = 2;
  cfg.adaptive.enabled = true;
  EdgeBench b(cfg);
  for (int round = 0; round < 4; ++round) {
    b.inj.arm(fault::FaultPoint::kSpuriousB);
    ASSERT_TRUE(b.s.run_until(
        [&] {
          return b.tmu.recoveries() >= static_cast<std::uint64_t>(round + 1);
        },
        2000))
        << "round " << round;
    b.inj.disarm();
    b.tmu.clear_irq();
    b.s.run(5);
  }
  EXPECT_EQ(b.tmu.fault_log().size(), 2u);     // FIFO bound
  EXPECT_EQ(b.tmu.fault_log_dropped(), 2u);    // the rest counted
  using namespace tmu::regs;
  EXPECT_EQ(b.tmu.read_reg(kLogDropped) & 0xFFFF, 2u);
}

TEST(LogBounds, PerfLogFifoDropsAndCounts) {
  tmu::TmuConfig cfg = adaptive_cfg();
  cfg.perf_log_depth = 3;
  EdgeBench b(cfg);
  for (int i = 0; i < 8; ++i) {
    b.gen.push(TxnDesc{true, 0, static_cast<Addr>(i * 0x40), 0, 3,
                       Burst::kIncr});
  }
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 8; }, 1000));
  EXPECT_EQ(b.tmu.write_guard().perf_log().size(), 3u);
  EXPECT_EQ(b.tmu.write_guard().perf_log_dropped(), 5u);
  using namespace tmu::regs;
  EXPECT_EQ(b.tmu.read_reg(kLogDropped) >> 16, 5u);
}

}  // namespace
