// tmu-soc-snapshot-v1 on-disk format: strict decode with every
// rejection path pinned by byte mutation, restore() contract
// violations, and the committed fixture byte-pin (decode -> re-encode
// byte-identical AND re-capture byte-identical, so the walk itself is
// pinned cross-platform, not just the framing).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "snapshot/snapshot.hpp"
#include "soc/builder.hpp"
#include "soc/topologies.hpp"

namespace {

using snapshot::Snapshot;
using snapshot::SnapshotError;

// The committed fixture's recipe. tests/data/ip_testbench_warm.tmusnap
// is this desc warmed for kFixtureCycle cycles — regenerating it here
// and comparing byte-for-byte pins the whole visitor walk, so any
// serde change that silently reorders or resizes state fails loudly.
soc::SocDesc fixture_desc() {
  tmu::TmuConfig cfg;
  cfg.variant = tmu::Variant::kFullCounter;
  cfg.tc_total_budget = 200;
  soc::SocDesc d = soc::ip_testbench_desc(cfg);
  d.managers.front().seed = 0xABCDEF;
  d.managers.front().traffic.enabled = true;
  d.managers.front().traffic.p_new_txn = 0.3;
  d.managers.front().traffic.len_max = 7;
  return d;
}
constexpr std::uint64_t kFixtureCycle = 300;
constexpr const char* kFixtureFile = "/ip_testbench_warm.tmusnap";

Snapshot small_snapshot(std::uint64_t cycles = 50) {
  const std::unique_ptr<soc::Soc> soc =
      soc::SocBuilder::build(soc::grid_desc(2, 2, 2));
  soc->sim().run(cycles);
  return snapshot::capture(*soc);
}

// Expects `fn` to throw a SnapshotError whose message contains `needle`
// (and carries the format's error prefix).
template <typename Fn>
void expect_rejects(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected SnapshotError containing \"" << needle << "\"";
  } catch (const SnapshotError& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.rfind("tmu-soc-snapshot:", 0), 0u) << what;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
  }
}

std::vector<unsigned char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

TEST(SnapshotFormat, ImageLayoutAndRoundTrip) {
  const Snapshot snap = small_snapshot();
  const std::vector<unsigned char> image = snapshot::encode(snap);
  ASSERT_EQ(image.size(), snapshot::kHeaderBytes + snap.payload.size() +
                              snapshot::kChecksumBytes);
  EXPECT_EQ(std::memcmp(image.data(), snapshot::kMagic,
                        snapshot::kMagicBytes),
            0);
  EXPECT_EQ(snapshot::decode(image), snap);
}

TEST(SnapshotFormat, FileRoundTripIsExact) {
  const Snapshot snap = small_snapshot();
  const std::string path = "snapshot_format_roundtrip.tmusnap";
  snapshot::write_file(snap, path);
  const Snapshot loaded = snapshot::read_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded, snap);
}

TEST(SnapshotFormat, RejectsTruncationAtEveryBoundary) {
  const std::vector<unsigned char> image = snapshot::encode(small_snapshot());
  const std::size_t cuts[] = {0,
                              1,
                              snapshot::kMagicBytes,
                              snapshot::kHeaderBytes - 1,
                              snapshot::kHeaderBytes,
                              snapshot::kHeaderBytes + 7,  // < min file size
                              image.size() / 2,
                              image.size() - 1};
  for (std::size_t cut : cuts) {
    ASSERT_LT(cut, image.size());
    // Below the minimum the size check names the floor; above it the
    // payload count no longer matches the bytes actually present.
    const bool below_min =
        cut < snapshot::kHeaderBytes + snapshot::kChecksumBytes;
    expect_rejects([&] { snapshot::decode(image.data(), cut); },
                   below_min ? "bytes" : "disagrees");
  }
}

TEST(SnapshotFormat, RejectsBadMagic) {
  std::vector<unsigned char> image = snapshot::encode(small_snapshot());
  image[0] ^= 0x01;
  expect_rejects([&] { snapshot::decode(image); }, "bad magic");
}

TEST(SnapshotFormat, RejectsUnsupportedVersion) {
  std::vector<unsigned char> image = snapshot::encode(small_snapshot());
  image[snapshot::kMagicBytes] = 0x7E;  // version field, checked pre-checksum
  expect_rejects([&] { snapshot::decode(image); }, "unsupported version 126");
}

TEST(SnapshotFormat, RejectsPayloadCountDisagreement) {
  std::vector<unsigned char> image = snapshot::encode(small_snapshot());
  image[snapshot::kMagicBytes + 20] ^= 0x01;  // payload-count field LSB
  expect_rejects([&] { snapshot::decode(image); }, "disagrees");
}

TEST(SnapshotFormat, RejectsChecksumTamper) {
  // Flipping any payload byte or any checksum byte must trip the
  // checksum before the payload is ever interpreted.
  std::vector<unsigned char> a = snapshot::encode(small_snapshot());
  a[snapshot::kHeaderBytes + a.size() / 3] ^= 0x40;
  expect_rejects([&] { snapshot::decode(a); }, "checksum mismatch");

  std::vector<unsigned char> b = snapshot::encode(small_snapshot());
  b.back() ^= 0x80;
  expect_rejects([&] { snapshot::decode(b); }, "checksum mismatch");
}

TEST(SnapshotRestore, RejectsTopologyHashMismatch) {
  const Snapshot snap = small_snapshot();
  expect_rejects([&] { snapshot::fork(snap, soc::grid_desc(2, 2, 1)); },
                 "topology hash mismatch");
}

TEST(SnapshotRestore, RejectsSchedPolicyMismatch) {
  // Payload bytes [0, 4) are the captured sched policy — the first
  // strict check inside the walk. The image-level checksum would catch
  // this on disk; in-memory tampering must still die with a named error.
  Snapshot snap = small_snapshot();
  snap.payload[0] ^= 0x01;
  expect_rejects([&] { snapshot::fork(snap, soc::grid_desc(2, 2, 2)); },
                 "sched policy");
}

TEST(SnapshotRestore, RejectsHeaderCycleDisagreement) {
  Snapshot snap = small_snapshot();
  snap.cycle += 1;
  expect_rejects([&] { snapshot::fork(snap, soc::grid_desc(2, 2, 2)); },
                 "disagrees with the payload's cycle");
}

TEST(SnapshotRestore, RejectsPayloadUnderrun) {
  Snapshot snap = small_snapshot();
  snap.payload.pop_back();
  expect_rejects([&] { snapshot::fork(snap, soc::grid_desc(2, 2, 2)); },
                 "payload underrun");
}

TEST(SnapshotRestore, RejectsTrailingPayloadBytes) {
  Snapshot snap = small_snapshot();
  snap.payload.push_back(0);
  expect_rejects([&] { snapshot::fork(snap, soc::grid_desc(2, 2, 2)); },
                 "trailing bytes");
}

TEST(SnapshotRestore, SurvivesRandomPayloadCorruption) {
  // A corrupted payload either fails the walk with a SnapshotError or
  // loads as some other (reachable-shape) state — it must never crash
  // or allocate unboundedly. Exercises the count/size strictness checks.
  const Snapshot clean = small_snapshot();
  sim::Rng rng(0xC0DE);
  for (int i = 0; i < 30; ++i) {
    Snapshot snap = clean;
    snap.payload[rng.range(0, snap.payload.size() - 1)] ^=
        static_cast<unsigned char>(rng.range(1, 255));
    try {
      const std::unique_ptr<soc::Soc> soc =
          snapshot::fork(snap, soc::grid_desc(2, 2, 2));
      soc->sim().run(10);  // whatever loaded must still simulate
    } catch (const SnapshotError& e) {
      EXPECT_EQ(std::string(e.what()).rfind("tmu-soc-snapshot:", 0), 0u);
    }
  }
}

TEST(SnapshotFixture, FixtureDecodesAndReencodesByteIdentically) {
  const std::string path = std::string(TMU_TEST_DATA_DIR) + kFixtureFile;
  const std::vector<unsigned char> bytes = read_bytes(path);
  ASSERT_FALSE(bytes.empty());
  const Snapshot snap = snapshot::decode(bytes);
  EXPECT_EQ(snap.cycle, kFixtureCycle);
  EXPECT_EQ(snap.topology_hash, fixture_desc().hash());
  EXPECT_EQ(snapshot::encode(snap), bytes);
}

TEST(SnapshotFixture, RecaptureIsByteIdenticalToFixture) {
  // The strong pin: warming the fixture desc today must reproduce the
  // committed image bit-for-bit — serde layout, RNG streams, scheduler
  // bookkeeping and all.
  const std::string path = std::string(TMU_TEST_DATA_DIR) + kFixtureFile;
  const std::vector<unsigned char> bytes = read_bytes(path);
  const std::unique_ptr<soc::Soc> soc =
      soc::SocBuilder::build(fixture_desc());
  soc->sim().run(kFixtureCycle);
  EXPECT_EQ(snapshot::encode(snapshot::capture(*soc)), bytes);
}

TEST(SnapshotFixture, FixtureForksAndContinuesLikeColdRun) {
  const std::string path = std::string(TMU_TEST_DATA_DIR) + kFixtureFile;
  const Snapshot snap = snapshot::decode(read_bytes(path));
  const std::unique_ptr<soc::Soc> forked =
      snapshot::fork(snap, fixture_desc());
  EXPECT_EQ(forked->sim().cycle(), kFixtureCycle);
  forked->sim().run(200);

  const std::unique_ptr<soc::Soc> cold =
      soc::SocBuilder::build(fixture_desc());
  cold->sim().run(kFixtureCycle + 200);
  EXPECT_EQ(forked->sim().cycle(), cold->sim().cycle());
  EXPECT_EQ(forked->sim().module_evals(), cold->sim().module_evals());
  EXPECT_EQ(forked->metrics().snapshot().to_json(),
            cold->metrics().snapshot().to_json());
}

}  // namespace
