#include <gtest/gtest.h>

#include "tmu/id_remap.hpp"

namespace {

using tmu::IdRemapper;

TEST(IdRemap, AllocatesCompactTids) {
  IdRemapper r(4);
  auto t0 = r.admit(0x700);
  auto t1 = r.admit(0x033);
  ASSERT_TRUE(t0 && t1);
  EXPECT_NE(*t0, *t1);
  EXPECT_LT(*t0, 4);
  EXPECT_LT(*t1, 4);
  EXPECT_EQ(r.active_ids(), 2u);
}

TEST(IdRemap, SameIdReusesSlot) {
  IdRemapper r(2);
  auto a = r.admit(5);
  auto b = r.admit(5);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(r.outstanding(*a), 2u);
  EXPECT_EQ(r.active_ids(), 1u);
}

TEST(IdRemap, SaturationRefusesNewIds) {
  IdRemapper r(2);
  ASSERT_TRUE(r.admit(1));
  ASSERT_TRUE(r.admit(2));
  EXPECT_FALSE(r.can_admit(3));
  EXPECT_FALSE(r.admit(3).has_value());
  // But an already-mapped ID is still admittable.
  EXPECT_TRUE(r.can_admit(1));
  EXPECT_TRUE(r.admit(1).has_value());
}

TEST(IdRemap, ReleaseFreesSlotAtZero) {
  IdRemapper r(1);
  auto t = r.admit(9);
  ASSERT_TRUE(t);
  EXPECT_FALSE(r.can_admit(10));
  r.release(*t);
  EXPECT_TRUE(r.can_admit(10));
  auto t2 = r.admit(10);
  ASSERT_TRUE(t2);
  EXPECT_EQ(*t2, *t);  // slot recycled
}

TEST(IdRemap, ReleaseOnlyFreesAtZeroCount) {
  IdRemapper r(1);
  auto t = r.admit(9);
  r.admit(9);
  r.release(*t);
  EXPECT_FALSE(r.can_admit(10));  // one still outstanding
  r.release(*t);
  EXPECT_TRUE(r.can_admit(10));
}

TEST(IdRemap, OriginalIdTracked) {
  IdRemapper r(4);
  auto t = r.admit(0xABC);
  ASSERT_TRUE(t);
  EXPECT_EQ(r.original_id(*t), 0xABCu);
}

TEST(IdRemap, LookupMissReturnsNullopt) {
  IdRemapper r(4);
  EXPECT_FALSE(r.lookup(77).has_value());
}

TEST(IdRemap, ClearResetsEverything) {
  IdRemapper r(2);
  r.admit(1);
  r.admit(2);
  r.clear();
  EXPECT_EQ(r.active_ids(), 0u);
  EXPECT_TRUE(r.can_admit(3));
}

// Property: wide sparse ID space maps into [0, capacity).
class RemapSweep : public ::testing::TestWithParam<int> {};

TEST_P(RemapSweep, SparseIdsCompacted) {
  const int cap = GetParam();
  IdRemapper r(cap);
  for (int i = 0; i < cap; ++i) {
    auto t = r.admit(static_cast<axi::Id>(i * 0x1357 + 11));
    ASSERT_TRUE(t);
    EXPECT_LT(*t, cap);
  }
  EXPECT_EQ(r.active_ids(), static_cast<std::uint32_t>(cap));
  EXPECT_FALSE(r.can_admit(0xFFFF));
}

INSTANTIATE_TEST_SUITE_P(Caps, RemapSweep, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
