#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "sim/kernel.hpp"
#include "sim/vcd.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Vcd, HeaderAndScalarChanges) {
  const std::string path = "/tmp/tmu_vcd_test1.vcd";
  {
    sim::VcdWriter vcd(path);
    ASSERT_TRUE(vcd.ok());
    int v = 0;
    vcd.probe("sig", 1, [&] { return static_cast<std::uint64_t>(v); });
    vcd.sample(0);
    v = 1;
    vcd.sample(1);
    vcd.sample(2);  // unchanged: no emission
    vcd.flush();
  }
  const std::string s = slurp(path);
  EXPECT_NE(s.find("$timescale"), std::string::npos);
  EXPECT_NE(s.find("$var wire 1 ! sig $end"), std::string::npos);
  EXPECT_NE(s.find("#0\n0!"), std::string::npos);
  EXPECT_NE(s.find("#1\n1!"), std::string::npos);
  // #2 has no value line after it.
  EXPECT_NE(s.find("#2\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vcd, VectorProbes) {
  const std::string path = "/tmp/tmu_vcd_test2.vcd";
  {
    sim::VcdWriter vcd(path);
    std::uint64_t v = 0;
    vcd.probe("bus", 8, [&] { return v; });
    vcd.sample(0);
    v = 0xA5;
    vcd.sample(1);
    vcd.flush();
  }
  const std::string s = slurp(path);
  EXPECT_NE(s.find("$var wire 8 ! bus $end"), std::string::npos);
  EXPECT_NE(s.find("b10100101 !"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vcd, EndToEndWithSimulator) {
  const std::string path = "/tmp/tmu_vcd_test3.vcd";
  {
    axi::Link link;
    axi::TrafficGenerator gen("gen", link);
    axi::MemorySubordinate mem("mem", link);
    sim::Simulator s;
    s.add(gen);
    s.add(mem);
    sim::VcdWriter vcd(path);
    vcd.probe("aw_valid", 1,
              [&] { return std::uint64_t{link.req.read().aw_valid}; });
    vcd.probe("w_valid", 1,
              [&] { return std::uint64_t{link.req.read().w_valid}; });
    vcd.probe("b_valid", 1,
              [&] { return std::uint64_t{link.rsp.read().b_valid}; });
    s.on_cycle([&](std::uint64_t c) { vcd.sample(c); });
    s.reset();
    gen.push(axi::TxnDesc{true, 0, 0x100, 3, 3, axi::Burst::kIncr});
    s.run_until([&] { return gen.completed() >= 1; }, 200);
    vcd.flush();
  }
  const std::string s = slurp(path);
  // All three signals toggled at least once.
  EXPECT_NE(s.find("1!"), std::string::npos);   // aw_valid rose
  EXPECT_NE(s.find("1\""), std::string::npos);  // w_valid rose
  EXPECT_NE(s.find("1#"), std::string::npos);   // b_valid rose
  std::remove(path.c_str());
}

TEST(Vcd, ManyProbesGetDistinctCodes) {
  const std::string path = "/tmp/tmu_vcd_test4.vcd";
  {
    sim::VcdWriter vcd(path);
    std::uint64_t v = 1;
    for (int i = 0; i < 100; ++i) {
      std::string name = "p";
      name += std::to_string(i);
      vcd.probe(name, 4, [&] { return v; });
    }
    vcd.sample(0);
    vcd.flush();
  }
  const std::string s = slurp(path);
  // 100 distinct $var lines.
  std::size_t count = 0, pos = 0;
  while ((pos = s.find("$var", pos)) != std::string::npos) {
    ++count;
    pos += 4;
  }
  EXPECT_EQ(count, 100u);
  std::remove(path.c_str());
}

TEST(Vcd, LateProbeIsRejectedNotCorrupting) {
  const std::string path = "/tmp/tmu_vcd_test5.vcd";
  {
    sim::VcdWriter vcd(path);
    int v = 0;
    vcd.probe("early", 1, [&] { return static_cast<std::uint64_t>(v); });
    EXPECT_TRUE(vcd.ok());
    EXPECT_FALSE(vcd.late_probe_rejected());
    vcd.sample(0);  // finalizes the header
    // A probe after the header is on disk cannot be declared any more:
    // it is dropped, and ok() reports the misuse instead of silently
    // emitting changes for an undeclared signal.
    vcd.probe("late", 1, [] { return std::uint64_t{1}; });
    EXPECT_TRUE(vcd.late_probe_rejected());
    EXPECT_FALSE(vcd.ok());
    v = 1;
    vcd.sample(1);
    vcd.flush();
  }
  const std::string s = slurp(path);
  // Exactly the one declared signal, still toggling normally.
  std::size_t count = 0, pos = 0;
  while ((pos = s.find("$var", pos)) != std::string::npos) {
    ++count;
    pos += 4;
  }
  EXPECT_EQ(count, 1u);
  EXPECT_NE(s.find("#1\n1!"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
