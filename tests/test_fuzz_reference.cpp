// Reference-model fuzzing: the ID remapper and the OTT are driven with
// long random operation sequences and checked step-by-step against
// simple oracle implementations.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <optional>

#include "sim/random.hpp"
#include "tmu/id_remap.hpp"
#include "tmu/ott.hpp"

namespace {

// ------------------------- IdRemapper fuzz ----------------------------

/// Oracle: a plain map id -> outstanding count, capacity-limited.
struct RemapOracle {
  explicit RemapOracle(std::uint32_t cap) : cap(cap) {}
  std::uint32_t cap;
  std::map<axi::Id, std::uint32_t> live;

  bool can_admit(axi::Id id) const {
    return live.count(id) > 0 || live.size() < cap;
  }
  void admit(axi::Id id) { ++live[id]; }
  void release(axi::Id id) {
    auto it = live.find(id);
    if (--it->second == 0) live.erase(it);
  }
};

class RemapFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RemapFuzz, MatchesOracle) {
  const std::uint32_t cap = 4;
  tmu::IdRemapper remap(cap);
  RemapOracle oracle(cap);
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::map<axi::Id, std::deque<std::uint8_t>> issued;  // id -> tids

  for (int step = 0; step < 5000; ++step) {
    const axi::Id id = static_cast<axi::Id>(rng.range(0, 11) * 37);
    if (rng.chance(0.55)) {
      // Try to admit.
      ASSERT_EQ(remap.can_admit(id), oracle.can_admit(id))
          << "step " << step << " id " << id;
      const auto tid = remap.admit(id);
      if (oracle.can_admit(id)) {
        ASSERT_TRUE(tid.has_value());
        oracle.admit(id);
        issued[id].push_back(*tid);
        ASSERT_EQ(remap.original_id(*tid), id);
      } else {
        ASSERT_FALSE(tid.has_value());
      }
    } else {
      // Release a random live id.
      if (issued.empty()) continue;
      auto it = issued.begin();
      std::advance(it, static_cast<long>(rng.range(0, issued.size() - 1)));
      remap.release(it->second.front());
      oracle.release(it->first);
      it->second.pop_front();
      if (it->second.empty()) issued.erase(it);
    }
    ASSERT_EQ(remap.active_ids(), oracle.live.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RemapFuzz, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------- OTT fuzz --------------------------------

/// Oracle: per-tID FIFO of payload tags plus a global order list.
struct OttOracle {
  std::uint32_t ids, per_id, cap;
  std::map<std::uint8_t, std::deque<axi::Addr>> fifos;
  std::deque<axi::Addr> order;

  std::uint32_t occupancy() const {
    return static_cast<std::uint32_t>(order.size());
  }
  bool can_enqueue(std::uint8_t tid) const {
    return occupancy() < cap &&
           (fifos.count(tid) == 0 || fifos.at(tid).size() < per_id);
  }
};

class OttFuzz : public ::testing::TestWithParam<int> {};

TEST_P(OttFuzz, MatchesOracle) {
  const std::uint32_t ids = 4, per_id = 4;
  tmu::Ott ott(ids, per_id);
  OttOracle oracle{ids, per_id, ids * per_id, {}, {}};
  sim::Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  axi::Addr next_tag = 1;

  for (int step = 0; step < 5000; ++step) {
    const auto tid = static_cast<std::uint8_t>(rng.range(0, ids - 1));
    if (rng.chance(0.55)) {
      const int idx = ott.enqueue(tid, tid, next_tag, 0, step);
      if (oracle.can_enqueue(tid)) {
        ASSERT_GE(idx, 0) << "step " << step;
        oracle.fifos[tid].push_back(next_tag);
        oracle.order.push_back(next_tag);
      } else {
        ASSERT_LT(idx, 0) << "step " << step;
      }
      ++next_tag;
    } else {
      const int head = ott.head_of(tid);
      auto fit = oracle.fifos.find(tid);
      if (fit == oracle.fifos.end() || fit->second.empty()) {
        ASSERT_LT(head, 0) << "step " << step;
      } else {
        ASSERT_GE(head, 0);
        // Head matches the oracle FIFO front (same-ID order).
        ASSERT_EQ(ott.at(head).addr, fit->second.front()) << "step " << step;
        ott.dequeue(tid);
        for (auto oit = oracle.order.begin(); oit != oracle.order.end();
             ++oit) {
          if (*oit == fit->second.front()) {
            oracle.order.erase(oit);
            break;
          }
        }
        fit->second.pop_front();
      }
    }
    ASSERT_EQ(ott.occupancy(), oracle.occupancy()) << "step " << step;
    // EI order matches the oracle's global order.
    const auto& ei = ott.order();
    ASSERT_EQ(ei.size(), oracle.order.size());
    for (std::size_t i = 0; i < ei.size(); ++i) {
      ASSERT_EQ(ott.at(ei[i]).addr, oracle.order[i]) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OttFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
