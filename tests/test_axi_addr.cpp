#include <gtest/gtest.h>

#include "axi/addr.hpp"
#include "axi/types.hpp"

namespace {

using axi::Burst;

TEST(AxiAddr, IncrBeatAddresses) {
  // 8-byte beats starting at 0x1000.
  EXPECT_EQ(axi::beat_addr(0x1000, 3, 3, Burst::kIncr, 0), 0x1000u);
  EXPECT_EQ(axi::beat_addr(0x1000, 3, 3, Burst::kIncr, 1), 0x1008u);
  EXPECT_EQ(axi::beat_addr(0x1000, 3, 3, Burst::kIncr, 3), 0x1018u);
}

TEST(AxiAddr, IncrUnalignedFirstBeat) {
  // Unaligned start: first beat keeps the byte address, later beats align.
  EXPECT_EQ(axi::beat_addr(0x1003, 3, 1, Burst::kIncr, 0), 0x1003u);
  EXPECT_EQ(axi::beat_addr(0x1003, 3, 1, Burst::kIncr, 1), 0x1008u);
}

TEST(AxiAddr, FixedBurstRepeatsAddress) {
  for (unsigned beat = 0; beat < 8; ++beat) {
    EXPECT_EQ(axi::beat_addr(0x2000, 2, 7, Burst::kFixed, beat), 0x2000u);
  }
}

TEST(AxiAddr, WrapBurstWrapsAtContainer) {
  // 4-beat wrap of 8-byte beats starting at 0x1010: container [0x1000,0x1020).
  EXPECT_EQ(axi::beat_addr(0x1010, 3, 3, Burst::kWrap, 0), 0x1010u);
  EXPECT_EQ(axi::beat_addr(0x1010, 3, 3, Burst::kWrap, 1), 0x1018u);
  EXPECT_EQ(axi::beat_addr(0x1010, 3, 3, Burst::kWrap, 2), 0x1000u);
  EXPECT_EQ(axi::beat_addr(0x1010, 3, 3, Burst::kWrap, 3), 0x1008u);
}

TEST(AxiAddr, Within4K) {
  EXPECT_TRUE(axi::within_4k(0x0FF8, 3, 0));    // one beat at page end
  EXPECT_FALSE(axi::within_4k(0x0FF8, 3, 1));   // second beat crosses
  EXPECT_TRUE(axi::within_4k(0x1000, 3, 255));  // 256 beats * 8B = 2KiB
}

TEST(AxiAddr, LegalWrapLengths) {
  EXPECT_TRUE(axi::legal_wrap_len(1));    // 2 beats
  EXPECT_TRUE(axi::legal_wrap_len(3));    // 4 beats
  EXPECT_TRUE(axi::legal_wrap_len(7));    // 8 beats
  EXPECT_TRUE(axi::legal_wrap_len(15));   // 16 beats
  EXPECT_FALSE(axi::legal_wrap_len(0));   // 1 beat
  EXPECT_FALSE(axi::legal_wrap_len(2));   // 3 beats
  EXPECT_FALSE(axi::legal_wrap_len(31));  // 32 beats
}

TEST(AxiTypes, BeatsAndBytes) {
  EXPECT_EQ(axi::beats(0), 1u);
  EXPECT_EQ(axi::beats(255), 256u);
  EXPECT_EQ(axi::beat_bytes(0), 1u);
  EXPECT_EQ(axi::beat_bytes(3), 8u);
}

TEST(AxiTypes, RespToString) {
  EXPECT_STREQ(axi::to_string(axi::Resp::kOkay), "OKAY");
  EXPECT_STREQ(axi::to_string(axi::Resp::kSlvErr), "SLVERR");
  EXPECT_STREQ(axi::to_string(axi::Resp::kDecErr), "DECERR");
}

// Property-style sweep: every beat of every INCR burst stays within
// [aligned(start), start + beats*bytes).
class IncrSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IncrSweep, BeatsMonotoneAndBounded) {
  const auto [size, len] = GetParam();
  const axi::Addr start = 0x4000;
  axi::Addr prev = 0;
  for (unsigned beat = 0; beat < axi::beats(len); ++beat) {
    const axi::Addr a = axi::beat_addr(start, size, len, Burst::kIncr, beat);
    if (beat > 0) {
      EXPECT_GT(a, prev);
    }
    EXPECT_GE(a, start & ~(axi::beat_bytes(size) - 1));
    EXPECT_LT(a, start + axi::beat_bytes(size) * axi::beats(len));
    prev = a;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IncrSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 7, 15,
                                                              255)));

}  // namespace
