// tmu-axi-trace-v1 binary format: canonical encode/decode round-trips,
// the streamed writer vs. the in-memory encoder, strict-reader error
// paths, and byte-identity of the committed regression fixture.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/format.hpp"

namespace {

using namespace trace;

TraceRecord aw(std::uint64_t cycle, std::uint32_t id, std::uint64_t addr,
               std::uint8_t len = 0) {
  return TraceRecord{cycle, Channel::kAw, false, id, addr, 0, len, 3, 1,
                     0, 0, false};
}
TraceRecord w(std::uint64_t cycle, std::uint64_t data, bool last) {
  return TraceRecord{cycle, Channel::kW, false, 0, 0, data, 0, 0, 0,
                     0, 0xFF, last};
}
TraceRecord b(std::uint64_t cycle, std::uint32_t id, std::uint8_t resp = 0) {
  return TraceRecord{cycle, Channel::kB, false, id, 0, 0, 0, 0, 0,
                     resp, 0, false};
}
TraceRecord ar(std::uint64_t cycle, std::uint32_t id, std::uint64_t addr) {
  return TraceRecord{cycle, Channel::kAr, false, id, addr, 0, 0, 3, 1,
                     0, 0, false};
}
TraceRecord r(std::uint64_t cycle, std::uint32_t id, std::uint64_t data,
              bool last) {
  return TraceRecord{cycle, Channel::kR, false, id, 0, data, 0, 0, 0,
                     0, 0, last};
}
TraceRecord retract(std::uint64_t cycle, Channel ch) {
  return TraceRecord{cycle, ch, true};
}

TraceBuffer sample_buffer() {
  TraceBuffer buf;
  buf.link = "gen.out";
  buf.topology_hash = 0xDEADBEEFCAFEF00Dull;
  buf.dropped = 3;
  buf.records = {
      aw(5, 2, 0x8000, 3),
      w(6, 0x1111111111111111ull, false),
      ar(6, 1, 0x4000),
      retract(8, Channel::kAr),
      w(9, 0x2222222222222222ull, true),
      ar(12, 1, 0x4000),
      b(14, 2, 2),  // SLVERR
      r(20, 1, 0x3333333333333333ull, true),
      // A >32-bit-delta-free large gap: still one u32 delta.
      aw(20 + 0xFFFFFFFFull, 7, 0xFFFF'FFFF'FFFF'FFF8ull, 255),
  };
  return buf;
}

TEST(TraceFormat, EncodeDecodeRoundTrips) {
  const TraceBuffer buf = sample_buffer();
  const std::string bytes = encode_trace(buf);
  EXPECT_EQ(bytes.size(), kTraceHeaderFixedBytes + buf.link.size() +
                              buf.records.size() * kTraceRecordBytes);
  const TraceBuffer back = decode_trace(bytes);
  EXPECT_EQ(back, buf);
}

TEST(TraceFormat, EmptyBufferRoundTrips) {
  TraceBuffer buf;
  buf.link = "m.in";
  const TraceBuffer back = decode_trace(encode_trace(buf));
  EXPECT_EQ(back, buf);
  EXPECT_TRUE(back.records.empty());
}

TEST(TraceFormat, EncoderCanonicalizesForeignFields) {
  // A W record smuggling AW-only fields: the encoder zeroes them, so the
  // decoded record differs from the input but is canonical.
  TraceRecord dirty = w(4, 0xAB, true);
  dirty.id = 9;
  dirty.addr = 0x1234;
  dirty.len = 7;
  TraceBuffer buf;
  buf.records = {dirty};
  const TraceBuffer back = decode_trace(encode_trace(buf));
  EXPECT_EQ(back.records[0], w(4, 0xAB, true));
}

TEST(TraceFormat, EncoderRejectsNonMonotoneCycles) {
  TraceBuffer buf;
  buf.records = {aw(10, 0, 0), aw(9, 0, 0)};
  EXPECT_THROW(encode_trace(buf), std::invalid_argument);
}

TEST(TraceFormat, WriterStreamsByteIdenticalToEncoder) {
  const TraceBuffer buf = sample_buffer();
  const std::string path = ::testing::TempDir() + "trace_writer_test.axitrace";
  {
    TraceWriter wtr(path, buf.link, buf.topology_hash);
    for (const TraceRecord& rec : buf.records) wtr.append(rec);
    wtr.set_dropped(buf.dropped);
    EXPECT_EQ(wtr.written(), buf.records.size());
    EXPECT_TRUE(wtr.close());
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), encode_trace(buf));
  EXPECT_EQ(read_trace_file(path), buf);
  std::remove(path.c_str());
}

TEST(TraceFormat, WriteReadFileRoundTrips) {
  const TraceBuffer buf = sample_buffer();
  const std::string path = ::testing::TempDir() + "trace_file_test.axitrace";
  ASSERT_TRUE(write_trace_file(path, buf));
  EXPECT_EQ(read_trace_file(path), buf);
  std::remove(path.c_str());
}

TEST(TraceFormat, ReadMissingFileThrowsWithPath) {
  try {
    read_trace_file("/nonexistent/dir/x.axitrace");
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/dir/x.axitrace"),
              std::string::npos);
  }
}

// ---- strict-reader error paths ----

void expect_decode_error(std::string bytes, const char* needle) {
  try {
    decode_trace(bytes);
    FAIL() << "expected decode to reject: " << needle;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(TraceFormatStrict, TruncatedHeader) {
  expect_decode_error(encode_trace(sample_buffer()).substr(0, 20),
                      "truncated header");
}

TEST(TraceFormatStrict, BadMagic) {
  std::string bytes = encode_trace(sample_buffer());
  bytes[0] = 'X';
  expect_decode_error(bytes, "bad magic");
}

TEST(TraceFormatStrict, UnsupportedVersion) {
  std::string bytes = encode_trace(sample_buffer());
  bytes[kTraceMagicBytes] = 9;
  expect_decode_error(bytes, "unsupported version 9");
}

TEST(TraceFormatStrict, UnfinalizedSentinel) {
  std::string bytes = encode_trace(sample_buffer());
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[kTraceMagicBytes + 4 + 8 + 8 + i] = static_cast<char>(0xFF);
  }
  expect_decode_error(bytes, "unfinalized");
}

TEST(TraceFormatStrict, TruncatedAndTrailingPayload) {
  const std::string bytes = encode_trace(sample_buffer());
  expect_decode_error(bytes.substr(0, bytes.size() - 1), "payload size");
  expect_decode_error(bytes + '\0', "payload size");
}

TEST(TraceFormatStrict, MalformedRecordFields) {
  const TraceBuffer one = [] {
    TraceBuffer b2;
    b2.link = "l";
    b2.records = {aw(1, 0, 0)};
    return b2;
  }();
  const std::string bytes = encode_trace(one);
  const std::size_t rec = kTraceHeaderFixedBytes + one.link.size();

  auto mutate = [&](std::size_t off, char v) {
    std::string m = bytes;
    m[rec + off] = v;
    return m;
  };
  expect_decode_error(mutate(4, 5), "unknown channel 5");
  expect_decode_error(mutate(5, 0x10), "unknown flag bits");
  expect_decode_error(mutate(12, 3), "bad burst encoding 3");
  expect_decode_error(mutate(15, 1), "nonzero pad byte");
  // resp on an AW record is non-canonical even when the enum is valid.
  expect_decode_error(mutate(13, 1), "non-canonical AW record");
  expect_decode_error(mutate(13, 7), "bad resp encoding 7");

  // Retract flag on a subordinate-driven channel.
  TraceBuffer bb;
  bb.link = "l";
  bb.records = {b(1, 0)};
  std::string bbytes = encode_trace(bb);
  bbytes[rec + 5] = 0x2;
  expect_decode_error(bbytes, "retract flag on subordinate-driven channel");
}

// ---- committed regression fixture ----

TEST(TraceFormatFixture, FixtureDecodesAndReencodesByteIdentically) {
  const std::string path =
      std::string(TMU_TEST_DATA_DIR) + "/ip_testbench_gen.axitrace";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string bytes = ss.str();

  const TraceBuffer buf = decode_trace(bytes);
  EXPECT_EQ(buf.link, "gen.out");
  EXPECT_EQ(buf.dropped, 0u);
  EXPECT_GT(buf.records.size(), 1000u);  // 2000 busy cycles of traffic
  // Pin the stream against accidental re-generation drift: decode →
  // re-encode must reproduce the file byte-for-byte.
  EXPECT_EQ(encode_trace(buf), bytes);
}

}  // namespace
