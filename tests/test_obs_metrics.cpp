// Unified observability layer: MetricsRegistry slot semantics, exact
// snapshot/merge with deterministic JSON, the declarative per-link
// LatencyProbe (SocDesc::probes), and the scheduler profiler pinned
// against the kernel's own eval counters.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "obs/latency_probe.hpp"
#include "obs/metrics.hpp"
#include "sim/kernel.hpp"
#include "soc/builder.hpp"
#include "soc/topologies.hpp"

namespace {

// ----------------------------- registry --------------------------------

TEST(MetricsRegistry, SlotsAreStableAndIdempotent) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("axi.txns");
  c.inc();
  c.inc(4);
  EXPECT_EQ(reg.counter("axi.txns").value(), 5u);  // same slot
  EXPECT_EQ(&reg.counter("axi.txns"), &c);
  sim::RunningStats& rs = reg.stats("axi.latency");
  rs.add(10.0);
  EXPECT_EQ(reg.stats("axi.latency").count(), 1u);
  sim::Histogram& h = reg.histogram("axi.occupancy");
  h.add(3);
  EXPECT_EQ(reg.histogram("axi.occupancy").count(3), 1u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, OneKindPerNameIsEnforced) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.stats("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x"), std::invalid_argument);
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
  try {
    reg.stats("x");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'x'"), std::string::npos);
  }
}

TEST(MetricsRegistry, ResetValuesKeepsRegistrations) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("n");
  sim::RunningStats& rs = reg.stats("s");
  sim::Histogram& h = reg.histogram("h");
  c.inc(7);
  rs.add(1.0);
  h.add(2);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);       // same slot, zeroed in place
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(reg.size(), 3u);
}

// ------------------------- snapshot & merge ----------------------------

TEST(MetricsSnapshot, MergeIsExactAndJsonDeterministic) {
  obs::MetricsRegistry a, b, whole;
  for (double v : {1.0, 2.0, 5.0}) {
    a.stats("lat").add(v);
    whole.stats("lat").add(v);
  }
  for (double v : {3.0, 8.0}) {
    b.stats("lat").add(v);
    whole.stats("lat").add(v);
  }
  a.counter("txns").inc(10);
  b.counter("txns").inc(32);
  whole.counter("txns").inc(42);
  a.histogram("occ").add(1);
  b.histogram("occ").add(1);
  b.histogram("occ").add(9);
  whole.histogram("occ").add(1);
  whole.histogram("occ").add(1);
  whole.histogram("occ").add(9);

  obs::MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  // Exact pooling: the sharded stream serializes byte-identically to
  // the single-stream run — the campaign determinism contract.
  EXPECT_EQ(merged.to_json(), whole.snapshot().to_json());
  EXPECT_EQ(merged.counters.at("txns"), 42u);
  EXPECT_EQ(merged.stats.at("lat").count(), 5u);
  EXPECT_EQ(merged.histograms.at("occ").count(1), 2u);
}

TEST(MetricsSnapshot, JsonShapeIsSortedAndEscaped) {
  obs::MetricsRegistry reg;
  reg.counter("b.second").inc(2);
  reg.counter("a.first").inc(1);
  const std::string json = reg.snapshot().to_json();
  // Name-sorted: "a.first" precedes "b.second" regardless of
  // registration order.
  EXPECT_LT(json.find("a.first"), json.find("b.second"));
  EXPECT_NE(json.find("\"counters\": {"), std::string::npos);
  EXPECT_NE(json.find("\"stats\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos);

  obs::MetricsSnapshot empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.to_json(),
            "{\n  \"counters\": {},\n  \"stats\": {},\n"
            "  \"histograms\": {}\n}\n");
}

// ------------------------- latency probe -------------------------------

TEST(LatencyProbe, CountsTrafficLikeTheRetiredPerfMonitor) {
  axi::Link link;
  axi::TrafficGenerator gen("gen", link);
  axi::MemorySubordinate mem("mem", link);
  obs::MetricsRegistry reg;
  obs::LatencyProbe probe("probe", link, reg);
  sim::Simulator s;
  s.add(gen);
  s.add(mem);
  s.add(probe);
  s.reset();
  // Distinct IDs per transaction: latency is tracked per ID from AW/AR
  // accept to B/last-R, so same-ID pipelining would fold the samples.
  for (int i = 0; i < 4; ++i) {
    gen.push(axi::TxnDesc{true, static_cast<axi::Id>(i),
                          static_cast<axi::Addr>(i * 0x40), 3, 3,
                          axi::Burst::kIncr});
    gen.push(axi::TxnDesc{false, static_cast<axi::Id>(4 + i),
                          static_cast<axi::Addr>(i * 0x40), 3, 3,
                          axi::Burst::kIncr});
  }
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 8; }, 1000));
  // Pinned numbers of the old baseline::AxiPerfMonitor semantics.
  EXPECT_EQ(probe.write_txns(), 4u);
  EXPECT_EQ(probe.read_txns(), 4u);
  EXPECT_EQ(probe.bytes_written(), 4u * 4u * 8u);
  EXPECT_EQ(probe.bytes_read(), 4u * 4u * 8u);
  EXPECT_GT(probe.write_latency().mean(), 0.0);
  EXPECT_GT(probe.write_throughput(), 0.0);
  // The histograms carry exactly the completed transactions...
  EXPECT_EQ(probe.write_latency_hist().total(), 4u);
  EXPECT_EQ(probe.read_latency_hist().total(), 4u);
  // ...and everything is visible through the registry under "probe.*".
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("probe.write_txns"), 4u);
  EXPECT_EQ(snap.stats.at("probe.read_latency").count(), 4u);
  EXPECT_GT(snap.histograms.at("probe.occupancy").total(), 0u);
}

TEST(LatencyProbe, DeclarativeProbesElaborateFromTheDesc) {
  soc::SocDesc d = soc::ip_testbench_desc();
  d.managers[0].traffic.enabled = true;
  d.managers[0].traffic.p_new_txn = 0.5;
  d.probes.push_back({"p_gen", "gen.out"});
  d.probes.push_back({"p_mem", "mem.in"});
  const auto soc = soc::SocBuilder::build(d);
  soc->sim().run(2000);
  const obs::MetricsSnapshot snap = soc->metrics().snapshot();
  EXPECT_GT(snap.counters.at("p_gen.write_txns"), 0u);
  EXPECT_GT(snap.counters.at("p_mem.write_txns"), 0u);
  // Both probes watch the same single-path chain: identical traffic.
  EXPECT_EQ(snap.counters.at("p_gen.write_txns"),
            snap.counters.at("p_mem.write_txns"));
  EXPECT_GT(snap.stats.at("p_gen.write_latency").count(), 0u);
  // The probe modules resolve by name like any other block.
  EXPECT_NE(soc->find("p_gen"), nullptr);
  EXPECT_NO_THROW(soc->get<obs::LatencyProbe>("p_mem"));
}

TEST(LatencyProbe, ClusterDownlinkProbeSeesBridgeLatency) {
  // Two-level hierarchy: a probe on a "<cluster>.down" link (behind the
  // bridge) against one on the same cluster's feed ("<cluster>.in",
  // before the bridge). One transaction in flight at a time, so the
  // probes sample the same transactions and the per-ID latency maps
  // never fold (the bridge remaps IDs, so folding would differ per
  // side and scramble the comparison).
  soc::SocDesc d = soc::hier_grid_desc(1, 1, 2, /*active=*/1);
  d.managers[0].traffic.max_outstanding = 1;
  d.probes.push_back({"p_up", "cl0.in"});
  d.probes.push_back({"p_down", "cl0.down"});
  const auto soc = soc::SocBuilder::build(d);
  soc->sim().run(3000);

  auto& up = soc->get<obs::LatencyProbe>("p_up");
  auto& down = soc->get<obs::LatencyProbe>("p_down");
  // Same chain, no other path into the cluster: counts agree up to the
  // one request the bridge's req register can still hold at the cutoff.
  EXPECT_GT(down.write_txns(), 10u);
  EXPECT_GE(up.write_txns(), down.write_txns());
  EXPECT_LE(up.write_txns() - down.write_txns(), 1u);
  EXPECT_GE(up.read_txns(), down.read_txns());
  EXPECT_LE(up.read_txns() - down.read_txns(), 1u);
  // The bridge's req+rsp registration (1 cycle each) sits between the
  // two probes, so every transaction is exactly 2 cycles longer
  // upstream — visible in the distribution's bounds (the means can
  // differ from 2.0 by at most one cutoff-straddling sample).
  ASSERT_GT(up.write_latency().count(), 0u);
  EXPECT_EQ(up.write_latency().min(), down.write_latency().min() + 2.0);
  EXPECT_EQ(up.write_latency().max(), down.write_latency().max() + 2.0);
  EXPECT_NEAR(up.write_latency().mean(), down.write_latency().mean() + 2.0,
              0.5);
  ASSERT_GT(up.read_latency().count(), 0u);
  EXPECT_EQ(up.read_latency().min(), down.read_latency().min() + 2.0);
  EXPECT_EQ(up.read_latency().max(), down.read_latency().max() + 2.0);
  EXPECT_NEAR(up.read_latency().mean(), down.read_latency().mean() + 2.0,
              0.5);
}

TEST(LatencyProbe, OccupancyIsZeroOnAnIdleDownlink) {
  // Only gen0 is active and it is window-steered at cl0; the cl1
  // downlink carries nothing, and an idle probe must say so: zero
  // transactions, occupancy samples all at zero.
  soc::SocDesc d = soc::hier_grid_desc(1, 2, 2, /*active=*/1);
  d.managers[0].traffic.addr_max = 2 * 0x1'0000ull - 8;  // cl0's window
  d.probes.push_back({"p_idle", "cl1.down"});
  const auto soc = soc::SocBuilder::build(d);
  soc->sim().run(1000);
  auto& idle = soc->get<obs::LatencyProbe>("p_idle");
  EXPECT_EQ(idle.write_txns(), 0u);
  EXPECT_EQ(idle.read_txns(), 0u);
  const sim::Histogram& occ = idle.occupancy_hist();
  EXPECT_GT(occ.total(), 0u);          // sampled every cycle...
  EXPECT_EQ(occ.count(0), occ.total());  // ...always empty
}

// ------------------------ scheduler profiler ---------------------------

TEST(SchedProfiler, EvalCountsMatchTheKernelExactly) {
  soc::SocDesc d = soc::ip_testbench_desc();
  d.managers[0].traffic.enabled = true;
  d.managers[0].traffic.p_new_txn = 0.5;
  const auto soc = soc::SocBuilder::build(d);
  sim::Simulator& s = soc->sim();
  s.run(500);
  const sim::sched::SchedProfile prof = s.sched_profile();
  // The per-module profile decomposes module_evals() exactly.
  EXPECT_EQ(prof.total_evals(), s.module_evals());
  std::uint64_t wakeup_sum = 0;
  std::uint64_t miss_sum = 0;
  for (const auto& mp : prof.modules) {
    EXPECT_FALSE(mp.name.empty());
    wakeup_sum += mp.wakeups();
    miss_sum += mp.sensitivity_misses;
  }
  // Every eval was enqueued by exactly one cause.
  EXPECT_EQ(wakeup_sum, prof.total_evals());
  EXPECT_EQ(miss_sum, s.sched_stats().sensitivity_misses);
  // One dirty-depth sample per non-empty drain.
  EXPECT_EQ(prof.dirty_depth.total(), s.sched_stats().drains);
  // The report is printable and names the netlist's blocks.
  const std::string top = prof.top_modules(3);
  EXPECT_NE(top.find("evals"), std::string::npos);
  EXPECT_NE(top.find("total:"), std::string::npos);
}

TEST(SchedProfiler, ProfilingCanBeDisabled) {
  soc::SocDesc d = soc::ip_testbench_desc();
  d.managers[0].traffic.enabled = true;
  const auto soc = soc::SocBuilder::build(d);
  sim::Simulator& s = soc->sim();
  const sim::sched::SchedProfile before = s.sched_profile();
  s.set_sched_profiling(false);
  s.run(200);
  const sim::sched::SchedProfile after = s.sched_profile();
  // Off means frozen per-module counters, while the aggregate
  // SchedStats keep counting.
  EXPECT_EQ(after.total_evals(), before.total_evals());
  EXPECT_GT(s.module_evals(), before.total_evals());
}

TEST(SchedProfiler, FullSweepPolicyLeavesTheProfileEmpty) {
  soc::SocDesc d = soc::ip_testbench_desc();
  d.policy = sim::sched::SchedPolicy::kFullSweep;
  d.managers[0].traffic.enabled = true;
  const auto soc = soc::SocBuilder::build(d);
  soc->sim().run(200);
  EXPECT_EQ(soc->sim().sched_profile().total_evals(), 0u);
  EXPECT_GT(soc->sim().module_evals(), 0u);
}

}  // namespace
