// Record -> replay equivalence: a trace::TraceTrafficGen driven by a
// stream a trace::Recorder captured must reproduce the recording run on
// the recording topology — subordinate-side traffic, memory state and
// probe metrics byte-identical. Pinned on the IP-level testbench, on
// the full Cheshire SoC under BOTH scheduler policies, on a
// retract-heavy handshake, and against the committed fixture.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "sim/kernel.hpp"
#include "soc/builder.hpp"
#include "soc/cheshire.hpp"
#include "soc/topologies.hpp"
#include "trace/format.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"

namespace {

using sim::sched::SchedPolicy;

std::uint64_t memory_fingerprint(const axi::MemorySubordinate& mem,
                                 axi::Addr base, axi::Addr size) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (axi::Addr a = base; a < base + size; ++a) {
    h ^= mem.peek(a);
    h *= 0x100000001B3ull;
  }
  return h;
}

// -------------------------- IP testbench -------------------------------

TEST(TraceReplay, IpTestbenchRoundTripIsByteIdentical) {
  constexpr std::uint64_t kCycles = 1500;
  soc::SocDesc d = soc::ip_testbench_desc();
  d.managers.front().seed = 7;
  d.managers.front().traffic.enabled = true;
  d.traces.push_back(soc::TraceDesc{"cap_gen", "gen.out"});
  d.traces.push_back(soc::TraceDesc{"cap_mem", "mem.in"});

  const auto rec_soc = soc::SocBuilder::build(d);
  rec_soc->sim().run(kCycles);
  const trace::TraceBuffer gen_stream =
      rec_soc->get<trace::Recorder>("cap_gen").buffer();
  ASSERT_GT(gen_stream.records.size(), 100u);
  EXPECT_EQ(gen_stream.link, "gen.out");
  EXPECT_EQ(gen_stream.topology_hash, d.hash());
  EXPECT_EQ(rec_soc->get<trace::Recorder>("cap_gen").drop_count(), 0u);

  soc::SocDesc rd = d;
  rd.managers.front().kind = soc::ManagerKind::kTraceReplay;
  rd.managers.front().traffic = {};
  const auto rep_soc = soc::SocBuilder::build(rd);
  auto& replayer = rep_soc->get<trace::TraceTrafficGen>("gen");
  replayer.set_stream(gen_stream);
  rep_soc->sim().run(kCycles);

  EXPECT_TRUE(replayer.done())
      << replayer.events_replayed() << "/" << replayer.events_total();
  EXPECT_EQ(rep_soc->get<trace::Recorder>("cap_mem").buffer().records,
            rec_soc->get<trace::Recorder>("cap_mem").buffer().records);
  // The manager-side capture reproduces too: request wires identical.
  EXPECT_EQ(rep_soc->get<trace::Recorder>("cap_gen").buffer().records,
            gen_stream.records);
  EXPECT_EQ(memory_fingerprint(rep_soc->get<axi::MemorySubordinate>("mem"),
                               0, 0x10000),
            memory_fingerprint(rec_soc->get<axi::MemorySubordinate>("mem"),
                               0, 0x10000));
}

// ---------------------------- Cheshire ---------------------------------

// The full Fig. 10 SoC: three traffic-gen managers aimed at the three
// endpoint windows (DRAM behind the LLC, the guarded Ethernet IP, the
// guarded peripheral), captures on every manager port and every
// endpoint feed, a latency probe on the DRAM feed. Record, then swap
// all three managers for replayers and compare everything downstream.
void cheshire_round_trip(SchedPolicy policy) {
  constexpr std::uint64_t kCycles = 800;
  soc::SocDesc d = soc::cheshire_desc({});
  d.policy = policy;
  const std::uint64_t windows[3][2] = {
      {soc::CheshireMap::kDramBase, 0x1'0000},
      {soc::CheshireMap::kEthBase, 0x800},
      {soc::CheshireMap::kPeriphBase, 0x1'0000},
  };
  for (int i = 0; i < 3; ++i) {
    soc::ManagerDesc& m = d.managers[i];
    m.traffic.enabled = true;
    m.traffic.p_new_txn = 0.25;
    m.traffic.len_max = 7;
    m.traffic.addr_min = windows[i][0];
    m.traffic.addr_max = windows[i][0] + windows[i][1] - 8;
  }
  for (const char* mgr : {"cva6_0", "cva6_1", "idma"}) {
    d.traces.push_back(
        soc::TraceDesc{std::string("cap_") + mgr, std::string(mgr) + ".out"});
  }
  for (const char* ep : {"dram", "ethernet", "periph"}) {
    d.traces.push_back(
        soc::TraceDesc{std::string("ep_") + ep, std::string(ep) + ".in"});
  }
  d.probes.push_back(soc::ProbeDesc{"probe_dram", "dram.in"});

  const auto rec_soc = soc::SocBuilder::build(d);
  rec_soc->sim().run(kCycles);

  soc::SocDesc rd = d;
  for (int i = 0; i < 3; ++i) {
    rd.managers[i].kind = soc::ManagerKind::kTraceReplay;
    rd.managers[i].traffic = {};
  }
  const auto rep_soc = soc::SocBuilder::build(rd);
  for (const char* mgr : {"cva6_0", "cva6_1", "idma"}) {
    const trace::TraceBuffer stream =
        rec_soc->get<trace::Recorder>(std::string("cap_") + mgr).buffer();
    ASSERT_GT(stream.records.size(), 50u) << mgr;
    rep_soc->get<trace::TraceTrafficGen>(mgr).set_stream(stream);
  }
  rep_soc->sim().run(kCycles);

  for (const char* mgr : {"cva6_0", "cva6_1", "idma"}) {
    EXPECT_TRUE(rep_soc->get<trace::TraceTrafficGen>(mgr).done()) << mgr;
  }
  for (const soc::TraceDesc& td : d.traces) {
    EXPECT_EQ(rep_soc->get<trace::Recorder>(td.name).buffer().records,
              rec_soc->get<trace::Recorder>(td.name).buffer().records)
        << td.name << " (" << td.link << ")";
  }
  EXPECT_EQ(memory_fingerprint(rep_soc->get<axi::MemorySubordinate>("dram"),
                               soc::CheshireMap::kDramBase, 0x1'0000),
            memory_fingerprint(rec_soc->get<axi::MemorySubordinate>("dram"),
                               soc::CheshireMap::kDramBase, 0x1'0000));
  EXPECT_EQ(memory_fingerprint(rep_soc->get<axi::MemorySubordinate>("periph"),
                               soc::CheshireMap::kPeriphBase, 0x1'0000),
            memory_fingerprint(rec_soc->get<axi::MemorySubordinate>("periph"),
                               soc::CheshireMap::kPeriphBase, 0x1'0000));
  // Probe metrics and recorder counters land in the registry with the
  // same names in both runs; identical traffic means an identical
  // snapshot (to_json is deterministic, so string compare is exact).
  EXPECT_EQ(rep_soc->metrics().snapshot().to_json(),
            rec_soc->metrics().snapshot().to_json());
}

TEST(TraceReplay, CheshireRoundTripEventDriven) {
  cheshire_round_trip(SchedPolicy::kEventDriven);
}

TEST(TraceReplay, CheshireRoundTripFullSweep) {
  cheshire_round_trip(SchedPolicy::kFullSweep);
}

// A stream recorded under one scheduler policy replays identically
// under the other: the trace pins wire behaviour, which the policies
// must agree on.
TEST(TraceReplay, StreamRecordedEventDrivenReplaysUnderFullSweep) {
  constexpr std::uint64_t kCycles = 1000;
  soc::SocDesc d = soc::ip_testbench_desc();
  d.policy = SchedPolicy::kEventDriven;
  d.managers.front().seed = 11;
  d.managers.front().traffic.enabled = true;
  d.traces.push_back(soc::TraceDesc{"cap_gen", "gen.out"});
  d.traces.push_back(soc::TraceDesc{"cap_mem", "mem.in"});
  const auto rec_soc = soc::SocBuilder::build(d);
  rec_soc->sim().run(kCycles);

  soc::SocDesc rd = d;
  rd.policy = SchedPolicy::kFullSweep;
  rd.managers.front().kind = soc::ManagerKind::kTraceReplay;
  rd.managers.front().traffic = {};
  const auto rep_soc = soc::SocBuilder::build(rd);
  rep_soc->get<trace::TraceTrafficGen>("gen").set_stream(
      rec_soc->get<trace::Recorder>("cap_gen").buffer());
  rep_soc->sim().run(kCycles);
  EXPECT_EQ(rep_soc->get<trace::Recorder>("cap_mem").buffer().records,
            rec_soc->get<trace::Recorder>("cap_mem").buffer().records);
}

// ----------------------------- retracts --------------------------------

// Forces an AW retract: with max_outstanding == 1 the generator
// multiplexes one write and one read onto the link; the memory accepts
// AR immediately but stalls AW for 5 cycles, so the generator presents
// AW, gives up in favour of the read, and re-presents later. The
// recording must carry the retract, and the replay must still converge.
TEST(TraceReplay, RetractedPresentationsReplayExactly) {
  axi::MemoryConfig cfg;
  cfg.aw_accept_latency = 5;
  cfg.ar_accept_latency = 0;

  axi::Link rec_link;
  axi::TrafficGenerator gen("gen", rec_link);
  axi::MemorySubordinate rec_mem("mem", rec_link, cfg);
  trace::Recorder rec("cap", "gen.out", rec_link);
  sim::Simulator rs;
  rs.add(gen);
  rs.add(rec_mem);
  rs.add(rec);
  rs.reset();
  gen.set_max_outstanding(1);
  gen.push(axi::TxnDesc{true, 2, 0x100, 3, 3, axi::Burst::kIncr});
  gen.push(axi::TxnDesc{false, 1, 0x200, 3, 3, axi::Burst::kIncr});
  ASSERT_TRUE(rs.run_until([&] { return gen.completed() >= 2; }, 400));
  rs.run(4);  // drain trailing handshakes

  std::size_t retracts = 0;
  for (const trace::TraceRecord& r : rec.buffer().records) {
    if (r.retract) ++retracts;
  }
  ASSERT_GE(retracts, 1u) << "scenario no longer provokes a retract";

  axi::Link rep_link;
  trace::TraceTrafficGen rep("gen", rep_link);
  axi::MemorySubordinate rep_mem("mem", rep_link, cfg);
  trace::Recorder check("cap", "gen.out", rep_link);
  sim::Simulator ps;
  ps.add(rep);
  ps.add(rep_mem);
  ps.add(check);
  ps.reset();
  rep.set_stream(rec.buffer());
  ps.run(rs.cycle());

  EXPECT_TRUE(rep.done());
  EXPECT_EQ(check.buffer().records, rec.buffer().records);
  for (axi::Addr a = 0x100; a < 0x120; ++a) {
    EXPECT_EQ(rep_mem.peek(a), rec_mem.peek(a)) << "addr 0x" << std::hex << a;
  }
}

// ------------------------- committed fixture ---------------------------

// The pinned stream must keep driving the testbench to the same end
// state a live recording run reaches — loaded through the declarative
// trace_path so the builder's file frontend is covered too.
TEST(TraceReplayFixture, FixtureDrivesTestbenchLikeALiveRun) {
  constexpr std::uint64_t kSeed = 42;     // how the fixture was recorded
  constexpr std::uint64_t kCycles = 2000; // (see examples/trace_replay.cpp)
  soc::SocDesc d = soc::ip_testbench_desc();
  d.managers.front().seed = kSeed;
  d.managers.front().traffic.enabled = true;
  d.traces.push_back(soc::TraceDesc{"cap_mem", "mem.in"});
  const auto rec_soc = soc::SocBuilder::build(d);
  rec_soc->sim().run(kCycles);

  soc::SocDesc rd = d;
  rd.managers.front().kind = soc::ManagerKind::kTraceReplay;
  rd.managers.front().traffic = {};
  rd.managers.front().trace_path =
      std::string(TMU_TEST_DATA_DIR) + "/ip_testbench_gen.axitrace";
  const auto rep_soc = soc::SocBuilder::build(rd);
  rep_soc->sim().run(kCycles);

  EXPECT_TRUE(rep_soc->get<trace::TraceTrafficGen>("gen").done());
  EXPECT_EQ(rep_soc->get<trace::Recorder>("cap_mem").buffer().records,
            rec_soc->get<trace::Recorder>("cap_mem").buffer().records);
  EXPECT_EQ(memory_fingerprint(rep_soc->get<axi::MemorySubordinate>("mem"),
                               0, 0x10000),
            memory_fingerprint(rec_soc->get<axi::MemorySubordinate>("mem"),
                               0, 0x10000));
}

}  // namespace
