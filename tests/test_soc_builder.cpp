// SocBuilder validation and SocDesc JSON round-trip: every malformed
// desc class throws std::invalid_argument naming the culprit blocks,
// and the canonical topologies survive to_json -> from_json with full
// equality (and a stable hash).

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "axi/traffic_gen.hpp"
#include "soc/builder.hpp"
#include "soc/cheshire.hpp"
#include "soc/topologies.hpp"
#include "tmu/tmu.hpp"

namespace {

using soc::GuardDesc;
using soc::ManagerDesc;
using soc::SocBuilder;
using soc::SocDesc;
using soc::SubordinateDesc;

/// Minimal valid two-endpoint desc the malformed variants start from.
SocDesc base_desc() {
  SocDesc d;
  d.name = "base";
  ManagerDesc m;
  m.name = "gen";
  d.managers = {m};
  SubordinateDesc s0;
  s0.name = "mem0";
  s0.base = 0x0000;
  s0.size = 0x1000;
  SubordinateDesc s1;
  s1.name = "mem1";
  s1.base = 0x1000;
  s1.size = 0x1000;
  d.subordinates = {s0, s1};
  return d;
}

/// The validation error must name the offending blocks.
void expect_invalid(const SocDesc& d, const std::string& fragment) {
  try {
    SocBuilder::validate(d);
    FAIL() << "expected std::invalid_argument mentioning \"" << fragment
           << "\"";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "error was: " << e.what();
  }
}

TEST(SocBuilderValidation, AcceptsTheCanonicalTopologies) {
  EXPECT_NO_THROW(SocBuilder::validate(soc::cheshire_desc({})));
  EXPECT_NO_THROW(SocBuilder::validate(soc::ip_testbench_desc()));
  EXPECT_NO_THROW(SocBuilder::validate(soc::grid_desc(4, 3, 1)));
}

TEST(SocBuilderValidation, DuplicateBlockNameNamesTheCulprit) {
  SocDesc d = base_desc();
  ManagerDesc m2;
  m2.name = "mem1";  // collides with a subordinate
  d.managers.push_back(m2);
  expect_invalid(d, "duplicate block name 'mem1'");

  SocDesc d2 = base_desc();
  d2.subordinates[1].name = "mem0";
  d2.subordinates[1].base = 0x1000;
  expect_invalid(d2, "duplicate block name 'mem0'");
}

TEST(SocBuilderValidation, EmptyAndMissingPieces) {
  SocDesc d = base_desc();
  d.managers.clear();
  expect_invalid(d, "no managers");

  SocDesc d2 = base_desc();
  d2.subordinates.clear();
  expect_invalid(d2, "no subordinates");

  SocDesc d3 = base_desc();
  d3.managers[0].name = "";
  expect_invalid(d3, "empty name");
}

TEST(SocBuilderValidation, GuardOnUnknownSubordinateIsDangling) {
  SocDesc d = base_desc();
  GuardDesc g;
  g.name = "tmu";
  g.subordinate = "nonexistent";
  d.guards = {g};
  expect_invalid(d, "guard 'tmu' references unknown subordinate "
                    "'nonexistent'");
}

TEST(SocBuilderValidation, DoubleGuardOnOneSubordinate) {
  SocDesc d = base_desc();
  GuardDesc g0;
  g0.name = "tmu0";
  g0.subordinate = "mem0";
  GuardDesc g1;
  g1.name = "tmu1";
  g1.subordinate = "mem0";
  d.guards = {g0, g1};
  expect_invalid(d, "'mem0' is guarded twice, by 'tmu0' and 'tmu1'");
}

TEST(SocBuilderValidation, OverlappingAndUnreachableWindows) {
  SocDesc d = base_desc();
  d.subordinates[1].base = 0x0800;  // overlaps mem0's [0, 0x1000)
  expect_invalid(d, "address windows of 'mem0' and 'mem1' overlap");

  SocDesc d2 = base_desc();
  d2.subordinates[0].size = 0;
  expect_invalid(d2, "subordinate 'mem0' has an empty address window");

  SocDesc d3 = base_desc();
  d3.subordinates[1].base = ~0ull - 0x10;
  d3.subordinates[1].size = 0x1000;
  expect_invalid(d3, "'mem1' address window wraps");
}

TEST(SocBuilderValidation, PointToPointConstraints) {
  SocDesc d = soc::ip_testbench_desc();
  ManagerDesc extra;
  extra.name = "gen2";
  d.managers.push_back(extra);
  expect_invalid(d, "point-to-point");
}

TEST(SocBuilderValidation, DmaManagerWithRandomTraffic) {
  SocDesc d = base_desc();
  d.managers[0].kind = soc::ManagerKind::kDmaEngine;
  d.managers[0].traffic.enabled = true;
  expect_invalid(d, "manager 'gen' is a dma_engine");
}

TEST(SocBuilderValidation, RecoveryWithNothingToService) {
  SocDesc d = base_desc();
  d.recovery.enabled = true;
  expect_invalid(d, "no guards to service");
}

TEST(SocBuilderLookup, TypedGetNamesTheCulprit) {
  const auto soc = SocBuilder::build(soc::ip_testbench_desc());
  EXPECT_NO_THROW(soc->get<tmu::Tmu>("tmu"));
  EXPECT_NO_THROW(soc->get<axi::TrafficGenerator>("gen"));
  try {
    soc->get<tmu::Tmu>("missing");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'missing'"), std::string::npos);
  }
  try {
    soc->get<tmu::Tmu>("gen");  // exists, wrong type
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'gen'"), std::string::npos);
  }
}

// ------------------------------------------------------------------
// JSON round-trip
// ------------------------------------------------------------------

TEST(SocDescJson, CanonicalTopologiesRoundTrip) {
  tmu::TmuConfig cfg;
  cfg.variant = tmu::Variant::kTinyCounter;
  cfg.tc_total_budget = 123;
  cfg.prescaler_step = 4;
  cfg.sticky_bit = true;
  soc::EthernetConfig eth;
  eth.tx_fifo_beats = 32;
  for (const SocDesc& d :
       {soc::cheshire_desc(cfg, eth), soc::ip_testbench_desc(cfg),
        soc::grid_desc(4, 3, 1), soc::grid_desc(1, 1, 0)}) {
    const std::string json = d.to_json();
    const SocDesc back = SocDesc::from_json(json);
    EXPECT_EQ(d, back) << "round-trip mismatch for '" << d.name << "'";
    EXPECT_EQ(back.to_json(), json);
    EXPECT_EQ(d.hash(), back.hash());
  }
}

TEST(SocDescJson, FullPrecisionSeedsAndAddressesSurvive) {
  SocDesc d = base_desc();
  d.managers[0].seed = 0xDEADBEEFCAFEBABEull;  // > 53-bit mantissa
  d.managers[0].traffic.p_new_txn = 0.1;  // not exactly representable
  d.subordinates[1].base = 0xFFFF'FFFF'0000'0000ull;
  d.subordinates[1].size = 0x8000'0000ull;
  const SocDesc back = SocDesc::from_json(d.to_json());
  EXPECT_EQ(d, back);
}

TEST(SocDescJson, HashDistinguishesTopologies) {
  EXPECT_NE(soc::grid_desc(4, 3, 1).hash(), soc::grid_desc(4, 4, 1).hash());
  EXPECT_NE(soc::ip_testbench_desc().hash(), soc::cheshire_desc({}).hash());
  // Equal descs hash equal (determinism across calls).
  EXPECT_EQ(soc::grid_desc(8, 6, 2).hash(), soc::grid_desc(8, 6, 2).hash());
}

TEST(SocDescJson, MalformedDocumentsThrowNamingTheProblem) {
  EXPECT_THROW(SocDesc::from_json("not json"), std::invalid_argument);
  EXPECT_THROW(SocDesc::from_json("{}"), std::invalid_argument);  // schema
  try {
    SocDesc::from_json(R"({"schema": "tmu-soc-desc-v1", "nope": 1})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown key \"nope\""),
              std::string::npos);
  }
  try {
    SocDesc::from_json(
        R"({"schema": "tmu-soc-desc-v1", "policy": "sometimes"})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sometimes"), std::string::npos);
  }
  // Out-of-range integers must fail naming the field, not truncate
  // into a silently different topology.
  try {
    SocDesc::from_json(R"({"schema": "tmu-soc-desc-v1", "managers":
        [{"name": "g", "traffic": {"len_max": 300}}]})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("len_max"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("300"), std::string::npos);
  }
  EXPECT_THROW(
      SocDesc::from_json(
          R"({"schema": "tmu-soc-desc-v1", "id_shift": 99999999999999999999})"),
      std::invalid_argument);
}

TEST(SocDescJson, BuildsFromParsedDocument) {
  // The remote-shard path: serialize, parse, elaborate, run.
  const std::string json = soc::grid_desc(2, 2, 1).to_json();
  const auto soc = SocBuilder::build(SocDesc::from_json(json));
  soc->sim().run(500);
  std::size_t done = 0;
  for (const ManagerDesc& m : soc->desc().managers) {
    done += soc->get<axi::TrafficGenerator>(m.name).completed();
  }
  EXPECT_GT(done, 0u);
}

}  // namespace
