// SocBuilder validation and SocDesc JSON round-trip: every malformed
// desc class throws std::invalid_argument naming the culprit blocks,
// and the canonical topologies survive to_json -> from_json with full
// equality (and a stable hash).

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "axi/traffic_gen.hpp"
#include "soc/builder.hpp"
#include "soc/cheshire.hpp"
#include "soc/topologies.hpp"
#include "tmu/tmu.hpp"

namespace {

using soc::GuardDesc;
using soc::ManagerDesc;
using soc::SocBuilder;
using soc::SocDesc;
using soc::SubordinateDesc;

/// Minimal valid two-endpoint desc the malformed variants start from.
SocDesc base_desc() {
  SocDesc d;
  d.name = "base";
  ManagerDesc m;
  m.name = "gen";
  d.managers = {m};
  SubordinateDesc s0;
  s0.name = "mem0";
  s0.base = 0x0000;
  s0.size = 0x1000;
  SubordinateDesc s1;
  s1.name = "mem1";
  s1.base = 0x1000;
  s1.size = 0x1000;
  d.subordinates = {s0, s1};
  return d;
}

/// The validation error must name the offending blocks.
void expect_invalid(const SocDesc& d, const std::string& fragment) {
  try {
    SocBuilder::validate(d);
    FAIL() << "expected std::invalid_argument mentioning \"" << fragment
           << "\"";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "error was: " << e.what();
  }
}

TEST(SocBuilderValidation, AcceptsTheCanonicalTopologies) {
  EXPECT_NO_THROW(SocBuilder::validate(soc::cheshire_desc({})));
  EXPECT_NO_THROW(SocBuilder::validate(soc::ip_testbench_desc()));
  EXPECT_NO_THROW(SocBuilder::validate(soc::grid_desc(4, 3, 1)));
}

TEST(SocBuilderValidation, DuplicateBlockNameNamesTheCulprit) {
  SocDesc d = base_desc();
  ManagerDesc m2;
  m2.name = "mem1";  // collides with a subordinate
  d.managers.push_back(m2);
  expect_invalid(d, "duplicate block name 'mem1'");

  SocDesc d2 = base_desc();
  d2.subordinates[1].name = "mem0";
  d2.subordinates[1].base = 0x1000;
  expect_invalid(d2, "duplicate block name 'mem0'");
}

TEST(SocBuilderValidation, EmptyAndMissingPieces) {
  SocDesc d = base_desc();
  d.managers.clear();
  expect_invalid(d, "no managers");

  SocDesc d2 = base_desc();
  d2.subordinates.clear();
  expect_invalid(d2, "no subordinates");

  SocDesc d3 = base_desc();
  d3.managers[0].name = "";
  expect_invalid(d3, "empty name");
}

TEST(SocBuilderValidation, GuardOnUnknownSubordinateIsDangling) {
  SocDesc d = base_desc();
  GuardDesc g;
  g.name = "tmu";
  g.subordinate = "nonexistent";
  d.guards = {g};
  expect_invalid(d, "guard 'tmu' references unknown subordinate "
                    "'nonexistent'");
}

TEST(SocBuilderValidation, DoubleGuardOnOneSubordinate) {
  SocDesc d = base_desc();
  GuardDesc g0;
  g0.name = "tmu0";
  g0.subordinate = "mem0";
  GuardDesc g1;
  g1.name = "tmu1";
  g1.subordinate = "mem0";
  d.guards = {g0, g1};
  expect_invalid(d, "'mem0' is guarded twice, by 'tmu0' and 'tmu1'");
}

TEST(SocBuilderValidation, OverlappingAndUnreachableWindows) {
  SocDesc d = base_desc();
  d.subordinates[1].base = 0x0800;  // overlaps mem0's [0, 0x1000)
  expect_invalid(d, "address windows of 'mem0' and 'mem1' overlap");

  SocDesc d2 = base_desc();
  d2.subordinates[0].size = 0;
  expect_invalid(d2, "subordinate 'mem0' has an empty address window");

  SocDesc d3 = base_desc();
  d3.subordinates[1].base = ~0ull - 0x10;
  d3.subordinates[1].size = 0x1000;
  expect_invalid(d3, "'mem1' address window wraps");
}

TEST(SocBuilderValidation, PointToPointConstraints) {
  SocDesc d = soc::ip_testbench_desc();
  ManagerDesc extra;
  extra.name = "gen2";
  d.managers.push_back(extra);
  expect_invalid(d, "point-to-point");
}

TEST(SocBuilderValidation, DmaManagerWithRandomTraffic) {
  SocDesc d = base_desc();
  d.managers[0].kind = soc::ManagerKind::kDmaEngine;
  d.managers[0].traffic.enabled = true;
  expect_invalid(d, "manager 'gen' is a dma_engine");
}

TEST(SocBuilderValidation, RecoveryWithNothingToService) {
  SocDesc d = base_desc();
  d.recovery.enabled = true;
  expect_invalid(d, "no guards to service");
}

// ------------------------------------------------------------------
// Nested (cluster) validation.
// ------------------------------------------------------------------

/// base_desc with mem1 swapped for a cluster of two leaves covering the
/// same window.
SocDesc nested_desc() {
  SocDesc d = base_desc();
  SubordinateDesc& cl = d.subordinates[1];
  cl.name = "cl";
  cl.kind = soc::SubordinateKind::kCluster;
  cl.base = 0x1000;
  cl.size = 0x1000;
  soc::ClusterDesc c;
  c.id_shift = 10;
  SubordinateDesc leaf0;
  leaf0.name = "leaf0";
  leaf0.base = 0x1000;
  leaf0.size = 0x800;
  SubordinateDesc leaf1;
  leaf1.name = "leaf1";
  leaf1.base = 0x1800;
  leaf1.size = 0x800;
  c.subordinates = {leaf0, leaf1};
  cl.cluster = {c};
  return d;
}

TEST(SocBuilderValidation, ProbesTargetRealLinksWithFreshNames) {
  // Manager ports, subordinate inputs, and cluster downlinks are all
  // probeable; the leaves of a nested cluster too.
  SocDesc d = nested_desc();
  d.probes.push_back({"p0", "gen.out"});
  d.probes.push_back({"p1", "mem0.in"});
  d.probes.push_back({"p2", "cl.down"});
  d.probes.push_back({"p3", "leaf1.in"});
  EXPECT_NO_THROW(SocBuilder::validate(d));

  SocDesc bad = base_desc();
  bad.probes.push_back({"p0", "gen.in"});  // managers expose .out, not .in
  expect_invalid(bad, "probe 'p0' references unknown link 'gen.in'");

  SocDesc clash = base_desc();
  clash.probes.push_back({"mem1", "gen.out"});
  expect_invalid(clash, "duplicate block name 'mem1'");
}

TEST(SocBuilderValidation, TracesValidateLikeProbes) {
  SocDesc d = nested_desc();
  d.traces.push_back({"t0", "gen.out"});
  d.traces.push_back({"t1", "cl.down"});
  d.traces.push_back({"t2", "leaf0.in"});
  EXPECT_NO_THROW(SocBuilder::validate(d));

  SocDesc bad = base_desc();
  bad.traces.push_back({"t0", "mem9.in"});
  expect_invalid(bad, "trace 't0' references unknown link 'mem9.in'");

  SocDesc clash = base_desc();
  clash.traces.push_back({"mem0", "gen.out"});
  expect_invalid(clash, "duplicate block name 'mem0'");
}

TEST(SocBuilderValidation, TraceReplayManagerWiring) {
  // trace_path is a replay-only knob...
  SocDesc d = base_desc();
  d.managers[0].trace_path = "stream.axitrace";
  expect_invalid(d, "carries a trace_path");

  // ...and replay managers cannot also generate random traffic.
  SocDesc d2 = base_desc();
  d2.managers[0].kind = soc::ManagerKind::kTraceReplay;
  d2.managers[0].traffic.enabled = true;
  expect_invalid(d2, "is a trace_replay but has random traffic enabled");

  // A bad trace_path fails at build (elaboration loads the file),
  // naming the desc, the manager and the underlying reader error.
  SocDesc d3 = base_desc();
  d3.managers[0].kind = soc::ManagerKind::kTraceReplay;
  d3.managers[0].trace_path = "/nonexistent/stream.axitrace";
  EXPECT_NO_THROW(SocBuilder::validate(d3));
  try {
    SocBuilder::build(d3);
    FAIL() << "expected trace_path load failure";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("trace_path failed to load"), std::string::npos) << msg;
    EXPECT_NE(msg.find("gen"), std::string::npos) << msg;
  }
}

TEST(SocBuilderValidation, AcceptsTheHierarchicalTopologies) {
  EXPECT_NO_THROW(SocBuilder::validate(nested_desc()));
  EXPECT_NO_THROW(SocBuilder::validate(soc::hierarchical_desc({})));
  EXPECT_NO_THROW(SocBuilder::validate(
      soc::hierarchical_desc({}, soc::HierGuardSite::kBridge)));
  EXPECT_NO_THROW(SocBuilder::validate(soc::hier_grid_desc(4, 2, 3, 1)));
}

TEST(SocBuilderValidation, ClusterKindAndPayloadMustAgree) {
  SocDesc d = nested_desc();
  d.subordinates[1].cluster.clear();
  expect_invalid(d, "'cl' is a cluster but carries no ClusterDesc payload");

  SocDesc d2 = nested_desc();
  d2.subordinates[1].kind = soc::SubordinateKind::kMemory;
  expect_invalid(d2, "'cl' carries a cluster payload but is not of kind "
                     "cluster");

  SocDesc d3 = nested_desc();
  d3.subordinates[1].cluster[0].subordinates.clear();
  expect_invalid(d3, "cluster 'cl' declares no subordinates");
}

TEST(SocBuilderValidation, SubWindowsMustTileInsideTheClusterWindow) {
  SocDesc d = nested_desc();
  d.subordinates[1].cluster[0].subordinates[1].size = 0x1000;  // past end
  expect_invalid(d, "'leaf1' address window does not fit inside its "
                    "cluster's window");

  SocDesc d2 = nested_desc();
  d2.subordinates[1].cluster[0].subordinates[1].base = 0x1400;  // overlap
  expect_invalid(d2, "address windows of 'leaf0' and 'leaf1' overlap");
}

TEST(SocBuilderValidation, DuplicateNamesAreCaughtTreeWide) {
  SocDesc d = nested_desc();
  d.subordinates[1].cluster[0].subordinates[0].name = "mem0";  // vs root
  expect_invalid(d, "duplicate block name 'mem0'");

  SocDesc d2 = nested_desc();
  d2.subordinates[1].cluster[0].xbar_name = "gen";  // vs a manager
  expect_invalid(d2, "duplicate block name 'gen'");
}

TEST(SocBuilderValidation, GuardsBindToTheirOwnLevel) {
  // A root guard cannot reach inside a cluster...
  SocDesc d = nested_desc();
  GuardDesc g;
  g.name = "tmu";
  g.subordinate = "leaf0";
  d.guards = {g};
  expect_invalid(d, "guard 'tmu' references unknown subordinate 'leaf0'");

  // ...but may guard the cluster itself (i.e. the bridge), and cluster
  // guards bind to the nested level's subordinates.
  SocDesc d2 = nested_desc();
  GuardDesc on_bridge = g;
  on_bridge.subordinate = "cl";
  d2.guards = {on_bridge};
  GuardDesc inner;
  inner.name = "leaf_tmu";
  inner.subordinate = "leaf1";
  d2.subordinates[1].cluster[0].guards = {inner};
  EXPECT_NO_THROW(SocBuilder::validate(d2));
}

TEST(SocBuilderValidation, BridgeConfigConsistency) {
  SocDesc d = nested_desc();
  d.subordinates[1].cluster[0].bridge.req_latency = 0;  // rsp stays 1
  expect_invalid(d, "cluster 'cl' bridge mixes zero and non-zero");

  SocDesc d2 = nested_desc();
  d2.subordinates[1].cluster[0].bridge.req_latency = 0;
  d2.subordinates[1].cluster[0].bridge.rsp_latency = 0;
  d2.subordinates[1].cluster[0].bridge.id_remap = true;
  expect_invalid(d2, "cluster 'cl' bridge cannot remap IDs at latency 0");

  SocDesc d3 = nested_desc();
  d3.subordinates[1].cluster[0].bridge.id_remap = true;
  d3.subordinates[1].cluster[0].bridge.max_ids = 0;
  expect_invalid(d3, "cluster 'cl' bridge remaps IDs with max_ids 0");

  SocDesc d4 = nested_desc();
  d4.subordinates[1].cluster[0].bridge.fifo_depth = 0;
  expect_invalid(d4, "cluster 'cl' bridge has fifo_depth 0");
}

TEST(SocBuilderValidation, NestedIdShiftMustClearIncomingIdWidth) {
  // Root emits id_shift(8) + 0 manager bits = 8-bit IDs; a 6-bit nested
  // shift would corrupt response de-prefixing.
  SocDesc d = nested_desc();
  d.subordinates[1].cluster[0].id_shift = 6;
  expect_invalid(d, "cluster 'cl' id_shift 6 is narrower than the 8 ID "
                    "bits entering the cluster");

  // Bridge ID-remap compacts to bits_for(max_ids - 1), making it legal.
  SocDesc d2 = nested_desc();
  d2.subordinates[1].cluster[0].id_shift = 6;
  d2.subordinates[1].cluster[0].bridge.id_remap = true;
  d2.subordinates[1].cluster[0].bridge.max_ids = 16;
  EXPECT_NO_THROW(SocBuilder::validate(d2));
}

TEST(SocBuilderValidation, BankTimingMustBePowerOfTwoBanks) {
  SocDesc d = base_desc();
  d.subordinates[0].mem.bank.enabled = true;
  d.subordinates[0].mem.bank.num_banks = 6;
  expect_invalid(d, "'mem0' bank.num_banks 6 is not a power of two");
  d.subordinates[0].mem.bank.num_banks = 8;
  EXPECT_NO_THROW(SocBuilder::validate(d));
}

TEST(SocBuilderLookup, TypedGetNamesTheCulprit) {
  const auto soc = SocBuilder::build(soc::ip_testbench_desc());
  EXPECT_NO_THROW(soc->get<tmu::Tmu>("tmu"));
  EXPECT_NO_THROW(soc->get<axi::TrafficGenerator>("gen"));
  try {
    soc->get<tmu::Tmu>("missing");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'missing'"), std::string::npos);
  }
  try {
    soc->get<tmu::Tmu>("gen");  // exists, wrong type
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'gen'"), std::string::npos);
  }
}

// ------------------------------------------------------------------
// JSON round-trip
// ------------------------------------------------------------------

TEST(SocDescJson, CanonicalTopologiesRoundTrip) {
  tmu::TmuConfig cfg;
  cfg.variant = tmu::Variant::kTinyCounter;
  cfg.tc_total_budget = 123;
  cfg.prescaler_step = 4;
  cfg.sticky_bit = true;
  soc::EthernetConfig eth;
  eth.tx_fifo_beats = 32;
  for (const SocDesc& d :
       {soc::cheshire_desc(cfg, eth), soc::ip_testbench_desc(cfg),
        soc::grid_desc(4, 3, 1), soc::grid_desc(1, 1, 0)}) {
    const std::string json = d.to_json();
    const SocDesc back = SocDesc::from_json(json);
    EXPECT_EQ(d, back) << "round-trip mismatch for '" << d.name << "'";
    EXPECT_EQ(back.to_json(), json);
    EXPECT_EQ(d.hash(), back.hash());
  }
}

TEST(SocDescJson, FullPrecisionSeedsAndAddressesSurvive) {
  SocDesc d = base_desc();
  d.managers[0].seed = 0xDEADBEEFCAFEBABEull;  // > 53-bit mantissa
  d.managers[0].traffic.p_new_txn = 0.1;  // not exactly representable
  d.subordinates[1].base = 0xFFFF'FFFF'0000'0000ull;
  d.subordinates[1].size = 0x8000'0000ull;
  const SocDesc back = SocDesc::from_json(d.to_json());
  EXPECT_EQ(d, back);
}

TEST(SocDescJson, HashDistinguishesTopologies) {
  EXPECT_NE(soc::grid_desc(4, 3, 1).hash(), soc::grid_desc(4, 4, 1).hash());
  EXPECT_NE(soc::ip_testbench_desc().hash(), soc::cheshire_desc({}).hash());
  // Equal descs hash equal (determinism across calls).
  EXPECT_EQ(soc::grid_desc(8, 6, 2).hash(), soc::grid_desc(8, 6, 2).hash());
}

TEST(SocDescJson, MalformedDocumentsThrowNamingTheProblem) {
  EXPECT_THROW(SocDesc::from_json("not json"), std::invalid_argument);
  EXPECT_THROW(SocDesc::from_json("{}"), std::invalid_argument);  // schema
  try {
    SocDesc::from_json(R"({"schema": "tmu-soc-desc-v1", "nope": 1})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("unknown key \"nope\""),
              std::string::npos);
  }
  try {
    SocDesc::from_json(
        R"({"schema": "tmu-soc-desc-v1", "policy": "sometimes"})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sometimes"), std::string::npos);
  }
  // Out-of-range integers must fail naming the field, not truncate
  // into a silently different topology.
  try {
    SocDesc::from_json(R"({"schema": "tmu-soc-desc-v1", "managers":
        [{"name": "g", "traffic": {"len_max": 300}}]})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("len_max"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("300"), std::string::npos);
  }
  EXPECT_THROW(
      SocDesc::from_json(
          R"({"schema": "tmu-soc-desc-v1", "id_shift": 99999999999999999999})"),
      std::invalid_argument);
}

TEST(SocDescJson, BuildsFromParsedDocument) {
  // The remote-shard path: serialize, parse, elaborate, run.
  const std::string json = soc::grid_desc(2, 2, 1).to_json();
  const auto soc = SocBuilder::build(SocDesc::from_json(json));
  soc->sim().run(500);
  std::size_t done = 0;
  for (const ManagerDesc& m : soc->desc().managers) {
    done += soc->get<axi::TrafficGenerator>(m.name).completed();
  }
  EXPECT_GT(done, 0u);
}

}  // namespace
