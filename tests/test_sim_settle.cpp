// Regression tests for the settle hot path under both scheduling
// policies: the kernel must run exactly one eval convergence per cycle
// on a settled netlist, the settled-state cache must be invalidated by
// everything that can change observable state (tick, reset, Wire::force,
// external writes, late module registration), and the event-driven
// scheduler must wake only reader modules, re-discover dynamic read-sets
// on sensitivity misses, and name the offenders on divergence.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

#include "sim/kernel.hpp"
#include "sim/wire.hpp"

namespace {

using sim::sched::SchedPolicy;

// A register that copies its input wire on every clock edge.
class DFlop : public sim::Module {
 public:
  DFlop(std::string name, sim::Wire<int>& d, sim::Wire<int>& q)
      : sim::Module(std::move(name)), d_(d), q_(q) {}
  void eval() override { q_.write(state_); }
  void tick() override { state_ = d_.read(); }
  void reset() override { state_ = 0; }

 private:
  sim::Wire<int>& d_;
  sim::Wire<int>& q_;
  int state_ = 0;
};

// Combinational +1.
class Inc : public sim::Module {
 public:
  Inc(std::string name, sim::Wire<int>& in, sim::Wire<int>& out)
      : sim::Module(std::move(name)), in_(in), out_(out) {}
  void eval() override { out_.write(in_.read() + 1); }

 private:
  sim::Wire<int>& in_;
  sim::Wire<int>& out_;
};

// A pure combinational pass-through.
class PassThrough : public sim::Module {
 public:
  PassThrough(std::string name, sim::Wire<int>& in, sim::Wire<int>& out)
      : sim::Module(std::move(name)), in_(in), out_(out) {}
  void eval() override { out_.write(in_.read()); }

 private:
  sim::Wire<int>& in_;
  sim::Wire<int>& out_;
};

// A constant driver with a testbench knob routed through the precise,
// module-bound notify_state_change().
class Source : public sim::Module {
 public:
  Source(std::string name, sim::Wire<int>& out)
      : sim::Module(std::move(name)), out_(out) {}
  void eval() override { out_.write(value_); }
  void set_value(int v) {
    value_ = v;
    notify_state_change();
  }

 private:
  sim::Wire<int>& out_;
  int value_ = 0;
};

// Netlist under test: flop -> inc -> flop (a counter). With inc
// registered before flop, one post-edge convergence takes exactly 3
// full-sweep eval passes: one propagating the new register value to q,
// one rippling it through inc to d, and one confirming no change.
struct CounterFixture {
  sim::Wire<int> q, d;
  DFlop flop{"flop", d, q};
  Inc inc{"inc", q, d};
  sim::Simulator s;

  explicit CounterFixture(SchedPolicy p = SchedPolicy::kEventDriven) : s(p) {
    // Register in an order that requires settling (inc depends on flop).
    s.add(inc);
    s.add(flop);
    s.reset();
  }
};

// ------------------------------------------------------------------
// Policy-independent invariants, run under both schedulers. "Work done"
// is observed through module_evals(), which counts individual eval()
// calls in both modes.
// ------------------------------------------------------------------

class SimSettleBothPolicies : public ::testing::TestWithParam<SchedPolicy> {};

INSTANTIATE_TEST_SUITE_P(
    Policies, SimSettleBothPolicies,
    ::testing::Values(SchedPolicy::kFullSweep, SchedPolicy::kEventDriven),
    [](const ::testing::TestParamInfo<SchedPolicy>& info) {
      return std::string(sim::sched::to_string(info.param));
    });

TEST_P(SimSettleBothPolicies, SteadyStateCostIsConstantPerCycle) {
  CounterFixture f(GetParam());
  // reset() leaves the netlist settled, so each step() must pay only the
  // post-edge convergence, and every cycle pays the same amount.
  const std::uint64_t before = f.s.module_evals();
  f.s.step();
  const std::uint64_t per_cycle = f.s.module_evals() - before;
  EXPECT_GT(per_cycle, 0u);
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t p0 = f.s.module_evals();
    f.s.step();
    EXPECT_EQ(f.s.module_evals() - p0, per_cycle);
  }
}

TEST_P(SimSettleBothPolicies, SettleAfterStepIsFree) {
  CounterFixture f(GetParam());
  f.s.step();
  const std::uint64_t p0 = f.s.module_evals();
  f.s.settle();
  f.s.settle();
  EXPECT_EQ(f.s.module_evals(), p0);
}

TEST_P(SimSettleBothPolicies, BehaviorIdenticalCycleByCycle) {
  CounterFixture f(GetParam());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(f.q.read(), i);
    EXPECT_EQ(f.d.read(), i + 1);
    f.s.step();
  }
  EXPECT_EQ(f.s.cycle(), 20u);
}

TEST_P(SimSettleBothPolicies, ResetInvalidatesSettledState) {
  CounterFixture f(GetParam());
  f.s.run(5);
  EXPECT_EQ(f.q.read(), 5);
  const std::uint64_t p0 = f.s.module_evals();
  f.s.reset();
  // reset() must re-settle even though no wire was written in between
  // (register state changed behind the epoch's back).
  EXPECT_GT(f.s.module_evals(), p0);
  EXPECT_EQ(f.q.read(), 0);
  EXPECT_EQ(f.d.read(), 1);
}

TEST_P(SimSettleBothPolicies, ForceInvalidatesSettledState) {
  CounterFixture f(GetParam());
  f.s.step();
  f.q.force(41);  // an actual change: bumps the write epoch
  const std::uint64_t p0 = f.s.module_evals();
  f.s.settle();
  EXPECT_GT(f.s.module_evals(), p0);
}

TEST_P(SimSettleBothPolicies, NoChangeForceKeepsFastPath) {
  CounterFixture f(GetParam());
  f.s.step();
  const std::uint64_t p0 = f.s.module_evals();
  f.q.force(f.q.read());  // same value: no epoch bump, cache stays valid
  f.s.settle();
  EXPECT_EQ(f.s.module_evals(), p0);
}

TEST_P(SimSettleBothPolicies, ExternalWireWriteInvalidatesSettledState) {
  sim::Wire<int> in, out;
  PassThrough pt("pt", in, out);
  sim::Simulator s(GetParam());
  s.add(pt);
  s.reset();
  in.write(7);  // value change bumps the ambient epoch: cache misses
  s.settle();
  EXPECT_EQ(out.read(), 7);
}

TEST_P(SimSettleBothPolicies, NoChangeExternalWriteKeepsFastPath) {
  sim::Wire<int> in, out;
  PassThrough pt("pt", in, out);
  sim::Simulator s(GetParam());
  s.add(pt);
  s.reset();
  const std::uint64_t p0 = s.module_evals();
  in.write(in.read());  // same value: no epoch bump, no state change
  s.settle();
  EXPECT_EQ(s.module_evals(), p0);
}

TEST_P(SimSettleBothPolicies, LateAddInvalidatesSettledState) {
  sim::Wire<int> in, mid, out;
  PassThrough a("a", in, mid);
  PassThrough b("b", mid, out);
  sim::Simulator s(GetParam());
  s.add(a);
  s.reset();
  in.write(3);
  s.settle();
  s.add(b);  // registered after settling: must be evaluated on next settle
  s.settle();
  EXPECT_EQ(out.read(), 3);
}

TEST_P(SimSettleBothPolicies, InvalidateSettleForcesReeval) {
  CounterFixture f(GetParam());
  f.s.step();
  const std::uint64_t p0 = f.s.module_evals();
  f.s.invalidate_settle();
  f.s.settle();
  EXPECT_GT(f.s.module_evals(), p0);
}

TEST_P(SimSettleBothPolicies, TickOnlyModulesAreSkippedDuringSettle) {
  // A module declaring is_combinational() == false must never be
  // eval()ed by either scheduler, while its tick() still runs.
  class TickOnly : public sim::Module {
   public:
    using sim::Module::Module;
    bool is_combinational() const override { return false; }
    void eval() override { ++evals; }
    void tick() override { ++ticks; }
    int evals = 0;
    int ticks = 0;
  };
  CounterFixture f(GetParam());
  TickOnly mon("mon");
  f.s.add(mon);
  f.s.reset();
  f.s.run(10);
  EXPECT_EQ(mon.evals, 0);
  EXPECT_EQ(mon.ticks, 10);
}

TEST_P(SimSettleBothPolicies, ConvergenceErrorNamesDirtyModules) {
  // u1 and u2 increment each other's input: a genuine combinational
  // loop. The error must carry module names for diagnosis.
  sim::Wire<int> w1, w2;
  Inc u1("u1_osc", w2, w1);
  Inc u2("u2_osc", w1, w2);
  sim::Simulator s(GetParam());
  s.add(u1);
  s.add(u2);
  try {
    s.settle();
    FAIL() << "expected ConvergenceError";
  } catch (const sim::ConvergenceError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("combinational loop"), std::string::npos) << msg;
    // The full sweep's diagnostic pass names every oscillating module;
    // the event drain reports the still-queued dirty set, which for an
    // alternating two-module loop holds at least one of them.
    if (GetParam() == SchedPolicy::kFullSweep) {
      EXPECT_NE(msg.find("u1_osc"), std::string::npos) << msg;
      EXPECT_NE(msg.find("u2_osc"), std::string::npos) << msg;
    } else {
      EXPECT_TRUE(msg.find("u1_osc") != std::string::npos ||
                  msg.find("u2_osc") != std::string::npos)
          << msg;
    }
  }
}

// ------------------------------------------------------------------
// Full-sweep-specific pins (the historical kernel semantics).
// ------------------------------------------------------------------

TEST(SimSettleFullSweep, ExactlyOneConvergencePerCycleWhenSettled) {
  CounterFixture f(SchedPolicy::kFullSweep);
  // Each step() pays only the post-edge convergence: 3 passes for this
  // netlist, with the leading settle elided.
  const std::uint64_t before = f.s.eval_passes();
  f.s.step();
  EXPECT_EQ(f.s.eval_passes() - before, 3u);
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t p0 = f.s.eval_passes();
    f.s.step();
    EXPECT_EQ(f.s.eval_passes() - p0, 3u);
  }
}

TEST(SimSettleFullSweep, RunUntilPaysOneConvergencePerCycle) {
  CounterFixture f(SchedPolicy::kFullSweep);
  const std::uint64_t p0 = f.s.eval_passes();
  EXPECT_TRUE(f.s.run_until([&] { return f.q.read() == 8; }, 100));
  // 8 cycles at 3 passes each; the per-iteration leading settles and the
  // predicate-recheck settles must all hit the fast path.
  EXPECT_EQ(f.s.eval_passes() - p0, 24u);
}

// ------------------------------------------------------------------
// Event-driven-specific pins: activity-proportional settle.
// ------------------------------------------------------------------

TEST(SimSettleEventDriven, PostEdgeDrainCostsOneEvalPlusToggledCones) {
  CounterFixture f;  // default policy is event-driven
  // Per cycle: mark-all after the edge evaluates {inc, flop} once (2
  // evals); flop's q change wakes inc (1 more); inc's d change wakes
  // nobody (d has no eval-phase readers — the flop samples it in tick).
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t e0 = f.s.module_evals();
    const std::uint64_t p0 = f.s.eval_passes();
    f.s.step();
    EXPECT_EQ(f.s.module_evals() - e0, 3u);
    EXPECT_EQ(f.s.eval_passes() - p0, 1u);  // one drain per cycle
  }
}

TEST(SimSettleEventDriven, WireWriteWakesOnlyReaderModules) {
  // chain: in -> a -> mid -> b -> out, plus an unrelated island
  // in2 -> c -> out2. One drain after a mark-all evaluates each module
  // exactly once: when a's eval changes mid, its reader b is still
  // pending in the FIFO (dedup keeps it queued once) and so picks up
  // the fresh value in its single eval. The island never re-evaluates.
  sim::Wire<int> in, mid, out, in2, out2;
  PassThrough a("a", in, mid);
  PassThrough b("b", mid, out);
  PassThrough c("c", in2, out2);
  sim::Simulator s;
  s.add(a);
  s.add(b);
  s.add(c);
  s.reset();
  const std::uint64_t e0 = s.module_evals();
  in.write(1);  // ambient: conservative mark-all, then precise wakeups
  s.settle();
  EXPECT_EQ(out.read(), 1);
  EXPECT_EQ(s.module_evals() - e0, 3u);  // a, b (fresh mid), c

  // The same stimulus under a full sweep pays two full passes.
  sim::Wire<int> fin, fmid, fout, fin2, fout2;
  PassThrough fa("a", fin, fmid);
  PassThrough fb("b", fmid, fout);
  PassThrough fc("c", fin2, fout2);
  sim::Simulator fs(SchedPolicy::kFullSweep);
  fs.add(fa);
  fs.add(fb);
  fs.add(fc);
  fs.reset();
  const std::uint64_t f0 = fs.module_evals();
  fin.write(1);
  fs.settle();
  EXPECT_EQ(fout.read(), 1);
  EXPECT_EQ(fs.module_evals() - f0, 6u);  // 2 passes x 3 modules
}

TEST(SimSettleEventDriven, NotifyReEvaluatesOnlyTheNotifiedCone) {
  // Two independent sources; poking one through its module-bound
  // notify_state_change() must re-evaluate exactly that module.
  sim::Wire<int> out_a, out_b;
  Source sa("sa", out_a);
  Source sb("sb", out_b);
  sim::Simulator s;
  s.add(sa);
  s.add(sb);
  s.reset();
  const std::uint64_t e0 = s.module_evals();
  sa.set_value(7);
  s.settle();
  EXPECT_EQ(out_a.read(), 7);
  EXPECT_EQ(out_b.read(), 0);
  EXPECT_EQ(s.module_evals() - e0, 1u);
}

TEST(SimSettleEventDriven, SensitivityMissRediscoversDynamicReadSet) {
  // mux reads `b` only while sel != 0, so its discovered read-set starts
  // as {sel, a}. Changing b while sel == 0 must not wake it (its output
  // provably cannot change); once sel flips and a traced re-eval reads
  // b, the new edge is learned (a sensitivity miss) and subsequent b
  // changes propagate.
  class Mux : public sim::Module {
   public:
    Mux(std::string name, sim::Wire<int>& sel, sim::Wire<int>& a,
        sim::Wire<int>& b, sim::Wire<int>& out)
        : sim::Module(std::move(name)), sel_(sel), a_(a), b_(b), out_(out) {}
    void eval() override {
      out_.write(sel_.read() != 0 ? b_.read() : a_.read());
    }

   private:
    sim::Wire<int>& sel_;
    sim::Wire<int>& a_;
    sim::Wire<int>& b_;
    sim::Wire<int>& out_;
  };

  sim::Wire<int> sel, a, b, out;
  Source src("src", b);
  Mux mux("mux", sel, a, b, out);
  sim::Simulator s;
  s.add(src);
  s.add(mux);
  s.reset();

  // b := 7 through the source: only src is dirty, and b's fan-out does
  // not yet include mux, so exactly one eval runs.
  std::uint64_t e0 = s.module_evals();
  src.set_value(7);
  s.settle();
  EXPECT_EQ(s.module_evals() - e0, 1u);
  EXPECT_EQ(out.read(), 0);

  // sel := 1 (ambient write -> mark-all): mux now reads b, recording the
  // missing edge.
  const std::uint64_t misses0 = s.sched_stats().sensitivity_misses;
  sel.write(1);
  s.settle();
  EXPECT_EQ(out.read(), 7);
  EXPECT_GT(s.sched_stats().sensitivity_misses, misses0);

  // b := 9 through the source again: the learned edge wakes mux.
  e0 = s.module_evals();
  src.set_value(9);
  s.settle();
  EXPECT_EQ(out.read(), 9);
  EXPECT_EQ(s.module_evals() - e0, 2u);  // src, then mux via b's fan-out
}

TEST(SimSettleEventDriven, PolicySwitchMidRunStaysConsistent) {
  CounterFixture f;
  f.s.run(5);
  EXPECT_EQ(f.q.read(), 5);
  f.s.set_policy(SchedPolicy::kFullSweep);
  f.s.run(5);
  EXPECT_EQ(f.q.read(), 10);
  f.s.set_policy(SchedPolicy::kEventDriven);
  f.s.run(5);
  EXPECT_EQ(f.q.read(), 15);
}

TEST(SimSettleEventDriven, StatsReportWiresAndEdges) {
  CounterFixture f;
  const sim::sched::SchedStats& st = f.s.sched_stats();
  // Wires touched during settle: q and d (flop reads d only in tick,
  // which is untraced — so q/d both exist but only q carries an edge).
  EXPECT_EQ(st.wires, 2u);
  EXPECT_EQ(st.edges, 1u);  // inc <- q
  EXPECT_GT(st.module_evals, 0u);
  EXPECT_GT(st.drains, 0u);
  EXPECT_GT(st.wire_writes, 0u);
}

}  // namespace
