// Regression tests for the single-settle hot path: the kernel must run
// exactly one full eval convergence per cycle on a settled netlist, and
// the settled-state cache must be invalidated by everything that can
// change observable state (tick, reset, Wire::force, external writes,
// late module registration).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

#include "sim/kernel.hpp"
#include "sim/wire.hpp"

namespace {

// A register that copies its input wire on every clock edge.
class DFlop : public sim::Module {
 public:
  DFlop(std::string name, sim::Wire<int>& d, sim::Wire<int>& q)
      : sim::Module(std::move(name)), d_(d), q_(q) {}
  void eval() override { q_.write(state_); }
  void tick() override { state_ = d_.read(); }
  void reset() override { state_ = 0; }

 private:
  sim::Wire<int>& d_;
  sim::Wire<int>& q_;
  int state_ = 0;
};

// Combinational +1.
class Inc : public sim::Module {
 public:
  Inc(std::string name, sim::Wire<int>& in, sim::Wire<int>& out)
      : sim::Module(std::move(name)), in_(in), out_(out) {}
  void eval() override { out_.write(in_.read() + 1); }

 private:
  sim::Wire<int>& in_;
  sim::Wire<int>& out_;
};

// Netlist under test: flop -> inc -> flop (a counter). With inc
// registered before flop, one post-edge convergence takes exactly 3 eval
// passes: one propagating the new register value to q, one rippling it
// through inc to d, and one confirming no change.
struct CounterFixture {
  sim::Wire<int> q, d;
  DFlop flop{"flop", d, q};
  Inc inc{"inc", q, d};
  sim::Simulator s;

  CounterFixture() {
    // Register in an order that requires settling (inc depends on flop).
    s.add(inc);
    s.add(flop);
    s.reset();
  }
};

TEST(SimSettle, ExactlyOneConvergencePerCycleWhenSettled) {
  CounterFixture f;
  // reset() leaves the netlist settled, so each step() must pay only the
  // post-edge convergence: 3 passes for this netlist, with the leading
  // settle elided.
  const std::uint64_t before = f.s.eval_passes();
  f.s.step();
  const std::uint64_t per_cycle = f.s.eval_passes() - before;
  EXPECT_EQ(per_cycle, 3u);
  // Every subsequent cycle pays the same single convergence.
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t p0 = f.s.eval_passes();
    f.s.step();
    EXPECT_EQ(f.s.eval_passes() - p0, per_cycle);
  }
}

TEST(SimSettle, SettleAfterStepIsFree) {
  CounterFixture f;
  f.s.step();
  const std::uint64_t p0 = f.s.eval_passes();
  f.s.settle();
  f.s.settle();
  EXPECT_EQ(f.s.eval_passes(), p0);
}

TEST(SimSettle, RunUntilPaysOneConvergencePerCycle) {
  CounterFixture f;
  const std::uint64_t p0 = f.s.eval_passes();
  EXPECT_TRUE(f.s.run_until([&] { return f.q.read() == 8; }, 100));
  // 8 cycles at 3 passes each; the per-iteration leading settles and the
  // predicate-recheck settles must all hit the fast path.
  EXPECT_EQ(f.s.eval_passes() - p0, 24u);
}

TEST(SimSettle, BehaviorIdenticalCycleByCycle) {
  CounterFixture f;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(f.q.read(), i);
    EXPECT_EQ(f.d.read(), i + 1);
    f.s.step();
  }
  EXPECT_EQ(f.s.cycle(), 20u);
}

TEST(SimSettle, ResetInvalidatesSettledState) {
  CounterFixture f;
  f.s.run(5);
  EXPECT_EQ(f.q.read(), 5);
  const std::uint64_t p0 = f.s.eval_passes();
  f.s.reset();
  // reset() must re-settle even though no wire was written in between
  // (register state changed behind the epoch's back).
  EXPECT_GT(f.s.eval_passes(), p0);
  EXPECT_EQ(f.q.read(), 0);
  EXPECT_EQ(f.d.read(), 1);
}

TEST(SimSettle, ForceInvalidatesSettledState) {
  CounterFixture f;
  f.s.step();
  f.q.force(41);  // an actual change: bumps the write epoch
  const std::uint64_t p0 = f.s.eval_passes();
  f.s.settle();
  EXPECT_GT(f.s.eval_passes(), p0);
}

TEST(SimSettle, NoChangeForceKeepsFastPath) {
  CounterFixture f;
  f.s.step();
  const std::uint64_t p0 = f.s.eval_passes();
  f.q.force(f.q.read());  // same value: no epoch bump, cache stays valid
  f.s.settle();
  EXPECT_EQ(f.s.eval_passes(), p0);
}

// A pure combinational pass-through, for testing external wire writes.
class PassThrough : public sim::Module {
 public:
  PassThrough(std::string name, sim::Wire<int>& in, sim::Wire<int>& out)
      : sim::Module(std::move(name)), in_(in), out_(out) {}
  void eval() override { out_.write(in_.read()); }

 private:
  sim::Wire<int>& in_;
  sim::Wire<int>& out_;
};

TEST(SimSettle, ExternalWireWriteInvalidatesSettledState) {
  sim::Wire<int> in, out;
  PassThrough pt("pt", in, out);
  sim::Simulator s;
  s.add(pt);
  s.reset();
  in.write(7);  // value change bumps the epoch, so the cache misses
  s.settle();
  EXPECT_EQ(out.read(), 7);
}

TEST(SimSettle, NoChangeExternalWriteKeepsFastPath) {
  sim::Wire<int> in, out;
  PassThrough pt("pt", in, out);
  sim::Simulator s;
  s.add(pt);
  s.reset();
  const std::uint64_t p0 = s.eval_passes();
  in.write(in.read());  // writes the same value: no epoch bump, no state change
  s.settle();
  EXPECT_EQ(s.eval_passes(), p0);
}

TEST(SimSettle, LateAddInvalidatesSettledState) {
  sim::Wire<int> in, mid, out;
  PassThrough a("a", in, mid);
  PassThrough b("b", mid, out);
  sim::Simulator s;
  s.add(a);
  s.reset();
  in.write(3);
  s.settle();
  s.add(b);  // registered after settling: must be evaluated on next settle
  s.settle();
  EXPECT_EQ(out.read(), 3);
}

TEST(SimSettle, InvalidateSettleForcesReeval) {
  CounterFixture f;
  f.s.step();
  const std::uint64_t p0 = f.s.eval_passes();
  f.s.invalidate_settle();
  f.s.settle();
  EXPECT_GT(f.s.eval_passes(), p0);
}

}  // namespace
