#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace axi;
using fault::FaultInjector;
using fault::FaultPoint;

struct InjFixture : ::testing::Test {
  Link up, down;
  TrafficGenerator gen{"gen", up};
  FaultInjector inj{"inj", up, down};
  MemorySubordinate mem{"mem", down};
  sim::Simulator s;

  void SetUp() override {
    s.add(gen);
    s.add(inj);
    s.add(mem);
    s.reset();
  }
};

TEST_F(InjFixture, DisarmedIsTransparent) {
  gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  gen.push(TxnDesc{false, 0, 0x100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 500));
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_FALSE(inj.fault_active());
}

TEST_F(InjFixture, AwReadyStuckBlocksAccept) {
  inj.arm(FaultPoint::kAwReadyStuck);
  gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  s.run(100);
  EXPECT_EQ(gen.completed(), 0u);
  EXPECT_EQ(mem.writes_done(), 0u);
  EXPECT_TRUE(inj.fault_active());
}

TEST_F(InjFixture, NoPhantomBeatsUnderWReadyStuck) {
  inj.arm(FaultPoint::kWReadyStuck);
  gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  s.run(200);
  // Neither side may observe W handshakes; no write completes, no B.
  EXPECT_EQ(inj.w_beats_seen(), 0u);
  EXPECT_EQ(mem.writes_done(), 0u);
  EXPECT_EQ(gen.completed(), 0u);
}

TEST_F(InjFixture, MidBurstStallTriggersAfterBeats) {
  inj.arm(FaultPoint::kMidBurstWStall, 0, 3);
  gen.push(TxnDesc{true, 0, 0x100, 7, 3, Burst::kIncr});
  s.run(300);
  EXPECT_EQ(inj.w_beats_seen(), 3u);  // stalled exactly after 3 beats
  EXPECT_EQ(gen.completed(), 0u);
  EXPECT_TRUE(inj.fault_active());
}

TEST_F(InjFixture, BValidStuckSwallowsResponse) {
  inj.arm(FaultPoint::kBValidStuck);
  gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  s.run(200);
  EXPECT_EQ(gen.completed(), 0u);  // data moved but no response
  EXPECT_TRUE(inj.fault_active());
}

TEST_F(InjFixture, RStallAfterBeats) {
  inj.arm(FaultPoint::kMidBurstRStall, 0, 0, 2);
  gen.push(TxnDesc{false, 0, 0x0, 7, 3, Burst::kIncr});
  s.run(300);
  EXPECT_EQ(inj.r_beats_seen(), 2u);
  EXPECT_EQ(gen.completed(), 0u);
}

TEST_F(InjFixture, TriggerAtCycleDelays) {
  inj.arm(FaultPoint::kAwReadyStuck, 50);
  gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  // Before cycle 50 the write must complete unharmed.
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 49));
  EXPECT_FALSE(inj.fault_active());
  s.run(60);
  EXPECT_TRUE(inj.fault_active());
  EXPECT_GE(inj.fault_start_cycle(), 50u);
}

TEST_F(InjFixture, DisarmRestoresFlow) {
  inj.arm(FaultPoint::kAwReadyStuck);
  gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  s.run(50);
  EXPECT_EQ(gen.completed(), 0u);
  inj.disarm();
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 100));
}

TEST_F(InjFixture, SpuriousBAppears) {
  inj.arm(FaultPoint::kSpuriousB);
  s.run(5);
  // The manager sees a B it never requested (the generator logs a
  // warning and ignores it); the injector reports the fault active.
  EXPECT_TRUE(inj.fault_active());
  EXPECT_TRUE(up.rsp.read().b_valid);
}

TEST_F(InjFixture, WrongIdCorruptsB) {
  inj.arm(FaultPoint::kBWrongId);
  gen.push(TxnDesc{true, 5, 0x100, 0, 3, Burst::kIncr});
  s.run(100);
  EXPECT_EQ(gen.completed(), 0u);  // response never matches id 5
}

TEST(FaultPointMeta, ManagerSideClassification) {
  EXPECT_TRUE(fault::is_manager_side(FaultPoint::kWValidStuck));
  EXPECT_TRUE(fault::is_manager_side(FaultPoint::kAwValidDrop));
  EXPECT_TRUE(fault::is_manager_side(FaultPoint::kWLastEarly));
  EXPECT_FALSE(fault::is_manager_side(FaultPoint::kAwReadyStuck));
  EXPECT_FALSE(fault::is_manager_side(FaultPoint::kBValidStuck));
}

TEST(FaultPointMeta, Names) {
  EXPECT_STREQ(to_string(FaultPoint::kAwReadyStuck), "aw_ready_stuck");
  EXPECT_STREQ(to_string(FaultPoint::kSpuriousR), "spurious_r");
}

}  // namespace
