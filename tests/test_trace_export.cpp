// Chrome-trace-event export: the JSON must parse under the project's
// own strict reader, be byte-deterministic, pair every async "b" with
// its "e" (same id/pid/cat), mark retracted and truncated spans, and
// carry TMU lifecycle instants + scheduler counter tracks when exported
// straight from a Soc.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "sim/jsonparse.hpp"
#include "soc/builder.hpp"
#include "soc/topologies.hpp"
#include "tmu/tmu.hpp"
#include "trace/chrome_export.hpp"
#include "trace/format.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace trace;
using sim::jsonparse::Json;

TraceRecord aw(std::uint64_t cycle, std::uint32_t id, std::uint64_t addr) {
  return TraceRecord{cycle, Channel::kAw, false, id, addr, 0, 3, 3, 1,
                     0, 0, false};
}
TraceRecord b(std::uint64_t cycle, std::uint32_t id) {
  return TraceRecord{cycle, Channel::kB, false, id};
}
TraceRecord ar(std::uint64_t cycle, std::uint32_t id, std::uint64_t addr) {
  return TraceRecord{cycle, Channel::kAr, false, id, addr, 0, 0, 3, 1,
                     0, 0, false};
}
TraceRecord r_last(std::uint64_t cycle, std::uint32_t id) {
  return TraceRecord{cycle, Channel::kR, false, id, 0, 0, 0, 0, 0,
                     0, 0, true};
}
TraceRecord retract(std::uint64_t cycle, Channel ch) {
  return TraceRecord{cycle, ch, true};
}

/// Json objects are key-ordered vectors; linear lookup is the reader.
const Json* get(const Json& o, const char* key) {
  for (const auto& [k, v] : o.obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& field(const Json& ev, const char* key) {
  const Json* v = get(ev, key);
  EXPECT_NE(v, nullptr) << "missing field " << key;
  static const Json null{};
  return v != nullptr ? *v : null;
}

/// Parses with the strict project reader and returns the traceEvents
/// array (the export must be a single-top-level-object document).
std::vector<Json> trace_events(const std::string& json) {
  const Json doc = sim::jsonparse::parse(json, "chrome-export-test");
  const Json* evs = get(doc, "traceEvents");
  EXPECT_NE(evs, nullptr);
  return evs != nullptr ? evs->arr : std::vector<Json>{};
}

TEST(ChromeExport, PairsSpansAndMarksRetractsAndTruncation) {
  TraceBuffer buf;
  buf.link = "gen.out";
  buf.records = {
      aw(2, 1, 0x100),               // completes at cycle 6
      ar(3, 2, 0x200),               // retracted at 5, re-issued at 8
      retract(5, Channel::kAr),
      b(6, 1),
      ar(8, 2, 0x200),               // same payload: span keeps start 3
      r_last(10, 2),
      ar(12, 4, 0x300),              // never completes: truncated
  };
  ChromeTraceInput in;
  in.links = {&buf};
  in.end_cycle = 20;
  const std::string json = export_chrome_json(in);
  const std::vector<Json> evs = trace_events(json);

  std::size_t begins = 0, ends = 0, truncated = 0, retracted_spans = 0;
  for (const Json& ev : evs) {
    const std::string ph = field(ev, "ph").str;
    if (ph == "b") ++begins;
    if (ph == "e") {
      ++ends;
      const Json& args = field(ev, "args");
      if (get(args, "truncated") != nullptr) ++truncated;
      if (get(args, "retracted") != nullptr) ++retracted_spans;
    }
  }
  // Three spans: write id1, read id2 (survives its retract), read id4.
  EXPECT_EQ(begins, 3u);
  EXPECT_EQ(ends, begins);  // every span closed (one by truncation)
  EXPECT_EQ(truncated, 1u);
  EXPECT_EQ(retracted_spans, 0u);  // the retracted AR was re-issued

  // The re-presented read keeps its original start cycle 3.
  bool saw_read_span = false;
  for (const Json& ev : evs) {
    if (field(ev, "ph").str != "b") continue;
    if (field(ev, "name").str.rfind("read", 0) != 0) continue;
    if (field(ev, "ts").unum == 3) saw_read_span = true;
  }
  EXPECT_TRUE(saw_read_span) << "re-presented AR span lost its start";
}

TEST(ChromeExport, DeadRetractGetsARetractedEndEvent) {
  TraceBuffer buf;
  buf.link = "gen.out";
  buf.records = {aw(2, 1, 0x100), retract(4, Channel::kAw)};
  ChromeTraceInput in;
  in.links = {&buf};
  in.end_cycle = 10;
  const std::vector<Json> evs = trace_events(export_chrome_json(in));
  bool saw = false;
  for (const Json& ev : evs) {
    if (field(ev, "ph").str != "e") continue;
    if (get(field(ev, "args"), "retracted") != nullptr) {
      saw = true;
      EXPECT_EQ(field(ev, "ts").unum, 4u);  // ends at the retract cycle
    }
  }
  EXPECT_TRUE(saw);
}

TEST(ChromeExport, InstantsCountersAndProcessNamesRender) {
  TraceBuffer buf;
  buf.link = "mem.in";
  buf.records = {aw(1, 0, 0x0), b(3, 0)};
  ChromeTraceInput in;
  in.links = {&buf};
  in.instants = {{"tmu: detect", 7}};
  in.counters = {{"evals.gen", 9, 42}};
  in.end_cycle = 9;
  const std::string json = export_chrome_json(in);
  const std::vector<Json> evs = trace_events(json);

  bool saw_instant = false, saw_counter = false, saw_pname = false;
  for (const Json& ev : evs) {
    const std::string ph = field(ev, "ph").str;
    if (ph == "i" && field(ev, "name").str == "tmu: detect") {
      saw_instant = true;
      EXPECT_EQ(field(ev, "ts").unum, 7u);
      EXPECT_EQ(field(ev, "s").str, "g");  // global-scope instant
    }
    if (ph == "C" && field(ev, "name").str == "evals.gen") {
      saw_counter = true;
      EXPECT_EQ(field(field(ev, "args"), "value").unum, 42u);
    }
    if (ph == "M" && field(ev, "name").str == "process_name") {
      const Json* n = get(field(ev, "args"), "name");
      if (n != nullptr && n->str == "link:mem.in") saw_pname = true;
    }
  }
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_pname);
}

TEST(ChromeExport, OutputIsDeterministic) {
  TraceBuffer buf;
  buf.link = "gen.out";
  buf.records = {aw(1, 3, 0x40), b(4, 3), ar(5, 1, 0x80), r_last(9, 1)};
  ChromeTraceInput in;
  in.links = {&buf};
  in.end_cycle = 12;
  EXPECT_EQ(export_chrome_json(in), export_chrome_json(in));
}

// Export straight from a Soc after a fault run: recorder streams become
// span tracks, the TMU's lifecycle log becomes instants, and the
// scheduler profile becomes counter tracks — all in one parseable,
// deterministic document.
TEST(ChromeExport, SocExportCarriesLifecycleAndSchedTracks) {
  soc::SocDesc d = soc::ip_testbench_desc();
  d.managers.front().traffic.enabled = true;
  d.traces.push_back(soc::TraceDesc{"cap_gen", "gen.out"});
  const auto soc = soc::SocBuilder::build(d);
  soc->sim().run(300);
  soc->get<fault::FaultInjector>("inj_s").arm(fault::FaultPoint::kBValidStuck);
  auto& tmu = soc->get<tmu::Tmu>("tmu");
  ASSERT_TRUE(soc->sim().run_until([&] { return tmu.any_fault(); }, 4000));
  ASSERT_FALSE(tmu.lifecycle_log().empty());

  const std::string json = export_chrome_json(*soc);
  EXPECT_EQ(json, export_chrome_json(*soc));
  const std::vector<Json> evs = trace_events(json);
  ASSERT_FALSE(evs.empty());

  bool saw_detect = false, saw_evals = false, saw_span = false;
  for (const Json& ev : evs) {
    const std::string ph = field(ev, "ph").str;
    const std::string& name = field(ev, "name").str;
    if (ph == "i" && name.find("detect") != std::string::npos) {
      saw_detect = true;
    }
    if (ph == "C" && name.rfind("evals.", 0) == 0) saw_evals = true;
    if (ph == "b") saw_span = true;
  }
  EXPECT_TRUE(saw_detect);
  EXPECT_TRUE(saw_evals);
  EXPECT_TRUE(saw_span);
}

// The committed fixture renders to the exact same document every time —
// part of the regression gate scripts/check.sh pins.
TEST(ChromeExportFixture, FixtureExportIsDeterministic) {
  const TraceBuffer buf = read_trace_file(
      std::string(TMU_TEST_DATA_DIR) + "/ip_testbench_gen.axitrace");
  ChromeTraceInput in;
  in.links = {&buf};
  in.end_cycle = 2000;
  const std::string json = export_chrome_json(in);
  EXPECT_GT(json.size(), 10000u);
  EXPECT_EQ(json, export_chrome_json(in));
  EXPECT_FALSE(trace_events(json).empty());
}

}  // namespace
