#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/scoreboard.hpp"
#include "axi/traffic_gen.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace axi;

struct MemFixture : ::testing::Test {
  Link link;
  TrafficGenerator gen{"gen", link};
  MemorySubordinate mem{"mem", link};
  Scoreboard sb{"sb", link};
  sim::Simulator s;

  void SetUp() override {
    s.add(gen);
    s.add(mem);
    s.add(sb);
    s.reset();
  }

  void run_to_completion(std::size_t n_txns, std::uint64_t budget = 2000) {
    ASSERT_TRUE(
        s.run_until([&] { return gen.completed() >= n_txns; }, budget))
        << "only " << gen.completed() << "/" << n_txns << " completed";
  }
};

TEST_F(MemFixture, SingleWriteCompletes) {
  gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  run_to_completion(1);
  EXPECT_EQ(gen.records()[0].resp, Resp::kOkay);
  EXPECT_EQ(mem.writes_done(), 1u);
  EXPECT_EQ(sb.violation_count(), 0u);
  // Data landed in storage.
  EXPECT_EQ(mem.peek_beat(0x100, 3), pattern_data(0x100));
}

TEST_F(MemFixture, WriteThenReadBackMatches) {
  gen.push(TxnDesc{true, 1, 0x200, 3, 3, Burst::kIncr});
  run_to_completion(1);
  gen.push(TxnDesc{false, 1, 0x200, 3, 3, Burst::kIncr});
  run_to_completion(2);
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(mem.reads_done(), 1u);
  EXPECT_EQ(sb.violation_count(), 0u);
}

TEST_F(MemFixture, BurstWriteAllBeatsStored) {
  const std::uint8_t len = 7;
  gen.push(TxnDesc{true, 0, 0x1000, len, 3, Burst::kIncr});
  run_to_completion(1);
  for (unsigned beat = 0; beat < beats(len); ++beat) {
    const Addr a = 0x1000 + 8 * beat;
    EXPECT_EQ(mem.peek_beat(a, 3), pattern_data(a)) << "beat " << beat;
  }
}

TEST_F(MemFixture, ReadOfUnwrittenMemoryReturnsZero) {
  gen.push(TxnDesc{false, 0, 0x9000, 0, 3, Burst::kIncr});
  run_to_completion(1);
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(gen.records()[0].resp, Resp::kOkay);
}

TEST_F(MemFixture, MultipleOutstandingSameId) {
  for (int i = 0; i < 8; ++i) {
    gen.push(TxnDesc{true, 2, static_cast<Addr>(0x100 * i), 1, 3, Burst::kIncr});
  }
  run_to_completion(8);
  EXPECT_EQ(sb.violation_count(), 0u);
  EXPECT_EQ(mem.writes_done(), 8u);
}

TEST_F(MemFixture, InterleavedWritesAndReads) {
  gen.push(TxnDesc{true, 0, 0x000, 3, 3, Burst::kIncr});
  gen.push(TxnDesc{true, 1, 0x100, 3, 3, Burst::kIncr});
  run_to_completion(2);
  gen.push(TxnDesc{false, 0, 0x000, 3, 3, Burst::kIncr});
  gen.push(TxnDesc{false, 1, 0x100, 3, 3, Burst::kIncr});
  run_to_completion(4);
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(sb.violation_count(), 0u);
}

TEST_F(MemFixture, WrapBurstReadBack) {
  gen.push(TxnDesc{true, 0, 0x1010, 3, 3, Burst::kWrap});
  run_to_completion(1);
  gen.push(TxnDesc{false, 0, 0x1010, 3, 3, Burst::kWrap});
  run_to_completion(2);
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(sb.violation_count(), 0u);
}

TEST_F(MemFixture, ErrorRegionReturnsSlvErr) {
  mem.hw_reset();  // no-op here, but exercises the path
  // Reconfigure: rebuild a memory with an error region.
}

TEST(MemErrorRegion, WriteAndReadGetSlvErr) {
  Link link;
  TrafficGenerator gen("gen", link);
  MemoryConfig cfg;
  cfg.error_base = 0x8000;
  cfg.error_end = 0x9000;
  MemorySubordinate mem("mem", link, cfg);
  sim::Simulator s;
  s.add(gen);
  s.add(mem);
  s.reset();
  gen.push(TxnDesc{true, 0, 0x8000, 0, 3, Burst::kIncr});
  gen.push(TxnDesc{false, 0, 0x8100, 0, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 1000));
  EXPECT_EQ(gen.error_responses(), 2u);
  for (const auto& r : gen.records()) EXPECT_EQ(r.resp, Resp::kSlvErr);
}

TEST(MemTiming, SlowMemoryStillCorrect) {
  Link link;
  TrafficGenerator gen("gen", link);
  MemoryConfig cfg;
  cfg.aw_accept_latency = 3;
  cfg.ar_accept_latency = 2;
  cfg.w_ready_every = 3;
  cfg.b_latency = 5;
  cfg.r_first_latency = 7;
  cfg.r_beat_every = 2;
  MemorySubordinate mem("mem", link, cfg);
  Scoreboard sb("sb", link);
  sim::Simulator s;
  s.add(gen);
  s.add(mem);
  s.add(sb);
  s.reset();
  gen.push(TxnDesc{true, 0, 0x40, 7, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 2000));
  gen.push(TxnDesc{false, 0, 0x40, 7, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 2000));
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(sb.violation_count(), 0u);
  // Latency must reflect the configured delays (AW wait + 8 beats * 3).
  EXPECT_GE(gen.records()[0].complete_cycle - gen.records()[0].issue_cycle,
            8u * 3u);
}

TEST(MemTiming, HwResetClearsInflightOnly) {
  Link link;
  TrafficGenerator gen("gen", link);
  MemorySubordinate mem("mem", link);
  sim::Simulator s;
  s.add(gen);
  s.add(mem);
  s.reset();
  gen.push(TxnDesc{true, 0, 0x10, 0, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 500));
  const auto stored = mem.peek_beat(0x10, 3);
  mem.hw_reset();
  s.run(2);
  EXPECT_EQ(mem.peek_beat(0x10, 3), stored);  // storage survives
}

TEST(MemBackdoor, PeekPoke) {
  Link link;
  MemorySubordinate mem("mem", link);
  mem.poke(0x123, 0xAB);
  EXPECT_EQ(mem.peek(0x123), 0xAB);
  EXPECT_EQ(mem.peek(0x124), 0x00);
}

// Parameterized: all burst lengths complete and store correctly.
class BurstLenSweep : public ::testing::TestWithParam<int> {};

TEST_P(BurstLenSweep, WriteReadRoundTrip) {
  const std::uint8_t len = static_cast<std::uint8_t>(GetParam());
  Link link;
  TrafficGenerator gen("gen", link);
  MemorySubordinate mem("mem", link);
  Scoreboard sb("sb", link);
  sim::Simulator s;
  s.add(gen);
  s.add(mem);
  s.add(sb);
  s.reset();
  gen.push(TxnDesc{true, 0, 0x2000, len, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 5000));
  gen.push(TxnDesc{false, 0, 0x2000, len, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 5000));
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(sb.violation_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Lens, BurstLenSweep,
                         ::testing::Values(0, 1, 2, 3, 7, 15, 31, 63, 127,
                                           255));

}  // namespace
