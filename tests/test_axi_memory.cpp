#include <gtest/gtest.h>

#include <memory>

#include "axi/addr.hpp"
#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/scoreboard.hpp"
#include "axi/traffic_gen.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace axi;

struct MemFixture : ::testing::Test {
  Link link;
  TrafficGenerator gen{"gen", link};
  MemorySubordinate mem{"mem", link};
  Scoreboard sb{"sb", link};
  sim::Simulator s;

  void SetUp() override {
    s.add(gen);
    s.add(mem);
    s.add(sb);
    s.reset();
  }

  void run_to_completion(std::size_t n_txns, std::uint64_t budget = 2000) {
    ASSERT_TRUE(
        s.run_until([&] { return gen.completed() >= n_txns; }, budget))
        << "only " << gen.completed() << "/" << n_txns << " completed";
  }
};

TEST_F(MemFixture, SingleWriteCompletes) {
  gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  run_to_completion(1);
  EXPECT_EQ(gen.records()[0].resp, Resp::kOkay);
  EXPECT_EQ(mem.writes_done(), 1u);
  EXPECT_EQ(sb.violation_count(), 0u);
  // Data landed in storage.
  EXPECT_EQ(mem.peek_beat(0x100, 3), pattern_data(0x100));
}

TEST_F(MemFixture, WriteThenReadBackMatches) {
  gen.push(TxnDesc{true, 1, 0x200, 3, 3, Burst::kIncr});
  run_to_completion(1);
  gen.push(TxnDesc{false, 1, 0x200, 3, 3, Burst::kIncr});
  run_to_completion(2);
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(mem.reads_done(), 1u);
  EXPECT_EQ(sb.violation_count(), 0u);
}

TEST_F(MemFixture, BurstWriteAllBeatsStored) {
  const std::uint8_t len = 7;
  gen.push(TxnDesc{true, 0, 0x1000, len, 3, Burst::kIncr});
  run_to_completion(1);
  for (unsigned beat = 0; beat < beats(len); ++beat) {
    const Addr a = 0x1000 + 8 * beat;
    EXPECT_EQ(mem.peek_beat(a, 3), pattern_data(a)) << "beat " << beat;
  }
}

TEST_F(MemFixture, ReadOfUnwrittenMemoryReturnsZero) {
  gen.push(TxnDesc{false, 0, 0x9000, 0, 3, Burst::kIncr});
  run_to_completion(1);
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(gen.records()[0].resp, Resp::kOkay);
}

TEST_F(MemFixture, MultipleOutstandingSameId) {
  for (int i = 0; i < 8; ++i) {
    gen.push(TxnDesc{true, 2, static_cast<Addr>(0x100 * i), 1, 3, Burst::kIncr});
  }
  run_to_completion(8);
  EXPECT_EQ(sb.violation_count(), 0u);
  EXPECT_EQ(mem.writes_done(), 8u);
}

TEST_F(MemFixture, InterleavedWritesAndReads) {
  gen.push(TxnDesc{true, 0, 0x000, 3, 3, Burst::kIncr});
  gen.push(TxnDesc{true, 1, 0x100, 3, 3, Burst::kIncr});
  run_to_completion(2);
  gen.push(TxnDesc{false, 0, 0x000, 3, 3, Burst::kIncr});
  gen.push(TxnDesc{false, 1, 0x100, 3, 3, Burst::kIncr});
  run_to_completion(4);
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(sb.violation_count(), 0u);
}

TEST_F(MemFixture, WrapBurstReadBack) {
  gen.push(TxnDesc{true, 0, 0x1010, 3, 3, Burst::kWrap});
  run_to_completion(1);
  gen.push(TxnDesc{false, 0, 0x1010, 3, 3, Burst::kWrap});
  run_to_completion(2);
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(sb.violation_count(), 0u);
}

TEST_F(MemFixture, ErrorRegionReturnsSlvErr) {
  mem.hw_reset();  // no-op here, but exercises the path
  // Reconfigure: rebuild a memory with an error region.
}

TEST(MemErrorRegion, WriteAndReadGetSlvErr) {
  Link link;
  TrafficGenerator gen("gen", link);
  MemoryConfig cfg;
  cfg.error_base = 0x8000;
  cfg.error_end = 0x9000;
  MemorySubordinate mem("mem", link, cfg);
  sim::Simulator s;
  s.add(gen);
  s.add(mem);
  s.reset();
  gen.push(TxnDesc{true, 0, 0x8000, 0, 3, Burst::kIncr});
  gen.push(TxnDesc{false, 0, 0x8100, 0, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 1000));
  EXPECT_EQ(gen.error_responses(), 2u);
  for (const auto& r : gen.records()) EXPECT_EQ(r.resp, Resp::kSlvErr);
}

TEST(MemTiming, SlowMemoryStillCorrect) {
  Link link;
  TrafficGenerator gen("gen", link);
  MemoryConfig cfg;
  cfg.aw_accept_latency = 3;
  cfg.ar_accept_latency = 2;
  cfg.w_ready_every = 3;
  cfg.b_latency = 5;
  cfg.r_first_latency = 7;
  cfg.r_beat_every = 2;
  MemorySubordinate mem("mem", link, cfg);
  Scoreboard sb("sb", link);
  sim::Simulator s;
  s.add(gen);
  s.add(mem);
  s.add(sb);
  s.reset();
  gen.push(TxnDesc{true, 0, 0x40, 7, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 2000));
  gen.push(TxnDesc{false, 0, 0x40, 7, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 2000));
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(sb.violation_count(), 0u);
  // Latency must reflect the configured delays (AW wait + 8 beats * 3).
  EXPECT_GE(gen.records()[0].complete_cycle - gen.records()[0].issue_cycle,
            8u * 3u);
}

TEST(MemTiming, HwResetClearsInflightOnly) {
  Link link;
  TrafficGenerator gen("gen", link);
  MemorySubordinate mem("mem", link);
  sim::Simulator s;
  s.add(gen);
  s.add(mem);
  s.reset();
  gen.push(TxnDesc{true, 0, 0x10, 0, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 500));
  const auto stored = mem.peek_beat(0x10, 3);
  mem.hw_reset();
  s.run(2);
  EXPECT_EQ(mem.peek_beat(0x10, 3), stored);  // storage survives
}

TEST(MemBackdoor, PeekPoke) {
  Link link;
  MemorySubordinate mem("mem", link);
  mem.poke(0x123, 0xAB);
  EXPECT_EQ(mem.peek(0x123), 0xAB);
  EXPECT_EQ(mem.peek(0x124), 0x00);
}

// Parameterized: all burst lengths complete and store correctly.
class BurstLenSweep : public ::testing::TestWithParam<int> {};

TEST_P(BurstLenSweep, WriteReadRoundTrip) {
  const std::uint8_t len = static_cast<std::uint8_t>(GetParam());
  Link link;
  TrafficGenerator gen("gen", link);
  MemorySubordinate mem("mem", link);
  Scoreboard sb("sb", link);
  sim::Simulator s;
  s.add(gen);
  s.add(mem);
  s.add(sb);
  s.reset();
  gen.push(TxnDesc{true, 0, 0x2000, len, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 5000));
  gen.push(TxnDesc{false, 0, 0x2000, len, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 5000));
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(sb.violation_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Lens, BurstLenSweep,
                         ::testing::Values(0, 1, 2, 3, 7, 15, 31, 63, 127,
                                           255));

// ------------------------------------------------------------------
// DRAM bank timing (BankTimingConfig): row-buffer hits, misses and
// conflicts classified per bank, with the extra latency charged once
// per burst at its start address.
// ------------------------------------------------------------------

/// Address mapping helpers (Sniper-style row interleaving).
TEST(MemBankTiming, AddressMapping) {
  // col_bits = 6, 4 banks: bank = (a >> 6) & 3, row = a >> 8.
  EXPECT_EQ(dram_bank(0x000, 6, 4), 0u);
  EXPECT_EQ(dram_bank(0x040, 6, 4), 1u);
  EXPECT_EQ(dram_bank(0x0C0, 6, 4), 3u);
  EXPECT_EQ(dram_bank(0x100, 6, 4), 0u);  // wraps to bank 0, next row
  EXPECT_EQ(dram_row(0x000, 6, 4), 0u);
  EXPECT_EQ(dram_row(0x100, 6, 4), 1u);
  EXPECT_EQ(dram_row(0x2340, 6, 4), 0x23u);
}

struct BankedMemFixture : ::testing::Test {
  Link link;
  TrafficGenerator gen{"gen", link};
  MemoryConfig cfg = [] {
    MemoryConfig c;
    c.bank.enabled = true;
    c.bank.num_banks = 4;
    c.bank.col_bits = 6;
    c.bank.t_hit = 0;
    c.bank.t_miss = 6;
    c.bank.t_conflict = 12;
    return c;
  }();

  std::unique_ptr<MemorySubordinate> mem;
  sim::Simulator s;

  void wire(bool open_page) {
    cfg.bank.open_page = open_page;
    mem = std::make_unique<MemorySubordinate>("mem", link, cfg);
    s.add(gen);
    s.add(*mem);
    s.reset();
  }

  /// Read latency (accept -> complete) of a fresh single-beat read.
  std::uint64_t read_latency(Addr a) {
    const std::size_t n = gen.completed();
    gen.push(TxnDesc{false, 0, a, 0, 3, Burst::kIncr});
    EXPECT_TRUE(s.run_until([&] { return gen.completed() > n; }, 500));
    const TxnRecord& r = gen.records().back();
    return r.complete_cycle - r.accept_cycle;
  }
};

TEST_F(BankedMemFixture, OpenPageHitsMissesAndConflicts) {
  wire(/*open_page=*/true);
  const std::uint64_t miss = read_latency(0x000);  // bank 0 row 0: idle
  const std::uint64_t hit = read_latency(0x008);   // same row: open hit
  const std::uint64_t conflict = read_latency(0x100);  // bank 0 row 1
  EXPECT_EQ(mem->row_misses(), 1u);
  EXPECT_EQ(mem->row_hits(), 1u);
  EXPECT_EQ(mem->row_conflicts(), 1u);
  EXPECT_EQ(miss - hit, cfg.bank.t_miss - cfg.bank.t_hit);
  EXPECT_EQ(conflict - hit, cfg.bank.t_conflict - cfg.bank.t_hit);
  // Distinct banks keep their own open rows.
  read_latency(0x040);  // bank 1: miss
  read_latency(0x048);  // bank 1: hit
  read_latency(0x108);  // bank 0 row 1 still open: hit
  EXPECT_EQ(mem->row_misses(), 2u);
  EXPECT_EQ(mem->row_hits(), 3u);
  EXPECT_EQ(mem->row_conflicts(), 1u);
}

TEST_F(BankedMemFixture, ClosedPagePrechargesAfterEveryAccess) {
  wire(/*open_page=*/false);
  read_latency(0x000);
  read_latency(0x008);  // same row, but the page was closed: miss again
  read_latency(0x100);  // other row, bank idle: miss, not conflict
  EXPECT_EQ(mem->row_misses(), 3u);
  EXPECT_EQ(mem->row_hits(), 0u);
  EXPECT_EQ(mem->row_conflicts(), 0u);
}

TEST_F(BankedMemFixture, WritesUpdateTheRowBufferToo) {
  wire(/*open_page=*/true);
  const std::size_t n = gen.completed();
  gen.push(TxnDesc{true, 1, 0x200, 3, 3, Burst::kIncr});  // bank 0 row 2
  ASSERT_TRUE(s.run_until([&] { return gen.completed() > n; }, 500));
  EXPECT_EQ(mem->row_misses(), 1u);
  read_latency(0x208);  // the write left row 2 open
  EXPECT_EQ(mem->row_hits(), 1u);
}

TEST_F(BankedMemFixture, HwResetPrechargesAllRows) {
  wire(/*open_page=*/true);
  read_latency(0x000);
  EXPECT_EQ(mem->row_misses(), 1u);
  mem->hw_reset();
  s.run(2);
  read_latency(0x008);  // would be a hit, but the reset closed the row
  EXPECT_EQ(mem->row_misses(), 2u);
  EXPECT_EQ(mem->row_hits(), 0u);
}

TEST(MemBankTiming, DisabledBankTimingKeepsLegacyLatency) {
  Link la, lb;
  TrafficGenerator ga{"ga", la}, gb{"gb", lb};
  MemorySubordinate plain("plain", la);
  MemoryConfig banked_cfg;
  banked_cfg.bank.enabled = true;
  banked_cfg.bank.t_hit = 0;
  MemorySubordinate banked("banked", lb, banked_cfg);
  sim::Simulator sa, sb_;
  sa.add(ga);
  sa.add(plain);
  sa.reset();
  sb_.add(gb);
  sb_.add(banked);
  sb_.reset();
  // An open-page hit with t_hit = 0 costs exactly the legacy latency.
  // (Isolated accesses: a queued back-to-back read would inherit the
  // first access's row-activation stall through R-channel ordering.)
  ga.push(TxnDesc{false, 0, 0x100, 0, 3, Burst::kIncr});
  gb.push(TxnDesc{false, 0, 0x100, 0, 3, Burst::kIncr});
  ASSERT_TRUE(sa.run_until([&] { return ga.completed() >= 1; }, 500));
  ASSERT_TRUE(sb_.run_until([&] { return gb.completed() >= 1; }, 500));
  ga.push(TxnDesc{false, 0, 0x108, 0, 3, Burst::kIncr});
  gb.push(TxnDesc{false, 0, 0x108, 0, 3, Burst::kIncr});
  ASSERT_TRUE(sa.run_until([&] { return ga.completed() >= 2; }, 500));
  ASSERT_TRUE(sb_.run_until([&] { return gb.completed() >= 2; }, 500));
  EXPECT_EQ(ga.records()[1].complete_cycle - ga.records()[1].accept_cycle,
            gb.records()[1].complete_cycle - gb.records()[1].accept_cycle);
}

}  // namespace
