#include <gtest/gtest.h>

#include "axi/crossbar.hpp"
#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/scoreboard.hpp"
#include "axi/traffic_gen.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace axi;

struct XbarFixture : ::testing::Test {
  Link m0, m1;        // manager links
  Link s0, s1;        // subordinate links
  TrafficGenerator gen0{"gen0", m0, 11};
  TrafficGenerator gen1{"gen1", m1, 22};
  MemorySubordinate mem0{"mem0", s0};
  MemorySubordinate mem1{"mem1", s1};
  Crossbar xbar{"xbar",
                {&m0, &m1},
                {&s0, &s1},
                {AddrRange{0x0000, 0x10000, 0}, AddrRange{0x10000, 0x10000, 1}}};
  Scoreboard sb0{"sb0", m0};
  Scoreboard sb1{"sb1", m1};
  sim::Simulator s;

  void SetUp() override {
    s.add(gen0);
    s.add(gen1);
    s.add(xbar);
    s.add(mem0);
    s.add(mem1);
    s.add(sb0);
    s.add(sb1);
    s.reset();
  }
};

TEST_F(XbarFixture, RoutesByAddress) {
  gen0.push(TxnDesc{true, 0, 0x00100, 0, 3, Burst::kIncr});   // -> mem0
  gen0.push(TxnDesc{true, 0, 0x10100, 0, 3, Burst::kIncr});   // -> mem1
  ASSERT_TRUE(s.run_until([&] { return gen0.completed() >= 2; }, 1000));
  EXPECT_EQ(mem0.writes_done(), 1u);
  EXPECT_EQ(mem1.writes_done(), 1u);
  EXPECT_EQ(mem0.peek_beat(0x100, 3), pattern_data(0x100));
  EXPECT_EQ(mem1.peek_beat(0x10100, 3), pattern_data(0x10100));
}

TEST_F(XbarFixture, TwoManagersSameSubordinateArbitrated) {
  gen0.push(TxnDesc{true, 0, 0x0000, 3, 3, Burst::kIncr});
  gen1.push(TxnDesc{true, 0, 0x0100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until(
      [&] { return gen0.completed() >= 1 && gen1.completed() >= 1; }, 2000));
  EXPECT_EQ(mem0.writes_done(), 2u);
  EXPECT_EQ(sb0.violation_count(), 0u);
  EXPECT_EQ(sb1.violation_count(), 0u);
  // Both managers' data must land intact (no W interleaving corruption).
  EXPECT_EQ(mem0.peek_beat(0x0000, 3), pattern_data(0x0000));
  EXPECT_EQ(mem0.peek_beat(0x0100, 3), pattern_data(0x0100));
}

TEST_F(XbarFixture, ReadsRouteBack) {
  gen0.push(TxnDesc{true, 1, 0x0200, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen0.completed() >= 1; }, 1000));
  gen0.push(TxnDesc{false, 1, 0x0200, 3, 3, Burst::kIncr});
  gen1.push(TxnDesc{false, 2, 0x0200, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until(
      [&] { return gen0.completed() >= 2 && gen1.completed() >= 1; }, 2000));
  EXPECT_EQ(gen0.data_mismatches(), 0u);
  EXPECT_EQ(sb0.violation_count(), 0u);
  EXPECT_EQ(sb1.violation_count(), 0u);
}

TEST_F(XbarFixture, UnmappedAddressGetsDecErr) {
  gen0.push(TxnDesc{true, 0, 0xFF0000, 1, 3, Burst::kIncr});
  gen0.push(TxnDesc{false, 0, 0xFF0000, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen0.completed() >= 2; }, 1000));
  EXPECT_EQ(gen0.error_responses(), 2u);
  for (const auto& r : gen0.records()) EXPECT_EQ(r.resp, Resp::kDecErr);
  EXPECT_EQ(xbar.decode_errors(), 2u);
  EXPECT_EQ(sb0.violation_count(), 0u);
}

TEST_F(XbarFixture, ConcurrentRandomTrafficClean) {
  RandomTrafficConfig rc;
  rc.enabled = true;
  rc.p_new_txn = 0.3;
  rc.addr_max = 0x1FFF8;  // spans both subordinates
  rc.len_max = 7;
  gen0.set_random(rc);
  gen1.set_random(rc);
  s.run(8000);
  EXPECT_GT(gen0.completed() + gen1.completed(), 200u);
  EXPECT_EQ(gen0.data_mismatches(), 0u);
  EXPECT_EQ(gen1.data_mismatches(), 0u);
  ASSERT_EQ(sb0.violation_count(), 0u)
      << sb0.violations()[0].rule << " " << sb0.violations()[0].detail;
  ASSERT_EQ(sb1.violation_count(), 0u)
      << sb1.violations()[0].rule << " " << sb1.violations()[0].detail;
}

TEST_F(XbarFixture, WriteDataFollowsAwOrderAcrossSubordinates) {
  // gen0 writes alternately to both memories; W streams must not cross.
  for (int i = 0; i < 4; ++i) {
    gen0.push(TxnDesc{true, 0, static_cast<Addr>(0x0000 + i * 0x40), 3, 3,
                      Burst::kIncr});
    gen0.push(TxnDesc{true, 0, static_cast<Addr>(0x10000 + i * 0x40), 3, 3,
                      Burst::kIncr});
  }
  ASSERT_TRUE(s.run_until([&] { return gen0.completed() >= 8; }, 4000));
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 4; ++b) {
      const Addr a0 = 0x0000 + i * 0x40 + b * 8;
      const Addr a1 = 0x10000 + i * 0x40 + b * 8;
      EXPECT_EQ(mem0.peek_beat(a0, 3), pattern_data(a0));
      EXPECT_EQ(mem1.peek_beat(a1, 3), pattern_data(a1));
    }
  }
}

}  // namespace
