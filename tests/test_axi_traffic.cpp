#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/scoreboard.hpp"
#include "axi/traffic_gen.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace axi;

TEST(Traffic, RandomTrafficRunsClean) {
  Link link;
  TrafficGenerator gen("gen", link, /*seed=*/123);
  MemorySubordinate mem("mem", link);
  Scoreboard sb("sb", link);
  RandomTrafficConfig rc;
  rc.enabled = true;
  rc.p_new_txn = 0.4;
  rc.max_outstanding = 8;
  rc.len_max = 15;
  gen.set_random(rc);
  sim::Simulator s;
  s.add(gen);
  s.add(mem);
  s.add(sb);
  s.reset();
  s.run(5000);
  EXPECT_GT(gen.completed(), 100u);
  EXPECT_EQ(gen.data_mismatches(), 0u);
  EXPECT_EQ(sb.violation_count(), 0u)
      << sb.violations()[0].rule << ": " << sb.violations()[0].detail;
}

TEST(Traffic, RandomTrafficDeterministicBySeed) {
  auto run = [](std::uint64_t seed) {
    Link link;
    TrafficGenerator gen("gen", link, seed);
    MemorySubordinate mem("mem", link);
    RandomTrafficConfig rc;
    rc.enabled = true;
    gen.set_random(rc);
    sim::Simulator s;
    s.add(gen);
    s.add(mem);
    s.reset();
    s.run(2000);
    return gen.completed();
  };
  EXPECT_EQ(run(55), run(55));
}

TEST(Traffic, WGapSlowsDataPhase) {
  auto latency = [](std::uint32_t gap) {
    Link link;
    TrafficGenerator gen("gen", link);
    MemorySubordinate mem("mem", link);
    gen.set_w_gap(gap);
    sim::Simulator s;
    s.add(gen);
    s.add(mem);
    s.reset();
    gen.push(TxnDesc{true, 0, 0x0, 7, 3, Burst::kIncr});
    s.run_until([&] { return gen.completed() >= 1; }, 5000);
    return gen.records()[0].complete_cycle - gen.records()[0].issue_cycle;
  };
  EXPECT_GT(latency(4), latency(0) + 3 * 7);
}

TEST(Traffic, BReadyDelayHoldsResponse) {
  Link link;
  TrafficGenerator gen("gen", link);
  MemorySubordinate mem("mem", link);
  Scoreboard sb("sb", link);
  gen.set_b_ready_delay(5);
  sim::Simulator s;
  s.add(gen);
  s.add(mem);
  s.add(sb);
  s.reset();
  gen.push(TxnDesc{true, 0, 0x0, 0, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 500));
  EXPECT_EQ(sb.violation_count(), 0u);
}

TEST(Traffic, RReadyDelayHoldsBeats) {
  Link link;
  TrafficGenerator gen("gen", link);
  MemorySubordinate mem("mem", link);
  Scoreboard sb("sb", link);
  gen.set_r_ready_delay(3);
  sim::Simulator s;
  s.add(gen);
  s.add(mem);
  s.add(sb);
  s.reset();
  gen.push(TxnDesc{false, 0, 0x0, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 1; }, 500));
  EXPECT_EQ(sb.violation_count(), 0u);
  // 4 beats, each held >= 3 cycles.
  EXPECT_GE(gen.records()[0].complete_cycle - gen.records()[0].issue_cycle,
            4u * 3u);
}

TEST(Traffic, MaxOutstandingRespected) {
  Link link;
  TrafficGenerator gen("gen", link);
  MemoryConfig cfg;
  cfg.b_latency = 50;  // keep txns outstanding a while
  MemorySubordinate mem("mem", link, cfg);
  gen.set_max_outstanding(2);
  sim::Simulator s;
  s.add(gen);
  s.add(mem);
  s.reset();
  for (int i = 0; i < 6; ++i)
    gen.push(TxnDesc{true, 0, static_cast<Addr>(i * 8), 0, 3, Burst::kIncr});
  std::size_t peak = 0;
  for (int i = 0; i < 600; ++i) {
    s.step();
    peak = std::max(peak, gen.outstanding());
  }
  EXPECT_LE(peak, 2u);
  EXPECT_EQ(gen.completed(), 6u);
}

TEST(Traffic, LatencyStatsAccumulate) {
  Link link;
  TrafficGenerator gen("gen", link);
  MemorySubordinate mem("mem", link);
  sim::Simulator s;
  s.add(gen);
  s.add(mem);
  s.reset();
  gen.push(TxnDesc{true, 0, 0x0, 0, 3, Burst::kIncr});
  gen.push(TxnDesc{false, 0, 0x0, 0, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 500));
  EXPECT_EQ(gen.write_latency().count(), 1u);
  EXPECT_EQ(gen.read_latency().count(), 1u);
  EXPECT_GT(gen.write_latency().mean(), 0.0);
}

TEST(Traffic, WStartDelayDefersFirstBeat) {
  auto first_complete = [](std::uint32_t d) {
    Link link;
    TrafficGenerator gen("gen", link);
    MemorySubordinate mem("mem", link);
    gen.set_w_start_delay(d);
    sim::Simulator s;
    s.add(gen);
    s.add(mem);
    s.reset();
    gen.push(TxnDesc{true, 0, 0x0, 0, 3, Burst::kIncr});
    s.run_until([&] { return gen.completed() >= 1; }, 500);
    return gen.records()[0].complete_cycle;
  };
  // The zero-delay run overlaps issue and data by one cycle, so the
  // delayed run is at least delay-1 cycles later.
  EXPECT_GE(first_complete(10), first_complete(0) + 9);
}

TEST(Traffic, PatternDataDistinguishesAddresses) {
  EXPECT_NE(pattern_data(0x100), pattern_data(0x108));
  EXPECT_NE(pattern_data(0x0), pattern_data(0x8));
  // Address-only: any writer stores the same bytes at the same address.
  EXPECT_EQ(pattern_data(0x100), pattern_data(0x100));
}

}  // namespace
