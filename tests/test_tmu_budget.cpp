#include <gtest/gtest.h>

#include "tmu/budget.hpp"
#include "tmu/config.hpp"

namespace {

using tmu::BudgetPolicy;
using tmu::TmuConfig;

TmuConfig base_cfg() {
  TmuConfig cfg;
  cfg.budgets.aw_vld_aw_rdy = 10;
  cfg.budgets.aw_rdy_w_vld = 20;
  cfg.budgets.w_vld_w_rdy = 11;
  cfg.budgets.w_first_w_last = 30;
  cfg.budgets.w_last_b_vld = 21;
  cfg.budgets.b_vld_b_rdy = 12;
  cfg.budgets.ar_vld_ar_rdy = 13;
  cfg.budgets.ar_rdy_r_vld = 22;
  cfg.budgets.r_vld_r_rdy = 14;
  cfg.budgets.r_vld_r_last = 31;
  cfg.tc_total_budget = 100;
  cfg.adaptive.enabled = false;
  cfg.adaptive.cycles_per_beat = 2;
  cfg.adaptive.cycles_per_ahead = 8;
  return cfg;
}

TEST(Budget, StaticWriteBudgetsMatchConfig) {
  const TmuConfig cfg = base_cfg();
  BudgetPolicy p(cfg);
  const auto b = p.write_budgets(/*len=*/7, /*ahead=*/3);
  EXPECT_EQ(b[0], 10u);
  EXPECT_EQ(b[1], 20u);
  EXPECT_EQ(b[2], 11u);
  EXPECT_EQ(b[3], 30u);
  EXPECT_EQ(b[4], 21u);
  EXPECT_EQ(b[5], 12u);
}

TEST(Budget, StaticReadBudgetsMatchConfig) {
  const TmuConfig cfg = base_cfg();
  BudgetPolicy p(cfg);
  const auto b = p.read_budgets(0, 0);
  EXPECT_EQ(b[0], 13u);
  EXPECT_EQ(b[1], 22u);
  EXPECT_EQ(b[2], 14u);
  EXPECT_EQ(b[3], 31u);
}

TEST(Budget, AdaptiveScalesDataPhaseWithBurstLength) {
  TmuConfig cfg = base_cfg();
  cfg.adaptive.enabled = true;
  BudgetPolicy p(cfg);
  EXPECT_EQ(p.write_budgets(0, 0)[3], 30u);
  EXPECT_EQ(p.write_budgets(10, 0)[3], 30u + 2 * 10);
  EXPECT_EQ(p.read_budgets(255, 0)[3], 31u + 2 * 255);
}

TEST(Budget, AdaptiveScalesQueueWaitWithOutstanding) {
  TmuConfig cfg = base_cfg();
  cfg.adaptive.enabled = true;
  BudgetPolicy p(cfg);
  EXPECT_EQ(p.write_budgets(0, 0)[1], 20u);
  EXPECT_EQ(p.write_budgets(0, 5)[1], 20u + 8 * 5);
  EXPECT_EQ(p.read_budgets(0, 4)[1], 22u + 8 * 4);
}

TEST(Budget, TcTotalStaticAndAdaptive) {
  TmuConfig cfg = base_cfg();
  BudgetPolicy p(cfg);
  EXPECT_EQ(p.tc_total(50, 9), 100u);  // adaptive off: fixed
  cfg.adaptive.enabled = true;
  BudgetPolicy q(cfg);
  EXPECT_EQ(q.tc_total(50, 9), 100u + 2 * 50 + 8 * 9);
}

TEST(Budget, AdaptiveNeverShrinksBudgets) {
  TmuConfig cfg = base_cfg();
  cfg.adaptive.enabled = true;
  BudgetPolicy p(cfg);
  const auto base = p.write_budgets(0, 0);
  for (int len : {1, 15, 255}) {
    for (int ahead : {1, 7, 31}) {
      const auto b = p.write_budgets(static_cast<std::uint8_t>(len),
                                     static_cast<std::uint32_t>(ahead));
      for (unsigned i = 0; i < tmu::kNumWritePhases; ++i) {
        EXPECT_GE(b[i], base[i]);
      }
    }
  }
}

TEST(Config, MaxOutstandingIsProduct) {
  TmuConfig cfg;
  cfg.max_uniq_ids = 4;
  cfg.txn_per_uniq_id = 32;
  EXPECT_EQ(cfg.max_outstanding(), 128u);
}

TEST(Config, PhaseNames) {
  EXPECT_STREQ(to_string(tmu::WritePhase::kAwVldAwRdy), "AWVLD_AWRDY");
  EXPECT_STREQ(to_string(tmu::WritePhase::kWFirstWLast), "WFIRST_WLAST");
  EXPECT_STREQ(to_string(tmu::ReadPhase::kRVldRLast), "RVLD_RLAST");
  EXPECT_STREQ(to_string(tmu::Variant::kTinyCounter), "Tc");
  EXPECT_STREQ(to_string(tmu::Variant::kFullCounter), "Fc");
}

}  // namespace
