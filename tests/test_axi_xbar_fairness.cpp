// Crossbar arbitration and routing depth tests: round-robin fairness
// under sustained contention, 3x3 topologies, FIXED bursts, and id_shift
// variants.

#include <gtest/gtest.h>

#include "axi/crossbar.hpp"
#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/scoreboard.hpp"
#include "axi/traffic_gen.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace axi;

TEST(XbarFairness, ThreeManagersShareOneSubordinate) {
  Link m0, m1, m2, s0;
  TrafficGenerator g0("g0", m0, 1), g1("g1", m1, 2), g2("g2", m2, 3);
  MemorySubordinate mem("mem", s0);
  Crossbar xbar("xbar", {&m0, &m1, &m2}, {&s0},
                {AddrRange{0x0, 0x100000, 0}});
  sim::Simulator s;
  s.add(g0);
  s.add(g1);
  s.add(g2);
  s.add(xbar);
  s.add(mem);
  s.reset();
  for (int i = 0; i < 20; ++i) {
    g0.push(TxnDesc{true, 0, static_cast<Addr>(0x0000 + i * 0x40), 3, 3,
                    Burst::kIncr});
    g1.push(TxnDesc{true, 0, static_cast<Addr>(0x4000 + i * 0x40), 3, 3,
                    Burst::kIncr});
    g2.push(TxnDesc{true, 0, static_cast<Addr>(0x8000 + i * 0x40), 3, 3,
                    Burst::kIncr});
  }
  ASSERT_TRUE(s.run_until(
      [&] {
        return g0.completed() >= 20 && g1.completed() >= 20 &&
               g2.completed() >= 20;
      },
      10000));
  // Round-robin: completion counts advance together — no manager should
  // lag by more than a couple of transactions mid-run. Final state: all
  // equal. Check a mid-run fairness snapshot instead via latencies:
  const double l0 = g0.write_latency().mean();
  const double l1 = g1.write_latency().mean();
  const double l2 = g2.write_latency().mean();
  EXPECT_LT(std::abs(l0 - l1), 0.35 * std::max(l0, l1));
  EXPECT_LT(std::abs(l1 - l2), 0.35 * std::max(l1, l2));
}

TEST(XbarFairness, ThreeByThreeRandomSoak) {
  Link m0, m1, m2, s0, s1, s2;
  TrafficGenerator g0("g0", m0, 11), g1("g1", m1, 22), g2("g2", m2, 33);
  MemorySubordinate mem0("mem0", s0), mem1("mem1", s1), mem2("mem2", s2);
  Crossbar xbar("xbar", {&m0, &m1, &m2}, {&s0, &s1, &s2},
                {AddrRange{0x00000, 0x10000, 0},
                 AddrRange{0x10000, 0x10000, 1},
                 AddrRange{0x20000, 0x10000, 2}});
  Scoreboard sb0("sb0", m0), sb1("sb1", m1), sb2("sb2", m2);
  sim::Simulator s;
  s.add(g0);
  s.add(g1);
  s.add(g2);
  s.add(xbar);
  s.add(mem0);
  s.add(mem1);
  s.add(mem2);
  s.add(sb0);
  s.add(sb1);
  s.add(sb2);
  s.reset();
  RandomTrafficConfig rc;
  rc.enabled = true;
  rc.p_new_txn = 0.3;
  rc.addr_max = 0x2FFF8;
  rc.len_max = 7;
  g0.set_random(rc);
  g1.set_random(rc);
  g2.set_random(rc);
  s.run(10000);
  EXPECT_GT(g0.completed() + g1.completed() + g2.completed(), 400u);
  for (auto* g : {&g0, &g1, &g2}) {
    EXPECT_EQ(g->data_mismatches(), 0u);
    EXPECT_EQ(g->error_responses(), 0u);
  }
  for (auto* sb : {&sb0, &sb1, &sb2}) {
    EXPECT_EQ(sb->violation_count(), 0u);
  }
}

TEST(XbarFairness, FixedBurstRoutedCorrectly) {
  Link m0, s0, s1;
  TrafficGenerator g0("g0", m0);
  MemorySubordinate mem0("mem0", s0), mem1("mem1", s1);
  Crossbar xbar("xbar", {&m0}, {&s0, &s1},
                {AddrRange{0x00000, 0x10000, 0},
                 AddrRange{0x10000, 0x10000, 1}});
  sim::Simulator s;
  s.add(g0);
  s.add(xbar);
  s.add(mem0);
  s.add(mem1);
  s.reset();
  g0.push(TxnDesc{true, 0, 0x10040, 3, 3, Burst::kFixed});
  ASSERT_TRUE(s.run_until([&] { return g0.completed() >= 1; }, 500));
  // FIXED burst: all beats hit the same address on subordinate 1.
  EXPECT_EQ(mem1.peek_beat(0x10040, 3), pattern_data(0x10040));
  EXPECT_EQ(mem1.writes_done(), 1u);
  EXPECT_EQ(mem0.writes_done(), 0u);
}

TEST(XbarFairness, CustomIdShiftPreservesIds) {
  Link m0, m1, s0;
  TrafficGenerator g0("g0", m0, 7), g1("g1", m1, 8);
  MemorySubordinate mem("mem", s0);
  Crossbar xbar("xbar", {&m0, &m1}, {&s0}, {AddrRange{0x0, 0x10000, 0}},
                /*id_shift=*/4);
  sim::Simulator s;
  s.add(g0);
  s.add(g1);
  s.add(xbar);
  s.add(mem);
  s.reset();
  // IDs up to 15 fit under a 4-bit shift.
  g0.push(TxnDesc{false, 15, 0x100, 3, 3, Burst::kIncr});
  g1.push(TxnDesc{false, 9, 0x200, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until(
      [&] { return g0.completed() >= 1 && g1.completed() >= 1; }, 500));
  EXPECT_EQ(g0.records()[0].desc.id, 15u);
  EXPECT_EQ(g1.records()[0].desc.id, 9u);
  EXPECT_EQ(g0.data_mismatches() + g1.data_mismatches(), 0u);
}

TEST(XbarFairness, ReadWriteMixOnSharedSubordinate) {
  Link m0, m1, s0;
  TrafficGenerator g0("g0", m0, 41), g1("g1", m1, 42);
  MemorySubordinate mem("mem", s0);
  Crossbar xbar("xbar", {&m0, &m1}, {&s0}, {AddrRange{0x0, 0x10000, 0}});
  Scoreboard sb("sb", m0);
  sim::Simulator s;
  s.add(g0);
  s.add(g1);
  s.add(xbar);
  s.add(mem);
  s.add(sb);
  s.reset();
  // g0 writes a region, then both read it concurrently.
  for (int i = 0; i < 8; ++i) {
    g0.push(TxnDesc{true, 0, static_cast<Addr>(i * 0x40), 7, 3,
                    Burst::kIncr});
  }
  ASSERT_TRUE(s.run_until([&] { return g0.completed() >= 8; }, 2000));
  for (int i = 0; i < 8; ++i) {
    g0.push(TxnDesc{false, 1, static_cast<Addr>(i * 0x40), 7, 3,
                    Burst::kIncr});
    g1.push(TxnDesc{false, 1, static_cast<Addr>(i * 0x40), 7, 3,
                    Burst::kIncr});
  }
  ASSERT_TRUE(s.run_until(
      [&] { return g0.completed() >= 16 && g1.completed() >= 8; }, 4000));
  EXPECT_EQ(g0.data_mismatches(), 0u);
  EXPECT_EQ(g1.data_mismatches(), 0u);
  EXPECT_EQ(sb.violation_count(), 0u);
}

}  // namespace
