// Sharded-crossbar equivalence lockstep fuzz: the per-port shard
// decomposition (XbarImpl::kSharded) must be wire-exact against the
// monolithic reference eval (XbarImpl::kMonolithic) on every external
// link, every cycle — through random traffic, decode errors, injected
// handshake faults on both sides of the crossbar, busy -> idle -> busy
// transitions, and scheduler-policy toggling. This is the lockstep gate
// scripts/check.sh runs alongside test_sched_equiv.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "axi/crossbar.hpp"
#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "sim/kernel.hpp"
#include "sim/logger.hpp"
#include "sim/random.hpp"

namespace {

using namespace axi;
using sim::sched::SchedPolicy;

// Injected faults legitimately provoke protocol warnings; keep the
// determinism-gate output clean.
const bool g_quiet = [] {
  sim::global_log_level() = sim::LogLevel::kOff;
  return true;
}();

/// n_m generators -> crossbar -> n_s memories, each memory owning a
/// 64 KiB window; random traffic spills one window past the map so
/// DECERR paths are exercised too. A fault injector sits on manager 0's
/// request path and another between the crossbar and subordinate 0, so
/// injected faults hit the crossbar's arbitration and response muxes
/// identically in both implementations.
struct XbarNet {
  unsigned n_m, n_s;
  std::vector<std::unique_ptr<Link>> links;
  std::vector<std::unique_ptr<TrafficGenerator>> gens;
  std::vector<std::unique_ptr<MemorySubordinate>> mems;
  Link l_gen0;       // gen0 -> inj_m -> mgr port 0
  Link l_mem0;       // sub port 0 -> inj_s -> mem0
  fault::FaultInjector inj_m;
  fault::FaultInjector inj_s;
  std::unique_ptr<Crossbar> xbar;
  sim::Simulator s;

  std::vector<Link*> mgr_ports, sub_ports;

  XbarNet(unsigned n_mgrs, unsigned n_subs, XbarImpl impl,
          std::uint64_t seed,
          SchedPolicy policy = SchedPolicy::kEventDriven)
      : n_m(n_mgrs),
        n_s(n_subs),
        inj_m("inj_m", l_gen0, mk_link()),
        inj_s("inj_s", mk_link(), l_mem0),
        s(policy) {
    // links[0] = manager port 0, links[1] = sub port 0 (made above).
    mgr_ports.push_back(links[0].get());
    sub_ports.push_back(links[1].get());
    gens.push_back(std::make_unique<TrafficGenerator>("gen0", l_gen0,
                                                      seed * 7 + 1));
    mems.push_back(std::make_unique<MemorySubordinate>("mem0", l_mem0));
    for (unsigned i = 1; i < n_m; ++i) {
      Link& l = mk_link();
      mgr_ports.push_back(&l);
      gens.push_back(std::make_unique<TrafficGenerator>(
          "gen" + std::to_string(i), l, seed * 7 + 1 + i));
    }
    for (unsigned j = 1; j < n_s; ++j) {
      Link& l = mk_link();
      sub_ports.push_back(&l);
      mems.push_back(std::make_unique<MemorySubordinate>(
          "mem" + std::to_string(j), l));
    }
    std::vector<AddrRange> map;
    for (unsigned j = 0; j < n_s; ++j) {
      map.push_back(AddrRange{j * 0x1'0000ull, 0x1'0000ull, j});
    }
    xbar = std::make_unique<Crossbar>("xbar", mgr_ports, sub_ports, map,
                                      /*id_shift=*/8, impl);
    for (auto& g : gens) s.add(*g);
    s.add(inj_m);
    s.add(*xbar);
    s.add(inj_s);
    for (auto& m : mems) s.add(*m);
    s.reset();
  }

  Link& mk_link() {
    links.push_back(std::make_unique<Link>());
    return *links.back();
  }

  void set_traffic(bool on) {
    RandomTrafficConfig rc;
    rc.enabled = on;
    rc.p_new_txn = 0.3;
    rc.len_max = 7;
    // One extra (unmapped) window: ~1/(n_s+1) of traffic DECERRs.
    rc.addr_max = (n_s + 1) * 0x1'0000ull - 8;
    for (auto& g : gens) g->set_random(rc);
  }

  std::size_t completed() const {
    std::size_t n = 0;
    for (const auto& g : gens) n += g->completed();
    return n;
  }

  fault::FaultInjector& injector_for(fault::FaultPoint p) {
    return fault::is_manager_side(p) ? inj_m : inj_s;
  }
};

void expect_links_equal(const Link& a, const Link& b, const std::string& which,
                        std::uint64_t cycle) {
  ASSERT_TRUE(a.req.read() == b.req.read())
      << which << ".req diverged at cycle " << cycle;
  ASSERT_TRUE(a.rsp.read() == b.rsp.read())
      << which << ".rsp diverged at cycle " << cycle;
}

/// Every externally visible wire of the two netlists, every cycle.
void expect_wires_equal(const XbarNet& a, const XbarNet& b,
                        std::uint64_t cycle) {
  for (unsigned m = 0; m < a.n_m; ++m) {
    expect_links_equal(*a.mgr_ports[m], *b.mgr_ports[m],
                       "mgr" + std::to_string(m), cycle);
  }
  for (unsigned s = 0; s < a.n_s; ++s) {
    expect_links_equal(*a.sub_ports[s], *b.sub_ports[s],
                       "sub" + std::to_string(s), cycle);
  }
  expect_links_equal(a.l_gen0, b.l_gen0, "l_gen0", cycle);
  expect_links_equal(a.l_mem0, b.l_mem0, "l_mem0", cycle);
}

/// One fuzzed lockstep scenario: random traffic with decode errors, one
/// fault armed/disarmed mid-run, then busy -> idle -> busy.
void run_lockstep(unsigned n_m, unsigned n_s, std::uint64_t seed) {
  SCOPED_TRACE("grid=" + std::to_string(n_m) + "x" + std::to_string(n_s) +
               " seed=" + std::to_string(seed));
  sim::Rng rng(seed);

  XbarNet mono(n_m, n_s, XbarImpl::kMonolithic, seed);
  XbarNet shard(n_m, n_s, XbarImpl::kSharded, seed);
  mono.set_traffic(true);
  shard.set_traffic(true);

  constexpr fault::FaultPoint kPoints[] = {
      fault::FaultPoint::kAwReadyStuck, fault::FaultPoint::kWReadyStuck,
      fault::FaultPoint::kBValidStuck,  fault::FaultPoint::kRValidStuck,
      fault::FaultPoint::kWValidStuck,  fault::FaultPoint::kSpuriousB,
      fault::FaultPoint::kBWrongId,
  };
  const fault::FaultPoint point =
      kPoints[rng.range(0, (sizeof(kPoints) / sizeof(kPoints[0])) - 1)];
  const std::uint64_t arm_at = rng.range(50, 200);
  const std::uint64_t disarm_at = arm_at + rng.range(100, 400);
  const std::uint64_t quiet_at = disarm_at + 400;
  const std::uint64_t resume_at = quiet_at + 200;
  const std::uint64_t total = resume_at + 400;

  for (std::uint64_t c = 0; c < total; ++c) {
    if (c == arm_at) {
      mono.injector_for(point).arm(point, arm_at);
      shard.injector_for(point).arm(point, arm_at);
    }
    if (c == disarm_at) {
      mono.injector_for(point).disarm();
      shard.injector_for(point).disarm();
    }
    if (c == quiet_at) {
      mono.set_traffic(false);
      shard.set_traffic(false);
    }
    if (c == resume_at) {
      mono.set_traffic(true);
      shard.set_traffic(true);
    }
    mono.s.step();
    shard.s.step();
    expect_wires_equal(mono, shard, c);
    ASSERT_EQ(mono.xbar->decode_errors(), shard.xbar->decode_errors())
        << "decode_errors diverged at cycle " << c;
    ASSERT_EQ(mono.completed(), shard.completed())
        << "traffic diverged at cycle " << c;
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_GT(mono.completed(), 0u);
  EXPECT_GT(mono.xbar->decode_errors(), 0u);  // the DECERR path ran
}

TEST(XbarShardEquiv, LockstepFuzzThroughFaultsAndIdle) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull, 0xC0FFEEull}) {
    run_lockstep(3, 2, seed);
    if (::testing::Test::HasFailure()) return;
  }
  run_lockstep(1, 4, 11);
  run_lockstep(4, 1, 12);
  run_lockstep(8, 6, 13);
}

// The shards must stay exact under the full-sweep kernel too, and under
// mid-run policy switches (the sharded facade is not combinational, so
// both kernels must skip it and evaluate the shards instead).
TEST(XbarShardEquiv, PolicyTogglingMatchesMonolithic) {
  XbarNet mono(3, 2, XbarImpl::kMonolithic, 99, SchedPolicy::kFullSweep);
  XbarNet shard(3, 2, XbarImpl::kSharded, 99, SchedPolicy::kFullSweep);
  mono.set_traffic(true);
  shard.set_traffic(true);

  sim::Rng rng(5);
  for (int chunk = 0; chunk < 30; ++chunk) {
    const std::uint64_t n = rng.range(1, 25);
    mono.s.run(n);
    shard.s.set_policy(chunk % 2 == 0 ? SchedPolicy::kEventDriven
                                      : SchedPolicy::kFullSweep);
    shard.s.run(n);
    ASSERT_EQ(mono.s.cycle(), shard.s.cycle());
    expect_wires_equal(mono, shard, mono.s.cycle());
    ASSERT_EQ(mono.completed(), shard.completed());
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_GT(mono.completed(), 0u);
}

// An idle sharded crossbar costs zero evals: after the netlist drains,
// no shard (and no other module) is woken until traffic resumes.
TEST(XbarShardEquiv, IdlePortsCostZeroEvals) {
  XbarNet net(4, 3, XbarImpl::kSharded, 21);
  net.set_traffic(true);
  net.s.run(300);
  net.set_traffic(false);
  net.s.run(200);  // drain everything in flight
  const std::uint64_t e0 = net.s.module_evals();
  net.s.run(100);
  EXPECT_EQ(net.s.module_evals() - e0, 0u);
}

}  // namespace
