#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "sim/kernel.hpp"
#include "soc/reset_unit.hpp"
#include "tmu/regs.hpp"
#include "tmu/tmu.hpp"

namespace {

using namespace axi;
using fault::FaultInjector;
using fault::FaultPoint;
using tmu::FaultKind;
using tmu::ReadPhase;
using tmu::Tmu;
using tmu::TmuConfig;
using tmu::Variant;
using tmu::WritePhase;

TmuConfig test_cfg(Variant v) {
  TmuConfig cfg;
  cfg.variant = v;
  cfg.max_uniq_ids = 4;
  cfg.txn_per_uniq_id = 4;
  cfg.budgets.aw_vld_aw_rdy = 10;
  cfg.budgets.aw_rdy_w_vld = 20;
  cfg.budgets.w_vld_w_rdy = 10;
  cfg.budgets.w_first_w_last = 40;
  cfg.budgets.w_last_b_vld = 20;
  cfg.budgets.b_vld_b_rdy = 10;
  cfg.budgets.ar_vld_ar_rdy = 10;
  cfg.budgets.ar_rdy_r_vld = 20;
  cfg.budgets.r_vld_r_rdy = 10;
  cfg.budgets.r_vld_r_last = 40;
  cfg.tc_total_budget = 100;
  cfg.adaptive.enabled = false;
  return cfg;
}

/// gen -> [mgr injector] -> TMU -> [sub injector] -> memory, with the
/// external reset unit wired to the TMU's reset_req/reset_ack.
struct TmuBench {
  Link l_gen, l_tmu_mst, l_tmu_sub, l_mem;
  TrafficGenerator gen{"gen", l_gen};
  FaultInjector inj_m{"inj_m", l_gen, l_tmu_mst};
  Tmu tmu;
  FaultInjector inj_s{"inj_s", l_tmu_sub, l_mem};
  MemorySubordinate mem{"mem", l_mem};
  soc::ResetUnit rst;
  sim::Simulator s;

  explicit TmuBench(const TmuConfig& cfg)
      : tmu("tmu", l_tmu_mst, l_tmu_sub, cfg),
        rst("rst", tmu.reset_req, tmu.reset_ack, [this] { mem.hw_reset(); }) {
    s.add(gen);
    s.add(inj_m);
    s.add(tmu);
    s.add(inj_s);
    s.add(mem);
    s.add(rst);
    s.reset();
  }

  bool wait_fault(std::uint64_t budget = 2000) {
    return s.run_until([&] { return tmu.any_fault(); }, budget);
  }

  std::uint64_t detection_latency(const FaultInjector& inj) const {
    return tmu.fault_log().front().cycle - inj.fault_start_cycle();
  }
};

// ------------------------- transparency -------------------------------

TEST(TmuCore, TransparentForHealthyTraffic) {
  // Adaptive budgeting on: with several outstanding transactions, the
  // queue-waiting time legitimately exceeds the static budget (§II-F).
  TmuConfig cfg = test_cfg(Variant::kFullCounter);
  cfg.adaptive.enabled = true;
  TmuBench b(cfg);
  for (int i = 0; i < 8; ++i) {
    b.gen.push(TxnDesc{true, static_cast<Id>(i % 3), static_cast<Addr>(i * 0x40),
                       3, 3, Burst::kIncr});
    b.gen.push(TxnDesc{false, static_cast<Id>(i % 3),
                       static_cast<Addr>(i * 0x40), 3, 3, Burst::kIncr});
  }
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 16; }, 4000));
  EXPECT_FALSE(b.tmu.any_fault());
  EXPECT_EQ(b.gen.error_responses(), 0u);
  EXPECT_EQ(b.gen.data_mismatches(), 0u);
  EXPECT_EQ(b.tmu.write_guard().stats().completed, 8u);
  EXPECT_EQ(b.tmu.read_guard().stats().completed, 8u);
}

TEST(TmuCore, AddsNoLatency) {
  // Same traffic with and without the TMU in the path.
  auto run_latency = [](bool with_tmu) {
    if (with_tmu) {
      TmuBench b(test_cfg(Variant::kFullCounter));
      b.gen.push(TxnDesc{true, 0, 0x100, 7, 3, Burst::kIncr});
      b.s.run_until([&] { return b.gen.completed() >= 1; }, 500);
      return b.gen.records()[0].complete_cycle;
    }
    Link link;
    TrafficGenerator gen("gen", link);
    MemorySubordinate mem("mem", link);
    sim::Simulator s;
    s.add(gen);
    s.add(mem);
    s.reset();
    gen.push(TxnDesc{true, 0, 0x100, 7, 3, Burst::kIncr});
    s.run_until([&] { return gen.completed() >= 1; }, 500);
    return gen.records()[0].complete_cycle;
  };
  EXPECT_EQ(run_latency(true), run_latency(false));
}

// --------------------- Fc write-phase fault detection ------------------

struct WriteFaultCase {
  FaultPoint point;
  WritePhase expect_phase;
  FaultKind expect_kind;
  std::uint32_t expect_budget;  // 0 = don't check
};

class FcWriteFaults : public ::testing::TestWithParam<WriteFaultCase> {};

TEST_P(FcWriteFaults, DetectsAtFailingPhase) {
  const WriteFaultCase c = GetParam();
  TmuBench b(test_cfg(Variant::kFullCounter));
  auto& inj = fault::is_manager_side(c.point) ? b.inj_m : b.inj_s;
  inj.arm(c.point, 0, c.point == FaultPoint::kMidBurstWStall ? 3u : 0u);
  b.gen.push(TxnDesc{true, 1, 0x100, 7, 3, Burst::kIncr});
  ASSERT_TRUE(b.wait_fault());
  const tmu::FaultRecord& f = b.tmu.fault_log().front();
  EXPECT_TRUE(f.is_write);
  EXPECT_EQ(f.kind, c.expect_kind) << f.describe();
  if (f.kind == FaultKind::kTimeout) {
    EXPECT_EQ(static_cast<WritePhase>(f.phase), c.expect_phase)
        << f.describe();
    if (c.expect_budget) {
      EXPECT_EQ(f.budget, c.expect_budget);
      EXPECT_GE(f.elapsed, f.budget);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Points, FcWriteFaults,
    ::testing::Values(
        WriteFaultCase{FaultPoint::kAwReadyStuck, WritePhase::kAwVldAwRdy,
                       FaultKind::kTimeout, 10},
        WriteFaultCase{FaultPoint::kWValidStuck, WritePhase::kAwRdyWVld,
                       FaultKind::kTimeout, 20},
        WriteFaultCase{FaultPoint::kWReadyStuck, WritePhase::kWVldWRdy,
                       FaultKind::kTimeout, 10},
        WriteFaultCase{FaultPoint::kMidBurstWStall, WritePhase::kWFirstWLast,
                       FaultKind::kTimeout, 40},
        WriteFaultCase{FaultPoint::kBValidStuck, WritePhase::kWLastBVld,
                       FaultKind::kTimeout, 20},
        WriteFaultCase{FaultPoint::kBWrongId, WritePhase::kWLastBVld,
                       FaultKind::kUnrequested, 0},
        WriteFaultCase{FaultPoint::kSpuriousB, WritePhase::kWLastBVld,
                       FaultKind::kUnrequested, 0},
        WriteFaultCase{FaultPoint::kWLastEarly, WritePhase::kWFirstWLast,
                       FaultKind::kHandshake, 0}));

// --------------------- Fc read-phase fault detection -------------------

struct ReadFaultCase {
  FaultPoint point;
  ReadPhase expect_phase;
  FaultKind expect_kind;
};

class FcReadFaults : public ::testing::TestWithParam<ReadFaultCase> {};

TEST_P(FcReadFaults, DetectsAtFailingPhase) {
  const ReadFaultCase c = GetParam();
  TmuBench b(test_cfg(Variant::kFullCounter));
  b.inj_s.arm(c.point, 0, 0, c.point == FaultPoint::kMidBurstRStall ? 3u : 0u);
  b.gen.push(TxnDesc{false, 2, 0x200, 7, 3, Burst::kIncr});
  ASSERT_TRUE(b.wait_fault());
  const tmu::FaultRecord& f = b.tmu.fault_log().front();
  EXPECT_FALSE(f.is_write);
  EXPECT_EQ(f.kind, c.expect_kind) << f.describe();
  if (f.kind == FaultKind::kTimeout) {
    EXPECT_EQ(static_cast<ReadPhase>(f.phase), c.expect_phase)
        << f.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Points, FcReadFaults,
    ::testing::Values(
        ReadFaultCase{FaultPoint::kArReadyStuck, ReadPhase::kArVldArRdy,
                      FaultKind::kTimeout},
        ReadFaultCase{FaultPoint::kRValidStuck, ReadPhase::kArRdyRVld,
                      FaultKind::kTimeout},
        ReadFaultCase{FaultPoint::kMidBurstRStall, ReadPhase::kRVldRLast,
                      FaultKind::kTimeout},
        ReadFaultCase{FaultPoint::kRWrongId, ReadPhase::kArRdyRVld,
                      FaultKind::kUnrequested},
        ReadFaultCase{FaultPoint::kSpuriousR, ReadPhase::kArRdyRVld,
                      FaultKind::kUnrequested}));

// ------------------------- Tc vs Fc latency ---------------------------

TEST(TmuCore, TcDetectsOnlyAtTotalBudget) {
  TmuBench b(test_cfg(Variant::kTinyCounter));
  b.inj_s.arm(FaultPoint::kAwReadyStuck);
  b.gen.push(TxnDesc{true, 0, 0x100, 7, 3, Burst::kIncr});
  ASSERT_TRUE(b.wait_fault());
  const tmu::FaultRecord& f = b.tmu.fault_log().front();
  EXPECT_EQ(f.kind, FaultKind::kTimeout);
  EXPECT_FALSE(f.phase_valid);         // Tc: no phase-level information
  EXPECT_EQ(f.budget, 100u);           // whole-transaction budget
  EXPECT_GE(f.elapsed, 100u);
}

TEST(TmuCore, FcDetectsEarlierThanTc) {
  auto detect_cycle = [](Variant v) {
    TmuBench b(test_cfg(v));
    b.inj_s.arm(FaultPoint::kAwReadyStuck);
    b.gen.push(TxnDesc{true, 0, 0x100, 7, 3, Burst::kIncr});
    b.wait_fault();
    return b.tmu.fault_log().front().cycle;
  };
  const auto fc = detect_cycle(Variant::kFullCounter);
  const auto tc = detect_cycle(Variant::kTinyCounter);
  EXPECT_LT(fc + 50, tc);  // 10-cycle AW budget vs 100-cycle total
}

// --------------------------- recovery ---------------------------------

TEST(TmuCore, FaultTriggersIrqAndReset) {
  TmuBench b(test_cfg(Variant::kFullCounter));
  b.inj_s.arm(FaultPoint::kBValidStuck);
  b.gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(b.wait_fault());
  b.s.run(2);
  EXPECT_TRUE(b.tmu.irq.read());
  EXPECT_EQ(b.tmu.resets_requested(), 1u);
  // Reset unit performs the subordinate reset and the TMU recovers.
  ASSERT_TRUE(b.s.run_until([&] { return !b.tmu.severed(); }, 300));
  EXPECT_EQ(b.rst.resets_performed(), 1u);
  EXPECT_EQ(b.tmu.recoveries(), 1u);
}

TEST(TmuCore, OutstandingTxnsAbortedWithSlvErr) {
  TmuBench b(test_cfg(Variant::kFullCounter));
  b.inj_s.arm(FaultPoint::kBValidStuck);
  b.gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(b.wait_fault());
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 1; }, 300));
  EXPECT_EQ(b.gen.records()[0].resp, Resp::kSlvErr);
}

TEST(TmuCore, TrafficFlowsAgainAfterRecovery) {
  TmuBench b(test_cfg(Variant::kFullCounter));
  b.inj_s.arm(FaultPoint::kBValidStuck);
  b.gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(b.wait_fault());
  ASSERT_TRUE(b.s.run_until([&] { return !b.tmu.severed(); }, 500));
  b.inj_s.disarm();
  b.tmu.clear_irq();
  b.gen.push(TxnDesc{true, 1, 0x200, 3, 3, Burst::kIncr});
  b.gen.push(TxnDesc{false, 1, 0x200, 3, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 3; }, 1000));
  EXPECT_EQ(b.gen.records()[1].resp, Resp::kOkay);
  EXPECT_EQ(b.gen.records()[2].resp, Resp::kOkay);
  EXPECT_FALSE(b.tmu.irq.read());
  EXPECT_EQ(b.tmu.fault_log().size(), 1u);  // no new faults
}

TEST(TmuCore, ReadAbortDeliversAllRemainingBeats) {
  TmuBench b(test_cfg(Variant::kFullCounter));
  b.inj_s.arm(FaultPoint::kMidBurstRStall, 0, 0, 3);
  b.gen.push(TxnDesc{false, 0, 0x0, 7, 3, Burst::kIncr});
  ASSERT_TRUE(b.wait_fault());
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 1; }, 500));
  EXPECT_EQ(b.gen.records()[0].resp, Resp::kSlvErr);
  // After the aborts drain and the reset unit acknowledges, the TMU
  // leaves the severed state.
  EXPECT_TRUE(b.s.run_until([&] { return !b.tmu.severed(); }, 500));
}

// ---------------------- saturation / gating ---------------------------

TEST(TmuCore, OttSaturationStallsWithoutDropping) {
  TmuConfig cfg = test_cfg(Variant::kFullCounter);
  cfg.max_uniq_ids = 2;
  cfg.txn_per_uniq_id = 2;
  cfg.adaptive.enabled = true;  // avoid queue-wait false timeouts
  TmuBench b(cfg);
  for (int i = 0; i < 12; ++i) {
    b.gen.push(TxnDesc{true, static_cast<Id>(i % 2),
                       static_cast<Addr>(i * 0x40), 3, 3, Burst::kIncr});
  }
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 12; }, 4000));
  EXPECT_FALSE(b.tmu.any_fault());
  EXPECT_EQ(b.gen.error_responses(), 0u);
}

TEST(TmuCore, IdRemapperSaturationStallsNewIds) {
  TmuConfig cfg = test_cfg(Variant::kFullCounter);
  cfg.max_uniq_ids = 2;
  cfg.txn_per_uniq_id = 4;
  cfg.adaptive.enabled = true;
  TmuBench b(cfg);
  // Six distinct sparse IDs through a 2-slot remapper.
  for (int i = 0; i < 6; ++i) {
    b.gen.push(TxnDesc{true, static_cast<Id>(0x10 + 7 * i),
                       static_cast<Addr>(i * 0x40), 1, 3, Burst::kIncr});
  }
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 6; }, 4000));
  EXPECT_FALSE(b.tmu.any_fault());
}

// ----------------------- prescaler / sticky ---------------------------

TEST(TmuCore, PrescalerRoundsDetectionUp) {
  TmuConfig cfg = test_cfg(Variant::kTinyCounter);
  cfg.tc_total_budget = 100;
  auto latency = [&](std::uint32_t step) {
    cfg.prescaler_step = step;
    cfg.sticky_bit = step > 1;
    TmuBench b(cfg);
    b.inj_s.arm(FaultPoint::kAwReadyStuck);
    b.gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
    b.wait_fault();
    return b.detection_latency(b.inj_s);
  };
  const auto l1 = latency(1);
  const auto l32 = latency(32);
  const auto l128 = latency(128);
  // Exact detection with step 1; with a prescaler the detection lands
  // within one prescaler period of the budget on either side (the sticky
  // bit may latch the near-timeout one pulse early, never late).
  EXPECT_GE(l1 + 2, 100u);
  EXPECT_LE(l1, 102u);
  EXPECT_GE(l32 + 32, 100u);
  EXPECT_LT(l32, 100u + 2 * 32);
  EXPECT_GE(l128 + 128, 100u);
  EXPECT_LT(l128, 100u + 2 * 128);
}

TEST(TmuCore, StickyBitStillDetects) {
  TmuConfig cfg = test_cfg(Variant::kFullCounter);
  cfg.prescaler_step = 16;
  cfg.sticky_bit = true;
  TmuBench b(cfg);
  b.inj_s.arm(FaultPoint::kAwReadyStuck);
  b.gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  ASSERT_TRUE(b.wait_fault());
  EXPECT_EQ(b.tmu.fault_log().front().kind, FaultKind::kTimeout);
}

// --------------------------- handshake --------------------------------

TEST(TmuCore, AwValidDropFlagsHandshakeFault) {
  TmuBench b(test_cfg(Variant::kFullCounter));
  // Let the AW be presented for 3 cycles (mem aw_accept_latency 0 means
  // instant accept, so stall the subordinate side first).
  b.inj_s.arm(FaultPoint::kAwReadyStuck);
  b.inj_m.arm(FaultPoint::kAwValidDrop, 5);
  b.gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  ASSERT_TRUE(b.wait_fault(200));
  EXPECT_EQ(b.tmu.fault_log().front().kind, FaultKind::kHandshake);
}

// ----------------------------- disable --------------------------------

TEST(TmuCore, DisabledTmuDoesNotDetect) {
  TmuConfig cfg = test_cfg(Variant::kFullCounter);
  cfg.enabled = false;
  TmuBench b(cfg);
  b.inj_s.arm(FaultPoint::kAwReadyStuck);
  b.gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  b.s.run(500);
  EXPECT_FALSE(b.tmu.any_fault());
  EXPECT_FALSE(b.tmu.irq.read());
}

// ---------------------------- perf log --------------------------------

TEST(TmuCore, FcPerfLogRecordsPhaseTimings) {
  TmuBench b(test_cfg(Variant::kFullCounter));
  b.gen.push(TxnDesc{true, 0, 0x100, 7, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 1; }, 500));
  const auto& log = b.tmu.write_guard().perf_log();
  ASSERT_EQ(log.size(), 1u);
  const auto& rec = log[0];
  EXPECT_TRUE(rec.is_write);
  EXPECT_EQ(rec.len, 7);
  // Data phase spans at least beats-1 cycles.
  EXPECT_GE(rec.phase_cycles[3], 7u);
  EXPECT_GT(rec.total_cycles, 0u);
}

TEST(TmuCore, TcHasNoPerfLog) {
  TmuBench b(test_cfg(Variant::kTinyCounter));
  b.gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(b.s.run_until([&] { return b.gen.completed() >= 1; }, 500));
  EXPECT_TRUE(b.tmu.write_guard().perf_log().empty());
}

// ----------------------------- registers ------------------------------

TEST(TmuRegs, CapacityAndCtrlReadback) {
  TmuBench b(test_cfg(Variant::kFullCounter));
  using namespace tmu::regs;
  const auto cap = b.tmu.read_reg(kCapacity);
  EXPECT_EQ(cap & 0xFF, 4u);
  EXPECT_EQ((cap >> 8) & 0xFF, 4u);
  EXPECT_EQ(cap >> 16, 16u);
  EXPECT_EQ(b.tmu.read_reg(kCtrl) & 1u, 1u);
  EXPECT_EQ((b.tmu.read_reg(kCtrl) >> 8) & 1u, 1u);  // Fc
}

TEST(TmuRegs, BudgetWriteReadback) {
  TmuBench b(test_cfg(Variant::kFullCounter));
  using namespace tmu::regs;
  b.tmu.write_reg(kBudgetAw, 77);
  EXPECT_EQ(b.tmu.read_reg(kBudgetAw), 77u);
  b.tmu.write_reg(kTcBudget, 320);
  EXPECT_EQ(b.tmu.read_reg(kTcBudget), 320u);
  b.tmu.write_reg(kPrescaler, 32u | (1u << 31));
  EXPECT_EQ(b.tmu.read_reg(kPrescaler), 32u | (1u << 31));
}

TEST(TmuRegs, FaultFifoAndIrqClear) {
  TmuBench b(test_cfg(Variant::kFullCounter));
  using namespace tmu::regs;
  b.inj_s.arm(FaultPoint::kAwReadyStuck);
  b.gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  ASSERT_TRUE(b.wait_fault());
  b.s.run(2);
  EXPECT_EQ(b.tmu.read_reg(kFaultCount), 1u);
  const auto info = b.tmu.read_reg(kFaultInfo);
  EXPECT_EQ(info & 0xF, 0u);              // kind = timeout
  EXPECT_EQ((info >> 8) & 1u, 1u);        // is_write
  EXPECT_EQ(b.tmu.read_reg(kFaultInfo), 0u);  // FIFO drained
  EXPECT_EQ((b.tmu.read_reg(kStatus) >> 1) & 1u, 1u);  // irq pending
  b.tmu.write_reg(kIrqClear, 1);
  b.s.run(2);
  EXPECT_EQ((b.tmu.read_reg(kStatus) >> 1) & 1u, 0u);
}

TEST(TmuRegs, RuntimeDisableViaCtrl) {
  TmuBench b(test_cfg(Variant::kFullCounter));
  using namespace tmu::regs;
  b.tmu.write_reg(kCtrl, 0);  // disable everything
  b.inj_s.arm(FaultPoint::kAwReadyStuck);
  b.gen.push(TxnDesc{true, 0, 0x100, 0, 3, Burst::kIncr});
  b.s.run(300);
  EXPECT_FALSE(b.tmu.any_fault());
}

}  // namespace
