#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "baseline/axichecker.hpp"
#include "baseline/xilinx_timeout.hpp"
#include "fault/injector.hpp"
#include "obs/latency_probe.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace axi;
using fault::FaultInjector;
using fault::FaultPoint;

struct BaselineFixture : ::testing::Test {
  Link up, down;
  TrafficGenerator gen{"gen", up};
  FaultInjector inj{"inj", up, down};
  MemorySubordinate mem{"mem", down};
  sim::Simulator s;

  void SetUp() override {
    s.add(gen);
    s.add(inj);
    s.add(mem);
  }
};

// ----------------------- Xilinx AXI Timeout ---------------------------

TEST_F(BaselineFixture, XilinxTimeoutDetectsStalledWrite) {
  baseline::XilinxTimeoutBlock xt("xt", up, 64);
  s.add(xt);
  s.reset();
  inj.arm(FaultPoint::kBValidStuck);
  gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return xt.errored(); }, 500));
  EXPECT_TRUE(xt.irq.read());
  EXPECT_EQ(xt.timeouts(), 1u);
}

TEST_F(BaselineFixture, XilinxTimeoutDetectsStalledRead) {
  baseline::XilinxTimeoutBlock xt("xt", up, 64);
  s.add(xt);
  s.reset();
  inj.arm(FaultPoint::kRValidStuck);
  gen.push(TxnDesc{false, 0, 0x100, 3, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return xt.errored(); }, 500));
}

TEST_F(BaselineFixture, XilinxTimeoutQuietOnHealthyTraffic) {
  baseline::XilinxTimeoutBlock xt("xt", up, 64);
  s.add(xt);
  s.reset();
  for (int i = 0; i < 8; ++i) {
    gen.push(TxnDesc{true, 0, static_cast<Addr>(i * 0x40), 3, 3,
                     Burst::kIncr});
  }
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 8; }, 1000));
  EXPECT_FALSE(xt.errored());
}

TEST_F(BaselineFixture, XilinxTimeoutMissesProtocolViolation) {
  // Reproduced limitation: a spurious (unrequested) B response is not a
  // stall, so the timeout block never notices it.
  baseline::XilinxTimeoutBlock xt("xt", up, 64);
  s.add(xt);
  s.reset();
  inj.arm(FaultPoint::kSpuriousB);
  s.run(300);
  EXPECT_FALSE(xt.errored());
}

TEST_F(BaselineFixture, XilinxTimeoutMaskedByNewerTraffic) {
  // Reproduced limitation: the single write timer restarts on every AW,
  // so steady new traffic can postpone detection of an old stall far
  // beyond the window (here: different IDs, responses for the new
  // transactions keep arriving).
  baseline::XilinxTimeoutBlock xt("xt", up, 64);
  s.add(xt);
  s.reset();
  inj.arm(FaultPoint::kBWrongId);  // id-5 response never arrives
  gen.push(TxnDesc{true, 5, 0x100, 0, 3, Burst::kIncr});
  s.run(40);
  inj.disarm();  // later transactions respond fine
  for (int i = 0; i < 6; ++i) {
    gen.push(TxnDesc{true, 0, static_cast<Addr>(0x200 + i * 0x40), 0, 3,
                     Burst::kIncr});
    s.run(30);
  }
  // The stuck id-5 write is >200 cycles old; the block saw B handshakes
  // (for other IDs) and kept resetting -> no error. The paper's TMU
  // tracks outstanding transactions individually and would have flagged
  // it (ID-level tracking, Table II "M.O Supp.").
  EXPECT_FALSE(xt.errored());
  EXPECT_EQ(gen.completed(), 6u);  // id-5 still outstanding
}

// --------------------------- SP805 watchdog ---------------------------

TEST(Sp805, TimeoutRaisesIrqThenReset) {
  baseline::Sp805Watchdog wd("wd", 10);
  sim::Simulator s;
  s.add(wd);
  s.reset();
  s.run(12);
  EXPECT_TRUE(wd.irq_pending());
  EXPECT_FALSE(wd.reset_asserted());
  s.run(12);
  EXPECT_TRUE(wd.reset_asserted());
}

TEST(Sp805, KickPreventsTimeout) {
  baseline::Sp805Watchdog wd("wd", 10);
  sim::Simulator s;
  s.add(wd);
  s.reset();
  for (int i = 0; i < 10; ++i) {
    s.run(5);
    wd.kick();
  }
  EXPECT_FALSE(wd.irq_pending());
}

// --------------------------- latency probe -----------------------------

// Successor of the retired baseline::AxiPerfMonitor: identical latency
// and throughput semantics, now publishing into a MetricsRegistry. The
// pinned counts below are the old monitor's numbers.
TEST_F(BaselineFixture, PerfMonitorCountsTraffic) {
  obs::MetricsRegistry reg;
  obs::LatencyProbe pm("pm", up, reg);
  s.add(pm);
  s.reset();
  for (int i = 0; i < 4; ++i) {
    gen.push(TxnDesc{true, 0, static_cast<Addr>(i * 0x40), 3, 3,
                     Burst::kIncr});
    gen.push(TxnDesc{false, 1, static_cast<Addr>(i * 0x40), 3, 3,
                     Burst::kIncr});
  }
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 8; }, 1000));
  EXPECT_EQ(pm.write_txns(), 4u);
  EXPECT_EQ(pm.read_txns(), 4u);
  EXPECT_EQ(pm.bytes_written(), 4u * 4u * 8u);
  EXPECT_EQ(pm.bytes_read(), 4u * 4u * 8u);
  EXPECT_GT(pm.write_latency().mean(), 0.0);
  EXPECT_GT(pm.write_throughput(), 0.0);
}

// --------------------------- AXIChecker --------------------------------

TEST_F(BaselineFixture, AxiCheckerFlagsProtocolViolation) {
  baseline::AxiCheckerLite chk("chk", up);
  s.add(chk);
  s.reset();
  inj.arm(FaultPoint::kSpuriousB);
  s.run(50);
  EXPECT_GT(chk.violations(), 0u);
  EXPECT_TRUE(chk.error.read());
}

TEST_F(BaselineFixture, AxiCheckerMissesTimeout) {
  // Reproduced limitation: a stall breaks no protocol rule, so the
  // rule-based checker stays silent.
  baseline::AxiCheckerLite chk("chk", up);
  s.add(chk);
  s.reset();
  inj.arm(FaultPoint::kBValidStuck);
  gen.push(TxnDesc{true, 0, 0x100, 3, 3, Burst::kIncr});
  s.run(1000);
  EXPECT_EQ(chk.violations(), 0u);
}

TEST_F(BaselineFixture, AxiCheckerQuietOnHealthyTraffic) {
  baseline::AxiCheckerLite chk("chk", up);
  s.add(chk);
  s.reset();
  gen.push(TxnDesc{true, 0, 0x100, 7, 3, Burst::kIncr});
  gen.push(TxnDesc{false, 0, 0x100, 7, 3, Burst::kIncr});
  ASSERT_TRUE(s.run_until([&] { return gen.completed() >= 2; }, 500));
  EXPECT_EQ(chk.violations(), 0u);
}

}  // namespace
