#include <gtest/gtest.h>

#include "tmu/counter.hpp"

namespace {

using tmu::Prescaler;
using tmu::PrescaledCounter;

TEST(Prescaler, StepOnePulsesEveryCycle) {
  Prescaler p(1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(p.tick());
}

TEST(Prescaler, StepNPulsesEveryNth) {
  Prescaler p(4);
  int pulses = 0;
  for (int i = 0; i < 40; ++i) {
    if (p.tick()) ++pulses;
  }
  EXPECT_EQ(pulses, 10);
}

TEST(Prescaler, ZeroStepClampedToOne) {
  Prescaler p(0);
  EXPECT_EQ(p.step(), 1u);
  EXPECT_TRUE(p.tick());
}

TEST(PrescaledCounter, ExpiresExactlyAtBudget) {
  PrescaledCounter c;
  c.arm(10, 1, false);
  for (int i = 0; i < 9; ++i) {
    EXPECT_FALSE(c.pulse()) << "pulse " << i;
  }
  EXPECT_TRUE(c.pulse());
  EXPECT_TRUE(c.expired());
}

TEST(PrescaledCounter, PrescaledLimitIsConservative) {
  // floor(budget/step) + 1: never fires before the budget even when the
  // free-running prescaler is maximally misaligned; minimum 2 pulses.
  PrescaledCounter c;
  c.arm(100, 32, false);
  EXPECT_EQ(c.limit(), 4u);
  c.arm(96, 32, false);
  EXPECT_EQ(c.limit(), 4u);
  c.arm(1, 32, false);
  EXPECT_EQ(c.limit(), 2u);
  c.arm(256, 1, false);
  EXPECT_EQ(c.limit(), 256u);
}

TEST(PrescaledCounter, StopPreventsExpiry) {
  PrescaledCounter c;
  c.arm(3, 1, false);
  c.pulse();
  c.stop();
  EXPECT_FALSE(c.pulse());
  EXPECT_FALSE(c.expired());
  EXPECT_FALSE(c.running());
}

TEST(PrescaledCounter, StickyLatchesNearTimeout) {
  PrescaledCounter c;
  c.arm(4, 1, true);
  c.pulse();  // 1
  c.pulse();  // 2
  EXPECT_FALSE(c.sticky());
  c.pulse();  // 3 -> near timeout observed (value+1 >= limit)
  EXPECT_TRUE(c.sticky());
  EXPECT_FALSE(c.expired());  // recorded, but never fires early
  c.pulse();  // 4 -> the budget itself
  EXPECT_TRUE(c.expired());
}

TEST(PrescaledCounter, NoStickyWithoutEnable) {
  PrescaledCounter c;
  c.arm(4, 1, false);
  c.pulse();
  c.pulse();
  c.pulse();
  EXPECT_FALSE(c.sticky());
}

TEST(PrescaledCounter, RearmResetsValueAndSticky) {
  PrescaledCounter c;
  c.arm(2, 1, true);
  c.pulse();
  c.pulse();
  EXPECT_TRUE(c.expired());
  c.arm(5, 1, true);
  EXPECT_FALSE(c.expired());
  EXPECT_EQ(c.value(), 0u);
  EXPECT_FALSE(c.sticky());
}

// Property: for any (budget, step), a counter armed in phase with a
// fresh prescaler never expires before the budget and at most two
// prescaler periods after it (conservative limit + alignment).
class CounterSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CounterSweep, ExpiryNeverEarlyAtMostTwoPeriodsLate) {
  const auto [budget, step] = GetParam();
  tmu::Prescaler pre(step);
  PrescaledCounter c;
  c.arm(budget, step, false);
  int cycles = 0;
  while (!c.expired() && cycles < budget + 2 * step + 2) {
    ++cycles;
    if (pre.tick()) c.pulse();
  }
  EXPECT_TRUE(c.expired());
  EXPECT_GE(cycles, budget);
  EXPECT_LE(cycles, budget + 2 * step);
}

INSTANTIATE_TEST_SUITE_P(
    BudgetStep, CounterSweep,
    ::testing::Combine(::testing::Values(1, 10, 100, 256, 320),
                       ::testing::Values(1, 2, 8, 32, 128)));

}  // namespace
