#include <gtest/gtest.h>

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "axi/scoreboard.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "sim/kernel.hpp"
#include "soc/idma.hpp"
#include "soc/reset_unit.hpp"
#include "tmu/tmu.hpp"

namespace {

using namespace axi;
using soc::DmaDescriptor;
using soc::IdmaEngine;

struct IdmaFixture : ::testing::Test {
  Link link;
  IdmaEngine dma{"dma", link};
  MemorySubordinate mem{"mem", link};
  Scoreboard sb{"sb", link};
  sim::Simulator s;

  void SetUp() override {
    s.add(dma);
    s.add(mem);
    s.add(sb);
    s.reset();
  }

  void fill(Addr base, std::uint32_t beats) {
    for (std::uint32_t b = 0; b < beats; ++b) {
      const Addr a = base + 8 * b;
      for (int i = 0; i < 8; ++i) {
        mem.poke(a + i, static_cast<std::uint8_t>(pattern_data(a) >> (8 * i)));
      }
    }
  }
};

TEST_F(IdmaFixture, CopiesOneChunk) {
  fill(0x1000, 8);
  dma.submit(DmaDescriptor{0x1000, 0x2000, 8});
  ASSERT_TRUE(s.run_until([&] { return dma.descriptors_done() >= 1; }, 500));
  for (std::uint32_t b = 0; b < 8; ++b) {
    EXPECT_EQ(mem.peek_beat(0x2000 + 8 * b, 3), pattern_data(0x1000 + 8 * b));
  }
  EXPECT_EQ(dma.beats_moved(), 8u);
  EXPECT_EQ(sb.violation_count(), 0u);
}

TEST_F(IdmaFixture, MultiChunkTransfer) {
  fill(0x1000, 50);  // 50 beats at max_burst 16 -> 4 chunks
  dma.submit(DmaDescriptor{0x1000, 0x3000, 50});
  ASSERT_TRUE(s.run_until([&] { return dma.descriptors_done() >= 1; }, 2000));
  for (std::uint32_t b = 0; b < 50; ++b) {
    EXPECT_EQ(mem.peek_beat(0x3000 + 8 * b, 3), pattern_data(0x1000 + 8 * b))
        << "beat " << b;
  }
  EXPECT_EQ(sb.violation_count(), 0u);
}

TEST_F(IdmaFixture, QueuedDescriptorsRunInOrder) {
  fill(0x1000, 4);
  fill(0x1100, 4);
  dma.submit(DmaDescriptor{0x1000, 0x4000, 4});
  dma.submit(DmaDescriptor{0x1100, 0x4100, 4});
  ASSERT_TRUE(s.run_until([&] { return dma.descriptors_done() >= 2; }, 1000));
  EXPECT_EQ(mem.peek_beat(0x4000, 3), pattern_data(0x1000));
  EXPECT_EQ(mem.peek_beat(0x4100, 3), pattern_data(0x1100));
  EXPECT_FALSE(dma.busy());
}

TEST_F(IdmaFixture, ZeroBeatDescriptorIgnored) {
  dma.submit(DmaDescriptor{0x1000, 0x2000, 0});
  s.run(50);
  EXPECT_EQ(dma.descriptors_done(), 0u);
  EXPECT_FALSE(dma.busy());
}

TEST_F(IdmaFixture, ErrorResponsesCounted) {
  Link l2;
  MemoryConfig cfg;
  cfg.error_base = 0x8000;
  cfg.error_end = 0x9000;
  IdmaEngine d2("d2", l2);
  MemorySubordinate m2("m2", l2, cfg);
  sim::Simulator s2;
  s2.add(d2);
  s2.add(m2);
  s2.reset();
  d2.submit(DmaDescriptor{0x8000, 0x2000, 4});  // reads hit error region
  ASSERT_TRUE(s2.run_until([&] { return d2.descriptors_done() >= 1; }, 500));
  EXPECT_GE(d2.error_responses(), 4u);
}

TEST(IdmaWithTmu, DmaTrafficMonitoredCleanly) {
  Link l_dma, l_tmu_sub;
  IdmaEngine dma("dma", l_dma, 16, 0x7);
  tmu::TmuConfig cfg;
  cfg.adaptive.enabled = true;
  cfg.adaptive.cycles_per_beat = 3;
  tmu::Tmu monitor("tmu", l_dma, l_tmu_sub, cfg);
  MemorySubordinate mem("mem", l_tmu_sub);
  sim::Simulator s;
  s.add(dma);
  s.add(monitor);
  s.add(mem);
  s.reset();
  dma.submit(DmaDescriptor{0x1000, 0x5000, 40});
  ASSERT_TRUE(s.run_until([&] { return dma.descriptors_done() >= 1; }, 2000));
  EXPECT_FALSE(monitor.any_fault());
  // Both guards saw the DMA's traffic.
  EXPECT_GE(monitor.read_guard().stats().completed, 3u);
  EXPECT_GE(monitor.write_guard().stats().completed, 3u);
}

TEST(IdmaWithTmu, DmaStalledByDeadMemoryIsCaught) {
  Link l_dma, l_tmu_sub, l_mem;
  IdmaEngine dma("dma", l_dma, 16, 0x7);
  tmu::TmuConfig cfg;
  cfg.adaptive.enabled = true;
  tmu::Tmu monitor("tmu", l_dma, l_tmu_sub, cfg);
  fault::FaultInjector inj("inj", l_tmu_sub, l_mem);
  MemorySubordinate mem("mem", l_mem);
  soc::ResetUnit rst("rst", monitor.reset_req, monitor.reset_ack,
                     [&] { mem.hw_reset(); });
  sim::Simulator s;
  s.add(dma);
  s.add(monitor);
  s.add(inj);
  s.add(mem);
  s.add(rst);
  s.reset();
  inj.arm(fault::FaultPoint::kRValidStuck);
  dma.submit(DmaDescriptor{0x1000, 0x5000, 16});
  ASSERT_TRUE(s.run_until([&] { return monitor.any_fault(); }, 2000));
  EXPECT_FALSE(monitor.fault_log().front().is_write);
}

}  // namespace
