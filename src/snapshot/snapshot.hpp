#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "soc/builder.hpp"

/// Simulation-state snapshots: checkpoint a settled Soc netlist and fork
/// it into independent trial instances.
///
/// A Snapshot is the complete dynamic state of an elaborated Soc at a
/// settled cycle boundary — every wire value, every module's registers
/// and queues (via sim::StateVisitor reflection, see sim/state.hpp), the
/// event scheduler's worklist and sensitivity bookkeeping, the RNG
/// streams, the cycle/eval counters and the metrics registry values.
/// Structure (modules, links, sensitivity graph shape, metric slot
/// names) is NOT stored: it is reproduced by elaborating the same
/// SocDesc, and the snapshot pins it with the desc's canonical hash.
///
/// The contract that makes forking exact: restore(capture(soc)) into a
/// netlist built from the same desc under the same sched policy yields a
/// simulator whose every subsequent cycle is byte-identical to the
/// original's — same wires, same RNG draws, same scheduler wake order,
/// same metrics. The campaign engine exploits this to run a scenario's
/// common warm-up phase once and fork thousands of trials from it
/// (campaign::ForkingTrialRunner).
///
/// On-disk format `tmu-soc-snapshot-v1` (strict, versioned,
/// checksummed; all integers little-endian):
///
///   offset  size  field
///   0       16    magic "tmu-soc-snapshot"
///   16      4     version (currently 1)
///   20      8     topology hash (SocDesc::hash() of the captured desc)
///   28      8     cycle at capture
///   36      8     payload byte count N
///   44      N     payload (the StateVisitor byte stream)
///   44+N    8     FNV-1a 64 checksum of bytes [0, 44+N)
///
/// The decoder rejects — each with a named SnapshotError — truncation
/// anywhere, bad magic, unsupported version, a payload count that
/// disagrees with the file size, and a checksum mismatch. restore()
/// additionally rejects a topology-hash mismatch, a sched-policy
/// mismatch, a header cycle that disagrees with the payload, and any
/// payload that underruns, overruns or misaligns the netlist walk.
namespace snapshot {

inline constexpr std::size_t kMagicBytes = 16;
inline constexpr char kMagic[kMagicBytes + 1] = "tmu-soc-snapshot";
inline constexpr std::uint32_t kVersion = 1;
/// Fixed bytes before the payload (magic + version + hash + cycle + count).
inline constexpr std::size_t kHeaderBytes = kMagicBytes + 4 + 8 + 8 + 8;
inline constexpr std::size_t kChecksumBytes = 8;

/// Any snapshot failure: encode/decode format violations, I/O errors,
/// and capture/restore contract violations. Messages are prefixed
/// "tmu-soc-snapshot:" and name the offending field or offset.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One captured netlist state. Plain data: copyable, comparable,
/// shareable across threads (restore() never mutates the snapshot).
struct Snapshot {
  std::uint64_t topology_hash = 0;  ///< SocDesc::hash() of the capture
  std::uint64_t cycle = 0;          ///< Simulator::cycle() at capture
  std::vector<unsigned char> payload;

  bool operator==(const Snapshot&) const = default;
};

/// Captures the complete dynamic state of `soc`. Settles the netlist
/// first (capture is only meaningful at a settled boundary; settling an
/// already-settled netlist is a no-op).
Snapshot capture(soc::Soc& soc);

/// Restores `snap` into `soc`, which must be elaborated from the same
/// desc (pinned by the topology hash) under the same sched policy.
/// After restore the simulator reports the captured cycle and continues
/// byte-identically to the captured one. Throws SnapshotError on any
/// mismatch; `soc` may be left partially written in that case — discard
/// it (the cheap rejections all fire before any state is touched).
void restore(const Snapshot& snap, soc::Soc& soc);

/// Builds a fresh netlist from `desc` and restores `snap` into it — the
/// fork primitive. Each call yields an independent instance (own
/// Simulator, own context) that may run on its own thread.
std::unique_ptr<soc::Soc> fork(const Snapshot& snap, const soc::SocDesc& desc);

/// FNV-1a 64 over a byte range (the format's checksum; exposed for
/// tests that tamper with encoded images).
std::uint64_t fnv1a64(const unsigned char* p, std::size_t n);

/// Encodes to the on-disk image (header + payload + checksum).
std::vector<unsigned char> encode(const Snapshot& snap);

/// Strict decode of a complete on-disk image; throws SnapshotError
/// naming the first violation.
Snapshot decode(const unsigned char* data, std::size_t n);
inline Snapshot decode(const std::vector<unsigned char>& image) {
  return decode(image.data(), image.size());
}

/// Writes encode(snap) to `path`; throws SnapshotError on I/O failure.
void write_file(const Snapshot& snap, const std::string& path);

/// Reads and decodes `path`; throws SnapshotError on I/O failure or any
/// format violation.
Snapshot read_file(const std::string& path);

}  // namespace snapshot
