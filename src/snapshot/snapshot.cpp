#include "snapshot/snapshot.hpp"

#include <cstdio>
#include <cstring>

#include "sim/state.hpp"

namespace snapshot {

namespace {

[[noreturn]] void bail(const std::string& msg) {
  throw SnapshotError("tmu-soc-snapshot: " + msg);
}

/// Appends the netlist walk's byte stream to a growable buffer.
class SaveVisitor final : public sim::StateVisitor {
 public:
  SaveVisitor() : StateVisitor(/*saving=*/true) {}

  [[noreturn]] void fail(const std::string& msg) override { bail(msg); }

  std::vector<unsigned char> take() { return std::move(out_); }

 protected:
  void bytes(unsigned char* p, std::size_t n) override {
    out_.insert(out_.end(), p, p + n);
  }
  std::uint64_t remaining() const override { return ~std::uint64_t{0}; }

 private:
  std::vector<unsigned char> out_;
};

/// Consumes a payload; any underrun or contract violation throws with
/// the current payload offset, so a drifted walk names where it died.
class LoadVisitor final : public sim::StateVisitor {
 public:
  LoadVisitor(const unsigned char* data, std::size_t size)
      : StateVisitor(/*saving=*/false), data_(data), size_(size) {}

  [[noreturn]] void fail(const std::string& msg) override {
    bail(msg + " (at payload offset " + std::to_string(pos_) + ")");
  }

  std::size_t consumed() const { return pos_; }

 protected:
  void bytes(unsigned char* p, std::size_t n) override {
    if (n > size_ - pos_) {
      fail("payload underrun: need " + std::to_string(n) + " bytes, " +
           std::to_string(size_ - pos_) + " left");
    }
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
  }
  std::uint64_t remaining() const override { return size_ - pos_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void put_u32(std::vector<unsigned char>& out, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<unsigned char>(x >> (8 * i)));
  }
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>(x >> (8 * i)));
  }
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t x = 0;
  for (int i = 0; i < 4; ++i) x |= std::uint32_t{p[i]} << (8 * i);
  return x;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x |= std::uint64_t{p[i]} << (8 * i);
  return x;
}

}  // namespace

Snapshot capture(soc::Soc& soc) {
  soc.sim().settle();
  SaveVisitor v;
  soc.visit_state(v);
  Snapshot snap;
  snap.topology_hash = soc.desc().hash();
  snap.cycle = soc.sim().cycle();
  snap.payload = v.take();
  return snap;
}

void restore(const Snapshot& snap, soc::Soc& soc) {
  const std::uint64_t have = soc.desc().hash();
  if (snap.topology_hash != have) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "topology hash mismatch: snapshot was captured from "
                  "%016llx, netlist '%s' hashes %016llx",
                  static_cast<unsigned long long>(snap.topology_hash),
                  soc.desc().name.c_str(),
                  static_cast<unsigned long long>(have));
    bail(buf);
  }
  LoadVisitor v(snap.payload.data(), snap.payload.size());
  soc.visit_state(v);
  if (v.consumed() != snap.payload.size()) {
    bail("payload has " + std::to_string(snap.payload.size() - v.consumed()) +
         " trailing bytes after the netlist walk");
  }
  if (soc.sim().cycle() != snap.cycle) {
    bail("header cycle " + std::to_string(snap.cycle) +
         " disagrees with the payload's cycle " +
         std::to_string(soc.sim().cycle()));
  }
}

std::unique_ptr<soc::Soc> fork(const Snapshot& snap,
                               const soc::SocDesc& desc) {
  std::unique_ptr<soc::Soc> soc = soc::SocBuilder::build(desc);
  restore(snap, *soc);
  return soc;
}

std::uint64_t fnv1a64(const unsigned char* p, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

std::vector<unsigned char> encode(const Snapshot& snap) {
  std::vector<unsigned char> out;
  out.reserve(kHeaderBytes + snap.payload.size() + kChecksumBytes);
  out.resize(kMagicBytes);
  std::memcpy(out.data(), kMagic, kMagicBytes);
  put_u32(out, kVersion);
  put_u64(out, snap.topology_hash);
  put_u64(out, snap.cycle);
  put_u64(out, snap.payload.size());
  out.insert(out.end(), snap.payload.begin(), snap.payload.end());
  put_u64(out, fnv1a64(out.data(), out.size()));
  return out;
}

Snapshot decode(const unsigned char* data, std::size_t n) {
  if (n < kHeaderBytes + kChecksumBytes) {
    bail("file is " + std::to_string(n) + " bytes; even an empty snapshot is " +
         std::to_string(kHeaderBytes + kChecksumBytes));
  }
  if (std::memcmp(data, kMagic, kMagicBytes) != 0) {
    bail("bad magic (not a tmu-soc-snapshot file)");
  }
  const std::uint32_t version = get_u32(data + kMagicBytes);
  if (version != kVersion) {
    bail("unsupported version " + std::to_string(version) + " (reader knows " +
         std::to_string(kVersion) + ")");
  }
  Snapshot snap;
  snap.topology_hash = get_u64(data + kMagicBytes + 4);
  snap.cycle = get_u64(data + kMagicBytes + 12);
  const std::uint64_t count = get_u64(data + kMagicBytes + 20);
  const std::uint64_t body = n - kHeaderBytes - kChecksumBytes;
  if (count != body) {
    bail("payload count " + std::to_string(count) + " disagrees with the " +
         std::to_string(body) + " payload bytes in the file (truncated or "
         "trailing bytes)");
  }
  const std::uint64_t want = get_u64(data + n - kChecksumBytes);
  const std::uint64_t got = fnv1a64(data, n - kChecksumBytes);
  if (want != got) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "checksum mismatch: file says %016llx, content hashes "
                  "%016llx",
                  static_cast<unsigned long long>(want),
                  static_cast<unsigned long long>(got));
    bail(buf);
  }
  snap.payload.assign(data + kHeaderBytes, data + kHeaderBytes + body);
  return snap;
}

void write_file(const Snapshot& snap, const std::string& path) {
  const std::vector<unsigned char> image = encode(snap);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) bail("cannot open '" + path + "' for writing");
  const bool ok =
      std::fwrite(image.data(), 1, image.size(), f) == image.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) bail("write to '" + path + "' failed");
}

Snapshot read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) bail("cannot open '" + path + "' for reading");
  std::vector<unsigned char> image;
  unsigned char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    image.insert(image.end(), buf, buf + got);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) bail("read from '" + path + "' failed");
  return decode(image.data(), image.size());
}

}  // namespace snapshot
