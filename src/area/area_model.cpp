#include "area/area_model.hpp"

#include <algorithm>
#include <cmath>

namespace area {

namespace {

unsigned clog2(std::uint64_t v) {
  unsigned bits = 0;
  std::uint64_t x = 1;
  while (x < v) {
    x <<= 1;
    ++bits;
  }
  return bits;
}

/// Largest time budget any counter of this config must represent.
std::uint32_t max_budget_cycles(const tmu::TmuConfig& cfg) {
  if (cfg.variant == tmu::Variant::kTinyCounter) {
    return std::max(cfg.tc_total_budget, cfg.max_txn_cycles);
  }
  const tmu::PhaseBudgets& b = cfg.budgets;
  std::uint32_t m = cfg.max_txn_cycles;
  for (std::uint32_t v : {b.aw_vld_aw_rdy, b.aw_rdy_w_vld, b.w_vld_w_rdy,
                          b.w_first_w_last, b.w_last_b_vld, b.b_vld_b_rdy,
                          b.ar_vld_ar_rdy, b.ar_rdy_r_vld, b.r_vld_r_rdy,
                          b.r_vld_r_last}) {
    m = std::max(m, v);
  }
  return m;
}

}  // namespace

unsigned counter_width(std::uint32_t budget_cycles, std::uint32_t step) {
  if (step == 0) step = 1;
  // Same conservative limit as tmu::PrescaledCounter::arm.
  std::uint32_t limit;
  if (step == 1) {
    limit = budget_cycles ? budget_cycles : 1;
  } else {
    limit = std::max<std::uint32_t>(2, budget_cycles / step + 1);
  }
  return std::max(1u, clog2(limit + 1));
}

unsigned ld_entry_bits(const tmu::TmuConfig& cfg, bool write_guard) {
  const unsigned cw = counter_width(max_budget_cycles(cfg),
                                    cfg.prescaler_step);
  const unsigned ptr = std::max(1u, clog2(cfg.max_outstanding()));
  const unsigned tid = std::max(1u, clog2(cfg.max_uniq_ids));
  const unsigned sticky = cfg.sticky_bit ? 1u : 0u;

  // Fields common to both variants: valid, accepted, tID, AWLEN/ARLEN,
  // beat counter, FSM phase, linked-list next pointer.
  const unsigned phases = write_guard ? tmu::kNumWritePhases
                                      : tmu::kNumReadPhases;
  const unsigned common = 1 + 1 + tid + 8 + 8 + clog2(phases + 1) + ptr;

  if (cfg.variant == tmu::Variant::kTinyCounter) {
    // One watchdog counter, its (adaptive) budget register and the
    // whole-transaction latency accumulator (Tc reports timing metrics,
    // Table II); all three follow the prescaler resolution.
    return common + cw + cw + std::min(9u, cw + 2) + sticky;
  }
  // Full-Counter: one watchdog and one (adaptive) budget register per
  // phase, one total-latency accumulator for the performance log, and
  // per-phase latency snapshot registers. The snapshots stay at full
  // 8-bit resolution — the detailed performance log is the Fc's headline
  // feature — which is why the prescaler saves relatively less area on
  // Fc (19-32%) than on Tc (18-39%).
  return common + phases * cw + phases * cw + sticky + 9 + phases * 8;
}

AreaBreakdown estimate(const tmu::TmuConfig& cfg, const Gf12Costs& c) {
  AreaBreakdown a;
  const std::uint32_t n = cfg.max_outstanding();
  const std::uint32_t ids = cfg.max_uniq_ids;
  const unsigned ptr = std::max(1u, clog2(n));
  const unsigned cw = counter_width(max_budget_cycles(cfg),
                                    cfg.prescaler_step);
  const unsigned phases_total =
      cfg.variant == tmu::Variant::kFullCounter
          ? tmu::kNumWritePhases + tmu::kNumReadPhases
          : 2;  // one active comparator per guard

  // LD tables: both guards, n entries each.
  const unsigned ld_bits =
      n * (ld_entry_bits(cfg, true) + ld_entry_bits(cfg, false));
  a.ld_table = ld_bits * c.um2_per_flop;

  // HT tables: head + tail pointer and a per-ID occupancy counter.
  const unsigned ht_bits = 2 * ids * (2 * ptr + 1 + clog2(n + 1));
  a.ht_table = ht_bits * c.um2_per_flop;

  // EI tables: enqueue-order FIFO of LD indices.
  const unsigned ei_bits = 2 * (n * ptr + 2 * ptr);
  a.ei_table = ei_bits * c.um2_per_flop;

  // ID remapper: CAM of original IDs (8-bit AXI IDs) + outstanding
  // counters per slot, for each guard; match logic counted as gates.
  const unsigned remap_bits = 2 * ids * (8 + clog2(n + 1));
  a.remapper = remap_bits * c.um2_per_flop +
               2 * ids * 8 * 1.5 * c.um2_per_ge;  // XOR-match + priority

  // Budget comparators plus the per-entry next-state / increment /
  // select logic, which scales with the counter width.
  const double per_entry_logic_ge =
      cfg.variant == tmu::Variant::kFullCounter ? 2 * (130.0 + 18.0 * cw)
                                                : 2 * (40.0 + 10.0 * cw);
  a.comparators = n * phases_total * cw * 1.2 * c.um2_per_ge +
                  n * per_entry_logic_ge * c.um2_per_ge;

  // Control: guard FSMs, channel gating muxes, abort generators,
  // prescaler, and the active shadow of the configuration registers.
  const double regfile = 4 * 32 * c.um2_per_flop;
  const double fsm = 2 * 200 * c.um2_per_ge;
  const double gating = 5 * 30 * c.um2_per_ge;
  const double prescaler_logic =
      cfg.prescaler_step > 1 ? (clog2(cfg.prescaler_step) + 2) * 8 *
                                   c.um2_per_ge
                             : 0.0;
  a.control = regfile + fsm + gating + prescaler_logic;

  a.total = (a.ld_table + a.ht_table + a.ei_table + a.remapper +
             a.comparators + a.control) *
            c.overhead;
  return a;
}

tmu::TmuConfig paper_ip_config(tmu::Variant v, std::uint32_t outstanding,
                               std::uint32_t prescaler_step, bool sticky) {
  tmu::TmuConfig cfg;
  cfg.variant = v;
  cfg.max_uniq_ids = std::min<std::uint32_t>(4, outstanding);
  cfg.txn_per_uniq_id =
      std::max<std::uint32_t>(1, outstanding / cfg.max_uniq_ids);
  cfg.max_txn_cycles = 256;
  cfg.tc_total_budget = 256;
  cfg.budgets.w_first_w_last = 256;
  cfg.budgets.r_vld_r_last = 256;
  cfg.prescaler_step = prescaler_step;
  cfg.sticky_bit = sticky;
  return cfg;
}

double paper_config_area(tmu::Variant v, std::uint32_t outstanding,
                         std::uint32_t prescaler_step, bool sticky) {
  return estimate(paper_ip_config(v, outstanding, prescaler_step, sticky))
      .total;
}

}  // namespace area
