#pragma once

#include <cstdint>
#include <string>

#include "tmu/config.hpp"

namespace area {

/// Effective GlobalFoundries-12nm standard-cell costs, including
/// clock-tree, routing and synthesis overhead. The two leading constants
/// were calibrated once against the four area end points the paper
/// reports in §III-A (Tc/Fc at 16 and 32 outstanding transactions,
/// 4 unique IDs, 256-cycle budgets, no prescaler); everything else is a
/// bit-accurate count of the storage and logic each configuration needs.
struct Gf12Costs {
  double um2_per_flop = 0.414;     ///< DFF incl. local routing
  double um2_per_ge = 0.0675;      ///< NAND2-equivalent combinational
  double overhead = 1.08;          ///< top-level integration overhead
};

/// Area split by TMU component (µm²).
struct AreaBreakdown {
  double ld_table = 0;     ///< LD entries of both guards (counters incl.)
  double ht_table = 0;     ///< per-tID head/tail pointers
  double ei_table = 0;     ///< enqueue-order FIFO
  double remapper = 0;     ///< ID remap CAM + outstanding counters
  double comparators = 0;  ///< per-entry budget comparators
  double control = 0;      ///< guard FSMs, gating, prescaler, regfile
  double total = 0;
};

/// Width in bits of a counter that must count to `budget_cycles` when
/// incremented once every `step` cycles.
unsigned counter_width(std::uint32_t budget_cycles, std::uint32_t step);

/// Bits in one LD entry of the given variant (one guard's table).
unsigned ld_entry_bits(const tmu::TmuConfig& cfg, bool write_guard);

/// Full-TMU area estimate (write + read guard, remapper, control).
AreaBreakdown estimate(const tmu::TmuConfig& cfg,
                       const Gf12Costs& costs = Gf12Costs{});

/// Convenience: total µm² for a (variant, outstanding, prescaler) point
/// using the paper's IP-evaluation setup (4 unique IDs, 256-cycle
/// budgets).
double paper_config_area(tmu::Variant v, std::uint32_t outstanding,
                         std::uint32_t prescaler_step, bool sticky);

/// The TmuConfig used for the paper's IP-level evaluation (§III-A):
/// 4 unique IDs, `outstanding` total transactions, budgets sized for
/// transactions of up to 256 cycles.
tmu::TmuConfig paper_ip_config(tmu::Variant v, std::uint32_t outstanding,
                               std::uint32_t prescaler_step, bool sticky);

}  // namespace area
