#include "obs/metrics.hpp"

#include <cinttypes>
#include <stdexcept>

#include "sim/jsonfmt.hpp"
#include "sim/state.hpp"

namespace obs {

using sim::jsonfmt::append_f;
using sim::jsonfmt::json_escape;

void MetricsRegistry::claim(const std::string& name, char kind) {
  if (name.empty()) {
    throw std::invalid_argument("MetricsRegistry: empty metric name");
  }
  const auto [it, fresh] = kind_of_.emplace(name, kind);
  if (!fresh && it->second != kind) {
    throw std::invalid_argument("MetricsRegistry: metric '" + name +
                                "' already registered under another kind");
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  claim(name, 'c');
  return counters_[name];
}

sim::RunningStats& MetricsRegistry::stats(const std::string& name) {
  claim(name, 's');
  return stats_[name];
}

sim::Histogram& MetricsRegistry::histogram(const std::string& name) {
  claim(name, 'h');
  return histograms_[name];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c.value();
  s.stats = stats_;
  s.histograms = histograms_;
  return s;
}

void MetricsRegistry::reset_values() {
  for (auto& [name, c] : counters_) c.set(0);
  for (auto& [name, rs] : stats_) rs = {};
  for (auto& [name, h] : histograms_) h = {};
}

void MetricsRegistry::visit_state(sim::StateVisitor& v) {
  // One strictly-checked pass per kind: name-sorted (name, value) pairs.
  // The name check pins that the restoring netlist registered the exact
  // same slots — a registry is structure, only the values travel.
  const auto section = [&](auto& slots, const char* what, auto&& value_of) {
    std::uint64_t n = slots.size();
    v.count(n);
    if (!v.saving() && n != slots.size()) {
      v.fail(std::string("metrics registry has ") +
             std::to_string(slots.size()) + " " + what +
             " slots, snapshot has " + std::to_string(n));
    }
    for (auto& [name, slot] : slots) {
      std::string nm = name;
      v.str(nm);
      if (!v.saving() && nm != name) {
        v.fail(std::string("metrics registry ") + what + " slot '" + name +
               "' does not match snapshot slot '" + nm + "'");
      }
      value_of(slot);
    }
  };
  section(counters_, "counter", [&](Counter& c) {
    std::uint64_t val = c.value();
    v.u64(val);
    if (!v.saving()) c.set(val);
  });
  section(stats_, "stats", [&](sim::RunningStats& rs) { visit(v, rs); });
  section(histograms_, "histogram", [&](sim::Histogram& h) { visit(v, h); });
}

void MetricsSnapshot::merge(const MetricsSnapshot& o) {
  for (const auto& [name, v] : o.counters) counters[name] += v;
  for (const auto& [name, rs] : o.stats) stats[name].merge(rs);
  for (const auto& [name, h] : o.histograms) histograms[name].merge(h);
}

void MetricsSnapshot::append_json(std::string& out,
                                  const std::string& indent) const {
  const auto key = [&](const std::string& name) {
    out += indent;
    out += "  \"";
    out += json_escape(name);
    out += "\": ";
  };
  out += indent + "\"counters\": {";
  const char* sep = "\n";
  for (const auto& [name, v] : counters) {
    out += sep;
    sep = ",\n";
    key(name);
    append_f(out, "%" PRIu64, v);
  }
  out += counters.empty() ? std::string("},\n") : "\n" + indent + "},\n";
  out += indent + "\"stats\": {";
  sep = "\n";
  for (const auto& [name, rs] : stats) {
    out += sep;
    sep = ",\n";
    key(name);
    append_f(out, "{\"count\": %" PRIu64 ", \"mean\": %.6f, ", rs.count(),
             rs.mean());
    append_f(out, "\"stddev\": %.6f, \"min\": %.0f, \"max\": %.0f}",
             rs.stddev(), rs.min(), rs.max());
  }
  out += stats.empty() ? std::string("},\n") : "\n" + indent + "},\n";
  out += indent + "\"histograms\": {";
  sep = "\n";
  for (const auto& [name, h] : histograms) {
    out += sep;
    sep = ",\n";
    key(name);
    out += '{';
    const char* bsep = "";
    for (const auto& [value, count] : h.bins()) {
      append_f(out, "%s\"%" PRIu64 "\": %" PRIu64, bsep, value, count);
      bsep = ", ";
    }
    out += '}';
  }
  out += histograms.empty() ? std::string("}") : "\n" + indent + "}";
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n";
  append_json(out, "  ");
  out += "\n}\n";
  return out;
}

}  // namespace obs
