#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/stats.hpp"

namespace sim {
class StateVisitor;
}

/// Unified observability layer: a per-netlist metrics registry that
/// modules publish into, plus value-type snapshots that serialize
/// deterministically and merge exactly (campaign shards, remote
/// workers). The design rule is zero hot-path overhead: slots are
/// registered once at construction time and handed back as plain
/// references, so an eval/tick-time update is an ordinary integer
/// increment or a RunningStats/Histogram add — no name lookup, no
/// allocation, no locking (a registry belongs to one netlist, which is
/// driven by one thread at a time).
namespace obs {

class MetricsRegistry;

/// A monotonically increasing (or testbench-reset) 64-bit event count.
/// Obtained from MetricsRegistry::counter at construction; incremented
/// freely on the hot path.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  void set(std::uint64_t v) { v_ = v; }
  std::uint64_t value() const { return v_; }

 private:
  friend class MetricsRegistry;
  std::uint64_t v_ = 0;
};

/// One coherent sample of a registry (or a merge of many): plain data,
/// ordered by metric name, so two snapshots merge and serialize
/// deterministically. merge() is exact — integer adds for counters and
/// histogram bins, Chan et al. pooling for the moment statistics — so a
/// snapshot merged from N shards in a fixed order is byte-identical to
/// the single-shard run, which is what campaign reports depend on.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, sim::RunningStats> stats;
  std::map<std::string, sim::Histogram> histograms;

  bool empty() const {
    return counters.empty() && stats.empty() && histograms.empty();
  }

  /// Combines another snapshot into this one (exact; see above).
  void merge(const MetricsSnapshot& o);

  /// Deterministic JSON document: fixed field order, names sorted.
  std::string to_json() const;

  /// Emits the snapshot's fields into an already-open JSON object at
  /// the given indentation (no trailing comma/newline) — how campaign
  /// summaries embed their metrics.
  void append_json(std::string& out, const std::string& indent) const;
};

/// Named metric slots for one netlist. Names are hierarchical,
/// dot-separated, derived from the owning module's name (the module
/// tree's path): "dram.probe.read_latency", "io_cluster.xbar.evals".
/// Each name belongs to exactly one metric kind; re-registering a
/// (name, kind) pair returns the existing slot, registering a name
/// under a second kind throws std::invalid_argument naming it.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  sim::RunningStats& stats(const std::string& name);
  sim::Histogram& histogram(const std::string& name);

  /// Copies every slot's current value (registration survives; the
  /// snapshot is an independent value).
  MetricsSnapshot snapshot() const;

  /// Zeroes every slot in place — references handed out stay valid,
  /// which is what makes this safe to call from Module::reset paths.
  void reset_values();

  std::size_t size() const {
    return counters_.size() + stats_.size() + histograms_.size();
  }

  /// State serde (sim/state.hpp): every slot's name and current value,
  /// name-sorted. Load restores values in place into an
  /// identically-registered registry (same netlist built from the same
  /// desc) and fails loudly on any name or slot-count mismatch —
  /// registration itself is construction-time and is not serialized.
  void visit_state(sim::StateVisitor& v);

 private:
  void claim(const std::string& name, char kind);

  // std::map: stable slot addresses for the lifetime of the registry
  // plus name-sorted iteration for deterministic snapshots.
  std::map<std::string, Counter> counters_;
  std::map<std::string, sim::RunningStats> stats_;
  std::map<std::string, sim::Histogram> histograms_;
  std::map<std::string, char> kind_of_;
};

}  // namespace obs
