#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "axi/link.hpp"
#include "obs/metrics.hpp"
#include "sim/module.hpp"
#include "sim/state.hpp"

namespace obs {

/// First-class per-link AXI observability probe: publishes transaction
/// counts, byte throughput, address->response latency (summary stats
/// AND exact histograms) and outstanding-transaction occupancy for one
/// axi::Link into a MetricsRegistry, under "<name>.*" hierarchical
/// metric names:
///
///   <name>.read_txns / write_txns      counters (completed bursts)
///   <name>.bytes_read / bytes_written  counters
///   <name>.cycles                      counter (ticks observed)
///   <name>.read_latency / write_latency             RunningStats
///   <name>.read_latency_hist / write_latency_hist   exact Histograms
///   <name>.occupancy                   Histogram (outstanding txns,
///                                      sampled once per cycle)
///
/// Successor of baseline::AxiPerfMonitor (the paper's Table II "pure
/// statistics" monitor) with identical latency semantics — AW/AR accept
/// to B/last-R, tracked per ID — so its numbers are comparable across
/// PRs; unlike the baseline it feeds the shared registry, which is what
/// campaign trials snapshot into reports. Attach declaratively via the
/// `probes` section of soc::SocDesc, or construct directly in
/// testbench code.
class LatencyProbe : public sim::Module {
 public:
  LatencyProbe(const std::string& name, axi::Link& link,
               MetricsRegistry& registry)
      : sim::Module(name),
        link_(link),
        read_txns_(registry.counter(name + ".read_txns")),
        write_txns_(registry.counter(name + ".write_txns")),
        bytes_read_(registry.counter(name + ".bytes_read")),
        bytes_written_(registry.counter(name + ".bytes_written")),
        cycles_(registry.counter(name + ".cycles")),
        read_latency_(registry.stats(name + ".read_latency")),
        write_latency_(registry.stats(name + ".write_latency")),
        read_hist_(registry.histogram(name + ".read_latency_hist")),
        write_hist_(registry.histogram(name + ".write_latency_hist")),
        occupancy_(registry.histogram(name + ".occupancy")) {}

  /// Samples settled wires in tick() only; schedulers skip it in settle.
  bool is_combinational() const override { return false; }

  void tick() override {
    // By reference: the settled wire values are stable for the whole
    // tick phase, and the structs are too big to copy every cycle.
    const axi::AxiReq& q = link_.req.read();
    const axi::AxiRsp& s = link_.rsp.read();

    if (axi::aw_fire(q, s)) {
      w_start_[q.aw.id] = cycle_;
      write_txns_.inc();
    }
    if (axi::w_fire(q, s)) bytes_written_.inc(axi::beat_bytes(3));
    if (axi::b_fire(q, s)) {
      const auto it = w_start_.find(s.b.id);
      if (it != w_start_.end()) {
        const std::uint64_t lat = cycle_ - it->second;
        write_latency_.add(static_cast<double>(lat));
        write_hist_.add(lat);
        w_start_.erase(it);
      }
    }
    if (axi::ar_fire(q, s)) {
      r_start_[q.ar.id] = cycle_;
      read_txns_.inc();
    }
    if (axi::r_fire(q, s)) {
      bytes_read_.inc(axi::beat_bytes(3));
      if (s.r.last) {
        const auto it = r_start_.find(s.r.id);
        if (it != r_start_.end()) {
          const std::uint64_t lat = cycle_ - it->second;
          read_latency_.add(static_cast<double>(lat));
          read_hist_.add(lat);
          r_start_.erase(it);
        }
      }
    }
    occupancy_.add(w_start_.size() + r_start_.size());
    cycles_.inc();
    ++cycle_;
  }

  void reset() override {
    w_start_.clear();
    r_start_.clear();
    cycle_ = 0;
    // Registry slots are intentionally NOT cleared: the registry owner
    // decides snapshot boundaries (call MetricsRegistry::reset_values
    // to zero every slot between measurement windows).
  }

  /// State serde (sim/state.hpp): only the in-flight tracking is local
  /// state — the published slot values travel with the MetricsRegistry.
  void visit_state(sim::StateVisitor& v) override {
    visit(v, w_start_);
    visit(v, r_start_);
    visit(v, cycle_);
  }

  std::uint64_t write_txns() const { return write_txns_.value(); }
  std::uint64_t read_txns() const { return read_txns_.value(); }
  std::uint64_t bytes_written() const { return bytes_written_.value(); }
  std::uint64_t bytes_read() const { return bytes_read_.value(); }
  const sim::RunningStats& write_latency() const { return write_latency_; }
  const sim::RunningStats& read_latency() const { return read_latency_; }
  const sim::Histogram& write_latency_hist() const { return write_hist_; }
  const sim::Histogram& read_latency_hist() const { return read_hist_; }
  const sim::Histogram& occupancy_hist() const { return occupancy_; }
  double write_throughput() const {
    return cycle_ ? static_cast<double>(bytes_written_.value()) /
                        static_cast<double>(cycle_)
                  : 0.0;
  }
  double read_throughput() const {
    return cycle_ ? static_cast<double>(bytes_read_.value()) /
                        static_cast<double>(cycle_)
                  : 0.0;
  }

 private:
  axi::Link& link_;
  Counter& read_txns_;
  Counter& write_txns_;
  Counter& bytes_read_;
  Counter& bytes_written_;
  Counter& cycles_;
  sim::RunningStats& read_latency_;
  sim::RunningStats& write_latency_;
  sim::Histogram& read_hist_;
  sim::Histogram& write_hist_;
  sim::Histogram& occupancy_;
  std::map<axi::Id, std::uint64_t> w_start_;
  std::map<axi::Id, std::uint64_t> r_start_;
  std::uint64_t cycle_ = 0;
};

}  // namespace obs
