#pragma once

#include <cstdint>
#include <string>

#include "axi/link.hpp"
#include "sim/module.hpp"
#include "sim/wire.hpp"

namespace baseline {

/// Model of the Xilinx AXI Timeout Block (PG080): tracks the time
/// between the address phase and the corresponding response phase with
/// ONE timer per direction. If a response exceeds the user-defined
/// window it flags an error and raises an interrupt.
///
/// Deliberately reproduced limitations (paper Table II):
///  * no phase-level latency metrics — only address->response;
///  * no protocol checks (ID mismatches, WLAST placement, ...);
///  * no real multiple-outstanding support: the single timer restarts
///    on the next address phase, so an older stalled transaction can be
///    masked by newer traffic.
class XilinxTimeoutBlock : public sim::Module {
 public:
  XilinxTimeoutBlock(std::string name, axi::Link& link,
                     std::uint32_t window = 256)
      : sim::Module(std::move(name)), link_(link), window_(window) {}

  sim::Wire<bool> irq;

  void eval() override { irq.write(errored_); }

  void tick() override {
    const axi::AxiReq q = link_.req.read();
    const axi::AxiRsp s = link_.rsp.read();

    // Write direction: aw accept (re)starts the timer; any B stops it.
    if (axi::aw_fire(q, s)) {
      w_timer_ = 0;
      w_active_ = true;  // note: restarts even if an older txn is stuck
    }
    if (axi::b_fire(q, s)) w_active_ = false;
    if (w_active_ && ++w_timer_ >= window_) {
      errored_ = true;
      ++timeouts_;
      w_active_ = false;
    }

    if (axi::ar_fire(q, s)) {
      r_timer_ = 0;
      r_active_ = true;
    }
    if (axi::r_fire(q, s) && s.r.last) r_active_ = false;
    if (r_active_ && ++r_timer_ >= window_) {
      errored_ = true;
      ++timeouts_;
      r_active_ = false;
    }
    ++cycle_;
  }

  void reset() override {
    w_timer_ = r_timer_ = 0;
    w_active_ = r_active_ = false;
    errored_ = false;
    timeouts_ = 0;
    cycle_ = 0;
    irq.force(false);
  }

  bool errored() const { return errored_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t cycle() const { return cycle_; }

 private:
  axi::Link& link_;
  std::uint32_t window_;
  std::uint32_t w_timer_ = 0, r_timer_ = 0;
  bool w_active_ = false, r_active_ = false;
  bool errored_ = false;
  std::uint64_t timeouts_ = 0;
  std::uint64_t cycle_ = 0;
};

/// Model of the ARM SP805 watchdog: a down-counter the software must
/// kick periodically. First expiry raises the interrupt, a second one
/// asserts the reset output. It knows nothing about the bus — it only
/// detects that software stopped making progress.
class Sp805Watchdog : public sim::Module {
 public:
  Sp805Watchdog(std::string name, std::uint32_t load = 1000)
      : sim::Module(std::move(name)), load_(load), counter_(load) {}

  sim::Wire<bool> irq;
  sim::Wire<bool> reset_out;

  /// Software reload (the periodic "kick").
  void kick() { kick_pending_ = true; }

  void eval() override {
    irq.write(irq_);
    reset_out.write(reset_);
  }

  void tick() override {
    if (kick_pending_) {
      counter_ = load_;
      irq_ = false;
      kick_pending_ = false;
      return;
    }
    if (counter_ == 0) {
      if (!irq_) {
        irq_ = true;
        counter_ = load_;
      } else {
        reset_ = true;
      }
      return;
    }
    --counter_;
  }

  void reset() override {
    counter_ = load_;
    irq_ = reset_ = false;
    kick_pending_ = false;
    irq.force(false);
    reset_out.force(false);
  }

  bool irq_pending() const { return irq_; }
  bool reset_asserted() const { return reset_; }

 private:
  std::uint32_t load_;
  std::uint32_t counter_;
  bool irq_ = false;
  bool reset_ = false;
  bool kick_pending_ = false;
};

}  // namespace baseline
