#pragma once

#include <string>

#include "axi/scoreboard.hpp"
#include "sim/module.hpp"
#include "sim/wire.hpp"

namespace baseline {

/// Model of AXIChecker (Chen, Ju, Huang — ISOCC'10): a synthesizable
/// rule-based protocol checker. It flags handshake-stability, WLAST/
/// RLAST placement, 4 KiB-crossing, WRAP-length and unrequested-response
/// violations and raises an error line, but has NO timing monitoring
/// (a stalled transaction is never flagged) and no recovery path
/// (paper Table II).
class AxiCheckerLite : public sim::Module {
 public:
  AxiCheckerLite(std::string name, axi::Link& link)
      : sim::Module(std::move(name)), sb_(name + ".rules", link) {}

  sim::Wire<bool> error;

  void tick() override {
    sb_.tick();
    // Level error output once any rule fired.
  }

  void eval() override { error.write(sb_.violation_count() > 0); }

  void reset() override {
    sb_.reset();
    error.force(false);
  }

  std::size_t violations() const { return sb_.violation_count(); }
  const std::vector<axi::Violation>& violation_log() const {
    return sb_.violations();
  }

 private:
  axi::Scoreboard sb_;
};

}  // namespace baseline
