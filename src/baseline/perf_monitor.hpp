#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "axi/link.hpp"
#include "sim/module.hpp"
#include "sim/stats.hpp"

namespace baseline {

/// Model of an AMD/Synopsys-style AXI Performance Monitor: counts
/// transactions, bytes and address->response latency for a
/// manager/subordinate pair. Pure statistics — no fault detection, no
/// protocol checks, no recovery (paper Table II).
class AxiPerfMonitor : public sim::Module {
 public:
  AxiPerfMonitor(std::string name, axi::Link& link)
      : sim::Module(std::move(name)), link_(link) {}

  /// Samples settled wires in tick() only; schedulers skip it in settle.
  bool is_combinational() const override { return false; }

  void tick() override {
    const axi::AxiReq q = link_.req.read();
    const axi::AxiRsp s = link_.rsp.read();

    if (axi::aw_fire(q, s)) {
      w_start_[q.aw.id] = cycle_;
      ++write_txns_;
    }
    if (axi::w_fire(q, s)) bytes_written_ += axi::beat_bytes(3);
    if (axi::b_fire(q, s)) {
      auto it = w_start_.find(s.b.id);
      if (it != w_start_.end()) {
        write_latency_.add(static_cast<double>(cycle_ - it->second));
        w_start_.erase(it);
      }
    }
    if (axi::ar_fire(q, s)) {
      r_start_[q.ar.id] = cycle_;
      ++read_txns_;
    }
    if (axi::r_fire(q, s)) {
      bytes_read_ += axi::beat_bytes(3);
      if (s.r.last) {
        auto it = r_start_.find(s.r.id);
        if (it != r_start_.end()) {
          read_latency_.add(static_cast<double>(cycle_ - it->second));
          r_start_.erase(it);
        }
      }
    }
    ++cycle_;
  }

  void reset() override {
    w_start_.clear();
    r_start_.clear();
    write_txns_ = read_txns_ = 0;
    bytes_written_ = bytes_read_ = 0;
    write_latency_ = {};
    read_latency_ = {};
    cycle_ = 0;
  }

  std::uint64_t write_txns() const { return write_txns_; }
  std::uint64_t read_txns() const { return read_txns_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  const sim::RunningStats& write_latency() const { return write_latency_; }
  const sim::RunningStats& read_latency() const { return read_latency_; }
  double write_throughput() const {
    return cycle_ ? static_cast<double>(bytes_written_) /
                        static_cast<double>(cycle_)
                  : 0.0;
  }

 private:
  axi::Link& link_;
  std::map<axi::Id, std::uint64_t> w_start_;
  std::map<axi::Id, std::uint64_t> r_start_;
  std::uint64_t write_txns_ = 0, read_txns_ = 0;
  std::uint64_t bytes_written_ = 0, bytes_read_ = 0;
  sim::RunningStats write_latency_, read_latency_;
  std::uint64_t cycle_ = 0;
};

}  // namespace baseline
