#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

/// Dependency-free strict JSON reading, shared by every document parser
/// in the repo (SocDesc topologies, trace tooling, tests validating
/// emitted report/export documents). The design goal is loud failure:
/// unknown keys, duplicate keys, type mismatches and malformed input
/// all throw std::invalid_argument naming the offending key/position,
/// prefixed with the caller's context so a SocDesc error still reads
/// "SocDesc::from_json: ...".
namespace sim::jsonparse {

/// One parsed JSON value (a plain tree; no behavior).
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::uint64_t unum = 0;
  bool is_unsigned = false;  ///< lexically a non-negative integer
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;
};

/// Parses a complete document (trailing characters rejected). Errors
/// throw std::invalid_argument prefixed "<error_prefix>: ".
Json parse(const std::string& text, const std::string& error_prefix = "json");

/// Strict object reader: every key must be consumed exactly once; any
/// leftover key is an error naming it. Missing keys keep field defaults.
class ObjReader {
 public:
  ObjReader(const Json& v, std::string where,
            std::string error_prefix = "json");

  /// Removes and returns the value of `key`, or nullptr if absent.
  const Json* take(const char* key);

  void get(const char* key, std::string& out);
  void get(const char* key, bool& out);
  void get(const char* key, double& out);

  template <typename UInt>
  void get_u(const char* key, UInt& out) {
    if (const Json* v = take(key)) {
      if (v->kind != Json::Kind::kNumber || !v->is_unsigned) {
        fail(ctx(key) + " must be a non-negative integer");
      }
      if (v->unum > std::numeric_limits<UInt>::max()) {
        fail(ctx(key) + ": " + std::to_string(v->unum) +
             " does not fit the field (max " +
             std::to_string(std::numeric_limits<UInt>::max()) + ")");
      }
      out = static_cast<UInt>(v->unum);
    }
  }

  /// Call last: rejects unconsumed (unknown) keys.
  void finish();

  std::string ctx(const char* key) const { return where_ + "." + key; }
  const std::string& where() const { return where_; }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument(prefix_ + ": " + what);
  }

 private:
  std::string prefix_;
  std::string where_;
  std::vector<std::pair<std::string, const Json*>> fields_;
};

}  // namespace sim::jsonparse
