#pragma once

#include <array>
#include <cstdint>

namespace sim {

/// Deterministic xoshiro256** PRNG: reproducible across platforms, unlike
/// std::mt19937 + distribution combinations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + next() % (hi - lo + 1);
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

  /// Raw stream state, for snapshot/restore: a restored Rng continues
  /// the exact sequence the captured one would have produced.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace sim
