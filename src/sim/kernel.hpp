#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/context.hpp"
#include "sim/module.hpp"

namespace sim {

/// Thrown when combinational evaluation fails to converge, which
/// indicates a (model) combinational loop.
class ConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Two-phase cycle-based simulation kernel.
///
/// Per cycle: eval() every module repeatedly until no Wire changes
/// (bounded by kMaxDeltaIterations), then tick() every module once.
///
/// The kernel caches the settled state: settle() on a netlist that has
/// already converged — and whose wires are untouched since, tracked via
/// this simulator's own change-epoch context plus the thread-ambient
/// epoch — is a no-op. This makes the leading settle in
/// step()/run_until() free, so a full run performs exactly one eval
/// convergence per cycle (the post-edge settle).
///
/// Each Simulator owns a SimContext, so independent instances coexist
/// without invalidating each other and independent campaigns can run on
/// separate threads (nothing is shared; the attribution state is
/// thread_local). A Simulator and its netlist must be driven from one
/// thread at a time, and coexisting simulators' netlists must be
/// wire-disjoint — couple them through testbench code (e.g. on_cycle
/// callbacks), whose writes invalidate every simulator on the thread;
/// see sim/context.hpp.
class Simulator {
 public:
  static constexpr int kMaxDeltaIterations = 64;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a module (non-owning; the caller keeps ownership) and
  /// binds it to this simulator's change-epoch context. Adding the same
  /// module to a second simulator rebinds it there (latest wins). The
  /// context is held weakly on the module side, so destruction order
  /// between module and simulator is unconstrained — but the registry
  /// never self-cleans, so do not settle()/step() after a registered
  /// module has been destroyed.
  void add(Module& m) {
    m.bind_context(ctx_);
    modules_.push_back(&m);
    settled_ = false;
  }

  /// Registers a callback run after every settled cycle (tracing, probes).
  void on_cycle(std::function<void(std::uint64_t)> cb) {
    cycle_callbacks_.push_back(std::move(cb));
  }

  /// Synchronously resets all modules and the cycle counter.
  void reset();

  /// Settles combinational logic without advancing the clock. No-op if
  /// the netlist is already settled and no wire changed since.
  void settle();

  /// Advances one clock cycle: settle, callbacks, then tick.
  void step();

  /// Runs n cycles.
  void run(std::uint64_t n);

  /// Runs until pred() is true or the cycle budget is exhausted.
  /// Returns true if pred fired.
  bool run_until(const std::function<bool()>& pred, std::uint64_t max_cycles);

  std::uint64_t cycle() const { return cycle_; }

  /// Total full eval passes over all modules since construction.
  std::uint64_t eval_passes() const { return eval_passes_; }

  /// Discards the cached settled state; the next settle() re-evaluates.
  /// Needed only when module-internal state changes outside tick()/reset()
  /// (wire writes are tracked automatically via the write epoch).
  void invalidate_settle() { settled_ = false; }

  /// This simulator's change-epoch context (wire writes during settle
  /// and module notifications land here).
  SimContext& context() { return *ctx_; }
  const SimContext& context() const { return *ctx_; }

 private:
  std::vector<Module*> modules_;
  std::vector<std::function<void(std::uint64_t)>> cycle_callbacks_;
  std::shared_ptr<SimContext> ctx_ = std::make_shared<SimContext>();
  std::uint64_t cycle_ = 0;
  std::uint64_t eval_passes_ = 0;
  std::uint64_t settled_epoch_ = 0;
  std::uint64_t settled_ambient_epoch_ = 0;
  bool settled_ = false;
};

}  // namespace sim
