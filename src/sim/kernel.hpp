#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/context.hpp"
#include "sim/module.hpp"
#include "sim/sched/sched.hpp"

namespace sim {

/// Thrown when combinational evaluation fails to converge, which
/// indicates a (model) combinational loop. The message names the modules
/// still dirty in the final pass.
class ConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
/// Shared ConvergenceError message builder: names the still-dirty
/// modules (the full sweep's diagnostic pass / the event drain's
/// remaining worklist).
std::string divergence_message(const std::vector<const Module*>& dirty);
}  // namespace detail

/// Two-phase cycle-based simulation kernel.
///
/// Per cycle: settle combinational logic until no Wire changes (bounded
/// by kMaxDeltaIterations), then tick() every module once.
///
/// Settling follows the configured sched::SchedPolicy:
///  * kEventDriven (default) — drain a dirty-set worklist: after a clock
///    edge every combinational module is dirty, and from then on a
///    value-changing wire write wakes only that wire's reader modules
///    (sensitivity lists discovered automatically by tracing reads; see
///    sim/sched/sched.hpp). Settle cost is proportional to activity.
///  * kFullSweep — repeat full eval passes over every module until no
///    wire changes (the original kernel), kept for lockstep
///    cross-checking and bring-up of exotic netlists.
///
/// The kernel caches the settled state: settle() on a netlist that has
/// already converged — and whose wires are untouched since, tracked via
/// this simulator's own change-epoch context plus the thread-ambient
/// epoch — is a no-op. This makes the leading settle in
/// step()/run_until() free, so a full run performs exactly one eval
/// convergence per cycle (the post-edge settle).
///
/// Each Simulator owns a SimContext, so independent instances coexist
/// without invalidating each other and independent campaigns can run on
/// separate threads (nothing is shared; the attribution state is
/// thread_local). A Simulator and its netlist must be driven from one
/// thread at a time, and coexisting simulators' netlists must be
/// wire-disjoint — couple them through testbench code (e.g. on_cycle
/// callbacks), whose writes invalidate every simulator on the thread;
/// see sim/context.hpp.
class Simulator {
 public:
  static constexpr int kMaxDeltaIterations = 64;

  explicit Simulator(
      sched::SchedPolicy policy = sched::SchedPolicy::kEventDriven)
      : policy_(policy) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a module (non-owning; the caller keeps ownership) and
  /// binds it to this simulator's change-epoch context. Adding the same
  /// module to a second simulator rebinds it there (latest wins). The
  /// context is held weakly on the module side, so destruction order
  /// between module and simulator is unconstrained — but the registry
  /// never self-cleans, so do not settle()/step() after a registered
  /// module has been destroyed. Compound modules (Module::
  /// visit_submodules) have their internal shards registered
  /// recursively, right after the facade itself.
  void add(Module& m) {
    m.bind_context(ctx_);
    modules_.push_back(&m);
    sched_idx_.push_back(sched_.register_module(m));
    settled_ = false;
    m.visit_submodules([this](Module& sub) { add(sub); });
  }

  /// Registers a callback run after every settled cycle (tracing, probes).
  void on_cycle(std::function<void(std::uint64_t)> cb) {
    cycle_callbacks_.push_back(std::move(cb));
  }

  /// Switches the settle scheduling policy. Safe at any point between
  /// cycles; the next settle() conservatively re-evaluates everything.
  void set_policy(sched::SchedPolicy p) {
    if (p != policy_) {
      policy_ = p;
      settled_ = false;
    }
  }
  sched::SchedPolicy policy() const { return policy_; }

  /// Synchronously resets all modules and the cycle counter.
  void reset();

  /// Settles combinational logic without advancing the clock. No-op if
  /// the netlist is already settled and no wire changed since.
  void settle();

  /// Advances one clock cycle: settle, callbacks, then tick.
  void step();

  /// Runs n cycles.
  void run(std::uint64_t n);

  /// Runs until pred() is true or the cycle budget is exhausted.
  /// Returns true if pred fired.
  bool run_until(const std::function<bool()>& pred, std::uint64_t max_cycles);

  std::uint64_t cycle() const { return cycle_; }

  /// Eval convergences since construction. Full sweep: one per full pass
  /// over the netlist (the historical meaning). Event-driven: one per
  /// worklist drain that evaluated at least one module — a coarse
  /// did-settle-do-work signal; see module_evals() for effort.
  std::uint64_t eval_passes() const { return eval_passes_; }

  /// Individual Module::eval() calls since construction (both policies) —
  /// the activity-proportional cost the event-driven scheduler minimises.
  std::uint64_t module_evals() const { return module_evals_; }

  /// Event-driven scheduler counters (wires, edges, wakeups, misses).
  const sched::SchedStats& sched_stats() const { return sched_.stats(); }

  /// Per-module scheduler profile (eval counts, wake causes, misses,
  /// dirty-depth histogram). Event-driven mode only; empty counters
  /// under kFullSweep.
  sched::SchedProfile sched_profile() const { return sched_.profile(); }

  /// Toggles the per-module profiler (default on). Off measures the
  /// scheduler's floor; the aggregate SchedStats stay counted.
  void set_sched_profiling(bool on) { sched_.set_profiling(on); }

  /// Discards the cached settled state; the next settle() re-evaluates.
  /// Needed only when module-internal state changes outside tick()/reset()
  /// (wire writes are tracked automatically via the write epoch).
  void invalidate_settle() { settled_ = false; }

  /// This simulator's change-epoch context (wire writes during settle
  /// and module notifications land here).
  SimContext& context() { return *ctx_; }
  const SimContext& context() const { return *ctx_; }

  /// Registered modules in registration order, compound modules'
  /// internal shards included right after their facade — the order the
  /// snapshot layer walks per-module state in.
  const std::vector<Module*>& modules() const { return modules_; }

  /// Checkpoint serde (sim/state.hpp), driven by the snapshot layer as
  /// the FIRST stop of the netlist walk: cycle/eval counters plus the
  /// scheduler checkpoint, and — on load — seeds the visitor's wire
  /// re-tag base and re-establishes the settled-state cache (the capture
  /// contract is a settled netlist; restoring wire values bypasses the
  /// change epoch on purpose). The snapshot records the sched policy and
  /// load fails on a mismatch: worklist contents and eval counters are
  /// policy-dependent, so a cross-policy restore could not be exact.
  void visit_checkpoint(StateVisitor& v);

 private:
  void settle_full_sweep();
  void settle_event_driven();
  [[noreturn]] void throw_full_sweep_divergence();

  std::vector<Module*> modules_;
  std::vector<std::uint32_t> sched_idx_;  ///< parallel to modules_
  std::vector<std::function<void(std::uint64_t)>> cycle_callbacks_;
  std::shared_ptr<SimContext> ctx_ = std::make_shared<SimContext>();
  // Declared after ctx_: destroyed first, so its dirty-sink detach in
  // ~EventScheduler always sees a live context.
  sched::EventScheduler sched_{*ctx_};
  sched::SchedPolicy policy_;
  std::uint64_t cycle_ = 0;
  std::uint64_t eval_passes_ = 0;
  std::uint64_t module_evals_ = 0;
  std::uint64_t settled_epoch_ = 0;
  std::uint64_t settled_ambient_epoch_ = 0;
  bool settled_ = false;
};

}  // namespace sim
