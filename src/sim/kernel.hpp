#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/module.hpp"

namespace sim {

/// Thrown when combinational evaluation fails to converge, which
/// indicates a (model) combinational loop.
class ConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Two-phase cycle-based simulation kernel.
///
/// Per cycle: eval() every module repeatedly until no Wire changes
/// (bounded by kMaxDeltaIterations), then tick() every module once.
class Simulator {
 public:
  static constexpr int kMaxDeltaIterations = 64;

  /// Registers a module (non-owning; the caller keeps ownership).
  void add(Module& m) { modules_.push_back(&m); }

  /// Registers a callback run after every settled cycle (tracing, probes).
  void on_cycle(std::function<void(std::uint64_t)> cb) {
    cycle_callbacks_.push_back(std::move(cb));
  }

  /// Synchronously resets all modules and the cycle counter.
  void reset();

  /// Settles combinational logic without advancing the clock.
  void settle();

  /// Advances one clock cycle: settle, callbacks, then tick.
  void step();

  /// Runs n cycles.
  void run(std::uint64_t n);

  /// Runs until pred() is true or the cycle budget is exhausted.
  /// Returns true if pred fired.
  bool run_until(const std::function<bool()>& pred, std::uint64_t max_cycles);

  std::uint64_t cycle() const { return cycle_; }

 private:
  std::vector<Module*> modules_;
  std::vector<std::function<void(std::uint64_t)>> cycle_callbacks_;
  std::uint64_t cycle_ = 0;
};

}  // namespace sim
