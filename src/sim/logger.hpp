#pragma once

#include <atomic>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>

namespace sim {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log level; benches/examples raise it to keep output
/// clean. Atomic because campaign workers log concurrently while a
/// testbench thread may adjust the level — a plain LogLevel here is a
/// data race (TSan-visible) even though every access is a whole-word
/// load/store. Assignment still reads naturally:
///   sim::global_log_level() = sim::LogLevel::kOff;
inline std::atomic<LogLevel>& global_log_level() {
  static std::atomic<LogLevel> level{LogLevel::kWarn};
  return level;
}

/// Minimal leveled logger. Usage:
///   sim::log(sim::LogLevel::kInfo, "tmu", cycle) << "timeout on id " << id;
class LogLine {
 public:
  LogLine(LogLevel level, const std::string& tag, std::uint64_t cycle) {
    // One load per line: the level cannot tear between the comparison
    // and the kOff check.
    const LogLevel cur = global_log_level().load(std::memory_order_relaxed);
    enabled_ = level >= cur && cur != LogLevel::kOff;
    if (enabled_) {
      stream_ << "[" << level_name(level) << "] @" << cycle << " " << tag
              << ": ";
    }
  }

  ~LogLine() {
    if (enabled_) std::cerr << stream_.str() << "\n";
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  static const char* level_name(LogLevel l) {
    switch (l) {
      case LogLevel::kTrace: return "TRC";
      case LogLevel::kDebug: return "DBG";
      case LogLevel::kInfo: return "INF";
      case LogLevel::kWarn: return "WRN";
      case LogLevel::kError: return "ERR";
      default: return "OFF";
    }
  }

  bool enabled_ = false;
  std::ostringstream stream_;
};

inline LogLine log(LogLevel level, const std::string& tag,
                   std::uint64_t cycle) {
  return LogLine(level, tag, cycle);
}

}  // namespace sim
