#pragma once

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>

namespace sim {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log level; benches/examples raise it to keep output clean.
inline LogLevel& global_log_level() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

/// Minimal leveled logger. Usage:
///   sim::log(sim::LogLevel::kInfo, "tmu", cycle) << "timeout on id " << id;
class LogLine {
 public:
  LogLine(LogLevel level, const std::string& tag, std::uint64_t cycle)
      : enabled_(level >= global_log_level() &&
                 global_log_level() != LogLevel::kOff) {
    if (enabled_) {
      stream_ << "[" << level_name(level) << "] @" << cycle << " " << tag
              << ": ";
    }
  }

  ~LogLine() {
    if (enabled_) std::cerr << stream_.str() << "\n";
  }

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  static const char* level_name(LogLevel l) {
    switch (l) {
      case LogLevel::kTrace: return "TRC";
      case LogLevel::kDebug: return "DBG";
      case LogLevel::kInfo: return "INF";
      case LogLevel::kWarn: return "WRN";
      case LogLevel::kError: return "ERR";
      default: return "OFF";
    }
  }

  bool enabled_;
  std::ostringstream stream_;
};

inline LogLine log(LogLevel level, const std::string& tag,
                   std::uint64_t cycle) {
  return LogLine(level, tag, cycle);
}

}  // namespace sim
