#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

namespace sim {

/// Streaming summary statistics (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Combines another stream into this one (Chan et al. parallel
  /// Welford): count, mean, variance, min and max afterwards equal the
  /// exact pooled statistics of both streams. campaign::Engine pools
  /// per-scenario summaries into its campaign-wide summary this way;
  /// multi-process campaign shards can combine partial reports the
  /// same way.
  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double nab = na + nb;
    m2_ += o.m2_ + delta * delta * (na * nb / nab);
    mean_ += delta * (nb / nab);
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Raw second central moment (sum of squared deviations) — together
  /// with count/mean/min/max this is the full internal state, which is
  /// what remote campaign slices serialize so a merged report is
  /// bit-identical to the in-process run.
  double m2() const { return m2_; }

  /// Reconstructs a stream from its serialized internal state (the
  /// inverse of count/mean/m2/min/max). n == 0 yields a fresh stream
  /// regardless of the other fields.
  static RunningStats from_parts(std::uint64_t n, double mean, double m2,
                                 double min, double max) {
    RunningStats s;
    if (n == 0) return s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact integer histogram (value -> count); suitable for latency
/// distributions where the support is small.
class Histogram {
 public:
  Histogram() = default;
  // The last-bin cache points into bins_, so copies and moves must drop
  // it rather than inherit a pointer into another histogram's map.
  Histogram(const Histogram& o) : bins_(o.bins_) {}
  Histogram(Histogram&& o) noexcept : bins_(std::move(o.bins_)) {
    o.last_bin_ = nullptr;
  }
  Histogram& operator=(const Histogram& o) {
    bins_ = o.bins_;
    last_bin_ = nullptr;
    return *this;
  }
  Histogram& operator=(Histogram&& o) noexcept {
    bins_ = std::move(o.bins_);
    last_bin_ = nullptr;
    o.last_bin_ = nullptr;
    return *this;
  }

  /// Amortized O(1) for runs of the same value (one compare + one
  /// increment): the last-touched bin is cached, so sampling a
  /// slow-moving quantity every cycle (e.g. link occupancy) costs no
  /// map lookup. Nodes are never erased, so the cache only goes stale
  /// through assignment, which drops it.
  void add(std::uint64_t value) {
    if (last_bin_ == nullptr || value != last_value_) {
      last_bin_ = &bins_[value];
      last_value_ = value;
    }
    ++*last_bin_;
  }

  /// Combines another histogram into this one (exact: integer counts).
  void merge(const Histogram& o) {
    for (const auto& [v, c] : o.bins_) bins_[v] += c;
  }

  /// Bulk-adds `count` occurrences of `value` — the deserialization
  /// inverse of bins() (remote campaign slices rebuild histograms from
  /// their serialized (value, count) pairs through this).
  void add_count(std::uint64_t value, std::uint64_t count) {
    if (count != 0) bins_[value] += count;
  }

  std::uint64_t count(std::uint64_t value) const {
    auto it = bins_.find(value);
    return it == bins_.end() ? 0 : it->second;
  }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto& [v, c] : bins_) t += c;
    return t;
  }

  /// p in [0,1]; returns the smallest value whose CDF >= p.
  std::uint64_t percentile(double p) const {
    const std::uint64_t t = total();
    if (t == 0) return 0;
    const auto target =
        static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(t)));
    std::uint64_t seen = 0;
    for (auto& [v, c] : bins_) {
      seen += c;
      if (seen >= target) return v;
    }
    return bins_.rbegin()->first;
  }

  const std::map<std::uint64_t, std::uint64_t>& bins() const { return bins_; }

 private:
  std::map<std::uint64_t, std::uint64_t> bins_;
  std::uint64_t* last_bin_ = nullptr;
  std::uint64_t last_value_ = 0;
};

}  // namespace sim
