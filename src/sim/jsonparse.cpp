#include "sim/jsonparse.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace sim::jsonparse {

namespace {

/// Recursive-descent reader over the raw text. All errors throw through
/// fail() with the caller's context prefix.
class Parser {
 public:
  Parser(const std::string& text, const std::string& prefix)
      : p_(text.data()), end_(p_ + text.size()), prefix_(prefix) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (p_ != end_) fail("trailing characters after the document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument(prefix_ + ": " + what);
  }

  void skip_ws() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }
  char peek() {
    skip_ws();
    if (p_ == end_) fail("unexpected end of input");
    return *p_;
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" + *p_ + "'");
    ++p_;
  }
  bool consume(char c) {
    skip_ws();
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }
  bool consume_word(const char* w) {
    const char* q = p_;
    for (const char* c = w; *c != '\0'; ++c, ++q) {
      if (q == end_ || *q != *c) return false;
    }
    p_ = q;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (p_ == end_) fail("unterminated string");
      char c = *p_++;
      if (c == '"') return out;
      if (c == '\\') {
        if (p_ == end_) fail("unterminated escape");
        char esc = *p_++;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (end_ - p_ < 4) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              code <<= 4;
              char h = *p_++;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            // The repo's emitters only escape control characters;
            // anything else would need UTF-8 encoding, which the emitted
            // fields never carry.
            if (code > 0x7F) fail("non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default: fail(std::string("unknown escape '\\") + esc + "'");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    bool integral = true;
    while (p_ != end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
            *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      if (!std::isdigit(static_cast<unsigned char>(*p_))) integral = false;
      ++p_;
    }
    const std::string tok(start, p_);
    if (tok.empty() || tok == "-") fail("malformed number");
    Json v;
    v.kind = Json::Kind::kNumber;
    v.num = std::strtod(tok.c_str(), nullptr);
    if (integral && tok[0] != '-') {
      // Full-precision uint64 path: seeds and addresses exceed the
      // 53-bit double mantissa.
      errno = 0;
      v.unum = std::strtoull(tok.c_str(), nullptr, 10);
      if (errno == ERANGE) fail("integer " + tok + " overflows 64 bits");
      v.is_unsigned = true;
    }
    return v;
  }

  Json parse_value() {
    const char c = peek();
    Json v;
    if (c == '{') {
      ++p_;
      v.kind = Json::Kind::kObject;
      if (!consume('}')) {
        do {
          std::string key = (skip_ws(), parse_string());
          expect(':');
          v.obj.emplace_back(std::move(key), parse_value());
        } while (consume(','));
        expect('}');
      }
    } else if (c == '[') {
      ++p_;
      v.kind = Json::Kind::kArray;
      if (!consume(']')) {
        do {
          v.arr.push_back(parse_value());
        } while (consume(','));
        expect(']');
      }
    } else if (c == '"') {
      v.kind = Json::Kind::kString;
      v.str = parse_string();
    } else if (consume_word("true")) {
      v.kind = Json::Kind::kBool;
      v.b = true;
    } else if (consume_word("false")) {
      v.kind = Json::Kind::kBool;
      v.b = false;
    } else if (consume_word("null")) {
      v.kind = Json::Kind::kNull;
    } else {
      v = parse_number();
    }
    return v;
  }

  const char* p_;
  const char* end_;
  const std::string& prefix_;
};

}  // namespace

Json parse(const std::string& text, const std::string& error_prefix) {
  return Parser(text, error_prefix).parse_document();
}

ObjReader::ObjReader(const Json& v, std::string where,
                     std::string error_prefix)
    : prefix_(std::move(error_prefix)), where_(std::move(where)) {
  if (v.kind != Json::Kind::kObject) fail(where_ + ": expected an object");
  for (const auto& [k, val] : v.obj) fields_.emplace_back(k, &val);
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    for (std::size_t j = i + 1; j < fields_.size(); ++j) {
      if (fields_[i].first == fields_[j].first) {
        fail(where_ + ": duplicate key \"" + fields_[i].first + "\"");
      }
    }
  }
}

const Json* ObjReader::take(const char* key) {
  for (auto it = fields_.begin(); it != fields_.end(); ++it) {
    if (it->first == key) {
      const Json* v = it->second;
      fields_.erase(it);
      return v;
    }
  }
  return nullptr;
}

void ObjReader::get(const char* key, std::string& out) {
  if (const Json* v = take(key)) {
    if (v->kind != Json::Kind::kString) fail(ctx(key) + " must be a string");
    out = v->str;
  }
}

void ObjReader::get(const char* key, bool& out) {
  if (const Json* v = take(key)) {
    if (v->kind != Json::Kind::kBool) fail(ctx(key) + " must be a bool");
    out = v->b;
  }
}

void ObjReader::get(const char* key, double& out) {
  if (const Json* v = take(key)) {
    if (v->kind != Json::Kind::kNumber) fail(ctx(key) + " must be a number");
    out = v->num;
  }
}

void ObjReader::finish() {
  if (!fields_.empty()) {
    fail(where_ + ": unknown key \"" + fields_.front().first + "\"");
  }
}

}  // namespace sim::jsonparse
