#pragma once

#include <utility>

#include "sim/context.hpp"

namespace sim {

/// A combinational signal. Modules read inputs and write outputs through
/// wires during eval(); the kernel repeats eval passes until no wire
/// changes. T must be equality-comparable and cheap to copy.
///
/// Change tracking is per-context (see sim/context.hpp): a write that
/// changes the value bumps the epoch of the simulator currently
/// evaluating on this thread, or the thread-ambient context when no
/// simulator is active.
template <typename T>
class Wire {
 public:
  Wire() = default;
  explicit Wire(T init) : value_(std::move(init)) {}

  const T& read() const { return value_; }

  /// Writes v; bumps the attributed change epoch iff the value differs.
  void write(const T& v) {
    if (!(v == value_)) {
      value_ = v;
      detail::bump_change_epoch();
    }
  }

  /// Sets the value from reset paths. Like write(), bumps the epoch only
  /// on an actual change: reset storms that force already-default values
  /// must not invalidate unrelated simulators' settled caches (the kernel
  /// invalidates its own cache explicitly on reset(), so skipping the
  /// bump never hides a reset from the owning simulator).
  void force(T v) {
    if (!(v == value_)) {
      value_ = std::move(v);
      detail::bump_change_epoch();
    }
  }

 private:
  T value_{};
};

}  // namespace sim
