#pragma once

#include <cstdint>
#include <utility>

#include "sim/context.hpp"
#include "sim/sched/trace.hpp"

namespace sim {

struct StateAccess;

/// A combinational signal. Modules read inputs and write outputs through
/// wires during eval(); the kernel repeats eval passes until no wire
/// changes. T must be equality-comparable and cheap to copy.
///
/// Change tracking is per-context (see sim/context.hpp): a write that
/// changes the value bumps the epoch of the simulator currently
/// evaluating on this thread, or the thread-ambient context when no
/// simulator is active.
///
/// Scheduling identity: while an event-driven scheduler traces wire
/// accesses (sim/sched/trace.hpp), reads record a module→wire
/// sensitivity edge and value-changing writes wake the wire's reader
/// modules. The identity cell `sched_slot_` is assigned lazily by the
/// scheduler on first traced access; wires are non-copyable so the cell
/// can never be duplicated.
template <typename T>
class Wire {
 public:
  Wire() = default;
  explicit Wire(T init) : value_(std::move(init)) {}

  Wire(const Wire&) = delete;
  Wire& operator=(const Wire&) = delete;

  const T& read() const {
    if (detail::t_wire_read_trace != nullptr) {
      detail::t_wire_read_trace->on_wire_read(sched_slot_);
    }
    return value_;
  }

  /// Writes v; bumps the attributed change epoch iff the value differs.
  void write(const T& v) {
    if (!(v == value_)) {
      value_ = v;
      detail::bump_change_epoch();
      if (detail::t_wire_write_trace != nullptr) {
        detail::t_wire_write_trace->on_wire_write(sched_slot_);
      }
    }
  }

  /// Sets the value from reset paths. Like write(), bumps the epoch only
  /// on an actual change: reset storms that force already-default values
  /// must not invalidate unrelated simulators' settled caches (the kernel
  /// invalidates its own cache explicitly on reset(), so skipping the
  /// bump never hides a reset from the owning simulator).
  void force(T v) {
    if (!(v == value_)) {
      value_ = std::move(v);
      detail::bump_change_epoch();
      if (detail::t_wire_write_trace != nullptr) {
        detail::t_wire_write_trace->on_wire_write(sched_slot_);
      }
    }
  }

 private:
  // Snapshot restore writes the value cell and re-tags the slot directly
  // (sim/state.hpp): a restore re-establishes settled-state bookkeeping
  // explicitly and must not register as wire activity.
  friend struct StateAccess;

  T value_{};
  mutable std::uint64_t sched_slot_ = 0;
};

}  // namespace sim
