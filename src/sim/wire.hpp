#pragma once

#include <cstdint>
#include <utility>

namespace sim {

namespace detail {
/// Global change epoch. Every Wire::write that actually changes a value
/// bumps this counter; the kernel uses it to detect combinational
/// convergence (an eval pass that changes nothing leaves it untouched).
inline std::uint64_t g_change_epoch = 0;
}  // namespace detail

/// Returns the current global change epoch (see detail::g_change_epoch).
inline std::uint64_t change_epoch() { return detail::g_change_epoch; }

/// Marks eval-relevant module state as changed outside tick()/reset() —
/// e.g. a testbench calling arm()/set_*() between cycles. Bumps the
/// epoch so every Simulator's settled-state cache misses and the next
/// settle() re-evaluates. Wire writes are tracked automatically; this is
/// only for state the wires can't see.
inline void notify_state_change() { ++detail::g_change_epoch; }

/// A combinational signal. Modules read inputs and write outputs through
/// wires during eval(); the kernel repeats eval passes until no wire
/// changes. T must be equality-comparable and cheap to copy.
template <typename T>
class Wire {
 public:
  Wire() = default;
  explicit Wire(T init) : value_(std::move(init)) {}

  const T& read() const { return value_; }

  /// Writes v; bumps the global change epoch iff the value differs.
  void write(const T& v) {
    if (!(v == value_)) {
      value_ = v;
      ++detail::g_change_epoch;
    }
  }

  /// Forces the value without equality comparison (used by reset paths).
  void force(T v) {
    value_ = std::move(v);
    ++detail::g_change_epoch;
  }

 private:
  T value_{};
};

}  // namespace sim
