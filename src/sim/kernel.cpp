#include "sim/kernel.hpp"

#include "sim/wire.hpp"

namespace sim {

void Simulator::reset() {
  for (Module* m : modules_) m->reset();
  cycle_ = 0;
  settled_ = false;  // reset() mutates register state behind the epoch's back
  settle();
}

void Simulator::settle() {
  // Fast path: converged before, and no Wire changed value since (any
  // write that changes a value — including force() — bumps the global
  // epoch). eval() is idempotent by contract, so re-running it would
  // change nothing; skipping is exact.
  if (settled_ && change_epoch() == settled_epoch_) return;
  for (int iter = 0; iter < kMaxDeltaIterations; ++iter) {
    const std::uint64_t epoch_before = change_epoch();
    for (Module* m : modules_) m->eval();
    ++eval_passes_;
    if (change_epoch() == epoch_before) {
      settled_ = true;
      settled_epoch_ = epoch_before;
      return;
    }
  }
  throw ConvergenceError(
      "combinational logic failed to settle; likely a combinational loop");
}

void Simulator::step() {
  settle();  // free when the previous step() left the netlist settled
  for (auto& cb : cycle_callbacks_) cb(cycle_);
  for (Module* m : modules_) m->tick();
  settled_ = false;  // tick() mutates register state behind the epoch's back
  ++cycle_;
  // Post-edge settle so callers observing wires after step() (tests,
  // probes) see outputs consistent with the new register state. This is
  // the single full eval convergence for the cycle.
  settle();
}

void Simulator::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

bool Simulator::run_until(const std::function<bool()>& pred,
                          std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    settle();
    if (pred()) return true;
    step();
  }
  settle();
  return pred();
}

}  // namespace sim
