#include "sim/kernel.hpp"

#include "sim/wire.hpp"

namespace sim {

void Simulator::reset() {
  for (Module* m : modules_) m->reset();
  cycle_ = 0;
  settle();
}

void Simulator::settle() {
  for (int iter = 0; iter < kMaxDeltaIterations; ++iter) {
    const std::uint64_t epoch_before = change_epoch();
    for (Module* m : modules_) m->eval();
    if (change_epoch() == epoch_before) return;
  }
  throw ConvergenceError(
      "combinational logic failed to settle; likely a combinational loop");
}

void Simulator::step() {
  settle();
  for (auto& cb : cycle_callbacks_) cb(cycle_);
  for (Module* m : modules_) m->tick();
  ++cycle_;
  // Post-edge settle so callers observing wires after step() (tests,
  // probes) see outputs consistent with the new register state.
  settle();
}

void Simulator::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

bool Simulator::run_until(const std::function<bool()>& pred,
                          std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    settle();
    if (pred()) return true;
    step();
  }
  settle();
  return pred();
}

}  // namespace sim
