#include "sim/kernel.hpp"

#include <string>

#include "sim/state.hpp"
#include "sim/wire.hpp"

namespace sim {

void Simulator::reset() {
  detail::ActiveContextScope scope(*ctx_);  // attribute reset-path writes
  for (Module* m : modules_) m->reset();
  cycle_ = 0;
  settled_ = false;  // reset() mutates register state behind the epoch's back
  settle();
}

void Simulator::settle() {
  // Attribute every wire change during evaluation to this simulator's
  // context, so other live simulators keep their settled caches.
  detail::ActiveContextScope scope(*ctx_);
  if (policy_ == sched::SchedPolicy::kEventDriven) {
    settle_event_driven();
  } else {
    settle_full_sweep();
  }
}

void Simulator::settle_full_sweep() {
  // Fast path: converged before, and neither this simulator's context
  // nor the thread-ambient context (external testbench writes) changed
  // since. eval() is idempotent by contract, so re-running it would
  // change nothing; skipping is exact.
  if (settled_ && ctx_->epoch() == settled_epoch_ &&
      ambient_epoch() == settled_ambient_epoch_) {
    return;
  }
  for (int iter = 0; iter < kMaxDeltaIterations; ++iter) {
    const std::uint64_t epoch_before = ctx_->epoch();
    for (Module* m : modules_) {
      if (m->is_combinational()) {
        m->eval();
        ++module_evals_;
      }
    }
    ++eval_passes_;
    if (ctx_->epoch() == epoch_before) {
      settled_ = true;
      settled_epoch_ = epoch_before;
      settled_ambient_epoch_ = ambient_epoch();
      return;
    }
  }
  throw_full_sweep_divergence();
}

void Simulator::settle_event_driven() {
  if (!settled_) {
    // Clock edge, reset, late add(), invalidate_settle(), or a policy
    // switch: register state may have changed behind the wires' backs,
    // so every combinational module is dirty.
    sched_.mark_all_dirty();
  } else if (ambient_epoch() != settled_ambient_epoch_ ||
             !sched_.epoch_accounted()) {
    // Ambient writes can't name the wires they touched, and unattributed
    // context bumps can't name a module: conservatively wake everything.
    sched_.mark_all_dirty();
  }
  // Anything else pending in the worklist arrived module-precise
  // (notify_state_change on a bound module), so a settle after e.g.
  // FaultInjector::arm() re-evaluates only that module's cone.
  if (sched_.has_dirty()) {
    const std::size_t evals = sched_.drain(kMaxDeltaIterations);
    module_evals_ += evals;
    if (evals > 0) ++eval_passes_;
  }
  settled_ = true;
  settled_epoch_ = ctx_->epoch();
  settled_ambient_epoch_ = ambient_epoch();
  sched_.sync_epoch();
}

namespace detail {
std::string divergence_message(const std::vector<const Module*>& dirty) {
  std::string msg =
      "combinational logic failed to settle; likely a combinational loop "
      "through:";
  for (const Module* m : dirty) {
    msg += ' ';
    msg += m->name();
  }
  return msg;
}
}  // namespace detail

void Simulator::throw_full_sweep_divergence() {
  // One extra instrumented pass so the error names the offenders: a
  // module whose eval still changes the epoch is part of the loop (or
  // fed by it).
  std::vector<const Module*> dirty;
  for (Module* m : modules_) {
    if (!m->is_combinational()) continue;
    const std::uint64_t e0 = ctx_->epoch();
    m->eval();
    if (ctx_->epoch() != e0) dirty.push_back(m);
  }
  throw ConvergenceError(detail::divergence_message(dirty));
}

void Simulator::visit_checkpoint(StateVisitor& v) {
  v.set_wire_tag(sched_.wire_tag_base());
  std::uint32_t pol = static_cast<std::uint32_t>(policy_);
  v.u32(pol);
  if (!v.saving() && pol != static_cast<std::uint32_t>(policy_)) {
    v.fail(std::string("snapshot captured under sched policy '") +
           sched::to_string(static_cast<sched::SchedPolicy>(pol)) +
           "' but the restoring simulator uses '" +
           sched::to_string(policy_) + "'");
  }
  visit(v, cycle_);
  visit(v, eval_passes_);
  visit(v, module_evals_);
  sched_.visit_checkpoint(v);
  if (!v.saving()) {
    settled_ = true;
    settled_epoch_ = ctx_->epoch();
    settled_ambient_epoch_ = ambient_epoch();
    sched_.sync_epoch();
  }
}

void Simulator::step() {
  settle();  // free when the previous step() left the netlist settled
  // Callbacks run OUTSIDE the context scope: they are testbench code and
  // may write wires other simulators read, so their writes must land on
  // the ambient context (conservative cross-simulator invalidation), not
  // be misattributed to this simulator.
  for (auto& cb : cycle_callbacks_) cb(cycle_);
  if (policy_ == sched::SchedPolicy::kEventDriven) {
    {
      detail::ActiveContextScope scope(*ctx_);
      // Write-only trace: wires mutated at the edge (reset callbacks,
      // forced flushes) wake their eval readers precisely; the many
      // register-sampling reads in tick() stay untraced and free.
      detail::WireWriteTraceScope wtrace(sched_);
      for (Module* m : modules_) m->tick();
    }
    // Precise post-edge invalidation: each module reports whether this
    // edge touched eval-relevant register state (conservative default:
    // yes). Modules that notify through bound setters during tick (e.g.
    // the CPU stub writing TMU registers) are already enqueued.
    for (std::size_t i = 0; i < modules_.size(); ++i) {
      if (modules_[i]->tick_changed_eval_state()) {
        sched_.mark_index_dirty(sched_idx_[i]);
      }
    }
    ++cycle_;
    // settled_ stays true: the worklist plus the scheduler's epoch
    // accounting carry the edge, so a fully quiet edge settles for free.
    settle();
    return;
  }
  {
    detail::ActiveContextScope scope(*ctx_);
    for (Module* m : modules_) m->tick();
  }
  settled_ = false;  // tick() mutates register state behind the epoch's back
  ++cycle_;
  // Post-edge settle so callers observing wires after step() (tests,
  // probes) see outputs consistent with the new register state. This is
  // the single full eval convergence for the cycle.
  settle();
}

void Simulator::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

bool Simulator::run_until(const std::function<bool()>& pred,
                          std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    settle();
    if (pred()) return true;
    step();
  }
  settle();
  return pred();
}

}  // namespace sim
