#include "sim/kernel.hpp"

#include "sim/wire.hpp"

namespace sim {

void Simulator::reset() {
  detail::ActiveContextScope scope(*ctx_);  // attribute reset-path writes
  for (Module* m : modules_) m->reset();
  cycle_ = 0;
  settled_ = false;  // reset() mutates register state behind the epoch's back
  settle();
}

void Simulator::settle() {
  // Attribute every wire change during evaluation to this simulator's
  // context, so other live simulators keep their settled caches.
  detail::ActiveContextScope scope(*ctx_);
  // Fast path: converged before, and neither this simulator's context
  // nor the thread-ambient context (external testbench writes) changed
  // since. eval() is idempotent by contract, so re-running it would
  // change nothing; skipping is exact.
  if (settled_ && ctx_->epoch() == settled_epoch_ &&
      ambient_epoch() == settled_ambient_epoch_) {
    return;
  }
  for (int iter = 0; iter < kMaxDeltaIterations; ++iter) {
    const std::uint64_t epoch_before = ctx_->epoch();
    for (Module* m : modules_) m->eval();
    ++eval_passes_;
    if (ctx_->epoch() == epoch_before) {
      settled_ = true;
      settled_epoch_ = epoch_before;
      settled_ambient_epoch_ = ambient_epoch();
      return;
    }
  }
  throw ConvergenceError(
      "combinational logic failed to settle; likely a combinational loop");
}

void Simulator::step() {
  settle();  // free when the previous step() left the netlist settled
  // Callbacks run OUTSIDE the context scope: they are testbench code and
  // may write wires other simulators read, so their writes must land on
  // the ambient context (conservative cross-simulator invalidation), not
  // be misattributed to this simulator.
  for (auto& cb : cycle_callbacks_) cb(cycle_);
  {
    detail::ActiveContextScope scope(*ctx_);
    for (Module* m : modules_) m->tick();
  }
  settled_ = false;  // tick() mutates register state behind the epoch's back
  ++cycle_;
  // Post-edge settle so callers observing wires after step() (tests,
  // probes) see outputs consistent with the new register state. This is
  // the single full eval convergence for the cycle.
  settle();
}

void Simulator::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

bool Simulator::run_until(const std::function<bool()>& pred,
                          std::uint64_t max_cycles) {
  for (std::uint64_t i = 0; i < max_cycles; ++i) {
    settle();
    if (pred()) return true;
    step();
  }
  settle();
  return pred();
}

}  // namespace sim
