#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/wire.hpp"

/// Symmetric state-serde: the reflection layer behind simulation-state
/// snapshots (src/snapshot/). One visitor interface serves both
/// directions — each module implements a single visit_state() that lists
/// its registers once, and the visitor's mode decides whether the walk
/// serializes or restores them. The symmetry is the correctness
/// argument: a field cannot be saved without being loaded in the same
/// order (or vice versa), so a round-trip is exact by construction and a
/// save/load asymmetry is impossible to write.
///
/// Encoding (fixed, platform-independent): every primitive is
/// little-endian fixed-width, bool is one strict 0/1 byte, and doubles
/// travel as their IEEE-754 bit pattern — bit-exact restore, which the
/// forked-trial equivalence gates depend on. Loaders are strict:
/// underruns, bad bools and container counts exceeding the remaining
/// payload all abort through fail() with a named error.
namespace sim {

class StateVisitor {
 public:
  virtual ~StateVisitor() = default;

  StateVisitor(const StateVisitor&) = delete;
  StateVisitor& operator=(const StateVisitor&) = delete;

  bool saving() const { return saving_; }

  /// Aborts the walk with a named error (loaders throw; savers should
  /// never reach a fail() call for in-contract state).
  [[noreturn]] virtual void fail(const std::string& msg) = 0;

  void u64(std::uint64_t& x) {
    unsigned char b[8];
    if (saving_) {
      for (int i = 0; i < 8; ++i) {
        b[i] = static_cast<unsigned char>(x >> (8 * i));
      }
    }
    bytes(b, 8);
    if (!saving_) {
      x = 0;
      for (int i = 0; i < 8; ++i) x |= std::uint64_t{b[i]} << (8 * i);
    }
  }

  void u32(std::uint32_t& x) {
    unsigned char b[4];
    if (saving_) {
      for (int i = 0; i < 4; ++i) {
        b[i] = static_cast<unsigned char>(x >> (8 * i));
      }
    }
    bytes(b, 4);
    if (!saving_) {
      x = 0;
      for (int i = 0; i < 4; ++i) x |= std::uint32_t{b[i]} << (8 * i);
    }
  }

  void u16(std::uint16_t& x) {
    unsigned char b[2];
    if (saving_) {
      b[0] = static_cast<unsigned char>(x);
      b[1] = static_cast<unsigned char>(x >> 8);
    }
    bytes(b, 2);
    if (!saving_) {
      x = static_cast<std::uint16_t>(std::uint16_t{b[0]} |
                                     (std::uint16_t{b[1]} << 8));
    }
  }

  void u8(std::uint8_t& x) {
    unsigned char b[1];
    if (saving_) b[0] = x;
    bytes(b, 1);
    if (!saving_) x = b[0];
  }

  void boolean(bool& x) {
    std::uint8_t v = x ? 1 : 0;
    u8(v);
    if (!saving_) {
      if (v > 1) fail("bool byte is not 0 or 1");
      x = v != 0;
    }
  }

  /// IEEE-754 bit pattern (bit-exact round-trip, NaN payloads included).
  void f64(double& x) {
    std::uint64_t bits = 0;
    if (saving_) {
      static_assert(sizeof(double) == sizeof(std::uint64_t));
      __builtin_memcpy(&bits, &x, sizeof(bits));
    }
    u64(bits);
    if (!saving_) __builtin_memcpy(&x, &bits, sizeof(bits));
  }

  /// Container element count: on load, bounded by the remaining payload
  /// (every element costs at least one byte), so a corrupted count can
  /// never drive an allocation the payload couldn't back.
  void count(std::uint64_t& n) {
    u64(n);
    if (!saving_ && n > remaining()) {
      fail("container count " + std::to_string(n) +
           " exceeds the remaining payload (" + std::to_string(remaining()) +
           " bytes)");
    }
  }

  void str(std::string& s) {
    std::uint64_t n = s.size();
    count(n);
    if (!saving_) s.assign(static_cast<std::size_t>(n), '\0');
    if (n != 0) {
      bytes(reinterpret_cast<unsigned char*>(s.data()),
            static_cast<std::size_t>(n));
    }
  }

  /// Wire scheduling identity (sim/sched/trace.hpp slot encoding). Slots
  /// are stored tag-free — 0 for a never-traced wire, otherwise bit 32
  /// set plus the dense wire id — and re-tagged on load for the
  /// restoring simulator's scheduler (set_wire_tag, called by
  /// Simulator::visit_checkpoint before any wire is visited).
  void wire_slot(std::uint64_t& slot) {
    if (saving_) {
      std::uint64_t norm =
          slot == 0
              ? 0
              : ((std::uint64_t{1} << 32) | static_cast<std::uint32_t>(slot));
      u64(norm);
    } else {
      std::uint64_t norm = 0;
      u64(norm);
      slot = norm == 0 ? 0 : (wire_tag_base_ | static_cast<std::uint32_t>(norm));
    }
  }

  void set_wire_tag(std::uint64_t tag_base) { wire_tag_base_ = tag_base; }

  /// Bulk byte-array transfer (memory pages, blob payloads). The caller
  /// owns layout determinism; n must be the same on save and load.
  void raw(void* p, std::size_t n) {
    bytes(static_cast<unsigned char*>(p), n);
  }

 protected:
  explicit StateVisitor(bool saving) : saving_(saving) {}

  /// Transfers n raw bytes (append on save, consume on load; a load
  /// underrun must fail(), not return short).
  virtual void bytes(unsigned char* p, std::size_t n) = 0;

  /// Bytes left to consume (loaders); savers return a huge value.
  virtual std::uint64_t remaining() const = 0;

 private:
  bool saving_;
  std::uint64_t wire_tag_base_ = 0;
};

// ---------------------------------------------------------------------
// visit() overload set. Every call site spells `visit(v, field)`; the
// StateVisitor argument makes sim an associated namespace, so these (and
// any same-shape overload next to a user type) are always found.
// ---------------------------------------------------------------------

inline void visit(StateVisitor& v, bool& x) { v.boolean(x); }
inline void visit(StateVisitor& v, char& x) {
  auto b = static_cast<std::uint8_t>(x);
  v.u8(b);
  if (!v.saving()) x = static_cast<char>(b);
}
inline void visit(StateVisitor& v, std::uint8_t& x) { v.u8(x); }
inline void visit(StateVisitor& v, std::uint16_t& x) { v.u16(x); }
inline void visit(StateVisitor& v, std::uint32_t& x) { v.u32(x); }
inline void visit(StateVisitor& v, std::uint64_t& x) { v.u64(x); }
inline void visit(StateVisitor& v, double& x) { v.f64(x); }
inline void visit(StateVisitor& v, std::string& s) { v.str(s); }

inline void visit(StateVisitor& v, int& x) {
  auto u = static_cast<std::uint32_t>(x);
  v.u32(u);
  if (!v.saving()) x = static_cast<int>(u);
}

/// Enums travel as their numeric value in 32 bits (covers every enum in
/// the repo; module state enums are int-backed).
template <typename E>
  requires std::is_enum_v<E>
void visit(StateVisitor& v, E& e) {
  auto u = static_cast<std::uint32_t>(e);
  v.u32(u);
  if (!v.saving()) e = static_cast<E>(u);
}

/// Any type exposing `void visit_fields(StateVisitor&)` — the one-line
/// opt-in for plain state structs (flit payloads, queue entries, ...).
template <typename T>
  requires requires(T& t, StateVisitor& v) { t.visit_fields(v); }
void visit(StateVisitor& v, T& x) {
  x.visit_fields(v);
}

/// RNG stream: the raw xoshiro words, so a restored stream continues the
/// exact sequence the captured one would have produced.
inline void visit(StateVisitor& v, Rng& r) {
  auto s = r.state();
  for (auto& w : s) v.u64(w);
  if (!v.saving()) r.set_state(s);
}

inline void visit(StateVisitor& v, RunningStats& s) {
  std::uint64_t n = s.count();
  double mean = s.mean();
  double m2 = s.m2();
  double mn = s.min();
  double mx = s.max();
  v.u64(n);
  v.f64(mean);
  v.f64(m2);
  v.f64(mn);
  v.f64(mx);
  if (!v.saving()) s = RunningStats::from_parts(n, mean, m2, mn, mx);
}

inline void visit(StateVisitor& v, Histogram& h) {
  std::uint64_t n = h.bins().size();
  v.count(n);
  if (v.saving()) {
    for (const auto& [value, cnt] : h.bins()) {
      std::uint64_t val = value;
      std::uint64_t c = cnt;
      v.u64(val);
      v.u64(c);
    }
  } else {
    h = Histogram{};
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t value = 0;
      std::uint64_t cnt = 0;
      v.u64(value);
      v.u64(cnt);
      h.add_count(value, cnt);
    }
  }
}

template <typename T, std::size_t N>
void visit(StateVisitor& v, std::array<T, N>& a) {
  for (auto& e : a) visit(v, e);
}

template <typename T>
void visit(StateVisitor& v, std::vector<T>& c) {
  std::uint64_t n = c.size();
  v.count(n);
  if (!v.saving()) {
    c.clear();
    c.resize(static_cast<std::size_t>(n));
  }
  for (auto& e : c) visit(v, e);
}

inline void visit(StateVisitor& v, std::vector<bool>& c) {
  std::uint64_t n = c.size();
  v.count(n);
  if (!v.saving()) c.assign(static_cast<std::size_t>(n), false);
  for (std::size_t i = 0; i < c.size(); ++i) {
    bool b = c[i];
    v.boolean(b);
    if (!v.saving()) c[i] = b;
  }
}

template <typename T>
void visit(StateVisitor& v, std::deque<T>& c) {
  std::uint64_t n = c.size();
  v.count(n);
  if (!v.saving()) {
    c.clear();
    c.resize(static_cast<std::size_t>(n));
  }
  for (auto& e : c) visit(v, e);
}

template <typename K, typename V>
void visit(StateVisitor& v, std::map<K, V>& m) {
  std::uint64_t n = m.size();
  v.count(n);
  if (v.saving()) {
    for (auto& [key, value] : m) {
      K k = key;  // keys are immutable in place; visit a copy
      visit(v, k);
      visit(v, value);
    }
  } else {
    m.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      K k{};
      V value{};
      visit(v, k);
      visit(v, value);
      m.emplace_hint(m.end(), std::move(k), std::move(value));
    }
  }
}

/// Snapshot-layer access to a Wire's private value and scheduling slot
/// (befriended by Wire). Loads write the value cell directly — no epoch
/// bump, no trace hook: the restorer re-establishes the settled-state
/// bookkeeping explicitly, so a restore must not look like activity.
struct StateAccess {
  template <typename T>
  static T& value(Wire<T>& w) {
    return w.value_;
  }
  template <typename T>
  static std::uint64_t& slot(Wire<T>& w) {
    return w.sched_slot_;
  }
};

template <typename T>
void visit(StateVisitor& v, Wire<T>& w) {
  visit(v, StateAccess::value(w));
  v.wire_slot(StateAccess::slot(w));
}

}  // namespace sim
