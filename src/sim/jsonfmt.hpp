#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

/// Shared helpers for the repo's hand-rolled deterministic JSON
/// emitters (campaign reports, SocDesc documents). Both schemas depend
/// on byte-exact output — the campaign report is diffed across thread
/// counts and the SocDesc hash is FNV-1a over the emitted text — so the
/// escaping rules live in exactly one place.
namespace sim::jsonfmt {

__attribute__((format(printf, 2, 3))) inline void append_f(std::string& out,
                                                           const char* fmt,
                                                           ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// Minimal JSON string escape: quotes, backslashes and control
/// characters (emitted fields are ASCII identifiers in practice).
inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace sim::jsonfmt
