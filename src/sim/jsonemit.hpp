#pragma once

#include <cinttypes>
#include <cstdint>
#include <string>
#include <utility>

#include "sim/jsonfmt.hpp"

/// Canonical pretty-JSON emission, shared by every document writer that
/// must be byte-stable (SocDesc topologies, campaign spec/slice files):
/// fixed two-space indentation, fixed separator placement, every number
/// printed through one format. Two equal values always serialize to the
/// same bytes, which is what FNV-hash fingerprints and byte-identical
/// merge gates are built on.
namespace sim::jsonemit {

/// Tiny canonical-JSON writer: tracks nesting depth for indentation and
/// whether the current aggregate needs a separating comma.
class Emitter {
 public:
  std::string take() && { return std::move(out_); }

  void key(const char* k) {
    sep();
    indent();
    out_ += '"';
    out_ += k;
    out_ += "\": ";
    pending_value_ = true;
  }
  void str(const char* k, const std::string& v) {
    key(k);
    out_ += '"';
    out_ += jsonfmt::json_escape(v);
    out_ += '"';
    done_value();
  }
  /// Bare string element inside an open array (e.g. a trace-link list).
  void str_elem(const std::string& v) {
    sep();
    indent();
    out_ += '"';
    out_ += jsonfmt::json_escape(v);
    out_ += '"';
    done_value();
  }
  void u64(const char* k, std::uint64_t v) {
    key(k);
    jsonfmt::append_f(out_, "%" PRIu64, v);
    done_value();
  }
  /// 64-bit hashes as fixed-width hex strings (JSON numbers are doubles
  /// downstream and cannot carry 64 bits losslessly).
  void hex64(const char* k, std::uint64_t v) {
    key(k);
    jsonfmt::append_f(out_, "\"%016" PRIx64 "\"", v);
    done_value();
  }
  void boolean(const char* k, bool v) {
    key(k);
    out_ += v ? "true" : "false";
    done_value();
  }
  void dbl(const char* k, double v) {
    key(k);
    jsonfmt::append_f(out_, "%.17g", v);  // round-trips every finite double
    done_value();
  }
  void open_obj(const char* k = nullptr) { open(k, '{'); }
  void close_obj() { close('}'); }
  void open_arr(const char* k = nullptr) { open(k, '['); }
  void close_arr() { close(']'); }

 private:
  void done_value() {
    pending_value_ = false;
    need_comma_ = true;
  }
  void sep() {
    if (need_comma_) out_ += ",\n";
    need_comma_ = false;
  }
  void indent() {
    if (pending_value_) return;  // value follows "key": on the same line
    out_.append(2 * depth_, ' ');
  }
  void open(const char* k, char brace) {
    if (k != nullptr) {
      key(k);
    } else {
      sep();
      indent();
    }
    pending_value_ = false;
    out_ += brace;
    out_ += '\n';
    ++depth_;
    need_comma_ = false;
  }
  void close(char brace) {
    out_ += '\n';
    --depth_;
    out_.append(2 * depth_, ' ');
    out_ += brace;
    need_comma_ = true;
  }

  std::string out_;
  int depth_ = 0;
  bool need_comma_ = false;
  bool pending_value_ = false;
};

/// FNV-1a 64 over a document: the repo's stable cross-process
/// fingerprint (same function SocDesc::hash uses over its canonical
/// JSON; campaign specs and slice checksums reuse it).
inline std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace sim::jsonemit
