#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

namespace sim {

/// Minimal VCD (Value Change Dump) writer: register named probes (each a
/// callback returning the current value and a bit width), then call
/// sample(cycle) once per settled cycle — typically from
/// Simulator::on_cycle. Only changed values are emitted, per the VCD
/// format. Output is viewable in GTKWave/Surfer.
class VcdWriter {
 public:
  explicit VcdWriter(const std::string& path) : out_(path) {}

  /// Adds a probe. Must be called before the first sample(): the VCD
  /// header declaring every variable is written once, so a probe added
  /// afterwards could never appear in it. Such a late probe is rejected
  /// (dropped) and ok() turns false naming the failure mode — silently
  /// emitting undeclared value changes would corrupt the dump.
  void probe(const std::string& name, unsigned width,
             std::function<std::uint64_t()> getter) {
    if (header_done_) {
      late_probe_rejected_ = true;
      return;
    }
    probes_.push_back(Probe{name, width, std::move(getter), ~0ull, code()});
  }

  /// Stream healthy AND no probe() arrived after the header was written.
  bool ok() const { return out_.good() && !late_probe_rejected_; }

  /// True when a probe() call arrived after the first sample() and was
  /// dropped (the header had already been emitted).
  bool late_probe_rejected() const { return late_probe_rejected_; }

  /// Emits the header on the first call, then one timestep per call.
  void sample(std::uint64_t cycle) {
    if (!header_done_) write_header();
    out_ << '#' << cycle << '\n';
    for (Probe& p : probes_) {
      const std::uint64_t v = p.getter();
      if (v == p.last) continue;
      p.last = v;
      if (p.width == 1) {
        out_ << (v & 1) << p.id << '\n';
      } else {
        out_ << 'b';
        bool started = false;
        for (int bit = static_cast<int>(p.width) - 1; bit >= 0; --bit) {
          const bool b = (v >> bit) & 1;
          if (b) started = true;
          if (started || bit == 0) out_ << (b ? '1' : '0');
        }
        out_ << ' ' << p.id << '\n';
      }
    }
  }

  void flush() { out_.flush(); }

 private:
  struct Probe {
    std::string name;
    unsigned width;
    std::function<std::uint64_t()> getter;
    std::uint64_t last;
    std::string id;
  };

  std::string code() {
    // Printable identifier codes: !, ", #, ... per VCD convention.
    std::string s;
    unsigned n = next_code_++;
    do {
      s.push_back(static_cast<char>('!' + n % 94));
      n /= 94;
    } while (n > 0);
    return s;
  }

  void write_header() {
    out_ << "$timescale 1ns $end\n$scope module tmu $end\n";
    for (const Probe& p : probes_) {
      out_ << "$var wire " << p.width << ' ' << p.id << ' ' << p.name
           << " $end\n";
    }
    out_ << "$upscope $end\n$enddefinitions $end\n";
    header_done_ = true;
  }

  std::ofstream out_;
  std::vector<Probe> probes_;
  unsigned next_code_ = 0;
  bool header_done_ = false;
  bool late_probe_rejected_ = false;
};

}  // namespace sim
