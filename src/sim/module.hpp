#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "sim/context.hpp"

namespace sim {

class StateVisitor;

/// Base class for all cycle-level hardware models.
///
/// The kernel drives each cycle in two phases:
///   1. eval()  — combinational: compute outputs from register state and
///                input wires. Must be idempotent for fixed inputs; it is
///                called repeatedly until all wires settle.
///   2. tick()  — sequential: sample the settled wires and update
///                internal registers (the clock edge).
/// reset() returns all registers to their power-on state.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual void eval() {}
  virtual void tick() {}
  virtual void reset() {}

  /// Whether eval() can drive wires. Pure sequential sinks (IRQ
  /// controllers, CPU stubs, monitors/tracers that only sample settled
  /// wires in tick()) return false so both settle kernels skip them
  /// entirely. Only override to false when eval() is NOT overridden —
  /// a combinational output behind a false here would never propagate.
  virtual bool is_combinational() const { return true; }

  /// Compound modules — a facade that decomposes its work across
  /// internal shard modules (e.g. the sharded AXI crossbar) — override
  /// this to expose the shards. Simulator::add() visits them recursively
  /// and registers each alongside the parent, so user code keeps adding
  /// the facade alone. The parent is responsible for the shards'
  /// lifetime; visiting order is the registration (tie-break) order.
  virtual void visit_submodules(const std::function<void(Module&)>& visit) {
    (void)visit;
  }

  /// Queried by the event-driven scheduler right after every tick():
  /// may this clock edge have changed state that eval() depends on?
  /// The conservative default (yes) re-evaluates the module each cycle,
  /// exactly like the full sweep. Overriders return false only when the
  /// edge provably left every eval-relevant register untouched — then
  /// the module's settled outputs are still exact and its post-edge
  /// re-eval is skipped, which is what makes idle-heavy netlists settle
  /// in O(activity). Wire writes performed during the tick phase are
  /// traced separately and wake reader modules regardless of this
  /// report, so the contract covers non-wire register state only.
  virtual bool tick_changed_eval_state() const { return true; }

  /// State-serde hook (sim/state.hpp): list every register, queue and
  /// counter that survives a cycle boundary, once, in a fixed order —
  /// the same walk serializes (save visitor) and restores (load
  /// visitor), so a round-trip is exact by construction. Stateless
  /// modules keep the empty default. Output wires owned by the module
  /// are visited here too when they are not part of a Soc link (the
  /// snapshot layer walks links separately).
  virtual void visit_state(StateVisitor& v) { (void)v; }

  const std::string& name() const { return name_; }

  /// Binds the module to a simulator's change-epoch context (called by
  /// Simulator::add). Held weakly: a module outliving its simulator
  /// falls back to ambient notification instead of dangling, and
  /// destruction order between module and simulator is unconstrained.
  void bind_context(std::weak_ptr<SimContext> ctx) {
    ctx_ = std::move(ctx);
  }
  /// The bound simulator's context, or nullptr if unbound / the
  /// simulator is gone.
  SimContext* context() const { return ctx_.lock().get(); }

 protected:
  /// Marks eval-relevant module state as changed outside tick()/reset()
  /// — e.g. a testbench calling arm()/set_*() between cycles. Bumps the
  /// bound simulator's epoch so exactly that simulator's settled-state
  /// cache misses — and, under an event-driven scheduler, marks exactly
  /// this module dirty so the next settle re-evaluates only its cone.
  /// Falls back to the ambient context (invalidating every simulator on
  /// the thread) when unbound. Wire writes are tracked automatically;
  /// this is only for state the wires can't see.
  void notify_state_change() {
    if (auto ctx = ctx_.lock()) {
      ctx->notify_module(*this);
    } else {
      sim::notify_state_change();
    }
  }

 private:
  std::string name_;
  std::weak_ptr<SimContext> ctx_;
};

}  // namespace sim
