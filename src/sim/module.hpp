#pragma once

#include <string>
#include <utility>

namespace sim {

/// Base class for all cycle-level hardware models.
///
/// The kernel drives each cycle in two phases:
///   1. eval()  — combinational: compute outputs from register state and
///                input wires. Must be idempotent for fixed inputs; it is
///                called repeatedly until all wires settle.
///   2. tick()  — sequential: sample the settled wires and update
///                internal registers (the clock edge).
/// reset() returns all registers to their power-on state.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual void eval() {}
  virtual void tick() {}
  virtual void reset() {}

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace sim
