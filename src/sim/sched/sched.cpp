#include "sim/sched/sched.hpp"

#include <algorithm>
#include <atomic>
#include <string>

#include "sim/kernel.hpp"
#include "sim/module.hpp"
#include "sim/state.hpp"

namespace sim::sched {

namespace {

/// Scheduler instance tags for wire-slot ownership. Starts at 1 so the
/// zero-initialised slot of a never-traced wire can never match; 32 bits
/// of tag space outlive any realistic campaign (a tag is consumed per
/// Simulator construction, and a stale collision after wrap-around would
/// only cost a re-discovery, not correctness).
std::uint64_t next_tag() {
  static std::atomic<std::uint32_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

EventScheduler::EventScheduler(SimContext& ctx)
    : ctx_(ctx), tag_(next_tag()) {
  ctx_.attach_dirty_sink(this);
}

EventScheduler::~EventScheduler() { ctx_.attach_dirty_sink(nullptr); }

std::uint32_t EventScheduler::register_module(Module& m) {
  const auto [it, inserted] =
      index_of_.try_emplace(&m, static_cast<std::uint32_t>(modules_.size()));
  if (inserted) {
    modules_.push_back(&m);
    combinational_.push_back(m.is_combinational() ? 1 : 0);
    discovered_.push_back(0);
    read_set_.emplace_back();
    dirty_.push_back(0);
    prof_evals_.push_back(0);
    prof_wire_wakes_.push_back(0);
    prof_tick_wakes_.push_back(0);
    prof_notify_wakes_.push_back(0);
    prof_full_wakes_.push_back(0);
    prof_misses_.push_back(0);
  }
  if (combinational_[it->second] != 0) {
    enqueue(it->second, WakeCause::kFull);
  }
  return it->second;
}

void EventScheduler::mark_all_dirty() {
  ++stats_.full_invalidations;
  for (std::uint32_t i = 0; i < modules_.size(); ++i) {
    if (combinational_[i] != 0) enqueue(i, WakeCause::kFull);
  }
}

void EventScheduler::enqueue(std::uint32_t idx, WakeCause cause) {
  if (dirty_[idx] == 0) {
    dirty_[idx] = 1;
    queue_.push_back(idx);
    if (profiling_) {
      switch (cause) {
        case WakeCause::kWire: ++prof_wire_wakes_[idx]; break;
        case WakeCause::kTick: ++prof_tick_wakes_[idx]; break;
        case WakeCause::kNotify: ++prof_notify_wakes_[idx]; break;
        case WakeCause::kFull: ++prof_full_wakes_[idx]; break;
      }
    }
  }
}

std::uint32_t EventScheduler::wire_id(std::uint64_t& slot) {
  if ((slot >> 32) == tag_) return static_cast<std::uint32_t>(slot);
  // First sight (or a slot owned by another scheduler — wire-disjointness
  // makes that a handoff, not sharing): claim it.
  const std::uint32_t id = n_wires_++;
  slot = (tag_ << 32) | id;
  fanout_.emplace_back();
  stats_.wires = n_wires_;
  return id;
}

void EventScheduler::on_wire_read(std::uint64_t& slot) {
  const std::uint32_t w = wire_id(slot);
  if (cur_ == kNoModule) return;  // not inside a drained eval
  auto& rs = read_set_[cur_];
  if (w >= rs.size()) rs.resize(n_wires_, false);
  if (!rs[w]) {
    rs[w] = true;
    fanout_[w].push_back(cur_);
    ++stats_.edges;
    if (discovered_[cur_] != 0) {
      ++stats_.sensitivity_misses;
      if (profiling_) ++prof_misses_[cur_];
    }
  }
}

void EventScheduler::on_wire_write(std::uint64_t& slot) {
  absorb_attributed_bump();
  const std::uint32_t w = wire_id(slot);
  ++stats_.wire_writes;
  for (const std::uint32_t reader : fanout_[w]) {
    if (dirty_[reader] == 0) {
      dirty_[reader] = 1;
      queue_.push_back(reader);
      ++stats_.wakeups;
      if (profiling_) ++prof_wire_wakes_[reader];
    }
  }
}

void EventScheduler::on_module_notified(const Module& m) {
  absorb_attributed_bump();
  const auto it = index_of_.find(&m);
  if (it != index_of_.end() && combinational_[it->second] != 0) {
    enqueue(it->second, WakeCause::kNotify);
  }
  // An unregistered (or tick-only) module's notification leaves the
  // epoch gap unabsorbed only if the bump wasn't contiguous; for
  // registered modules the enqueue is the precise invalidation.
}

void EventScheduler::absorb_attributed_bump() {
  // Attributed bumps arrive immediately after the epoch increment; only
  // a contiguous bump may be absorbed, so an unattributed bump hiding
  // between two attributed ones still leaves a gap and forces the
  // conservative mark_all_dirty() path in the kernel.
  if (ctx_.epoch() == accounted_epoch_ + 1) ++accounted_epoch_;
}

std::size_t EventScheduler::drain(int max_delta_iterations) {
  detail::WireTraceScope trace(*this);
  const std::size_t budget =
      static_cast<std::size_t>(max_delta_iterations) *
      std::max<std::size_t>(modules_.size(), 1);
  std::size_t evals = 0;
  if (profiling_ && head_ < queue_.size()) {
    depth_hist_.add(queue_.size() - head_);
  }
  while (head_ < queue_.size()) {
    if (evals >= budget) throw_divergence();
    const std::uint32_t m = queue_[head_++];
    // Clear before eval: a module writing a wire in its own read-set
    // legitimately re-enqueues itself (a delta iteration).
    dirty_[m] = 0;
    cur_ = m;
    modules_[m]->eval();
    discovered_[m] = 1;
    if (profiling_) ++prof_evals_[m];
    ++evals;
  }
  cur_ = kNoModule;
  queue_.clear();
  head_ = 0;
  stats_.module_evals += evals;
  if (evals > 0) ++stats_.drains;
  return evals;
}

SchedProfile EventScheduler::profile() const {
  SchedProfile p;
  p.modules.reserve(modules_.size());
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    ModuleProfile mp;
    mp.name = modules_[i]->name();
    mp.evals = prof_evals_[i];
    mp.wire_wakeups = prof_wire_wakes_[i];
    mp.tick_wakeups = prof_tick_wakes_[i];
    mp.notify_wakeups = prof_notify_wakes_[i];
    mp.full_wakeups = prof_full_wakes_[i];
    mp.sensitivity_misses = prof_misses_[i];
    p.modules.push_back(std::move(mp));
  }
  p.dirty_depth = depth_hist_;
  return p;
}

void EventScheduler::visit_checkpoint(StateVisitor& v) {
  // Structural guard: the restoring scheduler must hold the same module
  // registry (building both sides from the same desc guarantees it).
  std::uint64_t n_modules = modules_.size();
  visit(v, n_modules);
  if (!v.saving() && n_modules != modules_.size()) {
    v.fail("scheduler module count mismatch: snapshot has " +
           std::to_string(n_modules) + ", restoring netlist has " +
           std::to_string(modules_.size()));
  }

  visit(v, n_wires_);

  // Which modules completed their first traced eval (controls whether a
  // new edge counts as a sensitivity miss).
  for (auto& d : discovered_) {
    bool b = d != 0;
    v.boolean(b);
    if (!v.saving()) d = b ? 1 : 0;
  }

  // Fan-out lists, exact order: wake order feeds the drain's FIFO, so
  // list order is behavior, not just structure.
  visit(v, fanout_);
  if (!v.saving() && fanout_.size() != n_wires_) {
    v.fail("scheduler fan-out table has " + std::to_string(fanout_.size()) +
           " wires, header says " + std::to_string(n_wires_));
  }

  // Pending worklist (the active queue region). Empty at a settled
  // capture point under the event-driven policy; under the full sweep
  // it carries the registration-time wakes the sweep never drains.
  std::vector<std::uint32_t> pending;
  if (v.saving()) {
    pending.assign(queue_.begin() + static_cast<std::ptrdiff_t>(head_),
                   queue_.end());
  }
  visit(v, pending);
  if (!v.saving()) {
    queue_ = std::move(pending);
    head_ = 0;
    std::fill(dirty_.begin(), dirty_.end(), 0);
    for (const std::uint32_t m : queue_) {
      if (m >= modules_.size()) {
        v.fail("scheduler worklist names module " + std::to_string(m) +
               " out of range");
      }
      dirty_[m] = 1;
    }
  }

  visit(v, stats_.module_evals);
  visit(v, stats_.drains);
  visit(v, stats_.wire_writes);
  visit(v, stats_.wakeups);
  visit(v, stats_.sensitivity_misses);
  visit(v, stats_.full_invalidations);
  std::uint64_t wires = stats_.wires;
  std::uint64_t edges = stats_.edges;
  visit(v, wires);
  visit(v, edges);

  visit(v, profiling_);
  visit(v, prof_evals_);
  visit(v, prof_wire_wakes_);
  visit(v, prof_tick_wakes_);
  visit(v, prof_notify_wakes_);
  visit(v, prof_full_wakes_);
  visit(v, prof_misses_);
  visit(v, depth_hist_);

  if (!v.saving()) {
    stats_.wires = static_cast<std::size_t>(wires);
    stats_.edges = static_cast<std::size_t>(edges);
    for (const auto* arr : {&prof_evals_, &prof_wire_wakes_,
                            &prof_tick_wakes_, &prof_notify_wakes_,
                            &prof_full_wakes_, &prof_misses_}) {
      if (arr->size() != modules_.size()) {
        v.fail("scheduler profile array size mismatch");
      }
    }
    // Rebuild read-sets as the fan-out inverse (read_set_ and fanout_
    // are two views of the same edge set).
    read_set_.assign(modules_.size(), {});
    for (std::uint32_t w = 0; w < fanout_.size(); ++w) {
      for (const std::uint32_t m : fanout_[w]) {
        if (m >= modules_.size()) {
          v.fail("scheduler fan-out names module " + std::to_string(m) +
                 " out of range");
        }
        auto& rs = read_set_[m];
        if (rs.size() < n_wires_) rs.resize(n_wires_, false);
        rs[w] = true;
      }
    }
    cur_ = kNoModule;
    accounted_epoch_ = ctx_.epoch();
  }
}

void EventScheduler::throw_divergence() {
  // Leave the scheduler consistent (the still-dirty tail stays queued)
  // in case the caller catches and retries.
  queue_.erase(queue_.begin(),
               queue_.begin() + static_cast<std::ptrdiff_t>(head_));
  head_ = 0;
  cur_ = kNoModule;
  std::vector<const Module*> dirty;
  dirty.reserve(queue_.size());
  for (const std::uint32_t m : queue_) dirty.push_back(modules_[m]);
  throw ConvergenceError(detail::divergence_message(dirty));
}

}  // namespace sim::sched
