#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace sim::sched {

/// Why a module was enqueued on the event-driven worklist.
enum class WakeCause : std::uint8_t {
  kWire,    ///< a wire in its read-set changed value
  kTick,    ///< post-edge invalidation (tick_changed_eval_state)
  kNotify,  ///< Module::notify_state_change (testbench mutation)
  kFull,    ///< mark_all_dirty / registration (conservative wake)
};

/// One module's slice of the event-driven scheduler's activity since
/// construction: how often it evaluated, why it woke, and how many
/// sensitivity-list edges it learned after discovery (a dynamic
/// read-set signature). All counters are event-driven-mode only; under
/// kFullSweep every combinational module evaluates every pass and the
/// profile stays zero.
struct ModuleProfile {
  std::string name;
  std::uint64_t evals = 0;
  std::uint64_t wire_wakeups = 0;
  std::uint64_t tick_wakeups = 0;
  std::uint64_t notify_wakeups = 0;
  std::uint64_t full_wakeups = 0;
  std::uint64_t sensitivity_misses = 0;

  std::uint64_t wakeups() const {
    return wire_wakeups + tick_wakeups + notify_wakeups + full_wakeups;
  }
};

/// A coherent sample of the scheduler profiler: per-module activity in
/// registration order plus the worklist-depth distribution (dirty-set
/// length at the start of every non-empty drain — how wide each settle
/// front is). Deterministic for a deterministic run, so campaign trials
/// can embed it in reports.
struct SchedProfile {
  std::vector<ModuleProfile> modules;  ///< registration order
  sim::Histogram dirty_depth;

  std::uint64_t total_evals() const;

  /// Human-readable eval-hog report: the n busiest modules by eval
  /// count (ties broken by name), one line each with wake-cause
  /// breakdown, plus a totals footer. The tool for answering "why is
  /// this simulation slow".
  std::string top_modules(std::size_t n = 10) const;
};

}  // namespace sim::sched
