#pragma once

#include <cstdint>

namespace sim::detail {

/// Wire-access trace hooks. A scheduler installs itself thread_locally
/// (WireTraceScope) only while it is evaluating modules, so untraced
/// simulation pays exactly one predictable branch per wire access.
///
/// The `slot` passed to both callbacks is the wire's embedded identity
/// cell (Wire::sched_slot_): the upper 32 bits carry the owning
/// scheduler's instance tag, the lower 32 bits the wire's dense id in
/// that scheduler's registry. A slot whose tag differs from the active
/// scheduler's (zero-initialised wires, wires last seen by a destroyed
/// scheduler, wires migrated between simulators) is simply re-assigned,
/// so wire identity needs no central bookkeeping and no cleanup.
class WireTrace {
 public:
  /// A module evaluated under this trace read the wire.
  virtual void on_wire_read(std::uint64_t& slot) = 0;
  /// A write changed the wire's value (called after the change-epoch
  /// bump, still under the writer's ActiveContextScope).
  virtual void on_wire_write(std::uint64_t& slot) = 0;

 protected:
  ~WireTrace() = default;
};

/// The traces active on this thread, or nullptr when nothing records
/// that kind of wire access (the common case: full-sweep settles,
/// testbench code). Reads and writes are gated separately: an
/// event-driven drain traces both (sensitivity discovery + wakeups),
/// while the tick phase traces only writes (wakeups for wires mutated
/// at the clock edge) so the many register-sampling reads in tick()
/// stay free.
inline thread_local WireTrace* t_wire_read_trace = nullptr;
inline thread_local WireTrace* t_wire_write_trace = nullptr;

/// RAII installation of a read+write trace (drain scope). Nestable and
/// exception-safe, mirroring ActiveContextScope: a ConvergenceError
/// thrown mid-drain must not leave a dangling trace behind.
class WireTraceScope {
 public:
  explicit WireTraceScope(WireTrace& t)
      : prev_read_(t_wire_read_trace), prev_write_(t_wire_write_trace) {
    t_wire_read_trace = &t;
    t_wire_write_trace = &t;
  }
  ~WireTraceScope() {
    t_wire_read_trace = prev_read_;
    t_wire_write_trace = prev_write_;
  }

  WireTraceScope(const WireTraceScope&) = delete;
  WireTraceScope& operator=(const WireTraceScope&) = delete;

 private:
  WireTrace* prev_read_;
  WireTrace* prev_write_;
};

/// RAII installation of a write-only trace (tick scope).
class WireWriteTraceScope {
 public:
  explicit WireWriteTraceScope(WireTrace& t) : prev_(t_wire_write_trace) {
    t_wire_write_trace = &t;
  }
  ~WireWriteTraceScope() { t_wire_write_trace = prev_; }

  WireWriteTraceScope(const WireWriteTraceScope&) = delete;
  WireWriteTraceScope& operator=(const WireWriteTraceScope&) = delete;

 private:
  WireTrace* prev_;
};

}  // namespace sim::detail
