#include "sim/sched/profiler.hpp"

#include <algorithm>
#include <cinttypes>

#include "sim/jsonfmt.hpp"

namespace sim::sched {

std::uint64_t SchedProfile::total_evals() const {
  std::uint64_t t = 0;
  for (const ModuleProfile& m : modules) t += m.evals;
  return t;
}

std::string SchedProfile::top_modules(std::size_t n) const {
  std::vector<const ModuleProfile*> by_evals;
  by_evals.reserve(modules.size());
  for (const ModuleProfile& m : modules) by_evals.push_back(&m);
  std::sort(by_evals.begin(), by_evals.end(),
            [](const ModuleProfile* a, const ModuleProfile* b) {
              if (a->evals != b->evals) return a->evals > b->evals;
              return a->name < b->name;
            });
  if (by_evals.size() > n) by_evals.resize(n);

  const std::uint64_t total = total_evals();
  std::string out;
  sim::jsonfmt::append_f(out, "%-24s %10s %6s %8s %6s %6s %6s %7s\n", "module",
                         "evals", "%", "wire", "tick", "ntfy", "full",
                         "misses");
  for (const ModuleProfile* m : by_evals) {
    const double pct =
        total ? 100.0 * static_cast<double>(m->evals) /
                    static_cast<double>(total)
              : 0.0;
    sim::jsonfmt::append_f(
        out, "%-24s %10" PRIu64 " %5.1f%% %8" PRIu64 " %6" PRIu64 " %6" PRIu64
             " %6" PRIu64 " %7" PRIu64 "\n",
        m->name.c_str(), m->evals, pct, m->wire_wakeups, m->tick_wakeups,
        m->notify_wakeups, m->full_wakeups, m->sensitivity_misses);
  }
  sim::jsonfmt::append_f(out,
                         "total: %" PRIu64 " evals across %zu modules "
                         "(showing top %zu)\n",
                         total, modules.size(), by_evals.size());
  return out;
}

}  // namespace sim::sched
