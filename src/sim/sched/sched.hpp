#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/context.hpp"
#include "sim/sched/profiler.hpp"
#include "sim/sched/trace.hpp"

namespace sim {
class Module;
class StateVisitor;
}

namespace sim::sched {

/// How Simulator::settle() reaches the combinational fixpoint.
enum class SchedPolicy {
  /// Repeat full passes over every registered module until no wire
  /// changes (the original kernel). Retained for lockstep cross-checking
  /// against the event-driven scheduler and as the bring-up fallback.
  kFullSweep,
  /// Drain a dirty-set worklist: a value-changing wire write enqueues
  /// only that wire's reader modules, so settle cost is proportional to
  /// activity (toggled wires) instead of netlist size.
  kEventDriven,
};

inline const char* to_string(SchedPolicy p) {
  return p == SchedPolicy::kFullSweep ? "full_sweep" : "event_driven";
}

/// Scheduler observability counters (event-driven mode).
struct SchedStats {
  std::uint64_t module_evals = 0;        ///< eval() calls run by drains
  std::uint64_t drains = 0;              ///< drains that evaluated >=1 module
  std::uint64_t wire_writes = 0;         ///< value-changing writes observed
  std::uint64_t wakeups = 0;             ///< modules enqueued by wire writes
  std::uint64_t sensitivity_misses = 0;  ///< edges learned after discovery
  std::uint64_t full_invalidations = 0;  ///< mark_all_dirty() calls
  std::size_t wires = 0;                 ///< wires in the registry
  std::size_t edges = 0;                 ///< wire→module fan-out edges
};

/// Event-driven settle scheduler for one Simulator.
///
/// Wires get a dense identity lazily, on first traced access, via the
/// owner-tagged slot embedded in Wire (sim/sched/trace.hpp). Every eval
/// the scheduler runs is traced, so each module's read-set (sensitivity
/// list) is discovered automatically on its first eval and kept a
/// superset of the true dependency set forever after: a module whose
/// read-set changes at runtime is only ever re-evaluated because a wire
/// it previously read changed, and that traced re-eval records the new
/// edges (counted as sensitivity misses) before they can be needed.
/// Read-sets are inverted on the fly into per-wire fan-out lists; a
/// value-changing write wakes exactly the reader modules.
///
/// Epoch accounting: the scheduler absorbs context-epoch bumps it can
/// attribute (traced wire writes, module notifications) by tracking the
/// last accounted epoch. Any unattributed bump — testbench code poking
/// the context directly — leaves a gap, and the kernel falls back to
/// mark_all_dirty() on the next settle. Correctness therefore never
/// depends on attribution; precision does.
class EventScheduler final : public detail::WireTrace,
                             public SimContext::DirtySink {
 public:
  explicit EventScheduler(SimContext& ctx);
  ~EventScheduler();

  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  /// Registers a module (idempotent) and marks it dirty; returns its
  /// dense index for O(1) dirty-marking. Registration order is the
  /// drain's tie-break order, mirroring the full sweep.
  std::uint32_t register_module(Module& m);

  /// Enqueues every combinational module (resets, external writes,
  /// policy switches — anything that can change state behind the wires'
  /// backs and can't name the affected modules).
  void mark_all_dirty();

  /// Enqueues one module by its register_module() index (no-op for
  /// tick-only modules). The kernel's precise post-edge invalidation.
  void mark_index_dirty(std::uint32_t idx) {
    if (combinational_[idx] != 0) enqueue(idx, WakeCause::kTick);
  }

  bool has_dirty() const { return head_ != queue_.size(); }

  /// True when every context-epoch bump since the last sync is accounted
  /// for by an attributed (module-precise) invalidation.
  bool epoch_accounted() const { return ctx_.epoch() == accounted_epoch_; }
  void sync_epoch() { accounted_epoch_ = ctx_.epoch(); }

  /// Drains the worklist to quiescence; returns the number of module
  /// evals run. Eval budget mirrors the full sweep's worst case
  /// (max_delta_iterations passes over the whole netlist); on exhaustion
  /// throws ConvergenceError naming the modules still dirty.
  std::size_t drain(int max_delta_iterations);

  const SchedStats& stats() const { return stats_; }

  /// Per-module profiling (default on): eval counts, wake causes,
  /// sensitivity misses, dirty-set depth. One array index per enqueue —
  /// cheap enough to leave on; turn off to measure the floor.
  void set_profiling(bool on) { profiling_ = on; }
  bool profiling() const { return profiling_; }

  /// A coherent copy of the per-module profile (registration order)
  /// and the dirty-depth histogram accumulated so far.
  SchedProfile profile() const;

  /// This scheduler's wire-slot owner tag, shifted into the slot's tag
  /// field — the base a snapshot loader re-tags restored wire slots with
  /// (StateVisitor::set_wire_tag).
  std::uint64_t wire_tag_base() const { return tag_ << 32; }

  /// Checkpoint serde (sim/state.hpp): the discovered sensitivity
  /// structure (wire count, fan-out lists — wake order is part of the
  /// drain's deterministic behavior), the pending worklist, and every
  /// observability counter, so a restored scheduler continues with the
  /// exact counters and wake behavior the captured one would have had.
  /// Load requires the restoring scheduler to hold the same module
  /// registry (same netlist, registered in the same order); read-sets
  /// are rebuilt as the fan-out inverse and the epoch accounting is
  /// resynchronized to the restoring context.
  void visit_checkpoint(StateVisitor& v);

 private:
  static constexpr std::uint32_t kNoModule = 0xFFFF'FFFFu;

  void on_wire_read(std::uint64_t& slot) override;
  void on_wire_write(std::uint64_t& slot) override;
  void on_module_notified(const Module& m) override;

  std::uint32_t wire_id(std::uint64_t& slot);
  void enqueue(std::uint32_t idx, WakeCause cause);
  void absorb_attributed_bump();
  [[noreturn]] void throw_divergence();

  SimContext& ctx_;
  const std::uint64_t tag_;  ///< this scheduler's wire-slot owner tag

  std::vector<Module*> modules_;
  std::unordered_map<const Module*, std::uint32_t> index_of_;
  std::vector<char> combinational_;
  std::vector<char> discovered_;  ///< first traced eval completed

  std::vector<std::vector<bool>> read_set_;          ///< [module][wire]
  std::vector<std::vector<std::uint32_t>> fanout_;   ///< [wire] → modules

  std::vector<char> dirty_;
  std::vector<std::uint32_t> queue_;  ///< FIFO worklist
  std::size_t head_ = 0;
  std::uint32_t cur_ = kNoModule;  ///< module being evaluated by drain()

  std::uint32_t n_wires_ = 0;
  std::uint64_t accounted_epoch_ = 0;
  SchedStats stats_;

  // Profiler state: one slot per module, registration order. An enqueue
  // attributes its cause to the woken module; evals and misses are
  // attributed in drain()/on_wire_read(). Kept as parallel flat arrays
  // (not an array of structs) so the common case — bumping one counter —
  // touches one cache line per kind.
  bool profiling_ = true;
  std::vector<std::uint64_t> prof_evals_;
  std::vector<std::uint64_t> prof_wire_wakes_;
  std::vector<std::uint64_t> prof_tick_wakes_;
  std::vector<std::uint64_t> prof_notify_wakes_;
  std::vector<std::uint64_t> prof_full_wakes_;
  std::vector<std::uint64_t> prof_misses_;
  Histogram depth_hist_;  ///< worklist length at each non-empty drain
};

}  // namespace sim::sched
