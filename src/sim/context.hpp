#pragma once

#include <cstdint>

namespace sim {

class Module;

/// Per-netlist change-epoch context. Every Wire write that changes a
/// value (and every notify_state_change()) bumps the epoch of exactly one
/// context; a Simulator keys its settled-state cache on its own context,
/// so independent simulators — on the same thread or on different
/// threads — never invalidate each other's caches.
///
/// Contract: coexisting simulators' netlists must be wire-disjoint. A
/// wire written by simulator A's modules during eval/tick bumps only A's
/// epoch, so a simulator B reading that wire would not notice the change
/// (under the old global epoch it did). Cross-simulator coupling must go
/// through testbench code instead — writes outside any simulator scope
/// (including on_cycle callbacks) land on the ambient context, which
/// conservatively invalidates every simulator on the thread.
class SimContext {
 public:
  /// Kernel-internal attachment point for the owning simulator's event
  /// scheduler: module notifications routed through notify_module() can
  /// then mark exactly the notifying module dirty instead of forcing a
  /// full re-settle.
  class DirtySink {
   public:
    virtual void on_module_notified(const Module& m) = 0;

   protected:
    ~DirtySink() = default;
  };

  std::uint64_t epoch() const { return epoch_; }
  void bump() { ++epoch_; }

  /// Precise notification from a bound module (Module::notify_state_change):
  /// bumps the epoch and, when a scheduler is attached, marks the module
  /// dirty so an event-driven settle re-evaluates only its cone.
  void notify_module(const Module& m) {
    ++epoch_;
    if (sink_ != nullptr) sink_->on_module_notified(m);
  }

  /// Attaches / detaches the scheduler (nullptr to detach). The sink is
  /// held raw: the Simulator owns both this context's shared_ptr and the
  /// scheduler, and the scheduler detaches itself on destruction.
  void attach_dirty_sink(DirtySink* sink) { sink_ = sink; }

 private:
  std::uint64_t epoch_ = 0;
  DirtySink* sink_ = nullptr;
};

namespace detail {

/// Ambient context for wire writes performed outside any simulator scope
/// (testbench code poking wires between cycles). thread_local, so worker
/// threads running independent campaigns share nothing. Every Simulator
/// on a thread treats the ambient epoch as part of its cache key:
/// ambient writes conservatively invalidate all of them.
inline thread_local SimContext t_ambient_ctx{};

/// The simulator context currently evaluating on this thread, or nullptr
/// outside settle()/step()/reset().
inline thread_local SimContext* t_active_ctx = nullptr;

inline SimContext& current_ctx() {
  return t_active_ctx != nullptr ? *t_active_ctx : t_ambient_ctx;
}

inline void bump_change_epoch() { current_ctx().bump(); }

/// RAII scope: attribute wire changes on this thread to `ctx`. Nestable
/// (settle() inside step()); exception-safe so a ConvergenceError does
/// not leave a dangling active context.
class ActiveContextScope {
 public:
  explicit ActiveContextScope(SimContext& ctx) : prev_(t_active_ctx) {
    t_active_ctx = &ctx;
  }
  ~ActiveContextScope() { t_active_ctx = prev_; }

  ActiveContextScope(const ActiveContextScope&) = delete;
  ActiveContextScope& operator=(const ActiveContextScope&) = delete;

 private:
  SimContext* prev_;
};

}  // namespace detail

/// Epoch of this thread's ambient context (writes outside any simulator).
inline std::uint64_t ambient_epoch() { return detail::t_ambient_ctx.epoch(); }

/// Epoch of the context wire writes are currently attributed to: the
/// active simulator's during settle/step, the thread-ambient otherwise.
inline std::uint64_t change_epoch() { return detail::current_ctx().epoch(); }

/// Marks eval-relevant state as changed outside tick()/reset() from
/// non-Module code. Bumps the currently attributed context; prefer
/// Module::notify_state_change() inside modules — it targets the owning
/// simulator precisely instead of invalidating every simulator on the
/// thread.
inline void notify_state_change() { detail::bump_change_epoch(); }

}  // namespace sim
