#include "campaign/remote.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "sim/jsonemit.hpp"
#include "sim/jsonparse.hpp"
#include "soc/desc.hpp"
#include "soc/desc_serde.hpp"

namespace campaign::remote {

namespace {

using sim::jsonemit::Emitter;
using sim::jsonemit::fnv1a64;
using sim::jsonparse::Json;
using sim::jsonparse::ObjReader;

constexpr const char* kSpecPrefix = "CampaignSpec::from_json";
constexpr const char* kSlicePrefix = "ReportSlice::from_json";

[[noreturn]] void fail(const std::string& prefix, const std::string& what) {
  throw std::invalid_argument(prefix + ": " + what);
}

bool fault_point_from_string(const std::string& s, fault::FaultPoint& out) {
  for (int i = 0; i <= static_cast<int>(fault::FaultPoint::kRReadyStuck); ++i) {
    const auto p = static_cast<fault::FaultPoint>(i);
    if (s == fault::to_string(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

std::uint64_t parse_hex64(const std::string& s, const std::string& prefix,
                          const std::string& where) {
  if (s.size() != 16 ||
      s.find_first_not_of("0123456789abcdef") != std::string::npos) {
    fail(prefix, where + " must be a 16-digit lowercase hex string");
  }
  return std::strtoull(s.c_str(), nullptr, 16);
}

/// The spec's topology table: distinct descs in first-use order, each
/// stored as its canonical JSON (the table key — structural equality via
/// byte equality of canonical documents) plus its FNV fingerprint.
struct TopoTable {
  std::vector<std::string> jsons;
  std::vector<std::uint64_t> hashes;
  std::map<std::string, std::size_t> by_json;
  // One-slot memo: campaign trials overwhelmingly repeat one desc, and
  // structural compare is allocation-free while to_json is not.
  const soc::SocDesc* last_desc = nullptr;
  std::size_t last_idx = 0;

  std::size_t intern(const soc::SocDesc& d) {
    if (last_desc != nullptr && d == *last_desc) return last_idx;
    std::string j = d.to_json();
    const auto [it, inserted] = by_json.try_emplace(std::move(j), jsons.size());
    if (inserted) {
      jsons.push_back(it->first);
      hashes.push_back(fnv1a64(it->first));
    }
    last_desc = &d;
    last_idx = it->second;
    return it->second;
  }
};

TopoTable build_topo_table(const std::vector<Scenario>& scenarios) {
  TopoTable table;
  for (const Scenario& sc : scenarios) {
    for (const TrialSpec& t : sc.trials) table.intern(t.desc);
  }
  return table;
}

void emit_trial_run(Emitter& e, const TrialSpec& t, std::uint64_t count,
                    std::size_t topo_idx) {
  e.open_obj();
  e.u64("count", count);
  e.u64("topology", topo_idx);
  soc::serde::emit_tmu(e, "cfg", t.cfg);
  e.str("point", fault::to_string(t.point));
  soc::serde::emit_traffic(e, "traffic", t.traffic);
  e.u64("seed", t.seed);
  e.u64("inject_delay_max", t.inject_delay_max);
  e.u64("detect_budget", t.detect_budget);
  e.u64("soak_cycles", t.soak_cycles);
  e.u64("max_cycles", t.max_cycles);
  // Schema-compatible optional: absent means 0, and specs without a
  // warm-up phase keep emitting byte-identical v1 documents (older
  // readers, with their unknown-key strictness, still accept them).
  if (t.warmup_cycles != 0) e.u64("warmup_cycles", t.warmup_cycles);
  e.boolean("exercise_recovery", t.exercise_recovery);
  e.open_arr("trace_links");
  for (const std::string& l : t.trace_links) e.str_elem(l);
  e.close_arr();
  e.close_obj();
}

void parse_trial_run(const Json& v, const std::string& where,
                     const std::vector<soc::SocDesc>& topologies,
                     std::vector<TrialSpec>& out) {
  ObjReader r(v, where, kSpecPrefix);
  std::uint64_t count = 1;
  r.get_u("count", count);
  if (count == 0) r.fail(r.ctx("count") + " must be at least 1");
  std::uint64_t topo = 0;
  r.get_u("topology", topo);
  if (topo >= topologies.size()) {
    r.fail(r.ctx("topology") + ": index " + std::to_string(topo) +
           " out of range (table has " + std::to_string(topologies.size()) +
           " entries)");
  }
  TrialSpec t;
  t.desc = topologies[topo];
  if (const Json* c = r.take("cfg")) {
    soc::serde::parse_tmu(*c, where + ".cfg", kSpecPrefix, t.cfg);
  }
  std::string point = fault::to_string(t.point);
  r.get("point", point);
  if (!fault_point_from_string(point, t.point)) {
    r.fail(r.ctx("point") + ": unknown fault point '" + point + "'");
  }
  if (const Json* tr = r.take("traffic")) {
    soc::serde::parse_traffic(*tr, where + ".traffic", kSpecPrefix, t.traffic);
  }
  r.get_u("seed", t.seed);
  r.get_u("inject_delay_max", t.inject_delay_max);
  r.get_u("detect_budget", t.detect_budget);
  r.get_u("soak_cycles", t.soak_cycles);
  r.get_u("max_cycles", t.max_cycles);
  r.get_u("warmup_cycles", t.warmup_cycles);
  r.get("exercise_recovery", t.exercise_recovery);
  if (const Json* links = r.take("trace_links")) {
    if (links->kind != Json::Kind::kArray) {
      r.fail(r.ctx("trace_links") + " must be an array of strings");
    }
    for (const Json& l : links->arr) {
      if (l.kind != Json::Kind::kString) {
        r.fail(r.ctx("trace_links") + " must be an array of strings");
      }
      t.trace_links.push_back(l.str);
    }
  }
  r.finish();
  out.insert(out.end(), count, t);
}

}  // namespace

std::uint64_t CampaignSpec::total_trials() const {
  std::uint64_t n = 0;
  for (const Scenario& sc : scenarios) n += sc.trials.size();
  return n;
}

std::string CampaignSpec::to_json() const {
  const TopoTable table = build_topo_table(scenarios);
  Emitter e;
  e.open_obj();
  e.str("schema", kSpecSchema);
  e.u64("base_seed", base_seed);
  e.open_arr("topologies");
  for (std::size_t i = 0; i < table.jsons.size(); ++i) {
    e.open_obj();
    e.hex64("hash", table.hashes[i]);
    // The whole canonical desc document as one escaped string: the spec
    // schema does not re-model topologies, it transports them verbatim
    // (SocDesc::to_json/from_json stay the single source of truth).
    e.str("desc", table.jsons[i]);
    e.close_obj();
  }
  e.close_arr();
  e.open_arr("scenarios");
  // Rebuild the memo per emission pass: intern() below must see the
  // same first-use order the table was built with.
  TopoTable lookup = build_topo_table(scenarios);
  for (const Scenario& sc : scenarios) {
    e.open_obj();
    e.str("label", sc.label);
    e.open_arr("trials");
    // Run-length encoding over consecutive structurally-equal trials:
    // make_scenario(n) campaigns collapse to one entry per scenario.
    for (std::size_t i = 0; i < sc.trials.size();) {
      std::size_t j = i + 1;
      while (j < sc.trials.size() && sc.trials[j] == sc.trials[i]) ++j;
      emit_trial_run(e, sc.trials[i], j - i, lookup.intern(sc.trials[i].desc));
      i = j;
    }
    e.close_arr();
    e.close_obj();
  }
  e.close_arr();
  e.close_obj();
  std::string out = std::move(e).take();
  out += '\n';
  return out;
}

CampaignSpec CampaignSpec::from_json(const std::string& json) {
  const Json doc = sim::jsonparse::parse(json, kSpecPrefix);
  ObjReader r(doc, "spec", kSpecPrefix);
  std::string schema;
  r.get("schema", schema);
  if (schema != kSpecSchema) {
    r.fail("spec.schema: expected \"" + std::string(kSpecSchema) + "\", got \"" +
           schema + "\"");
  }
  CampaignSpec spec;
  spec.scenarios.clear();
  r.get_u("base_seed", spec.base_seed);

  std::vector<soc::SocDesc> topologies;
  if (const Json* topos = r.take("topologies")) {
    if (topos->kind != Json::Kind::kArray) {
      r.fail("spec.topologies must be an array");
    }
    for (std::size_t i = 0; i < topos->arr.size(); ++i) {
      const std::string where = "spec.topologies[" + std::to_string(i) + "]";
      ObjReader tr(topos->arr[i], where, kSpecPrefix);
      std::string hash_str, desc_str;
      tr.get("hash", hash_str);
      tr.get("desc", desc_str);
      tr.finish();
      const std::uint64_t declared =
          parse_hex64(hash_str, kSpecPrefix, where + ".hash");
      soc::SocDesc d;
      try {
        d = soc::SocDesc::from_json(desc_str);
      } catch (const std::invalid_argument& e) {
        fail(kSpecPrefix, where + ".desc: " + e.what());
      }
      // The declared hash must match the transported desc: a table
      // entry whose desc was altered (or whose hash was) is rejected
      // here rather than silently producing a different-hash campaign.
      if (d.hash() != declared) {
        fail(kSpecPrefix,
             where + ".hash does not match the desc document it labels");
      }
      topologies.push_back(std::move(d));
    }
  }

  if (const Json* scens = r.take("scenarios")) {
    if (scens->kind != Json::Kind::kArray) {
      r.fail("spec.scenarios must be an array");
    }
    for (std::size_t si = 0; si < scens->arr.size(); ++si) {
      const std::string where = "spec.scenarios[" + std::to_string(si) + "]";
      ObjReader sr(scens->arr[si], where, kSpecPrefix);
      Scenario sc;
      sr.get("label", sc.label);
      if (const Json* trials = sr.take("trials")) {
        if (trials->kind != Json::Kind::kArray) {
          sr.fail(where + ".trials must be an array");
        }
        for (std::size_t ti = 0; ti < trials->arr.size(); ++ti) {
          parse_trial_run(trials->arr[ti],
                          where + ".trials[" + std::to_string(ti) + "]",
                          topologies, sc.trials);
        }
      }
      sr.finish();
      spec.scenarios.push_back(std::move(sc));
    }
  }
  r.finish();
  return spec;
}

std::uint64_t CampaignSpec::hash() const { return fnv1a64(to_json()); }

std::uint64_t CampaignSpec::topologies_hash() const {
  const TopoTable table = build_topo_table(scenarios);
  Emitter e;
  e.open_arr();
  for (const std::uint64_t h : table.hashes) {
    // Reuse the canonical hex form; the enclosing array makes the
    // digest well-defined for zero and many entries alike.
    e.hex64("h", h);
  }
  e.close_arr();
  return fnv1a64(std::move(e).take());
}

namespace {

void emit_result(Emitter& e, const TrialResult& r, std::uint64_t index) {
  e.open_obj();
  e.u64("index", index);
  e.boolean("failed", r.failed);
  e.str("error", r.error);
  e.boolean("timed_out", r.timed_out);
  e.boolean("detected", r.detected);
  e.boolean("recovered", r.recovered);
  e.boolean("traffic_resumed", r.traffic_resumed);
  e.u64("inject_delay", r.inject_delay);
  e.u64("detect_cycle", r.detect_cycle);
  e.u64("latency", r.latency);
  e.u64("cycles_run", r.cycles_run);
  e.u64("eval_passes", r.eval_passes);
  e.u64("completed_txns", r.completed_txns);
  e.u64("data_mismatches", r.data_mismatches);
  e.u64("error_responses", r.error_responses);
  e.open_obj("metrics");
  e.open_obj("counters");
  for (const auto& [name, v] : r.metrics.counters) e.u64(name.c_str(), v);
  e.close_obj();
  e.open_obj("stats");
  for (const auto& [name, s] : r.metrics.stats) {
    e.open_obj(name.c_str());
    // Full internal Welford state, not derived views: from_parts below
    // reconstructs the exact stream, so downstream merges are
    // bit-identical to never having serialized at all.
    e.u64("count", s.count());
    e.dbl("mean", s.mean());
    e.dbl("m2", s.m2());
    e.dbl("min", s.min());
    e.dbl("max", s.max());
    e.close_obj();
  }
  e.close_obj();
  e.open_obj("histograms");
  for (const auto& [name, h] : r.metrics.histograms) {
    e.open_obj(name.c_str());
    for (const auto& [value, count] : h.bins()) {
      e.u64(std::to_string(value).c_str(), count);
    }
    e.close_obj();
  }
  e.close_obj();
  e.close_obj();
  e.close_obj();
}

/// The checksum input: the results array serialized standalone (depth
/// 0). Canonical by construction, so parse -> re-serialize -> compare
/// detects any value-level corruption the JSON grammar itself missed.
std::string serialize_results(const std::vector<TrialResult>& results,
                              std::uint64_t begin) {
  Emitter e;
  e.open_arr();
  for (std::size_t i = 0; i < results.size(); ++i) {
    emit_result(e, results[i], begin + i);
  }
  e.close_arr();
  return std::move(e).take();
}

TrialResult parse_result(const Json& v, const std::string& where,
                         std::uint64_t expected_index) {
  ObjReader r(v, where, kSlicePrefix);
  std::uint64_t index = ~std::uint64_t{0};
  r.get_u("index", index);
  if (index != expected_index) {
    r.fail(r.ctx("index") + ": expected " + std::to_string(expected_index) +
           ", got " + std::to_string(index));
  }
  TrialResult out;
  r.get("failed", out.failed);
  r.get("error", out.error);
  r.get("timed_out", out.timed_out);
  r.get("detected", out.detected);
  r.get("recovered", out.recovered);
  r.get("traffic_resumed", out.traffic_resumed);
  r.get_u("inject_delay", out.inject_delay);
  r.get_u("detect_cycle", out.detect_cycle);
  r.get_u("latency", out.latency);
  r.get_u("cycles_run", out.cycles_run);
  r.get_u("eval_passes", out.eval_passes);
  r.get_u("completed_txns", out.completed_txns);
  r.get_u("data_mismatches", out.data_mismatches);
  r.get_u("error_responses", out.error_responses);
  if (const Json* m = r.take("metrics")) {
    ObjReader mr(*m, where + ".metrics", kSlicePrefix);
    if (const Json* c = mr.take("counters")) {
      if (c->kind != Json::Kind::kObject) {
        mr.fail(mr.ctx("counters") + " must be an object");
      }
      for (const auto& [name, val] : c->obj) {
        if (val.kind != Json::Kind::kNumber || !val.is_unsigned) {
          mr.fail(mr.ctx("counters") + "." + name +
                  " must be a non-negative integer");
        }
        out.metrics.counters[name] = val.unum;
      }
    }
    if (const Json* st = mr.take("stats")) {
      if (st->kind != Json::Kind::kObject) {
        mr.fail(mr.ctx("stats") + " must be an object");
      }
      for (const auto& [name, val] : st->obj) {
        ObjReader sr(val, where + ".metrics.stats." + name, kSlicePrefix);
        std::uint64_t count = 0;
        double mean = 0.0, m2 = 0.0, mn = 0.0, mx = 0.0;
        sr.get_u("count", count);
        sr.get("mean", mean);
        sr.get("m2", m2);
        sr.get("min", mn);
        sr.get("max", mx);
        sr.finish();
        out.metrics.stats[name] =
            sim::RunningStats::from_parts(count, mean, m2, mn, mx);
      }
    }
    if (const Json* h = mr.take("histograms")) {
      if (h->kind != Json::Kind::kObject) {
        mr.fail(mr.ctx("histograms") + " must be an object");
      }
      for (const auto& [name, val] : h->obj) {
        if (val.kind != Json::Kind::kObject) {
          mr.fail(mr.ctx("histograms") + "." + name + " must be an object");
        }
        sim::Histogram& hist = out.metrics.histograms[name];
        for (const auto& [bin, count] : val.obj) {
          if (bin.empty() ||
              bin.find_first_not_of("0123456789") != std::string::npos) {
            mr.fail(mr.ctx("histograms") + "." + name + ": bin '" + bin +
                    "' is not a non-negative integer");
          }
          if (count.kind != Json::Kind::kNumber || !count.is_unsigned) {
            mr.fail(mr.ctx("histograms") + "." + name + "." + bin +
                    " must be a non-negative integer");
          }
          hist.add_count(std::strtoull(bin.c_str(), nullptr, 10), count.unum);
        }
      }
    }
    mr.finish();
  }
  r.finish();
  return out;
}

}  // namespace

std::string ReportSlice::to_json() const {
  Emitter e;
  e.open_obj();
  e.str("schema", kSliceSchema);
  e.hex64("spec_hash", spec_hash);
  e.hex64("topology_hash", topology_hash);
  e.u64("begin", begin);
  e.u64("end", end);
  e.open_arr("results");
  for (std::size_t i = 0; i < results.size(); ++i) {
    emit_result(e, results[i], begin + i);
  }
  e.close_arr();
  e.hex64("checksum", fnv1a64(serialize_results(results, begin)));
  e.close_obj();
  std::string out = std::move(e).take();
  out += '\n';
  return out;
}

ReportSlice ReportSlice::from_json(const std::string& json) {
  const Json doc = sim::jsonparse::parse(json, kSlicePrefix);
  ObjReader r(doc, "slice", kSlicePrefix);
  std::string schema;
  r.get("schema", schema);
  if (schema != kSliceSchema) {
    r.fail("slice.schema: expected \"" + std::string(kSliceSchema) +
           "\", got \"" + schema + "\"");
  }
  ReportSlice s;
  std::string hex;
  r.get("spec_hash", hex);
  s.spec_hash = parse_hex64(hex, kSlicePrefix, "slice.spec_hash");
  hex.clear();
  r.get("topology_hash", hex);
  s.topology_hash = parse_hex64(hex, kSlicePrefix, "slice.topology_hash");
  r.get_u("begin", s.begin);
  r.get_u("end", s.end);
  if (s.begin > s.end) r.fail("slice.begin exceeds slice.end");
  const Json* results = r.take("results");
  if (results == nullptr || results->kind != Json::Kind::kArray) {
    r.fail("slice.results must be present and an array");
  }
  if (results->arr.size() != s.end - s.begin) {
    r.fail("slice.results holds " + std::to_string(results->arr.size()) +
           " results for range [" + std::to_string(s.begin) + ", " +
           std::to_string(s.end) + ")");
  }
  s.results.reserve(results->arr.size());
  for (std::size_t i = 0; i < results->arr.size(); ++i) {
    s.results.push_back(parse_result(results->arr[i],
                                     "slice.results[" + std::to_string(i) + "]",
                                     s.begin + i));
  }
  std::string checksum_hex;
  r.get("checksum", checksum_hex);
  const std::uint64_t declared =
      parse_hex64(checksum_hex, kSlicePrefix, "slice.checksum");
  r.finish();
  // Verify by reconstruction: re-serialize what we parsed and compare
  // fingerprints. Any value the parser accepted but that differs from
  // what the worker serialized (bit-flipped number, truncated name)
  // changes the canonical bytes and is caught here.
  const std::uint64_t actual = fnv1a64(serialize_results(s.results, s.begin));
  if (actual != declared) {
    r.fail("slice.checksum mismatch: results were altered in transit");
  }
  return s;
}

ReportSlice run_range(const CampaignSpec& spec, std::uint64_t begin,
                      std::uint64_t end, const ProgressFn& progress,
                      const TrialFn& fn) {
  const std::vector<TrialSpec> specs =
      flatten_trials(spec.scenarios, spec.base_seed);
  if (begin > end || end > specs.size()) {
    throw std::invalid_argument(
        "campaign::remote::run_range: range [" + std::to_string(begin) + ", " +
        std::to_string(end) + ") outside campaign of " +
        std::to_string(specs.size()) + " trials");
  }
  ReportSlice s;
  s.spec_hash = spec.hash();
  s.topology_hash = spec.topologies_hash();
  s.begin = begin;
  s.end = end;
  s.results.resize(end - begin);
  for (std::uint64_t i = begin; i < end; ++i) {
    if (progress) progress(i);
    TrialResult& out = s.results[i - begin];
    // Same capture semantics as Engine::run: a throwing trial is data.
    try {
      out = fn(specs[i]);
    } catch (const std::exception& e) {
      out = TrialResult{};
      out.failed = true;
      out.error = e.what();
    } catch (...) {
      out = TrialResult{};
      out.failed = true;
      out.error = "unknown exception";
    }
    // Trace buffers do not ride slices (they are not part of the JSON
    // report; shipping them would dwarf the results).
    out.traces.clear();
  }
  if (progress) progress(end);
  return s;
}

Report merge_slices(const CampaignSpec& spec,
                    const std::vector<ReportSlice>& slices) {
  constexpr const char* kPrefix = "campaign::remote::merge_slices";
  const std::uint64_t total = spec.total_trials();
  const std::uint64_t spec_hash = spec.hash();
  const std::uint64_t topo_hash = spec.topologies_hash();

  std::vector<const ReportSlice*> order;
  order.reserve(slices.size());
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const ReportSlice& s = slices[i];
    const std::string who = "slice " + std::to_string(i) + " [" +
                            std::to_string(s.begin) + ", " +
                            std::to_string(s.end) + ")";
    if (s.spec_hash != spec_hash) {
      fail(kPrefix, who + " was produced by a different campaign spec");
    }
    if (s.topology_hash != topo_hash) {
      fail(kPrefix, who + " ran different topologies than this spec");
    }
    if (s.begin > s.end || s.end > total) {
      fail(kPrefix, who + " is outside the campaign of " +
                        std::to_string(total) + " trials");
    }
    if (s.results.size() != s.end - s.begin) {
      fail(kPrefix, who + " holds " + std::to_string(s.results.size()) +
                        " results for its range");
    }
    order.push_back(&s);
  }
  // Key on (begin, end) so an empty slice sorts before the non-empty
  // one starting at the same trial and the tiling walk accepts both.
  std::sort(order.begin(), order.end(),
            [](const ReportSlice* a, const ReportSlice* b) {
              return a->begin != b->begin ? a->begin < b->begin
                                          : a->end < b->end;
            });
  std::uint64_t cur = 0;
  for (const ReportSlice* s : order) {
    if (s->begin != cur) {
      fail(kPrefix,
           s->begin > cur
               ? "trials [" + std::to_string(cur) + ", " +
                     std::to_string(s->begin) + ") are covered by no slice"
               : "slices overlap at trial " + std::to_string(s->begin));
    }
    cur = s->end;
  }
  if (cur != total) {
    fail(kPrefix, "trials [" + std::to_string(cur) + ", " +
                      std::to_string(total) + ") are covered by no slice");
  }

  Report rep;
  rep.base_seed = spec.base_seed;
  rep.results.resize(total);
  for (const ReportSlice* s : order) {
    std::copy(s->results.begin(), s->results.end(),
              rep.results.begin() + static_cast<std::ptrdiff_t>(s->begin));
  }
  // The one aggregation code path (shared with Engine::run): serial,
  // global index order, exact merges — this is where "byte-identical to
  // the single-process run" comes from.
  aggregate_report(spec.scenarios, rep);
  return rep;
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string read_file(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  if (!f) {
    throw std::runtime_error("campaign::remote: cannot read " + p.string());
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void write_file(const fs::path& p, const std::string& text) {
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  if (!f || !(f << text) || !f.flush()) {
    throw std::runtime_error("campaign::remote: cannot write " + p.string());
  }
}

std::uintmax_t file_size_or_zero(const fs::path& p) {
  std::error_code ec;
  const std::uintmax_t n = fs::file_size(p, ec);
  return ec ? 0 : n;
}

/// A trial range queued for execution, with its retry history.
struct RangeTask {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  unsigned attempt = 0;           ///< how many workers already failed it
  Clock::time_point not_before{};  ///< backoff gate for the next spawn
};

/// One live worker process and the files the dispatcher watches.
struct Child {
  pid_t pid = -1;
  RangeTask task;
  fs::path out;
  fs::path progress;
  Clock::time_point last_progress{};
  std::uintmax_t last_size = 0;
};

std::vector<RangeTask> shard_ranges(std::uint64_t total, unsigned shards) {
  std::vector<RangeTask> out;
  if (total == 0) return out;
  const std::uint64_t n = std::max<std::uint64_t>(1, shards);
  const std::uint64_t chunk = (total + n - 1) / n;
  for (std::uint64_t b = 0; b < total; b += chunk) {
    out.push_back(RangeTask{b, std::min(total, b + chunk)});
  }
  return out;
}

pid_t spawn_worker(const std::string& binary, const fs::path& spec_path,
                   const RangeTask& t, const fs::path& out,
                   const fs::path& progress) {
  std::vector<std::string> args = {binary,
                                   "--spec",
                                   spec_path.string(),
                                   "--begin",
                                   std::to_string(t.begin),
                                   "--end",
                                   std::to_string(t.end),
                                   "--out",
                                   out.string(),
                                   "--progress",
                                   progress.string()};
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    execv(binary.c_str(), argv.data());
    _exit(127);  // exec failed: surfaces as a crashed worker
  }
  return pid;  // -1 on fork failure; caller degrades to in-process
}

/// Owns the scratch directory lifetime (removed unless kept).
struct WorkDir {
  fs::path path;
  bool owned = false;
  bool keep = false;

  ~WorkDir() {
    if (owned && !keep) {
      std::error_code ec;
      fs::remove_all(path, ec);  // best effort; never throws from a dtor
    }
  }
};

}  // namespace

Dispatcher::Dispatcher(DispatcherOptions opts) : opts_(std::move(opts)) {
  workers_ = opts_.workers != 0 ? opts_.workers
                                : std::thread::hardware_concurrency();
  if (workers_ == 0) workers_ = 1;
}

Report Dispatcher::run(const CampaignSpec& spec) {
  stats_ = DispatchStats{};
  const std::uint64_t total = spec.total_trials();
  const unsigned shard_count =
      opts_.shards != 0 ? opts_.shards : workers_;
  std::vector<RangeTask> ranges = shard_ranges(total, shard_count);
  std::vector<ReportSlice> slices;
  slices.reserve(ranges.size());

  // Pure in-process mode: no worker binary configured (or an empty
  // campaign). Same slice -> merge path, no processes — this is also
  // the unit the dispatcher degrades to per-range on retry exhaustion.
  if (opts_.worker_binary.empty() || total == 0) {
    for (const RangeTask& t : ranges) {
      slices.push_back(run_range(spec, t.begin, t.end));
    }
    return merge_slices(spec, slices);
  }

  WorkDir dir;
  dir.keep = opts_.keep_work_dir;
  if (!opts_.work_dir.empty()) {
    dir.path = opts_.work_dir;
    fs::create_directories(dir.path);
  } else {
    std::string tmpl =
        (fs::temp_directory_path() / "tmu_campaign_XXXXXX").string();
    if (mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error(
          "campaign::remote::Dispatcher: cannot create work dir under " +
          fs::temp_directory_path().string());
    }
    dir.path = tmpl;
    dir.owned = true;
  }
  const fs::path spec_path = dir.path / "spec.json";
  write_file(spec_path, spec.to_json());
  const std::uint64_t spec_hash = spec.hash();

  std::deque<RangeTask> pending(ranges.begin(), ranges.end());
  std::vector<Child> running;
  std::uint64_t seq = 0;  // distinct file names across attempts

  // A failed range either re-queues with exponential backoff or, after
  // max_retries re-issues, runs in-process right here — the campaign
  // completes whatever the workers do (ultimately N=1, this process).
  const auto requeue = [&](RangeTask t) {
    ++t.attempt;
    if (t.attempt > opts_.max_retries) {
      slices.push_back(run_range(spec, t.begin, t.end));
      ++stats_.fallback_ranges;
      return;
    }
    ++stats_.reissued;
    const std::uint64_t backoff =
        opts_.retry_backoff_ms * (std::uint64_t{1} << (t.attempt - 1));
    t.not_before = Clock::now() + std::chrono::milliseconds(backoff);
    pending.push_back(t);
  };

  while (!pending.empty() || !running.empty()) {
    // Spawn phase: fill free worker slots with ready (backoff-elapsed)
    // ranges. A fork failure degrades that range to in-process.
    const Clock::time_point now = Clock::now();
    for (auto it = pending.begin();
         it != pending.end() && running.size() < workers_;) {
      if (it->not_before > now) {
        ++it;
        continue;
      }
      const RangeTask t = *it;
      it = pending.erase(it);
      ++seq;
      Child c;
      c.task = t;
      c.out = dir.path / ("slice_" + std::to_string(seq) + ".json");
      c.progress = dir.path / ("progress_" + std::to_string(seq) + ".log");
      c.pid = spawn_worker(opts_.worker_binary, spec_path, t, c.out,
                           c.progress);
      if (c.pid < 0) {
        slices.push_back(run_range(spec, t.begin, t.end));
        ++stats_.fallback_ranges;
        continue;
      }
      ++stats_.spawned;
      c.last_progress = Clock::now();
      c.last_size = 0;
      running.push_back(std::move(c));
    }

    // Poll phase: reap exits, validate their slices, enforce the
    // progress deadline on the rest.
    for (auto it = running.begin(); it != running.end();) {
      int status = 0;
      const pid_t reaped = waitpid(it->pid, &status, WNOHANG);
      if (reaped == it->pid) {
        const Child c = std::move(*it);
        it = running.erase(it);
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          // Exit 0 is a claim, not proof: the slice must parse, pass
          // its own checksum, and match the range and spec we asked
          // for. Anything less counts as a corrupt worker.
          try {
            ReportSlice s = ReportSlice::from_json(read_file(c.out));
            if (s.begin != c.task.begin || s.end != c.task.end) {
              throw std::invalid_argument("slice range mismatch");
            }
            if (s.spec_hash != spec_hash) {
              throw std::invalid_argument("slice spec mismatch");
            }
            slices.push_back(std::move(s));
            continue;
          } catch (const std::exception&) {
            ++stats_.corrupt;
            requeue(c.task);
            continue;
          }
        }
        ++stats_.crashed;
        requeue(c.task);
        continue;
      }
      // Still running: progress is the worker's heartbeat — the file
      // growing resets the deadline; silence past it means hung.
      const Clock::time_point poll_now = Clock::now();
      const std::uintmax_t size = file_size_or_zero(it->progress);
      if (size != it->last_size) {
        it->last_size = size;
        it->last_progress = poll_now;
        ++it;
        continue;
      }
      if (poll_now - it->last_progress >
          std::chrono::milliseconds(opts_.deadline_ms)) {
        kill(it->pid, SIGKILL);
        waitpid(it->pid, &status, 0);
        ++stats_.hung;
        const Child c = std::move(*it);
        it = running.erase(it);
        requeue(c.task);
        continue;
      }
      ++it;
    }

    if (!pending.empty() || !running.empty()) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts_.poll_interval_ms));
    }
  }

  return merge_slices(spec, slices);
}

}  // namespace campaign::remote
