#include <algorithm>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "campaign/campaign.hpp"
#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "snapshot/snapshot.hpp"
#include "soc/builder.hpp"
#include "tmu/tmu.hpp"
#include "trace/recorder.hpp"

namespace campaign {

namespace {

/// The elaboration desc for a trial: validates the driving manager and
/// the monitored guard, applies the spec's TMU config override and
/// per-trial capture points. With a warm-up phase the manager keeps the
/// desc's own seed — the warm-up is common across a scenario's trials
/// (that is what makes it fork-shareable) and the per-trial seed lands
/// via TrafficGenerator::reseed at the warm-up boundary.
soc::SocDesc make_trial_desc(const TrialSpec& spec) {
  soc::SocDesc d = spec.desc;
  if (d.managers.empty() ||
      d.managers.front().kind != soc::ManagerKind::kTrafficGen) {
    throw std::invalid_argument(
        "run_fault_trial: desc '" + d.name +
        "' needs a traffic_gen manager in first position to drive");
  }
  // The monitored guard is the first in visit_guards order — the first
  // root-level guard, or, when only nested levels are guarded, the
  // first guard of the first cluster depth-first.
  soc::GuardDesc* monitored = soc::first_guard(d);
  if (monitored == nullptr) {
    throw std::invalid_argument("run_fault_trial: desc '" + d.name +
                                "' declares no guard (TMU) to monitor");
  }
  if (spec.warmup_cycles == 0) d.managers.front().seed = spec.seed;
  monitored->cfg = spec.cfg;
  // Per-trial capture points ride the declarative traces mechanism, so
  // they are validated (and hash-covered) exactly like desc-native ones.
  for (const std::string& link : spec.trace_links) {
    d.traces.push_back(soc::TraceDesc{"trace." + link, link});
  }
  return d;
}

/// Applies the spec's traffic override and runs the warm-up phase (a
/// no-op for warmup_cycles == 0). This is everything a warm-up snapshot
/// captures; nothing here may depend on the per-trial seed/fault point.
void apply_traffic_and_warm(const TrialSpec& spec, soc::Soc& soc) {
  const soc::SocDesc& d = soc.desc();
  axi::TrafficGenerator& gen =
      soc.get<axi::TrafficGenerator>(d.managers.front().name);
  // spec.traffic drives the trial; a default (disabled) spec must not
  // clobber the traffic mode a custom desc configured for its manager.
  if (spec.traffic.enabled || !d.managers.front().traffic.enabled) {
    gen.set_random(spec.traffic);
  }
  if (spec.warmup_cycles > 0) soc.sim().run(spec.warmup_cycles);
}

/// The warm-up sharing key: the spec with every per-trial field
/// neutralized. Two specs with equal keys run the identical warm-up
/// phase on the identical netlist, so one snapshot serves both.
TrialSpec warmup_key_of(const TrialSpec& spec) {
  TrialSpec key = spec;
  key.seed = 0;
  key.point = fault::FaultPoint::kNone;
  key.inject_delay_max = 0;
  key.detect_budget = 0;
  key.soak_cycles = 0;
  key.max_cycles = 0;
  key.exercise_recovery = false;
  return key;
}

}  // namespace

TrialResult run_fault_trial(const TrialSpec& spec) {
  // Private netlist per trial, elaborated from the spec's topology desc
  // (default: the Fig. 8/9 IP-level testbench). Nothing escapes this
  // stack frame, so trials are safe on any worker thread.
  const soc::SocDesc d = make_trial_desc(spec);
  const std::unique_ptr<soc::Soc> soc = soc::SocBuilder::build(d);
  apply_traffic_and_warm(spec, *soc);
  return finish_fault_trial(spec, *soc);
}

TrialResult finish_fault_trial(const TrialSpec& spec, soc::Soc& soc) {
  soc::SocDesc d = soc.desc();
  sim::Simulator& s = soc.sim();
  axi::TrafficGenerator& gen =
      soc.get<axi::TrafficGenerator>(d.managers.front().name);
  const soc::GuardDesc& guard = *soc::first_guard(d);
  tmu::Tmu& t = soc.get<tmu::Tmu>(guard.name);
  // The warm-up boundary: the per-trial seed takes over from here, so
  // everything after this line is a function of (snapshot state, spec
  // seed, fault point) — identical whether the state was warmed in
  // place or restored from a fork.
  if (spec.warmup_cycles > 0) gen.reseed(spec.seed);

  TrialResult r;

  // Hung-trial watchdog: a hard ceiling on total cycles simulated, so a
  // never-detecting trial (e.g. a disabled TMU under an absurd
  // detect_budget) terminates with a named result instead of looping.
  // The derived default covers everything the budgeted phases can
  // legitimately use, so well-budgeted trials are never clipped; sums
  // saturate so deliberately huge budgets still yield a finite ceiling.
  // Budgets count from the warm-up boundary (s.cycle() == 0 without a
  // warm-up phase, so this is the historical behaviour for cold trials).
  constexpr std::uint64_t kRecoveryBudget = 2000;
  const auto sat_add = [](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t sum = a + b;
    return sum < a ? ~std::uint64_t{0} : sum;
  };
  std::uint64_t ceiling = spec.max_cycles;
  if (ceiling == 0) {
    ceiling = spec.point == fault::FaultPoint::kNone
                  ? spec.soak_cycles
                  : sat_add(spec.inject_delay_max, spec.detect_budget);
    if (spec.exercise_recovery) ceiling = sat_add(ceiling, 2 * kRecoveryBudget);
  }
  ceiling = sat_add(ceiling, s.cycle());
  // Cycles the watchdog still allows for the next phase.
  const auto capped = [&](std::uint64_t want) {
    const std::uint64_t left = ceiling > s.cycle() ? ceiling - s.cycle() : 0;
    return std::min(want, left);
  };

  if (spec.point == fault::FaultPoint::kNone) {
    // Healthy soak: any flag is a false positive.
    const std::uint64_t budget = capped(spec.soak_cycles);
    s.run(budget);
    r.timed_out = budget < spec.soak_cycles;
    r.detected = t.any_fault();
    if (r.detected) r.detect_cycle = t.fault_log().front().cycle;
  } else {
    const bool mgr_side = fault::is_manager_side(spec.point);
    const std::string& inj_name =
        mgr_side ? guard.mgr_injector : guard.sub_injector;
    if (inj_name.empty()) {
      throw std::invalid_argument(
          std::string("run_fault_trial: fault point ") +
          to_string(spec.point) + " needs a " +
          (mgr_side ? "mgr_injector" : "sub_injector") + " on guard '" +
          guard.name + "' of desc '" + d.name + "'");
    }
    fault::FaultInjector& inj = soc.get<fault::FaultInjector>(inj_name);

    // Decorrelate the injection-delay draw from the traffic stream.
    sim::Rng rng(spec.seed ^ 0xD1B54A32D192ED03ull);
    r.inject_delay =
        spec.inject_delay_max != 0 ? rng.range(0, spec.inject_delay_max) : 0;
    inj.arm(spec.point, r.inject_delay);
    const std::uint64_t want = sat_add(r.inject_delay, spec.detect_budget);
    const std::uint64_t budget = capped(want);
    if (s.run_until([&] { return t.any_fault(); }, budget)) {
      r.detected = true;
      r.detect_cycle = t.fault_log().front().cycle;
      r.latency = r.detect_cycle - inj.fault_start_cycle();
    } else {
      // Only a watchdog-clipped miss is a timeout; an unclipped miss is
      // the ordinary "not detected within budget" outcome.
      r.timed_out = budget < want;
    }
    if (r.detected && spec.exercise_recovery) {
      inj.disarm();
      const std::uint64_t rb = capped(kRecoveryBudget);
      r.recovered = s.run_until([&] { return t.recoveries() >= 1; }, rb);
      if (!r.recovered && rb < kRecoveryBudget) r.timed_out = true;
      const auto before = gen.completed();
      const std::uint64_t tb = capped(kRecoveryBudget);
      r.traffic_resumed =
          s.run_until([&] { return gen.completed() > before; }, tb);
      if (!r.traffic_resumed && tb < kRecoveryBudget) r.timed_out = true;
    }
  }

  r.cycles_run = s.cycle();
  r.eval_passes = s.eval_passes();
  r.completed_txns = gen.completed();
  r.data_mismatches = gen.data_mismatches();
  r.error_responses = gen.error_responses();

  // Observability: the netlist's probe metrics plus the scheduler
  // profile, bridged into the snapshot under "sched.*" (obs does not
  // know the scheduler and vice versa; the trial is the seam). Zero-eval
  // modules are elided so grid-sized reports stay proportional to
  // activity.
  r.metrics = soc.metrics().snapshot();
  const sim::sched::SchedProfile prof = s.sched_profile();
  for (const auto& mp : prof.modules) {
    if (mp.evals != 0) {
      r.metrics.counters["sched." + mp.name + ".evals"] += mp.evals;
    }
    if (mp.sensitivity_misses != 0) {
      r.metrics.counters["sched." + mp.name + ".sensitivity_misses"] +=
          mp.sensitivity_misses;
    }
  }
  r.metrics.histograms["sched.dirty_depth"].merge(prof.dirty_depth);

  // Captured streams, desc order (desc-native traces first, then the
  // spec's trace_links — exactly the order appended above).
  for (const soc::TraceDesc& td : d.traces) {
    r.traces.push_back(soc.get<trace::Recorder>(td.name).take());
  }
  return r;
}

TrialFn make_forking_trial_fn() {
  struct Cache {
    struct Entry {
      TrialSpec key;
      std::shared_future<std::shared_ptr<const snapshot::Snapshot>> snap;
    };
    std::mutex mu;
    std::vector<Entry> entries;  // few groups; structural-compare lookup
  };
  auto cache = std::make_shared<Cache>();
  return [cache](const TrialSpec& spec) -> TrialResult {
    if (spec.warmup_cycles == 0) return run_fault_trial(spec);

    const TrialSpec key = warmup_key_of(spec);
    std::promise<std::shared_ptr<const snapshot::Snapshot>> mine;
    std::shared_future<std::shared_ptr<const snapshot::Snapshot>> fut;
    bool producer = false;
    {
      std::lock_guard<std::mutex> lock(cache->mu);
      for (const Cache::Entry& e : cache->entries) {
        if (e.key == key) {
          fut = e.snap;
          break;
        }
      }
      if (!fut.valid()) {
        fut = mine.get_future().share();
        cache->entries.push_back(Cache::Entry{key, fut});
        producer = true;
      }
    }
    if (producer) {
      // Run the shared warm-up outside the lock; waiters block on the
      // future. A warm-up failure is delivered to every trial of the
      // group — the same exception the cold path would throw per trial.
      try {
        const soc::SocDesc d = make_trial_desc(key);
        const std::unique_ptr<soc::Soc> warm = soc::SocBuilder::build(d);
        apply_traffic_and_warm(key, *warm);
        mine.set_value(
            std::make_shared<const snapshot::Snapshot>(snapshot::capture(*warm)));
      } catch (...) {
        mine.set_exception(std::current_exception());
      }
    }
    const std::shared_ptr<const snapshot::Snapshot> snap = fut.get();
    // Fork: fresh netlist from the same desc, warmed state restored in.
    // make_trial_desc(spec) == make_trial_desc(key): with a warm-up
    // phase the desc carries no per-trial field.
    const std::unique_ptr<soc::Soc> soc =
        snapshot::fork(*snap, make_trial_desc(spec));
    return finish_fault_trial(spec, *soc);
  };
}

}  // namespace campaign
