#include "campaign/campaign.hpp"

#include "axi/link.hpp"
#include "axi/memory.hpp"
#include "sim/kernel.hpp"
#include "sim/random.hpp"
#include "soc/reset_unit.hpp"
#include "tmu/tmu.hpp"

namespace campaign {

TrialResult run_fault_trial(const TrialSpec& spec) {
  // Private netlist per trial: the Fig. 8/9 IP-level testbench. Nothing
  // escapes this stack frame, so trials are safe on any worker thread.
  axi::Link l_gen, l_tmu_mst, l_tmu_sub, l_mem;
  axi::TrafficGenerator gen("gen", l_gen, spec.seed);
  fault::FaultInjector inj_m("inj_m", l_gen, l_tmu_mst);
  tmu::Tmu t("tmu", l_tmu_mst, l_tmu_sub, spec.cfg);
  fault::FaultInjector inj_s("inj_s", l_tmu_sub, l_mem);
  axi::MemorySubordinate mem("mem", l_mem);
  soc::ResetUnit rst("rst", t.reset_req, t.reset_ack, [&] { mem.hw_reset(); });
  sim::Simulator s;
  s.add(gen);
  s.add(inj_m);
  s.add(t);
  s.add(inj_s);
  s.add(mem);
  s.add(rst);
  s.reset();
  gen.set_random(spec.traffic);

  TrialResult r;

  if (spec.point == fault::FaultPoint::kNone) {
    // Healthy soak: any flag is a false positive.
    s.run(spec.soak_cycles);
    r.detected = t.any_fault();
    if (r.detected) r.detect_cycle = t.fault_log().front().cycle;
  } else {
    // Decorrelate the injection-delay draw from the traffic stream.
    sim::Rng rng(spec.seed ^ 0xD1B54A32D192ED03ull);
    r.inject_delay =
        spec.inject_delay_max != 0 ? rng.range(0, spec.inject_delay_max) : 0;
    fault::FaultInjector& inj =
        fault::is_manager_side(spec.point) ? inj_m : inj_s;
    inj.arm(spec.point, r.inject_delay);
    if (s.run_until([&] { return t.any_fault(); },
                    r.inject_delay + spec.detect_budget)) {
      r.detected = true;
      r.detect_cycle = t.fault_log().front().cycle;
      r.latency = r.detect_cycle - inj.fault_start_cycle();
    }
    if (r.detected && spec.exercise_recovery) {
      inj.disarm();
      r.recovered = s.run_until([&] { return t.recoveries() >= 1; }, 2000);
      const auto before = gen.completed();
      r.traffic_resumed =
          s.run_until([&] { return gen.completed() > before; }, 2000);
    }
  }

  r.cycles_run = s.cycle();
  r.eval_passes = s.eval_passes();
  r.completed_txns = gen.completed();
  r.data_mismatches = gen.data_mismatches();
  r.error_responses = gen.error_responses();
  return r;
}

}  // namespace campaign
