#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"
#include "soc/builder.hpp"
#include "soc/topologies.hpp"
#include "tmu/config.hpp"
#include "trace/format.hpp"

/// Parallel Monte-Carlo fault-campaign engine (§III-A.3: "injecting
/// random failures at key AXI transaction stages"). A campaign is a list
/// of scenarios, each holding independent TrialSpecs; the Engine shards
/// trials across a worker pool and aggregates results deterministically:
/// a report for a fixed base seed is byte-identical for 1 or N threads.
///
/// Parallelism is safe because every trial builds its own netlist and
/// Simulator, and the kernel's settled-state cache keys off a
/// per-Simulator change-epoch context (sim/context.hpp) — no shared
/// mutable state between workers.
namespace campaign {

/// One independent Monte-Carlo trial. `point == kNone` is a healthy
/// soak (no fault armed; any flag is a false positive).
struct TrialSpec {
  /// Topology the trial runs on, rebuilt per trial through SocBuilder
  /// (serializable, so a remote shard can reconstruct the exact
  /// netlist). Defaults to the Fig. 8/9 IP-level testbench. The trial
  /// drives the first manager (a traffic_gen) and monitors the first
  /// guard in soc::visit_guards order (root guards first, then nested
  /// cluster levels depth-first); `cfg` below overrides that guard's
  /// TMU config, the
  /// engine-derived `seed` overrides that manager's seed, and an
  /// enabled `traffic` overrides that manager's traffic mode (a
  /// disabled one keeps whatever the desc configured), so one topology
  /// serves a whole config sweep.
  soc::SocDesc desc = soc::ip_testbench_desc();
  tmu::TmuConfig cfg;
  fault::FaultPoint point = fault::FaultPoint::kNone;
  axi::RandomTrafficConfig traffic;
  /// Per-trial RNG seed; 0 means the Engine derives one from its base
  /// seed and the trial's global index (deterministic, schedule-free).
  std::uint64_t seed = 0;
  std::uint64_t inject_delay_max = 500;  ///< injection delay drawn in [0, max]
  std::uint64_t detect_budget = 4000;    ///< cycles after injection delay
  std::uint64_t soak_cycles = 10000;     ///< run length for healthy trials
  /// Fault-free warm-up phase run before the fault window opens (cycles
  /// of traffic with the DESC's own manager seed — not the per-trial
  /// seed, so the warm-up is common to every trial of a scenario). After
  /// warm-up the driven manager is reseeded with the trial seed and the
  /// fault is armed; budgets below count from the warm-up boundary. The
  /// engine's snapshot-fork path (make_forking_trial_fn) runs the
  /// warm-up once per distinct (desc, cfg, traffic, trace_links,
  /// warmup_cycles) group and forks every trial from the captured state
  /// — byte-identical to cold-starting each trial, just cheaper.
  std::uint64_t warmup_cycles = 0;
  /// Hard watchdog ceiling on cycles simulated past the warm-up
  /// boundary; 0
  /// derives it from the budgets above (saturating, so a deliberately
  /// huge detect_budget still gets a finite ceiling). A trial clipped by
  /// the ceiling terminates with TrialResult::timed_out set instead of
  /// looping. The derived default is never smaller than what the
  /// budgeted phases can legitimately use, so it does not perturb
  /// well-budgeted trials.
  std::uint64_t max_cycles = 0;
  bool exercise_recovery = false;        ///< after detection: disarm, recover
  /// Extra links to capture during the trial (builder link names, e.g.
  /// "gen.out"). Each becomes a declarative TraceDesc named
  /// "trace.<link>" appended to the desc's own `traces`; the captured
  /// streams come back in TrialResult::traces (desc traces first, then
  /// these, in order).
  std::vector<std::string> trace_links;

  /// Structural equality — what campaign-spec serialization (see
  /// remote.hpp) round-trips and run-length-encodes on.
  bool operator==(const TrialSpec&) const = default;
};

struct TrialResult {
  bool detected = false;
  bool recovered = false;        ///< only with exercise_recovery
  bool traffic_resumed = false;  ///< only with exercise_recovery
  /// The trial body threw (e.g. an elaboration error or a convergence
  /// failure): the campaign records it here — deterministically, in the
  /// trial's own result slot — and keeps going instead of aborting.
  bool failed = false;
  std::string error;  ///< exception message when failed
  /// The watchdog ceiling (TrialSpec::max_cycles) clipped the trial
  /// before its predicate was met — a named result for never-detecting
  /// trials instead of an unbounded loop.
  bool timed_out = false;
  std::uint64_t inject_delay = 0;
  std::uint64_t detect_cycle = 0;
  std::uint64_t latency = 0;  ///< fault onset -> detection
  std::uint64_t cycles_run = 0;
  std::uint64_t eval_passes = 0;
  std::uint64_t completed_txns = 0;
  std::uint64_t data_mismatches = 0;
  std::uint64_t error_responses = 0;
  /// The trial netlist's observability snapshot: every declarative
  /// probe's metrics (desc.probes) plus the scheduler profile
  /// ("sched.<module>.evals" counters, "sched.dirty_depth" histogram).
  /// Merged index-order into the scenario summaries, so the report
  /// carries per-link latency distributions for free.
  obs::MetricsSnapshot metrics;
  /// Captured AXI streams, one per desc trace + spec trace_link (in that
  /// order): replayable via trace::TraceTrafficGen or exportable with
  /// trace::export_chrome_json. Not part of the JSON report.
  std::vector<trace::TraceBuffer> traces;
};

using TrialFn = std::function<TrialResult(const TrialSpec&)>;

/// Standard fault trial: elaborates spec.desc through SocBuilder (by
/// default the Fig. 8/9 testbench: traffic gen -> manager-side injector
/// -> TMU -> subordinate-side injector -> memory, with the external
/// reset unit), drives the first manager and injects at the first
/// guard. Builds a private netlist, so it is safe to run on any worker
/// thread. Throws std::invalid_argument if the desc lacks a leading
/// traffic_gen manager, a guard, or the injector the fault point needs.
TrialResult run_fault_trial(const TrialSpec& spec);

/// The post-warm-up body of run_fault_trial, entered on a netlist that
/// already carries the trial desc's warmed state (either freshly warmed
/// in place or restored from a snapshot::Snapshot fork). Reseeds the
/// driven manager with spec.seed when the spec has a warm-up phase, then
/// arms/runs/collects exactly as the cold path does.
TrialResult finish_fault_trial(const TrialSpec& spec, soc::Soc& soc);

/// A TrialFn equivalent to run_fault_trial that amortizes warm-up
/// across trials: the first trial of each warm-up group (same desc, TMU
/// config, traffic, trace links and warmup_cycles — per-trial seed and
/// fault point excluded) runs the warm-up once and captures a
/// snapshot::Snapshot; every other trial of the group forks from it.
/// Thread-safe (workers arriving while the warm-up runs block on its
/// shared future); results are byte-identical to run_fault_trial for
/// every spec. Trials without a warm-up phase pass straight through.
TrialFn make_forking_trial_fn();

/// A labelled group of trials (e.g. one variant x fault-point pair).
struct Scenario {
  std::string label;
  std::vector<TrialSpec> trials;

  bool operator==(const Scenario&) const = default;
};

/// Convenience: n identical trials under `label` (seeds left 0 so the
/// Engine derives a distinct deterministic seed per trial).
Scenario make_scenario(std::string label, const TrialSpec& proto,
                       std::size_t n);

struct ScenarioSummary {
  std::string label;
  /// Topology fingerprint of the scenario's trials (name/hash of the
  /// first trial's desc; "mixed"/0 when trials disagree) — so a report
  /// merged from remote shards still says what each slice ran on.
  std::string topology;
  std::uint64_t topology_hash = 0;
  std::uint64_t trials = 0;
  std::uint64_t detected = 0;
  std::uint64_t recovered = 0;
  std::uint64_t traffic_resumed = 0;
  std::uint64_t false_positives = 0;  ///< healthy trials that flagged
  std::uint64_t failed_trials = 0;    ///< trials whose body threw
  std::uint64_t timed_out = 0;        ///< trials clipped by the watchdog
  std::uint64_t total_cycles = 0;
  std::uint64_t total_eval_passes = 0;
  sim::RunningStats latency;   ///< detection latency across detected trials
  sim::Histogram latency_hist;
  /// Exact merge of the scenario trials' metrics snapshots, in global
  /// trial-index order — deterministic at any thread count.
  obs::MetricsSnapshot metrics;
};

struct Report {
  std::uint64_t base_seed = 0;
  std::vector<ScenarioSummary> scenarios;
  /// Campaign-wide pooled summary, combined from the per-scenario
  /// summaries in scenario order via RunningStats::merge /
  /// Histogram::merge (exact, so still deterministic).
  ScenarioSummary overall;
  /// Flat per-trial results in global trial-index order (deterministic).
  std::vector<TrialResult> results;

  // Environment/timing info — excluded from to_json() so reports are
  // byte-identical across thread counts and machine speeds.
  unsigned threads_used = 0;
  double wall_seconds = 0.0;

  std::uint64_t total_trials() const { return results.size(); }
  std::uint64_t total_cycles() const;

  /// Deterministic JSON (schema tmu-campaign-report-v3; see README).
  std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;
};

/// The deterministic per-trial seed for global trial index `index`
/// under `base_seed` (SplitMix64-style mixing; schedule-free). Every
/// execution path — the in-process Engine, a remote campaign_worker
/// owning an arbitrary trial range, the dispatcher's in-process
/// fallback — derives seeds through this one function, which is what
/// makes any shard split reproduce the same trials.
std::uint64_t derive_trial_seed(std::uint64_t base_seed, std::uint64_t index);

/// Flattens scenarios into the global trial list (the determinism key:
/// seed derivation, result slots, and aggregation order all depend only
/// on the global index) and fills in derived seeds where spec.seed == 0.
std::vector<TrialSpec> flatten_trials(const std::vector<Scenario>& scenarios,
                                      std::uint64_t base_seed);

/// Rebuilds rep.scenarios and rep.overall from rep.results (which must
/// hold one result per flattened trial, in global index order). Serial,
/// fixed iteration order, exact merges — so the aggregate views are
/// bit-identical however the results were produced: one thread, a pool,
/// or remote slices merged back together (remote::merge_slices and
/// Engine::run share this exact code path).
void aggregate_report(const std::vector<Scenario>& scenarios, Report& rep);

struct EngineOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  unsigned threads = 0;
  /// Base seed for deriving per-trial seeds where TrialSpec.seed == 0.
  std::uint64_t base_seed = 0xC0FFEEull;
  /// Amortize TrialSpec::warmup_cycles across trials by snapshot-forking
  /// (see make_forking_trial_fn). Only applies when run() is called
  /// without an explicit TrialFn; reports are byte-identical either way,
  /// so this is purely a throughput switch.
  bool snapshot_fork = true;
};

/// Thread-pool-sharded campaign runner. Workers pull trial indices from
/// a shared atomic cursor (good load balance for variable-length
/// trials); each result is keyed by its trial index and aggregation runs
/// serially in index order afterwards, so the Report — including every
/// floating-point statistic — is bit-identical regardless of thread
/// count or schedule.
class Engine {
 public:
  explicit Engine(EngineOptions opts = {});

  /// Effective worker count after resolving threads == 0.
  unsigned threads() const { return threads_; }

  /// Runs the campaign. An empty `fn` (the default) means the standard
  /// fault trial, with warm-up snapshot-forking when
  /// EngineOptions::snapshot_fork is set; passing a TrialFn explicitly
  /// (including run_fault_trial itself) runs it as-is, cold.
  Report run(const std::vector<Scenario>& scenarios,
             const TrialFn& fn = {}) const;

 private:
  EngineOptions opts_;
  unsigned threads_;
};

}  // namespace campaign
