#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

/// Multi-process campaign scale-out (the ROADMAP's "cluster scale" item):
/// a campaign serialized as data, workers that own arbitrary trial
/// ranges, and a dispatcher that survives crashed, hung, or
/// garbage-emitting workers — with the same determinism guarantee the
/// in-process Engine has. The contract, end to end:
///
///   CampaignSpec --to_json--> spec file --campaign_worker--> slice files
///        |                                                      |
///        +------------------ merge_slices <--------------------+
///
/// and the merged Report is byte-identical to campaign::Engine run on
/// the same spec, for ANY shard split and ANY failure/retry history.
/// Three pieces make that hold: (1) per-trial seeds derive from
/// (base_seed, global trial index) only — campaign::derive_trial_seed —
/// so any worker reproduces any trial; (2) slices carry full-precision
/// trial results (every double as %.17g, RunningStats as raw internal
/// state), so nothing is lost in transport; (3) aggregation runs once,
/// serially, in trial-index order over the reassembled results — the
/// same campaign::aggregate_report the Engine uses.
namespace campaign::remote {

/// Schema tag of spec documents (see README "Distributed campaigns").
inline constexpr const char* kSpecSchema = "tmu-campaign-spec-v1";
/// Schema tag of partial-report slice documents.
inline constexpr const char* kSliceSchema = "tmu-campaign-slice-v1";

/// A complete campaign as data: everything a remote worker needs to own
/// any trial range. Serializes canonically — equal specs produce
/// byte-identical documents — with two size reducers that keep
/// million-trial specs practical: topologies are emitted once into a
/// table (trials reference by index) and consecutive identical trials
/// run-length encode into one entry with a count.
struct CampaignSpec {
  std::uint64_t base_seed = 0xC0FFEEull;
  std::vector<Scenario> scenarios;

  bool operator==(const CampaignSpec&) const = default;

  std::uint64_t total_trials() const;

  /// Canonical strict JSON (schema tmu-campaign-spec-v1).
  std::string to_json() const;

  /// Parses a to_json() document. Unknown keys, type mismatches, bad
  /// enum names, out-of-range topology references and schema mismatches
  /// all throw std::invalid_argument naming the offending key.
  static CampaignSpec from_json(const std::string& json);

  /// FNV-1a 64 over the canonical JSON: the campaign fingerprint every
  /// slice records, so the merger can prove a slice ran this exact
  /// campaign (topologies, configs, seeds, trial order — everything).
  std::uint64_t hash() const;

  /// Fingerprint of just the topology table (FNV-1a over the ordered
  /// per-desc hashes): the "did every slice run the same netlists"
  /// check, recorded separately so a topology mismatch is
  /// distinguishable from any other spec drift.
  std::uint64_t topologies_hash() const;
};

/// A partial schema-v3 report: full-precision results for the trial
/// range [begin, end) of a spec, plus the provenance the merger
/// validates — which spec (spec_hash), which netlists (topology_hash),
/// which trials (begin/end, and each result indexed), and a checksum
/// over the canonical serialization of the results themselves.
struct ReportSlice {
  std::uint64_t spec_hash = 0;
  std::uint64_t topology_hash = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  /// results[i] is global trial begin + i. TrialResult::traces are not
  /// part of the slice (trace buffers ship separately if at all).
  std::vector<TrialResult> results;

  /// Canonical JSON (schema tmu-campaign-slice-v1), checksum included.
  std::string to_json() const;

  /// Parses and verifies a to_json() document: malformed JSON, schema
  /// mismatch, a range/result-count disagreement or a checksum mismatch
  /// throw std::invalid_argument. A slice that parses is internally
  /// consistent; merge_slices then checks it against the spec.
  static ReportSlice from_json(const std::string& json);
};

/// Called with the global index of the trial about to run (and once
/// with `end` after the last trial) — the worker's heartbeat hook.
using ProgressFn = std::function<void(std::uint64_t next_index)>;

/// Runs trials [begin, end) of the flattened spec in this process (the
/// campaign_worker binary's core, and the dispatcher's in-process
/// fallback). Trial failures are captured per-trial exactly like the
/// Engine does it. Throws std::invalid_argument on an invalid range.
ReportSlice run_range(const CampaignSpec& spec, std::uint64_t begin,
                      std::uint64_t end, const ProgressFn& progress = {},
                      const TrialFn& fn = run_fault_trial);

/// Index-order merge of slices back into a full report. Validates that
/// the slices exactly tile [0, spec.total_trials()) with no overlap,
/// that every slice carries this spec's spec_hash and topology_hash,
/// and that result counts match ranges; throws std::invalid_argument
/// naming the first violation. The returned report is byte-identical
/// (Report::to_json) to campaign::Engine({n, spec.base_seed}) on the
/// same scenarios, for any n and any shard split.
Report merge_slices(const CampaignSpec& spec,
                    const std::vector<ReportSlice>& slices);

struct DispatcherOptions {
  /// Worker binary (the campaign_worker CLI). Empty = in-process
  /// fallback: every range runs via run_range in this process, through
  /// the same slice/merge path.
  std::string worker_binary;
  /// Concurrent worker processes; 0 = hardware concurrency (min 1).
  unsigned workers = 0;
  /// Contiguous ranges to split the campaign into; 0 = worker count.
  unsigned shards = 0;
  /// Scratch directory for spec/slice/progress files; empty = a fresh
  /// directory under the system temp dir, removed afterwards.
  std::string work_dir;
  /// A worker that makes no progress (its progress file stops growing)
  /// for this long is killed and its range re-issued.
  std::uint64_t deadline_ms = 30000;
  std::uint64_t poll_interval_ms = 20;
  /// Re-issues per range before degrading to in-process execution. The
  /// dispatcher never aborts the campaign on worker failure: a range
  /// that exhausts its retries falls back to run_range in-process.
  unsigned max_retries = 2;
  /// First re-issue delay; doubles per subsequent retry of that range.
  std::uint64_t retry_backoff_ms = 50;
  bool keep_work_dir = false;  ///< leave spec/slice files for inspection
};

/// What happened operationally (never part of the report: the merged
/// report is byte-identical whatever this says).
struct DispatchStats {
  std::uint64_t spawned = 0;    ///< worker processes forked
  std::uint64_t crashed = 0;    ///< exited nonzero or by signal
  std::uint64_t hung = 0;       ///< killed by the progress deadline
  std::uint64_t corrupt = 0;    ///< exit 0 but unusable slice
  std::uint64_t reissued = 0;   ///< range re-issues (all causes)
  std::uint64_t fallback_ranges = 0;  ///< ranges degraded to in-process
};

/// Fault-tolerant multi-process campaign runner: forks up to
/// `workers` campaign_worker processes over `shards` contiguous trial
/// ranges, watches per-range progress against a deadline, and survives
/// crashed, hung, and garbage-emitting workers by bounded re-issue with
/// backoff — degrading to in-process execution (ultimately N=1) rather
/// than aborting. Failure handling never changes the report: every
/// recovery path re-produces the exact same trials.
///
/// Workers inherit the environment, including the fault-injection
/// hooks the worker binary honours (TMU_WORKER_FAIL / _TOKEN — see
/// tools/campaign_worker.cpp), which is how the dispatcher's recovery
/// paths are tested and CI-gated.
class Dispatcher {
 public:
  explicit Dispatcher(DispatcherOptions opts = {});

  /// Runs the whole campaign and returns the merged report. Throws
  /// std::runtime_error only for environmental failures (work dir or
  /// spec file unwritable, fork impossible AND in-process fallback
  /// disabled by an invalid spec) — never for worker failures.
  Report run(const CampaignSpec& spec);

  const DispatchStats& stats() const { return stats_; }
  unsigned workers() const { return workers_; }

 private:
  DispatcherOptions opts_;
  unsigned workers_;
  DispatchStats stats_;
};

}  // namespace campaign::remote
