#include "campaign/campaign.hpp"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <fstream>
#include <thread>

#include "sim/jsonfmt.hpp"

namespace campaign {

namespace {

using sim::jsonfmt::append_f;
using sim::jsonfmt::json_escape;

/// SplitMix64 finalizer: decorrelates (base_seed, trial index) pairs so
/// neighbouring trials get unrelated RNG streams.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t derive_trial_seed(std::uint64_t base_seed, std::uint64_t index) {
  return mix64(base_seed ^ mix64(index));
}

std::vector<TrialSpec> flatten_trials(const std::vector<Scenario>& scenarios,
                                      std::uint64_t base_seed) {
  std::vector<TrialSpec> specs;
  for (const Scenario& sc : scenarios) {
    specs.insert(specs.end(), sc.trials.begin(), sc.trials.end());
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].seed == 0) {
      specs[i].seed = derive_trial_seed(base_seed, i);
    }
  }
  return specs;
}

Scenario make_scenario(std::string label, const TrialSpec& proto,
                       std::size_t n) {
  Scenario sc;
  sc.label = std::move(label);
  sc.trials.assign(n, proto);
  return sc;
}

std::uint64_t Report::total_cycles() const {
  std::uint64_t t = 0;
  for (const auto& r : results) t += r.cycles_run;
  return t;
}

namespace {

void append_summary_fields(std::string& out, const ScenarioSummary& sc,
                           const char* indent) {
  // Label is concatenated, not printf'd: it is caller-supplied and may
  // exceed the fixed format buffer.
  append_f(out, "%s\"label\": \"", indent);
  out += json_escape(sc.label);
  out += "\",\n";
  append_f(out, "%s\"topology\": \"", indent);
  out += json_escape(sc.topology);
  out += "\",\n";
  // Hex string: JSON numbers are doubles downstream, the hash is 64-bit.
  append_f(out, "%s\"topology_hash\": \"%016" PRIx64 "\",\n", indent,
           sc.topology_hash);
  append_f(out, "%s\"trials\": %" PRIu64 ",\n", indent, sc.trials);
  append_f(out, "%s\"detected\": %" PRIu64 ",\n", indent, sc.detected);
  append_f(out, "%s\"recovered\": %" PRIu64 ",\n", indent, sc.recovered);
  append_f(out, "%s\"traffic_resumed\": %" PRIu64 ",\n", indent,
           sc.traffic_resumed);
  append_f(out, "%s\"false_positives\": %" PRIu64 ",\n", indent,
           sc.false_positives);
  append_f(out, "%s\"failed_trials\": %" PRIu64 ",\n", indent,
           sc.failed_trials);
  append_f(out, "%s\"timed_out\": %" PRIu64 ",\n", indent, sc.timed_out);
  append_f(out, "%s\"total_cycles\": %" PRIu64 ",\n", indent,
           sc.total_cycles);
  append_f(out, "%s\"total_eval_passes\": %" PRIu64 ",\n", indent,
           sc.total_eval_passes);
  append_f(out, "%s\"latency\": {", indent);
  append_f(out, "\"count\": %" PRIu64 ", ", sc.latency.count());
  append_f(out, "\"mean\": %.6f, ", sc.latency.mean());
  append_f(out, "\"stddev\": %.6f, ", sc.latency.stddev());
  append_f(out, "\"min\": %.0f, ", sc.latency.min());
  append_f(out, "\"max\": %.0f, ", sc.latency.max());
  append_f(out, "\"p50\": %" PRIu64 ", ", sc.latency_hist.percentile(0.50));
  append_f(out, "\"p99\": %" PRIu64 "},\n", sc.latency_hist.percentile(0.99));
  append_f(out, "%s\"metrics\": {\n", indent);
  sc.metrics.append_json(out, std::string(indent) + "  ");
  append_f(out, "\n%s}\n", indent);
}

}  // namespace

std::string Report::to_json() const {
  std::string out;
  out += "{\n";
  append_f(out, "  \"schema\": \"tmu-campaign-report-v3\",\n");
  append_f(out, "  \"base_seed\": %" PRIu64 ",\n", base_seed);
  append_f(out, "  \"total_trials\": %" PRIu64 ",\n", total_trials());
  append_f(out, "  \"total_cycles\": %" PRIu64 ",\n", total_cycles());
  out += "  \"overall\": {\n";
  append_summary_fields(out, overall, "    ");
  out += "  },\n";
  out += "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    out += "    {\n";
    append_summary_fields(out, scenarios[i], "      ");
    out += (i + 1 < scenarios.size()) ? "    },\n" : "    }\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool Report::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_json();
  return static_cast<bool>(f);
}

Engine::Engine(EngineOptions opts) : opts_(opts) {
  threads_ = opts_.threads != 0 ? opts_.threads
                                : std::thread::hardware_concurrency();
  if (threads_ == 0) threads_ = 1;
}

Report Engine::run(const std::vector<Scenario>& scenarios,
                   const TrialFn& fn) const {
  // Empty fn = the standard fault trial; snapshot_fork chooses between
  // the warm-up-amortizing runner and the cold one. The fork cache lives
  // in this TrialFn, so it is scoped to this run() call.
  const TrialFn body =
      fn ? fn
         : (opts_.snapshot_fork ? make_forking_trial_fn()
                                : TrialFn(run_fault_trial));
  const std::vector<TrialSpec> specs =
      flatten_trials(scenarios, opts_.base_seed);

  Report rep;
  rep.base_seed = opts_.base_seed;
  rep.results.resize(specs.size());
  rep.threads_used = threads_;

  const auto t0 = std::chrono::steady_clock::now();

  // Work-stealing-free sharding: an atomic cursor hands out trial
  // indices; results land in their own slots, so no two workers ever
  // touch the same data and the outcome is schedule-independent.
  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) return;
      try {
        rep.results[i] = body(specs[i]);
      } catch (const std::exception& e) {
        // A throwing trial is data, not a campaign abort: the failure
        // lands in the trial's own result slot (deterministic at any
        // thread count) and the remaining trials keep running. The
        // scenario summary surfaces it as failed_trials.
        rep.results[i] = TrialResult{};
        rep.results[i].failed = true;
        rep.results[i].error = e.what();
      } catch (...) {
        rep.results[i] = TrialResult{};
        rep.results[i].failed = true;
        rep.results[i].error = "unknown exception";
      }
    }
  };

  if (threads_ <= 1) {
    worker();  // serial path: no thread spawn, same code, same results
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads_);
    for (unsigned t = 0; t < threads_; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  rep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  aggregate_report(scenarios, rep);
  return rep;
}

void aggregate_report(const std::vector<Scenario>& scenarios, Report& rep) {
  std::vector<TrialSpec> specs;
  std::vector<std::size_t> scenario_of;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    for (const TrialSpec& t : scenarios[si].trials) {
      specs.push_back(t);
      scenario_of.push_back(si);
    }
  }

  // Serial aggregation in trial-index order: floating-point sums are
  // evaluated in one fixed order regardless of which worker ran what.
  rep.scenarios.assign(scenarios.size(), ScenarioSummary{});
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    rep.scenarios[si].label = scenarios[si].label;
    // Topology fingerprint (forward-compat for remote shards): which
    // desc this scenario's trials elaborated. Scenarios are free to mix
    // topologies; the summary then says so instead of guessing.
    // Trials are compared structurally (operator==, allocation-free);
    // the canonical-JSON hash is computed once per scenario.
    const soc::SocDesc* first = nullptr;
    bool mixed = false;
    for (const TrialSpec& t : scenarios[si].trials) {
      if (first == nullptr) {
        first = &t.desc;
      } else if (!(t.desc == *first)) {
        mixed = true;
        break;
      }
    }
    rep.scenarios[si].topology =
        mixed ? "mixed" : (first != nullptr ? first->name : "");
    rep.scenarios[si].topology_hash =
        mixed || first == nullptr ? 0 : first->hash();
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ScenarioSummary& sc = rep.scenarios[scenario_of[i]];
    const TrialResult& r = rep.results[i];
    ++sc.trials;
    sc.total_cycles += r.cycles_run;
    sc.total_eval_passes += r.eval_passes;
    sc.metrics.merge(r.metrics);
    if (r.failed) {
      // A captured trial failure contributes nothing but its count: the
      // default-constructed result must not read as a silent pass.
      ++sc.failed_trials;
      continue;
    }
    if (r.timed_out) ++sc.timed_out;
    if (specs[i].point == fault::FaultPoint::kNone) {
      if (r.detected) ++sc.false_positives;
      continue;
    }
    if (r.detected) {
      ++sc.detected;
      sc.latency.add(static_cast<double>(r.latency));
      sc.latency_hist.add(r.latency);
    }
    if (r.recovered) ++sc.recovered;
    if (r.traffic_resumed) ++sc.traffic_resumed;
  }

  // Campaign-wide summary: pool the per-scenario shards. merge() is
  // exact (Chan et al. for the moments, integer adds for the
  // histogram), and the scenario order is fixed, so this too is
  // identical across thread counts.
  rep.overall = ScenarioSummary{};
  rep.overall.label = "overall";
  for (std::size_t si = 0; si < rep.scenarios.size(); ++si) {
    const ScenarioSummary& sc = rep.scenarios[si];
    if (si == 0) {
      rep.overall.topology = sc.topology;
      rep.overall.topology_hash = sc.topology_hash;
    } else if (sc.topology_hash != rep.overall.topology_hash ||
               sc.topology != rep.overall.topology) {
      rep.overall.topology = "mixed";
      rep.overall.topology_hash = 0;
    }
  }
  for (const ScenarioSummary& sc : rep.scenarios) {
    rep.overall.trials += sc.trials;
    rep.overall.detected += sc.detected;
    rep.overall.recovered += sc.recovered;
    rep.overall.traffic_resumed += sc.traffic_resumed;
    rep.overall.false_positives += sc.false_positives;
    rep.overall.failed_trials += sc.failed_trials;
    rep.overall.timed_out += sc.timed_out;
    rep.overall.total_cycles += sc.total_cycles;
    rep.overall.total_eval_passes += sc.total_eval_passes;
    rep.overall.latency.merge(sc.latency);
    rep.overall.latency_hist.merge(sc.latency_hist);
    rep.overall.metrics.merge(sc.metrics);
  }
}

}  // namespace campaign
