#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axi/link.hpp"
#include "sim/module.hpp"
#include "trace/format.hpp"

namespace trace {

/// Trace-driven AXI manager: replays a recorded tmu-axi-trace-v1 stream
/// through its link, cycle-accurately. A drop-in ManagerKind — declare
/// a manager as `trace_replay` in a SocDesc (optionally with
/// `trace_path`) or construct one and call set_stream().
///
/// Replay presents each recorded AW/W/AR payload starting at its
/// recorded cycle and holds it until the environment accepts it (or
/// until the recorded retract cycle, whichever the recording says came
/// first), then moves to the next event. b_ready/r_ready are constantly
/// asserted — matching the default TrafficGenerator/IdmaEngine manager
/// behavior traces are captured from (a v1 limitation: manager-side
/// response back-pressure is not part of the stream).
///
/// On the topology the trace was recorded from, this reproduces the
/// recorded manager's request wires bit-for-bit every cycle (pinned by
/// tests/test_trace_replay.cpp), so downstream traffic, memory state
/// and probe metrics are byte-identical to the recording run. On a
/// *different* topology the replay stays causal — presentations never
/// outrun the environment's readiness — which is what makes "same
/// workload, different topology" A/B studies meaningful; retract /
/// re-present pairs are then replayed on their recorded timeline, which
/// can re-issue a transaction the new environment already accepted (a
/// timeline is not a transaction list — see README).
class TraceTrafficGen : public sim::Module {
 public:
  TraceTrafficGen(std::string name, axi::Link& link);

  /// Installs the stream to replay (replacing any previous one) and
  /// rewinds progress. Cycle stamps are relative to the module's last
  /// reset, so install-then-run-from-reset reproduces the recording.
  void set_stream(TraceBuffer buf);

  const TraceBuffer& stream() const { return buf_; }

  /// Presentation events consumed (fired or retracted on schedule).
  std::uint64_t events_replayed() const;
  std::uint64_t events_total() const {
    return aw_.pres.size() + w_.pres.size() + ar_.pres.size();
  }
  /// Every presentation consumed: the workload has been fully issued.
  bool done() const { return events_replayed() == events_total(); }
  std::uint64_t cycle() const { return cycle_; }

  void eval() override;
  void tick() override;
  void reset() override;
  bool tick_changed_eval_state() const override { return tick_evt_; }

  /// State serde (sim/state.hpp): stream, per-channel plan progress.
  void visit_state(sim::StateVisitor& v) override;

 private:
  static constexpr std::uint64_t kNoRetract = ~std::uint64_t{0};

  struct Presentation {
    std::uint64_t cycle = 0;          ///< first cycle valid is asserted
    std::uint64_t retract = kNoRetract;  ///< cycle valid drops, no fire
    TraceRecord rec;

    template <typename V>
    void visit_fields(V& v) {
      visit(v, cycle);
      visit(v, retract);
      visit(v, rec);
    }
  };
  struct ChannelPlan {
    std::vector<Presentation> pres;
    std::size_t idx = 0;  ///< next / currently presented event

    template <typename V>
    void visit_fields(V& v) {
      visit(v, pres);
      visit(v, idx);
    }

    const Presentation* current(std::uint64_t cycle) const {
      if (idx >= pres.size()) return nullptr;
      const Presentation& p = pres[idx];
      if (cycle < p.cycle) return nullptr;
      if (cycle >= p.retract) return nullptr;
      return &p;
    }
  };

  /// Advances past the current presentation on a handshake, and past
  /// any presentation whose recorded retract cycle has been reached.
  bool advance(ChannelPlan& c, bool fired);

  axi::Link& link_;
  TraceBuffer buf_;  ///< retained for metadata (link, hash, dropped)
  ChannelPlan aw_, w_, ar_;
  std::uint64_t cycle_ = 0;
  bool tick_evt_ = true;  ///< last tick touched eval-relevant state
};

}  // namespace trace
