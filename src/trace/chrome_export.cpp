// Chrome-trace-event rendering of tmu-axi-trace-v1 streams.
//
// The record stream is manager-side (presentations / retracts / B / R
// fires); spans are reconstructed per link: exactly one presentation
// can occupy an address channel at a time, so a new presentation proves
// the previous one fired (a retract is explicit in the stream), and a
// completion (B, or R with last) pairs with the oldest fired request of
// its ID. Emission order is processing order, which Chrome/Perfetto
// accept unsorted — and which makes the output deterministic.

#include "trace/chrome_export.hpp"

#include <algorithm>
#include <cinttypes>
#include <deque>
#include <map>
#include <optional>

#include "sim/jsonfmt.hpp"
#include "soc/builder.hpp"
#include "tmu/tmu.hpp"
#include "trace/recorder.hpp"

namespace trace {

namespace {

using sim::jsonfmt::append_f;
using sim::jsonfmt::json_escape;

/// A presented request whose span is not closed yet. `start` can
/// precede rec.cycle when a retracted presentation was re-issued.
struct Open {
  std::uint64_t start = 0;
  TraceRecord rec;
};

bool same_request(const TraceRecord& a, const TraceRecord& b) {
  return a.id == b.id && a.addr == b.addr && a.len == b.len &&
         a.size == b.size && a.burst == b.burst;
}

struct Emitter {
  std::string out;
  bool first = true;
  std::uint64_t next_span_id = 1;

  void event_prefix() {
    out += first ? "\n    " : ",\n    ";
    first = false;
  }

  void process_name(int pid, const std::string& name) {
    event_prefix();
    append_f(out, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,", pid);
    out += "\"tid\":0,\"args\":{\"name\":\"" + json_escape(name) + "\"}}";
  }

  void span(int pid, const char* dir, const Open& o, std::uint64_t end,
            std::uint8_t resp, const char* note) {
    const std::uint64_t id = next_span_id++;
    event_prefix();
    append_f(out,
             "{\"name\":\"%s id %" PRIu32
             "\",\"cat\":\"axi\",\"ph\":\"b\",\"id\":%" PRIu64
             ",\"pid\":%d,\"tid\":0,\"ts\":%" PRIu64
             ",\"args\":{\"addr\":\"0x%" PRIx64
             "\",\"len\":%u,\"size\":%u,\"burst\":%u}}",
             dir, o.rec.id, id, pid, o.start, o.rec.addr, o.rec.len,
             o.rec.size, o.rec.burst);
    event_prefix();
    append_f(out,
             "{\"name\":\"%s id %" PRIu32
             "\",\"cat\":\"axi\",\"ph\":\"e\",\"id\":%" PRIu64
             ",\"pid\":%d,\"tid\":0,\"ts\":%" PRIu64 ",\"args\":{\"resp\":%u",
             dir, o.rec.id, id, pid, end, resp);
    if (note != nullptr) append_f(out, ",\"%s\":true", note);
    out += "}}";
  }

  void instant(const ChromeInstant& i) {
    event_prefix();
    append_f(out, "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,"
                  "\"tid\":0,\"ts\":%" PRIu64 "}",
             json_escape(i.name).c_str(), i.cycle);
  }

  void counter(const ChromeCounterSample& c) {
    event_prefix();
    append_f(out, "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":0,\"ts\":%" PRIu64
                  ",\"args\":{\"value\":%" PRIu64 "}}",
             json_escape(c.track).c_str(), c.cycle, c.value);
  }
};

/// Per-address-channel reconstruction state (one for AW, one for AR).
struct ChannelState {
  std::optional<Open> pending;    ///< presented; fire not yet proven
  std::optional<Open> retracted;  ///< withdrawn; may be re-presented
  std::uint64_t retract_cycle = 0;
  std::map<std::uint32_t, std::deque<Open>> issued;  ///< fired, awaiting done

  void present(const TraceRecord& r, Emitter& em, int pid, const char* dir) {
    if (pending) {
      // The channel freed without a retract record: the request fired.
      issued[pending->rec.id].push_back(*pending);
      pending.reset();
    }
    Open o{r.cycle, r};
    if (retracted) {
      if (same_request(retracted->rec, r)) {
        o.start = retracted->start;  // re-issue: one logical transaction
      } else {
        // The withdrawn request is dead — render its lifetime.
        em.span(pid, dir, *retracted, retract_cycle, 0, "retracted");
      }
      retracted.reset();
    }
    pending = o;
  }

  void retract(const TraceRecord& r, Emitter& em, int pid, const char* dir) {
    if (retracted) {
      em.span(pid, dir, *retracted, retract_cycle, 0, "retracted");
      retracted.reset();
    }
    if (pending) {
      retracted = *pending;
      retract_cycle = r.cycle;
      pending.reset();
    }
  }

  void complete(std::uint32_t id, std::uint64_t cycle, std::uint8_t resp,
                Emitter& em, int pid, const char* dir) {
    const auto it = issued.find(id);
    if (it != issued.end() && !it->second.empty()) {
      em.span(pid, dir, it->second.front(), cycle, resp, nullptr);
      it->second.pop_front();
      return;
    }
    if (pending && pending->rec.id == id) {
      // Completion proves the pending presentation fired.
      em.span(pid, dir, *pending, cycle, resp, nullptr);
      pending.reset();
      return;
    }
    // Orphan completion: the stream starts mid-transaction (e.g. a
    // capacity-truncated capture replayed as a prefix). Nothing to pair.
  }

  void flush(std::uint64_t end_cycle, Emitter& em, int pid, const char* dir) {
    if (retracted) em.span(pid, dir, *retracted, retract_cycle, 0, "retracted");
    if (pending) em.span(pid, dir, *pending, end_cycle, 0, "truncated");
    for (const auto& [id, q] : issued) {  // std::map: id order, stable
      for (const Open& o : q) em.span(pid, dir, o, end_cycle, 0, "truncated");
    }
  }
};

void render_link(const TraceBuffer& buf, int pid, std::uint64_t end_cycle,
                 Emitter& em) {
  em.process_name(pid, "link:" + buf.link);
  ChannelState writes, reads;
  for (const TraceRecord& r : buf.records) {
    switch (r.ch) {
      case Channel::kAw:
        if (r.retract) {
          writes.retract(r, em, pid, "write");
        } else {
          writes.present(r, em, pid, "write");
        }
        break;
      case Channel::kAr:
        if (r.retract) {
          reads.retract(r, em, pid, "read");
        } else {
          reads.present(r, em, pid, "read");
        }
        break;
      case Channel::kB:
        writes.complete(r.id, r.cycle, r.resp, em, pid, "write");
        break;
      case Channel::kR:
        if (r.last) reads.complete(r.id, r.cycle, r.resp, em, pid, "read");
        break;
      case Channel::kW:
        break;  // data beats carry no span boundary
    }
  }
  writes.flush(end_cycle, em, pid, "write");
  reads.flush(end_cycle, em, pid, "read");
}

}  // namespace

std::string export_chrome_json(const ChromeTraceInput& in) {
  Emitter em;
  em.out = "{\n  \"traceEvents\": [";
  em.process_name(0, "soc");
  int pid = 1;
  for (const TraceBuffer* buf : in.links) {
    if (buf != nullptr) render_link(*buf, pid, in.end_cycle, em);
    ++pid;
  }
  for (const ChromeInstant& i : in.instants) em.instant(i);
  for (const ChromeCounterSample& c : in.counters) em.counter(c);
  em.out += "\n  ]\n}\n";
  return em.out;
}

std::string export_chrome_json(soc::Soc& soc) {
  ChromeTraceInput in;
  in.end_cycle = soc.sim().cycle();
  for (const std::string& name : soc.block_names()) {
    sim::Module* m = soc.find(name);
    if (auto* rec = dynamic_cast<Recorder*>(m)) {
      in.links.push_back(&rec->buffer());
    }
    if (auto* t = dynamic_cast<tmu::Tmu*>(m)) {
      for (const tmu::LifecycleEvent& e : t->lifecycle_log()) {
        in.instants.push_back(
            ChromeInstant{name + ": " + tmu::to_string(e.kind), e.cycle});
      }
    }
  }
  std::stable_sort(in.instants.begin(), in.instants.end(),
                   [](const ChromeInstant& a, const ChromeInstant& b) {
                     return a.cycle < b.cycle;
                   });
  for (const sim::sched::ModuleProfile& mp : soc.sim().sched_profile().modules) {
    in.counters.push_back(
        ChromeCounterSample{"evals." + mp.name, in.end_cycle, mp.evals});
  }
  return export_chrome_json(in);
}

}  // namespace trace
