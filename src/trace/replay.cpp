#include "trace/replay.hpp"

#include "sim/state.hpp"

namespace trace {

void TraceTrafficGen::visit_state(sim::StateVisitor& v) {
  visit(v, buf_);
  visit(v, aw_);
  visit(v, w_);
  visit(v, ar_);
  visit(v, cycle_);
  visit(v, tick_evt_);
}

TraceTrafficGen::TraceTrafficGen(std::string name, axi::Link& link)
    : sim::Module(std::move(name)), link_(link) {}

void TraceTrafficGen::set_stream(TraceBuffer buf) {
  buf_ = std::move(buf);
  aw_ = ChannelPlan{};
  w_ = ChannelPlan{};
  ar_ = ChannelPlan{};
  // Split the record stream into per-channel presentation plans,
  // folding each retract record into its presentation's window. A
  // retract with no open presentation (a stream captured mid-run) is
  // dropped — there is nothing to withdraw.
  const auto plan_of = [&](Channel ch) -> ChannelPlan* {
    switch (ch) {
      case Channel::kAw: return &aw_;
      case Channel::kW: return &w_;
      case Channel::kAr: return &ar_;
      case Channel::kB:
      case Channel::kR: return nullptr;  // environment-driven; not replayed
    }
    return nullptr;
  };
  for (const TraceRecord& r : buf_.records) {
    ChannelPlan* c = plan_of(r.ch);
    if (c == nullptr) continue;
    if (r.retract) {
      if (!c->pres.empty() && c->pres.back().retract == kNoRetract) {
        c->pres.back().retract = r.cycle;
      }
    } else {
      c->pres.push_back(Presentation{r.cycle, kNoRetract, r});
    }
  }
  cycle_ = 0;
  tick_evt_ = true;
  notify_state_change();
}

std::uint64_t TraceTrafficGen::events_replayed() const {
  return aw_.idx + w_.idx + ar_.idx;
}

void TraceTrafficGen::eval() {
  axi::AxiReq q{};  // rebuilt from the plan every pass
  if (const Presentation* p = aw_.current(cycle_)) {
    q.aw_valid = true;
    q.aw = axi::AwFlit{p->rec.id, p->rec.addr, p->rec.len, p->rec.size,
                       static_cast<axi::Burst>(p->rec.burst)};
  }
  if (const Presentation* p = w_.current(cycle_)) {
    q.w_valid = true;
    q.w = axi::WFlit{p->rec.data, p->rec.strb, p->rec.last};
  }
  if (const Presentation* p = ar_.current(cycle_)) {
    q.ar_valid = true;
    q.ar = axi::ArFlit{p->rec.id, p->rec.addr, p->rec.len, p->rec.size,
                       static_cast<axi::Burst>(p->rec.burst)};
  }
  // Always ready for responses — the policy the default managers record
  // under (b_ready_delay / r_ready_delay 0); see the class comment.
  q.b_ready = true;
  q.r_ready = true;
  link_.req.write(q);
}

bool TraceTrafficGen::advance(ChannelPlan& c, bool fired) {
  bool moved = false;
  // A handshake consumes the live presentation (valid only comes from
  // us, so a fire without one is impossible on the recording topology;
  // guard anyway for divergent environments).
  if (fired && c.current(cycle_) != nullptr) {
    ++c.idx;
    moved = true;
  }
  return moved;
}

void TraceTrafficGen::tick() {
  const axi::AxiReq q = link_.req.read();
  const axi::AxiRsp s = link_.rsp.read();

  bool moved = false;
  moved |= advance(aw_, axi::aw_fire(q, s));
  moved |= advance(w_, axi::w_fire(q, s));
  moved |= advance(ar_, axi::ar_fire(q, s));

  ++cycle_;

  // Presentations whose recorded retract cycle has arrived without a
  // handshake are withdrawn now (their eval window [cycle, retract) just
  // closed); the recorded re-presentation, if any, is the next event.
  const auto skip_retracted = [&](ChannelPlan& c) {
    while (c.idx < c.pres.size() && c.pres[c.idx].retract != kNoRetract &&
           cycle_ >= c.pres[c.idx].retract) {
      ++c.idx;
      moved = true;
    }
  };
  skip_retracted(aw_);
  skip_retracted(w_);
  skip_retracted(ar_);

  // Edge activity: a consumed event changes what eval presents, and so
  // does an event whose start cycle is exactly now. A quiet edge with
  // nothing newly eligible leaves eval()'s output bit-identical, which
  // is what lets the event-driven scheduler idle a finished replay at
  // zero evals.
  const auto newly_eligible = [&](const ChannelPlan& c) {
    return c.idx < c.pres.size() && c.pres[c.idx].cycle == cycle_;
  };
  tick_evt_ = moved || newly_eligible(aw_) || newly_eligible(w_) ||
              newly_eligible(ar_);
}

void TraceTrafficGen::reset() {
  aw_.idx = w_.idx = ar_.idx = 0;
  cycle_ = 0;
  tick_evt_ = true;
  link_.req.force(axi::AxiReq{});
}

}  // namespace trace
