#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "axi/link.hpp"
#include "obs/metrics.hpp"
#include "sim/module.hpp"
#include "sim/state.hpp"
#include "trace/format.hpp"

namespace trace {

/// Cycle-accurate AXI capture on one link: fills a TraceBuffer with the
/// tmu-axi-trace-v1 record stream (AW/W/AR presentations + retracts,
/// B/R fires — see trace/format.hpp for why). Attach declaratively via
/// the `traces` section of soc::SocDesc, or construct directly in
/// testbench code and register it with the simulator.
///
/// Like the other tick-only samplers (axi::Tracer, obs::LatencyProbe)
/// it never drives wires, so inserting it cannot perturb the netlist —
/// a recorded run is cycle-identical to an unrecorded one. Capture is
/// bounded: past `capacity` records the stream stops growing and
/// drop_count() says how much of the tail is missing (a truncated
/// buffer replays as a prefix of the workload).
///
/// With a MetricsRegistry (the builder passes the Soc's), the recorder
/// publishes "<name>.records", "<name>.dropped" and per-channel
/// "<name>.aw|w|b|ar|r" counters plus "<name>.retracts", so capture
/// health shows up in campaign reports.
class Recorder : public sim::Module {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  Recorder(const std::string& name, std::string link_name, axi::Link& link,
           std::uint64_t topology_hash = 0,
           std::size_t capacity = kDefaultCapacity,
           obs::MetricsRegistry* registry = nullptr)
      : sim::Module(name), link_(link), capacity_(capacity) {
    buf_.link = std::move(link_name);
    buf_.topology_hash = topology_hash;
    if (registry != nullptr) {
      records_ = &registry->counter(name + ".records");
      dropped_ = &registry->counter(name + ".dropped");
      retracts_ = &registry->counter(name + ".retracts");
      ch_[0] = &registry->counter(name + ".aw");
      ch_[1] = &registry->counter(name + ".w");
      ch_[2] = &registry->counter(name + ".b");
      ch_[3] = &registry->counter(name + ".ar");
      ch_[4] = &registry->counter(name + ".r");
    }
  }

  /// Samples settled wires in tick() only; schedulers skip it in settle.
  bool is_combinational() const override { return false; }

  void tick() override {
    const axi::AxiReq& q = link_.req.read();
    const axi::AxiRsp& s = link_.rsp.read();

    // Manager-driven channels: presentation / retract tracking. The
    // pending flag (valid was up last cycle without a handshake) is
    // what distinguishes a held presentation from a fresh one — two
    // back-to-back transactions with identical payloads still get two
    // presentation records because the fire cleared the flag between
    // them. A payload change while valid stays up without a fire is an
    // AXI violation; record it defensively as retract + re-present so
    // the stream stays replayable.
    step_mgr(Channel::kAw, q.aw_valid, axi::aw_fire(q, s), aw_pending_,
             aw_held_, TraceRecord{cycle_, Channel::kAw, false, q.aw.id,
                                   q.aw.addr, 0, q.aw.len, q.aw.size,
                                   static_cast<std::uint8_t>(q.aw.burst), 0, 0,
                                   false});
    step_mgr(Channel::kW, q.w_valid, axi::w_fire(q, s), w_pending_, w_held_,
             TraceRecord{cycle_, Channel::kW, false, 0, 0, q.w.data, 0, 0, 0,
                         0, q.w.strb, q.w.last});
    step_mgr(Channel::kAr, q.ar_valid, axi::ar_fire(q, s), ar_pending_,
             ar_held_, TraceRecord{cycle_, Channel::kAr, false, q.ar.id,
                                   q.ar.addr, 0, q.ar.len, q.ar.size,
                                   static_cast<std::uint8_t>(q.ar.burst), 0, 0,
                                   false});

    // Subordinate-driven channels: handshake cycles.
    if (axi::b_fire(q, s)) {
      push(TraceRecord{cycle_, Channel::kB, false, s.b.id, 0, 0, 0, 0, 0,
                       static_cast<std::uint8_t>(s.b.resp), 0, false});
    }
    if (axi::r_fire(q, s)) {
      push(TraceRecord{cycle_, Channel::kR, false, s.r.id, 0, s.r.data, 0, 0,
                       0, static_cast<std::uint8_t>(s.r.resp), 0, s.r.last});
    }
    ++cycle_;
  }

  void reset() override {
    buf_.records.clear();
    buf_.dropped = 0;
    aw_pending_ = w_pending_ = ar_pending_ = false;
    cycle_ = 0;
    // Registry slots are intentionally NOT cleared (same contract as
    // obs::LatencyProbe: the registry owner picks snapshot boundaries).
  }

  const TraceBuffer& buffer() const { return buf_; }

  /// State serde (sim/state.hpp): the capture buffer and presentation
  /// tracking (capacity is config; counter values travel with the
  /// registry).
  void visit_state(sim::StateVisitor& v) override {
    visit(v, buf_);
    visit(v, aw_pending_);
    visit(v, w_pending_);
    visit(v, ar_pending_);
    visit(v, aw_held_);
    visit(v, w_held_);
    visit(v, ar_held_);
    visit(v, cycle_);
  }

  /// Moves the capture out (e.g. into a campaign TrialResult); the
  /// recorder keeps running on an empty buffer.
  TraceBuffer take() {
    TraceBuffer out = std::move(buf_);
    buf_ = TraceBuffer{};
    buf_.link = out.link;
    buf_.topology_hash = out.topology_hash;
    return out;
  }

  /// Records lost to the capacity bound — nonzero means the buffer is a
  /// prefix of the run, not the whole run.
  std::uint64_t drop_count() const { return buf_.dropped; }
  std::uint64_t cycles() const { return cycle_; }

 private:
  struct Held {
    axi::Id id = 0;
    axi::Addr addr = 0;
    axi::Data data = 0;
    std::uint8_t len = 0, size = 0, burst = 0, strb = 0;
    bool last = false;

    template <typename V>
    void visit_fields(V& v) {
      visit(v, id);
      visit(v, addr);
      visit(v, data);
      visit(v, len);
      visit(v, size);
      visit(v, burst);
      visit(v, strb);
      visit(v, last);
    }
  };

  static Held held_of(const TraceRecord& r) {
    return Held{r.id, r.addr, r.data, r.len, r.size, r.burst, r.strb, r.last};
  }
  static bool same_payload(const Held& a, const Held& b) {
    return a.id == b.id && a.addr == b.addr && a.data == b.data &&
           a.len == b.len && a.size == b.size && a.burst == b.burst &&
           a.strb == b.strb && a.last == b.last;
  }

  void step_mgr(Channel ch, bool valid, bool fire, bool& pending, Held& held,
                const TraceRecord& present) {
    if (valid) {
      const Held now = held_of(present);
      if (!pending) {
        push(present);
      } else if (!same_payload(now, held)) {
        push(TraceRecord{cycle_, ch, /*retract=*/true});
        push(present);
      }
      held = now;
    } else if (pending) {
      push(TraceRecord{cycle_, ch, /*retract=*/true});
    }
    pending = valid && !fire;
  }

  void push(const TraceRecord& r) {
    if (buf_.records.size() >= capacity_) {
      ++buf_.dropped;
      if (dropped_ != nullptr) dropped_->inc();
      return;
    }
    buf_.records.push_back(r);
    if (records_ != nullptr) {
      records_->inc();
      if (r.retract) {
        retracts_->inc();
      } else {
        ch_[static_cast<std::size_t>(r.ch)]->inc();
      }
    }
  }

  axi::Link& link_;
  std::size_t capacity_;
  TraceBuffer buf_;
  bool aw_pending_ = false, w_pending_ = false, ar_pending_ = false;
  Held aw_held_{}, w_held_{}, ar_held_{};
  std::uint64_t cycle_ = 0;

  obs::Counter* records_ = nullptr;
  obs::Counter* dropped_ = nullptr;
  obs::Counter* retracts_ = nullptr;
  obs::Counter* ch_[5] = {nullptr, nullptr, nullptr, nullptr, nullptr};
};

}  // namespace trace
