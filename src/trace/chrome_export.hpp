#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/format.hpp"

namespace soc {
class Soc;
}

namespace trace {

/// A named point event on the shared timeline (rendered as a Perfetto
/// instant): TMU lifecycle transitions use these.
struct ChromeInstant {
  std::string name;
  std::uint64_t cycle = 0;
};

/// One sample of a counter track (rendered as a Perfetto counter).
struct ChromeCounterSample {
  std::string track;
  std::uint64_t cycle = 0;
  std::uint64_t value = 0;
};

/// Everything export_chrome_json renders. `links` are captured record
/// streams (one Perfetto "process" per entry, in order); `end_cycle`
/// closes still-open transactions (flagged "truncated") and stamps the
/// counter samples' upper bound.
struct ChromeTraceInput {
  std::vector<const TraceBuffer*> links;
  std::vector<ChromeInstant> instants;
  std::vector<ChromeCounterSample> counters;
  std::uint64_t end_cycle = 0;
};

/// Renders the input as a Chrome-trace-event JSON document (the
/// `{"traceEvents": [...]}` object form), loadable in Perfetto or
/// chrome://tracing. One cycle = 1 µs of trace time, so the timeline
/// reads directly in cycles.
///
/// Per link, each write (AW presentation → matching B fire) and read
/// (AR presentation → matching R-last fire) becomes an async span named
/// by direction and AXI ID; a retracted-then-re-presented request keeps
/// its original start cycle, so the span covers the whole time the
/// manager wanted the transaction. Transactions still open at
/// `end_cycle` are closed there with a `"truncated": true` argument.
/// Output is deterministic: same input, byte-identical JSON.
std::string export_chrome_json(const ChromeTraceInput& in);

/// Convenience: harvests a built Soc — every trace::Recorder's buffer
/// (registration order), every tmu::Tmu's lifecycle log as instants,
/// and the scheduler profile's per-module eval counts as one counter
/// sample each at the current cycle — then renders it.
std::string export_chrome_json(soc::Soc& soc);

}  // namespace trace
