#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "axi/types.hpp"

/// tmu-axi-trace-v1: the repo's compact binary AXI transaction trace.
///
/// A trace is the cycle-exact timeline of one axi::Link as seen from the
/// manager side, captured by trace::Recorder and replayable through
/// trace::TraceTrafficGen (record/replay is the repo's trace-driven
/// workload frontend — see README "Transaction tracing").
///
/// Record semantics — chosen so a replayer can reproduce the recorded
/// manager's wires cycle-for-cycle, not just its handshakes:
///   * AW / W / AR (manager-driven channels) log *presentations*: the
///     cycle valid was first asserted for a payload. If valid deasserts
///     again without a handshake (e.g. an outstanding cap closing after
///     the other channel fired), a *retract* record marks that cycle and
///     a later re-presentation gets its own record. The handshake cycle
///     itself is implied by the environment (ready), so it is not
///     stored — that is what makes replay causal on a different
///     topology instead of deadlocking on a shifted ready.
///   * B / R (subordinate-driven channels) log *fires* (handshake
///     cycles) with ID/resp/data — the reference stream equivalence
///     tests and the timeline exporter consume.
///
/// On disk: a fixed header (magic, version, topology hash, link name,
/// record count, drop count) followed by `record_count` fixed-width
/// 32-byte little-endian records with delta-encoded cycle stamps. The
/// record count is patched on close; a crashed writer leaves the
/// sentinel in place and the reader rejects the file as unfinalized.
/// The reader is strict: bad magic/version/enum values, truncated or
/// trailing bytes, and malformed flags all throw with a message naming
/// the offset.
namespace trace {

inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::size_t kTraceMagicBytes = 16;
inline constexpr char kTraceMagic[kTraceMagicBytes + 1] = "tmu-axi-trace-v1";
inline constexpr std::size_t kTraceRecordBytes = 32;
/// Header bytes before the variable-length link name.
inline constexpr std::size_t kTraceHeaderFixedBytes =
    kTraceMagicBytes + 4 + 8 + 8 + 8 + 4;
/// record_count sentinel until TraceWriter::close patches the real one.
inline constexpr std::uint64_t kTraceUnfinalized = ~std::uint64_t{0};

/// Which AXI channel a record belongs to (on-disk encoding).
enum class Channel : std::uint8_t { kAw = 0, kW = 1, kB = 2, kAr = 3, kR = 4 };

inline const char* to_string(Channel c) {
  switch (c) {
    case Channel::kAw: return "AW";
    case Channel::kW: return "W";
    case Channel::kB: return "B";
    case Channel::kAr: return "AR";
    case Channel::kR: return "R";
  }
  return "?";
}

/// One trace record. Cycles are absolute in memory and delta-encoded on
/// disk. Fields not meaningful for a channel are zero (canonical — the
/// writer enforces it so buffers compare byte-for-byte).
struct TraceRecord {
  std::uint64_t cycle = 0;
  Channel ch = Channel::kAw;
  bool retract = false;  ///< AW/W/AR: presentation withdrawn, no handshake
  axi::Id id = 0;        ///< AW/AR/B/R
  axi::Addr addr = 0;    ///< AW/AR
  axi::Data data = 0;    ///< W/R
  std::uint8_t len = 0;    ///< AW/AR
  std::uint8_t size = 0;   ///< AW/AR
  std::uint8_t burst = 0;  ///< AW/AR (axi::Burst encoding)
  std::uint8_t resp = 0;   ///< B/R (axi::Resp encoding)
  std::uint8_t strb = 0;   ///< W
  bool last = false;       ///< W/R

  bool operator==(const TraceRecord&) const = default;

  /// State-serde opt-in (sim/state.hpp) so in-flight capture/replay
  /// buffers travel inside simulation snapshots.
  template <typename V>
  void visit_fields(V& v) {
    visit(v, cycle);
    visit(v, ch);
    visit(v, retract);
    visit(v, id);
    visit(v, addr);
    visit(v, data);
    visit(v, len);
    visit(v, size);
    visit(v, burst);
    visit(v, resp);
    visit(v, strb);
    visit(v, last);
  }
};

/// A decoded trace stream plus its header metadata.
struct TraceBuffer {
  std::string link;                ///< builder link name captured
  std::uint64_t topology_hash = 0; ///< SocDesc::hash() of the recording run
  std::uint64_t dropped = 0;       ///< records lost to the capture bound
  std::vector<TraceRecord> records;

  bool operator==(const TraceBuffer&) const = default;

  template <typename V>
  void visit_fields(V& v) {
    visit(v, link);
    visit(v, topology_hash);
    visit(v, dropped);
    visit(v, records);
  }
};

/// Streamed binary writer with bounded buffering: records are encoded
/// into a fixed flush block, never accumulated whole-file in memory.
/// I/O failures latch ok() false (checked at close); non-monotone cycle
/// stamps throw std::invalid_argument (a programming error, not a file
/// problem).
class TraceWriter {
 public:
  TraceWriter(const std::string& path, const std::string& link,
              std::uint64_t topology_hash);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const TraceRecord& r);
  void set_dropped(std::uint64_t dropped) { dropped_ = dropped; }

  /// Flushes, patches the header's record/drop counts and closes the
  /// file. Returns false if any I/O step failed (the file is then not a
  /// valid trace and the reader will say so).
  bool close();

  bool ok() const { return ok_; }
  std::uint64_t written() const { return count_; }

 private:
  void flush();

  std::FILE* f_ = nullptr;
  std::string block_;  ///< pending encoded records (bounded)
  std::uint64_t last_cycle_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t dropped_ = 0;
  bool ok_ = true;
};

/// In-memory encode of a whole buffer (finalized header included) —
/// byte-identical to what TraceWriter streams out for the same records.
std::string encode_trace(const TraceBuffer& buf);

/// Strict decode. Throws std::runtime_error ("tmu-axi-trace: ...") on
/// any malformed, truncated, unfinalized or trailing-garbage input.
TraceBuffer decode_trace(std::string_view bytes);

/// Convenience file round-trip. write_trace_file returns false on I/O
/// failure; read_trace_file throws like decode_trace (plus on open
/// failure, naming the path).
bool write_trace_file(const std::string& path, const TraceBuffer& buf);
TraceBuffer read_trace_file(const std::string& path);

}  // namespace trace
