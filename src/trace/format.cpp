// tmu-axi-trace-v1 binary encode/decode. Layout (all little-endian):
//
//   offset  size  field
//   0       16    magic "tmu-axi-trace-v1" (no NUL)
//   16      4     u32 version (= 1)
//   20      8     u64 topology hash (SocDesc::hash() of the capture run)
//   28      8     u64 dropped (records lost to the capture bound)
//   36      8     u64 record count (kTraceUnfinalized until close)
//   44      4     u32 link-name length
//   48      n     link name bytes
//   48+n    32*k  records
//
// Record (32 bytes): u32 cycle_delta | u8 channel | u8 flags
// (bit0 last, bit1 retract) | u8 len | u8 size | u32 id | u8 burst |
// u8 resp | u8 strb | u8 pad(0) | u64 addr | u64 data. Cycle stamps are
// deltas against the previous record (first record: against 0), so a
// mostly-quiet multi-million-cycle capture still costs 32 bytes per
// event, not per cycle.

#include "trace/format.hpp"

#include <cstring>
#include <stdexcept>

namespace trace {

namespace {

constexpr std::size_t kCountOffset = kTraceMagicBytes + 4 + 8;  // dropped
constexpr std::size_t kFlushBlockBytes = 64 * 1024;
constexpr std::uint8_t kFlagLast = 0x1;
constexpr std::uint8_t kFlagRetract = 0x2;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("tmu-axi-trace: " + what);
}

/// Zeroes every field the record's channel does not carry, so encoded
/// streams are canonical (buffers compare byte-for-byte) and a reader
/// can reject smuggled garbage.
TraceRecord canonical(const TraceRecord& r) {
  TraceRecord c;
  c.cycle = r.cycle;
  c.ch = r.ch;
  c.retract = r.retract;
  if (r.retract) return c;  // a retract is a timestamp, nothing more
  switch (r.ch) {
    case Channel::kAw:
    case Channel::kAr:
      c.id = r.id;
      c.addr = r.addr;
      c.len = r.len;
      c.size = r.size;
      c.burst = r.burst;
      break;
    case Channel::kW:
      c.data = r.data;
      c.strb = r.strb;
      c.last = r.last;
      break;
    case Channel::kB:
      c.id = r.id;
      c.resp = r.resp;
      break;
    case Channel::kR:
      c.id = r.id;
      c.data = r.data;
      c.resp = r.resp;
      c.last = r.last;
      break;
  }
  return c;
}

void encode_record(std::string& out, const TraceRecord& raw,
                   std::uint64_t& last_cycle, std::uint64_t index) {
  const TraceRecord r = canonical(raw);
  if (r.cycle < last_cycle) {
    throw std::invalid_argument(
        "tmu-axi-trace: record " + std::to_string(index) + " cycle " +
        std::to_string(r.cycle) + " precedes previous cycle " +
        std::to_string(last_cycle) + " (records must be cycle-ordered)");
  }
  const std::uint64_t delta = r.cycle - last_cycle;
  if (delta > 0xFFFFFFFFull) {
    throw std::invalid_argument(
        "tmu-axi-trace: record " + std::to_string(index) + " cycle gap " +
        std::to_string(delta) + " exceeds the 32-bit delta encoding");
  }
  last_cycle = r.cycle;
  put_u32(out, static_cast<std::uint32_t>(delta));
  out += static_cast<char>(r.ch);
  out += static_cast<char>((r.last ? kFlagLast : 0) |
                           (r.retract ? kFlagRetract : 0));
  out += static_cast<char>(r.len);
  out += static_cast<char>(r.size);
  put_u32(out, r.id);
  out += static_cast<char>(r.burst);
  out += static_cast<char>(r.resp);
  out += static_cast<char>(r.strb);
  out += '\0';  // pad
  put_u64(out, r.addr);
  put_u64(out, r.data);
}

std::string encode_header(const std::string& link, std::uint64_t hash,
                          std::uint64_t dropped, std::uint64_t count) {
  std::string out;
  out.append(kTraceMagic, kTraceMagicBytes);
  put_u32(out, kTraceVersion);
  put_u64(out, hash);
  put_u64(out, dropped);
  put_u64(out, count);
  put_u32(out, static_cast<std::uint32_t>(link.size()));
  out += link;
  return out;
}

}  // namespace

// ------------------------------------------------------------------
// Streamed writer
// ------------------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, const std::string& link,
                         std::uint64_t topology_hash) {
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) {
    ok_ = false;
    return;
  }
  const std::string hdr =
      encode_header(link, topology_hash, /*dropped=*/0, kTraceUnfinalized);
  if (std::fwrite(hdr.data(), 1, hdr.size(), f_) != hdr.size()) ok_ = false;
}

TraceWriter::~TraceWriter() {
  if (f_ != nullptr) close();
}

void TraceWriter::append(const TraceRecord& r) {
  if (!ok_ || f_ == nullptr) return;
  encode_record(block_, r, last_cycle_, count_);
  ++count_;
  if (block_.size() >= kFlushBlockBytes) flush();
}

void TraceWriter::flush() {
  if (block_.empty() || f_ == nullptr) return;
  if (std::fwrite(block_.data(), 1, block_.size(), f_) != block_.size()) {
    ok_ = false;
  }
  block_.clear();
}

bool TraceWriter::close() {
  if (f_ == nullptr) return false;
  flush();
  // Patch dropped + record count (adjacent u64 fields); an unpatched
  // header keeps the kTraceUnfinalized sentinel and reads as corrupt.
  if (ok_) {
    std::string patch;
    put_u64(patch, dropped_);
    put_u64(patch, count_);
    if (std::fseek(f_, static_cast<long>(kCountOffset), SEEK_SET) != 0 ||
        std::fwrite(patch.data(), 1, patch.size(), f_) != patch.size()) {
      ok_ = false;
    }
  }
  if (std::fclose(f_) != 0) ok_ = false;
  f_ = nullptr;
  return ok_;
}

// ------------------------------------------------------------------
// Whole-buffer encode / strict decode
// ------------------------------------------------------------------

std::string encode_trace(const TraceBuffer& buf) {
  std::string out = encode_header(buf.link, buf.topology_hash, buf.dropped,
                                  buf.records.size());
  std::uint64_t last = 0;
  for (std::size_t i = 0; i < buf.records.size(); ++i) {
    encode_record(out, buf.records[i], last, i);
  }
  return out;
}

TraceBuffer decode_trace(std::string_view bytes) {
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  if (bytes.size() < kTraceHeaderFixedBytes) {
    bad("truncated header: " + std::to_string(bytes.size()) + " bytes, need " +
        std::to_string(kTraceHeaderFixedBytes));
  }
  if (std::memcmp(p, kTraceMagic, kTraceMagicBytes) != 0) {
    bad("bad magic (not a tmu-axi-trace file)");
  }
  const std::uint32_t version = get_u32(p + kTraceMagicBytes);
  if (version != kTraceVersion) {
    bad("unsupported version " + std::to_string(version) + " (expected " +
        std::to_string(kTraceVersion) + ")");
  }
  TraceBuffer buf;
  buf.topology_hash = get_u64(p + kTraceMagicBytes + 4);
  buf.dropped = get_u64(p + kTraceMagicBytes + 12);
  const std::uint64_t count = get_u64(p + kCountOffset + 8);
  if (count == kTraceUnfinalized) {
    bad("unfinalized trace (the writer was never closed)");
  }
  const std::uint32_t link_len = get_u32(p + kTraceHeaderFixedBytes - 4);
  if (link_len > 4096) {
    bad("implausible link-name length " + std::to_string(link_len));
  }
  std::size_t off = kTraceHeaderFixedBytes;
  if (bytes.size() < off + link_len) bad("truncated link name");
  buf.link.assign(bytes.data() + off, link_len);
  off += link_len;

  const std::size_t payload = bytes.size() - off;
  if (payload != count * kTraceRecordBytes) {
    bad("payload size mismatch: header says " + std::to_string(count) +
        " records (" + std::to_string(count * kTraceRecordBytes) +
        " bytes), file carries " + std::to_string(payload) +
        " (truncated or trailing bytes)");
  }

  buf.records.reserve(count);
  std::uint64_t cycle = 0;
  for (std::uint64_t i = 0; i < count; ++i, off += kTraceRecordBytes) {
    const unsigned char* r = p + off;
    const auto where = [&] { return "record " + std::to_string(i); };
    TraceRecord rec;
    cycle += get_u32(r);
    rec.cycle = cycle;
    if (r[4] > static_cast<std::uint8_t>(Channel::kR)) {
      bad(where() + ": unknown channel " + std::to_string(r[4]));
    }
    rec.ch = static_cast<Channel>(r[4]);
    const std::uint8_t flags = r[5];
    if ((flags & ~(kFlagLast | kFlagRetract)) != 0) {
      bad(where() + ": unknown flag bits " + std::to_string(flags));
    }
    rec.last = (flags & kFlagLast) != 0;
    rec.retract = (flags & kFlagRetract) != 0;
    if (rec.retract &&
        (rec.ch == Channel::kB || rec.ch == Channel::kR)) {
      bad(where() + ": retract flag on subordinate-driven channel " +
          std::string(to_string(rec.ch)));
    }
    rec.len = r[6];
    rec.size = r[7];
    rec.id = get_u32(r + 8);
    rec.burst = r[12];
    if (rec.burst > static_cast<std::uint8_t>(axi::Burst::kWrap)) {
      bad(where() + ": bad burst encoding " + std::to_string(rec.burst));
    }
    rec.resp = r[13];
    if (rec.resp > static_cast<std::uint8_t>(axi::Resp::kDecErr)) {
      bad(where() + ": bad resp encoding " + std::to_string(rec.resp));
    }
    rec.strb = r[14];
    if (r[15] != 0) bad(where() + ": nonzero pad byte");
    rec.addr = get_u64(r + 16);
    rec.data = get_u64(r + 24);
    if (rec != canonical(rec)) {
      bad(where() + ": non-canonical " + to_string(rec.ch) +
          " record (fields the channel does not carry are set)");
    }
    buf.records.push_back(rec);
  }
  return buf;
}

bool write_trace_file(const std::string& path, const TraceBuffer& buf) {
  TraceWriter w(path, buf.link, buf.topology_hash);
  for (const TraceRecord& r : buf.records) w.append(r);
  w.set_dropped(buf.dropped);
  return w.close();
}

TraceBuffer read_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) bad("cannot open '" + path + "'");
  std::string bytes;
  char chunk[65536];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    bytes.append(chunk, n);
  }
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) bad("I/O error reading '" + path + "'");
  try {
    return decode_trace(bytes);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " [" + path + "]");
  }
}

}  // namespace trace
