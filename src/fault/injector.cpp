#include "fault/injector.hpp"

namespace fault {

void FaultInjector::eval() {
  axi::AxiReq q = up_.req.read();
  axi::AxiRsp s = down_.rsp.read();
  const bool active = triggered();

  if (active) {
    // Every stuck-signal mutation is applied to BOTH directions so the
    // two sides agree a handshake did not happen (otherwise the far side
    // would observe phantom transfers).
    switch (point_) {
      // ---- manager-side request mutations ----
      case FaultPoint::kWValidStuck:
        q.w_valid = false;
        s.w_ready = false;
        break;
      case FaultPoint::kAwValidDrop:
        q.aw_valid = false;
        s.aw_ready = false;
        break;
      case FaultPoint::kWLastEarly:
        if (q.w_valid) q.w.last = true;
        break;
      case FaultPoint::kBReadyStuck:
        q.b_ready = false;
        s.b_valid = false;  // hide the response the manager won't take
        break;
      case FaultPoint::kRReadyStuck:
        q.r_ready = false;
        s.r_valid = false;
        break;
      // ---- subordinate-side response mutations ----
      case FaultPoint::kAwReadyStuck:
        s.aw_ready = false;
        q.aw_valid = false;
        break;
      case FaultPoint::kWReadyStuck:
      case FaultPoint::kMidBurstWStall:
        s.w_ready = false;
        q.w_valid = false;
        break;
      case FaultPoint::kBValidStuck:
        s.b_valid = false;
        q.b_ready = false;
        break;
      case FaultPoint::kBWrongId:
        if (s.b_valid) s.b.id ^= 0x3F;
        break;
      case FaultPoint::kSpuriousB:
        if (!s.b_valid) {
          s.b_valid = true;
          s.b = axi::BFlit{0x3A, axi::Resp::kOkay};
        }
        break;
      case FaultPoint::kArReadyStuck:
        s.ar_ready = false;
        q.ar_valid = false;
        break;
      case FaultPoint::kRValidStuck:
      case FaultPoint::kMidBurstRStall:
        s.r_valid = false;
        q.r_ready = false;
        break;
      case FaultPoint::kRWrongId:
        if (s.r_valid) s.r.id ^= 0x3F;
        break;
      case FaultPoint::kSpuriousR:
        if (!s.r_valid) {
          s.r_valid = true;
          s.r = axi::RFlit{0x3A, 0xDEAD, axi::Resp::kOkay, true};
        }
        break;
      case FaultPoint::kNone:
        break;
    }
  }

  down_.req.write(q);
  up_.rsp.write(s);
}

void FaultInjector::tick() {
  // Count beats on the *downstream* (post-mutation) signals so trigger
  // conditions reflect what actually happened on the wire.
  const axi::AxiReq q = down_.req.read();
  const axi::AxiRsp s = up_.rsp.read();
  if (axi::w_fire(q, s)) ++w_beats_;
  if (axi::r_fire(q, s)) ++r_beats_;

  if (!started_ && triggered()) {
    started_ = true;
    start_cycle_ = cycle_;
  }
  ++cycle_;
}

void FaultInjector::reset() {
  started_ = false;
  start_cycle_ = 0;
  cycle_ = 0;
  w_beats_ = 0;
  r_beats_ = 0;
  down_.req.force(axi::AxiReq{});
  up_.rsp.force(axi::AxiRsp{});
}

}  // namespace fault
