#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "axi/link.hpp"
#include "axi/types.hpp"
#include "sim/module.hpp"
#include "sim/state.hpp"

namespace fault {

/// Where to break the transaction flow. Mirrors the paper's IP-level
/// fault-injection set (Fig. 9) plus read-channel equivalents:
///   AW stage error .......... kAwReadyStuck (missing aw_ready)
///   W stage timeout ......... kWValidStuck  (no data from the manager)
///   W datapath error ........ kWReadyStuck  (w_ready failure)
///   Data transfer error ..... kMidBurstWStall / kWLastEarly
///   w_last->b_valid error ... kBValidStuck
///   B handshake error ....... kBWrongId / kSpuriousB (ID mismatch /
///                             unrequested response)
enum class FaultPoint : std::uint8_t {
  kNone = 0,
  // Subordinate-side (response path) faults.
  kAwReadyStuck,
  kWReadyStuck,
  kMidBurstWStall,
  kBValidStuck,
  kBWrongId,
  kSpuriousB,
  kArReadyStuck,
  kRValidStuck,
  kMidBurstRStall,
  kRWrongId,
  kSpuriousR,
  // Manager-side (request path) faults.
  kWValidStuck,
  kAwValidDrop,
  kWLastEarly,
  kBReadyStuck,  ///< manager never accepts the write response
  kRReadyStuck,  ///< manager never accepts read data
};

inline const char* to_string(FaultPoint p) {
  switch (p) {
    case FaultPoint::kNone: return "none";
    case FaultPoint::kAwReadyStuck: return "aw_ready_stuck";
    case FaultPoint::kWReadyStuck: return "w_ready_stuck";
    case FaultPoint::kMidBurstWStall: return "mid_burst_w_stall";
    case FaultPoint::kBValidStuck: return "b_valid_stuck";
    case FaultPoint::kBWrongId: return "b_wrong_id";
    case FaultPoint::kSpuriousB: return "spurious_b";
    case FaultPoint::kArReadyStuck: return "ar_ready_stuck";
    case FaultPoint::kRValidStuck: return "r_valid_stuck";
    case FaultPoint::kMidBurstRStall: return "mid_burst_r_stall";
    case FaultPoint::kRWrongId: return "r_wrong_id";
    case FaultPoint::kSpuriousR: return "spurious_r";
    case FaultPoint::kWValidStuck: return "w_valid_stuck";
    case FaultPoint::kAwValidDrop: return "aw_valid_drop";
    case FaultPoint::kWLastEarly: return "w_last_early";
    case FaultPoint::kBReadyStuck: return "b_ready_stuck";
    case FaultPoint::kRReadyStuck: return "r_ready_stuck";
  }
  return "?";
}

/// True for fault points mutating the manager->subordinate direction.
inline bool is_manager_side(FaultPoint p) {
  return p == FaultPoint::kWValidStuck || p == FaultPoint::kAwValidDrop ||
         p == FaultPoint::kWLastEarly || p == FaultPoint::kBReadyStuck ||
         p == FaultPoint::kRReadyStuck;
}

/// Pass-through link stage that injects one configured fault once its
/// trigger condition holds. Insert it on either side of the TMU:
/// upstream (manager side) for manager faults, downstream (subordinate
/// side) for subordinate faults.
///
///   upstream.req  --> [mutate if manager-side fault] --> downstream.req
///   upstream.rsp  <-- [mutate if subordinate fault]  <-- downstream.rsp
class FaultInjector : public sim::Module {
 public:
  FaultInjector(std::string name, axi::Link& upstream, axi::Link& downstream)
      : sim::Module(std::move(name)), up_(upstream), down_(downstream) {}

  /// Arms the injector: the fault activates at `at_cycle` AND once
  /// `after_w_beats` / `after_r_beats` beats have been observed.
  void arm(FaultPoint point, std::uint64_t at_cycle = 0,
           unsigned after_w_beats = 0, unsigned after_r_beats = 0) {
    point_ = point;
    at_cycle_ = at_cycle;
    after_w_beats_ = after_w_beats;
    after_r_beats_ = after_r_beats;
    started_ = false;
    start_cycle_ = 0;
    notify_state_change();
  }

  void disarm() {
    point_ = FaultPoint::kNone;
    started_ = false;
    notify_state_change();
  }

  bool fault_active() const { return started_; }
  /// First cycle the fault condition was applied (detection-latency t0).
  std::uint64_t fault_start_cycle() const { return start_cycle_; }
  FaultPoint point() const { return point_; }
  std::uint64_t w_beats_seen() const { return w_beats_; }
  std::uint64_t r_beats_seen() const { return r_beats_; }

  void eval() override;
  void tick() override;
  void reset() override;

  /// Disarmed, eval() is a pure wire pass-through, so wire wakeups cover
  /// it; armed, triggered() can flip as cycle/beat counters advance, so
  /// every edge is eval-relevant until disarm (arm/disarm themselves
  /// notify precisely).
  bool tick_changed_eval_state() const override {
    return point_ != FaultPoint::kNone;
  }

  void visit_state(sim::StateVisitor& v) override {
    visit(v, point_);
    visit(v, at_cycle_);
    visit(v, after_w_beats_);
    visit(v, after_r_beats_);
    visit(v, started_);
    visit(v, start_cycle_);
    visit(v, cycle_);
    visit(v, w_beats_);
    visit(v, r_beats_);
  }

 private:
  bool triggered() const {
    return point_ != FaultPoint::kNone && cycle_ >= at_cycle_ &&
           w_beats_ >= after_w_beats_ && r_beats_ >= after_r_beats_;
  }

  axi::Link& up_;
  axi::Link& down_;

  FaultPoint point_ = FaultPoint::kNone;
  std::uint64_t at_cycle_ = 0;
  unsigned after_w_beats_ = 0;
  unsigned after_r_beats_ = 0;

  bool started_ = false;
  std::uint64_t start_cycle_ = 0;
  std::uint64_t cycle_ = 0;
  std::uint64_t w_beats_ = 0;
  std::uint64_t r_beats_ = 0;
};

}  // namespace fault
