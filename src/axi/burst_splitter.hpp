#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "axi/addr.hpp"
#include "axi/link.hpp"
#include "axi/types.hpp"
#include "sim/module.hpp"

namespace axi {

/// Burst splitter (atomizer): converts long INCR bursts into chunks of
/// at most `max_len + 1` beats, the standard adapter in front of
/// endpoints with limited burst support. Write responses are merged
/// (one upstream B per original burst, worst response wins); read data
/// is re-threaded (RLAST suppressed on interior chunk boundaries).
///
/// Restrictions (checked by assertion in debug builds, documented here):
/// one outstanding write and one outstanding read at a time — the
/// typical deployment is directly in front of a simple peripheral.
class BurstSplitter : public sim::Module {
 public:
  BurstSplitter(std::string name, Link& up, Link& down,
                std::uint8_t max_len = 15)
      : sim::Module(std::move(name)), up_(up), down_(down),
        max_beats_(unsigned{max_len} + 1) {}

  void eval() override {
    const AxiReq uq = up_.req.read();
    const AxiRsp ds = down_.rsp.read();
    AxiReq dq{};
    AxiRsp us{};

    // ---- write path ----
    if (w_active_) {
      // Present the current chunk's AW until accepted, then pass W.
      if (!w_chunk_sent_) {
        dq.aw_valid = true;
        dq.aw = AwFlit{w_orig_.id, chunk_addr_w_(), chunk_len_w_(),
                       w_orig_.size, Burst::kIncr};
      } else {
        dq.w_valid = uq.w_valid;
        dq.w = uq.w;
        dq.w.last = w_chunk_beat_ + 1 == chunk_beats_w_();
        us.w_ready = ds.w_ready;
      }
      dq.b_ready = true;  // splitter consumes interior B responses
      if (b_pending_up_) {
        us.b_valid = true;
        us.b = BFlit{w_orig_.id, w_resp_};
      }
    } else {
      us.aw_ready = uq.aw_valid;  // absorb a new AW immediately
      if (b_pending_up_) {
        us.b_valid = true;
        us.b = BFlit{w_orig_.id, w_resp_};
      }
    }

    // ---- read path ----
    if (r_active_) {
      if (!r_chunk_sent_) {
        dq.ar_valid = true;
        dq.ar = ArFlit{r_orig_.id, chunk_addr_r_(), chunk_len_r_(),
                       r_orig_.size, Burst::kIncr};
      }
      if (ds.r_valid) {
        us.r_valid = true;
        us.r = ds.r;
        us.r.last = r_done_beats_ + r_chunk_beat_ + 1 == beats(r_orig_.len);
        dq.r_ready = uq.r_ready;
      }
    } else {
      us.ar_ready = uq.ar_valid;
    }

    down_.req.write(dq);
    up_.rsp.write(us);
  }

  void tick() override {
    const AxiReq uq = up_.req.read();
    const AxiRsp us = up_.rsp.read();
    const AxiReq dq = down_.req.read();
    const AxiRsp ds = down_.rsp.read();

    // Accept new upstream bursts.
    if (uq.aw_valid && us.aw_ready) {
      w_orig_ = uq.aw;
      w_active_ = true;
      w_chunk_sent_ = false;
      w_done_beats_ = 0;
      w_chunk_beat_ = 0;
      w_resp_ = Resp::kOkay;
    }
    if (uq.ar_valid && us.ar_ready) {
      r_orig_ = uq.ar;
      r_active_ = true;
      r_chunk_sent_ = false;
      r_done_beats_ = 0;
      r_chunk_beat_ = 0;
    }

    // Downstream write progress.
    if (w_active_) {
      if (dq.aw_valid && ds.aw_ready) w_chunk_sent_ = true;
      if (dq.w_valid && ds.w_ready) {
        ++w_chunk_beat_;
        if (w_chunk_beat_ == chunk_beats_w_()) {
          w_done_beats_ += w_chunk_beat_;
          w_chunk_beat_ = 0;
          w_chunk_sent_ = false;
          if (w_done_beats_ == beats(w_orig_.len)) w_data_done_ = true;
        }
      }
      if (ds.b_valid && dq.b_ready) {
        if (ds.b.resp != Resp::kOkay) w_resp_ = ds.b.resp;
        ++w_bs_seen_;
        const unsigned chunks =
            (beats(w_orig_.len) + max_beats_ - 1) / max_beats_;
        if (w_data_done_ && w_bs_seen_ == chunks) {
          b_pending_up_ = true;
          w_active_ = false;
          w_data_done_ = false;
          w_bs_seen_ = 0;
        }
      }
    }
    if (us.b_valid && uq.b_ready) b_pending_up_ = false;

    // Downstream read progress.
    if (r_active_) {
      if (dq.ar_valid && ds.ar_ready) r_chunk_sent_ = true;
      if (ds.r_valid && dq.r_ready) {
        ++r_chunk_beat_;
        if (r_chunk_beat_ == chunk_beats_r_()) {
          r_done_beats_ += r_chunk_beat_;
          r_chunk_beat_ = 0;
          r_chunk_sent_ = false;
          if (r_done_beats_ == beats(r_orig_.len)) r_active_ = false;
        }
      }
    }
  }

  void reset() override {
    w_active_ = r_active_ = false;
    w_chunk_sent_ = r_chunk_sent_ = false;
    w_data_done_ = b_pending_up_ = false;
    w_done_beats_ = r_done_beats_ = 0;
    w_chunk_beat_ = r_chunk_beat_ = 0;
    w_bs_seen_ = 0;
    w_resp_ = Resp::kOkay;
    down_.req.force(AxiReq{});
    up_.rsp.force(AxiRsp{});
  }

 private:
  unsigned chunk_beats_w_() const {
    return std::min<unsigned>(max_beats_, beats(w_orig_.len) - w_done_beats_);
  }
  std::uint8_t chunk_len_w_() const {
    return static_cast<std::uint8_t>(chunk_beats_w_() - 1);
  }
  Addr chunk_addr_w_() const {
    return w_orig_.addr + Addr{w_done_beats_} * beat_bytes(w_orig_.size);
  }
  unsigned chunk_beats_r_() const {
    return std::min<unsigned>(max_beats_, beats(r_orig_.len) - r_done_beats_);
  }
  std::uint8_t chunk_len_r_() const {
    return static_cast<std::uint8_t>(chunk_beats_r_() - 1);
  }
  Addr chunk_addr_r_() const {
    return r_orig_.addr + Addr{r_done_beats_} * beat_bytes(r_orig_.size);
  }

  Link& up_;
  Link& down_;
  unsigned max_beats_;

  AwFlit w_orig_{};
  bool w_active_ = false;
  bool w_chunk_sent_ = false;
  bool w_data_done_ = false;
  bool b_pending_up_ = false;
  unsigned w_done_beats_ = 0;
  unsigned w_chunk_beat_ = 0;
  unsigned w_bs_seen_ = 0;
  Resp w_resp_ = Resp::kOkay;

  ArFlit r_orig_{};
  bool r_active_ = false;
  bool r_chunk_sent_ = false;
  unsigned r_done_beats_ = 0;
  unsigned r_chunk_beat_ = 0;
};

}  // namespace axi
