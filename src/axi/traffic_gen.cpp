#include "axi/traffic_gen.hpp"

#include "axi/addr.hpp"
#include "sim/logger.hpp"
#include "sim/state.hpp"

namespace axi {

TrafficGenerator::TrafficGenerator(std::string name, Link& link,
                                   std::uint64_t seed)
    : sim::Module(std::move(name)), link_(link), rng_(seed) {}

void TrafficGenerator::push(const TxnDesc& d) {
  PendingIssue p;
  p.desc = d;
  p.issue_cycle = cycle_;
  if (d.is_write) {
    aw_queue_.push_back(p);
  } else {
    ar_queue_.push_back(p);
  }
  notify_state_change();
}

void TrafficGenerator::maybe_spawn_random() {
  if (!random_.enabled) return;
  if (outstanding() + pending_to_issue() >= random_.max_outstanding) return;
  if (!rng_.chance(random_.p_new_txn)) return;
  TxnDesc d;
  d.is_write = rng_.chance(random_.write_fraction);
  d.id = static_cast<Id>(rng_.range(random_.id_min, random_.id_max));
  d.len = static_cast<std::uint8_t>(rng_.range(random_.len_min, random_.len_max));
  d.size = random_.size;
  const std::uint64_t nbytes = beat_bytes(d.size);
  // Align and keep the burst inside one 4 KiB page.
  Addr a = rng_.range(random_.addr_min, random_.addr_max) & ~(nbytes - 1);
  if (!within_4k(a, d.size, d.len)) a &= ~Addr{0xFFF};
  d.addr = a;
  push(d);
}

void TrafficGenerator::eval() {
  AxiReq q{};  // rebuilt from registers every pass

  if (!aw_queue_.empty() &&
      outstanding() < max_outstanding_) {
    q.aw_valid = true;
    q.aw = AwFlit{aw_queue_.front().desc.id, aw_queue_.front().desc.addr,
                  aw_queue_.front().desc.len, aw_queue_.front().desc.size,
                  aw_queue_.front().desc.burst};
  }
  if (!ar_queue_.empty() && outstanding() < max_outstanding_) {
    q.ar_valid = true;
    q.ar = ArFlit{ar_queue_.front().desc.id, ar_queue_.front().desc.addr,
                  ar_queue_.front().desc.len, ar_queue_.front().desc.size,
                  ar_queue_.front().desc.burst};
  }
  if (!w_streams_.empty() && w_streams_.front().wait == 0) {
    const WStream& s = w_streams_.front();
    const Addr a = beat_addr(s.desc.addr, s.desc.size, s.desc.len,
                             s.desc.burst, s.next_beat);
    q.w_valid = true;
    q.w = WFlit{pattern_data(a), 0xFF,
                s.next_beat + 1 == beats(s.desc.len)};
  }
  q.b_ready = b_ready_reg_;
  q.r_ready = r_ready_reg_;
  link_.req.write(q);
}

void TrafficGenerator::complete(InFlight& t, Resp resp, bool is_write) {
  TxnRecord rec;
  rec.desc = t.desc;
  rec.issue_cycle = t.issue_cycle;
  rec.accept_cycle = t.accept_cycle;
  rec.complete_cycle = cycle_;
  rec.resp = resp;
  records_.push_back(rec);
  if (resp != Resp::kOkay && resp != Resp::kExOkay) ++error_responses_;
  const auto lat = static_cast<double>(cycle_ - t.issue_cycle);
  if (is_write) {
    write_latency_.add(lat);
    --outstanding_writes_;
  } else {
    read_latency_.add(lat);
    --outstanding_reads_;
  }
}

void TrafficGenerator::tick() {
  const AxiReq q = link_.req.read();
  const AxiRsp s = link_.rsp.read();
  const bool b_ready0 = b_ready_reg_;
  const bool r_ready0 = r_ready_reg_;

  // --- AW accept ---
  if (aw_fire(q, s)) {
    PendingIssue p = aw_queue_.front();
    aw_queue_.pop_front();
    InFlight f;
    f.desc = p.desc;
    f.issue_cycle = p.issue_cycle;
    f.accept_cycle = cycle_;
    write_wait_[p.desc.id].push_back(f);
    ++outstanding_writes_;
    WStream ws;
    ws.desc = p.desc;
    ws.wait = w_start_delay_;
    w_streams_.push_back(ws);
  }

  // --- W beat sent ---
  if (w_fire(q, s)) {
    WStream& ws = w_streams_.front();
    ++ws.next_beat;
    if (ws.next_beat == beats(ws.desc.len)) {
      w_streams_.pop_front();
    } else {
      ws.wait = w_gap_;
    }
  } else if (!w_streams_.empty() && w_streams_.front().wait > 0) {
    --w_streams_.front().wait;
  }

  // --- AR accept ---
  if (ar_fire(q, s)) {
    PendingIssue p = ar_queue_.front();
    ar_queue_.pop_front();
    InFlight f;
    f.desc = p.desc;
    f.issue_cycle = p.issue_cycle;
    f.accept_cycle = cycle_;
    read_wait_[p.desc.id].push_back(f);
    ++outstanding_reads_;
  }

  // --- B response ---
  if (b_fire(q, s)) {
    auto it = write_wait_.find(s.b.id);
    if (it != write_wait_.end() && !it->second.empty()) {
      complete(it->second.front(), s.b.resp, /*is_write=*/true);
      it->second.pop_front();
    } else {
      sim::log(sim::LogLevel::kWarn, name(), cycle_)
          << "unrequested B response, id=" << s.b.id;
    }
    b_wait_ = 0;
  }
  // B ready-delay bookkeeping (register feeding next cycle's b_ready).
  if (b_ready_delay_ == 0) {
    b_ready_reg_ = true;
  } else if (s.b_valid && !q.b_ready) {
    b_ready_reg_ = ++b_wait_ >= b_ready_delay_;
  } else {
    b_ready_reg_ = false;
    if (!s.b_valid) b_wait_ = 0;
  }

  // --- R beats ---
  if (r_fire(q, s)) {
    auto it = read_wait_.find(s.r.id);
    if (it != read_wait_.end() && !it->second.empty()) {
      InFlight& f = it->second.front();
      const Addr a = beat_addr(f.desc.addr, f.desc.size, f.desc.len,
                               f.desc.burst, f.beats_seen);
      if (s.r.resp == Resp::kOkay && s.r.data != pattern_data(a) &&
          s.r.data != 0) {
        // 0 means the location was never written (memory default).
        ++data_mismatches_;
      }
      ++f.beats_seen;
      if (s.r.last) {
        complete(f, s.r.resp, /*is_write=*/false);
        it->second.pop_front();
      }
    } else {
      sim::log(sim::LogLevel::kWarn, name(), cycle_)
          << "unrequested R beat, id=" << s.r.id;
    }
    r_wait_ = 0;
  }
  if (r_ready_delay_ == 0) {
    r_ready_reg_ = true;
  } else if (s.r_valid && !q.r_ready) {
    r_ready_reg_ = ++r_wait_ >= r_ready_delay_;
  } else {
    r_ready_reg_ = false;
    if (!s.r_valid) r_wait_ = 0;
  }

  maybe_spawn_random();
  ++cycle_;
  // Edge activity: handshakes move the issue queues / W streams (and
  // outstanding gating), the ready-delay registers feed next cycle's
  // b_ready/r_ready, and non-empty queues keep ripening (W gaps, start
  // delays, outstanding caps releasing). A quiet edge with drained
  // queues and stable ready registers cannot change eval() outputs.
  tick_evt_ = aw_fire(q, s) || w_fire(q, s) || ar_fire(q, s) ||
              b_fire(q, s) || r_fire(q, s) || !aw_queue_.empty() ||
              !ar_queue_.empty() || !w_streams_.empty() ||
              b_ready_reg_ != b_ready0 || r_ready_reg_ != r_ready0;
}

void TrafficGenerator::reset() {
  aw_queue_.clear();
  ar_queue_.clear();
  w_streams_.clear();
  write_wait_.clear();
  read_wait_.clear();
  outstanding_writes_ = outstanding_reads_ = 0;
  b_wait_ = r_wait_ = 0;
  b_ready_reg_ = r_ready_reg_ = true;
  cycle_ = 0;
  records_.clear();
  data_mismatches_ = 0;
  error_responses_ = 0;
  write_latency_ = {};
  read_latency_ = {};
  link_.req.force(AxiReq{});
}

void TrafficGenerator::visit_state(sim::StateVisitor& v) {
  visit(v, rng_);
  visit(v, random_);
  visit(v, aw_queue_);
  visit(v, ar_queue_);
  visit(v, w_streams_);
  visit(v, write_wait_);
  visit(v, read_wait_);
  visit(v, outstanding_writes_);
  visit(v, outstanding_reads_);
  visit(v, b_ready_delay_);
  visit(v, b_wait_);
  visit(v, r_ready_delay_);
  visit(v, r_wait_);
  visit(v, b_ready_reg_);
  visit(v, r_ready_reg_);
  visit(v, w_gap_);
  visit(v, w_start_delay_);
  visit(v, max_outstanding_);
  visit(v, cycle_);
  visit(v, tick_evt_);
  visit(v, records_);
  visit(v, data_mismatches_);
  visit(v, error_responses_);
  visit(v, write_latency_);
  visit(v, read_latency_);
}

}  // namespace axi
