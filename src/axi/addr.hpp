#pragma once

#include <cstdint>

#include "axi/types.hpp"

namespace axi {

/// Address of the i-th beat of a burst, per the AXI4 specification
/// (IHI0022, "Burst address"). The start address is assumed aligned for
/// WRAP bursts (the protocol requires it; the scoreboard checks it).
inline Addr beat_addr(Addr start, std::uint8_t size, std::uint8_t len,
                      Burst burst, unsigned beat) {
  const std::uint64_t nbytes = beat_bytes(size);
  switch (burst) {
    case Burst::kFixed:
      return start;
    case Burst::kIncr: {
      const Addr aligned = start & ~(nbytes - 1);
      return beat == 0 ? start : aligned + beat * nbytes;
    }
    case Burst::kWrap: {
      const std::uint64_t container = nbytes * beats(len);
      const Addr wrap_lo = start & ~(container - 1);
      Addr a = start + beat * nbytes;
      if (a >= wrap_lo + container) a -= container;
      return a;
    }
  }
  return start;
}

/// True iff the burst stays inside one 4 KiB page (AXI4 requirement for
/// INCR bursts).
inline bool within_4k(Addr start, std::uint8_t size, std::uint8_t len) {
  const Addr last = start + beat_bytes(size) * beats(len) - 1;
  return (start >> 12) == (last >> 12);
}

/// True iff len encodes a legal WRAP burst length (2, 4, 8 or 16 beats).
inline bool legal_wrap_len(std::uint8_t len) {
  const unsigned b = beats(len);
  return b == 2 || b == 4 || b == 8 || b == 16;
}

}  // namespace axi
