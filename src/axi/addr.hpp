#pragma once

#include <cstdint>

#include "axi/types.hpp"

namespace axi {

/// Address of the i-th beat of a burst, per the AXI4 specification
/// (IHI0022, "Burst address"). The start address is assumed aligned for
/// WRAP bursts (the protocol requires it; the scoreboard checks it).
inline Addr beat_addr(Addr start, std::uint8_t size, std::uint8_t len,
                      Burst burst, unsigned beat) {
  const std::uint64_t nbytes = beat_bytes(size);
  switch (burst) {
    case Burst::kFixed:
      return start;
    case Burst::kIncr: {
      const Addr aligned = start & ~(nbytes - 1);
      return beat == 0 ? start : aligned + beat * nbytes;
    }
    case Burst::kWrap: {
      const std::uint64_t container = nbytes * beats(len);
      const Addr wrap_lo = start & ~(container - 1);
      Addr a = start + beat * nbytes;
      if (a >= wrap_lo + container) a -= container;
      return a;
    }
  }
  return start;
}

/// True iff the burst stays inside one 4 KiB page (AXI4 requirement for
/// INCR bursts).
inline bool within_4k(Addr start, std::uint8_t size, std::uint8_t len) {
  const Addr last = start + beat_bytes(size) * beats(len) - 1;
  return (start >> 12) == (last >> 12);
}

/// True iff len encodes a legal WRAP burst length (2, 4, 8 or 16 beats).
inline bool legal_wrap_len(std::uint8_t len) {
  const unsigned b = beats(len);
  return b == 2 || b == 4 || b == 8 || b == 16;
}

/// DRAM-style row/bank/column address split (the Sniper
/// dram_perf_model_detailed mapping): the low col_bits select the
/// column within a row, the next log2(num_banks) bits interleave
/// consecutive rows across banks, the rest is the row index.
/// num_banks must be a power of two.
inline std::uint64_t dram_bank(Addr a, std::uint32_t col_bits,
                               std::uint32_t num_banks) {
  return (a >> col_bits) & (num_banks - 1);
}
inline std::uint64_t dram_row(Addr a, std::uint32_t col_bits,
                              std::uint32_t num_banks) {
  std::uint32_t bank_bits = 0;
  while ((1u << bank_bits) < num_banks) ++bank_bits;
  return a >> (col_bits + bank_bits);
}

}  // namespace axi
