#pragma once

#include <optional>
#include <string>

#include "axi/link.hpp"
#include "axi/types.hpp"
#include "sim/module.hpp"
#include "sim/state.hpp"

namespace axi {

/// Full AXI4 register slice (spill register on all five channels), the
/// standard timing-closure element between interconnect stages. Adds
/// exactly one cycle of latency per direction and is fully
/// throughput-preserving (two-entry skid buffer per channel).
///
/// Used in tests/benches to prove the TMU tolerates pipelined paths —
/// its budgets measure end-to-end time, not combinational adjacency.
class RegSlice : public sim::Module {
 public:
  RegSlice(std::string name, Link& up, Link& down)
      : sim::Module(std::move(name)), up_(up), down_(down) {}

  void eval() override {
    // Downstream request: driven from the skid buffers.
    AxiReq q{};
    if (aw_.full_or_half()) {
      q.aw_valid = true;
      q.aw = aw_.front();
    }
    if (w_.full_or_half()) {
      q.w_valid = true;
      q.w = w_.front();
    }
    if (ar_.full_or_half()) {
      q.ar_valid = true;
      q.ar = ar_.front();
    }
    q.b_ready = !b_.full();
    q.r_ready = !r_.full();
    down_.req.write(q);

    // Upstream response: readiness of the request buffers + buffered
    // response beats.
    AxiRsp s{};
    s.aw_ready = !aw_.full();
    s.w_ready = !w_.full();
    s.ar_ready = !ar_.full();
    if (b_.full_or_half()) {
      s.b_valid = true;
      s.b = b_.front();
    }
    if (r_.full_or_half()) {
      s.r_valid = true;
      s.r = r_.front();
    }
    up_.rsp.write(s);
  }

  void tick() override {
    const AxiReq uq = up_.req.read();
    const AxiRsp us = up_.rsp.read();
    const AxiReq dq = down_.req.read();
    const AxiRsp ds = down_.rsp.read();

    // Pops first (free a slot), then pushes: a full buffer still
    // sustains one transfer per cycle.
    const bool pop = (dq.aw_valid && ds.aw_ready) ||
                     (dq.w_valid && ds.w_ready) ||
                     (dq.ar_valid && ds.ar_ready) ||
                     (us.b_valid && uq.b_ready) || (us.r_valid && uq.r_ready);
    if (dq.aw_valid && ds.aw_ready) aw_.pop();
    if (dq.w_valid && ds.w_ready) w_.pop();
    if (dq.ar_valid && ds.ar_ready) ar_.pop();
    if (us.b_valid && uq.b_ready) b_.pop();
    if (us.r_valid && uq.r_ready) r_.pop();

    const bool push = (uq.aw_valid && us.aw_ready) ||
                      (uq.w_valid && us.w_ready) ||
                      (uq.ar_valid && us.ar_ready) ||
                      (ds.b_valid && dq.b_ready) || (ds.r_valid && dq.r_ready);
    if (uq.aw_valid && us.aw_ready) aw_.push(uq.aw);
    if (uq.w_valid && us.w_ready) w_.push(uq.w);
    if (uq.ar_valid && us.ar_ready) ar_.push(uq.ar);
    if (ds.b_valid && dq.b_ready) b_.push(ds.b);
    if (ds.r_valid && dq.r_ready) r_.push(ds.r);

    // The skid buffers (the only eval-relevant state) move exactly on
    // handshakes.
    tick_evt_ = pop || push;
  }

  bool tick_changed_eval_state() const override { return tick_evt_; }

  void visit_state(sim::StateVisitor& v) override {
    visit(v, tick_evt_);
    visit(v, aw_);
    visit(v, w_);
    visit(v, ar_);
    visit(v, b_);
    visit(v, r_);
  }

  void reset() override {
    aw_.clear();
    w_.clear();
    ar_.clear();
    b_.clear();
    r_.clear();
    down_.req.force(AxiReq{});
    up_.rsp.force(AxiRsp{});
  }

 private:
  /// Two-entry skid buffer.
  template <typename T>
  class Skid {
   public:
    bool full() const { return count_ == 2; }
    bool full_or_half() const { return count_ >= 1; }
    const T& front() const { return buf_[rd_]; }
    void push(const T& v) {
      buf_[(rd_ + count_) % 2] = v;
      ++count_;
    }
    void pop() {
      rd_ = (rd_ + 1) % 2;
      --count_;
    }
    void clear() {
      count_ = 0;
      rd_ = 0;
    }

    template <typename V>
    void visit_fields(V& v) {
      visit(v, buf_[0]);
      visit(v, buf_[1]);
      visit(v, rd_);
      visit(v, count_);
    }

   private:
    T buf_[2]{};
    unsigned rd_ = 0;
    unsigned count_ = 0;
  };

  Link& up_;
  Link& down_;
  bool tick_evt_ = true;  ///< last tick touched eval-relevant state
  Skid<AwFlit> aw_;
  Skid<WFlit> w_;
  Skid<ArFlit> ar_;
  Skid<BFlit> b_;
  Skid<RFlit> r_;
};

}  // namespace axi
