#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "axi/link.hpp"
#include "axi/types.hpp"
#include "obs/metrics.hpp"
#include "sim/module.hpp"

namespace axi {

/// One bus-level event captured by the tracer.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kAw, kWBeat, kB, kAr, kRBeat,
  };
  std::uint64_t cycle = 0;
  Kind kind = Kind::kAw;
  Id id = 0;
  Addr addr = 0;       ///< AW/AR only
  std::uint8_t len = 0;
  Resp resp = Resp::kOkay;  ///< B/R only
  bool last = false;        ///< W/R only

  std::string describe() const {
    // Fixed-buffer formatting: describe() runs per event when dumping
    // large traces, and an ostringstream there means an allocation and
    // a locale imbue per call. The widest line (AW/AR with a 64-bit id
    // and address) is well under the buffer.
    char buf[96];
    switch (kind) {
      case Kind::kAw:
        std::snprintf(buf, sizeof buf,
                      "@%" PRIu64 " AW id=%" PRIu64 " addr=0x%" PRIx64
                      " len=%u",
                      cycle, static_cast<std::uint64_t>(id),
                      static_cast<std::uint64_t>(addr), unsigned{len});
        break;
      case Kind::kWBeat:
        std::snprintf(buf, sizeof buf, "@%" PRIu64 " W %s", cycle,
                      last ? "(last)" : "");
        break;
      case Kind::kB:
        std::snprintf(buf, sizeof buf, "@%" PRIu64 " B id=%" PRIu64 " %s",
                      cycle, static_cast<std::uint64_t>(id), to_string(resp));
        break;
      case Kind::kAr:
        std::snprintf(buf, sizeof buf,
                      "@%" PRIu64 " AR id=%" PRIu64 " addr=0x%" PRIx64
                      " len=%u",
                      cycle, static_cast<std::uint64_t>(id),
                      static_cast<std::uint64_t>(addr), unsigned{len});
        break;
      case Kind::kRBeat:
        std::snprintf(buf, sizeof buf, "@%" PRIu64 " R id=%" PRIu64 " %s%s",
                      cycle, static_cast<std::uint64_t>(id), to_string(resp),
                      last ? " (last)" : "");
        break;
    }
    return std::string(buf);
  }
};

/// Passive bus analyzer: records every handshake on a link into a
/// bounded in-memory log. Useful for debugging examples/tests and as
/// the data source for external waveform-style dumps.
class Tracer : public sim::Module {
 public:
  Tracer(std::string name, Link& link, std::size_t capacity = 65536)
      : sim::Module(std::move(name)), link_(link), capacity_(capacity) {}

  /// Registry-publishing variant (e.g. when attached to a Soc, pass
  /// soc.metrics()): per-kind event counters "<name>.aw|w|b|ar|r" plus
  /// "<name>.events" and "<name>.dropped", so bus activity and capture
  /// health show up next to the probe metrics. Slots follow the
  /// LatencyProbe convention: reset() does not clear them — the
  /// registry owner picks snapshot boundaries.
  Tracer(const std::string& name, Link& link, obs::MetricsRegistry& registry,
         std::size_t capacity = 65536)
      : sim::Module(name), link_(link), capacity_(capacity) {
    events_total_ = &registry.counter(name + ".events");
    dropped_ctr_ = &registry.counter(name + ".dropped");
    kind_ctr_[0] = &registry.counter(name + ".aw");
    kind_ctr_[1] = &registry.counter(name + ".w");
    kind_ctr_[2] = &registry.counter(name + ".b");
    kind_ctr_[3] = &registry.counter(name + ".ar");
    kind_ctr_[4] = &registry.counter(name + ".r");
  }

  /// Samples settled wires in tick() only; schedulers skip it in settle.
  bool is_combinational() const override { return false; }

  void tick() override {
    const AxiReq q = link_.req.read();
    const AxiRsp s = link_.rsp.read();
    if (aw_fire(q, s)) {
      push({cycle_, TraceEvent::Kind::kAw, q.aw.id, q.aw.addr, q.aw.len,
            Resp::kOkay, false});
    }
    if (w_fire(q, s)) {
      push({cycle_, TraceEvent::Kind::kWBeat, 0, 0, 0, Resp::kOkay,
            q.w.last});
    }
    if (b_fire(q, s)) {
      push({cycle_, TraceEvent::Kind::kB, s.b.id, 0, 0, s.b.resp, false});
    }
    if (ar_fire(q, s)) {
      push({cycle_, TraceEvent::Kind::kAr, q.ar.id, q.ar.addr, q.ar.len,
            Resp::kOkay, false});
    }
    if (r_fire(q, s)) {
      push({cycle_, TraceEvent::Kind::kRBeat, s.r.id, 0, 0, s.r.resp,
            s.r.last});
    }
    ++cycle_;
  }

  void reset() override {
    events_.clear();
    dropped_ = 0;
    cycle_ = 0;
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Events discarded because the bounded log was full — a nonzero
  /// count means the trace window is a prefix, not the whole run.
  std::uint64_t drop_count() const { return dropped_; }

  /// Events of one kind, in order.
  std::vector<TraceEvent> filter(TraceEvent::Kind k) const {
    std::vector<TraceEvent> out;
    for (const auto& e : events_) {
      if (e.kind == k) out.push_back(e);
    }
    return out;
  }

 private:
  void push(const TraceEvent& e) {
    if (events_.size() >= capacity_) {
      ++dropped_;
      if (dropped_ctr_ != nullptr) dropped_ctr_->inc();
      return;
    }
    events_.push_back(e);
    if (events_total_ != nullptr) {
      events_total_->inc();
      kind_ctr_[static_cast<std::size_t>(e.kind)]->inc();
    }
  }

  Link& link_;
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
  std::uint64_t cycle_ = 0;

  obs::Counter* events_total_ = nullptr;
  obs::Counter* dropped_ctr_ = nullptr;
  obs::Counter* kind_ctr_[5] = {nullptr, nullptr, nullptr, nullptr, nullptr};
};

}  // namespace axi
