#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "axi/types.hpp"

namespace axi {

/// One entry of the crossbar address map.
struct AddrRange {
  Addr base = 0;
  Addr size = 0;
  std::size_t sub_index = 0;
  bool contains(Addr a) const { return a >= base && a < base + size; }
};

/// Validated address decoder for the crossbar. The map is checked once
/// at construction — zero-size ranges, overlapping ranges and
/// out-of-range subordinate targets are rejected with
/// std::invalid_argument instead of silently routing by first match —
/// then sorted by base so lookups are a binary search instead of the
/// seed's linear scan per manager per subordinate per eval. Callers own
/// a last-hit hint: AXI traffic is bursty, so consecutive decodes from
/// one manager almost always land in the same range and skip the
/// search entirely.
class AddrDecoder {
 public:
  static constexpr std::size_t kNoMatch =
      std::numeric_limits<std::size_t>::max();

  AddrDecoder(std::vector<AddrRange> map, std::size_t n_subs)
      : ranges_(std::move(map)) {
    for (const AddrRange& r : ranges_) {
      if (r.size == 0) {
        throw std::invalid_argument(
            "Crossbar address map: zero-size AddrRange at base 0x" +
            hex(r.base));
      }
      if (r.base + r.size < r.base) {
        throw std::invalid_argument(
            "Crossbar address map: AddrRange at base 0x" + hex(r.base) +
            " wraps the address space");
      }
      if (r.sub_index >= n_subs) {
        throw std::invalid_argument(
            "Crossbar address map: AddrRange at base 0x" + hex(r.base) +
            " targets subordinate " + std::to_string(r.sub_index) +
            " but only " + std::to_string(n_subs) + " exist");
      }
    }
    std::sort(ranges_.begin(), ranges_.end(),
              [](const AddrRange& a, const AddrRange& b) {
                return a.base < b.base;
              });
    for (std::size_t i = 1; i < ranges_.size(); ++i) {
      const AddrRange& lo = ranges_[i - 1];
      const AddrRange& hi = ranges_[i];
      if (lo.base + lo.size > hi.base) {
        throw std::invalid_argument(
            "Crossbar address map: AddrRange at base 0x" + hex(lo.base) +
            " overlaps AddrRange at base 0x" + hex(hi.base));
      }
    }
  }

  /// Subordinate index for `a`, or kNoMatch (DECERR). `hint` is a
  /// caller-owned last-hit cache slot, updated on every successful
  /// search; pass a distinct slot per lookup stream (per manager).
  std::size_t lookup(Addr a, std::uint32_t& hint) const {
    if (hint < ranges_.size() && ranges_[hint].contains(a)) {
      return ranges_[hint].sub_index;
    }
    // Last range with base <= a, if any, is the only candidate.
    std::size_t lo = 0, hi = ranges_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (ranges_[mid].base <= a) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == 0 || !ranges_[lo - 1].contains(a)) return kNoMatch;
    hint = static_cast<std::uint32_t>(lo - 1);
    return ranges_[lo - 1].sub_index;
  }

  const std::vector<AddrRange>& ranges() const { return ranges_; }

 private:
  static std::string hex(Addr a) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string s;
    do {
      s.insert(s.begin(), kDigits[a & 0xF]);
      a >>= 4;
    } while (a != 0);
    return s;
  }

  std::vector<AddrRange> ranges_;  ///< sorted by base, non-overlapping
};

/// AXI same-ID ordering bookkeeping for one manager: which subordinate
/// currently holds outstanding transactions of each original ID, and how
/// many. A flat grow-only vector keyed on Id — managers use a handful of
/// IDs, so the linear probe beats the seed's std::map (node allocation
/// per new ID, pointer chasing per eval) on every axis that matters.
class IdRouteTable {
 public:
  /// True when ID `id` may be routed to `sub` without reordering risk:
  /// no outstanding transactions under that ID, or all of them already
  /// target the same subordinate.
  bool allows(Id id, std::size_t sub) const {
    const Entry* e = find(id);
    return e == nullptr || e->count == 0 || e->sub == sub;
  }

  /// Records an accepted transaction of `id` towards `sub`.
  void open(Id id, std::size_t sub) {
    Entry& e = grow(id);
    e.sub = sub;
    ++e.count;
  }

  /// Records a completed transaction of `id` (B delivered / last R).
  void close(Id id) {
    if (Entry* e = find(id); e != nullptr && e->count > 0) --e->count;
  }

  void clear() { entries_.clear(); }

  template <typename V>
  void visit_fields(V& v) {
    visit(v, entries_);
  }

 private:
  struct Entry {
    Id id = 0;
    std::size_t sub = 0;
    unsigned count = 0;
    template <typename V>
    void visit_fields(V& v) {
      visit(v, id);
      visit(v, sub);
      visit(v, count);
    }
  };

  const Entry* find(Id id) const {
    for (const Entry& e : entries_) {
      if (e.id == id) return &e;
    }
    return nullptr;
  }
  Entry* find(Id id) {
    for (Entry& e : entries_) {
      if (e.id == id) return &e;
    }
    return nullptr;
  }
  Entry& grow(Id id) {
    if (Entry* e = find(id)) return *e;
    entries_.push_back(Entry{id, 0, 0});
    return entries_.back();
  }

  std::vector<Entry> entries_;  ///< grow-only within a run; tiny
};

/// Outstanding write towards the internal DECERR subordinate.
struct DecErrWrite {
  Id id = 0;
  bool data_done = false;  ///< wlast seen
  template <typename V>
  void visit_fields(V& v) {
    visit(v, id);
    visit(v, data_done);
  }
};

/// Outstanding read towards the internal DECERR subordinate.
struct DecErrRead {
  Id id = 0;
  unsigned beats_left = 0;  ///< R beats still to send
  template <typename V>
  void visit_fields(V& v) {
    visit(v, id);
    visit(v, beats_left);
  }
};

/// All registered (clocked) crossbar state, shared between the sharded
/// and the monolithic evaluation paths and mutated only by the facade's
/// tick()/reset(). Indexed flat so both per-port shards and the
/// reference eval address exactly the same bits — the lockstep
/// equivalence test leans on that.
struct XbarState {
  static constexpr std::size_t kDecErr = AddrDecoder::kNoMatch;

  XbarState(std::size_t n_mgrs, std::size_t n_subs,
            std::vector<AddrRange> map, unsigned shift)
      : n_m(n_mgrs),
        n_s(n_subs),
        id_shift(shift),
        id_mask((Id{1} << shift) - 1),
        decoder(std::move(map), n_subs),
        w_route(n_subs),
        mgr_w_route(n_mgrs),
        aw_rr(n_subs, 0),
        ar_rr(n_subs, 0),
        b_rr(n_mgrs, 0),
        r_rr(n_mgrs, 0),
        aw_id_route(n_mgrs),
        ar_id_route(n_mgrs),
        dec_w(n_mgrs),
        dec_r(n_mgrs),
        mgr_evt(n_mgrs, 1),
        sub_evt(n_subs, 1) {}

  std::size_t n_m, n_s;
  unsigned id_shift;
  Id id_mask;
  AddrDecoder decoder;

  // Registered grant state.
  std::vector<std::deque<std::size_t>> w_route;      ///< per sub: mgr queue
  std::vector<std::deque<std::size_t>> mgr_w_route;  ///< per mgr: sub queue
  std::vector<std::size_t> aw_rr;  ///< per sub round-robin pointer
  std::vector<std::size_t> ar_rr;
  std::vector<std::size_t> b_rr;  ///< per mgr: round-robin over subs for B
  std::vector<std::size_t> r_rr;
  std::vector<IdRouteTable> aw_id_route;  ///< per manager
  std::vector<IdRouteTable> ar_id_route;

  // Default (DECERR) subordinate state, indexed by manager so the
  // response muxes read their own queue front instead of scanning a
  // global deque (the seed's dec_q_ linear scans).
  std::vector<std::deque<DecErrWrite>> dec_w;  ///< per mgr, AW order
  std::vector<std::deque<DecErrRead>> dec_r;   ///< per mgr, AR order
  std::size_t decode_errors = 0;

  // Per-shard edge-activity flags, recomputed by the facade's tick():
  // set iff the edge mutated state that the shard's eval reads (wire
  // changes are traced separately by the scheduler).
  std::vector<char> mgr_evt;
  std::vector<char> sub_evt;

  /// Oldest DECERR write of manager m whose data has fully arrived
  /// (the next B the internal DECERR subordinate will offer), if any.
  /// W beats follow AW order per manager, so entries finish in queue
  /// order — but scan defensively rather than assume the front.
  const DecErrWrite* first_done_write(std::size_t m) const {
    for (const DecErrWrite& t : dec_w[m]) {
      if (t.data_done) return &t;
    }
    return nullptr;
  }

  /// State serde: registered state only — the shape fields (n_m, n_s,
  /// id bits) and the decoder are construction-time and never change.
  template <typename V>
  void visit_fields(V& v) {
    visit(v, w_route);
    visit(v, mgr_w_route);
    visit(v, aw_rr);
    visit(v, ar_rr);
    visit(v, b_rr);
    visit(v, r_rr);
    visit(v, aw_id_route);
    visit(v, ar_id_route);
    visit(v, dec_w);
    visit(v, dec_r);
    visit(v, decode_errors);
    visit(v, mgr_evt);
    visit(v, sub_evt);
  }

  void clear() {
    for (auto& q : w_route) q.clear();
    for (auto& q : mgr_w_route) q.clear();
    std::fill(aw_rr.begin(), aw_rr.end(), 0);
    std::fill(ar_rr.begin(), ar_rr.end(), 0);
    std::fill(b_rr.begin(), b_rr.end(), 0);
    std::fill(r_rr.begin(), r_rr.end(), 0);
    for (auto& t : aw_id_route) t.clear();
    for (auto& t : ar_id_route) t.clear();
    for (auto& q : dec_w) q.clear();
    for (auto& q : dec_r) q.clear();
    decode_errors = 0;
    std::fill(mgr_evt.begin(), mgr_evt.end(), 1);
    std::fill(sub_evt.begin(), sub_evt.end(), 1);
  }
};

}  // namespace axi
