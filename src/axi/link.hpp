#pragma once

#include "axi/types.hpp"
#include "sim/wire.hpp"

namespace axi {

/// One AXI4 point-to-point connection: the manager drives `req`, the
/// subordinate drives `rsp`.
struct Link {
  sim::Wire<AxiReq> req;
  sim::Wire<AxiRsp> rsp;
};

/// Handshake helpers over settled wires (call from tick()).
inline bool aw_fire(const AxiReq& q, const AxiRsp& s) {
  return q.aw_valid && s.aw_ready;
}
inline bool w_fire(const AxiReq& q, const AxiRsp& s) {
  return q.w_valid && s.w_ready;
}
inline bool b_fire(const AxiReq& q, const AxiRsp& s) {
  return s.b_valid && q.b_ready;
}
inline bool ar_fire(const AxiReq& q, const AxiRsp& s) {
  return q.ar_valid && s.ar_ready;
}
inline bool r_fire(const AxiReq& q, const AxiRsp& s) {
  return s.r_valid && q.r_ready;
}

}  // namespace axi
