#include "axi/memory.hpp"

#include <algorithm>
#include <stdexcept>

#include "axi/addr.hpp"
#include "sim/state.hpp"

namespace axi {

MemorySubordinate::MemorySubordinate(std::string name, Link& link,
                                     MemoryConfig cfg)
    : sim::Module(std::move(name)), link_(link), cfg_(cfg) {
  if (cfg_.bank.enabled) {
    const std::uint32_t n = cfg_.bank.num_banks;
    if (n == 0 || (n & (n - 1)) != 0) {
      throw std::invalid_argument("MemorySubordinate '" + this->name() +
                                  "': bank.num_banks must be a power of two");
    }
    bank_row_.assign(n, kRowClosed);
  }
}

std::uint32_t MemorySubordinate::bank_access(Addr a) {
  if (!cfg_.bank.enabled) return 0;
  const BankTimingConfig& b = cfg_.bank;
  const std::uint64_t bank = dram_bank(a, b.col_bits, b.num_banks);
  const std::uint64_t row = dram_row(a, b.col_bits, b.num_banks);
  std::uint64_t& open = bank_row_[bank];
  std::uint32_t extra;
  if (open == row) {
    extra = b.t_hit;
    ++row_hits_;
  } else if (open == kRowClosed) {
    extra = b.t_miss;
    ++row_misses_;
  } else {
    extra = b.t_conflict;
    ++row_conflicts_;
  }
  open = b.open_page ? row : kRowClosed;
  return extra;
}

void MemorySubordinate::store_beat(Addr a, std::uint8_t size, Data data,
                                   std::uint8_t strb) {
  const std::uint64_t nbytes = beat_bytes(size);
  const Addr base = a & ~(nbytes - 1);
  Page& p = touch_page(base);
  const std::uint64_t off = base % kPageBytes;
  for (std::uint64_t i = 0; i < nbytes && i < 8; ++i) {
    if (strb & (1u << i)) {
      p[off + i] = static_cast<std::uint8_t>(data >> (8 * i));
    }
  }
}

Data MemorySubordinate::load_beat(Addr a, std::uint8_t size) const {
  const std::uint64_t nbytes = beat_bytes(size);
  const Addr base = a & ~(nbytes - 1);
  const Page* p = find_page(base);
  if (p == nullptr) return 0;
  const std::uint64_t off = base % kPageBytes;
  Data d = 0;
  for (std::uint64_t i = 0; i < nbytes && i < 8; ++i) {
    d |= Data{(*p)[off + i]} << (8 * i);
  }
  return d;
}

std::uint64_t MemorySubordinate::peek_beat(Addr a, std::uint8_t size) const {
  return load_beat(a, size);
}

void MemorySubordinate::eval() {
  AxiRsp s{};

  // AW ready: after the configured wait, when there is queue space.
  s.aw_ready = write_q_.size() < cfg_.max_outstanding &&
               aw_wait_ >= cfg_.aw_accept_latency;

  // W ready: a write burst is open and the beat-rate counter allows.
  const bool write_open = !write_q_.empty() && !write_q_.front().data_done;
  s.w_ready = write_open && w_rate_cnt_ == 0;

  // B: oldest pending response whose latency elapsed.
  if (!b_q_.empty() && b_q_.front().ready_at <= cycle_) {
    s.b_valid = true;
    s.b = BFlit{b_q_.front().id, b_q_.front().resp};
  }

  // AR ready.
  s.ar_ready = read_q_.size() < cfg_.max_outstanding &&
               ar_wait_ >= cfg_.ar_accept_latency;

  // R: oldest read streams beats.
  if (!read_q_.empty() && read_q_.front().ready_at <= cycle_ &&
      r_rate_cnt_ == 0) {
    const ReadTxn& t = read_q_.front();
    const Addr a =
        beat_addr(t.ar.addr, t.ar.size, t.ar.len, t.ar.burst, t.next_beat);
    s.r_valid = true;
    s.r = RFlit{t.ar.id, in_error_region(a) ? Data{0} : load_beat(a, t.ar.size),
                in_error_region(a) ? Resp::kSlvErr : Resp::kOkay,
                t.next_beat + 1 == beats(t.ar.len)};
  }

  link_.rsp.write(s);
}

void MemorySubordinate::tick() {
  const AxiReq q = link_.req.read();
  const AxiRsp s = link_.rsp.read();

  if (clear_inflight_) {
    write_q_.clear();
    b_q_.clear();
    read_q_.clear();
    aw_wait_ = ar_wait_ = 0;
    w_rate_cnt_ = r_rate_cnt_ = 0;
    close_all_rows();  // a domain reset precharges every bank
    clear_inflight_ = false;
    ++cycle_;
    tick_evt_ = true;  // queues flushed: response outputs may drop
    return;
  }

  // AW accept-latency counter.
  if (q.aw_valid && !s.aw_ready) {
    ++aw_wait_;
  }
  if (aw_fire(q, s)) {
    write_q_.push_back(WriteTxn{q.aw, 0, false});
    aw_wait_ = 0;
  }

  // W beat.
  if (w_fire(q, s)) {
    WriteTxn& t = write_q_.front();
    const Addr a =
        beat_addr(t.aw.addr, t.aw.size, t.aw.len, t.aw.burst, t.beats_got);
    const bool err = in_error_region(a);
    if (!err) store_beat(a, t.aw.size, q.w.data, q.w.strb);
    ++t.beats_got;
    if (q.w.last || t.beats_got == beats(t.aw.len)) {
      t.data_done = true;
      // Bank timing charges the whole burst once at its start address
      // (writes update the row buffer before same-edge AR accepts, a
      // fixed order that keeps trials deterministic).
      b_q_.push_back(PendingB{t.aw.id,
                              in_error_region(t.aw.addr) ? Resp::kSlvErr
                                                         : Resp::kOkay,
                              cycle_ + cfg_.b_latency + bank_access(t.aw.addr)});
      write_q_.pop_front();
      ++writes_done_;
    }
    w_rate_cnt_ = cfg_.w_ready_every > 1 ? cfg_.w_ready_every - 1 : 0;
  } else if (w_rate_cnt_ > 0) {
    --w_rate_cnt_;
  }

  // B handshake.
  if (b_fire(q, s)) {
    b_q_.pop_front();
  }

  // AR accept.
  if (q.ar_valid && !s.ar_ready) {
    ++ar_wait_;
  }
  if (ar_fire(q, s)) {
    read_q_.push_back(ReadTxn{
        q.ar, 0, cycle_ + cfg_.r_first_latency + bank_access(q.ar.addr)});
    ar_wait_ = 0;
  }

  // R beat.
  if (r_fire(q, s)) {
    ReadTxn& t = read_q_.front();
    ++t.next_beat;
    if (t.next_beat == beats(t.ar.len)) {
      read_q_.pop_front();
      ++reads_done_;
    }
    r_rate_cnt_ = cfg_.r_beat_every > 1 ? cfg_.r_beat_every - 1 : 0;
  } else if (r_rate_cnt_ > 0) {
    --r_rate_cnt_;
  }

  ++cycle_;
  // Edge activity: handshakes mutate the queues, pending requests
  // advance accept-latency counters, and non-empty queues ripen against
  // cycle_ (latency expiry) — any of those can move eval() outputs. A
  // fully quiet edge (no valids, everything drained) provably cannot.
  tick_evt_ = aw_fire(q, s) || w_fire(q, s) || b_fire(q, s) ||
              ar_fire(q, s) || r_fire(q, s) || q.aw_valid || q.ar_valid ||
              !write_q_.empty() || !b_q_.empty() || !read_q_.empty() ||
              w_rate_cnt_ != 0 || r_rate_cnt_ != 0;
}

void MemorySubordinate::reset() {
  write_q_.clear();
  b_q_.clear();
  read_q_.clear();
  aw_wait_ = ar_wait_ = 0;
  w_rate_cnt_ = r_rate_cnt_ = 0;
  cycle_ = 0;
  writes_done_ = reads_done_ = 0;
  close_all_rows();
  row_hits_ = row_misses_ = row_conflicts_ = 0;
  clear_inflight_ = false;
  link_.rsp.force(AxiRsp{});
}

void MemorySubordinate::visit_state(sim::StateVisitor& v) {
  // Paged store, page-number order: the unordered map's iteration order
  // is not part of the model's behavior, so the snapshot canonicalizes
  // it (byte-stable capture for identical memory contents).
  std::uint64_t n_pages = mem_.size();
  v.count(n_pages);
  if (v.saving()) {
    std::vector<Addr> pnos;
    pnos.reserve(mem_.size());
    for (const auto& [pno, page] : mem_) pnos.push_back(pno);
    std::sort(pnos.begin(), pnos.end());
    for (Addr pno : pnos) {
      v.u64(pno);
      v.raw(mem_[pno].data(), kPageBytes);
    }
  } else {
    mem_.clear();
    for (std::uint64_t i = 0; i < n_pages; ++i) {
      Addr pno = 0;
      v.u64(pno);
      v.raw(mem_[pno].data(), kPageBytes);
    }
    r_cache_no_ = 0;
    r_cache_page_ = nullptr;
    w_cache_no_ = 0;
    w_cache_page_ = nullptr;
  }
  visit(v, write_q_);
  visit(v, b_q_);
  visit(v, read_q_);
  visit(v, aw_wait_);
  visit(v, ar_wait_);
  visit(v, w_rate_cnt_);
  visit(v, r_rate_cnt_);
  visit(v, cycle_);
  visit(v, writes_done_);
  visit(v, reads_done_);
  visit(v, bank_row_);
  visit(v, row_hits_);
  visit(v, row_misses_);
  visit(v, row_conflicts_);
  visit(v, clear_inflight_);
  visit(v, tick_evt_);
}

}  // namespace axi
