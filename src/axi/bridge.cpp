#include "axi/bridge.hpp"

#include "sim/state.hpp"

#include <stdexcept>

namespace axi {

Bridge::Bridge(std::string name, Link& up, Link& down, BridgeConfig cfg)
    : sim::Module(std::move(name)), up_(up), down_(down), cfg_(cfg) {
  const auto err = [this](const std::string& msg) {
    throw std::invalid_argument("Bridge '" + this->name() + "': " + msg);
  };
  if ((cfg_.req_latency == 0) != (cfg_.rsp_latency == 0)) {
    err("mixed zero/non-zero latencies (a transparent bridge must be "
        "transparent in both directions)");
  }
  if (transparent() && cfg_.id_remap) {
    err("id_remap needs a latched bridge (latency >= 1)");
  }
  if (cfg_.id_remap && cfg_.max_ids == 0) err("id_remap with max_ids = 0");
  if (!transparent() && cfg_.fifo_depth == 0) err("fifo_depth = 0");
  wr_ids_.resize(cfg_.id_remap ? cfg_.max_ids : 0);
  rd_ids_.resize(cfg_.id_remap ? cfg_.max_ids : 0);
  tick_evt_ = !transparent();
}

void Bridge::eval() {
  if (transparent()) {
    down_.req.write(up_.req.read());
    up_.rsp.write(down_.rsp.read());
    return;
  }

  const AxiReq uq = up_.req.read();

  // Downstream manager port: ripened queue heads drive the request
  // channels; response readies track upbound queue space.
  AxiReq dq{};
  if (!aw_q_.empty() && aw_q_.front().ready_at <= cycle_) {
    dq.aw_valid = true;
    dq.aw = aw_q_.front().flit;
  }
  if (!w_q_.empty() && w_q_.front().ready_at <= cycle_) {
    dq.w_valid = true;
    dq.w = w_q_.front().flit;
  }
  if (!ar_q_.empty() && ar_q_.front().ready_at <= cycle_) {
    dq.ar_valid = true;
    dq.ar = ar_q_.front().flit;
  }
  dq.b_ready = b_q_.size() < cfg_.fifo_depth;
  dq.r_ready = r_q_.size() < cfg_.fifo_depth;
  down_.req.write(dq);

  // Upstream subordinate port: request readies track downbound queue
  // space (and, remapping, slot availability for the offered ID);
  // ripened upbound heads drive the response channels.
  AxiRsp us{};
  us.aw_ready = aw_q_.size() < cfg_.fifo_depth &&
                (!cfg_.id_remap || wr_ids_.can_admit(uq.aw.id));
  us.w_ready = w_q_.size() < cfg_.fifo_depth;
  us.ar_ready = ar_q_.size() < cfg_.fifo_depth &&
                (!cfg_.id_remap || rd_ids_.can_admit(uq.ar.id));
  if (!b_q_.empty() && b_q_.front().ready_at <= cycle_) {
    us.b_valid = true;
    us.b = b_q_.front().flit;
  }
  if (!r_q_.empty() && r_q_.front().ready_at <= cycle_) {
    us.r_valid = true;
    us.r = r_q_.front().flit;
  }
  up_.rsp.write(us);
}

void Bridge::tick() {
  if (transparent()) return;

  const AxiReq uq = up_.req.read();
  const AxiRsp us = up_.rsp.read();
  const AxiReq dq = down_.req.read();
  const AxiRsp ds = down_.rsp.read();

  if (clear_inflight_) {
    aw_q_.clear();
    w_q_.clear();
    ar_q_.clear();
    b_q_.clear();
    r_q_.clear();
    wr_ids_.clear();
    rd_ids_.clear();
    clear_inflight_ = false;
    ++cycle_;
    tick_evt_ = true;  // queues flushed: every output may drop
    return;
  }

  bool act = false;

  // Downstream handshakes: retire downbound heads, capture responses
  // into the upbound queues (restoring the original ID when remapping;
  // a tID the pool does not know — possible only after hw_reset dropped
  // the mapping mid-flight — passes through untranslated).
  if (aw_fire(dq, ds)) {
    aw_q_.pop_front();
    act = true;
  }
  if (w_fire(dq, ds)) {
    w_q_.pop_front();
    act = true;
  }
  if (ar_fire(dq, ds)) {
    ar_q_.pop_front();
    act = true;
  }
  if (b_fire(dq, ds)) {
    BFlit b = ds.b;
    if (cfg_.id_remap && wr_ids_.busy(b.id)) {
      const std::uint32_t tid = static_cast<std::uint32_t>(b.id);
      b.id = wr_ids_.original_id(tid);
      wr_ids_.release(tid);
    }
    b_q_.push_back({b, cycle_ + cfg_.rsp_latency});
    act = true;
  }
  if (r_fire(dq, ds)) {
    RFlit r = ds.r;
    if (cfg_.id_remap && rd_ids_.busy(r.id)) {
      const std::uint32_t tid = static_cast<std::uint32_t>(r.id);
      r.id = rd_ids_.original_id(tid);
      if (r.last) rd_ids_.release(tid);
    }
    r_q_.push_back({r, cycle_ + cfg_.rsp_latency});
    act = true;
  }

  // Upstream handshakes: stage requests downbound (eval gated ready on
  // can_admit, so admit cannot fail here; keep the original ID if it
  // somehow does), retire delivered responses.
  if (aw_fire(uq, us)) {
    AwFlit f = uq.aw;
    if (cfg_.id_remap) {
      if (const auto t = wr_ids_.admit(f.id)) f.id = *t;
    }
    aw_q_.push_back({f, cycle_ + cfg_.req_latency});
    act = true;
  }
  if (w_fire(uq, us)) {
    w_q_.push_back({uq.w, cycle_ + cfg_.req_latency});
    act = true;
  }
  if (ar_fire(uq, us)) {
    ArFlit f = uq.ar;
    if (cfg_.id_remap) {
      if (const auto t = rd_ids_.admit(f.id)) f.id = *t;
    }
    ar_q_.push_back({f, cycle_ + cfg_.req_latency});
    act = true;
  }
  if (b_fire(uq, us)) {
    b_q_.pop_front();
    ++writes_forwarded_;
    act = true;
  }
  if (r_fire(uq, us)) {
    if (us.r.last) ++reads_forwarded_;
    r_q_.pop_front();
    act = true;
  }

  ++cycle_;
  // Non-empty queues keep ripening against cycle_, so eval can change
  // until the bridge drains; a quiet, empty edge provably cannot.
  tick_evt_ = act || !aw_q_.empty() || !w_q_.empty() || !ar_q_.empty() ||
              !b_q_.empty() || !r_q_.empty();
}

void Bridge::reset() {
  aw_q_.clear();
  w_q_.clear();
  ar_q_.clear();
  b_q_.clear();
  r_q_.clear();
  wr_ids_.clear();
  rd_ids_.clear();
  cycle_ = 0;
  writes_forwarded_ = reads_forwarded_ = 0;
  clear_inflight_ = false;
  tick_evt_ = !transparent();
  down_.req.force(AxiReq{});
  up_.rsp.force(AxiRsp{});
}

void Bridge::visit_state(sim::StateVisitor& v) {
  visit(v, aw_q_);
  visit(v, w_q_);
  visit(v, ar_q_);
  visit(v, b_q_);
  visit(v, r_q_);
  visit(v, wr_ids_);
  visit(v, rd_ids_);
  visit(v, cycle_);
  visit(v, writes_forwarded_);
  visit(v, reads_forwarded_);
  visit(v, clear_inflight_);
  visit(v, tick_evt_);
}

}  // namespace axi
