#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "axi/link.hpp"
#include "axi/types.hpp"
#include "sim/module.hpp"

namespace axi {

/// One entry of the crossbar address map.
struct AddrRange {
  Addr base = 0;
  Addr size = 0;
  std::size_t sub_index = 0;
  bool contains(Addr a) const { return a >= base && a < base + size; }
};

/// N-manager x M-subordinate AXI4 crossbar.
///
/// * Address-decoded routing via an AddrRange map; unmapped addresses go
///   to an internal default subordinate that responds DECERR.
/// * Per-subordinate round-robin arbitration on AW and AR.
/// * W beats are routed by a per-subordinate FIFO of granted managers
///   (AXI4 forbids W interleaving) and a per-manager FIFO of granted
///   subordinates (a manager sends W in its own AW order).
/// * Manager index is carried in the upper ID bits
///   (out_id = in_id | mgr << id_shift) so B/R route back by ID.
/// * AXI same-ID ordering: a manager's AW/AR with an ID that is already
///   outstanding towards a *different* subordinate is stalled until those
///   transactions drain (standard axi_xbar behaviour), because responses
///   from distinct subordinates could otherwise interleave out of order.
class Crossbar : public sim::Module {
 public:
  Crossbar(std::string name, std::vector<Link*> managers,
           std::vector<Link*> subordinates, std::vector<AddrRange> map,
           unsigned id_shift = 8);

  void eval() override;
  void tick() override;
  void reset() override;
  bool tick_changed_eval_state() const override { return tick_evt_; }

  std::size_t decode_errors() const { return decode_errors_; }

 private:
  std::size_t decode(Addr a) const;  ///< returns sub index or kDecErr
  static constexpr std::size_t kDecErr = static_cast<std::size_t>(-1);

  struct DecErrTxn {
    Id id;
    std::size_t mgr;      ///< manager the response routes back to
    bool is_write;
    unsigned beats_left;  ///< reads: R beats still to send
    bool data_done;       ///< writes: wlast seen
  };

  std::vector<Link*> mgrs_;
  std::vector<Link*> subs_;
  std::vector<AddrRange> map_;
  unsigned id_shift_;

  // Registered grant state.
  std::vector<std::deque<std::size_t>> w_route_;      ///< per sub: mgr queue
  std::vector<std::deque<std::size_t>> mgr_w_route_;  ///< per mgr: sub queue
  std::vector<std::size_t> aw_rr_;  ///< per sub round-robin pointer
  std::vector<std::size_t> ar_rr_;
  std::vector<std::size_t> b_rr_;  ///< per mgr: round-robin over subs for B
  std::vector<std::size_t> r_rr_;

  // Same-ID ordering: per manager, per original ID, the subordinate
  // currently holding outstanding transactions and their count.
  struct IdRoute {
    std::size_t sub = 0;
    unsigned count = 0;
  };
  bool id_route_allows(const std::map<Id, IdRoute>& routes, Id id,
                       std::size_t sub) const {
    auto it = routes.find(id);
    return it == routes.end() || it->second.count == 0 ||
           it->second.sub == sub;
  }
  std::vector<std::map<Id, IdRoute>> aw_id_route_;  ///< per manager
  std::vector<std::map<Id, IdRoute>> ar_id_route_;

  // Default (DECERR) subordinate state.
  std::deque<DecErrTxn> dec_q_;
  std::size_t decode_errors_ = 0;
  bool tick_evt_ = true;  ///< last tick touched eval-relevant state
};

}  // namespace axi
