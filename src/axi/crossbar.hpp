#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "axi/link.hpp"
#include "axi/types.hpp"
#include "axi/xbar_state.hpp"
#include "sim/module.hpp"
#include "sim/wire.hpp"

namespace axi {

/// How the crossbar evaluates its combinational paths.
enum class XbarImpl {
  /// Per-port shards (default): M request-path shards (AW/AR
  /// arbitration + W routing for one subordinate) and N response-path
  /// shards (decode/demux + B/R mux for one manager), coupled through
  /// internal per-(manager, subordinate) wires. Each shard is its own
  /// sim::Module, so the event-driven scheduler wakes only shards whose
  /// wires actually changed — an idle port costs zero evals and a busy
  /// port costs O(N) or O(M) instead of O(N x M).
  kSharded,
  /// Single monolithic eval over all ports (the seed behaviour on the
  /// shared XbarState). Retained as the lockstep cross-check reference
  /// and for bring-up.
  kMonolithic,
};

inline const char* to_string(XbarImpl i) {
  return i == XbarImpl::kSharded ? "sharded" : "monolithic";
}

/// N-manager x M-subordinate AXI4 crossbar.
///
/// * Address-decoded routing via an AddrRange map (validated at
///   construction: overlapping or zero-size ranges throw); unmapped
///   addresses go to an internal default subordinate that responds
///   DECERR.
/// * Per-subordinate round-robin arbitration on AW and AR.
/// * W beats are routed by a per-subordinate FIFO of granted managers
///   (AXI4 forbids W interleaving) and a per-manager FIFO of granted
///   subordinates (a manager sends W in its own AW order).
/// * Manager index is carried in the upper ID bits
///   (out_id = in_id | mgr << id_shift) so B/R route back by ID.
/// * AXI same-ID ordering: a manager's AW/AR with an ID that is already
///   outstanding towards a *different* subordinate is stalled until those
///   transactions drain (standard axi_xbar behaviour), because responses
///   from distinct subordinates could otherwise interleave out of order.
///
/// This class is a thin facade over the sharded evaluation architecture:
/// all registered state lives in one XbarState committed by tick()
/// exactly once per edge, while the combinational work runs either in
/// the per-port shards (XbarImpl::kSharded, registered automatically via
/// Simulator::add's submodule visit) or in the retained monolithic
/// eval() (XbarImpl::kMonolithic). Both implementations are wire-exact
/// equivalents, pinned by tests/test_xbar_shard_equiv.cpp.
class Crossbar : public sim::Module {
 public:
  Crossbar(std::string name, std::vector<Link*> managers,
           std::vector<Link*> subordinates, std::vector<AddrRange> map,
           unsigned id_shift = 8, XbarImpl impl = XbarImpl::kSharded);
  ~Crossbar() override;

  void eval() override;  ///< monolithic reference eval (kMonolithic only)
  void tick() override;
  void reset() override;
  /// In sharded mode the facade drives no wires — the shards do — so
  /// both settle kernels skip its eval entirely.
  bool is_combinational() const override {
    return impl_ == XbarImpl::kMonolithic;
  }
  bool tick_changed_eval_state() const override { return tick_evt_; }
  void visit_submodules(
      const std::function<void(sim::Module&)>& visit) override;
  /// Facade-owned registered state + the internal shard-coupling wires;
  /// the shards' own scratch (stale-wire bookkeeping) rides along via
  /// their visit_state in the netlist walk.
  void visit_state(sim::StateVisitor& v) override;

  std::size_t decode_errors() const { return st_.decode_errors; }
  XbarImpl impl() const { return impl_; }

 private:
  class MgrShard;
  class SubShard;
  friend class MgrShard;
  friend class SubShard;

  static constexpr std::size_t kDecErr = XbarState::kDecErr;
  /// "no port selected" sentinel for shard-internal mux results;
  /// distinct from kDecErr.
  static constexpr std::size_t kNone = kDecErr - 1;

  /// Round-robin distance of `idx` from pointer `rr` over `mod` slots:
  /// the scan-order rank the seed's first-match loops implied, so
  /// "minimum distance" selects exactly the seed's winner.
  static std::size_t rr_dist(std::size_t idx, std::size_t rr,
                             std::size_t mod) {
    return (idx + mod - rr) % mod;
  }

  /// Resets wires of `prev`-active ports that are no longer in `cur` to
  /// the default value. Together with writing every `cur` port each
  /// eval, this maintains the sparse-write invariant both shard types
  /// rely on: a wire indexed outside the last eval's `cur` array
  /// provably holds a default-constructed value.
  template <typename WireAt, typename Default>
  static void reset_stale(const std::array<std::size_t, 5>& prev,
                          const std::array<std::size_t, 5>& cur,
                          std::size_t bound, WireAt&& wire_at,
                          const Default& def) {
    for (const std::size_t i : prev) {
      if (i >= bound) continue;
      bool still_active = false;
      for (const std::size_t c : cur) still_active = still_active || c == i;
      if (!still_active) wire_at(i).write(def);
    }
  }

  sim::Wire<AxiReq>& xreq(std::size_t m, std::size_t s) {
    return xreq_[m * subs_.size() + s];
  }
  sim::Wire<AxiRsp>& xrsp(std::size_t m, std::size_t s) {
    return xrsp_[m * subs_.size() + s];
  }

  std::vector<Link*> mgrs_;
  std::vector<Link*> subs_;
  XbarImpl impl_;
  XbarState st_;

  // Internal shard-to-shard wires, [m * n_s + s] (sharded mode only).
  // Request direction carries the demuxed per-pair valids/payloads and
  // the response-channel readies; response direction carries the
  // per-pair grant readies and the demuxed B/R flits.
  std::vector<sim::Wire<AxiReq>> xreq_;
  std::vector<sim::Wire<AxiRsp>> xrsp_;
  std::vector<std::unique_ptr<MgrShard>> mgr_shards_;
  std::vector<std::unique_ptr<SubShard>> sub_shards_;

  // Monolithic-eval scratch, hoisted out of the per-eval hot path (the
  // seed allocated both vectors on every eval).
  std::vector<AxiReq> sub_req_scratch_;
  std::vector<AxiRsp> mgr_rsp_scratch_;
  std::vector<std::size_t> aw_tgt_;  ///< per mgr: decoded AW target
  std::vector<std::size_t> ar_tgt_;
  std::vector<std::uint32_t> eval_aw_hint_;  ///< decoder last-hit caches
  std::vector<std::uint32_t> eval_ar_hint_;
  std::vector<std::uint32_t> tick_aw_hint_;
  std::vector<std::uint32_t> tick_ar_hint_;

  bool tick_evt_ = true;  ///< last tick touched eval-relevant state
};

}  // namespace axi
