#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "axi/link.hpp"
#include "axi/types.hpp"
#include "sim/module.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace axi {

/// One transaction to issue.
struct TxnDesc {
  bool is_write = true;
  Id id = 0;
  Addr addr = 0;
  std::uint8_t len = 0;
  std::uint8_t size = 3;
  Burst burst = Burst::kIncr;
  template <typename V>
  void visit_fields(V& v) {
    visit(v, is_write);
    visit(v, id);
    visit(v, addr);
    visit(v, len);
    visit(v, size);
    visit(v, burst);
  }
};

/// Completion record kept per transaction for latency analysis.
struct TxnRecord {
  TxnDesc desc;
  std::uint64_t issue_cycle = 0;     ///< first cycle AW/AR valid asserted
  std::uint64_t accept_cycle = 0;    ///< AW/AR handshake cycle
  std::uint64_t complete_cycle = 0;  ///< B handshake / R last handshake
  Resp resp = Resp::kOkay;
  template <typename V>
  void visit_fields(V& v) {
    visit(v, desc);
    visit(v, issue_cycle);
    visit(v, accept_cycle);
    visit(v, complete_cycle);
    visit(v, resp);
  }
};

/// Optional random traffic mode.
struct RandomTrafficConfig {
  bool enabled = false;
  double p_new_txn = 0.25;     ///< per-cycle probability of enqueuing a txn
  double write_fraction = 0.5;
  std::uint32_t max_outstanding = 8;
  Id id_min = 0, id_max = 3;
  Addr addr_min = 0, addr_max = 0xFFFF;
  std::uint8_t len_min = 0, len_max = 7;
  std::uint8_t size = 3;
  bool operator==(const RandomTrafficConfig&) const = default;
  template <typename V>
  void visit_fields(V& v) {
    visit(v, enabled);
    visit(v, p_new_txn);
    visit(v, write_fraction);
    visit(v, max_outstanding);
    visit(v, id_min);
    visit(v, id_max);
    visit(v, addr_min);
    visit(v, addr_max);
    visit(v, len_min);
    visit(v, len_max);
    visit(v, size);
  }
};

/// Deterministic write-data pattern so reads can be verified end to end.
/// A function of the beat address only, so overlapping writes from
/// different managers/IDs store identical bytes and any read can verify.
inline Data pattern_data(Addr beat_address) {
  const Data x = beat_address * 0x9E3779B97F4A7C15ull;
  return x ^ (x >> 29) ^ 0x5DEECE66Dull;
}

/// AXI4 manager model. Moore-style: all outputs are functions of
/// registered state, so eval() is trivially idempotent.
///
/// Issues queued (or random) transactions, keeps AXI ordering rules
/// (W beats strictly follow AW accept order), and records per-transaction
/// latency and response.
class TrafficGenerator : public sim::Module {
 public:
  TrafficGenerator(std::string name, Link& link, std::uint64_t seed = 1);

  /// Enqueues a transaction for issue (FIFO order per channel).
  void push(const TxnDesc& d);

  void set_random(const RandomTrafficConfig& cfg) {
    random_ = cfg;
    notify_state_change();
  }

  /// Extra idle cycles inserted between W beats (0 = full rate).
  void set_w_gap(std::uint32_t gap) {
    w_gap_ = gap;
    notify_state_change();
  }
  /// Cycles b_valid is observed before b_ready asserts (0 = always ready).
  void set_b_ready_delay(std::uint32_t d) {
    b_ready_delay_ = d;
    notify_state_change();
  }
  /// Cycles r_valid is observed before r_ready asserts (0 = always ready).
  void set_r_ready_delay(std::uint32_t d) {
    r_ready_delay_ = d;
    notify_state_change();
  }
  /// Delay between AW accept and first W valid.
  void set_w_start_delay(std::uint32_t d) {
    w_start_delay_ = d;
    notify_state_change();
  }
  /// Caps simultaneously outstanding transactions (issue side).
  void set_max_outstanding(std::uint32_t n) {
    max_outstanding_ = n;
    notify_state_change();
  }

  std::size_t completed() const { return records_.size(); }
  const std::vector<TxnRecord>& records() const { return records_; }
  std::size_t outstanding() const {
    return outstanding_writes_ + outstanding_reads_;
  }
  std::size_t data_mismatches() const { return data_mismatches_; }
  std::size_t error_responses() const { return error_responses_; }
  std::size_t pending_to_issue() const { return aw_queue_.size() + ar_queue_.size(); }

  /// Restarts the random stream from a fresh seed (campaign trials fork
  /// a warmed snapshot, then decorrelate: reseed + per-trial traffic).
  void reseed(std::uint64_t seed) {
    rng_ = sim::Rng(seed);
    notify_state_change();
  }
  const sim::RunningStats& write_latency() const { return write_latency_; }
  const sim::RunningStats& read_latency() const { return read_latency_; }

  void eval() override;
  void tick() override;
  void reset() override;
  bool tick_changed_eval_state() const override { return tick_evt_; }
  void visit_state(sim::StateVisitor& v) override;

 private:
  struct PendingIssue {
    TxnDesc desc;
    std::uint64_t issue_cycle = 0;
    bool issued = false;  ///< valid currently asserted
    template <typename V>
    void visit_fields(V& v) {
      visit(v, desc);
      visit(v, issue_cycle);
      visit(v, issued);
    }
  };
  struct InFlight {
    TxnDesc desc;
    std::uint64_t issue_cycle = 0;
    std::uint64_t accept_cycle = 0;
    unsigned beats_seen = 0;  ///< R beats received (reads)
    template <typename V>
    void visit_fields(V& v) {
      visit(v, desc);
      visit(v, issue_cycle);
      visit(v, accept_cycle);
      visit(v, beats_seen);
    }
  };
  struct WStream {
    TxnDesc desc;
    unsigned next_beat = 0;
    std::uint32_t wait = 0;  ///< cycles before first/next beat may go
    template <typename V>
    void visit_fields(V& v) {
      visit(v, desc);
      visit(v, next_beat);
      visit(v, wait);
    }
  };

  void maybe_spawn_random();
  void complete(InFlight& t, Resp resp, bool is_write);

  Link& link_;
  sim::Rng rng_;
  RandomTrafficConfig random_{};

  // Issue queues (registered state).
  std::deque<PendingIssue> aw_queue_;
  std::deque<PendingIssue> ar_queue_;
  std::deque<WStream> w_streams_;  ///< W beats in AW-accept order

  // Outstanding transactions awaiting response, per ID in accept order.
  std::map<Id, std::deque<InFlight>> write_wait_;
  std::map<Id, std::deque<InFlight>> read_wait_;
  std::size_t outstanding_writes_ = 0;
  std::size_t outstanding_reads_ = 0;

  // Ready-delay counters.
  std::uint32_t b_ready_delay_ = 0, b_wait_ = 0;
  std::uint32_t r_ready_delay_ = 0, r_wait_ = 0;
  bool b_ready_reg_ = true;
  bool r_ready_reg_ = true;

  std::uint32_t w_gap_ = 0;
  std::uint32_t w_start_delay_ = 0;
  std::uint32_t max_outstanding_ = 64;

  std::uint64_t cycle_ = 0;
  bool tick_evt_ = true;  ///< last tick touched eval-relevant state
  std::vector<TxnRecord> records_;
  std::size_t data_mismatches_ = 0;
  std::size_t error_responses_ = 0;
  sim::RunningStats write_latency_;
  sim::RunningStats read_latency_;
};

}  // namespace axi
