#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "axi/link.hpp"
#include "axi/types.hpp"
#include "sim/module.hpp"

namespace axi {

/// Optional DRAM-style bank/row-buffer timing (off by default, so plain
/// SRAM-like subordinates keep the constant latencies below). Modeled on
/// Sniper's dram_perf_model_detailed: each access selects a bank by
/// address interleaving and pays an extra latency depending on that
/// bank's row buffer — hit (row open), miss (bank idle, activate), or
/// conflict (another row open, precharge + activate). Closed-page
/// policy closes the row after every access, so every access is a miss.
struct BankTimingConfig {
  bool enabled = false;
  std::uint32_t num_banks = 4;   ///< power of two
  std::uint32_t col_bits = 6;    ///< log2(row-interleave granularity bytes)
  bool open_page = true;         ///< keep the row open after an access
  std::uint32_t t_hit = 0;       ///< extra cycles, row-buffer hit
  std::uint32_t t_miss = 6;      ///< extra cycles, bank idle (activate)
  std::uint32_t t_conflict = 12; ///< extra cycles, row conflict (pre+act)
  bool operator==(const BankTimingConfig&) const = default;
};

/// Timing/behaviour knobs for the memory model.
struct MemoryConfig {
  std::uint32_t aw_accept_latency = 0;  ///< cycles aw_valid waits for ready
  std::uint32_t ar_accept_latency = 0;
  std::uint32_t w_ready_every = 1;      ///< accept a W beat every N cycles
  std::uint32_t b_latency = 1;          ///< wlast accept -> b_valid
  std::uint32_t r_first_latency = 2;    ///< ar accept -> first r_valid
  std::uint32_t r_beat_every = 1;       ///< R beat rate
  std::size_t max_outstanding = 16;     ///< per direction
  /// Addresses in [error_base, error_end) respond SLVERR.
  Addr error_base = 0, error_end = 0;
  BankTimingConfig bank{};  ///< optional variable DRAM timing
  bool operator==(const MemoryConfig&) const = default;
};

/// AXI4 memory subordinate with sparse byte storage and configurable
/// latencies. Moore-style: every output is a function of registered
/// state. Services writes and reads independently, in arrival order
/// (which also guarantees AXI same-ID ordering).
class MemorySubordinate : public sim::Module {
 public:
  MemorySubordinate(std::string name, Link& link, MemoryConfig cfg = {});

  void eval() override;
  void tick() override;
  void reset() override;
  bool tick_changed_eval_state() const override { return tick_evt_; }
  void visit_state(sim::StateVisitor& v) override;

  /// Backdoor accessors for tests.
  std::uint8_t peek(Addr a) const {
    const Page* p = find_page(a);
    return p == nullptr ? 0 : (*p)[a % kPageBytes];
  }
  void poke(Addr a, std::uint8_t v) {
    touch_page(a)[a % kPageBytes] = v;
    notify_state_change();
  }
  std::uint64_t peek_beat(Addr a, std::uint8_t size) const;

  std::size_t writes_done() const { return writes_done_; }
  std::size_t reads_done() const { return reads_done_; }

  /// Bank-timing telemetry (all zero while cfg.bank.enabled is false).
  std::size_t row_hits() const { return row_hits_; }
  std::size_t row_misses() const { return row_misses_; }
  std::size_t row_conflicts() const { return row_conflicts_; }

  /// External hardware reset input (from a reset unit): clears all
  /// in-flight state, keeps storage.
  void hw_reset() {
    clear_inflight_ = true;
    notify_state_change();
  }

  const MemoryConfig& config() const { return cfg_; }

 private:
  struct WriteTxn {
    AwFlit aw;
    unsigned beats_got = 0;
    bool data_done = false;
    template <typename V>
    void visit_fields(V& v) {
      visit(v, aw);
      visit(v, beats_got);
      visit(v, data_done);
    }
  };
  struct ReadTxn {
    ArFlit ar;
    unsigned next_beat = 0;
    std::uint64_t ready_at = 0;
    template <typename V>
    void visit_fields(V& v) {
      visit(v, ar);
      visit(v, next_beat);
      visit(v, ready_at);
    }
  };
  struct PendingB {
    Id id = 0;
    Resp resp = Resp::kOkay;
    std::uint64_t ready_at = 0;
    template <typename V>
    void visit_fields(V& v) {
      visit(v, id);
      visit(v, resp);
      visit(v, ready_at);
    }
  };

  bool in_error_region(Addr a) const {
    return cfg_.error_end > cfg_.error_base && a >= cfg_.error_base &&
           a < cfg_.error_end;
  }
  /// Extra latency of one access at `a` under the bank model, updating
  /// the addressed bank's row buffer. 0 when bank timing is off.
  std::uint32_t bank_access(Addr a);
  void close_all_rows() {
    for (auto& r : bank_row_) r = kRowClosed;
  }
  void store_beat(Addr a, std::uint8_t size, Data data, std::uint8_t strb);
  Data load_beat(Addr a, std::uint8_t size) const;

  // Sparse paged backing store: one hash per 4 KiB page (with last-hit
  // caches) instead of the seed's hash per byte, which dominated the
  // per-cycle profile under burst traffic. Beats are size-aligned and
  // capped at 8 bytes, so a beat never straddles a page. Node-based map:
  // page pointers stay valid across inserts, so the caches only need
  // resetting if the map were ever cleared (it is not — reset() and
  // hw_reset() keep storage, like real DRAM).
  static constexpr std::uint64_t kPageBytes = 4096;
  using Page = std::array<std::uint8_t, kPageBytes>;

  const Page* find_page(Addr a) const {
    const Addr pno = a / kPageBytes;
    if (r_cache_page_ != nullptr && r_cache_no_ == pno) {
      return r_cache_page_;
    }
    const auto it = mem_.find(pno);
    if (it == mem_.end()) return nullptr;
    r_cache_no_ = pno;
    r_cache_page_ = &it->second;
    return r_cache_page_;
  }
  Page& touch_page(Addr a) {
    const Addr pno = a / kPageBytes;
    if (w_cache_page_ != nullptr && w_cache_no_ == pno) {
      return *w_cache_page_;
    }
    Page& p = mem_[pno];  // zero-filled on first touch
    w_cache_no_ = pno;
    w_cache_page_ = &p;
    return p;
  }

  Link& link_;
  MemoryConfig cfg_;
  std::unordered_map<Addr, Page> mem_;  ///< keyed on page number
  mutable Addr r_cache_no_ = 0;
  mutable const Page* r_cache_page_ = nullptr;
  Addr w_cache_no_ = 0;
  Page* w_cache_page_ = nullptr;

  std::deque<WriteTxn> write_q_;
  std::deque<PendingB> b_q_;
  std::deque<ReadTxn> read_q_;

  std::uint32_t aw_wait_ = 0;
  std::uint32_t ar_wait_ = 0;
  std::uint32_t w_rate_cnt_ = 0;
  std::uint32_t r_rate_cnt_ = 0;
  std::uint64_t cycle_ = 0;
  std::size_t writes_done_ = 0, reads_done_ = 0;

  /// Open row per bank (kRowClosed = none). Sized num_banks when bank
  /// timing is enabled, empty otherwise.
  static constexpr std::uint64_t kRowClosed = ~std::uint64_t{0};
  std::vector<std::uint64_t> bank_row_;
  std::size_t row_hits_ = 0, row_misses_ = 0, row_conflicts_ = 0;
  bool clear_inflight_ = false;
  bool tick_evt_ = true;  ///< last tick touched eval-relevant state
};

}  // namespace axi
