#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>

#include "axi/link.hpp"
#include "axi/types.hpp"
#include "sim/module.hpp"

namespace axi {

/// Timing/behaviour knobs for the memory model.
struct MemoryConfig {
  std::uint32_t aw_accept_latency = 0;  ///< cycles aw_valid waits for ready
  std::uint32_t ar_accept_latency = 0;
  std::uint32_t w_ready_every = 1;      ///< accept a W beat every N cycles
  std::uint32_t b_latency = 1;          ///< wlast accept -> b_valid
  std::uint32_t r_first_latency = 2;    ///< ar accept -> first r_valid
  std::uint32_t r_beat_every = 1;       ///< R beat rate
  std::size_t max_outstanding = 16;     ///< per direction
  /// Addresses in [error_base, error_end) respond SLVERR.
  Addr error_base = 0, error_end = 0;
};

/// AXI4 memory subordinate with sparse byte storage and configurable
/// latencies. Moore-style: every output is a function of registered
/// state. Services writes and reads independently, in arrival order
/// (which also guarantees AXI same-ID ordering).
class MemorySubordinate : public sim::Module {
 public:
  MemorySubordinate(std::string name, Link& link, MemoryConfig cfg = {});

  void eval() override;
  void tick() override;
  void reset() override;
  bool tick_changed_eval_state() const override { return tick_evt_; }

  /// Backdoor accessors for tests.
  std::uint8_t peek(Addr a) const {
    auto it = mem_.find(a);
    return it == mem_.end() ? 0 : it->second;
  }
  void poke(Addr a, std::uint8_t v) {
    mem_[a] = v;
    notify_state_change();
  }
  std::uint64_t peek_beat(Addr a, std::uint8_t size) const;

  std::size_t writes_done() const { return writes_done_; }
  std::size_t reads_done() const { return reads_done_; }

  /// External hardware reset input (from a reset unit): clears all
  /// in-flight state, keeps storage.
  void hw_reset() {
    clear_inflight_ = true;
    notify_state_change();
  }

  const MemoryConfig& config() const { return cfg_; }

 private:
  struct WriteTxn {
    AwFlit aw;
    unsigned beats_got = 0;
    bool data_done = false;
  };
  struct ReadTxn {
    ArFlit ar;
    unsigned next_beat = 0;
    std::uint64_t ready_at = 0;
  };
  struct PendingB {
    Id id;
    Resp resp;
    std::uint64_t ready_at;
  };

  bool in_error_region(Addr a) const {
    return cfg_.error_end > cfg_.error_base && a >= cfg_.error_base &&
           a < cfg_.error_end;
  }
  void store_beat(Addr a, std::uint8_t size, Data data, std::uint8_t strb);
  Data load_beat(Addr a, std::uint8_t size) const;

  Link& link_;
  MemoryConfig cfg_;
  std::unordered_map<Addr, std::uint8_t> mem_;

  std::deque<WriteTxn> write_q_;
  std::deque<PendingB> b_q_;
  std::deque<ReadTxn> read_q_;

  std::uint32_t aw_wait_ = 0;
  std::uint32_t ar_wait_ = 0;
  std::uint32_t w_rate_cnt_ = 0;
  std::uint32_t r_rate_cnt_ = 0;
  std::uint64_t cycle_ = 0;
  std::size_t writes_done_ = 0, reads_done_ = 0;
  bool clear_inflight_ = false;
  bool tick_evt_ = true;  ///< last tick touched eval-relevant state
};

}  // namespace axi
