#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "axi/link.hpp"
#include "axi/types.hpp"
#include "sim/module.hpp"

namespace axi {

/// Timing/ID knobs of an axi::Bridge.
struct BridgeConfig {
  /// Cycles a request-channel flit (AW/W/AR) spends crossing the bridge.
  /// 0 on *both* directions makes the bridge fully transparent: a pure
  /// combinational feed-through with no registered state (used by the
  /// degenerate-hierarchy equivalence tests). Mixed 0/non-0 latencies
  /// are rejected.
  std::uint32_t req_latency = 1;
  /// Cycles a response-channel flit (B/R) spends crossing back.
  std::uint32_t rsp_latency = 1;
  /// Compact the upstream ID space (which carries the parent crossbar's
  /// manager prefix) into tIDs in [0, max_ids) on the downstream side,
  /// so a nested crossbar only needs enough ID bits for max_ids. New IDs
  /// stall upstream when all slots are busy. Requires latency >= 1.
  bool id_remap = false;
  std::uint32_t max_ids = 16;
  /// Per-channel staging capacity; full queues backpressure the sender.
  std::size_t fifo_depth = 8;

  bool operator==(const BridgeConfig&) const = default;
};

/// Two-port AXI4 bridge between interconnect levels: the upstream side
/// is a subordinate port (a parent-crossbar endpoint drives it), the
/// downstream side is a manager port (it drives a nested cluster
/// crossbar). All five channels are forwarded through per-channel
/// timestamped queues, adding cfg.req_latency / cfg.rsp_latency cycles
/// per crossing, with optional ID compaction for the nested ID space.
///
/// Moore-style when latched (every output a function of registered
/// queue state), so eval() is trivially idempotent; an idle bridge
/// reports tick_changed_eval_state() == false and costs zero evals
/// under the event-driven scheduler. With both latencies 0 the bridge
/// degenerates to a combinational wire pair (no state at all), which
/// the 1-level hierarchy-equivalence test relies on.
class Bridge : public sim::Module {
 public:
  /// Throws std::invalid_argument on inconsistent configs: transparent
  /// (latency 0/0) with id_remap, mixed 0/non-0 latencies, max_ids = 0,
  /// fifo_depth = 0.
  Bridge(std::string name, Link& up, Link& down, BridgeConfig cfg = {});

  void eval() override;
  void tick() override;
  void reset() override;
  bool tick_changed_eval_state() const override { return tick_evt_; }
  void visit_state(sim::StateVisitor& v) override;

  bool transparent() const {
    return cfg_.req_latency == 0 && cfg_.rsp_latency == 0;
  }
  const BridgeConfig& config() const { return cfg_; }

  /// External hardware reset input (from a reset unit, when a guard is
  /// placed on the bridge): drops all staged flits and ID mappings,
  /// like a real bridge losing its in-flight state on a domain reset.
  void hw_reset() {
    clear_inflight_ = true;
    notify_state_change();
  }

  std::size_t writes_forwarded() const { return writes_forwarded_; }
  std::size_t reads_forwarded() const { return reads_forwarded_; }
  std::uint32_t active_write_ids() const { return wr_ids_.active(); }
  std::uint32_t active_read_ids() const { return rd_ids_.active(); }

 private:
  /// Compact ID allocator (the TMU remapper's discipline, §II-A): a
  /// slot is claimed by the first outstanding transaction of an ID and
  /// freed when its count drops to zero; same upstream ID keeps the
  /// same tID while busy, preserving AXI same-ID ordering end to end.
  class IdPool {
   public:
    void resize(std::uint32_t n) { slots_.assign(n, Slot{}); }
    bool can_admit(Id id) const {
      return lookup(id).has_value() || free_slot().has_value();
    }
    std::optional<std::uint32_t> admit(Id id) {
      if (auto t = lookup(id)) {
        ++slots_[*t].outstanding;
        return t;
      }
      if (auto f = free_slot()) {
        slots_[*f].id = id;
        slots_[*f].outstanding = 1;
        map_[id] = *f;
        return f;
      }
      return std::nullopt;
    }
    bool busy(std::uint64_t tid) const {
      return tid < slots_.size() && slots_[tid].outstanding > 0;
    }
    Id original_id(std::uint32_t tid) const { return slots_[tid].id; }
    void release(std::uint32_t tid) {
      Slot& s = slots_[tid];
      if (s.outstanding > 0 && --s.outstanding == 0) map_.erase(s.id);
    }
    std::uint32_t active() const {
      return static_cast<std::uint32_t>(map_.size());
    }
    void clear() {
      for (Slot& s : slots_) s = {};
      map_.clear();
    }

    /// State serde: slots only; map_ is a derived index rebuilt on load
    /// (unordered iteration never reaches the byte stream).
    template <typename V>
    void visit_fields(V& v) {
      std::uint64_t n = slots_.size();
      v.count(n);
      if (!v.saving() && n != slots_.size()) {
        v.fail("bridge ID pool size mismatch: snapshot has " +
               std::to_string(n) + " slots, pool has " +
               std::to_string(slots_.size()));
      }
      for (Slot& s : slots_) {
        visit(v, s.id);
        visit(v, s.outstanding);
      }
      if (!v.saving()) {
        map_.clear();
        for (std::uint32_t i = 0; i < slots_.size(); ++i) {
          if (slots_[i].outstanding > 0) map_[slots_[i].id] = i;
        }
      }
    }

   private:
    struct Slot {
      Id id = 0;
      std::uint32_t outstanding = 0;
    };
    std::optional<std::uint32_t> lookup(Id id) const {
      const auto it = map_.find(id);
      if (it == map_.end()) return std::nullopt;
      return it->second;
    }
    std::optional<std::uint32_t> free_slot() const {
      for (std::uint32_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].outstanding == 0) return i;
      }
      return std::nullopt;
    }
    std::vector<Slot> slots_;
    std::unordered_map<Id, std::uint32_t> map_;
  };

  /// A flit in flight across the bridge, visible on the far side once
  /// the simulation reaches `ready_at`.
  template <typename F>
  struct Timed {
    F flit{};
    std::uint64_t ready_at = 0;
    template <typename V>
    void visit_fields(V& v) {
      visit(v, flit);
      visit(v, ready_at);
    }
  };

  Link& up_;
  Link& down_;
  BridgeConfig cfg_;

  std::deque<Timed<AwFlit>> aw_q_;  ///< downbound
  std::deque<Timed<WFlit>> w_q_;    ///< downbound
  std::deque<Timed<ArFlit>> ar_q_;  ///< downbound
  std::deque<Timed<BFlit>> b_q_;    ///< upbound
  std::deque<Timed<RFlit>> r_q_;    ///< upbound
  IdPool wr_ids_;
  IdPool rd_ids_;

  std::uint64_t cycle_ = 0;
  std::size_t writes_forwarded_ = 0, reads_forwarded_ = 0;
  bool clear_inflight_ = false;
  bool tick_evt_ = true;
};

}  // namespace axi
