#include "axi/scoreboard.hpp"

#include <sstream>

#include "axi/addr.hpp"

namespace axi {

Scoreboard::Scoreboard(std::string name, Link& link)
    : sim::Module(std::move(name)), link_(link) {}

void Scoreboard::flag(const std::string& rule, const std::string& detail) {
  violations_.push_back(Violation{cycle_, rule, detail});
}

void Scoreboard::tick() {
  const AxiReq q = link_.req.read();
  const AxiRsp s = link_.rsp.read();

  // ---- stability rules: payload must not change while valid && !ready ----
  if (have_prev_) {
    if (prev_q_.aw_valid && !prev_s_.aw_ready) {
      if (!q.aw_valid) flag("AW_STABLE", "aw_valid dropped before ready");
      else if (!(q.aw == prev_q_.aw)) flag("AW_STABLE", "aw payload changed");
    }
    if (prev_q_.w_valid && !prev_s_.w_ready) {
      if (!q.w_valid) flag("W_STABLE", "w_valid dropped before ready");
      else if (!(q.w == prev_q_.w)) flag("W_STABLE", "w payload changed");
    }
    if (prev_q_.ar_valid && !prev_s_.ar_ready) {
      if (!q.ar_valid) flag("AR_STABLE", "ar_valid dropped before ready");
      else if (!(q.ar == prev_q_.ar)) flag("AR_STABLE", "ar payload changed");
    }
    if (prev_s_.b_valid && !prev_q_.b_ready) {
      if (!s.b_valid) flag("B_STABLE", "b_valid dropped before ready");
      else if (!(s.b == prev_s_.b)) flag("B_STABLE", "b payload changed");
    }
    if (prev_s_.r_valid && !prev_q_.r_ready) {
      if (!s.r_valid) flag("R_STABLE", "r_valid dropped before ready");
      else if (!(s.r == prev_s_.r)) flag("R_STABLE", "r payload changed");
    }
  }

  // ---- AW accepted ----
  if (aw_fire(q, s)) {
    if (q.aw.burst == Burst::kIncr && !within_4k(q.aw.addr, q.aw.size, q.aw.len)) {
      flag("AW_4K", "INCR write burst crosses a 4KiB page");
    }
    if (q.aw.burst == Burst::kWrap && !legal_wrap_len(q.aw.len)) {
      flag("AW_WRAP_LEN", "illegal WRAP burst length");
    }
    open_writes_.push_back(OpenWrite{q.aw, 0});
    await_b_[q.aw.id].push_back(q.aw);
  }

  // ---- W beat ----
  if (w_fire(q, s)) {
    if (open_writes_.empty()) {
      flag("W_NO_AW", "W beat without an open AW");
    } else {
      OpenWrite& ow = open_writes_.front();
      ++ow.beats;
      const bool should_be_last = ow.beats == beats(ow.aw.len);
      if (q.w.last != should_be_last) {
        std::ostringstream os;
        os << "beat " << ow.beats << "/" << beats(ow.aw.len)
           << " wlast=" << q.w.last;
        flag("WLAST_POS", os.str());
      }
      if (q.w.last || should_be_last) open_writes_.pop_front();
    }
  }

  // ---- B response ----
  if (b_fire(q, s)) {
    auto it = await_b_.find(s.b.id);
    if (it == await_b_.end() || it->second.empty()) {
      std::ostringstream os;
      os << "B with id " << s.b.id << " but no outstanding write";
      flag("B_UNREQUESTED", os.str());
    } else {
      it->second.pop_front();
      ++completed_writes_;
    }
  }

  // ---- AR accepted ----
  if (ar_fire(q, s)) {
    if (q.ar.burst == Burst::kIncr && !within_4k(q.ar.addr, q.ar.size, q.ar.len)) {
      flag("AR_4K", "INCR read burst crosses a 4KiB page");
    }
    if (q.ar.burst == Burst::kWrap && !legal_wrap_len(q.ar.len)) {
      flag("AR_WRAP_LEN", "illegal WRAP burst length");
    }
    await_r_[q.ar.id].push_back(OpenRead{q.ar, 0});
  }

  // ---- R beat ----
  if (r_fire(q, s)) {
    auto it = await_r_.find(s.r.id);
    if (it == await_r_.end() || it->second.empty()) {
      std::ostringstream os;
      os << "R with id " << s.r.id << " but no outstanding read";
      flag("R_UNREQUESTED", os.str());
    } else {
      OpenRead& orr = it->second.front();
      ++orr.beats;
      const bool should_be_last = orr.beats == beats(orr.ar.len);
      if (s.r.last != should_be_last) {
        std::ostringstream os;
        os << "beat " << orr.beats << "/" << beats(orr.ar.len)
           << " rlast=" << s.r.last;
        flag("RLAST_POS", os.str());
      }
      if (s.r.last || should_be_last) {
        it->second.pop_front();
        ++completed_reads_;
      }
    }
  }

  prev_q_ = q;
  prev_s_ = s;
  have_prev_ = true;
  ++cycle_;
}

void Scoreboard::reset() {
  cycle_ = 0;
  have_prev_ = false;
  prev_q_ = {};
  prev_s_ = {};
  open_writes_.clear();
  await_b_.clear();
  await_r_.clear();
  violations_.clear();
  completed_writes_ = completed_reads_ = 0;
}

}  // namespace axi
