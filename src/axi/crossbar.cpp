#include "axi/crossbar.hpp"

#include <cassert>

namespace axi {

Crossbar::Crossbar(std::string name, std::vector<Link*> managers,
                   std::vector<Link*> subordinates, std::vector<AddrRange> map,
                   unsigned id_shift)
    : sim::Module(std::move(name)),
      mgrs_(std::move(managers)),
      subs_(std::move(subordinates)),
      map_(std::move(map)),
      id_shift_(id_shift),
      w_route_(subs_.size()),
      mgr_w_route_(mgrs_.size()),
      aw_rr_(subs_.size(), 0),
      ar_rr_(subs_.size(), 0),
      b_rr_(mgrs_.size(), 0),
      r_rr_(mgrs_.size(), 0),
      aw_id_route_(mgrs_.size()),
      ar_id_route_(mgrs_.size()) {}

std::size_t Crossbar::decode(Addr a) const {
  for (const AddrRange& r : map_) {
    if (r.contains(a)) return r.sub_index;
  }
  return kDecErr;
}

void Crossbar::eval() {
  const std::size_t n_m = mgrs_.size();
  const std::size_t n_s = subs_.size();
  const Id id_mask = (Id{1} << id_shift_) - 1;

  std::vector<AxiReq> sub_req(n_s);
  std::vector<AxiRsp> mgr_rsp(n_m);

  // ------------------------- AW arbitration -------------------------
  for (std::size_t s = 0; s < n_s; ++s) {
    for (std::size_t k = 0; k < n_m; ++k) {
      const std::size_t m = (aw_rr_[s] + k) % n_m;
      const AxiReq& mq = mgrs_[m]->req.read();
      if (mq.aw_valid && decode(mq.aw.addr) == s &&
          id_route_allows(aw_id_route_[m], mq.aw.id, s)) {
        sub_req[s].aw_valid = true;
        sub_req[s].aw = mq.aw;
        sub_req[s].aw.id = (mq.aw.id & id_mask) |
                           (static_cast<Id>(m) << id_shift_);
        mgr_rsp[m].aw_ready = subs_[s]->rsp.read().aw_ready;
        break;
      }
    }
  }
  // AW to the DECERR default subordinate: always ready.
  for (std::size_t m = 0; m < n_m; ++m) {
    const AxiReq& mq = mgrs_[m]->req.read();
    if (mq.aw_valid && decode(mq.aw.addr) == kDecErr &&
        id_route_allows(aw_id_route_[m], mq.aw.id, kDecErr)) {
      mgr_rsp[m].aw_ready = true;
    }
  }

  // --------------------------- W routing ----------------------------
  for (std::size_t s = 0; s < n_s; ++s) {
    if (w_route_[s].empty()) continue;
    const std::size_t m = w_route_[s].front();
    if (mgr_w_route_[m].empty() || mgr_w_route_[m].front() != s) continue;
    const AxiReq& mq = mgrs_[m]->req.read();
    sub_req[s].w_valid = mq.w_valid;
    sub_req[s].w = mq.w;
    mgr_rsp[m].w_ready = subs_[s]->rsp.read().w_ready;
  }
  // W beats destined for the DECERR subordinate: swallow at full rate.
  for (std::size_t m = 0; m < n_m; ++m) {
    if (!mgr_w_route_[m].empty() && mgr_w_route_[m].front() == kDecErr) {
      mgr_rsp[m].w_ready = mgrs_[m]->req.read().w_valid;
    }
  }

  // ------------------------- AR arbitration -------------------------
  for (std::size_t s = 0; s < n_s; ++s) {
    for (std::size_t k = 0; k < n_m; ++k) {
      const std::size_t m = (ar_rr_[s] + k) % n_m;
      const AxiReq& mq = mgrs_[m]->req.read();
      if (mq.ar_valid && decode(mq.ar.addr) == s &&
          id_route_allows(ar_id_route_[m], mq.ar.id, s)) {
        sub_req[s].ar_valid = true;
        sub_req[s].ar = mq.ar;
        sub_req[s].ar.id = (mq.ar.id & id_mask) |
                           (static_cast<Id>(m) << id_shift_);
        mgr_rsp[m].ar_ready = subs_[s]->rsp.read().ar_ready;
        break;
      }
    }
  }
  for (std::size_t m = 0; m < n_m; ++m) {
    const AxiReq& mq = mgrs_[m]->req.read();
    if (mq.ar_valid && decode(mq.ar.addr) == kDecErr &&
        id_route_allows(ar_id_route_[m], mq.ar.id, kDecErr)) {
      mgr_rsp[m].ar_ready = true;
    }
  }

  // --------------------------- B routing ----------------------------
  for (std::size_t m = 0; m < n_m; ++m) {
    // Sources: each sub with b_valid for this manager, plus the DECERR
    // queue. Round-robin over n_s + 1 virtual sources.
    for (std::size_t k = 0; k <= n_s; ++k) {
      const std::size_t src = (b_rr_[m] + k) % (n_s + 1);
      if (src < n_s) {
        const AxiRsp& sr = subs_[src]->rsp.read();
        if (sr.b_valid && (sr.b.id >> id_shift_) == m) {
          mgr_rsp[m].b_valid = true;
          mgr_rsp[m].b = BFlit{sr.b.id & id_mask, sr.b.resp};
          sub_req[src].b_ready = mgrs_[m]->req.read().b_ready;
          break;
        }
      } else {
        // DECERR source: oldest finished write for this manager.
        for (const DecErrTxn& t : dec_q_) {
          if (t.mgr == m && t.is_write && t.data_done) {
            mgr_rsp[m].b_valid = true;
            mgr_rsp[m].b = BFlit{t.id, Resp::kDecErr};
            break;
          }
        }
        if (mgr_rsp[m].b_valid) break;
      }
    }
  }

  // --------------------------- R routing ----------------------------
  for (std::size_t m = 0; m < n_m; ++m) {
    for (std::size_t k = 0; k <= n_s; ++k) {
      const std::size_t src = (r_rr_[m] + k) % (n_s + 1);
      if (src < n_s) {
        const AxiRsp& sr = subs_[src]->rsp.read();
        if (sr.r_valid && (sr.r.id >> id_shift_) == m) {
          mgr_rsp[m].r_valid = true;
          mgr_rsp[m].r = RFlit{sr.r.id & id_mask, sr.r.data, sr.r.resp,
                               sr.r.last};
          sub_req[src].r_ready = mgrs_[m]->req.read().r_ready;
          break;
        }
      } else {
        for (const DecErrTxn& t : dec_q_) {
          if (t.mgr == m && !t.is_write) {
            mgr_rsp[m].r_valid = true;
            mgr_rsp[m].r = RFlit{t.id, 0, Resp::kDecErr, t.beats_left == 1};
            break;
          }
        }
        if (mgr_rsp[m].r_valid) break;
      }
    }
  }

  for (std::size_t s = 0; s < n_s; ++s) subs_[s]->req.write(sub_req[s]);
  for (std::size_t m = 0; m < n_m; ++m) mgrs_[m]->rsp.write(mgr_rsp[m]);
}

void Crossbar::tick() {
  const std::size_t n_m = mgrs_.size();
  const std::size_t n_s = subs_.size();

  // Edge activity: the tick state (routing queues, round-robin and
  // same-ID bookkeeping) only mutates on handshakes, which require a
  // valid somewhere; DECERR bursts also ripen from dec_q_. Quiet ports
  // all around means the edge was a provable no-op for eval().
  bool evt = !dec_q_.empty();

  // Observe settled wires.
  for (std::size_t m = 0; m < n_m; ++m) {
    const AxiReq& mq = mgrs_[m]->req.read();
    const AxiRsp& mr = mgrs_[m]->rsp.read();
    evt = evt || mq.aw_valid || mq.w_valid || mq.ar_valid || mr.b_valid ||
          mr.r_valid;

    if (aw_fire(mq, mr)) {
      const std::size_t s = decode(mq.aw.addr);
      IdRoute& route = aw_id_route_[m][mq.aw.id];
      route.sub = s;
      ++route.count;
      if (s == kDecErr) {
        dec_q_.push_back(DecErrTxn{mq.aw.id, m, true, 0, false});
        mgr_w_route_[m].push_back(kDecErr);
        ++decode_errors_;
      } else {
        w_route_[s].push_back(m);
        mgr_w_route_[m].push_back(s);
        aw_rr_[s] = (m + 1) % n_m;
      }
    }
    if (ar_fire(mq, mr)) {
      const std::size_t s = decode(mq.ar.addr);
      IdRoute& route = ar_id_route_[m][mq.ar.id];
      route.sub = s;
      ++route.count;
      if (s == kDecErr) {
        dec_q_.push_back(
            DecErrTxn{mq.ar.id, m, false, beats(mq.ar.len), false});
        ++decode_errors_;
      } else {
        ar_rr_[s] = (m + 1) % n_m;
      }
    }
    // W beat consumed.
    if (w_fire(mq, mr)) {
      assert(!mgr_w_route_[m].empty());
      const std::size_t s = mgr_w_route_[m].front();
      if (s == kDecErr) {
        if (mq.w.last) {
          for (DecErrTxn& t : dec_q_) {
            if (t.mgr == m && t.is_write && !t.data_done) {
              t.data_done = true;
              break;
            }
          }
          mgr_w_route_[m].pop_front();
        }
      } else if (mq.w.last) {
        mgr_w_route_[m].pop_front();
        w_route_[s].pop_front();
      }
    }
    // B delivered.
    if (b_fire(mq, mr)) {
      auto rit = aw_id_route_[m].find(mr.b.id);
      if (rit != aw_id_route_[m].end() && rit->second.count > 0) {
        --rit->second.count;
      }
      // If it came from the DECERR queue, retire that entry.
      bool from_sub = false;
      for (std::size_t s = 0; s < n_s; ++s) {
        const AxiRsp& sr = subs_[s]->rsp.read();
        if (sr.b_valid && subs_[s]->req.read().b_ready &&
            (sr.b.id >> id_shift_) == m) {
          from_sub = true;
          b_rr_[m] = (s + 1) % (n_s + 1);
          break;
        }
      }
      if (!from_sub) {
        for (auto it = dec_q_.begin(); it != dec_q_.end(); ++it) {
          if (it->mgr == m && it->is_write && it->data_done) {
            dec_q_.erase(it);
            break;
          }
        }
        b_rr_[m] = 0;
      }
    }
    // R beat delivered.
    if (r_fire(mq, mr)) {
      if (mr.r.last) {
        auto rit = ar_id_route_[m].find(mr.r.id);
        if (rit != ar_id_route_[m].end() && rit->second.count > 0) {
          --rit->second.count;
        }
      }
      bool from_sub = false;
      for (std::size_t s = 0; s < n_s; ++s) {
        const AxiRsp& sr = subs_[s]->rsp.read();
        if (sr.r_valid && subs_[s]->req.read().r_ready &&
            (sr.r.id >> id_shift_) == m) {
          from_sub = true;
          r_rr_[m] = (s + 1) % (n_s + 1);
          break;
        }
      }
      if (!from_sub) {
        for (auto it = dec_q_.begin(); it != dec_q_.end(); ++it) {
          if (it->mgr == m && !it->is_write) {
            if (--it->beats_left == 0) dec_q_.erase(it);
            break;
          }
        }
        r_rr_[m] = 0;
      }
    }
  }
  tick_evt_ = evt;
}

void Crossbar::reset() {
  for (auto& q : w_route_) q.clear();
  for (auto& q : mgr_w_route_) q.clear();
  std::fill(aw_rr_.begin(), aw_rr_.end(), 0);
  std::fill(ar_rr_.begin(), ar_rr_.end(), 0);
  std::fill(b_rr_.begin(), b_rr_.end(), 0);
  std::fill(r_rr_.begin(), r_rr_.end(), 0);
  for (auto& m : aw_id_route_) m.clear();
  for (auto& m : ar_id_route_) m.clear();
  dec_q_.clear();
  decode_errors_ = 0;
  for (Link* s : subs_) s->req.force(AxiReq{});
  for (Link* m : mgrs_) m->rsp.force(AxiRsp{});
}

}  // namespace axi
