#include "axi/crossbar.hpp"

#include <array>
#include <cassert>

#include "sim/state.hpp"

namespace axi {

// ---------------------------------------------------------------------
// Shards
// ---------------------------------------------------------------------

/// Response-path shard for one manager: decodes and demuxes that
/// manager's AW/AR/W onto the internal per-(m,s) request wires (with
/// same-ID gating and ID remapping), muxes B/R back from the internal
/// response wires plus the manager's DECERR queues, and terminates
/// decode errors locally. Reads only its manager's link and its own row
/// of internal wires, so it sleeps whenever its manager is idle.
class Crossbar::MgrShard final : public sim::Module {
 public:
  MgrShard(std::string name, Crossbar& owner, std::size_t m)
      : sim::Module(std::move(name)), x_(owner), m_(m) {}

  void eval() override;
  void reset() override { prev_.fill(kNone); }
  bool tick_changed_eval_state() const override {
    return x_.st_.mgr_evt[m_] != 0;
  }
  void visit_state(sim::StateVisitor& v) override {
    // The stale-wire slots are eval-relevant (they bound the sparse
    // rewrite); the decoder hints are pure lookup caches and stay out.
    for (auto& p : prev_) visit(v, p);
  }

 private:
  Crossbar& x_;
  std::size_t m_;
  std::uint32_t aw_hint_ = 0;  ///< decoder last-hit caches
  std::uint32_t ar_hint_ = 0;
  /// Subordinates whose xreq wire may be non-default after the last
  /// eval (one slot per channel role). Only these and the currently
  /// active ones are rewritten — every other wire in the row provably
  /// still holds AxiReq{}, so the O(M) full-row rewrite (M equality
  /// compares per eval) collapses to O(active).
  std::array<std::size_t, 5> prev_{kNone, kNone, kNone, kNone, kNone};
};

/// Request-path shard for one subordinate: round-robin AW/AR
/// arbitration over the internal per-(m,s) request wires, W routing by
/// the subordinate's grant FIFO, and B/R demux of the subordinate's
/// responses onto the internal response wires. Reads only its
/// subordinate's link and its own column of internal wires, so an idle
/// subordinate port costs zero evals.
class Crossbar::SubShard final : public sim::Module {
 public:
  SubShard(std::string name, Crossbar& owner, std::size_t s)
      : sim::Module(std::move(name)), x_(owner), s_(s) {}

  void eval() override;
  void reset() override { prev_.fill(kNone); }
  bool tick_changed_eval_state() const override {
    return x_.st_.sub_evt[s_] != 0;
  }
  void visit_state(sim::StateVisitor& v) override {
    for (auto& p : prev_) visit(v, p);
  }

 private:
  Crossbar& x_;
  std::size_t s_;
  /// Managers whose xrsp wire may be non-default after the last eval;
  /// see MgrShard::prev_.
  std::array<std::size_t, 5> prev_{kNone, kNone, kNone, kNone, kNone};
};

void Crossbar::MgrShard::eval() {
  XbarState& st = x_.st_;
  const std::size_t n_s = st.n_s;
  const AxiReq& mq = x_.mgrs_[m_]->req.read();

  AxiRsp rsp{};

  // --- request demux: where do this manager's AW / AR / W go? ---
  std::size_t aw_s = kNone;
  if (mq.aw_valid) {
    const std::size_t t = st.decoder.lookup(mq.aw.addr, aw_hint_);
    if (st.aw_id_route[m_].allows(mq.aw.id, t)) {
      if (t == kDecErr) {
        rsp.aw_ready = true;  // DECERR default subordinate: always ready
      } else {
        aw_s = t;
      }
    }
  }
  std::size_t ar_s = kNone;
  if (mq.ar_valid) {
    const std::size_t t = st.decoder.lookup(mq.ar.addr, ar_hint_);
    if (st.ar_id_route[m_].allows(mq.ar.id, t)) {
      if (t == kDecErr) {
        rsp.ar_ready = true;
      } else {
        ar_s = t;
      }
    }
  }
  std::size_t w_s = kNone;
  if (!st.mgr_w_route[m_].empty()) {
    const std::size_t s = st.mgr_w_route[m_].front();
    if (s == kDecErr) {
      rsp.w_ready = mq.w_valid;  // swallow DECERR write data at full rate
    } else {
      w_s = s;
    }
  }

  // --- single pass over this manager's xrsp row: grant readies from
  // the targeted subs, and the B/R sources closest to the round-robin
  // pointers (subs offering a response for this manager plus the DECERR
  // queue as virtual source n_s) — one traced read per wire ---
  std::size_t b_src = kNone;
  std::size_t r_src = kNone;
  std::size_t b_dist = n_s + 1;  // rr distance of the best source so far
  std::size_t r_dist = n_s + 1;
  for (std::size_t src = 0; src < n_s; ++src) {
    const AxiRsp& xr = x_.xrsp(m_, src).read();
    if (src == aw_s) rsp.aw_ready = xr.aw_ready;
    if (src == ar_s) rsp.ar_ready = xr.ar_ready;
    if (src == w_s) rsp.w_ready = xr.w_ready;
    if (xr.b_valid) {
      const std::size_t d = rr_dist(src, st.b_rr[m_], n_s + 1);
      if (d < b_dist) {
        b_dist = d;
        b_src = src;
        rsp.b = xr.b;
      }
    }
    if (xr.r_valid) {
      const std::size_t d = rr_dist(src, st.r_rr[m_], n_s + 1);
      if (d < r_dist) {
        r_dist = d;
        r_src = src;
        rsp.r = xr.r;
      }
    }
  }
  if (const DecErrWrite* t = st.first_done_write(m_)) {
    const std::size_t d = rr_dist(n_s, st.b_rr[m_], n_s + 1);
    if (d < b_dist) {
      b_dist = d;
      b_src = kNone;  // DECERR source: no sub wire to signal ready on
      rsp.b = BFlit{t->id, Resp::kDecErr};
    }
  }
  rsp.b_valid = b_dist <= n_s;
  if (!st.dec_r[m_].empty()) {
    const std::size_t d = rr_dist(n_s, st.r_rr[m_], n_s + 1);
    if (d < r_dist) {
      r_dist = d;
      r_src = kNone;
      const DecErrRead& t = st.dec_r[m_].front();
      rsp.r = RFlit{t.id, 0, Resp::kDecErr, t.beats_left == 1};
    }
  }
  rsp.r_valid = r_dist <= n_s;

  // --- drive this manager's row of internal request wires: only the
  // wires active now or last eval can differ from AxiReq{} ---
  const std::array<std::size_t, 5> cur{aw_s, ar_s, w_s, b_src, r_src};
  for (const std::size_t s : cur) {
    if (s >= n_s) continue;  // kNone / DECERR roles handled locally
    AxiReq q{};
    if (s == aw_s) {
      q.aw_valid = true;
      q.aw = mq.aw;
      q.aw.id = (mq.aw.id & st.id_mask) |
                (static_cast<Id>(m_) << st.id_shift);
    }
    if (s == ar_s) {
      q.ar_valid = true;
      q.ar = mq.ar;
      q.ar.id = (mq.ar.id & st.id_mask) |
                (static_cast<Id>(m_) << st.id_shift);
    }
    if (s == w_s) {
      q.w_valid = mq.w_valid;
      q.w = mq.w;
    }
    if (s == b_src) q.b_ready = mq.b_ready;
    if (s == r_src) q.r_ready = mq.r_ready;
    x_.xreq(m_, s).write(q);
  }
  reset_stale(prev_, cur, n_s, [&](std::size_t s) -> auto& {
    return x_.xreq(m_, s);
  }, AxiReq{});
  prev_ = cur;

  x_.mgrs_[m_]->rsp.write(rsp);
}

void Crossbar::SubShard::eval() {
  XbarState& st = x_.st_;
  const std::size_t n_m = st.n_m;
  const AxiRsp& sr = x_.subs_[s_]->rsp.read();

  AxiReq q{};

  // Non-wire routing decisions first: who owns the W channel (oldest
  // granted manager), and which managers the pending B/R route back to
  // (by the ID's manager bits; out-of-range IDs — injected faults —
  // route nowhere, like the monolithic eval).
  const std::size_t w_m =
      st.w_route[s_].empty() ? kNone : st.w_route[s_].front();
  std::size_t b_m = kNone;
  if (sr.b_valid && (sr.b.id >> st.id_shift) < n_m) {
    b_m = sr.b.id >> st.id_shift;
  }
  std::size_t r_m = kNone;
  if (sr.r_valid && (sr.r.id >> st.id_shift) < n_m) {
    r_m = sr.r.id >> st.id_shift;
  }

  // --- single pass over this subordinate's xreq column: round-robin
  // AW/AR arbitration (closest requester to the rr pointer wins), W
  // forwarding and B/R ready collection — one traced read per wire ---
  std::size_t aw_m = kNone;
  std::size_t ar_m = kNone;
  std::size_t aw_dist = n_m;
  std::size_t ar_dist = n_m;
  for (std::size_t m = 0; m < n_m; ++m) {
    const AxiReq& xq = x_.xreq(m, s_).read();
    if (xq.aw_valid) {
      const std::size_t d = rr_dist(m, st.aw_rr[s_], n_m);
      if (d < aw_dist) {
        aw_dist = d;
        aw_m = m;
        q.aw = xq.aw;  // already ID-remapped by the manager shard
      }
    }
    if (xq.ar_valid) {
      const std::size_t d = rr_dist(m, st.ar_rr[s_], n_m);
      if (d < ar_dist) {
        ar_dist = d;
        ar_m = m;
        q.ar = xq.ar;
      }
    }
    if (m == w_m) {
      q.w_valid = xq.w_valid;
      q.w = xq.w;
    }
    if (m == b_m) q.b_ready = xq.b_ready;
    if (m == r_m) q.r_ready = xq.r_ready;
  }
  q.aw_valid = aw_m != kNone;
  q.ar_valid = ar_m != kNone;

  x_.subs_[s_]->req.write(q);

  // --- drive this subordinate's column of internal response wires:
  // only the wires active now or last eval can differ from AxiRsp{} ---
  const std::array<std::size_t, 5> cur{aw_m, ar_m, w_m, b_m, r_m};
  for (const std::size_t m : cur) {
    if (m >= n_m) continue;
    AxiRsp xr{};
    if (m == aw_m) xr.aw_ready = sr.aw_ready;
    if (m == ar_m) xr.ar_ready = sr.ar_ready;
    if (m == w_m) xr.w_ready = sr.w_ready;
    if (m == b_m) {
      xr.b_valid = true;
      xr.b = BFlit{sr.b.id & st.id_mask, sr.b.resp};
    }
    if (m == r_m) {
      xr.r_valid = true;
      xr.r = RFlit{sr.r.id & st.id_mask, sr.r.data, sr.r.resp, sr.r.last};
    }
    x_.xrsp(m, s_).write(xr);
  }
  reset_stale(prev_, cur, n_m, [&](std::size_t m) -> auto& {
    return x_.xrsp(m, s_);
  }, AxiRsp{});
  prev_ = cur;
}

// ---------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------

Crossbar::Crossbar(std::string name, std::vector<Link*> managers,
                   std::vector<Link*> subordinates,
                   std::vector<AddrRange> map, unsigned id_shift,
                   XbarImpl impl)
    : sim::Module(std::move(name)),
      mgrs_(std::move(managers)),
      subs_(std::move(subordinates)),
      impl_(impl),
      st_(mgrs_.size(), subs_.size(), std::move(map), id_shift),
      xreq_(impl == XbarImpl::kSharded ? mgrs_.size() * subs_.size() : 0),
      xrsp_(impl == XbarImpl::kSharded ? mgrs_.size() * subs_.size() : 0),
      sub_req_scratch_(subs_.size()),
      mgr_rsp_scratch_(mgrs_.size()),
      aw_tgt_(mgrs_.size(), kNone),
      ar_tgt_(mgrs_.size(), kNone),
      eval_aw_hint_(mgrs_.size(), 0),
      eval_ar_hint_(mgrs_.size(), 0),
      tick_aw_hint_(mgrs_.size(), 0),
      tick_ar_hint_(mgrs_.size(), 0) {
  if (impl_ == XbarImpl::kSharded) {
    mgr_shards_.reserve(mgrs_.size());
    for (std::size_t m = 0; m < mgrs_.size(); ++m) {
      mgr_shards_.push_back(std::make_unique<MgrShard>(
          this->name() + ".mgr" + std::to_string(m), *this, m));
    }
    sub_shards_.reserve(subs_.size());
    for (std::size_t s = 0; s < subs_.size(); ++s) {
      sub_shards_.push_back(std::make_unique<SubShard>(
          this->name() + ".sub" + std::to_string(s), *this, s));
    }
  }
}

Crossbar::~Crossbar() = default;

void Crossbar::visit_submodules(
    const std::function<void(sim::Module&)>& visit) {
  for (auto& sh : mgr_shards_) visit(*sh);
  for (auto& sh : sub_shards_) visit(*sh);
}

/// The seed's monolithic evaluation, retained verbatim in behaviour (on
/// the shared XbarState) as the sharded path's lockstep reference. Two
/// hot-path fixes survive even here: the per-eval output vectors are
/// member scratch, and each manager's AW/AR target is decoded once per
/// eval (binary search + last-hit hint) instead of once per (manager,
/// subordinate) pair.
void Crossbar::eval() {
  // In sharded mode the registered shards own the output wires; a
  // direct call here would fight them for the settled values.
  assert(impl_ == XbarImpl::kMonolithic);
  const std::size_t n_m = mgrs_.size();
  const std::size_t n_s = subs_.size();

  for (std::size_t s = 0; s < n_s; ++s) sub_req_scratch_[s] = AxiReq{};
  for (std::size_t m = 0; m < n_m; ++m) {
    mgr_rsp_scratch_[m] = AxiRsp{};
    const AxiReq& mq = mgrs_[m]->req.read();
    aw_tgt_[m] = mq.aw_valid
                     ? st_.decoder.lookup(mq.aw.addr, eval_aw_hint_[m])
                     : kNone;
    ar_tgt_[m] = mq.ar_valid
                     ? st_.decoder.lookup(mq.ar.addr, eval_ar_hint_[m])
                     : kNone;
  }

  // ------------------------- AW arbitration -------------------------
  for (std::size_t s = 0; s < n_s; ++s) {
    for (std::size_t k = 0; k < n_m; ++k) {
      const std::size_t m = (st_.aw_rr[s] + k) % n_m;
      const AxiReq& mq = mgrs_[m]->req.read();
      if (aw_tgt_[m] == s && st_.aw_id_route[m].allows(mq.aw.id, s)) {
        sub_req_scratch_[s].aw_valid = true;
        sub_req_scratch_[s].aw = mq.aw;
        sub_req_scratch_[s].aw.id = (mq.aw.id & st_.id_mask) |
                                    (static_cast<Id>(m) << st_.id_shift);
        mgr_rsp_scratch_[m].aw_ready = subs_[s]->rsp.read().aw_ready;
        break;
      }
    }
  }
  // AW to the DECERR default subordinate: always ready.
  for (std::size_t m = 0; m < n_m; ++m) {
    const AxiReq& mq = mgrs_[m]->req.read();
    if (aw_tgt_[m] == kDecErr &&
        st_.aw_id_route[m].allows(mq.aw.id, kDecErr)) {
      mgr_rsp_scratch_[m].aw_ready = true;
    }
  }

  // --------------------------- W routing ----------------------------
  for (std::size_t s = 0; s < n_s; ++s) {
    if (st_.w_route[s].empty()) continue;
    const std::size_t m = st_.w_route[s].front();
    if (st_.mgr_w_route[m].empty() || st_.mgr_w_route[m].front() != s) {
      continue;
    }
    const AxiReq& mq = mgrs_[m]->req.read();
    sub_req_scratch_[s].w_valid = mq.w_valid;
    sub_req_scratch_[s].w = mq.w;
    mgr_rsp_scratch_[m].w_ready = subs_[s]->rsp.read().w_ready;
  }
  // W beats destined for the DECERR subordinate: swallow at full rate.
  for (std::size_t m = 0; m < n_m; ++m) {
    if (!st_.mgr_w_route[m].empty() &&
        st_.mgr_w_route[m].front() == kDecErr) {
      mgr_rsp_scratch_[m].w_ready = mgrs_[m]->req.read().w_valid;
    }
  }

  // ------------------------- AR arbitration -------------------------
  for (std::size_t s = 0; s < n_s; ++s) {
    for (std::size_t k = 0; k < n_m; ++k) {
      const std::size_t m = (st_.ar_rr[s] + k) % n_m;
      const AxiReq& mq = mgrs_[m]->req.read();
      if (ar_tgt_[m] == s && st_.ar_id_route[m].allows(mq.ar.id, s)) {
        sub_req_scratch_[s].ar_valid = true;
        sub_req_scratch_[s].ar = mq.ar;
        sub_req_scratch_[s].ar.id = (mq.ar.id & st_.id_mask) |
                                    (static_cast<Id>(m) << st_.id_shift);
        mgr_rsp_scratch_[m].ar_ready = subs_[s]->rsp.read().ar_ready;
        break;
      }
    }
  }
  for (std::size_t m = 0; m < n_m; ++m) {
    const AxiReq& mq = mgrs_[m]->req.read();
    if (ar_tgt_[m] == kDecErr &&
        st_.ar_id_route[m].allows(mq.ar.id, kDecErr)) {
      mgr_rsp_scratch_[m].ar_ready = true;
    }
  }

  // --------------------------- B routing ----------------------------
  for (std::size_t m = 0; m < n_m; ++m) {
    // Sources: each sub with b_valid for this manager, plus the DECERR
    // queue. Round-robin over n_s + 1 virtual sources.
    for (std::size_t k = 0; k <= n_s; ++k) {
      const std::size_t src = (st_.b_rr[m] + k) % (n_s + 1);
      if (src < n_s) {
        const AxiRsp& sr = subs_[src]->rsp.read();
        if (sr.b_valid && (sr.b.id >> st_.id_shift) == m) {
          mgr_rsp_scratch_[m].b_valid = true;
          mgr_rsp_scratch_[m].b = BFlit{sr.b.id & st_.id_mask, sr.b.resp};
          sub_req_scratch_[src].b_ready = mgrs_[m]->req.read().b_ready;
          break;
        }
      } else if (const DecErrWrite* t = st_.first_done_write(m)) {
        mgr_rsp_scratch_[m].b_valid = true;
        mgr_rsp_scratch_[m].b = BFlit{t->id, Resp::kDecErr};
        break;
      }
    }
  }

  // --------------------------- R routing ----------------------------
  for (std::size_t m = 0; m < n_m; ++m) {
    for (std::size_t k = 0; k <= n_s; ++k) {
      const std::size_t src = (st_.r_rr[m] + k) % (n_s + 1);
      if (src < n_s) {
        const AxiRsp& sr = subs_[src]->rsp.read();
        if (sr.r_valid && (sr.r.id >> st_.id_shift) == m) {
          mgr_rsp_scratch_[m].r_valid = true;
          mgr_rsp_scratch_[m].r = RFlit{sr.r.id & st_.id_mask, sr.r.data,
                                        sr.r.resp, sr.r.last};
          sub_req_scratch_[src].r_ready = mgrs_[m]->req.read().r_ready;
          break;
        }
      } else if (!st_.dec_r[m].empty()) {
        const DecErrRead& t = st_.dec_r[m].front();
        mgr_rsp_scratch_[m].r_valid = true;
        mgr_rsp_scratch_[m].r = RFlit{t.id, 0, Resp::kDecErr,
                                      t.beats_left == 1};
        break;
      }
    }
  }

  for (std::size_t s = 0; s < n_s; ++s) {
    subs_[s]->req.write(sub_req_scratch_[s]);
  }
  for (std::size_t m = 0; m < n_m; ++m) {
    mgrs_[m]->rsp.write(mgr_rsp_scratch_[m]);
  }
}

/// Commits the cycle's handshakes into the shared XbarState — identical
/// bookkeeping for both implementations — and recomputes the per-shard
/// edge-activity flags: a shard is marked only when the edge mutated
/// state its eval reads (grant FIFOs, round-robin pointers, ID routes,
/// DECERR queues); pure wire traffic is traced by the scheduler.
void Crossbar::tick() {
  const std::size_t n_m = mgrs_.size();
  const std::size_t n_s = subs_.size();

  std::fill(st_.mgr_evt.begin(), st_.mgr_evt.end(), 0);
  std::fill(st_.sub_evt.begin(), st_.sub_evt.end(), 0);

  // Facade-level (monolithic) activity mirrors the seed's conservative
  // formula: quiet ports all around and empty DECERR queues mean the
  // edge was a provable no-op for eval().
  bool evt = false;
  for (std::size_t m = 0; m < n_m; ++m) {
    evt = evt || !st_.dec_w[m].empty() || !st_.dec_r[m].empty();
  }

  for (std::size_t m = 0; m < n_m; ++m) {
    const AxiReq& mq = mgrs_[m]->req.read();
    const AxiRsp& mr = mgrs_[m]->rsp.read();
    evt = evt || mq.aw_valid || mq.w_valid || mq.ar_valid || mr.b_valid ||
          mr.r_valid;

    if (aw_fire(mq, mr)) {
      st_.mgr_evt[m] = 1;
      const std::size_t s = st_.decoder.lookup(mq.aw.addr, tick_aw_hint_[m]);
      st_.aw_id_route[m].open(mq.aw.id, s);
      if (s == kDecErr) {
        st_.dec_w[m].push_back(DecErrWrite{mq.aw.id, false});
        st_.mgr_w_route[m].push_back(kDecErr);
        ++st_.decode_errors;
      } else {
        st_.w_route[s].push_back(m);
        st_.mgr_w_route[m].push_back(s);
        st_.aw_rr[s] = (m + 1) % n_m;
        st_.sub_evt[s] = 1;
      }
    }
    if (ar_fire(mq, mr)) {
      st_.mgr_evt[m] = 1;
      const std::size_t s = st_.decoder.lookup(mq.ar.addr, tick_ar_hint_[m]);
      st_.ar_id_route[m].open(mq.ar.id, s);
      if (s == kDecErr) {
        st_.dec_r[m].push_back(DecErrRead{mq.ar.id, beats(mq.ar.len)});
        ++st_.decode_errors;
      } else {
        st_.ar_rr[s] = (m + 1) % n_m;
        st_.sub_evt[s] = 1;
      }
    }
    // W beat consumed.
    if (w_fire(mq, mr)) {
      assert(!st_.mgr_w_route[m].empty());
      st_.mgr_evt[m] = 1;
      const std::size_t s = st_.mgr_w_route[m].front();
      if (s == kDecErr) {
        if (mq.w.last) {
          for (DecErrWrite& t : st_.dec_w[m]) {
            if (!t.data_done) {
              t.data_done = true;
              break;
            }
          }
          st_.mgr_w_route[m].pop_front();
        }
      } else if (mq.w.last) {
        st_.mgr_w_route[m].pop_front();
        st_.w_route[s].pop_front();
        st_.sub_evt[s] = 1;
      }
    }
    // B delivered.
    if (b_fire(mq, mr)) {
      st_.mgr_evt[m] = 1;
      st_.aw_id_route[m].close(mr.b.id);
      // If it came from the DECERR queue, retire that entry.
      bool from_sub = false;
      for (std::size_t s = 0; s < n_s; ++s) {
        const AxiRsp& sr = subs_[s]->rsp.read();
        if (sr.b_valid && subs_[s]->req.read().b_ready &&
            (sr.b.id >> st_.id_shift) == m) {
          from_sub = true;
          st_.b_rr[m] = (s + 1) % (n_s + 1);
          break;
        }
      }
      if (!from_sub) {
        for (auto it = st_.dec_w[m].begin(); it != st_.dec_w[m].end();
             ++it) {
          if (it->data_done) {
            st_.dec_w[m].erase(it);
            break;
          }
        }
        st_.b_rr[m] = 0;
      }
    }
    // R beat delivered.
    if (r_fire(mq, mr)) {
      st_.mgr_evt[m] = 1;
      if (mr.r.last) st_.ar_id_route[m].close(mr.r.id);
      bool from_sub = false;
      for (std::size_t s = 0; s < n_s; ++s) {
        const AxiRsp& sr = subs_[s]->rsp.read();
        if (sr.r_valid && subs_[s]->req.read().r_ready &&
            (sr.r.id >> st_.id_shift) == m) {
          from_sub = true;
          st_.r_rr[m] = (s + 1) % (n_s + 1);
          break;
        }
      }
      if (!from_sub) {
        if (!st_.dec_r[m].empty()) {
          if (--st_.dec_r[m].front().beats_left == 0) {
            st_.dec_r[m].pop_front();
          }
        }
        st_.r_rr[m] = 0;
      }
    }
  }
  tick_evt_ = evt;
}

void Crossbar::reset() {
  st_.clear();
  tick_evt_ = true;
  for (Link* s : subs_) s->req.force(AxiReq{});
  for (Link* m : mgrs_) m->rsp.force(AxiRsp{});
  for (auto& w : xreq_) w.force(AxiReq{});
  for (auto& w : xrsp_) w.force(AxiRsp{});
}

void Crossbar::visit_state(sim::StateVisitor& v) {
  visit(v, st_);
  // Internal shard-coupling wires are owned here, not by a Soc link, so
  // they travel with the facade (in-place: wires are non-copyable and
  // the row/column shape is construction-fixed).
  for (auto& w : xreq_) visit(v, w);
  for (auto& w : xrsp_) visit(v, w);
  visit(v, tick_evt_);
}

}  // namespace axi
