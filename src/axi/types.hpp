#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace axi {

// State-serde note: every payload/bundle struct below carries a
// templated visit_fields() (see sim/state.hpp) so snapshots can walk
// flit queues without this header depending on the serde layer; the
// unqualified visit() calls resolve by ADL on the visitor argument.

using Id = std::uint32_t;
using Addr = std::uint64_t;
/// One data beat; the models use buses up to 64 bit.
using Data = std::uint64_t;

/// AXI4 burst type (AWBURST / ARBURST encoding).
enum class Burst : std::uint8_t { kFixed = 0, kIncr = 1, kWrap = 2 };

/// AXI4 response code (BRESP / RRESP encoding).
enum class Resp : std::uint8_t {
  kOkay = 0,
  kExOkay = 1,
  kSlvErr = 2,
  kDecErr = 3,
};

inline const char* to_string(Resp r) {
  switch (r) {
    case Resp::kOkay: return "OKAY";
    case Resp::kExOkay: return "EXOKAY";
    case Resp::kSlvErr: return "SLVERR";
    case Resp::kDecErr: return "DECERR";
  }
  return "?";
}

inline const char* to_string(Burst b) {
  switch (b) {
    case Burst::kFixed: return "FIXED";
    case Burst::kIncr: return "INCR";
    case Burst::kWrap: return "WRAP";
  }
  return "?";
}

/// AW channel payload (write address).
struct AwFlit {
  Id id = 0;
  Addr addr = 0;
  std::uint8_t len = 0;   ///< beats - 1, as in AWLEN
  std::uint8_t size = 3;  ///< log2(bytes per beat), as in AWSIZE
  Burst burst = Burst::kIncr;
  bool operator==(const AwFlit&) const = default;
  template <typename V>
  void visit_fields(V& v) {
    visit(v, id);
    visit(v, addr);
    visit(v, len);
    visit(v, size);
    visit(v, burst);
  }
};

/// W channel payload (write data).
struct WFlit {
  Data data = 0;
  std::uint8_t strb = 0xFF;
  bool last = false;
  bool operator==(const WFlit&) const = default;
  template <typename V>
  void visit_fields(V& v) {
    visit(v, data);
    visit(v, strb);
    visit(v, last);
  }
};

/// B channel payload (write response).
struct BFlit {
  Id id = 0;
  Resp resp = Resp::kOkay;
  bool operator==(const BFlit&) const = default;
  template <typename V>
  void visit_fields(V& v) {
    visit(v, id);
    visit(v, resp);
  }
};

/// AR channel payload (read address).
struct ArFlit {
  Id id = 0;
  Addr addr = 0;
  std::uint8_t len = 0;
  std::uint8_t size = 3;
  Burst burst = Burst::kIncr;
  bool operator==(const ArFlit&) const = default;
  template <typename V>
  void visit_fields(V& v) {
    visit(v, id);
    visit(v, addr);
    visit(v, len);
    visit(v, size);
    visit(v, burst);
  }
};

/// R channel payload (read data).
struct RFlit {
  Id id = 0;
  Data data = 0;
  Resp resp = Resp::kOkay;
  bool last = false;
  bool operator==(const RFlit&) const = default;
  template <typename V>
  void visit_fields(V& v) {
    visit(v, id);
    visit(v, data);
    visit(v, resp);
    visit(v, last);
  }
};

/// Manager -> subordinate signal bundle (requests + response readies),
/// mirroring the pulp-platform axi_req_t convention.
struct AxiReq {
  AwFlit aw{};
  bool aw_valid = false;
  WFlit w{};
  bool w_valid = false;
  bool b_ready = false;
  ArFlit ar{};
  bool ar_valid = false;
  bool r_ready = false;
  bool operator==(const AxiReq&) const = default;
  template <typename V>
  void visit_fields(V& v) {
    visit(v, aw);
    visit(v, aw_valid);
    visit(v, w);
    visit(v, w_valid);
    visit(v, b_ready);
    visit(v, ar);
    visit(v, ar_valid);
    visit(v, r_ready);
  }
};

/// Subordinate -> manager signal bundle (readies + responses),
/// mirroring the pulp-platform axi_rsp_t convention.
struct AxiRsp {
  bool aw_ready = false;
  bool w_ready = false;
  BFlit b{};
  bool b_valid = false;
  bool ar_ready = false;
  RFlit r{};
  bool r_valid = false;
  bool operator==(const AxiRsp&) const = default;
  template <typename V>
  void visit_fields(V& v) {
    visit(v, aw_ready);
    visit(v, w_ready);
    visit(v, b);
    visit(v, b_valid);
    visit(v, ar_ready);
    visit(v, r);
    visit(v, r_valid);
  }
};

/// Number of beats in a burst described by an AXI len field.
inline unsigned beats(std::uint8_t len) { return unsigned{len} + 1u; }

/// Bytes per beat for an AXI size field.
inline std::uint64_t beat_bytes(std::uint8_t size) {
  return std::uint64_t{1} << size;
}

}  // namespace axi
