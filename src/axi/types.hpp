#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace axi {

using Id = std::uint32_t;
using Addr = std::uint64_t;
/// One data beat; the models use buses up to 64 bit.
using Data = std::uint64_t;

/// AXI4 burst type (AWBURST / ARBURST encoding).
enum class Burst : std::uint8_t { kFixed = 0, kIncr = 1, kWrap = 2 };

/// AXI4 response code (BRESP / RRESP encoding).
enum class Resp : std::uint8_t {
  kOkay = 0,
  kExOkay = 1,
  kSlvErr = 2,
  kDecErr = 3,
};

inline const char* to_string(Resp r) {
  switch (r) {
    case Resp::kOkay: return "OKAY";
    case Resp::kExOkay: return "EXOKAY";
    case Resp::kSlvErr: return "SLVERR";
    case Resp::kDecErr: return "DECERR";
  }
  return "?";
}

inline const char* to_string(Burst b) {
  switch (b) {
    case Burst::kFixed: return "FIXED";
    case Burst::kIncr: return "INCR";
    case Burst::kWrap: return "WRAP";
  }
  return "?";
}

/// AW channel payload (write address).
struct AwFlit {
  Id id = 0;
  Addr addr = 0;
  std::uint8_t len = 0;   ///< beats - 1, as in AWLEN
  std::uint8_t size = 3;  ///< log2(bytes per beat), as in AWSIZE
  Burst burst = Burst::kIncr;
  bool operator==(const AwFlit&) const = default;
};

/// W channel payload (write data).
struct WFlit {
  Data data = 0;
  std::uint8_t strb = 0xFF;
  bool last = false;
  bool operator==(const WFlit&) const = default;
};

/// B channel payload (write response).
struct BFlit {
  Id id = 0;
  Resp resp = Resp::kOkay;
  bool operator==(const BFlit&) const = default;
};

/// AR channel payload (read address).
struct ArFlit {
  Id id = 0;
  Addr addr = 0;
  std::uint8_t len = 0;
  std::uint8_t size = 3;
  Burst burst = Burst::kIncr;
  bool operator==(const ArFlit&) const = default;
};

/// R channel payload (read data).
struct RFlit {
  Id id = 0;
  Data data = 0;
  Resp resp = Resp::kOkay;
  bool last = false;
  bool operator==(const RFlit&) const = default;
};

/// Manager -> subordinate signal bundle (requests + response readies),
/// mirroring the pulp-platform axi_req_t convention.
struct AxiReq {
  AwFlit aw{};
  bool aw_valid = false;
  WFlit w{};
  bool w_valid = false;
  bool b_ready = false;
  ArFlit ar{};
  bool ar_valid = false;
  bool r_ready = false;
  bool operator==(const AxiReq&) const = default;
};

/// Subordinate -> manager signal bundle (readies + responses),
/// mirroring the pulp-platform axi_rsp_t convention.
struct AxiRsp {
  bool aw_ready = false;
  bool w_ready = false;
  BFlit b{};
  bool b_valid = false;
  bool ar_ready = false;
  RFlit r{};
  bool r_valid = false;
  bool operator==(const AxiRsp&) const = default;
};

/// Number of beats in a burst described by an AXI len field.
inline unsigned beats(std::uint8_t len) { return unsigned{len} + 1u; }

/// Bytes per beat for an AXI size field.
inline std::uint64_t beat_bytes(std::uint8_t size) {
  return std::uint64_t{1} << size;
}

}  // namespace axi
