#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "axi/link.hpp"
#include "axi/types.hpp"
#include "sim/module.hpp"

namespace axi {

/// A detected protocol violation.
struct Violation {
  std::uint64_t cycle = 0;
  std::string rule;
  std::string detail;
};

/// Passive AXI4 protocol-compliance observer for a single link.
///
/// Implements the subset of AXIChecker-style rules the paper's TMU also
/// relies on: payload stability while valid && !ready, WLAST placement,
/// B/R ID matching against outstanding requests, R beat counts and RLAST
/// placement, unrequested responses, 4 KiB crossing and WRAP legality.
///
/// The models in this repo issue AW before the first W beat of a burst
/// (a common interconnect guarantee); the scoreboard checks W beats
/// against the oldest data-incomplete AW.
class Scoreboard : public sim::Module {
 public:
  Scoreboard(std::string name, Link& link);

  /// Samples settled wires in tick() only; schedulers skip it in settle.
  bool is_combinational() const override { return false; }

  void tick() override;
  void reset() override;

  const std::vector<Violation>& violations() const { return violations_; }
  std::size_t violation_count() const { return violations_.size(); }
  std::size_t completed_writes() const { return completed_writes_; }
  std::size_t completed_reads() const { return completed_reads_; }

 private:
  void flag(const std::string& rule, const std::string& detail);

  struct OpenWrite {
    AwFlit aw;
    unsigned beats = 0;
  };
  struct OpenRead {
    ArFlit ar;
    unsigned beats = 0;
  };

  Link& link_;
  std::uint64_t cycle_ = 0;

  // Stability tracking: last cycle's request/response.
  AxiReq prev_q_{};
  AxiRsp prev_s_{};
  bool have_prev_ = false;

  std::deque<OpenWrite> open_writes_;            ///< data phase tracking
  std::map<Id, std::deque<AwFlit>> await_b_;     ///< B expected per ID
  std::map<Id, std::deque<OpenRead>> await_r_;   ///< R expected per ID

  std::vector<Violation> violations_;
  std::size_t completed_writes_ = 0;
  std::size_t completed_reads_ = 0;
};

}  // namespace axi
