#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "axi/link.hpp"
#include "sim/module.hpp"
#include "sim/wire.hpp"
#include "tmu/config.hpp"
#include "tmu/fault.hpp"
#include "tmu/guard.hpp"

namespace tmu {

/// One timestamped TMU state transition, for timeline tooling
/// (trace::export_chrome_json renders these as instant events). Kept in
/// a small bounded log besides the fault log: the fault log is the
/// paper's per-violation hardware FIFO, this is the detect → sever →
/// reset-request → recover arc of each incident.
struct LifecycleEvent {
  enum class Kind : std::uint8_t { kDetect, kSever, kResetReq, kRecover };
  std::uint64_t cycle = 0;
  Kind kind = Kind::kDetect;

  bool operator==(const LifecycleEvent&) const = default;

  template <typename V>
  void visit_fields(V& v) {
    visit(v, cycle);
    visit(v, kind);
  }
};

inline const char* to_string(LifecycleEvent::Kind k) {
  switch (k) {
    case LifecycleEvent::Kind::kDetect: return "detect";
    case LifecycleEvent::Kind::kSever: return "sever";
    case LifecycleEvent::Kind::kResetReq: return "reset_req";
    case LifecycleEvent::Kind::kRecover: return "recover";
  }
  return "?";
}

/// Transaction Monitoring Unit: the paper's drop-in monitor between the
/// AXI4 interconnect (manager side, `mst` link) and a subordinate
/// endpoint (`sub` link).
///
/// Normal operation is a zero-latency combinational pass-through while
/// the Write/Read Guards listen in parallel. On a fault (protocol
/// violation or timeout) the TMU:
///   1. severs both request and response paths,
///   2. answers the manager with SLVERR for all outstanding transactions
///      (aborting them) and drains in-flight W beats,
///   3. raises the `irq` wire and asserts `reset_req` towards an
///      external reset unit,
///   4. once `reset_ack` arrives and the aborts have drained, clears all
///      tracking state and resumes monitoring.
///
/// The TMU also back-pressures new AW/AR requests when the OTT or ID
/// remapper is saturated (requests stall, nothing is dropped).
class Tmu : public sim::Module {
 public:
  Tmu(std::string name, axi::Link& mst, axi::Link& sub, TmuConfig cfg);

  void eval() override;
  void tick() override;
  void reset() override;
  bool tick_changed_eval_state() const override { return tick_evt_; }
  void visit_state(sim::StateVisitor& v) override;

  // ---- fault / recovery interface ----
  sim::Wire<bool> irq;        ///< level interrupt to the PLIC / CPU
  sim::Wire<bool> reset_req;  ///< to the external reset unit
  sim::Wire<bool> reset_ack;  ///< from the external reset unit

  bool severed() const { return severed_; }
  std::uint64_t resets_requested() const { return resets_requested_; }
  std::uint64_t recoveries() const { return recoveries_; }

  /// Full error log (Fc: phase-level detail; Tc: transaction-level).
  const std::vector<FaultRecord>& fault_log() const { return fault_log_; }
  /// Entries lost to the bounded hardware log FIFO.
  std::uint64_t fault_log_dropped() const { return fault_log_dropped_; }
  /// First-fault convenience: cycle of the first logged fault.
  bool any_fault() const { return !fault_log_.empty(); }

  /// Timestamped detect/sever/reset-request/recover transitions, for
  /// timeline export. Bounded like the fault log.
  const std::vector<LifecycleEvent>& lifecycle_log() const {
    return lifecycle_log_;
  }
  std::uint64_t lifecycle_log_dropped() const { return lifecycle_dropped_; }

  // ---- monitoring state ----
  WriteGuard& write_guard() { return wg_; }
  const WriteGuard& write_guard() const { return wg_; }
  ReadGuard& read_guard() { return rg_; }
  const ReadGuard& read_guard() const { return rg_; }
  const TmuConfig& config() const { return cfg_; }
  std::uint64_t cycle() const { return cycle_; }

  /// Clears the level interrupt. Takes effect immediately, like the
  /// register write a recovery handler performs.
  void clear_irq() {
    irq_latched_ = false;
    notify_state_change();
  }

  // ---- software register file (§II-A) ----
  /// 32-bit register read/write at a byte offset; see regs.cpp for the
  /// map. Writes take effect at the next clock edge.
  std::uint32_t read_reg(std::uint32_t offset);
  void write_reg(std::uint32_t offset, std::uint32_t value);

 private:
  struct AbortB {
    axi::Id id = 0;
    template <typename V>
    void visit_fields(V& v) {
      visit(v, id);
    }
  };
  struct AbortR {
    axi::Id id = 0;
    unsigned beats_left = 0;
    template <typename V>
    void visit_fields(V& v) {
      visit(v, id);
      visit(v, beats_left);
    }
  };

  void enter_severed();
  void finish_recovery();
  bool irq_state_() const;
  void log_lifecycle(LifecycleEvent::Kind k);

  axi::Link& mst_;
  axi::Link& sub_;
  TmuConfig cfg_;
  WriteGuard wg_;
  ReadGuard rg_;

  bool severed_ = false;
  bool ack_seen_ = false;
  std::deque<AbortB> abort_b_;
  std::deque<AbortR> abort_r_;
  unsigned undrained_beats_ = 0;   ///< W beats of severed writes to drain
  std::uint32_t w_idle_cycles_ = 0;
  static constexpr std::uint32_t kDrainGrace = 64;
  unsigned swallow_beats_ = 0;     ///< post-recovery stray W beats to eat

  static constexpr std::size_t kLifecycleDepth = 256;
  std::vector<FaultRecord> fault_log_;
  std::uint64_t fault_log_dropped_ = 0;
  std::vector<LifecycleEvent> lifecycle_log_;
  std::uint64_t lifecycle_dropped_ = 0;
  std::uint64_t resets_requested_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t cycle_ = 0;
  bool tick_evt_ = true;  ///< last tick touched eval-relevant state
  bool irq_latched_ = false;        ///< level interrupt, cleared by sw
  std::size_t fault_read_ptr_ = 0;  ///< regfile FAULT_FIFO cursor
};

}  // namespace tmu
