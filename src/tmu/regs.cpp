#include "tmu/regs.hpp"
#include "tmu/tmu.hpp"

namespace tmu {

std::uint32_t Tmu::read_reg(std::uint32_t offset) {
  using namespace regs;
  switch (offset) {
    case kCtrl:
      return std::uint32_t{cfg_.enabled} | std::uint32_t{cfg_.irq_enabled} << 1 |
             std::uint32_t{cfg_.reset_on_fault} << 2 |
             std::uint32_t{cfg_.adaptive.enabled} << 3 |
             std::uint32_t{cfg_.variant == Variant::kFullCounter} << 8;
    case kStatus:
      return std::uint32_t{severed_} | std::uint32_t{irq_state_()} << 1 |
             static_cast<std::uint32_t>(recoveries_ & 0xFFFF) << 16;
    case kPrescaler:
      return cfg_.prescaler_step | std::uint32_t{cfg_.sticky_bit} << 31;
    case kTcBudget:
      return cfg_.tc_total_budget;
    case kBudgetAw: return cfg_.budgets.aw_vld_aw_rdy;
    case kBudgetWEntry: return cfg_.budgets.aw_rdy_w_vld;
    case kBudgetWHs: return cfg_.budgets.w_vld_w_rdy;
    case kBudgetWData: return cfg_.budgets.w_first_w_last;
    case kBudgetBWait: return cfg_.budgets.w_last_b_vld;
    case kBudgetBHs: return cfg_.budgets.b_vld_b_rdy;
    case kBudgetAr: return cfg_.budgets.ar_vld_ar_rdy;
    case kBudgetREntry: return cfg_.budgets.ar_rdy_r_vld;
    case kBudgetRHs: return cfg_.budgets.r_vld_r_rdy;
    case kBudgetRData: return cfg_.budgets.r_vld_r_last;
    case kAdaptPerBeat: return cfg_.adaptive.cycles_per_beat;
    case kAdaptPerAhead: return cfg_.adaptive.cycles_per_ahead;
    case kFaultCount:
      return static_cast<std::uint32_t>(fault_log_.size());
    case kFaultInfo: {
      if (fault_read_ptr_ >= fault_log_.size()) return 0;
      const FaultRecord& f = fault_log_[fault_read_ptr_++];
      return pack_fault(static_cast<std::uint8_t>(f.kind), f.phase,
                        f.is_write, f.phase_valid, f.id, f.elapsed);
    }
    case kOccupancy:
      return (wg_.ott().occupancy() & 0xFFu) |
             (rg_.ott().occupancy() & 0xFFu) << 8 |
             (wg_.remapper().active_ids() & 0xFFu) << 16 |
             (rg_.remapper().active_ids() & 0xFFu) << 24;
    case kTxnCount:
      return static_cast<std::uint32_t>(wg_.stats().completed +
                                        rg_.stats().completed);
    case kCapacity:
      return (cfg_.max_uniq_ids & 0xFFu) |
             (cfg_.txn_per_uniq_id & 0xFFu) << 8 |
             (cfg_.max_outstanding() & 0xFFFFu) << 16;
    case kWrLatMin:
      return static_cast<std::uint32_t>(wg_.stats().total_latency.min());
    case kWrLatMax:
      return static_cast<std::uint32_t>(wg_.stats().total_latency.max());
    case kWrLatAvg:
      return static_cast<std::uint32_t>(wg_.stats().total_latency.mean() +
                                        0.5);
    case kRdLatMin:
      return static_cast<std::uint32_t>(rg_.stats().total_latency.min());
    case kRdLatMax:
      return static_cast<std::uint32_t>(rg_.stats().total_latency.max());
    case kRdLatAvg:
      return static_cast<std::uint32_t>(rg_.stats().total_latency.mean() +
                                        0.5);
    case kWrBeats:
      return static_cast<std::uint32_t>(wg_.stats().beats);
    case kRdBeats:
      return static_cast<std::uint32_t>(rg_.stats().beats);
    case kLogDropped:
      return static_cast<std::uint32_t>(fault_log_dropped_ & 0xFFFF) |
             static_cast<std::uint32_t>(
                 (wg_.perf_log_dropped() + rg_.perf_log_dropped()) & 0xFFFF)
                 << 16;
    default:
      return 0;
  }
}

void Tmu::write_reg(std::uint32_t offset, std::uint32_t value) {
  using namespace regs;
  switch (offset) {
    case kCtrl:
      cfg_.enabled = value & 1u;
      cfg_.irq_enabled = value & 2u;
      cfg_.reset_on_fault = value & 4u;
      cfg_.adaptive.enabled = value & 8u;
      break;
    case kPrescaler:
      cfg_.prescaler_step = value & 0x7FFFFFFFu;
      if (cfg_.prescaler_step == 0) cfg_.prescaler_step = 1;
      cfg_.sticky_bit = value >> 31;
      break;
    case kTcBudget: cfg_.tc_total_budget = value; break;
    case kBudgetAw: cfg_.budgets.aw_vld_aw_rdy = value; break;
    case kBudgetWEntry: cfg_.budgets.aw_rdy_w_vld = value; break;
    case kBudgetWHs: cfg_.budgets.w_vld_w_rdy = value; break;
    case kBudgetWData: cfg_.budgets.w_first_w_last = value; break;
    case kBudgetBWait: cfg_.budgets.w_last_b_vld = value; break;
    case kBudgetBHs: cfg_.budgets.b_vld_b_rdy = value; break;
    case kBudgetAr: cfg_.budgets.ar_vld_ar_rdy = value; break;
    case kBudgetREntry: cfg_.budgets.ar_rdy_r_vld = value; break;
    case kBudgetRHs: cfg_.budgets.r_vld_r_rdy = value; break;
    case kBudgetRData: cfg_.budgets.r_vld_r_last = value; break;
    case kAdaptPerBeat: cfg_.adaptive.cycles_per_beat = value; break;
    case kAdaptPerAhead: cfg_.adaptive.cycles_per_ahead = value; break;
    case kIrqClear: clear_irq(); break;
    default:
      break;  // read-only or unmapped: ignore
  }
  // Register writes change eval-visible config without touching a wire
  // (tests call write_reg directly, bypassing the MMIO front-end).
  notify_state_change();
}

}  // namespace tmu
