#include "tmu/guard.hpp"

#include "axi/link.hpp"

namespace tmu {

namespace {
/// Marks an entry as already-faulted so it is flagged exactly once.
/// Reuses the counter running flag: a stopped counter means "no longer
/// monitored" (completed or faulted).
bool monitored(const LdEntry& e) { return e.valid && e.counter.running(); }

/// Accumulated outstanding traffic (§II-F): data beats that older
/// transactions in the OTT still have to transfer.
std::uint32_t beats_ahead(const Ott& ott) {
  std::uint32_t total = 0;
  for (int idx : ott.order()) {
    const LdEntry& e = ott.at(idx);
    if (!e.valid) continue;
    const unsigned remaining = axi::beats(e.len) > e.beats
                                   ? axi::beats(e.len) - e.beats
                                   : 0;
    total += remaining;
  }
  return total;
}
}  // namespace

// ---------------------------------------------------------------------
// WriteGuard
// ---------------------------------------------------------------------

void WriteGuard::flag(FaultKind kind, const LdEntry* e, WritePhase phase,
                      std::uint64_t cycle, axi::Id id_hint) {
  FaultRecord f;
  f.cycle = cycle;
  f.is_write = true;
  f.kind = kind;
  f.phase_valid = cfg_->variant == Variant::kFullCounter;
  f.phase = static_cast<std::uint8_t>(phase);
  if (e != nullptr) {
    f.id = e->orig_id;
    f.tid = e->tid;
    f.addr = e->addr;
    const unsigned pi = cfg_->variant == Variant::kFullCounter
                            ? static_cast<unsigned>(phase)
                            : 0u;
    f.elapsed = e->phase_cycles[pi];
    f.budget = e->phase_budget[pi];
  } else {
    f.id = id_hint;
  }
  faults_.push_back(f);
  if (kind == FaultKind::kTimeout) {
    ++stats_.timeouts;
  } else {
    ++stats_.protocol_faults;
  }
}

void WriteGuard::enqueue_pending(const axi::AwFlit& aw, std::uint64_t cycle) {
  const auto tid = remap_.admit(aw.id);
  if (!tid) return;  // gated by the TMU; should not happen when admitted
  const std::uint32_t ahead = beats_ahead(ott_);
  const int idx = ott_.enqueue(*tid, aw.id, aw.addr, aw.len, cycle);
  if (idx < 0) {
    remap_.release(*tid);
    return;
  }
  LdEntry& e = ott_.at(idx);
  e.phase = static_cast<std::uint8_t>(WritePhase::kAwVldAwRdy);
  if (cfg_->variant == Variant::kFullCounter) {
    e.phase_budget = budget_.write_budgets(aw.len, ahead);
    e.counter.arm(e.phase_budget[0], cfg_->prescaler_step, cfg_->sticky_bit);
  } else {
    e.phase_budget[0] = budget_.tc_total(aw.len, ahead);
    e.counter.arm(e.phase_budget[0], cfg_->prescaler_step, cfg_->sticky_bit);
  }
  pending_aw_ = idx;
  pending_flit_ = aw;
  ++stats_.enqueued;
}

void WriteGuard::advance_phase(LdEntry& e, WritePhase next) {
  e.phase = static_cast<std::uint8_t>(next);
  if (cfg_->variant == Variant::kFullCounter) {
    if (next == WritePhase::kDone) {
      e.counter.stop();
    } else {
      const unsigned pi = static_cast<unsigned>(next);
      e.counter.arm(e.phase_budget[pi], cfg_->prescaler_step,
                    cfg_->sticky_bit);
    }
  } else if (next == WritePhase::kDone) {
    e.counter.stop();
  }
  // Tc: the single whole-transaction counter keeps running.
}

void WriteGuard::complete(int idx, std::uint64_t cycle) {
  LdEntry& e = ott_.at(idx);
  std::uint32_t total = 0;
  for (unsigned p = 0; p < kNumWritePhases; ++p) total += e.phase_cycles[p];
  stats_.total_latency.add(static_cast<double>(total));
  if (cfg_->variant == Variant::kFullCounter) {
    for (unsigned p = 0; p < kNumWritePhases; ++p) {
      stats_.phase[p].add(static_cast<double>(e.phase_cycles[p]));
    }
    TxnPerfRecord rec;
    rec.is_write = true;
    rec.id = e.orig_id;
    rec.addr = e.addr;
    rec.len = e.len;
    rec.phase_cycles = e.phase_cycles;
    rec.total_cycles = total;
    if (perf_log_.size() < cfg_->perf_log_depth) {
      perf_log_.push_back(rec);
    } else {
      ++perf_dropped_;
    }
  }
  ++stats_.completed;
  remap_.release(e.tid);
  ott_.dequeue(e.tid);
  (void)cycle;
}

int WriteGuard::active_w_entry() const {
  for (int idx : ott_.order()) {
    const LdEntry& e = ott_.at(idx);
    if (!e.valid || !e.accepted) continue;
    const auto ph = static_cast<WritePhase>(e.phase);
    if (ph == WritePhase::kAwRdyWVld || ph == WritePhase::kWVldWRdy ||
        ph == WritePhase::kWFirstWLast) {
      return idx;
    }
  }
  return -1;
}

void WriteGuard::pulse_counters(std::uint64_t cycle) {
  // Measured per-phase cycle counts advance every clock; the watchdog
  // counters advance on prescaler pulses only.
  const bool pulse = prescaler_.tick();
  for (const int idx : ott_.order()) {  // no per-tick snapshot alloc
    LdEntry& e = ott_.at(idx);
    if (!e.valid) continue;
    const unsigned pi = cfg_->variant == Variant::kFullCounter
                            ? std::min<unsigned>(e.phase, kNumWritePhases - 1)
                            : 0u;
    if (e.phase != static_cast<std::uint8_t>(WritePhase::kDone)) {
      ++e.phase_cycles[pi];
    }
    if (pulse && monitored(e)) {
      if (e.counter.pulse()) {
        flag(FaultKind::kTimeout, &e,
             cfg_->variant == Variant::kFullCounter
                 ? static_cast<WritePhase>(e.phase)
                 : WritePhase::kAwVldAwRdy,
             cycle);
        e.counter.stop();
      }
    }
  }
}

void WriteGuard::observe(const axi::AxiReq& q, const axi::AxiRsp& s,
                         bool admitted, std::uint64_t cycle) {
  // ---- AW channel ----
  if (q.aw_valid) {
    if (pending_aw_ < 0 && admitted) {
      enqueue_pending(q.aw, cycle);
    } else if (pending_aw_ >= 0 && !(q.aw == pending_flit_)) {
      // Payload must stay stable while valid is held.
      flag(FaultKind::kHandshake, &ott_.at(pending_aw_),
           WritePhase::kAwVldAwRdy, cycle);
      pending_flit_ = q.aw;
    }
  } else if (prev_aw_valid_ && pending_aw_ >= 0) {
    // aw_valid dropped before aw_ready: handshake violation.
    flag(FaultKind::kHandshake, &ott_.at(pending_aw_),
         WritePhase::kAwVldAwRdy, cycle);
    // Abandon the entry: the manager withdrew the request.
    LdEntry& e = ott_.at(pending_aw_);
    remap_.release(e.tid);
    ott_.dequeue(e.tid);
    pending_aw_ = -1;
  }

  if (axi::aw_fire(q, s) && pending_aw_ >= 0) {
    LdEntry& e = ott_.at(pending_aw_);
    e.accepted = true;
    advance_phase(e, WritePhase::kAwRdyWVld);
    pending_aw_ = -1;
  }

  // ---- W channel ----
  const int widx = active_w_entry();
  if (q.w_valid) {
    if (widx < 0) {
      // W beat with no open write transaction (EI-table order violation).
      if (!w_orphan_flagged_) {
        flag(FaultKind::kHandshake, nullptr, WritePhase::kWVldWRdy, cycle);
        w_orphan_flagged_ = true;
      }
    } else {
      LdEntry& e = ott_.at(widx);
      if (static_cast<WritePhase>(e.phase) == WritePhase::kAwRdyWVld) {
        advance_phase(e, WritePhase::kWVldWRdy);
      }
    }
  }
  if (axi::w_fire(q, s) && widx >= 0) {
    LdEntry& e = ott_.at(widx);
    ++e.beats;
    ++stats_.beats;
    w_orphan_flagged_ = false;
    const bool should_be_last = e.beats == axi::beats(e.len);
    if (q.w.last != should_be_last) {
      flag(FaultKind::kHandshake, &e, WritePhase::kWFirstWLast, cycle);
    }
    if (q.w.last || should_be_last) {
      advance_phase(e, WritePhase::kWLastBVld);
    } else if (static_cast<WritePhase>(e.phase) == WritePhase::kWVldWRdy) {
      advance_phase(e, WritePhase::kWFirstWLast);
    }
  }

  // ---- B channel ----
  if (s.b_valid) {
    const auto tid = remap_.lookup(s.b.id);
    const int head = tid ? ott_.head_of(*tid) : -1;
    if (!tid || head < 0) {
      if (!b_orphan_flagged_) {
        flag(FaultKind::kUnrequested, nullptr, WritePhase::kWLastBVld, cycle,
             s.b.id);
        b_orphan_flagged_ = true;
      }
    } else {
      LdEntry& e = ott_.at(head);
      const auto ph = static_cast<WritePhase>(e.phase);
      if (ph == WritePhase::kWLastBVld) {
        advance_phase(e, WritePhase::kBVldBRdy);
      } else if (ph != WritePhase::kBVldBRdy && monitored(e)) {
        // Response for a transaction that has not finished its data.
        flag(FaultKind::kIdMismatch, &e, ph, cycle, s.b.id);
        e.counter.stop();
      }
      if (axi::b_fire(q, s) && (ph == WritePhase::kWLastBVld ||
                                ph == WritePhase::kBVldBRdy)) {
        complete(head, cycle);
      }
    }
  } else {
    b_orphan_flagged_ = false;
  }

  prev_aw_valid_ = q.aw_valid;
  pulse_counters(cycle);
}

void WriteGuard::clear() {
  remap_.clear();
  ott_.clear();
  prescaler_.reset();
  pending_aw_ = -1;
  prev_aw_valid_ = false;
  w_orphan_flagged_ = false;
  b_orphan_flagged_ = false;
  faults_.clear();
}

// ---------------------------------------------------------------------
// ReadGuard
// ---------------------------------------------------------------------

void ReadGuard::flag(FaultKind kind, const LdEntry* e, ReadPhase phase,
                     std::uint64_t cycle, axi::Id id_hint) {
  FaultRecord f;
  f.cycle = cycle;
  f.is_write = false;
  f.kind = kind;
  f.phase_valid = cfg_->variant == Variant::kFullCounter;
  f.phase = static_cast<std::uint8_t>(phase);
  if (e != nullptr) {
    f.id = e->orig_id;
    f.tid = e->tid;
    f.addr = e->addr;
    const unsigned pi = cfg_->variant == Variant::kFullCounter
                            ? static_cast<unsigned>(phase)
                            : 0u;
    f.elapsed = e->phase_cycles[pi];
    f.budget = e->phase_budget[pi];
  } else {
    f.id = id_hint;
  }
  faults_.push_back(f);
  if (kind == FaultKind::kTimeout) {
    ++stats_.timeouts;
  } else {
    ++stats_.protocol_faults;
  }
}

void ReadGuard::enqueue_pending(const axi::ArFlit& ar, std::uint64_t cycle) {
  const auto tid = remap_.admit(ar.id);
  if (!tid) return;
  const std::uint32_t ahead = beats_ahead(ott_);
  const int idx = ott_.enqueue(*tid, ar.id, ar.addr, ar.len, cycle);
  if (idx < 0) {
    remap_.release(*tid);
    return;
  }
  LdEntry& e = ott_.at(idx);
  e.phase = static_cast<std::uint8_t>(ReadPhase::kArVldArRdy);
  if (cfg_->variant == Variant::kFullCounter) {
    e.phase_budget = budget_.read_budgets(ar.len, ahead);
    e.counter.arm(e.phase_budget[0], cfg_->prescaler_step, cfg_->sticky_bit);
  } else {
    e.phase_budget[0] = budget_.tc_total(ar.len, ahead);
    e.counter.arm(e.phase_budget[0], cfg_->prescaler_step, cfg_->sticky_bit);
  }
  pending_ar_ = idx;
  pending_flit_ = ar;
  ++stats_.enqueued;
}

void ReadGuard::advance_phase(LdEntry& e, ReadPhase next) {
  e.phase = static_cast<std::uint8_t>(next);
  if (cfg_->variant == Variant::kFullCounter) {
    if (next == ReadPhase::kDone) {
      e.counter.stop();
    } else {
      const unsigned pi = static_cast<unsigned>(next);
      e.counter.arm(e.phase_budget[pi], cfg_->prescaler_step,
                    cfg_->sticky_bit);
    }
  } else if (next == ReadPhase::kDone) {
    e.counter.stop();
  }
}

void ReadGuard::complete(int idx, std::uint64_t cycle) {
  LdEntry& e = ott_.at(idx);
  std::uint32_t total = 0;
  for (unsigned p = 0; p < kNumReadPhases; ++p) total += e.phase_cycles[p];
  stats_.total_latency.add(static_cast<double>(total));
  if (cfg_->variant == Variant::kFullCounter) {
    for (unsigned p = 0; p < kNumReadPhases; ++p) {
      stats_.phase[p].add(static_cast<double>(e.phase_cycles[p]));
    }
    TxnPerfRecord rec;
    rec.is_write = false;
    rec.id = e.orig_id;
    rec.addr = e.addr;
    rec.len = e.len;
    rec.phase_cycles = e.phase_cycles;
    rec.total_cycles = total;
    if (perf_log_.size() < cfg_->perf_log_depth) {
      perf_log_.push_back(rec);
    } else {
      ++perf_dropped_;
    }
  }
  ++stats_.completed;
  remap_.release(e.tid);
  ott_.dequeue(e.tid);
  (void)cycle;
}

void ReadGuard::pulse_counters(std::uint64_t cycle) {
  const bool pulse = prescaler_.tick();
  for (const int idx : ott_.order()) {  // no per-tick snapshot alloc
    LdEntry& e = ott_.at(idx);
    if (!e.valid) continue;
    const unsigned pi = cfg_->variant == Variant::kFullCounter
                            ? std::min<unsigned>(e.phase, kNumReadPhases - 1)
                            : 0u;
    if (e.phase != static_cast<std::uint8_t>(ReadPhase::kDone)) {
      ++e.phase_cycles[pi];
    }
    if (pulse && monitored(e)) {
      if (e.counter.pulse()) {
        flag(FaultKind::kTimeout, &e,
             cfg_->variant == Variant::kFullCounter
                 ? static_cast<ReadPhase>(e.phase)
                 : ReadPhase::kArVldArRdy,
             cycle);
        e.counter.stop();
      }
    }
  }
}

void ReadGuard::observe(const axi::AxiReq& q, const axi::AxiRsp& s,
                        bool admitted, std::uint64_t cycle) {
  // ---- AR channel ----
  if (q.ar_valid) {
    if (pending_ar_ < 0 && admitted) {
      enqueue_pending(q.ar, cycle);
    } else if (pending_ar_ >= 0 && !(q.ar == pending_flit_)) {
      flag(FaultKind::kHandshake, &ott_.at(pending_ar_),
           ReadPhase::kArVldArRdy, cycle);
      pending_flit_ = q.ar;
    }
  } else if (prev_ar_valid_ && pending_ar_ >= 0) {
    flag(FaultKind::kHandshake, &ott_.at(pending_ar_), ReadPhase::kArVldArRdy,
         cycle);
    LdEntry& e = ott_.at(pending_ar_);
    remap_.release(e.tid);
    ott_.dequeue(e.tid);
    pending_ar_ = -1;
  }

  if (axi::ar_fire(q, s) && pending_ar_ >= 0) {
    LdEntry& e = ott_.at(pending_ar_);
    e.accepted = true;
    advance_phase(e, ReadPhase::kArRdyRVld);
    pending_ar_ = -1;
  }

  // ---- R channel ----
  if (s.r_valid) {
    const auto tid = remap_.lookup(s.r.id);
    const int head = tid ? ott_.head_of(*tid) : -1;
    if (!tid || head < 0 || !ott_.at(head).accepted) {
      if (!r_orphan_flagged_) {
        flag(FaultKind::kUnrequested, nullptr, ReadPhase::kArRdyRVld, cycle,
             s.r.id);
        r_orphan_flagged_ = true;
      }
    } else {
      LdEntry& e = ott_.at(head);
      if (static_cast<ReadPhase>(e.phase) == ReadPhase::kArRdyRVld) {
        advance_phase(e, ReadPhase::kRVldRRdy);
      }
      if (axi::r_fire(q, s)) {
        ++e.beats;
        ++stats_.beats;
        const bool should_be_last = e.beats == axi::beats(e.len);
        if (s.r.last != should_be_last) {
          flag(FaultKind::kHandshake, &e, ReadPhase::kRVldRLast, cycle);
        }
        if (s.r.last || should_be_last) {
          advance_phase(e, ReadPhase::kDone);
          complete(head, cycle);
        } else if (static_cast<ReadPhase>(e.phase) == ReadPhase::kRVldRRdy) {
          advance_phase(e, ReadPhase::kRVldRLast);
        }
      }
    }
  } else {
    r_orphan_flagged_ = false;
  }

  prev_ar_valid_ = q.ar_valid;
  pulse_counters(cycle);
}

void ReadGuard::clear() {
  remap_.clear();
  ott_.clear();
  prescaler_.reset();
  pending_ar_ = -1;
  prev_ar_valid_ = false;
  r_orphan_flagged_ = false;
  faults_.clear();
}

}  // namespace tmu
