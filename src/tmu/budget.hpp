#pragma once

#include <array>
#include <cstdint>

#include "tmu/config.hpp"
#include "tmu/ott.hpp"

namespace tmu {

/// Adaptive time-budgeting (§II-F): computes the per-phase (Fc) or
/// whole-transaction (Tc) budgets for a newly enqueued transaction.
/// The data-transfer component scales with burst length and the
/// queue-waiting component with the outstanding traffic already ahead
/// in the OTT.
class BudgetPolicy {
 public:
  explicit BudgetPolicy(const TmuConfig& cfg) : cfg_(&cfg) {}

  /// Budgets for the six write phases. `ahead_beats` is the number of
  /// data beats older outstanding transactions still have to transfer.
  std::array<std::uint32_t, kMaxPhases> write_budgets(
      std::uint8_t len, std::uint32_t ahead_beats) const {
    const PhaseBudgets& b = cfg_->budgets;
    std::array<std::uint32_t, kMaxPhases> out{
        b.aw_vld_aw_rdy, b.aw_rdy_w_vld, b.w_vld_w_rdy,
        b.w_first_w_last, b.w_last_b_vld, b.b_vld_b_rdy};
    if (cfg_->adaptive.enabled) {
      out[1] += cfg_->adaptive.cycles_per_ahead * ahead_beats;
      out[3] += cfg_->adaptive.cycles_per_beat * len;
    }
    return out;
  }

  /// Budgets for the four read phases (slots 4..5 unused).
  std::array<std::uint32_t, kMaxPhases> read_budgets(
      std::uint8_t len, std::uint32_t ahead_beats) const {
    const PhaseBudgets& b = cfg_->budgets;
    std::array<std::uint32_t, kMaxPhases> out{
        b.ar_vld_ar_rdy, b.ar_rdy_r_vld, b.r_vld_r_rdy, b.r_vld_r_last,
        0, 0};
    if (cfg_->adaptive.enabled) {
      out[1] += cfg_->adaptive.cycles_per_ahead * ahead_beats;
      out[3] += cfg_->adaptive.cycles_per_beat * len;
    }
    return out;
  }

  /// Tiny-Counter whole-transaction budget.
  std::uint32_t tc_total(std::uint8_t len, std::uint32_t ahead_beats) const {
    std::uint32_t total = cfg_->tc_total_budget;
    if (cfg_->adaptive.enabled) {
      total += cfg_->adaptive.cycles_per_beat * len +
               cfg_->adaptive.cycles_per_ahead * ahead_beats;
    }
    return total;
  }

 private:
  const TmuConfig* cfg_;
};

}  // namespace tmu
