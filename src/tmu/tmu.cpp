#include "tmu/tmu.hpp"

#include "sim/logger.hpp"
#include "sim/state.hpp"

namespace tmu {

Tmu::Tmu(std::string name, axi::Link& mst, axi::Link& sub, TmuConfig cfg)
    : sim::Module(std::move(name)),
      mst_(mst),
      sub_(sub),
      cfg_(cfg),
      wg_(cfg_),
      rg_(cfg_) {}

void Tmu::eval() {
  if (!cfg_.enabled) {
    sub_.req.write(mst_.req.read());
    mst_.rsp.write(sub_.rsp.read());
    irq.write(false);
    reset_req.write(false);
    return;
  }

  if (severed_) {
    // Request path severed: nothing reaches the subordinate.
    sub_.req.write(axi::AxiReq{});
    // Response path: TMU-generated aborts (slverr) towards the manager.
    axi::AxiRsp r{};
    r.aw_ready = false;
    r.ar_ready = false;
    r.w_ready = true;  // drain in-flight W beats so the manager unblocks
    if (!abort_b_.empty()) {
      r.b_valid = true;
      r.b = axi::BFlit{abort_b_.front().id, axi::Resp::kSlvErr};
    }
    if (!abort_r_.empty()) {
      r.r_valid = true;
      r.r = axi::RFlit{abort_r_.front().id, 0, axi::Resp::kSlvErr,
                       abort_r_.front().beats_left == 1};
    }
    mst_.rsp.write(r);
  } else {
    // Zero-latency pass-through with saturation gating.
    axi::AxiReq fwd = mst_.req.read();
    const bool w_ok = !fwd.aw_valid || wg_.can_admit(fwd.aw.id);
    const bool r_ok = !fwd.ar_valid || rg_.can_admit(fwd.ar.id);
    if (!w_ok) fwd.aw_valid = false;
    if (!r_ok) fwd.ar_valid = false;
    if (swallow_beats_ > 0) fwd.w_valid = false;  // eat stray beats
    sub_.req.write(fwd);

    axi::AxiRsp rsp = sub_.rsp.read();
    if (!w_ok) rsp.aw_ready = false;
    if (!r_ok) rsp.ar_ready = false;
    if (swallow_beats_ > 0) rsp.w_ready = true;
    mst_.rsp.write(rsp);
  }

  irq.write(irq_state_());
  reset_req.write(severed_ && cfg_.reset_on_fault && !ack_seen_);
}

bool Tmu::irq_state_() const {
  return cfg_.irq_enabled && irq_latched_;
}

void Tmu::log_lifecycle(LifecycleEvent::Kind k) {
  if (lifecycle_log_.size() < kLifecycleDepth) {
    lifecycle_log_.push_back(LifecycleEvent{cycle_, k});
  } else {
    ++lifecycle_dropped_;
  }
}

void Tmu::enter_severed() {
  log_lifecycle(LifecycleEvent::Kind::kSever);
  severed_ = true;
  ack_seen_ = false;
  undrained_beats_ = 0;
  w_idle_cycles_ = 0;
  abort_b_.clear();
  abort_r_.clear();

  // Abort every *accepted* outstanding transaction with SLVERR; drop
  // entries whose address handshake never completed (the manager still
  // holds valid and will be re-admitted after recovery).
  for (const int idx : wg_.ott().order()) {
    const LdEntry& e = wg_.ott().at(idx);
    if (!e.valid || !e.accepted) continue;
    abort_b_.push_back(AbortB{e.orig_id});
    const unsigned total = axi::beats(e.len);
    if (e.beats < total) undrained_beats_ += total - e.beats;
  }
  for (const int idx : rg_.ott().order()) {
    const LdEntry& e = rg_.ott().at(idx);
    if (!e.valid || !e.accepted) continue;
    const unsigned total = axi::beats(e.len);
    abort_r_.push_back(AbortR{e.orig_id, total - std::min(e.beats, total - 1)});
  }
  if (cfg_.reset_on_fault) {
    ++resets_requested_;
    log_lifecycle(LifecycleEvent::Kind::kResetReq);
  }
}

void Tmu::finish_recovery() {
  swallow_beats_ = undrained_beats_;
  wg_.clear();
  rg_.clear();
  severed_ = false;
  ack_seen_ = false;
  undrained_beats_ = 0;
  w_idle_cycles_ = 0;
  ++recoveries_;
  log_lifecycle(LifecycleEvent::Kind::kRecover);
  // Level IRQ stays asserted until software clears it (clear_irq), which
  // matches the paper's interrupt-driven recovery routine.
}

void Tmu::tick() {
  if (!cfg_.enabled) {
    ++cycle_;
    tick_evt_ = false;  // eval() is a pure wire pass-through
    return;
  }

  const axi::AxiReq q = mst_.req.read();
  const axi::AxiRsp s = mst_.rsp.read();
  // Severed/scrub phases mutate eval state every edge; in normal
  // monitoring, only port activity or outstanding transactions (whose
  // budgets ripen against the cycle counter and whose saturation gates
  // admission) can move eval() outputs.
  tick_evt_ = true;

  if (severed_) {
    // Track abort handshakes.
    if (s.b_valid && q.b_ready && !abort_b_.empty()) {
      abort_b_.pop_front();
    }
    if (s.r_valid && q.r_ready && !abort_r_.empty()) {
      if (--abort_r_.front().beats_left == 0) abort_r_.pop_front();
    }
    // Drain in-flight W beats.
    if (q.w_valid && s.w_ready) {
      if (undrained_beats_ > 0) --undrained_beats_;
      w_idle_cycles_ = 0;
    } else {
      ++w_idle_cycles_;
    }
    if (reset_ack.read()) ack_seen_ = true;
    const bool drained = undrained_beats_ == 0 ||
                         w_idle_cycles_ >= kDrainGrace;
    if (ack_seen_ && abort_b_.empty() && abort_r_.empty() && drained) {
      finish_recovery();
    }
    ++cycle_;
    return;
  }

  // Post-recovery stray-beat swallowing: a manager whose write was
  // aborted mid-burst may still emit the old burst's tail. A new AW
  // acceptance means the manager moved on; stop swallowing then.
  if (swallow_beats_ > 0) {
    if (q.aw_valid && s.aw_ready) {
      swallow_beats_ = 0;  // manager moved on; monitor this AW normally
    } else {
      if (q.w_valid && s.w_ready) --swallow_beats_;
      ++cycle_;
      return;  // guards stay quiet while the channel is being scrubbed
    }
  }

  // Normal monitoring: guards observe the settled manager-side signals.
  const bool w_admit = q.aw_valid && wg_.can_admit(q.aw.id);
  const bool r_admit = q.ar_valid && rg_.can_admit(q.ar.id);
  wg_.observe(q, s, w_admit, cycle_);
  rg_.observe(q, s, r_admit, cycle_);

  const bool had_fault = !wg_.faults().empty() || !rg_.faults().empty();
  if (had_fault) {
    auto log_fault = [this](const FaultRecord& f) {
      sim::log(sim::LogLevel::kInfo, name(), cycle_) << f.describe();
      if (fault_log_.size() < cfg_.fault_log_depth) {
        fault_log_.push_back(f);
      } else {
        ++fault_log_dropped_;
      }
    };
    for (FaultRecord& f : wg_.faults()) log_fault(f);
    for (FaultRecord& f : rg_.faults()) log_fault(f);
    wg_.faults().clear();
    rg_.faults().clear();
    irq_latched_ = true;
    log_lifecycle(LifecycleEvent::Kind::kDetect);
    enter_severed();
  }

  ++cycle_;
  tick_evt_ = severed_ || q.aw_valid || q.w_valid || q.ar_valid ||
              s.b_valid || s.r_valid || !wg_.ott().order().empty() ||
              !rg_.ott().order().empty();
}

void Tmu::reset() {
  wg_.clear();
  rg_.clear();
  severed_ = false;
  ack_seen_ = false;
  abort_b_.clear();
  abort_r_.clear();
  undrained_beats_ = 0;
  w_idle_cycles_ = 0;
  swallow_beats_ = 0;
  fault_log_.clear();
  fault_log_dropped_ = 0;
  lifecycle_log_.clear();
  lifecycle_dropped_ = 0;
  resets_requested_ = 0;
  recoveries_ = 0;
  cycle_ = 0;
  irq_latched_ = false;
  fault_read_ptr_ = 0;
  sub_.req.force(axi::AxiReq{});
  mst_.rsp.force(axi::AxiRsp{});
  irq.force(false);
  reset_req.force(false);
}

void Tmu::visit_state(sim::StateVisitor& v) {
  // Module-owned wires first (they are not part of any Soc link), then
  // both guards, then the sever/abort/recovery registers and logs.
  visit(v, irq);
  visit(v, reset_req);
  visit(v, reset_ack);
  visit(v, wg_);
  visit(v, rg_);
  visit(v, severed_);
  visit(v, ack_seen_);
  visit(v, abort_b_);
  visit(v, abort_r_);
  visit(v, undrained_beats_);
  visit(v, w_idle_cycles_);
  visit(v, swallow_beats_);
  visit(v, fault_log_);
  visit(v, fault_log_dropped_);
  visit(v, lifecycle_log_);
  visit(v, lifecycle_dropped_);
  visit(v, resets_requested_);
  visit(v, recoveries_);
  visit(v, cycle_);
  visit(v, tick_evt_);
  visit(v, irq_latched_);
  visit(v, fault_read_ptr_);
}

}  // namespace tmu
