#pragma once

#include <cstdint>

namespace tmu {

/// TMU variant: Tiny-Counter (one counter per outstanding transaction,
/// transaction-level detection) or Full-Counter (one counter per
/// transaction *phase*, phase-level detection + performance logging).
enum class Variant : std::uint8_t { kTinyCounter, kFullCounter };

inline const char* to_string(Variant v) {
  return v == Variant::kTinyCounter ? "Tc" : "Fc";
}

/// Write-transaction phases tracked by the Full-Counter (Fig. 4).
enum class WritePhase : std::uint8_t {
  kAwVldAwRdy = 0,   ///< address handshake
  kAwRdyWVld = 1,    ///< data-phase entry (queue waiting)
  kWVldWRdy = 2,     ///< first data transfer handshake
  kWFirstWLast = 3,  ///< burst data transfer
  kWLastBVld = 4,    ///< response monitoring
  kBVldBRdy = 5,     ///< response readiness
  kDone = 6,
};
inline constexpr unsigned kNumWritePhases = 6;

/// Read-transaction phases tracked by the Full-Counter (Fig. 5).
enum class ReadPhase : std::uint8_t {
  kArVldArRdy = 0,  ///< address handshake
  kArRdyRVld = 1,   ///< data-phase entry (queue waiting)
  kRVldRRdy = 2,    ///< first data transfer handshake
  kRVldRLast = 3,   ///< burst data transfer
  kDone = 4,
};
inline constexpr unsigned kNumReadPhases = 4;

inline const char* to_string(WritePhase p) {
  switch (p) {
    case WritePhase::kAwVldAwRdy: return "AWVLD_AWRDY";
    case WritePhase::kAwRdyWVld: return "AWRDY_WVLD";
    case WritePhase::kWVldWRdy: return "WVLD_WRDY";
    case WritePhase::kWFirstWLast: return "WFIRST_WLAST";
    case WritePhase::kWLastBVld: return "WLAST_BVLD";
    case WritePhase::kBVldBRdy: return "BVLD_BRDY";
    case WritePhase::kDone: return "DONE";
  }
  return "?";
}

inline const char* to_string(ReadPhase p) {
  switch (p) {
    case ReadPhase::kArVldArRdy: return "ARVLD_ARRDY";
    case ReadPhase::kArRdyRVld: return "ARRDY_RVLD";
    case ReadPhase::kRVldRRdy: return "RVLD_RRDY";
    case ReadPhase::kRVldRLast: return "RVLD_RLAST";
    case ReadPhase::kDone: return "DONE";
  }
  return "?";
}

/// Per-phase time budgets in clock cycles (Full-Counter). The data phase
/// can additionally scale with burst length, and the queue-waiting phase
/// with accumulated outstanding traffic (adaptive time budgeting, §II-F).
struct PhaseBudgets {
  std::uint32_t aw_vld_aw_rdy = 16;
  std::uint32_t aw_rdy_w_vld = 32;
  std::uint32_t w_vld_w_rdy = 16;
  std::uint32_t w_first_w_last = 32;
  std::uint32_t w_last_b_vld = 32;
  std::uint32_t b_vld_b_rdy = 16;

  std::uint32_t ar_vld_ar_rdy = 16;
  std::uint32_t ar_rdy_r_vld = 32;
  std::uint32_t r_vld_r_rdy = 16;
  std::uint32_t r_vld_r_last = 32;

  bool operator==(const PhaseBudgets&) const = default;
};

/// Adaptive time-budgeting knobs (§II-F): budgets grow with burst length
/// (data-transfer time) and with the accumulated outstanding traffic
/// ahead in the OTT (queue-waiting time), measured in data beats still
/// to be transferred by older transactions.
struct AdaptiveBudget {
  bool enabled = true;
  std::uint32_t cycles_per_beat = 2;   ///< added to data phase per beat
  std::uint32_t cycles_per_ahead = 4;  ///< added to queue wait per older
                                       ///< outstanding beat

  bool operator==(const AdaptiveBudget&) const = default;
};

/// Complete TMU configuration (the paper's software-visible registers
/// plus the elaboration-time parameters of Table I).
struct TmuConfig {
  Variant variant = Variant::kFullCounter;

  // Table I parameters.
  std::uint32_t max_uniq_ids = 4;      ///< MaxUniqIDs
  std::uint32_t txn_per_uniq_id = 4;   ///< TxnPerUniqID

  /// MaxOutstdTxns = MaxUniqIDs * TxnPerUniqID.
  std::uint32_t max_outstanding() const {
    return max_uniq_ids * txn_per_uniq_id;
  }

  // Timing.
  PhaseBudgets budgets{};
  std::uint32_t tc_total_budget = 256;  ///< Tiny-Counter whole-txn budget
  AdaptiveBudget adaptive{};

  // Prescaler / sticky bit (§II-G). Step 1 = no prescaling.
  std::uint32_t prescaler_step = 1;
  bool sticky_bit = false;

  // Control.
  bool enabled = true;
  bool irq_enabled = true;
  bool reset_on_fault = true;  ///< request external reset on fault

  /// Longest supported transaction (counter sizing; §III-A uses 256).
  std::uint32_t max_txn_cycles = 256;

  // Hardware log sizing: both logs are finite FIFOs; overflow drops the
  // newest entry and counts it (readable through the register file).
  std::uint32_t fault_log_depth = 64;
  std::uint32_t perf_log_depth = 256;

  bool operator==(const TmuConfig&) const = default;
};

}  // namespace tmu
