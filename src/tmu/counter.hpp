#pragma once

#include <cstdint>

namespace tmu {

/// Hardware prescaler: emits one pulse every `step` cycles. All TMU
/// counters increment on the pulse only, so they can be ceil(log2(B/step))
/// bits wide instead of ceil(log2(B)) (§II-G).
class Prescaler {
 public:
  explicit Prescaler(std::uint32_t step = 1) : step_(step ? step : 1) {}

  /// Advances one clock cycle; returns true on a pulse.
  bool tick() {
    if (++count_ >= step_) {
      count_ = 0;
      return true;
    }
    return false;
  }

  void reset() { count_ = 0; }
  std::uint32_t step() const { return step_; }

  template <typename V>
  void visit_fields(V& v) {
    visit(v, count_);
  }

 private:
  std::uint32_t step_;
  std::uint32_t count_ = 0;
};

/// One monitoring counter running behind a prescaler, with the optional
/// sticky bit: once a near-timeout condition (counter at limit-1) is
/// observed at a pulse, it stays latched, so a timeout can never be lost
/// if later pulses are gated or delayed — only detected late.
class PrescaledCounter {
 public:
  /// budget in clock cycles; step = prescaler step. With a prescaler the
  /// counter is phase-misaligned with the transaction, so the limit is
  /// chosen conservatively (floor(budget/step) + 1, at least 2) so that
  /// a timeout can never fire BEFORE the budget elapsed — only up to one
  /// prescaler period late, which is exactly the area/latency trade-off
  /// of Fig. 8.
  void arm(std::uint32_t budget_cycles, std::uint32_t step, bool sticky) {
    if (step <= 1) {
      limit_ = budget_cycles ? budget_cycles : 1;
    } else {
      limit_ = budget_cycles / step + 1;
      if (limit_ < 2) limit_ = 2;
    }
    value_ = 0;
    sticky_enabled_ = sticky;
    sticky_ = false;
    running_ = true;
  }

  /// Advances on a prescaler pulse. Returns true if the budget expired.
  bool pulse() {
    if (!running_) return false;
    ++value_;
    // Near-timeout (one pulse from the limit) latches the sticky bit so
    // the condition survives even if later pulses are gated or delayed
    // (it does not fire early — it guarantees the expiry is not lost).
    if (sticky_enabled_ && value_ + 1 >= limit_) sticky_ = true;
    return expired();
  }

  bool expired() const { return running_ && value_ >= limit_; }

  void stop() { running_ = false; }
  bool running() const { return running_; }
  std::uint32_t value() const { return value_; }
  std::uint32_t limit() const { return limit_; }
  bool sticky() const { return sticky_; }

  template <typename V>
  void visit_fields(V& v) {
    visit(v, value_);
    visit(v, limit_);
    visit(v, running_);
    visit(v, sticky_enabled_);
    visit(v, sticky_);
  }

 private:
  std::uint32_t value_ = 0;
  std::uint32_t limit_ = 0;
  bool running_ = false;
  bool sticky_enabled_ = false;
  bool sticky_ = false;
};

}  // namespace tmu
