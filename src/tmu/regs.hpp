#pragma once

#include <cstdint>

namespace tmu::regs {

/// Software-visible register map of the TMU (§II-A). All registers are
/// 32-bit; byte offsets. Accessed through Tmu::read_reg / Tmu::write_reg
/// (in an SoC, through the regbus demux).
enum : std::uint32_t {
  kCtrl = 0x00,        ///< [0] enable [1] irq_en [2] reset_on_fault
                       ///< [3] adaptive_en; RO [8] variant (0=Tc,1=Fc)
  kStatus = 0x04,      ///< RO [0] severed [1] irq; [31:16] recoveries
  kPrescaler = 0x08,   ///< prescaler step; bit 31 = sticky enable
  kTcBudget = 0x0C,    ///< Tiny-Counter whole-transaction budget
  kBudgetAw = 0x10,    ///< AWVLD_AWRDY
  kBudgetWEntry = 0x14,
  kBudgetWHs = 0x18,
  kBudgetWData = 0x1C,
  kBudgetBWait = 0x20,
  kBudgetBHs = 0x24,
  kBudgetAr = 0x28,
  kBudgetREntry = 0x2C,
  kBudgetRHs = 0x30,
  kBudgetRData = 0x34,
  kAdaptPerBeat = 0x38,
  kAdaptPerAhead = 0x3C,
  kFaultCount = 0x40,  ///< RO total logged faults
  kFaultInfo = 0x44,   ///< RO pop: packed fault descriptor (see pack_fault)
  kOccupancy = 0x48,   ///< RO write occ [7:0], read occ [15:8],
                       ///< write ids [23:16], read ids [31:24]
  kIrqClear = 0x4C,    ///< W1C: any write clears the interrupt
  kTxnCount = 0x50,    ///< RO completed transactions (writes + reads)
  kCapacity = 0x54,    ///< RO MaxUniqIDs [7:0], TxnPerUniqID [15:8],
                       ///< MaxOutstdTxns [31:16]
  // Latency statistics (§II-A "latency statistics"; cycles).
  kWrLatMin = 0x60,    ///< RO min write latency observed
  kWrLatMax = 0x64,    ///< RO max write latency observed
  kWrLatAvg = 0x68,    ///< RO mean write latency (rounded)
  kRdLatMin = 0x6C,
  kRdLatMax = 0x70,
  kRdLatAvg = 0x74,
  kWrBeats = 0x78,     ///< RO write data beats transferred
  kRdBeats = 0x7C,     ///< RO read data beats transferred
  kLogDropped = 0x58,  ///< RO fault-log drops [15:0], perf-log drops [31:16]
};

/// Packed FAULT_INFO encoding:
/// [3:0] kind  [7:4] phase  [8] is_write  [9] phase_valid
/// [19:10] id (low bits)  [31:20] elapsed (saturated).
inline std::uint32_t pack_fault(std::uint8_t kind, std::uint8_t phase,
                                bool is_write, bool phase_valid,
                                std::uint32_t id, std::uint32_t elapsed) {
  const std::uint32_t el = elapsed > 0xFFF ? 0xFFFu : elapsed;
  return (kind & 0xFu) | (std::uint32_t{phase} & 0xFu) << 4 |
         std::uint32_t{is_write} << 8 | std::uint32_t{phase_valid} << 9 |
         (id & 0x3FFu) << 10 | el << 20;
}

}  // namespace tmu::regs
