#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "axi/types.hpp"

namespace tmu {

/// AXI ID Remapper (§II-A): compacts the wide, sparse AXI4 ID space into
/// tIDs in [0, max_uniq_ids). A slot is allocated on the first
/// transaction of an ID and freed when its outstanding count drops to
/// zero. When all slots are taken by *other* IDs, new IDs must stall
/// (the TMU gates the AW/AR ready path).
class IdRemapper {
 public:
  explicit IdRemapper(std::uint32_t max_uniq_ids)
      : slots_(max_uniq_ids) {}

  /// tID for an already-mapped ID, if any.
  std::optional<std::uint8_t> lookup(axi::Id id) const {
    auto it = map_.find(id);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  /// True if a transaction with this ID could be admitted now
  /// (already mapped, or a free slot exists).
  bool can_admit(axi::Id id) const {
    return lookup(id).has_value() || free_slot().has_value();
  }

  /// Admits one transaction of `id`; allocates a slot if needed.
  /// Returns the tID, or nullopt if saturated (caller must stall).
  std::optional<std::uint8_t> admit(axi::Id id) {
    if (auto t = lookup(id)) {
      ++slots_[*t].outstanding;
      return t;
    }
    if (auto f = free_slot()) {
      slots_[*f].id = id;
      slots_[*f].outstanding = 1;
      map_[id] = *f;
      return f;
    }
    return std::nullopt;
  }

  /// Releases one transaction of tID; frees the slot at zero.
  void release(std::uint8_t tid) {
    Slot& s = slots_[tid];
    if (s.outstanding > 0 && --s.outstanding == 0) {
      map_.erase(s.id);
    }
  }

  /// The original AXI ID currently mapped to tid (valid while busy).
  axi::Id original_id(std::uint8_t tid) const { return slots_[tid].id; }

  std::uint32_t active_ids() const {
    return static_cast<std::uint32_t>(map_.size());
  }
  std::uint32_t outstanding(std::uint8_t tid) const {
    return slots_[tid].outstanding;
  }
  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  void clear() {
    for (Slot& s : slots_) s = {};
    map_.clear();
  }

  /// State serde: slots only; the ID->tID index is rebuilt on load so
  /// the unordered map's iteration order never reaches the byte stream.
  template <typename V>
  void visit_fields(V& v) {
    std::uint64_t n = slots_.size();
    v.count(n);
    if (!v.saving() && n != slots_.size()) {
      v.fail("ID remapper capacity mismatch: snapshot has " +
             std::to_string(n) + " slots, remapper has " +
             std::to_string(slots_.size()));
    }
    for (Slot& s : slots_) {
      visit(v, s.id);
      visit(v, s.outstanding);
    }
    if (!v.saving()) {
      map_.clear();
      for (std::uint8_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].outstanding > 0) map_[slots_[i].id] = i;
      }
    }
  }

 private:
  struct Slot {
    axi::Id id = 0;
    std::uint32_t outstanding = 0;
  };

  std::optional<std::uint8_t> free_slot() const {
    for (std::uint8_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].outstanding == 0) return i;
    }
    return std::nullopt;
  }

  std::vector<Slot> slots_;
  std::unordered_map<axi::Id, std::uint8_t> map_;
};

}  // namespace tmu
