#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "axi/types.hpp"
#include "tmu/config.hpp"

namespace tmu {

/// The four checks of the guard FSMs (Figs. 1 and 2).
enum class FaultKind : std::uint8_t {
  kTimeout = 0,      ///< a phase (Fc) or transaction (Tc) budget expired
  kHandshake = 1,    ///< handshake rule broken (valid dropped, payload
                     ///< changed, WLAST/RLAST misplaced, W without AW)
  kIdMismatch = 2,   ///< response ID maps to a txn not awaiting it
  kUnrequested = 3,  ///< response with no outstanding transaction at all
};

inline const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kTimeout: return "TIMEOUT";
    case FaultKind::kHandshake: return "HANDSHAKE";
    case FaultKind::kIdMismatch: return "ID_MISMATCH";
    case FaultKind::kUnrequested: return "UNREQUESTED";
  }
  return "?";
}

/// One error-log entry. The Full-Counter fills every field (phase-level
/// pinpointing); the Tiny-Counter reports transaction-level information
/// only (phase is the whole transaction).
struct FaultRecord {
  std::uint64_t cycle = 0;
  bool is_write = true;
  FaultKind kind = FaultKind::kTimeout;
  bool phase_valid = false;     ///< Fc: the failing phase is known
  std::uint8_t phase = 0;       ///< WritePhase / ReadPhase value
  axi::Id id = 0;
  std::uint8_t tid = 0;
  axi::Addr addr = 0;
  std::uint32_t elapsed = 0;    ///< cycles spent when flagged
  std::uint32_t budget = 0;     ///< allotted cycles

  template <typename V>
  void visit_fields(V& v) {
    visit(v, cycle);
    visit(v, is_write);
    visit(v, kind);
    visit(v, phase_valid);
    visit(v, phase);
    visit(v, id);
    visit(v, tid);
    visit(v, addr);
    visit(v, elapsed);
    visit(v, budget);
  }

  std::string describe() const {
    std::ostringstream os;
    os << "@" << cycle << " " << (is_write ? "WR" : "RD") << " "
       << to_string(kind);
    if (phase_valid) {
      os << " phase="
         << (is_write ? to_string(static_cast<WritePhase>(phase))
                      : to_string(static_cast<ReadPhase>(phase)));
    }
    os << " id=" << id << " tid=" << unsigned{tid} << " addr=0x" << std::hex
       << addr << std::dec << " elapsed=" << elapsed << "/" << budget;
    return os.str();
  }
};

}  // namespace tmu
