#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axi/types.hpp"
#include "sim/stats.hpp"
#include "tmu/budget.hpp"
#include "tmu/config.hpp"
#include "tmu/counter.hpp"
#include "tmu/fault.hpp"
#include "tmu/id_remap.hpp"
#include "tmu/ott.hpp"

namespace tmu {

/// Per-guard bookkeeping counters and (Fc) performance statistics.
struct GuardStats {
  std::uint64_t enqueued = 0;
  std::uint64_t completed = 0;
  std::uint64_t beats = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t protocol_faults = 0;
  sim::RunningStats total_latency;                 ///< enqueue -> complete
  std::array<sim::RunningStats, kMaxPhases> phase; ///< Fc per-phase cycles

  template <typename V>
  void visit_fields(V& v) {
    visit(v, enqueued);
    visit(v, completed);
    visit(v, beats);
    visit(v, timeouts);
    visit(v, protocol_faults);
    visit(v, total_latency);
    visit(v, phase);
  }
};

/// One completed transaction's phase-level timing (Fc performance log).
struct TxnPerfRecord {
  bool is_write = true;
  axi::Id id = 0;
  axi::Addr addr = 0;
  std::uint8_t len = 0;
  std::array<std::uint32_t, kMaxPhases> phase_cycles{};
  std::uint32_t total_cycles = 0;

  template <typename V>
  void visit_fields(V& v) {
    visit(v, is_write);
    visit(v, id);
    visit(v, addr);
    visit(v, len);
    visit(v, phase_cycles);
    visit(v, total_cycles);
  }
};

/// Write Guard (§II-A, Figs. 1-2): tracks every outstanding write through
/// the six phases of Fig. 4 (Fc) or with a single whole-transaction
/// counter (Tc); performs timeout, handshake, ID-match and
/// unrequested-response checks.
class WriteGuard {
 public:
  WriteGuard(const TmuConfig& cfg)
      : cfg_(&cfg),
        remap_(cfg.max_uniq_ids),
        ott_(cfg.max_uniq_ids, cfg.txn_per_uniq_id),
        budget_(cfg),
        prescaler_(cfg.prescaler_step) {}

  /// True if a new write with this AXI ID could be admitted now.
  bool can_admit(axi::Id id) const {
    if (ott_.full()) return false;
    if (auto t = remap_.lookup(id)) return !ott_.id_full(*t);
    return remap_.can_admit(id);
  }

  /// Observes one settled cycle of the manager-side link. `admitted`
  /// reflects the TMU's gating decision for a new AW this cycle.
  void observe(const axi::AxiReq& q, const axi::AxiRsp& s, bool admitted,
               std::uint64_t cycle);

  /// Faults flagged so far (drained by the TMU top level).
  std::vector<FaultRecord>& faults() { return faults_; }

  /// Clears all tracking state (after a recovery reset).
  void clear();

  const GuardStats& stats() const { return stats_; }
  const std::vector<TxnPerfRecord>& perf_log() const { return perf_log_; }
  std::uint64_t perf_log_dropped() const { return perf_dropped_; }
  Ott& ott() { return ott_; }
  const Ott& ott() const { return ott_; }
  IdRemapper& remapper() { return remap_; }
  const IdRemapper& remapper() const { return remap_; }

  template <typename V>
  void visit_fields(V& v) {
    visit(v, remap_);
    visit(v, ott_);
    visit(v, prescaler_);
    visit(v, pending_aw_);
    visit(v, pending_flit_);
    visit(v, prev_aw_valid_);
    visit(v, w_orphan_flagged_);
    visit(v, b_orphan_flagged_);
    visit(v, faults_);
    visit(v, stats_);
    visit(v, perf_log_);
    visit(v, perf_dropped_);
  }

 private:
  void enqueue_pending(const axi::AwFlit& aw, std::uint64_t cycle);
  void advance_phase(LdEntry& e, WritePhase next);
  void complete(int idx, std::uint64_t cycle);
  void flag(FaultKind kind, const LdEntry* e, WritePhase phase,
            std::uint64_t cycle, axi::Id id_hint = 0);
  int active_w_entry() const;  ///< EI-front txn currently owning W channel
  void pulse_counters(std::uint64_t cycle);

  const TmuConfig* cfg_;
  IdRemapper remap_;
  Ott ott_;
  BudgetPolicy budget_;
  Prescaler prescaler_;

  int pending_aw_ = -1;       ///< LD index of the AW being presented
  axi::AwFlit pending_flit_{};
  bool prev_aw_valid_ = false;
  bool w_orphan_flagged_ = false;  ///< W-without-AW flagged (edge detect)
  bool b_orphan_flagged_ = false;  ///< unrequested B flagged (edge detect)

  std::vector<FaultRecord> faults_;
  GuardStats stats_;
  std::vector<TxnPerfRecord> perf_log_;
  std::uint64_t perf_dropped_ = 0;
};

/// Read Guard: the four phases of Fig. 5, same checks as the Write Guard.
class ReadGuard {
 public:
  ReadGuard(const TmuConfig& cfg)
      : cfg_(&cfg),
        remap_(cfg.max_uniq_ids),
        ott_(cfg.max_uniq_ids, cfg.txn_per_uniq_id),
        budget_(cfg),
        prescaler_(cfg.prescaler_step) {}

  bool can_admit(axi::Id id) const {
    if (ott_.full()) return false;
    if (auto t = remap_.lookup(id)) return !ott_.id_full(*t);
    return remap_.can_admit(id);
  }

  void observe(const axi::AxiReq& q, const axi::AxiRsp& s, bool admitted,
               std::uint64_t cycle);

  std::vector<FaultRecord>& faults() { return faults_; }
  void clear();

  const GuardStats& stats() const { return stats_; }
  const std::vector<TxnPerfRecord>& perf_log() const { return perf_log_; }
  std::uint64_t perf_log_dropped() const { return perf_dropped_; }
  Ott& ott() { return ott_; }
  const Ott& ott() const { return ott_; }
  IdRemapper& remapper() { return remap_; }
  const IdRemapper& remapper() const { return remap_; }

  template <typename V>
  void visit_fields(V& v) {
    visit(v, remap_);
    visit(v, ott_);
    visit(v, prescaler_);
    visit(v, pending_ar_);
    visit(v, pending_flit_);
    visit(v, prev_ar_valid_);
    visit(v, r_orphan_flagged_);
    visit(v, faults_);
    visit(v, stats_);
    visit(v, perf_log_);
    visit(v, perf_dropped_);
  }

 private:
  void enqueue_pending(const axi::ArFlit& ar, std::uint64_t cycle);
  void advance_phase(LdEntry& e, ReadPhase next);
  void complete(int idx, std::uint64_t cycle);
  void flag(FaultKind kind, const LdEntry* e, ReadPhase phase,
            std::uint64_t cycle, axi::Id id_hint = 0);
  void pulse_counters(std::uint64_t cycle);

  const TmuConfig* cfg_;
  IdRemapper remap_;
  Ott ott_;
  BudgetPolicy budget_;
  Prescaler prescaler_;

  int pending_ar_ = -1;
  axi::ArFlit pending_flit_{};
  bool prev_ar_valid_ = false;
  bool r_orphan_flagged_ = false;  ///< unrequested R flagged (edge detect)

  std::vector<FaultRecord> faults_;
  GuardStats stats_;
  std::vector<TxnPerfRecord> perf_log_;
  std::uint64_t perf_dropped_ = 0;
};

}  // namespace tmu
