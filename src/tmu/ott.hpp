#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "axi/types.hpp"
#include "tmu/counter.hpp"

namespace tmu {

/// Maximum phases of any variant (write Full-Counter has six).
inline constexpr unsigned kMaxPhases = 6;

/// One Linked Data (LD) table entry: a single outstanding transaction
/// (§II-C). `next` links entries of the same tID into the per-ID FIFO
/// whose head/tail pointers live in the HT table.
struct LdEntry {
  bool valid = false;
  std::uint8_t tid = 0;
  axi::Id orig_id = 0;
  axi::Addr addr = 0;
  std::uint8_t len = 0;
  std::uint8_t phase = 0;   ///< WritePhase / ReadPhase value
  unsigned beats = 0;       ///< data beats transferred so far
  bool accepted = false;    ///< address handshake completed
  std::uint64_t enq_cycle = 0;

  PrescaledCounter counter;  ///< watchdog for the active phase (Fc) or
                             ///< the whole transaction (Tc)
  std::array<std::uint32_t, kMaxPhases> phase_cycles{};  ///< measured
  std::array<std::uint32_t, kMaxPhases> phase_budget{};  ///< allotted

  int next = -1;  ///< next LD index in this tID's FIFO, -1 = none

  template <typename V>
  void visit_fields(V& v) {
    visit(v, valid);
    visit(v, tid);
    visit(v, orig_id);
    visit(v, addr);
    visit(v, len);
    visit(v, phase);
    visit(v, beats);
    visit(v, accepted);
    visit(v, enq_cycle);
    visit(v, counter);
    visit(v, phase_cycles);
    visit(v, phase_budget);
    visit(v, next);
  }
};

/// Outstanding Transaction Table (Fig. 3): the HT table keeps a FIFO per
/// tID (in-order completion of same-ID transactions), the LD table holds
/// the transaction details, and the EI table records AW/AR acceptance
/// order so W beats associate with the correct write transaction.
class Ott {
 public:
  Ott(std::uint32_t max_uniq_ids, std::uint32_t txn_per_uniq_id)
      : txn_per_id_(txn_per_uniq_id),
        ld_(max_uniq_ids * txn_per_uniq_id),
        ht_(max_uniq_ids) {
    clear();
  }

  bool full() const { return free_.empty(); }
  bool id_full(std::uint8_t tid) const {
    return ht_[tid].count >= txn_per_id_;
  }
  std::uint32_t occupancy() const {
    return static_cast<std::uint32_t>(ld_.size() - free_.size());
  }
  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(ld_.size());
  }

  /// Allocates an LD entry, appends it to tid's FIFO and the EI order.
  /// Returns the LD index, or -1 when saturated.
  int enqueue(std::uint8_t tid, axi::Id orig_id, axi::Addr addr,
              std::uint8_t len, std::uint64_t cycle) {
    if (free_.empty() || id_full(tid)) return -1;
    const int idx = free_.front();
    free_.pop_front();
    LdEntry& e = ld_[idx];
    e = LdEntry{};
    e.valid = true;
    e.tid = tid;
    e.orig_id = orig_id;
    e.addr = addr;
    e.len = len;
    e.enq_cycle = cycle;
    HtEntry& h = ht_[tid];
    if (h.head < 0) {
      h.head = h.tail = idx;
    } else {
      ld_[h.tail].next = idx;
      h.tail = idx;
    }
    ++h.count;
    ei_.push_back(idx);
    return idx;
  }

  /// Head (oldest outstanding) of a tID's FIFO; -1 if empty.
  int head_of(std::uint8_t tid) const { return ht_[tid].head; }

  /// Removes the head of tid's FIFO (same-ID in-order completion).
  void dequeue(std::uint8_t tid) {
    HtEntry& h = ht_[tid];
    if (h.head < 0) return;
    const int idx = h.head;
    h.head = ld_[idx].next;
    if (h.head < 0) h.tail = -1;
    --h.count;
    ld_[idx].valid = false;
    ld_[idx].next = -1;
    // Remove from EI order (normally the front for writes).
    for (auto it = ei_.begin(); it != ei_.end(); ++it) {
      if (*it == idx) {
        ei_.erase(it);
        break;
      }
    }
    free_.push_front(idx);  // LIFO reuse, like a hardware free stack
  }

  LdEntry& at(int idx) { return ld_[idx]; }
  const LdEntry& at(int idx) const { return ld_[idx]; }

  /// Enqueue-order index list (EI table).
  const std::deque<int>& order() const { return ei_; }

  /// Number of valid transactions enqueued strictly before `idx`
  /// (the "accumulated outstanding traffic" for adaptive budgets).
  std::uint32_t ahead_of(int idx) const {
    std::uint32_t n = 0;
    for (int i : ei_) {
      if (i == idx) break;
      ++n;
    }
    return n;
  }

  void clear() {
    for (auto& e : ld_) e = LdEntry{};
    for (auto& h : ht_) h = HtEntry{};
    ei_.clear();
    free_.clear();
    for (int i = 0; i < static_cast<int>(ld_.size()); ++i) free_.push_back(i);
  }

  /// State serde: every table including the free stack (free-list order
  /// determines future LD index assignment, so it is behavior).
  template <typename V>
  void visit_fields(V& v) {
    std::uint64_t n = ld_.size();
    v.count(n);
    if (!v.saving() && n != ld_.size()) {
      v.fail("OTT capacity mismatch: snapshot has " + std::to_string(n) +
             " LD entries, table has " + std::to_string(ld_.size()));
    }
    for (auto& e : ld_) visit(v, e);
    for (auto& h : ht_) visit(v, h);
    visit(v, ei_);
    visit(v, free_);
  }

 private:
  struct HtEntry {
    int head = -1;
    int tail = -1;
    std::uint32_t count = 0;
    template <typename V>
    void visit_fields(V& v) {
      visit(v, head);
      visit(v, tail);
      visit(v, count);
    }
  };

  std::uint32_t txn_per_id_;
  std::vector<LdEntry> ld_;
  std::vector<HtEntry> ht_;
  std::deque<int> ei_;
  std::deque<int> free_;
};

}  // namespace tmu
