#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "axi/bridge.hpp"
#include "axi/crossbar.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "sim/sched/sched.hpp"
#include "soc/ethernet.hpp"
#include "soc/llc.hpp"
#include "tmu/config.hpp"

namespace soc {

/// JSON schema tag written by SocDesc::to_json. from_json accepts this
/// and the v1 tag below (v1 documents predate nested clusters and bank
/// timing; their missing keys take the field defaults, i.e. flat + off).
inline constexpr const char* kSocDescSchema = "tmu-soc-desc-v2";
inline constexpr const char* kSocDescSchemaV1 = "tmu-soc-desc-v1";

/// What kind of AXI manager a ManagerDesc elaborates to.
enum class ManagerKind : std::uint8_t {
  kTrafficGen,   ///< axi::TrafficGenerator (queued or random traffic)
  kDmaEngine,    ///< soc::IdmaEngine (descriptor-based mover)
  kTraceReplay,  ///< trace::TraceTrafficGen (replays a recorded stream)
};

/// What kind of endpoint a SubordinateDesc elaborates to.
enum class SubordinateKind : std::uint8_t {
  kMemory,    ///< axi::MemorySubordinate
  kEthernet,  ///< soc::EthernetPeripheral
  kCluster,   ///< axi::Bridge into a nested interconnect (ClusterDesc)
};

inline const char* to_string(ManagerKind k) {
  switch (k) {
    case ManagerKind::kTrafficGen: return "traffic_gen";
    case ManagerKind::kDmaEngine: return "dma_engine";
    case ManagerKind::kTraceReplay: return "trace_replay";
  }
  return "traffic_gen";
}
inline const char* to_string(SubordinateKind k) {
  switch (k) {
    case SubordinateKind::kMemory: return "memory";
    case SubordinateKind::kEthernet: return "ethernet";
    case SubordinateKind::kCluster: return "cluster";
  }
  return "memory";
}

/// One AXI manager port of the SoC. Managers keep their declaration
/// order: it is the crossbar port order (round-robin arbitration rank)
/// and the upper-ID-bits encoding, so it is part of the topology.
struct ManagerDesc {
  std::string name;
  ManagerKind kind = ManagerKind::kTrafficGen;

  // kTrafficGen: RNG seed and an optional initial random-traffic mode,
  // applied right after the post-build reset (testbench code can always
  // reconfigure it later through Soc::get).
  std::uint64_t seed = 1;
  axi::RandomTrafficConfig traffic{};

  // kDmaEngine parameters (see soc::IdmaEngine).
  std::uint8_t dma_max_burst = 16;
  axi::Id dma_id = 0xD;

  // kTraceReplay: optional tmu-axi-trace-v1 file the builder loads into
  // the replayer after the post-build reset. Empty = testbench code
  // installs the stream itself via TraceTrafficGen::set_stream.
  std::string trace_path;

  bool operator==(const ManagerDesc&) const = default;
};

struct ClusterDesc;

/// One subordinate endpoint and its address window. Declaration order is
/// the crossbar subordinate-port order. The optional LLC sits between
/// the crossbar (or the guard chain, if the endpoint is guarded) and the
/// endpoint itself.
///
/// A kCluster subordinate is not a leaf: its endpoint is an axi::Bridge
/// named after this desc, leading into the nested interconnect described
/// by cluster.front() (the vector holds exactly one element for kCluster
/// and none otherwise — a vector only because the type is recursive).
/// A guard on a kCluster subordinate guards the bridge itself.
struct SubordinateDesc {
  std::string name;
  SubordinateKind kind = SubordinateKind::kMemory;

  /// Address window [base, base + size) decoded to this endpoint.
  axi::Addr base = 0;
  axi::Addr size = 0;

  axi::MemoryConfig mem{};  ///< kMemory parameters
  EthernetConfig eth{};     ///< kEthernet parameters

  bool llc = false;  ///< insert a LastLevelCache in front of the endpoint
  LlcConfig llc_cfg{};
  std::string llc_name;  ///< empty = "<name>.llc"

  std::vector<ClusterDesc> cluster;  ///< kCluster payload (exactly one)

  bool operator==(const SubordinateDesc&) const = default;
};

/// A TMU-guarded chain in front of one subordinate:
///
///   upstream --> [mgr_injector] --> TMU --> [sub_injector] --> endpoint
///                                    |
///                                    +--> irq --> PLIC (RecoveryDesc)
///                                    +--> reset_req/ack --> [reset_unit]
///
/// Injector and reset-unit names are optional; an empty name elides the
/// block. The reset unit invokes the guarded endpoint's hw_reset().
struct GuardDesc {
  std::string name;         ///< TMU module name
  std::string subordinate;  ///< guarded SubordinateDesc::name
  tmu::TmuConfig cfg{};
  std::string mgr_injector;  ///< fault injector upstream of the TMU
  std::string sub_injector;  ///< fault injector downstream of the TMU
  std::string reset_unit;    ///< external reset unit
  std::uint32_t reset_duration = 4;

  bool operator==(const GuardDesc&) const = default;
};

/// A nested interconnect behind an axi::Bridge: the bridge's manager
/// port is the cluster crossbar's single manager-from-above view, the
/// subordinates (with their own sub-windows, guards, LLCs — or further
/// clusters) hang off it. Sub-windows are absolute addresses and must
/// tile inside the owning subordinate's [base, base + size) window;
/// requests landing in a hole terminate with DECERR at the cluster
/// crossbar, never stalling the parent level. The crossbar impl and
/// sched policy are inherited from the root SocDesc.
struct ClusterDesc {
  std::string xbar_name;  ///< empty = "<subordinate>.xbar"

  /// ID-prefix shift of the cluster crossbar. Without bridge ID-remap,
  /// IDs arriving from above still carry every outer level's manager
  /// prefix, so this must be at least the parent level's outgoing ID
  /// width (validated); with remap, ceil(log2(bridge.max_ids)) suffices.
  unsigned id_shift = 8;

  axi::BridgeConfig bridge{};
  std::vector<SubordinateDesc> subordinates;
  std::vector<GuardDesc> guards;  ///< guards on this level's subordinates

  bool operator==(const ClusterDesc&) const = default;
};

/// One declarative observability probe: an obs::LatencyProbe attached to
/// a named link anywhere in the tree, publishing "<name>.*" metrics into
/// the Soc's MetricsRegistry. `link` uses the builder's link-naming
/// scheme — "<manager>.out" (a manager's port into the crossbar),
/// "<block>.in" (the link feeding a named block: an injector, TMU, LLC,
/// endpoint, or cluster bridge) or "<cluster>.down" (behind a bridge);
/// validated against the topology. Part of the canonical JSON
/// (hash-covered): two descs differing only in probes are different
/// topologies.
struct ProbeDesc {
  std::string name;  ///< probe module name = metrics prefix
  std::string link;  ///< builder link name to observe

  bool operator==(const ProbeDesc&) const = default;
};

/// One declarative AXI capture point: a trace::Recorder attached to a
/// named link, filling a tmu-axi-trace-v1 stream (read back after the
/// run through Soc::get<trace::Recorder>). `link` follows the same
/// naming scheme as ProbeDesc::link and is validated the same way.
/// Like probes, traces are hash-covered: a recorded trace carries the
/// hash of the *recording* topology, traces section included.
struct TraceDesc {
  std::string name;  ///< recorder module name = metrics prefix
  std::string link;  ///< builder link name to capture

  bool operator==(const TraceDesc&) const = default;
};

/// The software side of the recovery loop: a PLIC-lite collecting every
/// guard's irq (in guard declaration order) and a CPU recovery stub
/// servicing them.
struct RecoveryDesc {
  bool enabled = false;
  std::string plic = "plic";
  std::string cpu = "cpu";
  std::uint32_t handler_latency = 20;

  bool operator==(const RecoveryDesc&) const = default;
};

/// Declarative netlist description: the single source of truth a
/// SocBuilder elaborates into modules, links and a sim::Simulator.
/// Topology is data — a SocDesc can be compared, hashed, serialized to
/// JSON and shipped to a remote campaign worker, which rebuilds the
/// exact same netlist with SocBuilder::build.
struct SocDesc {
  std::string name = "soc";

  /// With a crossbar (the default), every manager reaches every
  /// subordinate through the address map. Without one, the netlist is a
  /// point-to-point chain: exactly one manager wired straight into the
  /// (single) subordinate's guard chain — the paper's Fig. 8/9 IP-level
  /// testbench shape — and address windows are ignored.
  bool crossbar = true;
  std::string xbar_name = "xbar";
  unsigned id_shift = 8;
  axi::XbarImpl xbar_impl = axi::XbarImpl::kSharded;

  sim::sched::SchedPolicy policy = sim::sched::SchedPolicy::kEventDriven;

  std::vector<ManagerDesc> managers;
  std::vector<SubordinateDesc> subordinates;
  std::vector<GuardDesc> guards;
  std::vector<ProbeDesc> probes;  ///< per-link observability probes
  std::vector<TraceDesc> traces;  ///< per-link AXI capture points
  RecoveryDesc recovery{};

  bool operator==(const SocDesc&) const = default;

  /// Canonical JSON (schema tmu-soc-desc-v2): fixed field order, every
  /// field emitted — including nested clusters — so equal descs
  /// serialize identically.
  std::string to_json() const;

  /// Parses a to_json() document (unknown keys rejected, missing keys
  /// take the field defaults). Accepts schema v2 and legacy v1
  /// documents (re-emitting upgrades them to v2). Throws
  /// std::invalid_argument with the offending key/position on malformed
  /// input or a schema mismatch.
  static SocDesc from_json(const std::string& json);

  /// Stable topology fingerprint: FNV-1a 64 over the canonical JSON.
  /// Equal descs hash equal across processes and machines, which is what
  /// campaign reports record per scenario. Covers the whole tree —
  /// any nested cluster/bridge/bank field change changes the hash.
  std::uint64_t hash() const;
};

/// Visits every guard in the tree in canonical elaboration order: a
/// level's guards in declaration order, then each subordinate's cluster
/// depth-first (subordinate declaration order), root level first. The
/// root PLIC collects irq sources in exactly this order. For a flat
/// desc this is simply the root guard list.
void visit_guards(const SocDesc& d,
                  const std::function<void(const GuardDesc&)>& f);
void visit_guards(SocDesc& d, const std::function<void(GuardDesc&)>& f);

/// The first guard in visit_guards order, or nullptr (what a fault
/// trial monitors by default).
GuardDesc* first_guard(SocDesc& d);

}  // namespace soc
