#include "soc/idma.hpp"

#include <algorithm>

#include "sim/state.hpp"

namespace soc {

void IdmaEngine::visit_state(sim::StateVisitor& v) {
  visit(v, queue_);
  visit(v, state_);
  visit(v, cur_);
  visit(v, done_beats_);
  visit(v, chunk_beats_);
  visit(v, chunk_got_);
  visit(v, chunk_sent_);
  visit(v, buf_);
  visit(v, descriptors_done_);
  visit(v, beats_moved_);
  visit(v, error_responses_);
  visit(v, tick_evt_);
}

void IdmaEngine::start_chunk() {
  chunk_beats_ = std::min<std::uint32_t>(max_burst_, cur_.beats - done_beats_);
  chunk_got_ = 0;
  chunk_sent_ = 0;
  buf_.clear();
  state_ = State::kArIssue;
}

void IdmaEngine::eval() {
  axi::AxiReq q{};
  switch (state_) {
    case State::kArIssue:
      q.ar_valid = true;
      q.ar = axi::ArFlit{id_, cur_.src + done_beats_ * 8,
                         static_cast<std::uint8_t>(chunk_beats_ - 1), 3,
                         axi::Burst::kIncr};
      break;
    case State::kRData:
      q.r_ready = true;
      break;
    case State::kAwIssue:
      q.aw_valid = true;
      q.aw = axi::AwFlit{id_, cur_.dst + done_beats_ * 8,
                         static_cast<std::uint8_t>(chunk_beats_ - 1), 3,
                         axi::Burst::kIncr};
      break;
    case State::kWData:
      if (!buf_.empty()) {
        q.w_valid = true;
        q.w = axi::WFlit{buf_.front(), 0xFF,
                         chunk_sent_ + 1 == chunk_beats_};
      }
      break;
    case State::kBWait:
      q.b_ready = true;
      break;
    case State::kIdle:
      break;
  }
  link_.req.write(q);
}

void IdmaEngine::tick() {
  const axi::AxiReq q = link_.req.read();
  const axi::AxiRsp s = link_.rsp.read();
  const State s0 = state_;

  switch (state_) {
    case State::kIdle:
      if (!queue_.empty()) {
        cur_ = queue_.front();
        queue_.pop_front();
        done_beats_ = 0;
        start_chunk();
      }
      break;
    case State::kArIssue:
      if (axi::ar_fire(q, s)) state_ = State::kRData;
      break;
    case State::kRData:
      if (axi::r_fire(q, s)) {
        buf_.push_back(s.r.data);
        if (s.r.resp != axi::Resp::kOkay) ++error_responses_;
        if (++chunk_got_ == chunk_beats_ || s.r.last) {
          state_ = State::kAwIssue;
        }
      }
      break;
    case State::kAwIssue:
      if (axi::aw_fire(q, s)) state_ = State::kWData;
      break;
    case State::kWData:
      if (axi::w_fire(q, s)) {
        buf_.pop_front();
        ++beats_moved_;
        if (++chunk_sent_ == chunk_beats_) state_ = State::kBWait;
      }
      break;
    case State::kBWait:
      if (axi::b_fire(q, s)) {
        if (s.b.resp != axi::Resp::kOkay) ++error_responses_;
        done_beats_ += chunk_beats_;
        if (done_beats_ >= cur_.beats) {
          ++descriptors_done_;
          state_ = State::kIdle;
        } else {
          start_chunk();
        }
      }
      break;
  }
  // Edge activity: anything but an idle->idle edge with an empty
  // descriptor queue can move the engine's request outputs.
  tick_evt_ = s0 != State::kIdle || state_ != State::kIdle ||
              !queue_.empty();
}

void IdmaEngine::reset() {
  queue_.clear();
  state_ = State::kIdle;
  cur_ = {};
  done_beats_ = chunk_beats_ = chunk_got_ = chunk_sent_ = 0;
  buf_.clear();
  descriptors_done_ = 0;
  beats_moved_ = 0;
  error_responses_ = 0;
  link_.req.force(axi::AxiReq{});
}

}  // namespace soc
