// SocDesc validation and elaboration.
//
// Canonical registration order (it is part of the topology contract:
// function-coupled blocks — reset units invoking endpoint hw_reset(),
// the CPU stub claiming from the PLIC — depend on their relative tick
// order, and the fault-trial netlist is pinned cycle-exact against the
// legacy hand-wired testbench):
//   1. managers, in declaration order
//   2. the crossbar (when enabled)
//   3. per subordinate, in declaration order: the guard chain
//      upstream -> downstream (mgr injector, TMU, sub injector), the
//      LLC, then the endpoint
//   4. reset units, in guard declaration order
//   5. the PLIC, then the CPU recovery stub
// Wire-coupled blocks are order-insensitive (no model writes wires in
// tick()), which tests/test_soc_desc_equiv.cpp pins for the Cheshire
// topology.

#include "soc/builder.hpp"

#include <algorithm>
#include <set>

#include "axi/crossbar.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "soc/cpu_stub.hpp"
#include "soc/ethernet.hpp"
#include "soc/idma.hpp"
#include "soc/irq.hpp"
#include "soc/llc.hpp"
#include "soc/reset_unit.hpp"
#include "tmu/tmu.hpp"

namespace soc {

namespace {

std::string llc_name_of(const SubordinateDesc& s) {
  return s.llc_name.empty() ? s.name + ".llc" : s.llc_name;
}

/// The guard of subordinate `s`, or nullptr. Uniqueness is validated.
const GuardDesc* guard_of(const SocDesc& d, const SubordinateDesc& s) {
  for (const GuardDesc& g : d.guards) {
    if (g.subordinate == s.name) return &g;
  }
  return nullptr;
}

/// Block sequence of a subordinate chain, upstream to downstream; the
/// first entry names the chain's head link ("<first>.in").
std::vector<std::string> chain_blocks(const SocDesc& d,
                                      const SubordinateDesc& s) {
  std::vector<std::string> blocks;
  if (const GuardDesc* g = guard_of(d, s)) {
    if (!g->mgr_injector.empty()) blocks.push_back(g->mgr_injector);
    blocks.push_back(g->name);
    if (!g->sub_injector.empty()) blocks.push_back(g->sub_injector);
  }
  if (s.llc) blocks.push_back(llc_name_of(s));
  blocks.push_back(s.name);
  return blocks;
}

}  // namespace

void SocBuilder::validate(const SocDesc& d) {
  const auto err = [&](const std::string& msg) {
    throw std::invalid_argument("SocDesc '" + d.name + "': " + msg);
  };

  if (d.managers.empty()) err("no managers declared");
  if (d.subordinates.empty()) err("no subordinates declared");

  std::set<std::string> names;
  const auto claim = [&](const std::string& n, const char* what) {
    if (n.empty()) err(std::string("a ") + what + " has an empty name");
    if (!names.insert(n).second) {
      err("duplicate block name '" + n + "' (second use: " + what + ")");
    }
  };

  for (const ManagerDesc& m : d.managers) {
    claim(m.name, "manager");
    if (m.kind == ManagerKind::kDmaEngine && m.traffic.enabled) {
      err("manager '" + m.name +
          "' is a dma_engine but has random traffic enabled "
          "(only traffic_gen managers generate random traffic)");
    }
  }
  for (const SubordinateDesc& s : d.subordinates) {
    claim(s.name, "subordinate");
    if (s.llc) claim(llc_name_of(s), "llc");
  }
  if (d.crossbar) claim(d.xbar_name, "crossbar");

  std::map<std::string, std::string> guard_by_sub;
  for (const GuardDesc& g : d.guards) {
    claim(g.name, "guard");
    if (!g.mgr_injector.empty()) claim(g.mgr_injector, "mgr_injector");
    if (!g.sub_injector.empty()) claim(g.sub_injector, "sub_injector");
    if (!g.reset_unit.empty()) claim(g.reset_unit, "reset_unit");
    const bool known = std::any_of(
        d.subordinates.begin(), d.subordinates.end(),
        [&](const SubordinateDesc& s) { return s.name == g.subordinate; });
    if (!known) {
      err("guard '" + g.name + "' references unknown subordinate '" +
          g.subordinate + "'");
    }
    const auto [it, fresh] = guard_by_sub.emplace(g.subordinate, g.name);
    if (!fresh) {
      err("subordinate '" + g.subordinate +
          "' is guarded twice, by '" + it->second + "' and '" + g.name + "'");
    }
  }

  if (d.recovery.enabled) {
    claim(d.recovery.plic, "plic");
    claim(d.recovery.cpu, "cpu");
    if (d.guards.empty()) {
      err("recovery block enabled but there are no guards to service");
    }
  }

  if (!d.crossbar) {
    if (d.managers.size() != 1 || d.subordinates.size() != 1) {
      err("a point-to-point desc (crossbar = false) needs exactly one "
          "manager and one subordinate, got " +
          std::to_string(d.managers.size()) + " and " +
          std::to_string(d.subordinates.size()));
    }
    return;  // address windows are ignored without a crossbar
  }

  for (const SubordinateDesc& s : d.subordinates) {
    if (s.size == 0) {
      err("subordinate '" + s.name +
          "' has an empty address window (unreachable)");
    }
    if (s.base + s.size < s.base) {
      err("subordinate '" + s.name + "' address window wraps the address "
          "space");
    }
  }
  std::vector<const SubordinateDesc*> by_base;
  for (const SubordinateDesc& s : d.subordinates) by_base.push_back(&s);
  std::sort(by_base.begin(), by_base.end(),
            [](const SubordinateDesc* a, const SubordinateDesc* b) {
              return a->base < b->base;
            });
  for (std::size_t i = 1; i < by_base.size(); ++i) {
    const SubordinateDesc* lo = by_base[i - 1];
    const SubordinateDesc* hi = by_base[i];
    if (lo->base + lo->size > hi->base) {
      err("address windows of '" + lo->name + "' and '" + hi->name +
          "' overlap");
    }
  }
}

std::unique_ptr<Soc> SocBuilder::build(const SocDesc& desc) {
  validate(desc);
  std::unique_ptr<Soc> soc(new Soc(desc));
  const SocDesc& d = soc->desc();

  const auto mk_link = [&](const std::string& name) -> axi::Link& {
    soc->links_.push_back(std::make_unique<axi::Link>());
    soc->link_by_name_[name] = soc->links_.back().get();
    return *soc->links_.back();
  };
  const auto add = [&](std::unique_ptr<sim::Module> m) -> sim::Module& {
    sim::Module& ref = *m;
    soc->by_name_[ref.name()] = &ref;
    soc->modules_.push_back(std::move(m));
    return ref;
  };

  // 1. Managers. Their port links are the crossbar manager ports — or,
  // point-to-point, the single subordinate chain's head.
  std::vector<axi::Link*> mgr_ports;
  for (const ManagerDesc& m : d.managers) {
    axi::Link& l = mk_link(m.name + ".out");
    mgr_ports.push_back(&l);
    if (m.kind == ManagerKind::kTrafficGen) {
      add(std::make_unique<axi::TrafficGenerator>(m.name, l, m.seed));
    } else {
      add(std::make_unique<IdmaEngine>(m.name, l, m.dma_max_burst, m.dma_id));
    }
  }

  // 2. Chain head links (the crossbar's subordinate ports), then the
  // crossbar itself. Point-to-point, the manager's link doubles as the
  // head (aliased under the chain-naming scheme too).
  std::vector<axi::Link*> heads;
  for (const SubordinateDesc& s : d.subordinates) {
    const std::string head_name = chain_blocks(d, s).front() + ".in";
    if (d.crossbar) {
      heads.push_back(&mk_link(head_name));
    } else {
      heads.push_back(mgr_ports.front());
      soc->link_by_name_[head_name] = mgr_ports.front();
    }
  }
  if (d.crossbar) {
    std::vector<axi::AddrRange> map;
    for (std::size_t i = 0; i < d.subordinates.size(); ++i) {
      map.push_back(
          axi::AddrRange{d.subordinates[i].base, d.subordinates[i].size, i});
    }
    add(std::make_unique<axi::Crossbar>(d.xbar_name, mgr_ports, heads, map,
                                        d.id_shift, d.xbar_impl));
  }

  // 3. Subordinate chains. Collected per guard for phase 4/5: the TMU
  // and the guarded endpoint's hw_reset.
  std::map<std::string, tmu::Tmu*> guard_tmu;
  std::map<std::string, std::function<void()>> guard_reset_cb;
  for (std::size_t si = 0; si < d.subordinates.size(); ++si) {
    const SubordinateDesc& s = d.subordinates[si];
    const std::vector<std::string> blocks = chain_blocks(d, s);
    axi::Link* cur = heads[si];
    std::size_t bi = 0;
    const auto next_link = [&]() -> axi::Link& {
      return mk_link(blocks[bi + 1] + ".in");
    };

    tmu::Tmu* t = nullptr;
    if (const GuardDesc* g = guard_of(d, s)) {
      if (!g->mgr_injector.empty()) {
        axi::Link& nxt = next_link();
        add(std::make_unique<fault::FaultInjector>(g->mgr_injector, *cur, nxt));
        cur = &nxt;
        ++bi;
      }
      axi::Link& nxt = next_link();
      t = &static_cast<tmu::Tmu&>(
          add(std::make_unique<tmu::Tmu>(g->name, *cur, nxt, g->cfg)));
      guard_tmu[g->name] = t;
      cur = &nxt;
      ++bi;
      if (!g->sub_injector.empty()) {
        axi::Link& inxt = next_link();
        add(std::make_unique<fault::FaultInjector>(g->sub_injector, *cur,
                                                   inxt));
        cur = &inxt;
        ++bi;
      }
    }
    if (s.llc) {
      axi::Link& nxt = next_link();
      add(std::make_unique<LastLevelCache>(llc_name_of(s), *cur, nxt,
                                           s.llc_cfg));
      cur = &nxt;
      ++bi;
    }
    if (s.kind == SubordinateKind::kMemory) {
      auto& mem = static_cast<axi::MemorySubordinate&>(
          add(std::make_unique<axi::MemorySubordinate>(s.name, *cur, s.mem)));
      if (const GuardDesc* g = guard_of(d, s)) {
        guard_reset_cb[g->name] = [&mem] { mem.hw_reset(); };
      }
    } else {
      auto& eth = static_cast<EthernetPeripheral&>(
          add(std::make_unique<EthernetPeripheral>(s.name, *cur, s.eth)));
      if (const GuardDesc* g = guard_of(d, s)) {
        guard_reset_cb[g->name] = [&eth] { eth.hw_reset(); };
      }
    }
  }

  // 4. Reset units, in guard order.
  for (const GuardDesc& g : d.guards) {
    if (g.reset_unit.empty()) continue;
    tmu::Tmu& t = *guard_tmu.at(g.name);
    add(std::make_unique<ResetUnit>(g.reset_unit, t.reset_req, t.reset_ack,
                                    guard_reset_cb.at(g.name),
                                    g.reset_duration));
  }

  // 5. Recovery loop: PLIC sources in guard order, then the CPU stub.
  if (d.recovery.enabled) {
    auto& plic = static_cast<IrqController&>(
        add(std::make_unique<IrqController>(d.recovery.plic)));
    std::vector<tmu::Tmu*> tmus;
    for (const GuardDesc& g : d.guards) {
      tmu::Tmu& t = *guard_tmu.at(g.name);
      plic.add_source(t.irq);
      tmus.push_back(&t);
    }
    add(std::make_unique<CpuRecoveryStub>(d.recovery.cpu, plic,
                                          std::move(tmus),
                                          d.recovery.handler_latency));
  }

  // Register everything in construction order, reset, and apply the
  // managers' initial traffic modes (post-reset, like testbench code).
  for (const auto& m : soc->modules_) soc->sim_.add(*m);
  soc->sim_.reset();
  for (const ManagerDesc& m : d.managers) {
    if (m.kind == ManagerKind::kTrafficGen && m.traffic.enabled) {
      soc->get<axi::TrafficGenerator>(m.name).set_random(m.traffic);
    }
  }
  return soc;
}

}  // namespace soc
