// SocDesc validation and elaboration.
//
// Canonical registration order (it is part of the topology contract:
// function-coupled blocks — reset units invoking endpoint hw_reset(),
// the CPU stub claiming from the PLIC — depend on their relative tick
// order, and the fault-trial netlist is pinned cycle-exact against the
// legacy hand-wired testbench):
//   1. managers, in declaration order
//   2. the crossbar (when enabled)
//   3. per subordinate, in declaration order: the guard chain
//      upstream -> downstream (mgr injector, TMU, sub injector), the
//      LLC, then the endpoint. A kCluster endpoint is an axi::Bridge
//      followed depth-first by the nested level in the same order
//      (cluster crossbar, then its subordinate chains).
//   4. reset units, in guard order (visit_guards order: a level's
//      guards in declaration order, clusters depth-first)
//   5. the PLIC, then the CPU recovery stub
// Wire-coupled blocks are order-insensitive (no model writes wires in
// tick()), which tests/test_soc_desc_equiv.cpp pins for the Cheshire
// topology and tests/test_soc_hier_equiv.cpp for the nested variant.

#include "soc/builder.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "axi/bridge.hpp"
#include "axi/crossbar.hpp"
#include "axi/memory.hpp"
#include "axi/traffic_gen.hpp"
#include "fault/injector.hpp"
#include "obs/latency_probe.hpp"
#include "soc/cpu_stub.hpp"
#include "soc/ethernet.hpp"
#include "soc/idma.hpp"
#include "soc/irq.hpp"
#include "soc/llc.hpp"
#include "soc/reset_unit.hpp"
#include "sim/state.hpp"
#include "tmu/tmu.hpp"
#include "trace/recorder.hpp"
#include "trace/replay.hpp"

namespace soc {

void Soc::visit_state(sim::StateVisitor& v) {
  // Simulator first: verifies the sched policy and (via the scheduler
  // checkpoint) the module count, and seeds the visitor's wire re-tag
  // base before any Wire slot is visited.
  sim_.visit_checkpoint(v);
  // Links in construction order. The count check catches a walk that
  // drifted out of sync before any wire value is misapplied.
  std::uint64_t n_links = links_.size();
  v.count(n_links);
  if (!v.saving() && n_links != links_.size()) {
    v.fail("soc '" + desc_.name + "': snapshot has " +
           std::to_string(n_links) + " links, netlist has " +
           std::to_string(links_.size()));
  }
  for (const auto& l : links_) {
    visit(v, l->req);
    visit(v, l->rsp);
  }
  // Every registered module in simulator registration order (compound
  // modules' shards included). Name-checked: a payload misalignment
  // fails on the module that drifted, not ten modules later.
  for (sim::Module* m : sim_.modules()) {
    std::string nm = m->name();
    v.str(nm);
    if (!v.saving() && nm != m->name()) {
      v.fail("soc '" + desc_.name + "': snapshot stream is at module '" +
             nm + "' but the netlist expects '" + m->name() + "'");
    }
    m->visit_state(v);
  }
  metrics_.visit_state(v);
}

namespace {

std::string llc_name_of(const SubordinateDesc& s) {
  return s.llc_name.empty() ? s.name + ".llc" : s.llc_name;
}

std::string xbar_name_of(const SubordinateDesc& s) {
  const ClusterDesc& c = s.cluster.front();
  return c.xbar_name.empty() ? s.name + ".xbar" : c.xbar_name;
}

/// The guard of subordinate `s` among its level's guards, or nullptr.
/// Uniqueness is validated.
const GuardDesc* guard_of(const std::vector<GuardDesc>& guards,
                          const SubordinateDesc& s) {
  for (const GuardDesc& g : guards) {
    if (g.subordinate == s.name) return &g;
  }
  return nullptr;
}

/// Block sequence of a subordinate chain, upstream to downstream; the
/// first entry names the chain's head link ("<first>.in"). For a
/// kCluster subordinate the last entry is the bridge (the nested level
/// continues behind it).
std::vector<std::string> chain_blocks(const std::vector<GuardDesc>& guards,
                                      const SubordinateDesc& s) {
  std::vector<std::string> blocks;
  if (const GuardDesc* g = guard_of(guards, s)) {
    if (!g->mgr_injector.empty()) blocks.push_back(g->mgr_injector);
    blocks.push_back(g->name);
    if (!g->sub_injector.empty()) blocks.push_back(g->sub_injector);
  }
  if (s.llc) blocks.push_back(llc_name_of(s));
  blocks.push_back(s.name);
  return blocks;
}

/// Bits needed to represent x (bits_for(0) = 0).
unsigned bits_for(std::uint64_t x) {
  unsigned b = 0;
  while (x != 0) {
    ++b;
    x >>= 1;
  }
  return b;
}

}  // namespace

void SocBuilder::validate(const SocDesc& d) {
  const auto err = [&](const std::string& msg) {
    throw std::invalid_argument("SocDesc '" + d.name + "': " + msg);
  };

  if (d.managers.empty()) err("no managers declared");
  if (d.subordinates.empty()) err("no subordinates declared");

  std::set<std::string> names;  // tree-wide: block names are global
  const auto claim = [&](const std::string& n, const char* what) {
    if (n.empty()) err(std::string("a ") + what + " has an empty name");
    if (!names.insert(n).second) {
      err("duplicate block name '" + n + "' (second use: " + what + ")");
    }
  };

  for (const ManagerDesc& m : d.managers) {
    claim(m.name, "manager");
    if (m.kind != ManagerKind::kTrafficGen && m.traffic.enabled) {
      err("manager '" + m.name + "' is a " + to_string(m.kind) +
          " but has random traffic enabled "
          "(only traffic_gen managers generate random traffic)");
    }
    if (m.kind != ManagerKind::kTraceReplay && !m.trace_path.empty()) {
      err("manager '" + m.name + "' is a " + to_string(m.kind) +
          " but carries a trace_path (only trace_replay managers replay "
          "streams)");
    }
  }
  if (d.crossbar) claim(d.xbar_name, "crossbar");

  // One interconnect level: subordinate/guard name claims and
  // references, address-window sanity (when the level decodes), window
  // containment in the parent cluster's window, ID-width feasibility of
  // nested crossbars, and recursion into cluster payloads.
  using Window = std::pair<axi::Addr, axi::Addr>;  // [base, base + size)
  const std::function<void(const std::vector<SubordinateDesc>&,
                           const std::vector<GuardDesc>&, bool,
                           std::optional<Window>, unsigned)>
      check_level = [&](const std::vector<SubordinateDesc>& subs,
                        const std::vector<GuardDesc>& guards, bool decode,
                        std::optional<Window> parent, unsigned in_id_bits) {
        for (const SubordinateDesc& s : subs) {
          claim(s.name, "subordinate");
          if (s.llc) claim(llc_name_of(s), "llc");
          if ((s.kind == SubordinateKind::kCluster) != (s.cluster.size() == 1)) {
            if (s.kind == SubordinateKind::kCluster) {
              err("subordinate '" + s.name +
                  "' is a cluster but carries no ClusterDesc payload");
            }
            err("subordinate '" + s.name + "' carries a cluster payload but "
                "is not of kind cluster");
          }
          if (s.kind == SubordinateKind::kMemory && s.mem.bank.enabled) {
            const std::uint32_t n = s.mem.bank.num_banks;
            if (n == 0 || (n & (n - 1)) != 0) {
              err("subordinate '" + s.name + "' bank.num_banks " +
                  std::to_string(n) + " is not a power of two");
            }
          }
        }

        std::map<std::string, std::string> guard_by_sub;
        for (const GuardDesc& g : guards) {
          claim(g.name, "guard");
          if (!g.mgr_injector.empty()) claim(g.mgr_injector, "mgr_injector");
          if (!g.sub_injector.empty()) claim(g.sub_injector, "sub_injector");
          if (!g.reset_unit.empty()) claim(g.reset_unit, "reset_unit");
          const bool known = std::any_of(
              subs.begin(), subs.end(),
              [&](const SubordinateDesc& s) { return s.name == g.subordinate; });
          if (!known) {
            err("guard '" + g.name + "' references unknown subordinate '" +
                g.subordinate + "' (guards bind to their own level)");
          }
          const auto [it, fresh] = guard_by_sub.emplace(g.subordinate, g.name);
          if (!fresh) {
            err("subordinate '" + g.subordinate + "' is guarded twice, by '" +
                it->second + "' and '" + g.name + "'");
          }
        }

        if (decode) {
          for (const SubordinateDesc& s : subs) {
            if (s.size == 0) {
              err("subordinate '" + s.name +
                  "' has an empty address window (unreachable)");
            }
            if (s.base + s.size < s.base) {
              err("subordinate '" + s.name +
                  "' address window wraps the address space");
            }
            if (parent &&
                (s.base < parent->first || s.base + s.size > parent->second)) {
              err("subordinate '" + s.name +
                  "' address window does not fit inside its cluster's "
                  "window");
            }
          }
          std::vector<const SubordinateDesc*> by_base;
          for (const SubordinateDesc& s : subs) by_base.push_back(&s);
          std::sort(by_base.begin(), by_base.end(),
                    [](const SubordinateDesc* a, const SubordinateDesc* b) {
                      return a->base < b->base;
                    });
          for (std::size_t i = 1; i < by_base.size(); ++i) {
            const SubordinateDesc* lo = by_base[i - 1];
            const SubordinateDesc* hi = by_base[i];
            if (lo->base + lo->size > hi->base) {
              err("address windows of '" + lo->name + "' and '" + hi->name +
                  "' overlap");
            }
          }
        }

        for (const SubordinateDesc& s : subs) {
          if (s.kind != SubordinateKind::kCluster) continue;
          const ClusterDesc& c = s.cluster.front();
          claim(xbar_name_of(s), "cluster crossbar");
          if (c.subordinates.empty()) {
            err("cluster '" + s.name + "' declares no subordinates");
          }
          const axi::BridgeConfig& b = c.bridge;
          const bool transparent = b.req_latency == 0 && b.rsp_latency == 0;
          if ((b.req_latency == 0) != (b.rsp_latency == 0)) {
            err("cluster '" + s.name + "' bridge mixes zero and non-zero "
                "latencies (transparent bridges must be transparent both "
                "ways)");
          }
          if (transparent && b.id_remap) {
            err("cluster '" + s.name +
                "' bridge cannot remap IDs at latency 0");
          }
          if (b.id_remap && b.max_ids == 0) {
            err("cluster '" + s.name + "' bridge remaps IDs with max_ids 0");
          }
          if (!transparent && b.fifo_depth == 0) {
            err("cluster '" + s.name + "' bridge has fifo_depth 0");
          }
          // IDs entering the nested crossbar either carry every outer
          // level's manager prefix (no remap) or are compacted tIDs;
          // the nested id_shift must clear them, or the crossbar's
          // response de-prefixing would corrupt IDs.
          const unsigned nested_in_bits =
              b.id_remap ? bits_for(b.max_ids - 1) : in_id_bits;
          if (c.id_shift < nested_in_bits) {
            err("cluster '" + s.name + "' id_shift " +
                std::to_string(c.id_shift) + " is narrower than the " +
                std::to_string(nested_in_bits) +
                " ID bits entering the cluster" +
                (b.id_remap ? " (bridge tIDs)"
                            : " (enable bridge id_remap or widen it)"));
          }
          const std::optional<Window> window =
              s.size != 0 ? std::optional<Window>({s.base, s.base + s.size})
                          : std::nullopt;
          check_level(c.subordinates, c.guards, /*decode=*/true, window,
                      /*in_id_bits=*/c.id_shift);
        }
      };

  const unsigned root_out_bits =
      d.crossbar ? d.id_shift + bits_for(d.managers.size() - 1) : d.id_shift;
  check_level(d.subordinates, d.guards, /*decode=*/d.crossbar, std::nullopt,
              root_out_bits);

  if (d.recovery.enabled) {
    claim(d.recovery.plic, "plic");
    claim(d.recovery.cpu, "cpu");
    std::size_t n_guards = 0;
    visit_guards(d, [&](const GuardDesc&) { ++n_guards; });
    if (n_guards == 0) {
      err("recovery block enabled but there are no guards to service");
    }
  }

  if (!d.crossbar) {
    if (d.managers.size() != 1 || d.subordinates.size() != 1) {
      err("a point-to-point desc (crossbar = false) needs exactly one "
          "manager and one subordinate, got " +
          std::to_string(d.managers.size()) + " and " +
          std::to_string(d.subordinates.size()));
    }
  }

  // Probes and traces: fresh block names, and each must target a link
  // the builder will actually create (the naming scheme documented on
  // soc::Soc, mirrored here over the whole cluster tree).
  if (!d.probes.empty() || !d.traces.empty()) {
    std::set<std::string> link_names;
    for (const ManagerDesc& m : d.managers) link_names.insert(m.name + ".out");
    const std::function<void(const std::vector<SubordinateDesc>&,
                             const std::vector<GuardDesc>&)>
        collect_links = [&](const std::vector<SubordinateDesc>& subs,
                            const std::vector<GuardDesc>& guards) {
          for (const SubordinateDesc& s : subs) {
            for (const std::string& b : chain_blocks(guards, s)) {
              link_names.insert(b + ".in");
            }
            if (s.kind == SubordinateKind::kCluster) {
              link_names.insert(s.name + ".down");
              const ClusterDesc& c = s.cluster.front();
              collect_links(c.subordinates, c.guards);
            }
          }
        };
    collect_links(d.subordinates, d.guards);
    const auto check_link = [&](const char* what, const std::string& name,
                                const std::string& link) {
      if (link_names.count(link) == 0) {
        err(std::string(what) + " '" + name + "' references unknown link '" +
            link + "' (valid names: \"<manager>.out\", \"<block>.in\", "
            "\"<cluster>.down\")");
      }
    };
    for (const ProbeDesc& p : d.probes) {
      claim(p.name, "probe");
      check_link("probe", p.name, p.link);
    }
    for (const TraceDesc& t : d.traces) {
      claim(t.name, "trace");
      check_link("trace", t.name, t.link);
    }
  }
}

std::unique_ptr<Soc> SocBuilder::build(const SocDesc& desc) {
  validate(desc);
  std::unique_ptr<Soc> soc(new Soc(desc));
  const SocDesc& d = soc->desc();

  const auto mk_link = [&](const std::string& name) -> axi::Link& {
    soc->links_.push_back(std::make_unique<axi::Link>());
    soc->link_by_name_[name] = soc->links_.back().get();
    return *soc->links_.back();
  };
  const auto add = [&](std::unique_ptr<sim::Module> m) -> sim::Module& {
    sim::Module& ref = *m;
    soc->by_name_[ref.name()] = &ref;
    soc->modules_.push_back(std::move(m));
    return ref;
  };

  // 1. Managers. Their port links are the crossbar manager ports — or,
  // point-to-point, the single subordinate chain's head.
  std::vector<axi::Link*> mgr_ports;
  for (const ManagerDesc& m : d.managers) {
    axi::Link& l = mk_link(m.name + ".out");
    mgr_ports.push_back(&l);
    switch (m.kind) {
      case ManagerKind::kTrafficGen:
        add(std::make_unique<axi::TrafficGenerator>(m.name, l, m.seed));
        break;
      case ManagerKind::kDmaEngine:
        add(std::make_unique<IdmaEngine>(m.name, l, m.dma_max_burst,
                                         m.dma_id));
        break;
      case ManagerKind::kTraceReplay:
        add(std::make_unique<trace::TraceTrafficGen>(m.name, l));
        break;
    }
  }

  // 2 + 3. Interconnect levels, depth-first: per level the chain head
  // links (that level's crossbar subordinate ports), the crossbar, then
  // every subordinate chain in declaration order — recursing through a
  // bridge whenever a chain ends in a cluster. Guards are collected in
  // visit_guards order for phases 4/5.
  std::map<std::string, tmu::Tmu*> guard_tmu;
  std::map<std::string, std::function<void()>> guard_reset_cb;
  std::vector<const GuardDesc*> guard_order;

  const std::function<void(const std::vector<SubordinateDesc>&,
                           const std::vector<GuardDesc>&,
                           std::vector<axi::Link*>, const std::string&,
                           unsigned, bool)>
      build_level = [&](const std::vector<SubordinateDesc>& subs,
                        const std::vector<GuardDesc>& guards,
                        std::vector<axi::Link*> ports,
                        const std::string& xbar_name, unsigned id_shift,
                        bool crossbar) {
        for (const GuardDesc& g : guards) guard_order.push_back(&g);

        std::vector<axi::Link*> heads;
        for (const SubordinateDesc& s : subs) {
          const std::string head_name = chain_blocks(guards, s).front() + ".in";
          if (crossbar) {
            heads.push_back(&mk_link(head_name));
          } else {
            heads.push_back(ports.front());
            soc->link_by_name_[head_name] = ports.front();
          }
        }
        if (crossbar) {
          std::vector<axi::AddrRange> map;
          for (std::size_t i = 0; i < subs.size(); ++i) {
            map.push_back(axi::AddrRange{subs[i].base, subs[i].size, i});
          }
          add(std::make_unique<axi::Crossbar>(xbar_name, ports, heads, map,
                                              id_shift, d.xbar_impl));
        }

        for (std::size_t si = 0; si < subs.size(); ++si) {
          const SubordinateDesc& s = subs[si];
          const std::vector<std::string> blocks = chain_blocks(guards, s);
          axi::Link* cur = heads[si];
          std::size_t bi = 0;
          const auto next_link = [&]() -> axi::Link& {
            return mk_link(blocks[bi + 1] + ".in");
          };

          const GuardDesc* g = guard_of(guards, s);
          if (g != nullptr) {
            if (!g->mgr_injector.empty()) {
              axi::Link& nxt = next_link();
              add(std::make_unique<fault::FaultInjector>(g->mgr_injector, *cur,
                                                         nxt));
              cur = &nxt;
              ++bi;
            }
            axi::Link& nxt = next_link();
            guard_tmu[g->name] = &static_cast<tmu::Tmu&>(
                add(std::make_unique<tmu::Tmu>(g->name, *cur, nxt, g->cfg)));
            cur = &nxt;
            ++bi;
            if (!g->sub_injector.empty()) {
              axi::Link& inxt = next_link();
              add(std::make_unique<fault::FaultInjector>(g->sub_injector, *cur,
                                                         inxt));
              cur = &inxt;
              ++bi;
            }
          }
          if (s.llc) {
            axi::Link& nxt = next_link();
            add(std::make_unique<LastLevelCache>(llc_name_of(s), *cur, nxt,
                                                 s.llc_cfg));
            cur = &nxt;
            ++bi;
          }
          switch (s.kind) {
            case SubordinateKind::kMemory: {
              auto& mem = static_cast<axi::MemorySubordinate&>(add(
                  std::make_unique<axi::MemorySubordinate>(s.name, *cur,
                                                           s.mem)));
              if (g != nullptr) {
                guard_reset_cb[g->name] = [&mem] { mem.hw_reset(); };
              }
              break;
            }
            case SubordinateKind::kEthernet: {
              auto& eth = static_cast<EthernetPeripheral&>(add(
                  std::make_unique<EthernetPeripheral>(s.name, *cur, s.eth)));
              if (g != nullptr) {
                guard_reset_cb[g->name] = [&eth] { eth.hw_reset(); };
              }
              break;
            }
            case SubordinateKind::kCluster: {
              const ClusterDesc& c = s.cluster.front();
              axi::Link& down = mk_link(s.name + ".down");
              auto& bridge = static_cast<axi::Bridge&>(add(
                  std::make_unique<axi::Bridge>(s.name, *cur, down,
                                                c.bridge)));
              if (g != nullptr) {
                guard_reset_cb[g->name] = [&bridge] { bridge.hw_reset(); };
              }
              build_level(c.subordinates, c.guards, {&down}, xbar_name_of(s),
                          c.id_shift, /*crossbar=*/true);
              break;
            }
          }
        }
      };

  build_level(d.subordinates, d.guards, mgr_ports, d.xbar_name, d.id_shift,
              d.crossbar);

  // 4. Reset units, in guard order.
  for (const GuardDesc* g : guard_order) {
    if (g->reset_unit.empty()) continue;
    tmu::Tmu& t = *guard_tmu.at(g->name);
    add(std::make_unique<ResetUnit>(g->reset_unit, t.reset_req, t.reset_ack,
                                    guard_reset_cb.at(g->name),
                                    g->reset_duration));
  }

  // 5. Recovery loop: PLIC sources in guard order, then the CPU stub.
  if (d.recovery.enabled) {
    auto& plic = static_cast<IrqController&>(
        add(std::make_unique<IrqController>(d.recovery.plic)));
    std::vector<tmu::Tmu*> tmus;
    for (const GuardDesc* g : guard_order) {
      tmu::Tmu& t = *guard_tmu.at(g->name);
      plic.add_source(t.irq);
      tmus.push_back(&t);
    }
    add(std::make_unique<CpuRecoveryStub>(d.recovery.cpu, plic,
                                          std::move(tmus),
                                          d.recovery.handler_latency));
  }

  // 6. Observability probes, in declaration order — appended after the
  // functional netlist so probe insertion never perturbs the canonical
  // registration order (cycle-exact equivalence pins phases 1-5).
  for (const ProbeDesc& p : d.probes) {
    add(std::make_unique<obs::LatencyProbe>(p.name, soc->link(p.link),
                                            soc->metrics_));
  }

  // 7. Trace capture points, in declaration order — appended after the
  // probes for the same reason: recorders never drive wires, so the
  // functional netlist's registration order stays cycle-exact. Buffers
  // are stamped with the desc hash (traces section included), which is
  // what ties a trace file back to the topology it was captured on.
  for (const TraceDesc& t : d.traces) {
    add(std::make_unique<trace::Recorder>(t.name, t.link, soc->link(t.link),
                                          d.hash(),
                                          trace::Recorder::kDefaultCapacity,
                                          &soc->metrics_));
  }

  // Register everything in construction order, reset, and apply the
  // managers' initial traffic modes (post-reset, like testbench code).
  for (const auto& m : soc->modules_) soc->sim_.add(*m);
  soc->sim_.reset();
  for (const ManagerDesc& m : d.managers) {
    if (m.kind == ManagerKind::kTrafficGen && m.traffic.enabled) {
      soc->get<axi::TrafficGenerator>(m.name).set_random(m.traffic);
    }
    if (m.kind == ManagerKind::kTraceReplay && !m.trace_path.empty()) {
      try {
        soc->get<trace::TraceTrafficGen>(m.name).set_stream(
            trace::read_trace_file(m.trace_path));
      } catch (const std::runtime_error& e) {
        throw std::invalid_argument("SocDesc '" + d.name + "': manager '" +
                                    m.name + "' trace_path failed to load: " +
                                    e.what());
      }
    }
  }
  return soc;
}

}  // namespace soc
