#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "axi/link.hpp"
#include "axi/types.hpp"
#include "sim/module.hpp"

namespace soc {

/// Behavioural model of an RGMII-Ethernet-style AXI4 peripheral (the
/// endpoint the paper's system-level evaluation monitors).
///
/// Address map (relative to its base):
///   [0x0000, 0x0FFF]  MMIO registers (status, counters)
///   [0x1000, ...   ]  TX frame window: written beats enter the TX FIFO
///                     and drain at line rate; reads return loopback RX.
///
/// Realistic properties relevant to the experiment:
///  * limited TX FIFO: long bursts get back-pressured when the MAC
///    drains slower than the bus writes (stressing the W phase);
///  * loopback: transmitted frames reappear in the RX FIFO;
///  * hw_reset() clears FIFOs and in-flight state (the recovery target).
struct EthernetConfig {
  std::size_t tx_fifo_beats = 64;
  std::uint32_t drain_every = 1;    ///< MAC drains one beat / N cycles
  std::uint32_t b_latency = 1;
  std::uint32_t r_first_latency = 2;
  std::size_t max_outstanding = 8;
  axi::Addr mmio_size = 0x1000;
  bool operator==(const EthernetConfig&) const = default;
};

class EthernetPeripheral : public sim::Module {
 public:
  EthernetPeripheral(std::string name, axi::Link& link,
                     EthernetConfig cfg = {});

  void eval() override;
  void tick() override;
  void reset() override;
  bool tick_changed_eval_state() const override { return tick_evt_; }

  /// State serde (sim/state.hpp): FIFOs, in-flight queues and counters.
  void visit_state(sim::StateVisitor& v) override;

  /// External hardware reset (from the reset unit): clears FIFOs and all
  /// in-flight transaction state; counters survive (MMIO-visible).
  void hw_reset() {
    clear_pending_ = true;
    notify_state_change();
  }

  std::uint64_t frames_txed() const { return beats_drained_; }
  std::size_t tx_fifo_level() const { return tx_fifo_.size(); }
  std::size_t rx_fifo_level() const { return rx_fifo_.size(); }
  std::uint64_t writes_done() const { return writes_done_; }
  std::uint64_t reads_done() const { return reads_done_; }
  std::uint64_t hw_resets() const { return hw_resets_; }

  const EthernetConfig& config() const { return cfg_; }

 private:
  struct WriteTxn {
    axi::AwFlit aw;
    unsigned beats_got = 0;
    template <typename V>
    void visit_fields(V& v) {
      visit(v, aw);
      visit(v, beats_got);
    }
  };
  struct ReadTxn {
    axi::ArFlit ar;
    unsigned next_beat = 0;
    std::uint64_t ready_at = 0;
    template <typename V>
    void visit_fields(V& v) {
      visit(v, ar);
      visit(v, next_beat);
      visit(v, ready_at);
    }
  };
  struct PendingB {
    axi::Id id = 0;
    std::uint64_t ready_at = 0;
    template <typename V>
    void visit_fields(V& v) {
      visit(v, id);
      visit(v, ready_at);
    }
  };

  bool is_mmio(axi::Addr a) const { return (a & 0xFFFF) < cfg_.mmio_size; }
  std::uint64_t mmio_read(axi::Addr a) const;

  axi::Link& link_;
  EthernetConfig cfg_;

  std::deque<axi::Data> tx_fifo_;
  std::deque<axi::Data> rx_fifo_;
  std::deque<WriteTxn> write_q_;
  std::deque<PendingB> b_q_;
  std::deque<ReadTxn> read_q_;

  std::uint32_t drain_cnt_ = 0;
  std::uint64_t beats_drained_ = 0;
  std::uint64_t writes_done_ = 0;
  std::uint64_t reads_done_ = 0;
  std::uint64_t hw_resets_ = 0;
  std::uint64_t cycle_ = 0;
  bool tick_evt_ = true;  ///< last tick touched eval-relevant state
  bool clear_pending_ = false;
};

}  // namespace soc
